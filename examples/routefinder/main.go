// Routefinder: the paper's running example (Figure 2). A shortest-route
// application takes -n (paths to find), -e/--echo, and graph-file
// operands. The XICL specification plus two programmer-defined feature
// extractors (mNodes, mEdges — the paper's XFMethod instances) let the
// translator turn any legal command line into a feature vector, which a
// classification tree then maps to an optimization decision.
//
//	go run ./examples/routefinder
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"evolvevm/internal/cart"
	"evolvevm/internal/xicl"
)

const routeSpec = `
# route [options] FILE...
#   -n N        find N shortest paths (default 1)
#   -e, --echo  print status messages
option  {name=-n; type=num; attr=VAL; default=1; has_arg=y}
option  {name=-e:--echo; type=bin; attr=VAL; default=0; has_arg=n}
operand {position=1:$; type=file; attr=mNodes:mEdges}
`

// graphHeader parses "nodes edges" from the first line of a graph file —
// the domain knowledge only the programmer has (paper §III-A2).
func graphHeader(raw string, env *xicl.Env, field int) (float64, error) {
	b, err := env.FS.ReadFile(raw)
	if err != nil {
		return 0, err
	}
	env.Charge(int64(len(b)) / 8)
	line, _, _ := strings.Cut(string(b), "\n")
	fields := strings.Fields(line)
	if field >= len(fields) {
		return 0, fmt.Errorf("graph %q: bad header", raw)
	}
	return strconv.ParseFloat(fields[field], 64)
}

func main() {
	spec, err := xicl.ParseSpec(routeSpec)
	if err != nil {
		log.Fatal(err)
	}

	// Register the programmer-defined extraction methods, the analogue
	// of implementing XFMethod and dropping it into the translator's
	// package (paper Figure 4).
	reg := xicl.NewRegistry()
	for name, field := range map[string]int{"mNodes": 0, "mEdges": 1} {
		f := field
		err := reg.Register(name, xicl.XFMethodFunc(
			func(raw string, _ xicl.ValueType, env *xicl.Env) (xicl.Feature, error) {
				v, err := graphHeader(raw, env, f)
				if err != nil {
					return xicl.Feature{}, err
				}
				return xicl.NumFeature("", v), nil
			}))
		if err != nil {
			log.Fatal(err)
		}
	}

	// A virtual filesystem with a few graphs (first line: nodes edges).
	fs := xicl.MapFS{
		"graph": []byte("100 1000\n0 1\n1 2\n..."),
		"small": []byte("12 30\n0 1\n"),
		"huge":  []byte("5000 91000\n0 1\n"),
	}

	// The paper's example invocation: route -n 3 graph, where graph has
	// 100 nodes and 1000 edges, yields the vector (3, 0, 100, 1000).
	translate := func(args ...string) xicl.Vector {
		tr := xicl.NewTranslator(spec, reg, fs)
		vec, err := tr.BuildFVector(args)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("route %-22s -> %s  (cost %d cycles)\n",
			strings.Join(args, " "), vec, tr.Cost())
		return vec
	}

	v1 := translate("-n", "3", "graph")
	v2 := translate("small")
	v3 := translate("--echo", "-n", "8", "huge")

	// Learn a toy decision from labelled history — say, the ideal
	// optimization level of the route kernel observed in past runs —
	// and predict for a new input. This is exactly what the evolvable
	// VM does per method (internal/core), shown here in isolation.
	examples := []cart.Example{
		{Features: v2, Label: 0}, // small graph: low level was ideal
		{Features: v1, Label: 1},
		{Features: v3, Label: 2}, // huge graph: aggressive level paid off
	}
	tree, err := cart.Build(examples, cart.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlearned tree:\n%s", tree)
	fmt.Printf("tree uses features: %v\n", tree.UsedFeatureNames())

	fs["new"] = []byte("2600 40000\n0 1\n")
	vNew := translate("new")
	fmt.Printf("predicted level for new graph: %d\n", tree.Predict(vNew))
}
