// Evolution: watch a virtual machine evolve across production runs
// (paper Figure 7 / Figure 8). The mtrt benchmark is launched 30 times
// with randomly arriving inputs; each run feeds the learner, confidence
// grows, the discriminative guard opens, and predicted input-specific
// strategies start beating the reactive default. Halfway through, the
// learned state is serialized and restored, demonstrating persistence
// across VM lifetimes.
//
//	go run ./examples/evolution
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"evolvevm/internal/harness"
	"evolvevm/internal/programs"
)

func main() {
	ctx := context.Background()
	r, err := harness.NewRunner(programs.ByName("mtrt"), 16, 42)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	order := r.Order(rng, 30)

	fmt.Println("run  input                      speedup  conf   acc   predicted")
	for i, idx := range order {
		if i == len(order)/2 {
			// Simulate a VM restart: snapshot the cross-run state (models,
			// repository, baselines), drop everything, restore. Learning
			// continues where it left off.
			blob, err := r.State.Snapshot()
			if err != nil {
				log.Fatal(err)
			}
			r.ResetState()
			if err := r.State.Restore(blob); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("---- state saved and restored (%d bytes, %d runs) ----\n",
				len(blob), r.Evolver().Runs())
		}

		res, err := r.RunOne(ctx, harness.ScenarioEvolve, r.Inputs[idx])
		if err != nil {
			log.Fatal(err)
		}
		rec := res.Evolve
		bar := strings.Repeat("#", int(rec.Confidence*20))
		fmt.Printf("%3d  %-26s %7.3f  %.2f %s %.2f  %v\n",
			i+1, res.InputID, res.Speedup, rec.Confidence, pad(bar, 20),
			rec.Accuracy, rec.Predicted)
	}

	fmt.Printf("\nfinal confidence: %.3f over %d runs\n",
		r.Evolver().Confidence(), r.Evolver().Runs())
	fmt.Printf("features the models actually use: %v\n", r.Evolver().UsedFeatureNames())

	// Peek inside one learned model: the tree for the tracing kernel.
	if idx, ok := r.Prog.FuncIndex("trace"); ok {
		if m := r.Evolver().ModelFor(idx); m != nil && m.Tree() != nil {
			fmt.Printf("\nlearned input->level tree for method trace:\n%s", m.Tree())
		}
	}
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(".", n-len(s))
}
