// Quickstart: assemble a small program, run it on the VM under the
// default adaptive optimizer, and inspect what the optimizer did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"evolvevm/internal/aos"
	"evolvevm/internal/bytecode"
	"evolvevm/internal/jit"
	"evolvevm/internal/vm"
)

// A tiny numeric workload: repeatedly smooth an array, with the hot work
// in a helper method the optimizer can observe and recompile.
const source = `
global n
global data
global rounds

func main() locals r acc
  const 0
  store acc
  const 0
  store r
loop:
  load r
  gload rounds
  ige
  jnz done
  load acc
  call smooth 0
  iadd
  store acc
  iinc r 1
  jmp loop
done:
  load acc
  ret
end

func smooth() locals i acc v
  const 0
  store acc
  const 1
  store i
loop:
  load i
  gload n
  const 1
  isub
  ige
  jnz done
  gload data
  load i
  const 1
  isub
  aload
  gload data
  load i
  aload
  const 2
  imul
  iadd
  gload data
  load i
  const 1
  iadd
  aload
  iadd
  const 4
  idiv
  store v
  gload data
  load i
  load v
  astore
  load acc
  load v
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
`

func main() {
	prog, err := bytecode.Assemble("quickstart", source)
	if err != nil {
		log.Fatal(err)
	}

	// One Machine per run: engine + multi-level JIT + a controller. Here
	// we use the reactive cost-benefit controller that ships as the
	// VM's default.
	m := vm.New(prog, jit.DefaultConfig(), aos.NewReactive())

	// Install the input: 4000 cells, 60 smoothing rounds.
	const n = 4000
	ref, err := m.Engine.NewArray(n)
	if err != nil {
		log.Fatal(err)
	}
	cells, _ := m.Engine.Array(ref)
	for i := range cells {
		cells[i] = bytecode.Int(int64(i * 37 % 1000))
	}
	for name, v := range map[string]bytecode.Value{
		"n": bytecode.Int(n), "rounds": bytecode.Int(60), "data": ref,
	} {
		if err := m.Engine.SetGlobal(name, v); err != nil {
			log.Fatal(err)
		}
	}

	result, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("result          = %v\n", result)
	fmt.Printf("total cycles    = %d\n", m.TotalCycles())
	fmt.Printf("compile cycles  = %d (%d recompilations)\n", m.CompileCycles, m.Recompilations)
	for fn, f := range prog.Funcs {
		fmt.Printf("method %-8s level=%2d invocations=%-5d samples=%d\n",
			f.Name, m.Level(fn), m.Engine.Invocations[fn], m.Samples[fn])
	}

	// Compare with a pure interpreter (no recompilation at all).
	m2 := vm.New(prog, jit.DefaultConfig(), vm.NullController{})
	ref2, _ := m2.Engine.NewArray(n)
	cells2, _ := m2.Engine.Array(ref2)
	for i := range cells2 {
		cells2[i] = bytecode.Int(int64(i * 37 % 1000))
	}
	m2.Engine.SetGlobal("n", bytecode.Int(n))
	m2.Engine.SetGlobal("rounds", bytecode.Int(60))
	m2.Engine.SetGlobal("data", ref2)
	if _, err := m2.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninterpreter-only cycles = %d  (adaptive VM speedup %.2fx)\n",
		m2.TotalCycles(), float64(m2.TotalCycles())/float64(m.TotalCycles()))
}
