// Interactive: the XICL runtime-construct path (paper §III-B.3/4). Some
// input features only become known while the application initializes —
// here, the dataset's row count, which the program discovers when it
// parses its input. The application passes the value to the translator
// via UpdateV and signals Done, which releases the (deferred) prediction
// mid-run: methods that already started at baseline are recompiled to
// their predicted levels on the fly.
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"math/rand"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/core"
	"evolvevm/internal/jit"
	"evolvevm/internal/vm"
	"evolvevm/internal/xicl"
)

// analytics: parse the dataset (discovering its size), then run a
// per-row kernel whose ideal level depends on that size.
const source = `
global rows
global data
global result

func main() locals i acc
  call parse 0
  store acc
  const 0
  store i
loop:
  load i
  gload rows
  ige
  jnz done
  load acc
  load i
  call kernel 1
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  gstore result
  gload result
  ret
end

func parse() locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  gload rows
  ige
  jnz done
  load acc
  gload data
  load i
  aload
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end

func kernel(row) locals j acc
  const 0
  store acc
  const 0
  store j
loop:
  load j
  const 60
  ige
  jnz done
  load acc
  load row
  load j
  imul
  const 8191
  iand
  iadd
  store acc
  iinc j 1
  jmp loop
done:
  load acc
  ret
end
`

// The spec defers the dataset size to runtime: no option carries it.
const spec = `
option  {name=-m:--mode; type=enum; attr=VAL; default=batch; has_arg=y}
runtime {name=mRows; count=1; default=-1}
`

func main() {
	prog, err := bytecode.Assemble("analytics", source)
	if err != nil {
		log.Fatal(err)
	}
	parsedSpec, err := xicl.ParseSpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	ev := core.NewEvolver(prog, core.DefaultConfig())
	rng := rand.New(rand.NewSource(11))
	kernelIdx, _ := prog.FuncIndex("kernel")
	parseIdx, _ := prog.FuncIndex("parse")

	fmt.Println("run  rows   predicted-mid-run  kernel-level  conf")
	for run := 1; run <= 14; run++ {
		rows := int64(50 + rng.Intn(2000))

		tr := xicl.NewTranslator(parsedSpec, nil, xicl.MapFS{})
		if _, err := tr.BuildFVector([]string{"-m", "batch"}); err != nil {
			log.Fatal(err)
		}

		ctrl := ev.Controller(nil, tr.Cost())
		tr.OnDone = func(v xicl.Vector) { ctrl.SetFeatures(v) }

		m := vm.New(prog, jit.DefaultConfig(), ctrl)
		if err := m.Engine.SetGlobal("rows", bytecode.Int(rows)); err != nil {
			log.Fatal(err)
		}
		ref, err := m.Engine.NewArray(rows)
		if err != nil {
			log.Fatal(err)
		}
		cells, _ := m.Engine.Array(ref)
		for i := range cells {
			cells[i] = bytecode.Int(int64(i % 97))
		}
		if err := m.Engine.SetGlobal("data", ref); err != nil {
			log.Fatal(err)
		}

		// The application's instrumentation: when parsing finishes (the
		// kernel's first invocation means main moved past parse), pass
		// the discovered row count to the translator and signal Done —
		// the paper's XICLFeatureVector.updateV()/done() calls.
		delivered := false
		m.Engine.OnInvoke = func(fnIdx int, count int64) {
			m.Controller.OnInvoke(m, fnIdx, count)
			if !delivered && fnIdx == kernelIdx && count == 1 {
				delivered = true
				if err := tr.UpdateV("mRows", float64(rows)); err != nil {
					log.Fatal(err)
				}
				tr.Done()
			}
		}

		if _, err := m.Run(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d  %5d  %17v  %12d  %.2f\n",
			run, rows, ctrl.Predicted(), m.Level(kernelIdx), ev.Confidence())
		_ = parseIdx
	}
}
