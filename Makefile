GO ?= go

.PHONY: build generate test race vet bench benchcmp clean

build:
	$(GO) build ./...

# generate rebuilds every *_gen.go file from the single op spec in
# internal/opspec via cmd/tiergen. CI fails if the committed generated
# files drift from the generator's output.
generate:
	$(GO) generate ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# bench runs the experiment and microbenchmark suite (quick mode, five
# repetitions) and appends a snapshot for the current commit to the
# BENCH_substrate.json trajectory. The raw `go test` text is kept in
# bench.out for eyeballing.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -count 5 -benchmem . | tee bench.out
	$(GO) run ./cmd/benchreport -o BENCH_substrate.json bench.out

# benchcmp re-measures the suite and diffs it against the committed
# baseline trajectory: exit 1 on a >10% mean regression (warn), exit 2 on
# >25% (hard fail). CI runs this warn-tolerant on shared runners.
benchcmp:
	$(GO) test -run '^$$' -bench . -benchtime 1x -count 5 -benchmem . | tee bench.out
	$(GO) run ./cmd/benchreport -flat -o bench.new.json bench.out
	$(GO) run ./cmd/benchreport compare BENCH_substrate.json bench.new.json

clean:
	rm -f bench.out bench.new.json BENCH_substrate.json
