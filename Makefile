GO ?= go

.PHONY: build test race vet bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# bench runs the experiment and microbenchmark suite (quick mode, five
# repetitions) and renders the results into BENCH_substrate.json. The raw
# `go test` text is kept in bench.out for eyeballing.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -count 5 . | tee bench.out
	$(GO) run ./cmd/benchreport -o BENCH_substrate.json bench.out

clean:
	rm -f bench.out BENCH_substrate.json
