module evolvevm

go 1.24
