module evolvevm

go 1.22
