package evolvevm

import (
	"context"
	"io"
	"math/rand"
	"testing"

	"evolvevm/internal/harness"
	"evolvevm/internal/programs"
)

// testCtx is the background context shared by this package's tests and
// benchmarks; cancellation gets dedicated coverage in internal/exec and
// cmd/expdriver.
var testCtx = context.Background()

// TestExperimentsDeterministic pins the README's reproducibility claim:
// the same seed yields bit-identical experiment results, run to run.
func TestExperimentsDeterministic(t *testing.T) {
	opts := harness.Options{Seed: 4, Quick: true,
		Benchmarks: []string{"compress", "mtrt"}}
	a, err := harness.Table1(testCtx, io.Discard,opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := harness.Table1(testCtx, io.Discard,opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestSeedsChangeOutcomes is the determinism test's complement: different
// seeds draw different corpora, so results must actually move.
func TestSeedsChangeOutcomes(t *testing.T) {
	rows := func(seed int64) []harness.Table1Row {
		r, err := harness.Table1(testCtx, io.Discard,harness.Options{
			Seed: seed, Quick: true, Benchmarks: []string{"compress"}})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := rows(4), rows(5)
	if a[0].MinMcyc == b[0].MinMcyc && a[0].MaxMcyc == b[0].MaxMcyc {
		t.Error("different seeds produced identical corpora timings")
	}
}

// TestFullEvolveCycleEndToEnd drives the complete public workflow the
// README's quickstart shows: runner, evolve sequence, learned state, and
// the cross-scenario result invariant.
func TestFullEvolveCycleEndToEnd(t *testing.T) {
	r, err := harness.NewRunner(progByNameOrSkip(t, "moldyn"), 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	order := r.Order(rngFor(6), 16)
	results, err := r.RunSequence(testCtx, harness.ScenarioEvolve, order)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 16 {
		t.Fatalf("got %d results", len(results))
	}
	// Results are program outputs: a default-scenario re-run of the same
	// input must agree.
	check, err := r.RunOne(testCtx, harness.ScenarioDefault, r.Inputs[order[len(order)-1]])
	if err != nil {
		t.Fatal(err)
	}
	last := results[len(results)-1]
	if !check.Result.Equal(last.Result) {
		t.Errorf("evolve result %v != default result %v", last.Result, check.Result)
	}
	if r.Evolver().Runs() != 16 {
		t.Errorf("evolver saw %d runs, want 16", r.Evolver().Runs())
	}
}

func progByNameOrSkip(t *testing.T, name string) *programs.Benchmark {
	t.Helper()
	b := programs.ByName(name)
	if b == nil {
		t.Skipf("no benchmark %s", name)
	}
	return b
}

func rngFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
