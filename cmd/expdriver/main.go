// Command expdriver regenerates the paper's evaluation artifacts — Table
// I, Figures 8, 9 and 10, the overhead analysis, the sensitivity study —
// plus this reproduction's ablations. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	expdriver -exp all
//	expdriver -exp table1 -seed 7
//	expdriver -exp fig8 -bench mtrt,raytracer -runs 40
//	expdriver -exp fig10 -quick
//	expdriver -exp all -checkpoint state.json -timeout 30s   # interruptible
//	expdriver -exp all -checkpoint state.json -resume state.json
//
// With -checkpoint, completed work units are saved — also when the run is
// interrupted by -timeout or fails — and -resume replays them instead of
// recomputing, with bit-identical output (see DESIGN.md §8).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"evolvevm/internal/exec"
	"evolvevm/internal/harness"
	"evolvevm/internal/interp"
	"evolvevm/internal/sched"
	"evolvevm/internal/session"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, w, werr io.Writer) int {
	fs := flag.NewFlagSet("expdriver", flag.ContinueOnError)
	fs.SetOutput(werr)
	var (
		exp          = fs.String("exp", "all", "experiment: table1|fig8|fig9|fig10|overhead|sensitivity|ablation|gc|all")
		seed         = fs.Int64("seed", 1, "corpus and arrival-order seed")
		runs         = fs.Int("runs", 0, "runs per benchmark (0 = paper defaults)")
		corpus       = fs.Int("corpus", 0, "inputs per benchmark (0 = paper defaults)")
		quick        = fs.Bool("quick", false, "shrink corpora and sequences")
		parallel     = fs.Bool("parallel", true, "run independent work units concurrently")
		workers      = fs.Int("workers", 0, "scheduler worker count (0 = derive from -parallel)")
		benches      = fs.String("bench", "", "comma-separated benchmark filter")
		checkpoint   = fs.String("checkpoint", "", "save completed work units to this file (also on failure/timeout)")
		resume       = fs.String("resume", "", "replay completed work units from this checkpoint file")
		timeout      = fs.Duration("timeout", 0, "abort in-flight runs after this long (0 = no deadline)")
		cpuprofile   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = fs.String("memprofile", "", "write a heap profile to this file on exit")
		mutexprofile = fs.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
		blockprofile = fs.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
		tracestats   = fs.Bool("tracestats", false, "print register-trace tier counters (builds, degradations, OSR entries, deopts) and background-compile counters to stderr on exit")
		asynccompile = fs.Bool("asynccompile", false, "build tier plans on a background pool instead of inline at the promotion point (also: EVOLVEVM_ASYNC_COMPILE)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuprofile != "" || *memprofile != "" {
		// Label runs and scheduler tasks so the profile attributes time by
		// experiment work unit, program, and controller. Labels allocate per
		// run, so they stay off unless a profile was asked for.
		exec.ProfileLabels = true
		sched.ProfileLabels = true
	}
	stopProfiles := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(werr, "expdriver: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(werr, "expdriver: -cpuprofile: %v\n", err)
			return 1
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memprofile != "" {
		stopCPU := stopProfiles
		stopProfiles = func() {
			stopCPU()
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(werr, "expdriver: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(werr, "expdriver: -memprofile: %v\n", err)
			}
		}
	}
	if *mutexprofile != "" {
		// Fraction 1 samples every contention event — the profile is for
		// finding which locks serialize the run, not for low-overhead
		// production monitoring.
		runtime.SetMutexProfileFraction(1)
		prev := stopProfiles
		stopProfiles = func() {
			prev()
			writeLookupProfile(werr, "mutex", *mutexprofile)
		}
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
		prev := stopProfiles
		stopProfiles = func() {
			prev()
			writeLookupProfile(werr, "block", *blockprofile)
		}
	}
	defer stopProfiles()

	sess := session.New()
	if *resume != "" {
		loaded, err := session.LoadFile(*resume)
		if err != nil {
			fmt.Fprintf(werr, "expdriver: -resume: %v\n", err)
			return 1
		}
		sess = loaded
	}

	opts := harness.Options{
		Seed:     *seed,
		Runs:     *runs,
		Corpus:   *corpus,
		Quick:    *quick,
		Parallel: *parallel,
		Workers:  *workers,
		Session:  sess,
	}
	opts.Substrate.AsyncCompile = *asynccompile
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Completed work units survive a failed or timed-out run: saving the
	// checkpoint on the error path is what makes -resume useful.
	saveCheckpoint := func() {
		if *checkpoint == "" {
			return
		}
		if err := sess.SaveFile(*checkpoint); err != nil {
			fmt.Fprintf(werr, "expdriver: -checkpoint: %v\n", err)
		}
	}

	experiments := []struct {
		flag, title string
		run         func() error
	}{
		{"table1", "Table I", func() error { _, err := harness.Table1(ctx, w, opts); return err }},
		{"fig8", "Figure 8", func() error { _, err := harness.Figure8(ctx, w, opts); return err }},
		{"fig9", "Figure 9", func() error { _, err := harness.Figure9(ctx, w, opts); return err }},
		{"fig10", "Figure 10", func() error { _, err := harness.Figure10(ctx, w, opts); return err }},
		{"overhead", "Overhead", func() error { _, err := harness.Overhead(ctx, w, opts); return err }},
		{"sensitivity", "Sensitivity", func() error { _, err := harness.Sensitivity(ctx, w, opts); return err }},
		{"ablation", "Ablation", func() error { _, err := harness.Ablation(ctx, w, opts); return err }},
		{"gc", "GC selection", func() error { _, err := harness.GCSelection(ctx, w, opts); return err }},
	}

	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.flag {
			continue
		}
		ran = true
		fmt.Fprintf(w, "\n================ %s ================\n", e.title)
		if err := e.run(); err != nil {
			saveCheckpoint()
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				fmt.Fprintf(werr, "expdriver: %s: deadline exceeded: %v\n", e.title, err)
			case errors.Is(err, context.Canceled):
				fmt.Fprintf(werr, "expdriver: %s: canceled: %v\n", e.title, err)
			default:
				fmt.Fprintf(werr, "expdriver: %s: %v\n", e.title, err)
			}
			return 1
		}
	}
	if !ran {
		fmt.Fprintf(werr, "expdriver: unknown experiment %q\n", *exp)
		return 2
	}
	saveCheckpoint()
	if *tracestats {
		printTraceStats(werr)
	}
	return 0
}

// writeLookupProfile dumps one of the runtime's named profiles ("mutex",
// "block") to path.
func writeLookupProfile(werr io.Writer, name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(werr, "expdriver: -%sprofile: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(werr, "expdriver: -%sprofile: %v\n", name, err)
	}
}

// printTraceStats reports the process-global register-trace counters.
// They go to stderr: experiment output on stdout must stay byte-stable
// across serial and parallel schedules, and host-side trace activity is
// schedule-dependent diagnostics, not a virtual observable.
func printTraceStats(werr io.Writer) {
	st := interp.ReadTraceStats()
	fmt.Fprintf(werr, "trace tier: built=%d head_entries=%d osr_entries=%d side_exits=%d traps=%d stress_deopts=%d guard_fails=%d inlined_calls=%d inline_deopts=%d\n",
		st.Built, st.HeadEntries, st.OSREntries, st.SideExits, st.Traps,
		st.Deopts, st.GuardFails, st.InlinedCalls, st.InlineDeopts)
	if len(st.Degrade) == 0 {
		fmt.Fprintf(werr, "trace tier: no degradations\n")
		return
	}
	reasons := make([]string, 0, len(st.Degrade))
	for r := range st.Degrade {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(werr, "trace tier: degraded %s=%d\n", r, st.Degrade[r])
	}
	printCompileStats(werr)
}

// printCompileStats reports the plan-install race counters and, when a
// background compilation pool ran, its queue and build-time counters.
// Stderr like the trace counters: host-side, schedule-dependent
// diagnostics must never touch the schedule-stable stdout stream.
func printCompileStats(werr io.Writer) {
	pi := interp.ReadPlanInstallStats()
	fmt.Fprintf(werr, "plan installs: lost_plans=%d lost_closures=%d lost_traces=%d\n",
		pi.LostPlans, pi.LostClosures, pi.LostTraces)
	st := exec.CompilePoolStats()
	if st == nil {
		fmt.Fprintf(werr, "compile pool: not used\n")
		return
	}
	fmt.Fprintf(werr, "compile pool: enqueued=%d built=%d lost_installs=%d dropped=%d deduped=%d queue_high_water=%d\n",
		st.Enqueued, st.Built, st.LostInstalls, st.Dropped, st.Deduped, st.QueueHighWater)
	fmt.Fprintf(werr, "compile pool: closure builds n=%d mean=%dns p50=%dns p99=%dns; trace builds n=%d mean=%dns p50=%dns p99=%dns\n",
		st.Closure.Count, st.Closure.MeanNs, st.Closure.P50Ns, st.Closure.P99Ns,
		st.Trace.Count, st.Trace.MeanNs, st.Trace.P50Ns, st.Trace.P99Ns)
}
