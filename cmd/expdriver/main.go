// Command expdriver regenerates the paper's evaluation artifacts — Table
// I, Figures 8, 9 and 10, the overhead analysis, the sensitivity study —
// plus this reproduction's ablations. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	expdriver -exp all
//	expdriver -exp table1 -seed 7
//	expdriver -exp fig8 -bench mtrt,raytracer -runs 40
//	expdriver -exp fig10 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"evolvevm/internal/harness"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table1|fig8|fig9|fig10|overhead|sensitivity|ablation|gc|all")
		seed       = flag.Int64("seed", 1, "corpus and arrival-order seed")
		runs       = flag.Int("runs", 0, "runs per benchmark (0 = paper defaults)")
		corpus     = flag.Int("corpus", 0, "inputs per benchmark (0 = paper defaults)")
		quick      = flag.Bool("quick", false, "shrink corpora and sequences")
		parallel   = flag.Bool("parallel", true, "run independent benchmarks concurrently")
		benches    = flag.String("bench", "", "comma-separated benchmark filter")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// Profiles must be flushed even when an experiment fails, so teardown
	// runs before every exit path instead of via defer (os.Exit skips
	// deferred calls).
	stopProfiles := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memprofile != "" {
		stopCPU := stopProfiles
		stopProfiles = func() {
			stopCPU()
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "expdriver: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "expdriver: -memprofile: %v\n", err)
			}
		}
	}

	opts := harness.Options{
		Seed:     *seed,
		Runs:     *runs,
		Corpus:   *corpus,
		Quick:    *quick,
		Parallel: *parallel,
	}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	w := os.Stdout
	run := func(name string, f func() error) {
		fmt.Fprintf(w, "\n================ %s ================\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: %s: %v\n", name, err)
			stopProfiles()
			os.Exit(1)
		}
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false
	if want("table1") {
		run("Table I", func() error { _, err := harness.Table1(w, opts); return err })
		ran = true
	}
	if want("fig8") {
		run("Figure 8", func() error { _, err := harness.Figure8(w, opts); return err })
		ran = true
	}
	if want("fig9") {
		run("Figure 9", func() error { _, err := harness.Figure9(w, opts); return err })
		ran = true
	}
	if want("fig10") {
		run("Figure 10", func() error { _, err := harness.Figure10(w, opts); return err })
		ran = true
	}
	if want("overhead") {
		run("Overhead", func() error { _, err := harness.Overhead(w, opts); return err })
		ran = true
	}
	if want("sensitivity") {
		run("Sensitivity", func() error { _, err := harness.Sensitivity(w, opts); return err })
		ran = true
	}
	if want("ablation") {
		run("Ablation", func() error { _, err := harness.Ablation(w, opts); return err })
		ran = true
	}
	if want("gc") {
		run("GC selection", func() error { _, err := harness.GCSelection(w, opts); return err })
		ran = true
	}
	stopProfiles()
	if !ran {
		fmt.Fprintf(os.Stderr, "expdriver: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
