package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnknownExperimentExits2(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr %q missing diagnosis", errOut.String())
	}
}

func TestBadFlagExits2(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestMissingResumeFileExits1(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "table1",
		"-resume", filepath.Join(t.TempDir(), "absent.json")}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "-resume") {
		t.Errorf("stderr %q does not mention -resume", errOut.String())
	}
}

// TestCheckpointResumeReproducesOutput is the driver-level acceptance
// check: a completed run saves a checkpoint, and a resumed run replays it
// to byte-identical stdout.
func TestCheckpointResumeReproducesOutput(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.json")
	args := []string{"-exp", "table1", "-quick", "-seed", "8", "-bench", "compress"}

	var first, firstErr bytes.Buffer
	if code := run(append(args, "-checkpoint", ckpt), &first, &firstErr); code != 0 {
		t.Fatalf("first run exit %d: %s", code, firstErr.String())
	}
	var resumed, resumedErr bytes.Buffer
	if code := run(append(args, "-resume", ckpt), &resumed, &resumedErr); code != 0 {
		t.Fatalf("resumed run exit %d: %s", code, resumedErr.String())
	}
	if first.String() != resumed.String() {
		t.Errorf("resumed stdout differs from original:\n--- first ---\n%s--- resumed ---\n%s",
			first.String(), resumed.String())
	}
}

// TestDeadlineAbortIsTypedAndResumable: an expiring -timeout must produce
// a clean typed cancellation (exit 1, "deadline exceeded" on stderr, no
// panic), save the checkpoint, and a -resume of that checkpoint must then
// finish with the same output as an uninterrupted run.
func TestDeadlineAbortIsTypedAndResumable(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.json")
	args := []string{"-exp", "fig8", "-quick", "-seed", "8", "-bench", "mtrt"}

	var aborted, abortedErr bytes.Buffer
	code := run(append(args, "-checkpoint", ckpt, "-timeout", "30ms"), &aborted, &abortedErr)
	if code != 1 {
		t.Fatalf("interrupted run exit %d (stderr %q), want 1", code, abortedErr.String())
	}
	if !strings.Contains(abortedErr.String(), "deadline exceeded") {
		t.Errorf("stderr %q does not report a typed deadline abort", abortedErr.String())
	}

	var resumed, resumedErr bytes.Buffer
	if code := run(append(args, "-resume", ckpt), &resumed, &resumedErr); code != 0 {
		t.Fatalf("resumed run exit %d: %s", code, resumedErr.String())
	}
	var clean, cleanErr bytes.Buffer
	if code := run(args, &clean, &cleanErr); code != 0 {
		t.Fatalf("clean run exit %d: %s", code, cleanErr.String())
	}
	if resumed.String() != clean.String() {
		t.Errorf("post-abort resume differs from an uninterrupted run:\n--- resumed ---\n%s--- clean ---\n%s",
			resumed.String(), clean.String())
	}
}
