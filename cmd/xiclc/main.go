// Command xiclc checks XICL specifications and translates command lines
// into feature vectors.
//
// Usage:
//
//	xiclc -spec route.xicl                      # parse and summarize
//	xiclc -spec route.xicl -- -n 3 graph.txt    # translate a command line
//	xiclc -program mtrt -inputs 3               # translate generated inputs
//	                                              of a bundled benchmark
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"evolvevm/internal/programs"
	"evolvevm/internal/xicl"
)

func main() {
	var (
		specPath = flag.String("spec", "", "XICL specification file")
		progName = flag.String("program", "", "use a bundled benchmark's spec and extractors")
		inputs   = flag.Int("inputs", 1, "with -program: number of generated inputs to translate")
		seed     = flag.Int64("seed", 1, "with -program: corpus seed")
		genPath  = flag.String("gen", "", "draft a spec skeleton from a SYNOPSIS/OPTIONS usage file")
	)
	flag.Parse()

	switch {
	case *genPath != "":
		usage, err := os.ReadFile(*genPath)
		if err != nil {
			fatal(err)
		}
		src, err := xicl.GenerateSpec(string(usage))
		if err != nil {
			fatal(err)
		}
		fmt.Print(src)
	case *specPath != "":
		src, err := os.ReadFile(*specPath)
		if err != nil {
			fatal(err)
		}
		spec, err := xicl.ParseSpec(string(src))
		if err != nil {
			fatal(err)
		}
		summarize(spec)
		if args := flag.Args(); len(args) > 0 {
			tr := xicl.NewTranslator(spec, xicl.NewRegistry(), xicl.OSFS{})
			vec, err := tr.BuildFVector(args)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("feature vector: %s\n", vec)
			fmt.Printf("extraction cost: %d cycles\n", tr.Cost())
		}

	case *progName != "":
		b := programs.ByName(*progName)
		if b == nil {
			fatal(fmt.Errorf("unknown program %q", *progName))
		}
		spec, err := b.ParsedSpec()
		if err != nil {
			fatal(err)
		}
		reg, err := b.Registry()
		if err != nil {
			fatal(err)
		}
		summarize(spec)
		for _, in := range b.GenInputs(rand.New(rand.NewSource(*seed)), *inputs) {
			tr := xicl.NewTranslator(spec, reg, in.Files)
			vec, err := tr.BuildFVector(in.Args)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("\ninput:   %s %v\n", b.Name, in.Args)
			fmt.Printf("vector:  %s\n", vec)
		}

	default:
		fmt.Fprintln(os.Stderr, "xiclc: need -spec FILE or -program NAME")
		os.Exit(2)
	}
}

func summarize(spec *xicl.Spec) {
	fmt.Printf("spec: %d options, %d operands, %d runtime constructs\n",
		len(spec.Options), len(spec.Operands), len(spec.Runtime))
	for _, o := range spec.Options {
		fmt.Printf("  option  %-18s type=%-4v attrs=%v default=%q has_arg=%v\n",
			strings.Join(o.Names, ":"), o.Type, o.Attrs, o.Default, o.HasArg)
	}
	for _, o := range spec.Operands {
		hi := fmt.Sprint(o.Hi)
		if o.Hi == xicl.PosEnd {
			hi = "$"
		}
		fmt.Printf("  operand %d:%-16s type=%-4v attrs=%v\n", o.Lo, hi, o.Type, o.Attrs)
	}
	for _, r := range spec.Runtime {
		fmt.Printf("  runtime %-18s count=%d default=%g\n", r.Name, r.Count, r.Default)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "xiclc: %v\n", err)
	os.Exit(1)
}
