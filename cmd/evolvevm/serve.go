package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"evolvevm/internal/harness"
	"evolvevm/internal/serve"
	"evolvevm/internal/traffic"
)

// profileFlags registers -mutexprofile/-blockprofile on the serving
// subcommands. start (call after Parse) enables sampling; stop writes
// the requested profiles on exit. Contention profiling is the acceptance
// oracle for the sharded serving path: the mutex profile of a loaded
// server must no longer show the old global cache and bookkeeping locks.
func profileFlags(fs *flag.FlagSet) (start, stop func()) {
	var (
		mutexprofile = fs.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
		blockprofile = fs.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	)
	start = func() {
		if *mutexprofile != "" {
			// Fraction 1 samples every contention event — these runs are for
			// finding serializing locks, not low-overhead monitoring.
			runtime.SetMutexProfileFraction(1)
		}
		if *blockprofile != "" {
			runtime.SetBlockProfileRate(1)
		}
	}
	write := func(name, path string) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
			fatal(err)
		}
	}
	stop = func() {
		write("mutex", *mutexprofile)
		write("block", *blockprofile)
	}
	return start, stop
}

// serveScenario maps the -scenario flag shared by the serving
// subcommands.
func serveScenario(name string) (harness.Scenario, error) {
	switch name {
	case "default":
		return harness.ScenarioDefault, nil
	case "rep":
		return harness.ScenarioRep, nil
	case "evolve":
		return harness.ScenarioEvolve, nil
	case "null":
		return harness.ScenarioNull, nil
	}
	return 0, fmt.Errorf("unknown scenario %q", name)
}

// serverFlags registers the serve.Config flags shared by serve, replay,
// and loadtest, returning a filler that builds the config after Parse.
func serverFlags(fs *flag.FlagSet) func() (serve.Config, error) {
	var (
		workers   = fs.Int("workers", 0, "execution pool size (0 = GOMAXPROCS)")
		queue     = fs.Int("queue", 256, "admitted-request queue depth")
		tenantCap = fs.Int("tenant-cap", 0, "per-tenant in-flight cap (0 = unlimited)")
		epoch     = fs.Int("epoch", 32, "shared-tier publication cadence in sequence numbers")
		scenario  = fs.String("scenario", "evolve", "default|rep|evolve|null")
		seed      = fs.Int64("seed", 1, "corpus seed")
		corpus    = fs.Int("corpus", 0, "per-benchmark input corpus size (0 = default)")
		isolated  = fs.Bool("isolated", false, "disable the shared cross-tenant learning tier")
		benches   = fs.String("benches", "", "comma-separated benchmarks to serve (default: all)")
		asyncComp = fs.Bool("async-compile", false, "build tier plans on a background pool instead of inline at the promotion point (also: EVOLVEVM_ASYNC_COMPILE)")
		syncComp  = fs.Bool("sync-compile", false, "force inline tier-plan builds, overriding -async-compile and the env knob")
	)
	return func() (serve.Config, error) {
		sc, err := serveScenario(*scenario)
		if err != nil {
			return serve.Config{}, err
		}
		cfg := serve.Config{
			Workers:     *workers,
			QueueDepth:  *queue,
			TenantCap:   *tenantCap,
			EpochLength: *epoch,
			Scenario:    sc,
			Seed:        *seed,
			CorpusSize:  *corpus,
			Isolated:    *isolated,
		}
		cfg.Substrate.AsyncCompile = *asyncComp
		cfg.Substrate.SyncCompile = *syncComp
		if *benches != "" {
			cfg.Benches = strings.Split(*benches, ",")
		}
		return cfg, nil
	}
}

// runServe is `evolvevm serve`: a long-running multi-tenant HTTP front
// end. SIGINT/SIGTERM drains in-flight requests, optionally writing the
// recorded trace for later byte-identical replay.
func runServe(args []string) {
	fs := flag.NewFlagSet("evolvevm serve", flag.ExitOnError)
	addr := fs.String("addr", ":8347", "listen address")
	record := fs.String("record", "", "write the request/outcome trace here on shutdown")
	build := serverFlags(fs)
	startProf, stopProf := profileFlags(fs)
	fs.Parse(args)
	startProf()

	cfg, err := build()
	if err != nil {
		fatal(err)
	}
	cfg.Record = *record != ""
	s, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("serving on %s (%d workers, queue %d, epoch %d)\n",
		*addr, cfg.Workers, cfg.QueueDepth, cfg.EpochLength)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("%v: draining\n", sig)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = hs.Shutdown(shutdownCtx)
	s.Close()
	if *record != "" {
		if tr := s.RecordedTrace(); tr != nil {
			if err := tr.WriteFile(*record); err != nil {
				fatal(err)
			}
			fmt.Printf("recorded %d requests -> %s\n", len(tr.Requests), *record)
		}
	}
	st := s.StatsNow()
	fmt.Printf("served %d requests (%d traps, %d canceled, %d rejected)\n",
		st.Completed, st.Traps, st.Canceled, st.Rejected)
	stopProf()
}

// runReplay is `evolvevm replay`: re-run a recorded trace through a
// fresh server and verify every outcome checksum matches the recording.
func runReplay(args []string) {
	fs := flag.NewFlagSet("evolvevm replay", flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace file to replay (required)")
	out := fs.String("out", "", "write the re-recorded trace here")
	noVerify := fs.Bool("no-verify", false, "skip comparing outcomes against the recording")
	clients := fs.Int("clients", 1, "concurrent submission loops (chain-partitioned; outcomes are identical for every value)")
	build := serverFlags(fs)
	fs.Parse(args)

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "evolvevm replay: -trace is required")
		os.Exit(2)
	}
	tr, err := traffic.ReadFile(*tracePath)
	if err != nil {
		fatal(err)
	}
	cfg, err := build()
	if err != nil {
		fatal(err)
	}
	if len(cfg.Benches) == 0 {
		cfg.Benches = traceBenches(tr)
	}
	s, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	if err := s.RunClients(context.Background(), tr, *clients); err != nil {
		fatal(err)
	}
	if err := s.LedgerBalanced(); err != nil {
		fatal(err)
	}

	got := s.Outcomes()
	if !*noVerify && len(tr.Outcomes) > 0 {
		want := tr.OutcomeMap()
		mismatches := 0
		for _, o := range got {
			w, ok := want[o.Seq]
			if !ok {
				continue
			}
			if w != o {
				mismatches++
				if mismatches <= 10 {
					fmt.Fprintf(os.Stderr, "seq %d diverged: recorded %+v, replayed %+v\n", o.Seq, w, o)
				}
			}
		}
		if mismatches > 0 {
			fmt.Fprintf(os.Stderr, "evolvevm replay: %d of %d outcomes diverged from the recording\n",
				mismatches, len(got))
			os.Exit(1)
		}
		fmt.Printf("replayed %d requests, all outcomes match the recording\n", len(got))
	} else {
		fmt.Printf("replayed %d requests\n", len(got))
	}
	if *out != "" {
		tr.Outcomes = got
		if err := tr.WriteFile(*out); err != nil {
			fatal(err)
		}
	}
}

// traceBenches collects the distinct benchmarks a trace exercises, so
// replay servers construct only the prototypes they need.
func traceBenches(tr *traffic.Trace) []string {
	seen := make(map[string]bool)
	var out []string
	for _, req := range tr.Requests {
		if !seen[req.Bench] {
			seen[req.Bench] = true
			out = append(out, req.Bench)
		}
	}
	return out
}

// runLoadTest is `evolvevm loadtest`: generate a seeded workload, serve
// it, and report deterministic checksums plus latency/throughput.
func runLoadTest(args []string) {
	fs := flag.NewFlagSet("evolvevm loadtest", flag.ExitOnError)
	var (
		requests  = fs.Int("requests", 2000, "workload size")
		tenants   = fs.Int("tenants", 8, "tenant count")
		meanGap   = fs.Int64("mean-gap", 100, "mean inter-arrival gap in virtual microseconds")
		deadline  = fs.Int64("deadline", 0, "per-request deadline in microseconds (0 = none)")
		cold      = fs.String("cold", "", "cold-tenant name for the shared-learning experiment")
		coldReqs  = fs.Int("cold-requests", 16, "cold tenant's request count")
		compare   = fs.Bool("compare", false, "also run the isolated control arm for the cold-start comparison")
		traceOut  = fs.String("trace-out", "", "write the generated+recorded trace here")
		benchName = fs.String("bench", "", "emit a go-bench line under this name instead of JSON")
		clients   = fs.Int("clients", 1, "concurrent submission loops (chain-partitioned; checksums are identical for every value)")
	)
	build := serverFlags(fs)
	startProf, stopProf := profileFlags(fs)
	fs.Parse(args)
	startProf()
	defer stopProf()

	cfg, err := build()
	if err != nil {
		fatal(err)
	}
	lc := serve.LoadConfig{
		Traffic: traffic.GenConfig{
			Seed:           cfg.Seed,
			Requests:       *requests,
			Tenants:        *tenants,
			Benches:        cfg.Benches,
			MeanGapMicros:  *meanGap,
			DeadlineMicros: *deadline,
			ColdTenant:     *cold,
			ColdRequests:   *coldReqs,
		},
		Server:  cfg,
		Compare: *compare,
		Clients: *clients,
	}
	if len(lc.Traffic.Benches) == 0 {
		lc.Traffic.Benches = []string{"compress", "search"}
	}
	rep, tr, err := serve.LoadTest(context.Background(), lc)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		if err := tr.WriteFile(*traceOut); err != nil {
			fatal(err)
		}
	}
	if *benchName != "" {
		rep.WriteBench(os.Stdout, *benchName)
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}
