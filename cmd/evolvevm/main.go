// Command evolvevm runs a benchmark program on the virtual machine under
// a chosen optimization scenario, optionally persisting the evolvable
// VM's learned state between invocations.
//
// Usage:
//
//	evolvevm -list
//	evolvevm -program mtrt -scenario evolve -runs 20
//	evolvevm -program compress -scenario default -runs 5 -v
//	evolvevm -program mtrt -scenario evolve -runs 10 -state mtrt.model
//	evolvevm -asm prog.asm -g n=5000 -g mode=1       # run your own program
//
// Serving subcommands (see cmd/evolvevm/serve.go):
//
//	evolvevm serve -addr :8347 -benches compress,search -record trace.json
//	evolvevm replay -trace trace.json
//	evolvevm loadtest -requests 2000 -tenants 8 -cold newbie -compare
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"evolvevm/internal/aos"
	"evolvevm/internal/bytecode"
	"evolvevm/internal/harness"
	"evolvevm/internal/jit"
	"evolvevm/internal/opt"
	"evolvevm/internal/programs"
	"evolvevm/internal/stats"
	"evolvevm/internal/vm"
)

// globalFlags collects repeated -g name=value assignments.
type globalFlags map[string]bytecode.Value

func (g globalFlags) String() string { return fmt.Sprint(map[string]bytecode.Value(g)) }

func (g globalFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	if strings.ContainsAny(val, ".eE") {
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return err
		}
		g[name] = bytecode.Float(f)
		return nil
	}
	n, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return err
	}
	g[name] = bytecode.Int(n)
	return nil
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			runServe(os.Args[2:])
			return
		case "replay":
			runReplay(os.Args[2:])
			return
		case "loadtest":
			runLoadTest(os.Args[2:])
			return
		}
	}
	var (
		list     = flag.Bool("list", false, "list available programs")
		progName = flag.String("program", "", "benchmark program to run")
		scenario = flag.String("scenario", "evolve", "default|rep|evolve|null")
		runs     = flag.Int("runs", 10, "number of production runs to simulate")
		corpus   = flag.Int("corpus", 0, "input corpus size (0 = program default)")
		seed     = flag.Int64("seed", 1, "corpus and arrival-order seed")
		state    = flag.String("state", "", "persist the cross-run state (models, repository, baselines) in this file")
		timeout  = flag.Duration("timeout", 0, "abort in-flight runs after this long (0 = no deadline)")
		verbose  = flag.Bool("v", false, "print per-method levels after each run")
		feedback = flag.Bool("feedback", false, "after the runs, print XICL spec feedback (paper §VI)")
		asmPath  = flag.String("asm", "", "run an assembly file instead of a bundled program")
		dump     = flag.Int("dump", -2, "with -asm: disassemble every function at this optimization level (-1..2) instead of running")
	)
	globals := globalFlags{}
	flag.Var(globals, "g", "global assignment name=value for -asm (repeatable)")
	flag.Parse()

	if *asmPath != "" {
		if *dump >= -1 {
			dumpAsm(*asmPath, *dump)
			return
		}
		runAsm(*asmPath, *scenario, globals, *verbose)
		return
	}

	if *list {
		fmt.Println("program     suite      inputs  input-sensitive")
		for _, b := range append(programs.All(), programs.Extensions()...) {
			fmt.Printf("%-11s %-10s %6d  %v\n", b.Name, b.Suite, b.DefaultCorpusSize, b.InputSensitive)
		}
		return
	}

	b := programs.ByName(*progName)
	if b == nil {
		fmt.Fprintf(os.Stderr, "evolvevm: unknown program %q (try -list)\n", *progName)
		os.Exit(2)
	}
	var sc harness.Scenario
	switch *scenario {
	case "default":
		sc = harness.ScenarioDefault
	case "rep":
		sc = harness.ScenarioRep
	case "evolve":
		sc = harness.ScenarioEvolve
	case "null":
		sc = harness.ScenarioNull
	default:
		fmt.Fprintf(os.Stderr, "evolvevm: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	r, err := harness.NewRunner(b, *corpus, *seed)
	if err != nil {
		fatal(err)
	}
	if *state != "" {
		if blob, err := os.ReadFile(*state); err == nil {
			if err := r.State.Restore(json.RawMessage(blob)); err != nil {
				fatal(err)
			}
			fmt.Printf("loaded state: %d prior runs, confidence %.3f\n",
				r.Evolver().Runs(), r.Evolver().Confidence())
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	order := r.Order(stats.Stream(*seed, "cli", "order"), *runs)
	fmt.Printf("%-4s %-28s %12s %8s", "run", "input", "cycles", "speedup")
	if sc == harness.ScenarioEvolve {
		fmt.Printf(" %6s %6s %5s", "conf", "acc", "pred")
	}
	fmt.Println()
	for i, idx := range order {
		res, err := r.RunOne(ctx, sc, r.Inputs[idx])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-4d %-28s %12d %8.3f", i+1, res.InputID, res.Cycles, res.Speedup)
		if res.Evolve != nil {
			fmt.Printf(" %6.3f %6.3f %5v", res.Evolve.Confidence, res.Evolve.Accuracy,
				res.Evolve.Predicted)
		}
		fmt.Println()
		if *verbose {
			for fn, level := range res.Levels {
				if level >= 0 {
					fmt.Printf("     %-20s level %d\n", r.Prog.Funcs[fn].Name, level)
				}
			}
		}
	}

	if *feedback && sc == harness.ScenarioEvolve {
		vec, _, err := r.Features(r.Inputs[0])
		if err != nil {
			fatal(err)
		}
		fmt.Print(r.Evolver().Feedback(vec.Names()))
	}

	if *state != "" && (sc == harness.ScenarioEvolve || sc == harness.ScenarioRep) {
		blob, err := r.State.Snapshot()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*state, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("saved state: %d runs, confidence %.3f -> %s\n",
			r.Evolver().Runs(), r.Evolver().Confidence(), *state)
	}
}

// dumpAsm shows what the optimizer does to a program at one level — a
// compiler-explorer view of the tiers.
func dumpAsm(path string, level int) {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := bytecode.Assemble(path, string(src))
	if err != nil {
		fatal(err)
	}
	for idx, f := range prog.Funcs {
		if level < 0 {
			fmt.Printf("; %s at baseline (level -1)\n%s\n", f.Name, bytecode.Disassemble(prog, f))
			continue
		}
		g, res, err := opt.Optimize(prog, idx, level)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("; %s at O%d: %d -> %d instrs, compile %d cycles, passes hit: %v\n%s\n",
			f.Name, level, res.InInstrs, res.OutInstrs, res.Cycles, res.PassesHit,
			bytecode.Disassemble(prog, g))
	}
}

// runAsm executes a user-supplied assembly program once under the chosen
// controller, reporting cycles, compiles, and per-method outcomes.
func runAsm(path, scenario string, globals globalFlags, verbose bool) {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := bytecode.Assemble(path, string(src))
	if err != nil {
		fatal(err)
	}
	var ctrl vm.Controller
	switch scenario {
	case "default", "evolve", "rep":
		// Without an XICL spec and cross-run state, the evolvable and
		// repository VMs behave like the default reactive one.
		ctrl = aos.NewReactive()
	case "null":
		ctrl = vm.NullController{}
	default:
		fatal(fmt.Errorf("unknown scenario %q", scenario))
	}
	m := vm.New(prog, jit.DefaultConfig(), ctrl)
	for name, v := range globals {
		if err := m.Engine.SetGlobal(name, v); err != nil {
			fatal(err)
		}
	}
	result, err := m.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("result         = %v\n", result)
	fmt.Printf("total cycles   = %d\n", m.TotalCycles())
	fmt.Printf("compile cycles = %d (%d recompilations)\n", m.CompileCycles, m.Recompilations)
	for _, out := range m.Engine.Output {
		fmt.Printf("output: %v\n", out)
	}
	if verbose {
		fmt.Printf("%-20s %6s %12s %10s %14s\n", "method", "level", "invocations", "samples", "work")
		for fn, f := range prog.Funcs {
			fmt.Printf("%-20s %6d %12d %10d %14d\n",
				f.Name, m.Level(fn), m.Engine.Invocations[fn], m.Samples[fn], m.Engine.Work[fn])
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "evolvevm: %v\n", err)
	os.Exit(1)
}
