package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
cpu: Test CPU
BenchmarkFast-8        3       100 ns/op
BenchmarkFast-8        3       120 ns/op
BenchmarkAlloc-8       2      2000 ns/op     512 B/op      7 allocs/op
PASS
`

func TestParseAggregates(t *testing.T) {
	rep, err := parse(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.CPU != "Test CPU" {
		t.Errorf("machine header not parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(rep.Benchmarks))
	}
	// Sorted by name: Alloc first.
	a, f := rep.Benchmarks[0], rep.Benchmarks[1]
	if a.Name != "BenchmarkAlloc" || a.BytesPerOp != 512 || a.AllocsPerOp != 7 {
		t.Errorf("alloc entry wrong: %+v", a)
	}
	if f.Name != "BenchmarkFast" || f.Runs != 2 || f.MinNsPerOp != 100 ||
		f.MaxNsPerOp != 120 || f.MeanNsPerOp != 110 {
		t.Errorf("fast entry wrong: %+v", f)
	}
}

func writeBenchFile(t *testing.T, dir, text string) string {
	t.Helper()
	p := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(p, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTrajectoryAppendAndReplace(t *testing.T) {
	dir := t.TempDir()
	in := writeBenchFile(t, dir, benchText)
	out := filepath.Join(dir, "traj.json")

	var stdout, stderr bytes.Buffer
	if code := runGenerate([]string{"-o", out, "-commit", "aaa", in}, &stdout, &stderr); code != 0 {
		t.Fatalf("first append exited %d: %s", code, stderr.String())
	}
	if code := runGenerate([]string{"-o", out, "-commit", "bbb", in}, &stdout, &stderr); code != 0 {
		t.Fatalf("second append exited %d: %s", code, stderr.String())
	}
	// Same commit again: replaces, does not grow.
	if code := runGenerate([]string{"-o", out, "-commit", "bbb", in}, &stdout, &stderr); code != 0 {
		t.Fatalf("replace exited %d: %s", code, stderr.String())
	}

	traj, err := loadTrajectory(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.History) != 2 {
		t.Fatalf("want 2 history entries, got %d", len(traj.History))
	}
	if traj.History[0].Commit != "aaa" || traj.History[1].Commit != "bbb" {
		t.Errorf("commits wrong: %q %q", traj.History[0].Commit, traj.History[1].Commit)
	}

	snap, err := latestSnapshot(out)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Commit != "bbb" || len(snap.Benchmarks) != 2 {
		t.Errorf("latest snapshot wrong: %+v", snap)
	}
}

func TestTrajectoryMigratesFlatReport(t *testing.T) {
	dir := t.TempDir()
	in := writeBenchFile(t, dir, benchText)
	out := filepath.Join(dir, "legacy.json")

	// Seed a pre-trajectory flat report.
	legacy := Report{Benchmarks: []Entry{{Name: "BenchmarkOld", Runs: 1, MeanNsPerOp: 50}}}
	data, _ := json.Marshal(legacy)
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := runGenerate([]string{"-o", out, "-commit", "ccc", in}, &stdout, &stderr); code != 0 {
		t.Fatalf("append over flat report exited %d: %s", code, stderr.String())
	}
	traj, err := loadTrajectory(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.History) != 2 {
		t.Fatalf("want migrated entry + new entry, got %d", len(traj.History))
	}
	if traj.History[0].Benchmarks[0].Name != "BenchmarkOld" {
		t.Errorf("flat report not migrated as oldest entry: %+v", traj.History[0])
	}
}

func TestFlatOutput(t *testing.T) {
	dir := t.TempDir()
	in := writeBenchFile(t, dir, benchText)
	out := filepath.Join(dir, "flat.json")
	var stdout, stderr bytes.Buffer
	if code := runGenerate([]string{"-flat", "-o", out, in}, &stdout, &stderr); code != 0 {
		t.Fatalf("flat exited %d: %s", code, stderr.String())
	}
	snap, err := latestSnapshot(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Errorf("flat snapshot wrong: %+v", snap)
	}
}

func writeSnapshot(t *testing.T, dir, name string, entries []Entry) string {
	t.Helper()
	p := filepath.Join(dir, name)
	data, err := json.Marshal(Report{Benchmarks: entries})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", []Entry{
		{Name: "BenchmarkA", MeanNsPerOp: 1000},
		{Name: "BenchmarkB", MeanNsPerOp: 1000},
	})
	cases := []struct {
		name string
		newA float64
		newB float64
		want int
	}{
		{"improvement", 800, 900, 0},
		{"small regression", 1050, 1000, 0},
		{"warn regression", 1150, 1000, 1},
		{"hard regression", 1300, 1000, 2},
		{"hard beats warn", 1150, 1300, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newer := writeSnapshot(t, dir, "new.json", []Entry{
				{Name: "BenchmarkA", MeanNsPerOp: tc.newA},
				{Name: "BenchmarkB", MeanNsPerOp: tc.newB},
			})
			var stdout, stderr bytes.Buffer
			got := runCompare([]string{"-warn", "0.10", "-fail", "0.25", old, newer}, &stdout, &stderr)
			if got != tc.want {
				t.Errorf("exit %d, want %d\n%s%s", got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

const serveBenchText = `BenchmarkServeLoad 	    2000	      150000 ns/op	      900000 p99-ns	      1234.5 req/s	        4096 vp50-cycles	       65536 vp99-cycles
BenchmarkServeLoad 	    2000	      160000 ns/op	     1100000 p99-ns	      1200.5 req/s	        4096 vp50-cycles	       65536 vp99-cycles
PASS
`

func TestParseCustomMetrics(t *testing.T) {
	rep, err := parse(strings.NewReader(serveBenchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("want 1 benchmark, got %d", len(rep.Benchmarks))
	}
	e := rep.Benchmarks[0]
	if e.Runs != 2 || e.MeanNsPerOp != 155000 {
		t.Errorf("ns/op aggregation wrong: %+v", e)
	}
	want := map[string]float64{
		"p99-ns":      1000000,
		"req/s":       1217.5,
		"vp50-cycles": 4096,
		"vp99-cycles": 65536,
	}
	for unit, v := range want {
		if got := e.Metrics[unit]; got != v {
			t.Errorf("metric %s = %v, want %v", unit, got, v)
		}
	}
	if got := e.MetricsMin["p99-ns"]; got != 900000 {
		t.Errorf("metric min p99-ns = %v, want 900000", got)
	}
}

func TestCompareGatesOnLatencyMetrics(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", []Entry{{
		Name: "BenchmarkServeLoad", MeanNsPerOp: 1000,
		Metrics: map[string]float64{"p99-ns": 1000, "req/s": 500},
	}})
	cases := []struct {
		name string
		p99  float64
		rps  float64
		want int
	}{
		{"all flat", 1000, 500, 0},
		{"p99 warn", 1150, 500, 1},
		{"p99 fail", 1300, 500, 2},
		{"throughput drop is informational", 1000, 100, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newer := writeSnapshot(t, dir, "new.json", []Entry{{
				Name: "BenchmarkServeLoad", MeanNsPerOp: 1000,
				Metrics: map[string]float64{"p99-ns": tc.p99, "req/s": tc.rps},
			}})
			var stdout, stderr bytes.Buffer
			got := runCompare([]string{"-warn", "0.10", "-fail", "0.25", old, newer}, &stdout, &stderr)
			if got != tc.want {
				t.Errorf("exit %d, want %d\n%s%s", got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestCompareGatesOnMinOfRuns: when both sides recorded a min, the gate
// judges min-vs-min and ignores mean movement — one descheduled
// repetition inflating the mean must not read as a regression, while a
// genuinely slower min must.
func TestCompareGatesOnMinOfRuns(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", []Entry{{
		Name: "BenchmarkA", Runs: 5, MinNsPerOp: 1000, MeanNsPerOp: 1100,
		Metrics:    map[string]float64{"p99-ns": 1100},
		MetricsMin: map[string]float64{"p99-ns": 1000},
	}})
	cases := []struct {
		name       string
		min, mean  float64
		p99, p99mn float64
		want       int
		basis      string
	}{
		// Mean blew up 2x (noisy repetition) but the min held: no gate.
		{"noisy mean ignored", 1000, 2200, 1100, 1000, 0, "min"},
		{"min regression gates", 1300, 1300, 1100, 1000, 2, "min"},
		{"metric min regression gates", 1000, 1100, 2200, 1300, 2, "min"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newer := writeSnapshot(t, dir, "new.json", []Entry{{
				Name: "BenchmarkA", Runs: 5, MinNsPerOp: tc.min, MeanNsPerOp: tc.mean,
				Metrics:    map[string]float64{"p99-ns": tc.p99},
				MetricsMin: map[string]float64{"p99-ns": tc.p99mn},
			}})
			var stdout, stderr bytes.Buffer
			got := runCompare([]string{"-warn", "0.10", "-fail", "0.25", old, newer}, &stdout, &stderr)
			if got != tc.want {
				t.Errorf("exit %d, want %d\n%s%s", got, tc.want, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), tc.basis) {
				t.Errorf("basis %q not printed:\n%s", tc.basis, stdout.String())
			}
		})
	}
}

// TestCompareMinFallsBackToMean: baselines written before min recording
// (MinNsPerOp zero, no MetricsMin) are judged on means, and the row says
// so.
func TestCompareMinFallsBackToMean(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", []Entry{{
		Name: "BenchmarkA", MeanNsPerOp: 1000,
		Metrics: map[string]float64{"p99-ns": 1000},
	}})
	newer := writeSnapshot(t, dir, "new.json", []Entry{{
		Name: "BenchmarkA", Runs: 5, MinNsPerOp: 1250, MeanNsPerOp: 1300,
		Metrics:    map[string]float64{"p99-ns": 1300},
		MetricsMin: map[string]float64{"p99-ns": 1250},
	}})
	var stdout, stderr bytes.Buffer
	if got := runCompare([]string{"-warn", "0.10", "-fail", "0.25", old, newer}, &stdout, &stderr); got != 2 {
		t.Errorf("exit %d, want 2 on mean fallback\n%s", got, stdout.String())
	}
	if !strings.Contains(stdout.String(), "mean") {
		t.Errorf("mean basis not printed:\n%s", stdout.String())
	}
}

func TestCompareNewBenchmarkIsNotRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", []Entry{{Name: "BenchmarkA", MeanNsPerOp: 1000}})
	newer := writeSnapshot(t, dir, "new.json", []Entry{
		{Name: "BenchmarkA", MeanNsPerOp: 1000},
		{Name: "BenchmarkNew", MeanNsPerOp: 123456},
	})
	var stdout, stderr bytes.Buffer
	if got := runCompare([]string{old, newer}, &stdout, &stderr); got != 0 {
		t.Errorf("exit %d, want 0 for newly added benchmark\n%s", got, stdout.String())
	}
	if !strings.Contains(stdout.String(), "new") {
		t.Errorf("new benchmark not reported:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "1 benchmark(s) not in baseline") {
		t.Errorf("skip note missing:\n%s", stdout.String())
	}
	// Even a grossly slower new benchmark must not gate: there is no
	// baseline to regress against.
	slower := writeSnapshot(t, dir, "slower.json", []Entry{
		{Name: "BenchmarkA", MeanNsPerOp: 1000},
		{Name: "BenchmarkNew", MeanNsPerOp: 9e9},
	})
	stdout.Reset()
	if got := runCompare([]string{"-warn", "0.01", "-fail", "0.02", old, slower}, &stdout, &stderr); got != 0 {
		t.Errorf("exit %d, want 0: new benchmark gated against missing baseline\n%s", got, stdout.String())
	}
}

func TestCompareMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := runCompare([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, &stdout, &stderr); got != 2 {
		t.Errorf("exit %d, want 2 for unreadable input", got)
	}
}
