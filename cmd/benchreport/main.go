// Command benchreport converts `go test -bench` text output into a JSON
// artifact (BENCH_substrate.json in CI), aggregating repeated -count runs
// per benchmark so the numbers are robust to scheduler noise.
//
// The default artifact is an append-only *trajectory*: each invocation
// appends one snapshot (commit, date, machine, benchmark table) to the
// history instead of overwriting it, so the file records how performance
// evolved per commit. Re-running on the same commit replaces that
// commit's snapshot rather than growing the history. A pre-trajectory
// flat report is migrated into a one-entry history on first append.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -count 5 -benchmem . |
//	    benchreport -o BENCH_substrate.json
//	benchreport -flat -o new.json bench.out
//	benchreport compare [-warn 0.10] [-fail 0.25] old.json new.json
//
// compare diffs the latest snapshots of two artifacts (flat or
// trajectory) and exits 1 if any benchmark regressed by more than the
// warn threshold, 2 if by more than the fail threshold. Latency numbers
// (ns/op and "-ns" custom metrics) gate on the min across runs, not the
// mean: the minimum is the least-contended observation of the same work,
// so one descheduled repetition cannot fake a regression. Each row
// prints which basis it was judged on; comparisons fall back to the
// mean when either side's artifact predates min recording.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Entry aggregates every -count repetition of one benchmark.
type Entry struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	MinNsPerOp  float64 `json:"min_ns_per_op"`
	MeanNsPerOp float64 `json:"mean_ns_per_op"`
	MaxNsPerOp  float64 `json:"max_ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics aggregates custom benchmark units (testing.B.ReportMetric
	// or hand-emitted lines) as per-unit means — the serving load test
	// reports p99-ns, req/s, and virtual-cycle quantiles this way.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// MetricsMin holds the per-unit minimum across runs, the
	// outlier-robust basis compare gates "-ns" units on. Absent in
	// artifacts written before it existed; compare then falls back to
	// the mean for those units.
	MetricsMin map[string]float64 `json:"metrics_min,omitempty"`
}

// Report is one benchmark snapshot: the flat artifact layout, and one
// history element of the trajectory layout.
type Report struct {
	Commit     string  `json:"commit,omitempty"`
	Date       string  `json:"date,omitempty"`
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

// Trajectory is the append-only artifact layout: newest snapshot last.
type Trajectory struct {
	History []Report `json:"history"`
}

type sample struct {
	ns      float64
	bytes   int64
	allocs  int64
	hasMem  bool
	metrics map[string]float64
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:], os.Stdout, os.Stderr))
	}
	os.Exit(runGenerate(os.Args[1:], os.Stdout, os.Stderr))
}

func runGenerate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (default stdout)")
	flat := fs.Bool("flat", false, "write a single flat report instead of appending to a trajectory")
	commit := fs.String("commit", "", "commit id for the snapshot (default: git rev-parse --short HEAD)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	var in io.Reader = os.Stdin
	if rest := fs.Args(); len(rest) == 1 {
		f, err := os.Open(rest[0])
		if err != nil {
			fmt.Fprintf(stderr, "benchreport: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}

	rep, err := parse(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchreport: %v\n", err)
		return 1
	}

	var data []byte
	if *flat {
		data, err = json.MarshalIndent(rep, "", "  ")
	} else {
		rep.Commit = *commit
		if rep.Commit == "" {
			rep.Commit = gitHead()
		}
		rep.Date = time.Now().UTC().Format(time.RFC3339)
		var traj Trajectory
		if *out != "" {
			if traj, err = loadTrajectory(*out); err != nil {
				fmt.Fprintf(stderr, "benchreport: %v\n", err)
				return 1
			}
		}
		traj.append(*rep)
		data, err = json.MarshalIndent(traj, "", "  ")
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchreport: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchreport: %v\n", err)
		return 1
	}
	return 0
}

// append adds rep as the newest snapshot, replacing the newest existing
// snapshot when it carries the same non-empty commit id (re-running the
// bench target on one commit refreshes rather than duplicates).
func (t *Trajectory) append(rep Report) {
	if n := len(t.History); n > 0 && rep.Commit != "" && t.History[n-1].Commit == rep.Commit {
		t.History[n-1] = rep
		return
	}
	t.History = append(t.History, rep)
}

// loadTrajectory reads an existing artifact for appending. A missing file
// yields an empty trajectory; a pre-trajectory flat report becomes a
// one-entry history.
func loadTrajectory(path string) (Trajectory, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Trajectory{}, nil
	}
	if err != nil {
		return Trajectory{}, err
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err == nil && traj.History != nil {
		return traj, nil
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil || len(rep.Benchmarks) == 0 {
		return Trajectory{}, fmt.Errorf("%s: neither a trajectory nor a flat report", path)
	}
	return Trajectory{History: []Report{rep}}, nil
}

// latestSnapshot reads an artifact in either layout and returns its
// newest snapshot, for comparison.
func latestSnapshot(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err == nil && len(traj.History) > 0 {
		return &traj.History[len(traj.History)-1], nil
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil || len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmark snapshot found", path)
	}
	return &rep, nil
}

func gitHead() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// runCompare diffs the latest snapshots of old and new artifacts.
// Latency gates on min-of-runs where both sides recorded it (mean
// otherwise). Exit status: 0 all within the warn threshold, 1 some
// benchmark regressed past warn, 2 past fail.
func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreport compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	warn := fs.Float64("warn", 0.10, "fractional mean regression that makes the exit status 1")
	fail := fs.Float64("fail", 0.25, "fractional mean regression that makes the exit status 2")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) != 2 {
		fmt.Fprintln(stderr, "usage: benchreport compare [-warn F] [-fail F] old.json new.json")
		return 2
	}
	oldRep, err := latestSnapshot(rest[0])
	if err != nil {
		fmt.Fprintf(stderr, "benchreport compare: %v\n", err)
		return 2
	}
	newRep, err := latestSnapshot(rest[1])
	if err != nil {
		fmt.Fprintf(stderr, "benchreport compare: %v\n", err)
		return 2
	}
	status := compareReports(oldRep, newRep, *warn, *fail, stdout)
	switch status {
	case 1:
		fmt.Fprintf(stdout, "WARN: regression > %.0f%% detected\n", *warn*100)
	case 2:
		fmt.Fprintf(stdout, "FAIL: regression > %.0f%% detected\n", *fail*100)
	}
	return status
}

func compareReports(oldRep, newRep *Report, warn, fail float64, w io.Writer) int {
	oldBy := make(map[string]Entry, len(oldRep.Benchmarks))
	for _, e := range oldRep.Benchmarks {
		oldBy[e.Name] = e
	}
	status := 0
	fresh := 0
	// The basis column shows which statistic the row was judged on (min
	// where both sides recorded it, mean for legacy baselines); the runs
	// column shows how many samples each side's gate rests on (old/new) —
	// a comparison against a single-run baseline is noise-prone, and the
	// columns make both visible instead of implicit.
	fmt.Fprintf(w, "%-34s %14s %14s %8s  %5s  %9s\n", "benchmark", "old", "new", "delta", "basis", "runs(o/n)")
	for _, ne := range newRep.Benchmarks {
		oe, ok := oldBy[ne.Name]
		if !ok || oe.MeanNsPerOp <= 0 {
			// Absent from the baseline: nothing to regress against, so the
			// row is informational only and never gates — a newly landed
			// benchmark's first run must be green.
			fresh++
			fmt.Fprintf(w, "%-34s %14s %14.0f %8s  %5s  %9s\n", ne.Name, "-", ne.MeanNsPerOp, "new", "-", fmt.Sprintf("-/%d", ne.Runs))
			continue
		}
		// Min-of-runs is the outlier-robust latency estimator: the same
		// code cannot get faster by luck, only slower by interference, so
		// the minimum is the cleanest observation on both sides. Old
		// snapshots missing the min (pre-recording artifacts use 0) fall
		// back to the mean.
		ov, nv, basis := oe.MeanNsPerOp, ne.MeanNsPerOp, "mean"
		if oe.MinNsPerOp > 0 && ne.MinNsPerOp > 0 {
			ov, nv, basis = oe.MinNsPerOp, ne.MinNsPerOp, "min"
		}
		delta := nv/ov - 1
		mark, status2 := judge(delta, warn, fail)
		if status2 > status {
			status = status2
		}
		fmt.Fprintf(w, "%-34s %14.0f %14.0f %+7.1f%%%s  %5s  %9s\n",
			ne.Name, ov, nv, delta*100, mark, basis, fmt.Sprintf("%d/%d", oe.Runs, ne.Runs))
		// Custom latency metrics (unit suffix "-ns", e.g. the serving load
		// test's p99-ns) gate exactly like ns/op; other units — through-
		// put, virtual cycles — are shown but never fail the comparison,
		// since bigger is not uniformly worse for them.
		units := make([]string, 0, len(ne.Metrics))
		for unit := range ne.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			ov, ok := oe.Metrics[unit]
			if !ok || ov <= 0 {
				continue
			}
			nv := ne.Metrics[unit]
			basis := "mean"
			if omv := oe.MetricsMin[unit]; omv > 0 {
				if nmv := ne.MetricsMin[unit]; nmv > 0 {
					ov, nv, basis = omv, nmv, "min"
				}
			}
			delta := nv/ov - 1
			mark := ""
			if strings.HasSuffix(unit, "-ns") {
				var s2 int
				mark, s2 = judge(delta, warn, fail)
				if s2 > status {
					status = s2
				}
			}
			fmt.Fprintf(w, "%-34s %14.0f %14.0f %+7.1f%%%s  %5s\n",
				ne.Name+" ["+unit+"]", ov, nv, delta*100, mark, basis)
		}
	}
	if fresh > 0 {
		fmt.Fprintf(w, "note: %d benchmark(s) not in baseline; comparison skipped for them\n", fresh)
	}
	return status
}

// judge classifies one fractional regression against the thresholds.
func judge(delta, warn, fail float64) (string, int) {
	switch {
	case delta > fail:
		return " FAIL", 2
	case delta > warn:
		return " warn", 1
	}
	return "", 0
}

func parse(in io.Reader) (*Report, error) {
	rep := &Report{}
	samples := make(map[string][]sample)
	var order []string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  N  123 ns/op [ 456 B/op  7 allocs/op ]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		s := sample{ns: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "B/op":
				s.bytes, s.hasMem = int64(v), true
			case "allocs/op":
				s.allocs, s.hasMem = int64(v), true
			default:
				if s.metrics == nil {
					s.metrics = make(map[string]float64)
				}
				s.metrics[unit] = v
			}
		}
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	sort.Strings(order)
	for _, name := range order {
		ss := samples[name]
		e := Entry{Name: name, Runs: len(ss), MinNsPerOp: ss[0].ns, MaxNsPerOp: ss[0].ns}
		var sum float64
		for _, s := range ss {
			sum += s.ns
			if s.ns < e.MinNsPerOp {
				e.MinNsPerOp = s.ns
			}
			if s.ns > e.MaxNsPerOp {
				e.MaxNsPerOp = s.ns
			}
			if s.hasMem {
				e.BytesPerOp, e.AllocsPerOp = s.bytes, s.allocs
			}
		}
		e.MeanNsPerOp = sum / float64(len(ss))
		metricSums := make(map[string]float64)
		metricRuns := make(map[string]int)
		metricMins := make(map[string]float64)
		for _, s := range ss {
			for unit, v := range s.metrics {
				metricSums[unit] += v
				metricRuns[unit]++
				if cur, ok := metricMins[unit]; !ok || v < cur {
					metricMins[unit] = v
				}
			}
		}
		for unit, total := range metricSums {
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
				e.MetricsMin = make(map[string]float64)
			}
			e.Metrics[unit] = total / float64(metricRuns[unit])
			e.MetricsMin[unit] = metricMins[unit]
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	return rep, nil
}
