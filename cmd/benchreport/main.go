// Command benchreport converts `go test -bench` text output into a JSON
// artifact (BENCH_substrate.json in CI), aggregating repeated -count runs
// per benchmark so the numbers are robust to scheduler noise.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -count 5 . | benchreport -o BENCH_substrate.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry aggregates every -count repetition of one benchmark.
type Entry struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	MinNsPerOp  float64 `json:"min_ns_per_op"`
	MeanNsPerOp float64 `json:"mean_ns_per_op"`
	MaxNsPerOp  float64 `json:"max_ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the JSON artifact layout.
type Report struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

type sample struct {
	ns     float64
	bytes  int64
	allocs int64
	hasMem bool
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if args := flag.Args(); len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	rep, err := parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
}

func parse(in io.Reader) (*Report, error) {
	rep := &Report{}
	samples := make(map[string][]sample)
	var order []string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  N  123 ns/op [ 456 B/op  7 allocs/op ]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		s := sample{ns: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				s.bytes, s.hasMem = v, true
			case "allocs/op":
				s.allocs, s.hasMem = v, true
			}
		}
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	sort.Strings(order)
	for _, name := range order {
		ss := samples[name]
		e := Entry{Name: name, Runs: len(ss), MinNsPerOp: ss[0].ns, MaxNsPerOp: ss[0].ns}
		var sum float64
		for _, s := range ss {
			sum += s.ns
			if s.ns < e.MinNsPerOp {
				e.MinNsPerOp = s.ns
			}
			if s.ns > e.MaxNsPerOp {
				e.MaxNsPerOp = s.ns
			}
			if s.hasMem {
				e.BytesPerOp, e.AllocsPerOp = s.bytes, s.allocs
			}
		}
		e.MeanNsPerOp = sum / float64(len(ss))
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	return rep, nil
}
