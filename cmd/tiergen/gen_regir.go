package main

import (
	"fmt"
	"strings"

	"evolvevm/internal/opspec"
)

// genRegir emits internal/interp/regir_gen.go: the register tier's
// lowering rules. The stack-to-register converter's structural handling
// (symbolic stack, register allocation, exits, inlining) is scaffolding
// in regir.go; which register form each value op lowers to — and the
// trap message a trapping group op reports — is derived from the spec
// here, so a spec-only opcode reaches the trace tier with no converter
// edits.
func genRegir(table []opspec.Op) string {
	var b strings.Builder
	b.WriteString(regirTop)
	for _, o := range table {
		k := regLowerKindOf(o)
		if k == "" {
			continue
		}
		fmt.Fprintf(&b, "bytecode.%s: %s,\n", o.Enum, k)
	}
	b.WriteString("}\n\n")
	b.WriteString(`// regTrapMsg is the trap message of each trapping group op, for the
// register forms that re-check the trap condition at run time.
var regTrapMsg = [bytecode.NumOps]string{
`)
	for _, o := range table {
		if o.Group != "" && o.CanTrap() {
			fmt.Fprintf(&b, "bytecode.%s: %q,\n", o.Enum, o.Traps[0].Msg)
		}
	}
	b.WriteString("}\n")
	return interpFile(b.String())
}

// regLowerKindOf classifies one op for the register tier, or "" for ops
// the converter's scaffolding handles (or refuses) by name.
func regLowerKindOf(o opspec.Op) string {
	switch {
	case o.Group == "intbin" && o.CanTrap():
		return "lowTrapBin"
	case o.Group == "intbin":
		return "lowIntBin"
	case o.Group == "intcmp":
		return "lowIntCmp"
	case o.Group == "fltbin":
		return "lowFltBin"
	case o.Group == "fltcmp":
		return "lowFltCmp"
	case o.Group != "":
		fail("scalar group %q has no register-tier lowering", o.Group)
	case kernelOp(o):
		if o.Pops < 1 || o.Pops > 3 {
			fail("kernel op %s pops %d values; the register tier lowers 1-3", o.Enum, o.Pops)
		}
		return fmt.Sprintf("lowPure%d", o.Pops)
	}
	if o.CanTrap() && o.Group != "" {
		fail("trapping op %s has no register-tier trap lowering", o.Enum)
	}
	return ""
}

const regirTop = `// regLowerKind classifies how the stack-to-register converter lowers a
// value op: scalar groups map to their shared register forms (with
// immediate variants and integer constant folding), trapping group
// members re-check their trap condition at run time, and pure kernel
// ops become rPureN over the generated semantic tables. lowPure1..3
// are consecutive: the converter computes the arity as
// kind - lowPure1 + 1.
type regLowerKind uint8

const (
	lowNone    regLowerKind = iota // converter scaffolding handles (or refuses) by name
	lowIntBin                      // rBin/rBinI
	lowIntCmp                      // rCmp/rCmpI, fusible into branch exits
	lowFltBin                      // rFBin
	lowFltCmp                      // rFCmp, fusible into branch exits
	lowTrapBin                     // rDivMod with trap record
	lowPure1                       // rPure1: semTab1 kernel
	lowPure2                       // rPure2: semTab2 kernel
	lowPure3                       // rPure3: semTab3 kernel
)

// regLower maps every opcode to its lowering rule.
var regLower = [bytecode.NumOps]regLowerKind{
`
