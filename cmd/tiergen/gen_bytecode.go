package main

import (
	"fmt"
	"strings"

	"evolvevm/internal/opspec"
)

// genBytecode emits internal/bytecode/ops_gen.go: the opcode constants in
// spec order, the static metadata table, the control-flow predicate
// flags, and the baseline cycle-cost table.
func genBytecode(table []opspec.Op) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteString("package bytecode\n\n")

	b.WriteString("// The instruction set, in spec order. Opcode byte values are ABI:\n")
	b.WriteString("// serialized programs and experiment checksums depend on them, so the\n")
	b.WriteString("// spec only ever appends.\n")
	b.WriteString("const (\n")
	for i, o := range table {
		if i == 0 {
			fmt.Fprintf(&b, "\t%s Op = iota // %s\n", o.Enum, o.Name)
		} else {
			fmt.Fprintf(&b, "\t%s // %s\n", o.Enum, o.Name)
		}
	}
	b.WriteString("\n\tnumOps\n)\n\n")

	b.WriteString("// opTable holds the static properties of every opcode: mnemonic, stack\n")
	b.WriteString("// effect, and the operand kind checked by the assembler and verifier.\n")
	b.WriteString("var opTable = [numOps]opInfo{\n")
	for _, o := range table {
		kind, _ := o.Operands.GoName()
		fmt.Fprintf(&b, "\t%s: {%q, %d, %d, %s},\n", o.Enum, o.Name, o.Pops, o.Pushes, kind)
	}
	b.WriteString("}\n\n")

	b.WriteString("// opFlags holds the control-flow and trap predicates of every opcode.\n")
	b.WriteString("var opFlags = [numOps]uint8{\n")
	for _, o := range table {
		var flags []string
		if o.Jump {
			flags = append(flags, "flagJump")
		}
		if o.CondJump {
			flags = append(flags, "flagCondJump")
		}
		if o.Terminator {
			flags = append(flags, "flagTerminator")
		}
		if o.CanTrap() {
			flags = append(flags, "flagTrap")
		}
		if len(flags) > 0 {
			fmt.Fprintf(&b, "\t%s: %s,\n", o.Enum, strings.Join(flags, " | "))
		}
	}
	b.WriteString("}\n\n")

	b.WriteString("// opCost holds the baseline interpreter cycle cost of each opcode — the\n")
	b.WriteString("// single source of every tier's charge tables and of the harness's\n")
	b.WriteString("// cycle accounting.\n")
	b.WriteString("var opCost = [numOps]int64{\n")
	for _, o := range table {
		fmt.Fprintf(&b, "\t%s: %d,\n", o.Enum, o.Cost)
	}
	b.WriteString("}\n\n")

	b.WriteString("// OpCost returns the baseline interpreter cycle cost of op.\n")
	b.WriteString("func OpCost(op Op) int64 { return opCost[op] }\n")
	return b.String()
}
