package main

import (
	"fmt"
	"strings"

	"evolvevm/internal/opspec"
)

// genClosure emits internal/interp/closure_gen.go: the closure-threaded
// tier's constructors for plain (opcode-level) micro-ops. The fused
// superinstruction constructors stay in closure.go's scaffolding — they
// are combinations of ops, not ops — but every opcode-level closure is
// derived from the spec: scalar groups bind the generated group helpers
// (or their trap clauses), pure kernel ops lift the generated semantic
// kernels, and structural ops come from the snippet table below.
func genClosure(table []opspec.Op) string {
	var b strings.Builder
	for _, ar := range kernelArities(table) {
		emitClosKernelHelper(&b, ar)
	}
	b.WriteString(closTop)
	doneGroups := make(map[string]bool)
	doneArity := make(map[int]bool)
	for _, o := range table {
		if segClassOf(o) == "" {
			continue
		}
		switch {
		case o.Group != "":
			if !doneGroups[o.Group] {
				doneGroups[o.Group] = true
				emitClosGroupArms(&b, table, o.Group)
			}
		case kernelOp(o):
			if !doneArity[o.Pops] {
				doneArity[o.Pops] = true
				emitClosKernelArm(&b, table, o.Pops)
			}
		default:
			snip, ok := closSnippets[o.Enum]
			if !ok {
				fail("op %s has no scalar group, no kernel, and no closure-tier snippet", o.Enum)
			}
			fmt.Fprintf(&b, "case bytecode.%s:\n", o.Enum)
			b.WriteString(snip)
		}
	}
	b.WriteString(closBottom)
	return interpFile(b.String())
}

// kernelArities returns the distinct pop counts of the spec's segment-
// admitted kernel ops, in spec order.
func kernelArities(table []opspec.Op) []int {
	var ars []int
	seen := make(map[int]bool)
	for _, o := range table {
		if kernelOp(o) && segClassOf(o) != "" && !seen[o.Pops] {
			seen[o.Pops] = true
			ars = append(ars, o.Pops)
		}
	}
	return ars
}

// emitClosKernelHelper emits closKernelN, which lifts an N-operand
// semantic kernel into a closure micro-op.
func emitClosKernelHelper(b *strings.Builder, ar int) {
	params := strings.TrimSuffix(strings.Repeat("bytecode.Value, ", ar), ", ")
	fmt.Fprintf(b, "// closKernel%d lifts a %d-operand semantic kernel into a closure micro-op.\n", ar, ar)
	fmt.Fprintf(b, "func closKernel%d(k func(%s) bytecode.Value) closOp {\n", ar, params)
	if ar == 1 {
		b.WriteString(`return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
sp[len(sp)-1] = k(sp[len(sp)-1])
return sp, closFall
}
}

`)
		return
	}
	var args []string
	for i := 0; i < ar; i++ {
		args = append(args, fmt.Sprintf("sp[n-%d]", ar-i))
	}
	fmt.Fprintf(b, `return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
n := len(sp)
v := k(%s)
sp = sp[:n-%d]
sp[n-%d] = v
return sp, closFall
}
}

`, strings.Join(args, ", "), ar-1, ar)
}

// emitClosKernelArm emits the arm binding every segment-admitted kernel
// op of one arity to the matching closKernelN/semTabN pair.
func emitClosKernelArm(b *strings.Builder, table []opspec.Op, ar int) {
	var names []string
	for _, o := range table {
		if kernelOp(o) && segClassOf(o) != "" && o.Pops == ar {
			names = append(names, "bytecode."+o.Enum)
		}
	}
	fmt.Fprintf(b, "case %s:\n", strings.Join(names, ", "))
	fmt.Fprintf(b, "return closKernel%d(semTab%d[f.op])\n", ar, ar)
}

// closGroupHelpers maps each scalar group to the generated helper its
// non-trapping closure binds (intcmp instead pre-decomposes into its
// cmpFlags truth table, trading the call for two compares).
var closGroupHelpers = map[string]string{
	"intbin": "intBin",
	"fltbin": "fltBin",
	"fltcmp": "fltCmp",
}

// emitClosGroupArms emits one scalar group's closure constructors: a
// shared arm for the non-trapping members (helper or truth table bound at
// build time) and one generated arm per trapping member with its spec
// trap clauses and suffix-charge rollback spliced in.
func emitClosGroupArms(b *strings.Builder, table []opspec.Op, group string) {
	gi := groupInfos[group]
	var plain, traps []opspec.Op
	for _, o := range membersOf(table, group) {
		if o.CanTrap() {
			traps = append(traps, o)
		} else {
			plain = append(plain, o)
		}
	}
	if len(plain) > 0 {
		var names []string
		for _, o := range plain {
			names = append(names, "bytecode."+o.Enum)
		}
		fmt.Fprintf(b, "case %s:\n", strings.Join(names, ", "))
		if group == "intcmp" {
			b.WriteString(`lt, eq, gt, _ := cmpFlags(f.op)
return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
n := len(sp)
x, y := sp[n-2].I, sp[n-1].I
r := gt
if x < y {
r = lt
} else if x == y {
r = eq
}
sp = sp[:n-1]
sp[n-2] = bytecode.Bool(r)
return sp, closFall
}
`)
		} else {
			helper, ok := closGroupHelpers[group]
			if !ok {
				fail("scalar group %q has no closure helper form", group)
			}
			fmt.Fprintf(b, `opc := f.op
return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
n := len(sp)
r := %s(opc, sp[n-2]%s, sp[n-1]%s)
sp = sp[:n-1]
sp[n-2] = %s(r)
return sp, closFall
}
`, helper, gi.access, gi.access, gi.wrap)
		}
	}
	for _, o := range traps {
		fmt.Fprintf(b, "case bytecode.%s:\n", o.Enum)
		fmt.Fprintf(b, "return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {\nn := len(sp)\na, b := sp[n-2]%s, sp[n-1]%s\nsp = sp[:n-1]\n", gi.access, gi.access)
		for _, t := range o.Traps {
			if t.Cond != "" {
				fmt.Fprintf(b, "if %s {\n", t.Cond)
			}
			fmt.Fprintf(b, "st.rem, st.remBase, st.tpc, st.msg = rem, remBase, tpc, %q\nreturn sp, closTrap\n", t.Msg)
			if t.Cond != "" {
				b.WriteString("}\n")
			}
		}
		fmt.Fprintf(b, "sp[n-2] = %s(%s)\nreturn sp, closFall\n}\n", gi.wrap, o.Scalar)
	}
}

// closTop opens closCompilePlain: prologue binding the decoded operand
// and the trap rollback data every arm may capture.
const closTop = `// closCompilePlain builds the closure for one plain (opcode-level)
// micro-op, pre-binding decoded operands, constants, comparison truth
// tables, and trap rollback data. Every arm reproduces the corresponding
// case of the generated plan switch in engine_run_gen.go; ops outside
// the fusion classes return nil and keep their segment on the accounted
// path.
func closCompilePlain(c *Code, f *fop) closOp {
	a := int(f.a)
	rem, remBase, tpc := f.rem, f.remBase, f.tpc

	switch f.op {
`

const closBottom = `}
return nil
}
`

// closSnippets are the closure constructors of the segment-admitted
// structural ops, whose semantics live in engine state rather than in a
// value kernel. Each snippet is the body of one case arm and returns the
// pre-bound closure.
var closSnippets = map[string]string{
	"NOP": `return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
return sp, closFall
}
`,
	"IPUSH": `v := bytecode.Int(int64(f.a))
return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
return append(sp, v), closFall
}
`,
	"CONST": `v := c.Consts[a]
return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
return append(sp, v), closFall
}
`,
	"LOAD": `return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
return append(sp, st.locals[st.lb+a]), closFall
}
`,
	"STORE": `return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
n := len(sp)
st.locals[st.lb+a] = sp[n-1]
return sp[:n-1], closFall
}
`,
	"GLOAD": `return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
return append(sp, st.e.Globals[a]), closFall
}
`,
	"GSTORE": `return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
n := len(sp)
st.e.Globals[a] = sp[n-1]
return sp[:n-1], closFall
}
`,
	"IINC": `inc := int64(f.b)
return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
st.locals[st.lb+a].I += inc
return sp, closFall
}
`,
	"POP": `return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
return sp[:len(sp)-1], closFall
}
`,
	"DUP": `return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
return append(sp, sp[len(sp)-1]), closFall
}
`,
	"SWAP": `return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
n := len(sp)
sp[n-1], sp[n-2] = sp[n-2], sp[n-1]
return sp, closFall
}
`,
	"JMP": `return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
return sp, a
}
`,
	"JZ": `return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
n := len(sp)
v := sp[n-1]
sp = sp[:n-1]
if !v.IsTrue() {
return sp, a
}
return sp, closFall
}
`,
	"JNZ": `return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
n := len(sp)
v := sp[n-1]
sp = sp[:n-1]
if v.IsTrue() {
return sp, a
}
return sp, closFall
}
`,
	"ALOAD": `return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
n := len(sp)
arr, aerr := st.e.Array(sp[n-2])
if aerr == nil {
idx := sp[n-1].AsInt()
if idx >= 0 && idx < int64(len(arr)) {
sp = sp[:n-1]
sp[n-2] = arr[idx]
return sp, closFall
}
aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
}
st.rem, st.remBase, st.tpc = rem, remBase, tpc
st.msg = fmt.Sprintf("aload: %v", aerr)
return sp, closTrap
}
`,
	"ASTORE": `return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
n := len(sp)
arr, aerr := st.e.Array(sp[n-3])
if aerr == nil {
idx := sp[n-2].AsInt()
if idx >= 0 && idx < int64(len(arr)) {
arr[idx] = sp[n-1]
return sp[:n-3], closFall
}
aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
}
st.rem, st.remBase, st.tpc = rem, remBase, tpc
st.msg = fmt.Sprintf("astore: %v", aerr)
return sp, closTrap
}
`,
	"ALEN": `return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
arr, aerr := st.e.Array(sp[len(sp)-1])
if aerr != nil {
st.rem, st.remBase, st.tpc = rem, remBase, tpc
st.msg = fmt.Sprintf("alen: %v", aerr)
return sp, closTrap
}
sp[len(sp)-1] = bytecode.Int(int64(len(arr)))
return sp, closFall
}
`,
	"PRINT": `return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
n := len(sp)
st.e.Output = append(st.e.Output, sp[n-1])
return sp[:n-1], closFall
}
`,
}
