package main

import (
	"fmt"
	"strings"

	"evolvevm/internal/opspec"
)

// genSem emits internal/interp/sem_gen.go: the scalar group helpers every
// tier calls (intBin, intCmp, fltBin, fltCmp), the comparison truth-table
// decomposition used by the closure tier, the semantic kernels of the
// pure ops outside any scalar group, and the kernel dispatch tables of
// the register tier.
func genSem(table []opspec.Op) string {
	var b strings.Builder
	b.WriteString("// The semantic core of the instruction set: every tier's arithmetic\n")
	b.WriteString("// routes through the helpers and kernels below, so the spec's scalar\n")
	b.WriteString("// expressions are the single definition of each op's value behavior.\n\n")

	genGroupFn(&b, table, "intbin", "intBin", "int64", "int64",
		"// intBin applies a non-trapping integer binop, mirroring the accounted\n// interpreter case by case.\n")
	genGroupFn(&b, table, "intcmp", "intCmp", "int64", "bool",
		"// intCmp applies an integer comparison, mirroring the accounted\n// interpreter case by case.\n")
	genGroupFn(&b, table, "fltbin", "fltBin", "float64", "float64",
		"// fltBin applies a float binop, mirroring the accounted interpreter.\n")
	genGroupFn(&b, table, "fltcmp", "fltCmp", "float64", "bool",
		"// fltCmp applies a float comparison, mirroring the accounted interpreter.\n")

	// cmpFlags: the three-region truth table of each integer comparison,
	// obtained by probing intCmp at one representative of each sign(a-b)
	// region — valid because every intcmp scalar expression is a function
	// of sign(a-b) alone.
	b.WriteString("// cmpFlags decomposes an integer comparison into its three-region truth\n")
	b.WriteString("// table: the result for a<b, a==b, and a>b. A closure captures the three\n")
	b.WriteString("// booleans and evaluates the comparison with two compares and no call.\n")
	b.WriteString("// The table is obtained by probing intCmp at one representative of each\n")
	b.WriteString("// region, so it tracks the spec's scalar expressions by construction\n")
	b.WriteString("// (every comparison in the intcmp group is a function of sign(a-b)).\n")
	b.WriteString("func cmpFlags(op bytecode.Op) (lt, eq, gt, ok bool) {\n")
	b.WriteString("\tswitch op {\n")
	var cmps []string
	for _, o := range table {
		if o.Group == "intcmp" {
			cmps = append(cmps, "bytecode."+o.Enum)
		}
	}
	fmt.Fprintf(&b, "\tcase %s:\n", strings.Join(cmps, ", "))
	b.WriteString("\t\treturn intCmp(op, 0, 1), intCmp(op, 0, 0), intCmp(op, 1, 0), true\n")
	b.WriteString("\t}\n\treturn false, false, false, false\n}\n\n")

	b.WriteString("// cmpJumpFlags folds a compare-and-branch's taken/not-taken sense into the\n")
	b.WriteString("// comparison's three-region truth table: the returned booleans say \"take\n")
	b.WriteString("// the branch\" directly for a<b, a==b, and a>b.\n")
	b.WriteString("func cmpJumpFlags(op bytecode.Op, want bool) (jlt, jeq, jgt bool) {\n")
	b.WriteString("\tlt, eq, gt, _ := cmpFlags(op)\n")
	b.WriteString("\treturn lt == want, eq == want, gt == want\n}\n\n")

	// Kernels for the pure ops outside any scalar group.
	for _, o := range table {
		if !kernelOp(o) {
			continue
		}
		fmt.Fprintf(&b, "// sem%s is the semantic kernel of %s.\n", o.Enum, o.Name)
		fmt.Fprintf(&b, "func sem%s(%s) bytecode.Value {\n", o.Enum, kernelParams(o.Pops))
		if o.KernelStmts {
			for _, line := range strings.Split(o.Kernel, "\n") {
				b.WriteString("\t" + line + "\n")
			}
		} else {
			fmt.Fprintf(&b, "\treturn %s\n", o.Kernel)
		}
		b.WriteString("}\n\n")
	}

	// Kernel dispatch tables, indexed by opcode and split by arity; the
	// register tier's rPure1/rPure2/rPure3 instructions dispatch through
	// them, and the converter uses them for constant folding.
	for arity := 1; arity <= 3; arity++ {
		fmt.Fprintf(&b, "// semTab%d maps each %d-operand kernel op to its kernel.\n", arity, arity)
		fmt.Fprintf(&b, "var semTab%d = [bytecode.NumOps]func(%s) bytecode.Value{\n",
			arity, strings.TrimSuffix(strings.Repeat("bytecode.Value, ", arity), ", "))
		for _, o := range table {
			if kernelOp(o) && o.Pops == arity {
				fmt.Fprintf(&b, "\tbytecode.%s: sem%s,\n", o.Enum, o.Enum)
			}
		}
		b.WriteString("}\n\n")
	}

	return interpFile(b.String())
}

// kernelOp reports whether o gets a standalone semantic kernel: a pure op
// whose semantics are a Kernel expression rather than a scalar group.
func kernelOp(o opspec.Op) bool {
	return o.Class == opspec.Pure && o.Group == "" && o.Kernel != ""
}

// kernelParams renders the kernel parameter list for the given arity:
// "v0, v1, v2 bytecode.Value".
func kernelParams(arity int) string {
	var names []string
	for i := 0; i < arity; i++ {
		names = append(names, fmt.Sprintf("v%d", i))
	}
	return strings.Join(names, ", ") + " bytecode.Value"
}

// genGroupFn emits one scalar-group helper: a switch over the group's
// non-trapping members returning each spec Scalar expression, with the
// last member as the default arm.
func genGroupFn(b *strings.Builder, table []opspec.Op, group, fname, argT, retT, doc string) {
	var members []opspec.Op
	for _, o := range table {
		if o.Group == group && !o.CanTrap() {
			members = append(members, o)
		}
	}
	b.WriteString(doc)
	fmt.Fprintf(b, "func %s(op bytecode.Op, a, b %s) %s {\n\tswitch op {\n", fname, argT, retT)
	for i, o := range members {
		if i == len(members)-1 {
			fmt.Fprintf(b, "\tdefault: // %s\n\t\treturn %s\n", o.Enum, o.Scalar)
		} else {
			fmt.Fprintf(b, "\tcase bytecode.%s:\n\t\treturn %s\n", o.Enum, o.Scalar)
		}
	}
	b.WriteString("\t}\n}\n\n")
}

// interpFile wraps a generated body in the interp package clause with
// exactly the imports the body uses.
func interpFile(body string) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteString("package interp\n\n")
	var imps []string
	for _, std := range []string{"fmt", "math", "sync"} {
		if strings.Contains(body, std+".") {
			imps = append(imps, "\""+std+"\"")
		}
	}
	if strings.Contains(body, "bytecode.") {
		imps = append(imps, "\n\"evolvevm/internal/bytecode\"")
	}
	if strings.Contains(body, "gc.") {
		imps = append(imps, "\"evolvevm/internal/gc\"")
	}
	if len(imps) > 0 {
		fmt.Fprintf(&b, "import (\n\t%s\n)\n\n", strings.Join(imps, "\n\t"))
	}
	b.WriteString(body)
	return b.String()
}
