package main

import (
	"fmt"
	"os"
	"strings"

	"evolvevm/internal/opspec"
)

// genEngineRun emits internal/interp/engine_run_gen.go: the whole of
// Engine.Run. The tier scaffolding — frame handling, sampling, the trace
// and closure tier entries, the fused superinstruction arms — is spliced
// in verbatim from the templates below; the per-opcode arms of the fused
// plan's micro-op switch and of the accounted per-instruction switch are
// generated from the spec (scalar groups as shared inner switches with
// trap clauses spliced in, kernel ops as kernel calls, structural and
// control ops from the per-op snippet tables).
func genEngineRun(table []opspec.Op) string {
	var b strings.Builder
	b.WriteString(runTop)
	emitOpArms(&b, table, true)
	b.WriteString(runMid)
	emitOpArms(&b, table, false)
	b.WriteString(runBottom)
	return interpFile(b.String())
}

// fail aborts generation with a spec-coverage error (e.g. a structural op
// without a snippet for a tier it is classified into).
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tiergen: "+format+"\n", args...)
	os.Exit(1)
}

// groupInfo describes how a scalar group's ops read their operands and
// wrap their result on the operand stack.
type groupInfo struct {
	access string // operand accessor on a stack Value
	rType  string // scalar result type
	wrap   string // Value constructor for the result
}

var groupInfos = map[string]groupInfo{
	"intbin": {".I", "int64", "bytecode.Int"},
	"intcmp": {".I", "bool", "bytecode.Bool"},
	"fltbin": {".AsFloat()", "float64", "bytecode.Float"},
	"fltcmp": {".AsFloat()", "bool", "bytecode.Bool"},
}

// membersOf returns the spec entries of one scalar group, in spec order.
func membersOf(table []opspec.Op, group string) []opspec.Op {
	var ms []opspec.Op
	for _, o := range table {
		if o.Group == group {
			ms = append(ms, o)
		}
	}
	return ms
}

// planRollback is the suffix-charge rollback a trapping micro-op performs
// before surfacing its trap: subtract the unexecuted tail of the batched
// segment charge and report the trap at the op's original successor pc.
const planRollback = `e.Cycles -= int64(f.rem)
*workP -= int64(f.remBase)
*cycP -= int64(f.rem)
fr.pc = int(f.tpc)
`

// emitGroupArm emits one scalar-group case arm: pop two operands, inner
// switch over the group members splicing each spec Scalar expression (and
// trap clauses, with rollback on the plan tier), push the wrapped result.
func emitGroupArm(b *strings.Builder, table []opspec.Op, group, opExpr string, plan bool) {
	gi, ok := groupInfos[group]
	if !ok {
		fail("unknown scalar group %q", group)
	}
	members := membersOf(table, group)
	var names []string
	for _, o := range members {
		names = append(names, "bytecode."+o.Enum)
	}
	fmt.Fprintf(b, "case %s:\n", strings.Join(names, ", "))
	fmt.Fprintf(b, "n := len(stack)\na, b := stack[n-2]%s, stack[n-1]%s\nstack = stack[:n-1]\nvar r %s\nswitch %s {\n",
		gi.access, gi.access, gi.rType, opExpr)
	for _, o := range members {
		fmt.Fprintf(b, "case bytecode.%s:\n", o.Enum)
		for _, t := range o.Traps {
			fmt.Fprintf(b, "if %s {\n", t.Cond)
			if plan {
				b.WriteString(planRollback)
			}
			fmt.Fprintf(b, "return result, rerr(%q)\n}\n", t.Msg)
		}
		fmt.Fprintf(b, "r = %s\n", o.Scalar)
	}
	b.WriteString("}\n")
	fmt.Fprintf(b, "stack[n-2] = %s(r)\n", gi.wrap)
}

// emitKernelArm emits the case arm of a pure kernel op: apply the
// generated kernel to the top Pops stack values in place.
func emitKernelArm(b *strings.Builder, o opspec.Op) {
	fmt.Fprintf(b, "case bytecode.%s:\n", o.Enum)
	if o.Pops == 1 {
		fmt.Fprintf(b, "stack[len(stack)-1] = sem%s(stack[len(stack)-1])\n", o.Enum)
		return
	}
	var args []string
	for i := 0; i < o.Pops; i++ {
		args = append(args, fmt.Sprintf("stack[n-%d]", o.Pops-i))
	}
	fmt.Fprintf(b, "n := len(stack)\nv := sem%s(%s)\nstack = stack[:n-%d]\nstack[n-%d] = v\n",
		o.Enum, strings.Join(args, ", "), o.Pops-1, o.Pops)
}

// emitOpArms emits the per-opcode case arms of one dispatch switch: the
// fused plan's micro-op switch (plan true; ops classified segNone are
// absent from micro-programs and skipped) or the accounted
// per-instruction switch (plan false; every op).
func emitOpArms(b *strings.Builder, table []opspec.Op, plan bool) {
	opExpr := "in.Op"
	snippets := accSnippets
	if plan {
		opExpr = "f.op"
		snippets = planSnippets
	}
	doneGroups := make(map[string]bool)
	for _, o := range table {
		if plan && segClassOf(o) == "" {
			continue
		}
		switch {
		case o.Group != "":
			if !doneGroups[o.Group] {
				doneGroups[o.Group] = true
				emitGroupArm(b, table, o.Group, opExpr, plan)
			}
		case kernelOp(o):
			emitKernelArm(b, o)
		default:
			snip, ok := snippets[o.Enum]
			if !ok {
				tier := "accounted"
				if plan {
					tier = "plan"
				}
				fail("op %s has no scalar group, no kernel, and no %s-tier snippet", o.Enum, tier)
			}
			fmt.Fprintf(b, "case bytecode.%s:\n", o.Enum)
			b.WriteString(snip)
		}
	}
}

// accSnippets are the accounted-loop case bodies of the structural and
// control ops, whose semantics live in engine state (frames, heap,
// output) rather than in a value kernel. Operands are decoded from the
// instruction (in.A, in.B).
var accSnippets = map[string]string{
	"NOP": "",
	"IPUSH": `stack = append(stack, bytecode.Int(int64(in.A)))
`,
	"CONST": `stack = append(stack, code.Consts[in.A])
`,
	"LOAD": `stack = append(stack, locals[lb+int(in.A)])
`,
	"STORE": `locals[lb+int(in.A)] = stack[len(stack)-1]
stack = stack[:len(stack)-1]
`,
	"GLOAD": `stack = append(stack, e.Globals[in.A])
`,
	"GSTORE": `e.Globals[in.A] = stack[len(stack)-1]
stack = stack[:len(stack)-1]
`,
	"IINC": `locals[lb+int(in.A)].I += int64(in.B)
`,
	"POP": `stack = stack[:len(stack)-1]
`,
	"DUP": `stack = append(stack, stack[len(stack)-1])
`,
	"SWAP": `n := len(stack)
stack[n-1], stack[n-2] = stack[n-2], stack[n-1]
`,
	"JMP": `fr.pc = int(in.A)
`,
	"JZ": `v := stack[len(stack)-1]
stack = stack[:len(stack)-1]
if !v.IsTrue() {
fr.pc = int(in.A)
}
`,
	"JNZ": `v := stack[len(stack)-1]
stack = stack[:len(stack)-1]
if v.IsTrue() {
fr.pc = int(in.A)
}
`,
	"CALL": `argc := int(in.B)
args := stack[len(stack)-argc:]
if err := push(int(in.A)); err != nil {
return result, err
}
nf := &frames[len(frames)-1]
copy(locals[nf.localsBase:], args)
stack = stack[:len(stack)-argc]
nf.spBase = len(stack)
break body // switch to callee frame
`,
	"RET": `rv := stack[len(stack)-1]
stack = stack[:fr.spBase]
locals = locals[:fr.localsBase]
frames = frames[:len(frames)-1]
stack = append(stack, rv)
if len(frames) == 0 {
result = rv
return result, nil
}
break body // resume caller frame
`,
	"NEWARR": `n := stack[len(stack)-1].AsInt()
// Publish the collector's root sets: a collection can
// only start inside NewArray. A copying collection
// rewrites references in place, so the aliased local
// slices stay valid afterwards.
e.rootLocals, e.rootStack = locals, stack[:len(stack)-1]
ref, err := e.NewArray(n)
if err != nil {
return result, rerr("%v", err)
}
// Allocation cost scales with size; charge it to the
// allocating function as well so the per-function ledger
// (Σ FnCycles) reconciles with the engine clock.
e.Cycles += 2 * n
*cycP += 2 * n
stack[len(stack)-1] = ref
`,
	"ALOAD": `n := len(stack)
arr, err := e.Array(stack[n-2])
if err != nil {
return result, rerr("aload: %v", err)
}
idx := stack[n-1].AsInt()
if idx < 0 || idx >= int64(len(arr)) {
return result, rerr("aload: index %d out of range [0,%d)", idx, len(arr))
}
stack = stack[:n-1]
stack[n-2] = arr[idx]
`,
	"ASTORE": `n := len(stack)
arr, err := e.Array(stack[n-3])
if err != nil {
return result, rerr("astore: %v", err)
}
idx := stack[n-2].AsInt()
if idx < 0 || idx >= int64(len(arr)) {
return result, rerr("astore: index %d out of range [0,%d)", idx, len(arr))
}
arr[idx] = stack[n-1]
stack = stack[:n-3]
`,
	"ALEN": `arr, err := e.Array(stack[len(stack)-1])
if err != nil {
return result, rerr("alen: %v", err)
}
stack[len(stack)-1] = bytecode.Int(int64(len(arr)))
`,
	"PRINT": `e.Output = append(e.Output, stack[len(stack)-1])
stack = stack[:len(stack)-1]
`,
	"HALT": `e.halted = true
if len(stack) > fr.spBase {
result = stack[len(stack)-1]
}
return result, nil
`,
}

// planSnippets are the plan micro-op case bodies of the structural ops
// admitted into segments. Operands are pre-decoded into the fop (f.a,
// f.b); trapping ops roll back the unexecuted suffix charge (f.rem,
// f.remBase) and report at the original successor pc (f.tpc).
var planSnippets = map[string]string{
	"NOP": "",
	"IPUSH": `stack = append(stack, bytecode.Int(int64(f.a)))
`,
	"CONST": `stack = append(stack, code.Consts[f.a])
`,
	"LOAD": `stack = append(stack, locals[lb+int(f.a)])
`,
	"STORE": `locals[lb+int(f.a)] = stack[len(stack)-1]
stack = stack[:len(stack)-1]
`,
	"GLOAD": `stack = append(stack, e.Globals[f.a])
`,
	"GSTORE": `e.Globals[f.a] = stack[len(stack)-1]
stack = stack[:len(stack)-1]
`,
	"IINC": `locals[lb+int(f.a)].I += int64(f.b)
`,
	"POP": `stack = stack[:len(stack)-1]
`,
	"DUP": `stack = append(stack, stack[len(stack)-1])
`,
	"SWAP": `n := len(stack)
stack[n-1], stack[n-2] = stack[n-2], stack[n-1]
`,
	"JMP": `fr.pc = int(f.a)
`,
	"JZ": `v := stack[len(stack)-1]
stack = stack[:len(stack)-1]
if !v.IsTrue() {
fr.pc = int(f.a)
}
`,
	"JNZ": `v := stack[len(stack)-1]
stack = stack[:len(stack)-1]
if v.IsTrue() {
fr.pc = int(f.a)
}
`,
	"ALOAD": `n := len(stack)
arr, aerr := e.Array(stack[n-2])
if aerr == nil {
idx := stack[n-1].AsInt()
if idx >= 0 && idx < int64(len(arr)) {
stack = stack[:n-1]
stack[n-2] = arr[idx]
break
}
aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
}
e.Cycles -= int64(f.rem)
*workP -= int64(f.remBase)
*cycP -= int64(f.rem)
fr.pc = int(f.tpc)
return result, rerr("aload: %v", aerr)
`,
	"ASTORE": `n := len(stack)
arr, aerr := e.Array(stack[n-3])
if aerr == nil {
idx := stack[n-2].AsInt()
if idx >= 0 && idx < int64(len(arr)) {
arr[idx] = stack[n-1]
stack = stack[:n-3]
break
}
aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
}
e.Cycles -= int64(f.rem)
*workP -= int64(f.remBase)
*cycP -= int64(f.rem)
fr.pc = int(f.tpc)
return result, rerr("astore: %v", aerr)
`,
	"ALEN": `arr, aerr := e.Array(stack[len(stack)-1])
if aerr != nil {
e.Cycles -= int64(f.rem)
*workP -= int64(f.remBase)
*cycP -= int64(f.rem)
fr.pc = int(f.tpc)
return result, rerr("alen: %v", aerr)
}
stack[len(stack)-1] = bytecode.Int(int64(len(arr)))
`,
	"PRINT": `e.Output = append(e.Output, stack[len(stack)-1])
stack = stack[:len(stack)-1]
`,
}
