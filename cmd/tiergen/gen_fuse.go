package main

import (
	"fmt"
	"strings"

	"evolvevm/internal/opspec"
)

// genFuse emits internal/interp/fuse_gen.go: the fusion-legality
// classification of every opcode and the op→scalar-group map. The segment
// builder (fuse.go) and the trace converter's lowering rules consult these
// tables instead of hand-maintained opcode lists, so a new spec entry is
// classified — and admitted into batched segments — automatically.
func genFuse(table []opspec.Op) string {
	var b strings.Builder

	b.WriteString("// segClass is an opcode's fusion-legality class, derived from the spec:\n")
	b.WriteString("// branches may terminate a segment; control transfers, allocating ops,\n")
	b.WriteString("// and anything else that can touch the sampler or the GC stay on the\n")
	b.WriteString("// accounted path (segNone); trapping-but-allocation-free ops are\n")
	b.WriteString("// admitted with suffix-charge rollback (segTrapping); everything else\n")
	b.WriteString("// is freely batchable (segInterior).\n")
	b.WriteString("type segClass uint8\n\n")
	b.WriteString("const (\n")
	b.WriteString("\tsegNone segClass = iota // accounted path only\n")
	b.WriteString("\tsegInterior             // batchable, cannot trap or branch\n")
	b.WriteString("\tsegTrapping             // batchable with trap rollback data\n")
	b.WriteString("\tsegBranch               // may terminate a segment\n")
	b.WriteString(")\n\n")

	b.WriteString("// opSegClass classifies every opcode for the segment builder.\n")
	b.WriteString("var opSegClass = [bytecode.NumOps]segClass{\n")
	for _, o := range table {
		if cls := segClassOf(o); cls != "" {
			fmt.Fprintf(&b, "\tbytecode.%s: %s,\n", o.Enum, cls)
		}
	}
	b.WriteString("}\n\n")

	b.WriteString("// opGroup is an opcode's scalar group: the shared-helper family\n")
	b.WriteString("// (intBin, intCmp, fltBin, fltCmp) that implements its semantics.\n")
	b.WriteString("type opGroup uint8\n\n")
	b.WriteString("const (\n")
	b.WriteString("\tgroupNone opGroup = iota\n")
	b.WriteString("\tgroupIntBin\n")
	b.WriteString("\tgroupIntCmp\n")
	b.WriteString("\tgroupFltBin\n")
	b.WriteString("\tgroupFltCmp\n")
	b.WriteString(")\n\n")

	b.WriteString("// opGroupOf maps every opcode to its scalar group.\n")
	b.WriteString("var opGroupOf = [bytecode.NumOps]opGroup{\n")
	for _, o := range table {
		if g := groupConst(o.Group); g != "" {
			fmt.Fprintf(&b, "\tbytecode.%s: %s,\n", o.Enum, g)
		}
	}
	b.WriteString("}\n")

	return interpFile(b.String())
}

// segClassOf derives an opcode's fusion-legality class from its spec
// entry. The empty string means segNone (omitted from the sparse table).
func segClassOf(o opspec.Op) string {
	switch {
	case o.Jump:
		return "segBranch"
	case o.Class == opspec.Control:
		// CALL, RET, HALT: frame and termination handling belongs to the
		// accounted loop.
		return ""
	case o.Alloc:
		// NEWARR charges size-scaled alloc cycles and can start a
		// collection; both belong on the accounted path.
		return ""
	case o.CanTrap():
		return "segTrapping"
	default:
		return "segInterior"
	}
}

// groupConst maps a spec group name to the generated opGroup constant.
func groupConst(group string) string {
	switch group {
	case "intbin":
		return "groupIntBin"
	case "intcmp":
		return "groupIntCmp"
	case "fltbin":
		return "groupFltBin"
	case "fltcmp":
		return "groupFltCmp"
	}
	return ""
}
