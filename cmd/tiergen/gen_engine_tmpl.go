package main

// The Engine.Run tier scaffolding, spliced verbatim around the generated
// per-opcode arms. runTop opens Run and carries the frame loop, the trace
// and closure tier entries, and the fused plan's batched-segment entry up
// to the micro-op switch; runMid carries the fused superinstruction arms
// and the accounted loop's sampling prologue up to the per-instruction
// switch; runBottom closes both switches and the function. Indentation is
// normalized by go/format after splicing.

const runTop = `// Run executes the program's entry function to completion and returns its
// result value.
func (e *Engine) Run() (bytecode.Value, error) {
	e.nextSample = e.Cycles + e.SampleStride
	e.halted = false
	if e.Interrupt != nil {
		if cause := e.Interrupt(); cause != nil {
			return bytecode.Value{}, &CanceledError{Prog: e.Prog.Name, Cycles: e.Cycles, Cause: cause}
		}
	}

	sc := scratchPool.Get().(*runScratch)
	locals := sc.locals[:0]
	stack := sc.stack[:0]
	frames := sc.frames[:0]
	st := &sc.st
	st.e = e
	sc.deopt = deoptState{}
	sc.trapFn = -1
	e.rootLocals, e.rootStack = nil, nil
	defer func() {
		// Hand the (possibly grown) arenas back. The frame stack and the
		// trace side channels hold *Code pointers; clear them so the pool
		// pins no compiled code, and unpublish the GC roots so the engine
		// no longer aliases pooled memory.
		sc.locals, sc.stack = locals[:0], stack[:0]
		sc.frames = frames[:cap(frames)]
		clear(sc.frames)
		sc.frames = sc.frames[:0]
		sc.st = cstate{}
		sc.curCodes = sc.curCodes[:cap(sc.curCodes)]
		clear(sc.curCodes)
		sc.curCodes = sc.curCodes[:0]
		sc.deopt = deoptState{}
		e.rootLocals, e.rootStack = nil, nil
		scratchPool.Put(sc)
	}()

	push := func(fnIdx int) error {
		if len(frames) >= maxCallDepth {
			return &RuntimeError{Prog: e.Prog.Name, Fn: e.Prog.Funcs[fnIdx].Name,
				Msg: fmt.Sprintf("call depth exceeds %d", maxCallDepth)}
		}
		code := e.Provider(fnIdx)
		frames = append(frames, frame{
			code:       code,
			localsBase: len(locals),
			spBase:     len(stack),
		})
		for i := 0; i < code.NLocals; i++ {
			locals = append(locals, bytecode.Value{})
		}
		e.Invocations[fnIdx]++
		if e.OnInvoke != nil {
			e.OnInvoke(fnIdx, e.Invocations[fnIdx])
		}
		return nil
	}

	if err := push(e.Prog.Entry); err != nil {
		return bytecode.Value{}, err
	}
	// Entry takes no arguments by Verify.

	var result bytecode.Value
	for len(frames) > 0 {
		fr := &frames[len(frames)-1]
		code := fr.code
		lb := fr.localsBase
		workP := &e.Work[code.FnIdx]
		cycP := &e.FnCycles[code.FnIdx]
		var pl *plan
		var cp *closPlan
		var tp *tracePlan
		if !e.DisableBatching {
			if !e.DisableRegTier {
				tp = e.traceTier(code)
			}
			if !e.DisableClosures {
				cp = e.closureTier(code)
			}
			if cp == nil {
				pl = code.planFor(!e.DisableFusion)
			}
		}
		rerr := func(format string, args ...interface{}) error {
			return &RuntimeError{Prog: e.Prog.Name, Fn: code.Name, PC: fr.pc,
				Msg: fmt.Sprintf(format, args...)}
		}

	body:
		for {
			pc := fr.pc
			if pc < 0 || pc >= len(code.Instrs) {
				return result, rerr("pc out of range")
			}

			// Fastest path: the register-converted trace tier. A hot loop
			// head whose whole next iteration fits the sample window runs
			// as a register program — locals live in a register file, the
			// operand stack is untouched, and one batched debit covers the
			// iteration. Mid-iteration pcs with an OSR entry point enter
			// the same way and run the iteration's remainder (on-stack
			// replacement; any interpreter stack values stay untouched
			// beneath the trace, which is entry-stack-neutral by
			// construction). Side exits and traps roll back the unexecuted
			// suffix and land on exactly the accounted loop's state; exits
			// inside an inlined callee materialize a real callee frame.
			if tp != nil {
				run := (*trace)(nil)
				if tr := tp.tr[pc]; tr != nil {
					if e.Cycles+tr.cost < e.nextSample &&
						(e.EagerRegTier || tr.entries.Add(1) >= traceHotEntries) {
						run = tr
					}
				} else if !e.DisableOSR {
					if os := tp.osr[pc]; os != nil && e.Cycles+os.cost < e.nextSample &&
						(e.EagerOSR || e.EagerRegTier || os.parent.entries.Load() >= traceHotEntries) {
						run = os
					}
				}
				if run != nil {
					var npc int
					var tpc int32
					var msg string
					stack, npc, tpc, msg = e.runTrace(run, sc, len(frames), locals, lb, stack, workP, cycP)
					if msg != "" {
						if fn := sc.trapFn; fn >= 0 {
							sc.trapFn = -1
							return result, &RuntimeError{Prog: e.Prog.Name,
								Fn: e.Prog.Funcs[fn].Name, PC: int(tpc), Msg: msg}
						}
						fr.pc = int(tpc)
						return result, rerr("%s", msg)
					}
					if sc.deopt.active {
						// Materialize the inlined callee as a real frame:
						// locals from its pinned register block (entry
						// deopt zero-fills past the arguments), operand
						// stack rematerialized above its frame base. The
						// caller resumes after the CALL when the callee
						// returns. fr dangles once frames grows — set its
						// resume pc first.
						d := sc.deopt
						sc.deopt = deoptState{}
						fr.pc = npc
						nf := frame{code: d.code, pc: int(d.pc), localsBase: len(locals)}
						if d.entry {
							locals = append(locals, sc.regs[d.lbase:d.lbase+d.nargs]...)
							for i := d.nargs; i < d.nloc; i++ {
								locals = append(locals, bytecode.Value{})
							}
						} else {
							locals = append(locals, sc.regs[d.lbase:d.lbase+d.nloc]...)
						}
						nf.spBase = len(stack)
						for _, p := range d.cpush {
							stack = rpushVal(stack, d.tr, sc.regs, p)
						}
						frames = append(frames, nf)
						break body // switch to the reconstructed callee frame
					}
					fr.pc = npc
					continue
				}
			}

			// Next: the closure-threaded tier. Same segment
			// geometry and batched charge as the fused plan below — the
			// closure program is compiled from it fop for fop — but each
			// micro-op is a pre-bound closure, so there is no operand
			// decoding and no dispatch switch. A trapping closure deposits
			// the identical suffix-charge rollback in st.
			if cp != nil {
				if s := cp.seg[pc]; s != nil && e.Cycles+s.cost < e.nextSample {
					e.Cycles += s.cost
					*workP += s.base
					*cycP += s.cost
					st.locals, st.lb = locals, lb
					npc := int(s.end)
					sp := stack
					for _, fn := range s.fns {
						var r int
						if sp, r = fn(st, sp); r != closFall {
							if r == closTrap {
								stack = sp
								e.Cycles -= int64(st.rem)
								*workP -= int64(st.remBase)
								*cycP -= int64(st.rem)
								fr.pc = int(st.tpc)
								return result, rerr("%s", st.msg)
							}
							npc = r // branches only terminate segments
						}
					}
					stack = sp
					fr.pc = npc
					continue
				}
			}

			// Fast path: a batchable straight-line segment starts here and
			// charging it whole cannot reach the next sample boundary, so
			// no sampler tick, cycle-fuse check, trap, or call can occur
			// inside it. Charge once, then run the pre-decoded
			// micro-program without per-instruction accounting. Every
			// other case takes the original per-instruction loop below.
			if pl != nil {
				if s := pl.seg[pc]; s != nil && e.Cycles+s.cost < e.nextSample {
					e.Cycles += s.cost
					*workP += s.base
					*cycP += s.cost
					fr.pc = int(s.end) // branches below overwrite this
					for i := range s.ops {
						f := &s.ops[i]
						switch f.op {
`

const runMid = `
						// Fused superinstructions.
						case fLLBin:
							stack = append(stack, bytecode.Int(intBin(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, locals[lb+int(f.b)].I)))
						case fLLCmp:
							stack = append(stack, bytecode.Bool(intCmp(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, locals[lb+int(f.b)].I)))
						case fLIBin:
							stack = append(stack, bytecode.Int(intBin(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, int64(f.b))))
						case fLICmp:
							stack = append(stack, bytecode.Bool(intCmp(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, int64(f.b))))
						case fLGBin:
							stack = append(stack, bytecode.Int(intBin(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, e.Globals[f.b].I)))
						case fLGCmp:
							stack = append(stack, bytecode.Bool(intCmp(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, e.Globals[f.b].I)))
						case fMove:
							locals[lb+int(f.b)] = locals[lb+int(f.a)]
						case fGMove:
							locals[lb+int(f.b)] = e.Globals[f.a]
						case fIStore:
							locals[lb+int(f.a)] = bytecode.Int(int64(f.b))
						case fCStore:
							locals[lb+int(f.a)] = code.Consts[f.b]
						case fIncJmp:
							locals[lb+int(f.a)].I += int64(f.b)
							fr.pc = int(f.c)
						case fCmpJz, fCmpJnz:
							n := len(stack)
							r := intCmp(bytecode.Op(f.c), stack[n-2].I, stack[n-1].I)
							stack = stack[:n-2]
							if r == (f.op == fCmpJnz) {
								fr.pc = int(f.b)
							}
						case fCCmpJz, fCCmpJnz:
							n := len(stack)
							r := intCmp(bytecode.Op(f.c), stack[n-1].I, code.Consts[f.a].I)
							stack = stack[:n-1]
							if r == (f.op == fCCmpJnz) {
								fr.pc = int(f.b)
							}
						case fICmpJz, fICmpJnz:
							n := len(stack)
							r := intCmp(bytecode.Op(f.c), stack[n-1].I, int64(f.a))
							stack = stack[:n-1]
							if r == (f.op == fICmpJnz) {
								fr.pc = int(f.b)
							}
						case fLJz:
							if !locals[lb+int(f.a)].IsTrue() {
								fr.pc = int(f.b)
							}
						case fLJnz:
							if locals[lb+int(f.a)].IsTrue() {
								fr.pc = int(f.b)
							}
						case fALoad:
							arr, aerr := e.Array(locals[lb+int(f.a)])
							if aerr == nil {
								idx := locals[lb+int(f.b)].AsInt()
								if idx >= 0 && idx < int64(len(arr)) {
									stack = append(stack, arr[idx])
									break
								}
								aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
							}
							e.Cycles -= int64(f.rem)
							*workP -= int64(f.remBase)
							*cycP -= int64(f.rem)
							fr.pc = int(f.tpc)
							return result, rerr("aload: %v", aerr)
						case fGALoad:
							arr, aerr := e.Array(e.Globals[f.a])
							if aerr == nil {
								idx := locals[lb+int(f.b)].AsInt()
								if idx >= 0 && idx < int64(len(arr)) {
									stack = append(stack, arr[idx])
									break
								}
								aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
							}
							e.Cycles -= int64(f.rem)
							*workP -= int64(f.remBase)
							*cycP -= int64(f.rem)
							fr.pc = int(f.tpc)
							return result, rerr("aload: %v", aerr)
						case fLLBinS:
							locals[lb+int(f.d)] = bytecode.Int(intBin(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, locals[lb+int(f.b)].I))
						case fLIBinS:
							locals[lb+int(f.d)] = bytecode.Int(intBin(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, int64(f.b)))
						case fLGBinS:
							locals[lb+int(f.d)] = bytecode.Int(intBin(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, e.Globals[f.b].I))
						case fLLCmpJz, fLLCmpJnz:
							r := intCmp(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, locals[lb+int(f.b)].I)
							if r == (f.op == fLLCmpJnz) {
								fr.pc = int(f.d)
							}
						case fLGCmpJz, fLGCmpJnz:
							r := intCmp(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, e.Globals[f.b].I)
							if r == (f.op == fLGCmpJnz) {
								fr.pc = int(f.d)
							}
						case fLICmpJz, fLICmpJnz:
							r := intCmp(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, int64(f.b))
							if r == (f.op == fLICmpJnz) {
								fr.pc = int(f.d)
							}
						}
					}
					continue
				}
			}

			in := code.Instrs[pc]
			e.Cycles += code.Cost[pc]
			*workP += code.Base[pc]
			*cycP += code.Cost[pc]
			if e.Cycles >= e.nextSample {
				for e.Cycles >= e.nextSample {
					e.nextSample += e.SampleStride
					code.noteSample()
					if e.OnSample != nil {
						e.OnSample(code.FnIdx)
					}
				}
				// A sampler tick is the promotion point of the closure
				// tier: re-ask for the threaded form so code that just got
				// hot (or was recompiled hot in OnSample) starts threading
				// without leaving the frame. With a background compile
				// queue attached the re-ask enqueues instead of building
				// and keeps returning nil until the plan lands; either
				// way, host-side only — the virtual stream is untouched.
				if cp == nil && !e.DisableBatching && !e.DisableClosures {
					if cp = e.closureTier(code); cp != nil {
						pl = nil
					}
				}
				if tp == nil && !e.DisableBatching && !e.DisableRegTier {
					tp = e.traceTier(code)
				}
				if e.Cycles > e.MaxCycles {
					return result, rerr("cycle limit %d exceeded", e.MaxCycles)
				}
				if e.Interrupt != nil {
					if cause := e.Interrupt(); cause != nil {
						return result, &CanceledError{Prog: e.Prog.Name, Fn: code.Name,
							PC: pc, Cycles: e.Cycles, Cause: cause}
					}
				}
			}
			fr.pc = pc + 1

			switch in.Op {
`

const runBottom = `
			default:
				return result, rerr("invalid opcode %d", in.Op)
			}
		}
	}
	return result, nil
}
`
