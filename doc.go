// Package evolvevm is a from-scratch reproduction of "Cross-Input
// Learning and Discriminative Prediction in Evolvable Virtual Machines"
// (Mao and Shen, CGO 2009) as a Go library.
//
// The paper makes a JIT virtual machine evolve across production runs: an
// extensible input characterization language (XICL) turns program inputs
// into feature vectors, incremental classification trees learn the
// relation between those features and each method's ideal optimization
// level, and discriminative prediction — guarded by decayed self-evaluated
// confidence — proactively installs the predicted per-method compilation
// strategy at the start of a new run.
//
// Since Go is ahead-of-time compiled, the reproduction supplies its own
// substrate: a stack bytecode machine with a deterministic virtual-cycle
// clock, a baseline interpreter and a real multi-pass optimizing compiler
// at levels 0–2, a Jikes-RVM-style sampler and reactive cost-benefit
// controller, and the repository-based comparison baseline of Arnold et
// al. Everything the paper's evaluation needs — eleven benchmarks with
// XICL specifications and input-corpus generators, and a harness
// regenerating Table I and Figures 8–10 — is included. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for measured results.
//
// Layout:
//
//	internal/bytecode   instruction set, assembler, verifier
//	internal/interp     execution engine, cycle accounting, sampler
//	internal/opt        optimization passes (fold, DCE, inline, LICM, unroll)
//	internal/jit        multi-level compiler driver and cost model
//	internal/vm         machine = engine + JIT + pluggable controller
//	internal/aos        reactive controller and ideal-strategy oracle
//	internal/xicl       input characterization language and translator
//	internal/cart       classification trees and incremental learning
//	internal/core       the evolvable VM (the paper's contribution)
//	internal/rep        repository-based baseline
//	internal/programs   the 11-benchmark suite
//	internal/exec       stateless per-run executor with cancellation
//	internal/session    cross-run state, work units, checkpoint/resume
//	internal/sched      deterministic bounded-worker task scheduler
//	internal/harness    scenario runner and experiment generators
//	internal/difftest   cross-tier differential tester and fuzz targets
//	cmd/evolvevm        run programs under a scenario
//	cmd/xiclc           XICL spec checker and translator
//	cmd/expdriver       regenerate every table and figure
package evolvevm
