package evolvevm

// One benchmark per table/figure of the paper's evaluation (experiments
// E1–E8 in DESIGN.md), in quick mode so `go test -bench=.` stays in CI
// budgets, plus microbenchmarks for the substrate layers. Run the full
// paper-scale versions with cmd/expdriver.

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/cart"
	"evolvevm/internal/exec"
	"evolvevm/internal/harness"
	"evolvevm/internal/interp"
	"evolvevm/internal/jit"
	"evolvevm/internal/opt"
	"evolvevm/internal/programs"
	"evolvevm/internal/serve"
	"evolvevm/internal/stats"
	"evolvevm/internal/xicl"
)

func quickOpts(seed int64) harness.Options {
	return harness.Options{Seed: seed, Quick: true}
}

// BenchmarkTable1 regenerates Table I (E1): per-benchmark input counts,
// running-time ranges, feature selection, confidence and accuracy.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table1(testCtx, io.Discard, quickOpts(int64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		var accs []float64
		for _, r := range rows {
			accs = append(accs, r.Acc)
		}
		b.ReportMetric(stats.Mean(accs), "mean-acc")
	}
}

// BenchmarkFigure8 regenerates Figure 8 (E2): temporal confidence,
// accuracy, and Evolve-vs-Rep speedups on mtrt and raytracer.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := harness.Figure8(testCtx, io.Discard, quickOpts(int64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		last := series[0].Confidence
		b.ReportMetric(last[len(last)-1], "final-conf")
	}
}

// substrateColumns are the host-tier variants the loop-heavy experiment
// benchmarks record: the full substrate (register traces included) vs
// the previous fastest configuration (register tier off, closure tier
// and below unchanged). Virtual results are bit-identical across the
// columns (substrate equivalence suites); the ns/op spread is the
// register tier's end-to-end host-side win.
var substrateColumns = []struct {
	name string
	sub  exec.Substrate
}{
	{"reg", exec.Substrate{}},
	{"noreg", exec.Substrate{NoRegTier: true}},
}

// BenchmarkFigure9 regenerates Figure 9 (E3): speedup vs default running
// time on mtrt and compress, with and without the register trace tier.
func BenchmarkFigure9(b *testing.B) {
	for _, col := range substrateColumns {
		b.Run(col.name, func(b *testing.B) {
			// Warm the process-wide baseline and code caches untimed so the
			// columns compare steady states, not who ran first.
			opts := quickOpts(1)
			opts.Substrate = col.sub
			if _, err := harness.Figure9(testCtx, io.Discard, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := quickOpts(int64(i) + 1)
				opts.Substrate = col.sub
				points, err := harness.Figure9(testCtx, io.Discard, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(points["mtrt"])), "mtrt-points")
			}
		})
	}
}

// BenchmarkFigure10 regenerates Figure 10 (E4): speedup boxplots for the
// whole suite under Evolve and Rep, with and without the register trace
// tier.
func BenchmarkFigure10(b *testing.B) {
	for _, col := range substrateColumns {
		b.Run(col.name, func(b *testing.B) {
			// Same untimed cache warmup as Figure9.
			opts := quickOpts(1)
			opts.Substrate = col.sub
			if _, err := harness.Figure10(testCtx, io.Discard, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := quickOpts(int64(i) + 1)
				opts.Substrate = col.sub
				rows, err := harness.Figure10(testCtx, io.Discard, opts)
				if err != nil {
					b.Fatal(err)
				}
				var medians []float64
				for _, r := range rows {
					medians = append(medians, r.Evolve.Median)
				}
				b.ReportMetric(stats.Mean(medians), "mean-evolve-median")
			}
		})
	}
}

// BenchmarkOverhead regenerates the overhead analysis (E5).
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Overhead(testCtx, io.Discard, quickOpts(int64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range rows {
			if r.MaxPct > worst {
				worst = r.MaxPct
			}
		}
		b.ReportMetric(worst, "max-overhead-%")
	}
}

// BenchmarkSensitivity regenerates the threshold and input-order
// sensitivity study (E6).
func BenchmarkSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Sensitivity(testCtx, io.Discard, quickOpts(int64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation runs the design ablations (E7): discriminative guard
// on/off and feature-vector truncation.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Ablation(testCtx, io.Discard, quickOpts(int64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[0].AccFull-res[0].AccTruncated, "feature-acc-gain")
	}
}

// --- substrate microbenchmarks ---

// BenchmarkInterpreterDispatch measures the raw execution engine on a
// tight arithmetic loop.
func BenchmarkInterpreterDispatch(b *testing.B) {
	prog, err := bytecode.Assemble("microloop", `
global n
func main() locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load acc
  load i
  ixor
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := interp.NewEngine(prog)
		if err := e.SetGlobal("n", bytecode.Int(10000)); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpDispatch measures the same tight loop with the host
// performance substrate fully on, batching without fusion, and fully off
// — the spread between the sub-benchmarks is the dispatch saving of
// block-batched accounting and superinstruction fusion (the virtual
// results are bit-identical in all three modes; see the substrate suites
// in internal/difftest and internal/harness).
func BenchmarkInterpDispatch(b *testing.B) {
	prog, err := bytecode.Assemble("microloop", `
global n
func main() locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load acc
  load i
  ixor
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
`)
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name               string
		noFuse, noBatching bool
		closures           bool
	}{
		{name: "closure", closures: true},
		{name: "substrate"},
		{name: "nofuse", noFuse: true},
		{name: "off", noBatching: true},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := interp.NewEngine(prog)
				e.DisableFusion = mode.noFuse
				e.DisableBatching = mode.noBatching
				e.DisableClosures = !mode.closures
				e.EagerClosures = mode.closures
				if err := e.SetGlobal("n", bytecode.Int(10000)); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDispatchTiers compares the four dispatch tiers — batched
// switch, fused switch, closure-threaded, and register-converted traces —
// on the same tight loop, honestly: one engine per tier, warmed before
// the timer so every mode runs its steady state (plans decoded, closures
// compiled, traces converted, pools populated) rather than paying
// one-time build costs inside the measurement. The virtual results are
// bit-identical across all four (see the substrate suites); the spread is
// pure host dispatch cost.
func BenchmarkDispatchTiers(b *testing.B) {
	prog, err := bytecode.Assemble("microloop", `
global n
func main() locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load acc
  load i
  ixor
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
`)
	if err != nil {
		b.Fatal(err)
	}
	tiers := []struct {
		name      string
		configure func(*interp.Engine)
	}{
		{"switch", func(e *interp.Engine) {
			e.DisableFusion = true
			e.DisableClosures = true
			e.DisableRegTier = true
		}},
		{"fused", func(e *interp.Engine) {
			e.DisableClosures = true
			e.DisableRegTier = true
		}},
		{"closure", func(e *interp.Engine) {
			e.EagerClosures = true
			e.DisableRegTier = true
		}},
		{"register", func(e *interp.Engine) {
			e.EagerClosures = true
			e.EagerRegTier = true
		}},
	}
	for _, tier := range tiers {
		b.Run(tier.name, func(b *testing.B) {
			e := interp.NewEngine(prog)
			run := func() {
				e.Reset()
				tier.configure(e)
				if err := e.SetGlobal("n", bytecode.Int(10000)); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
			run() // warm: plans, closures, traces, pooled scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}

	// Call-heavy shape: the same loop with a small non-recursive callee in
	// the body. Before CALL inlining this shape degraded out of the
	// register tier entirely; the register/register-noinline spread is the
	// per-commit tracking signal for the inlining win.
	callProg, err := bytecode.Assemble("microcall", `
global n
func main() locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load acc
  load i
  call leaf 1
  ixor
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
func leaf(x)
  load x
  load x
  imul
  const 7
  iadd
  ret
end
`)
	if err != nil {
		b.Fatal(err)
	}
	callTiers := append(tiers[:len(tiers):len(tiers)], struct {
		name      string
		configure func(*interp.Engine)
	}{"register-noinline", func(e *interp.Engine) {
		e.EagerClosures = true
		e.EagerRegTier = true
		e.DisableCallInline = true
	}})
	for _, tier := range callTiers {
		b.Run("call/"+tier.name, func(b *testing.B) {
			e := interp.NewEngine(callProg)
			run := func() {
				e.Reset()
				tier.configure(e)
				if err := e.SetGlobal("n", bytecode.Int(10000)); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
			run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}

// BenchmarkOptimizePipeline measures a level-2 compile of a mid-size
// method (mtrt's intersection kernel).
func BenchmarkOptimizePipeline(b *testing.B) {
	bench := programs.ByName("mtrt")
	prog, err := bench.Program()
	if err != nil {
		b.Fatal(err)
	}
	idx, _ := prog.FuncIndex("intersectall")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := opt.Optimize(prog, idx, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXICLTranslate measures command-line-to-feature-vector
// translation with file-reading extractors.
func BenchmarkXICLTranslate(b *testing.B) {
	bench := programs.ByName("mtrt")
	spec, err := bench.ParsedSpec()
	if err != nil {
		b.Fatal(err)
	}
	reg, err := bench.Registry()
	if err != nil {
		b.Fatal(err)
	}
	in := bench.GenInputs(rand.New(rand.NewSource(1)), 1)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := xicl.NewTranslator(spec, reg, in.Files)
		if _, err := tr.BuildFVector(in.Args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeBuild measures classification-tree induction on a
// 200-example mixed-feature training set.
func BenchmarkTreeBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var examples []cart.Example
	for i := 0; i < 200; i++ {
		size := rng.Float64() * 100
		format := []string{"xml", "txt", "pdf"}[rng.Intn(3)]
		label := 0
		if size > 60 {
			label = 2
		} else if format == "xml" {
			label = 1
		}
		examples = append(examples, cart.Example{
			Features: xicl.Vector{
				xicl.NumFeature("size", size),
				xicl.CatFeature("fmt", format),
			},
			Label: label,
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cart.Build(examples, cart.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndEvolveRun measures one full Evolve production run of
// compress, including feature extraction and model feedback.
func BenchmarkEndToEndEvolveRun(b *testing.B) {
	r, err := harness.NewRunner(programs.ByName("compress"), 6, 1)
	if err != nil {
		b.Fatal(err)
	}
	in := r.Inputs[0]
	// One warm-up run populates the process-wide pools (machines, run
	// scratch) and the program's decoded plans so the measurement reflects
	// the production steady state rather than one-time warm-up.
	if _, err := r.RunOne(testCtx, harness.ScenarioEvolve, in); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunOne(testCtx, harness.ScenarioEvolve, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndCallHeavy measures a full production run (machine
// pool, controller, code cache, ledger) of a call-dominated workload: a
// hot loop whose body calls two small leaves every iteration. The
// columns hold the virtual observables bit-identical (substrate suites)
// and differ only in host mechanism: `inline` is the full substrate with
// CALL inlining, `noinline` refuses inlining so the loop degrades out of
// the register tier at every call site, `noreg` turns the register tier
// off entirely. The inline/noinline spread is the per-commit tracking
// signal for the inlining win at end-to-end scope.
func BenchmarkEndToEndCallHeavy(b *testing.B) {
	prog, err := bytecode.Assemble("callheavy", `
global n
func main() locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load acc
  load i
  call mix 1
  iadd
  store acc
  load acc
  call clamp 1
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
func mix(x)
  load x
  load x
  imul
  load x
  ixor
  const 2654435761
  imul
  ret
end
func clamp(x)
  load x
  const 1048575
  iand
  ret
end
`)
	if err != nil {
		b.Fatal(err)
	}
	columns := []struct {
		name string
		sub  exec.Substrate
	}{
		{"inline", exec.Substrate{EagerRegTier: true}},
		{"noinline", exec.Substrate{EagerRegTier: true, NoCallInline: true}},
		{"noreg", exec.Substrate{NoRegTier: true}},
	}
	for _, col := range columns {
		b.Run(col.name, func(b *testing.B) {
			spec := &exec.RunSpec{
				Prog:      prog,
				Jit:       jit.DefaultConfig(),
				Substrate: col.sub,
				Setup: func(e *interp.Engine) error {
					return e.SetGlobal("n", bytecode.Int(20000))
				},
			}
			out := &exec.RunOutcome{}
			// Warm untimed: machine pooled, plans and traces built.
			if err := exec.RunInto(testCtx, spec, out); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := exec.RunInto(testCtx, spec, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeHotPath measures one warmed in-process request through
// the serving front end — admission, chain dispatch, execution, striped
// outcome recording — with no HTTP layer. RunParallel drives it from
// GOMAXPROCS submitters, so ns/op tracks the contention behavior of the
// admission path and the sharded bookkeeping, not just single-thread
// cost. Epoch barriers (every 64 seqs, the CI loadtest cadence) stay in
// the measurement: they are part of the steady-state serve path.
func BenchmarkServeHotPath(b *testing.B) {
	const tenants, inputs = 8, 4
	benches := []string{"compress", "search"}
	s, err := serve.New(serve.Config{
		Workers:     runtime.GOMAXPROCS(0),
		QueueDepth:  256,
		EpochLength: 64,
		Scenario:    harness.ScenarioEvolve,
		Seed:        42,
		CorpusSize:  inputs,
		Benches:     benches,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	// Warm every chain untimed: the first requests pay corpus generation,
	// compilation, and learner bootstrap; the hot path starts after.
	for t := 0; t < tenants; t++ {
		for _, bench := range benches {
			for in := 0; in < inputs; in++ {
				if _, err := s.Submit(testCtx, fmt.Sprintf("t%d", t), bench, in, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	s.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			tenant := fmt.Sprintf("t%d", i%tenants)
			bench := benches[i%int64(len(benches))]
			if _, err := s.Submit(testCtx, tenant, bench, int(i%inputs), 0); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkGCSelection runs the §VI extension (E8): learned per-input
// garbage-collector choice on the server workload.
// BenchmarkColdStartServe measures first-request latency for tenants
// the server has never seen: each iteration submits from a fresh tenant,
// with the cross-run code cache off so every run compiles its own tier
// plans. The sync arm builds plans inline at the promotion point —
// stalling the request — while the async arm enqueues them on the
// background pool and answers from the current best tier. The gap
// between the two arms is the compile time the pool takes off the
// serving hot path.
func BenchmarkColdStartServe(b *testing.B) {
	run := func(b *testing.B, sub exec.Substrate) {
		sub.NoCodeCache = true
		s, err := serve.New(serve.Config{
			Workers:     runtime.GOMAXPROCS(0),
			QueueDepth:  256,
			EpochLength: 8,
			Scenario:    harness.ScenarioEvolve,
			Seed:        42,
			CorpusSize:  4,
			Benches:     []string{"compress"},
			Substrate:   sub,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tenant := fmt.Sprintf("cold%d", i)
			if _, err := s.Submit(testCtx, tenant, "compress", i%4, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sync", func(b *testing.B) { run(b, exec.Substrate{SyncCompile: true}) })
	b.Run("async", func(b *testing.B) { run(b, exec.Substrate{AsyncCompile: true}) })
}

func BenchmarkGCSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.GCSelection(testCtx, io.Discard, quickOpts(int64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		if res.Runs > 0 {
			b.ReportMetric(float64(res.Learned)/float64(res.Oracle), "learned/oracle")
		}
	}
}
