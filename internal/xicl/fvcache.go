package xicl

import "sync"

// FVCache memoizes feature-vector extraction by input signature. Feature
// extraction is a pure function of the input (command line plus files),
// so a learner that sees the same input many times across a production
// sequence can reuse the vector and its extraction cost instead of
// re-materializing both — the virtual extraction charge is still paid by
// every run, exactly as if the translator had run again.
//
// Cached vectors are shared: callers (and anything they hand the vector
// to, such as training examples) must treat them as immutable. A
// translator with runtime constructs mutates its vector through UpdateV
// and must not be memoized; the cache is for the static BuildFVector
// path.
type FVCache struct {
	mu sync.RWMutex
	m  map[string]fvEntry
}

type fvEntry struct {
	vec  Vector
	cost int64
}

// NewFVCache returns an empty cache.
func NewFVCache() *FVCache {
	return &FVCache{m: make(map[string]fvEntry)}
}

// Get returns the memoized vector and extraction cost for the signature.
func (c *FVCache) Get(sig string) (Vector, int64, bool) {
	c.mu.RLock()
	e, ok := c.m[sig]
	c.mu.RUnlock()
	return e.vec, e.cost, ok
}

// Put memoizes a vector and its extraction cost under the signature. The
// cache takes shared ownership of vec; it must not be mutated afterwards.
func (c *FVCache) Put(sig string, vec Vector, cost int64) {
	c.mu.Lock()
	c.m[sig] = fvEntry{vec: vec, cost: cost}
	c.mu.Unlock()
}

// Len returns the number of memoized signatures.
func (c *FVCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
