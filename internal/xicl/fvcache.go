package xicl

import (
	"evolvevm/internal/stripe"
)

// DefaultFVCacheCapacity bounds a feature-vector cache. Vectors are a few
// dozen floats plus a signature string, so the bound keeps a cache to a
// couple of megabytes while still covering any realistic input corpus —
// the same sizing philosophy as jit.DefaultCacheCapacity. Long sessions
// that stream unbounded distinct inputs evict (approximately) the least
// recently used vector instead of growing without limit.
const DefaultFVCacheCapacity = 4096

// FVCacheStats reports cache effectiveness and occupancy.
type FVCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Capacity  int // 0 = unbounded
}

// FVCache memoizes feature-vector extraction by input signature, bounded
// with lock-striped CLOCK eviction (internal/stripe): a hit takes only a
// per-shard read lock plus one atomic reference-bit touch, so concurrent
// serving requests extracting features for the same inputs never
// serialize behind a recency-list update. Feature extraction is a pure
// function of the input (command line plus files), so a learner that
// sees the same input many times across a production sequence can reuse
// the vector and its extraction cost instead of re-materializing both —
// the virtual extraction charge is still paid by every run, exactly as
// if the translator had run again. Eviction (CLOCK-approximate LRU)
// cannot change virtual results: a re-miss merely re-runs the
// deterministic extractor.
//
// Cached vectors are shared: callers (and anything they hand the vector
// to, such as training examples) must treat them as immutable. A
// translator with runtime constructs mutates its vector through UpdateV
// and must not be memoized; the cache is for the static BuildFVector
// path.
type FVCache struct {
	c *stripe.Cache[string, *fvEntry]
}

// fvEntry is immutable once stored.
type fvEntry struct {
	vec  Vector
	cost int64
}

// NewFVCache returns an empty cache bounded at DefaultFVCacheCapacity.
func NewFVCache() *FVCache { return NewFVCacheCap(DefaultFVCacheCapacity) }

// NewFVCacheCap returns an empty cache holding at most capacity entries
// (capacity <= 0 means unbounded).
func NewFVCacheCap(capacity int) *FVCache {
	return &FVCache{c: stripe.New[string, *fvEntry](capacity)}
}

// Get returns the memoized vector and extraction cost for the signature.
func (c *FVCache) Get(sig string) (Vector, int64, bool) {
	e, ok := c.c.Lookup(sig)
	if !ok {
		return nil, 0, false
	}
	return e.vec, e.cost, true
}

// Put memoizes a vector and its extraction cost under the signature. The
// cache takes shared ownership of vec; it must not be mutated afterwards.
func (c *FVCache) Put(sig string, vec Vector, cost int64) {
	c.c.Store(sig, &fvEntry{vec: vec, cost: cost})
}

// Len returns the number of memoized signatures.
func (c *FVCache) Len() int { return c.c.Len() }

// Stats returns a snapshot of the cache's counters and occupancy.
func (c *FVCache) Stats() FVCacheStats {
	st := c.c.Stats()
	return FVCacheStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Entries:   st.Entries,
		Capacity:  st.Capacity,
	}
}
