package xicl

import (
	"container/list"
	"sync"
)

// DefaultFVCacheCapacity bounds a feature-vector cache. Vectors are a few
// dozen floats plus a signature string, so the bound keeps a cache to a
// couple of megabytes while still covering any realistic input corpus —
// the same sizing philosophy as jit.DefaultCacheCapacity. Long sessions
// that stream unbounded distinct inputs now evict the least recently used
// vector instead of growing without limit.
const DefaultFVCacheCapacity = 4096

// FVCacheStats reports cache effectiveness and occupancy.
type FVCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Capacity  int // 0 = unbounded
}

// FVCache memoizes feature-vector extraction by input signature, bounded
// with LRU eviction. Feature extraction is a pure function of the input
// (command line plus files), so a learner that sees the same input many
// times across a production sequence can reuse the vector and its
// extraction cost instead of re-materializing both — the virtual
// extraction charge is still paid by every run, exactly as if the
// translator had run again. Eviction cannot change virtual results: a
// re-miss merely re-runs the deterministic extractor.
//
// Cached vectors are shared: callers (and anything they hand the vector
// to, such as training examples) must treat them as immutable. A
// translator with runtime constructs mutates its vector through UpdateV
// and must not be memoized; the cache is for the static BuildFVector
// path.
type FVCache struct {
	mu        sync.Mutex // plain Mutex: lookups mutate recency order
	m         map[string]*list.Element
	order     *list.List // front = most recently used
	capacity  int
	hits      int64
	misses    int64
	evictions int64
}

type fvEntry struct {
	sig  string
	vec  Vector
	cost int64
}

// NewFVCache returns an empty cache bounded at DefaultFVCacheCapacity.
func NewFVCache() *FVCache { return NewFVCacheCap(DefaultFVCacheCapacity) }

// NewFVCacheCap returns an empty cache holding at most capacity entries
// (capacity <= 0 means unbounded).
func NewFVCacheCap(capacity int) *FVCache {
	return &FVCache{
		m:        make(map[string]*list.Element),
		order:    list.New(),
		capacity: capacity,
	}
}

// Get returns the memoized vector and extraction cost for the signature.
func (c *FVCache) Get(sig string) (Vector, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[sig]
	if !ok {
		c.misses++
		return nil, 0, false
	}
	c.hits++
	c.order.MoveToFront(el)
	e := el.Value.(*fvEntry)
	return e.vec, e.cost, true
}

// Put memoizes a vector and its extraction cost under the signature. The
// cache takes shared ownership of vec; it must not be mutated afterwards.
func (c *FVCache) Put(sig string, vec Vector, cost int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[sig]; ok {
		e := el.Value.(*fvEntry)
		e.vec, e.cost = vec, cost
		c.order.MoveToFront(el)
		return
	}
	c.m[sig] = c.order.PushFront(&fvEntry{sig: sig, vec: vec, cost: cost})
	for c.capacity > 0 && c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.m, oldest.Value.(*fvEntry).sig)
		c.evictions++
	}
}

// Len returns the number of memoized signatures.
func (c *FVCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns a snapshot of the cache's counters and occupancy.
func (c *FVCache) Stats() FVCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return FVCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.m),
		Capacity:  c.capacity,
	}
}
