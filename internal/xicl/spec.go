package xicl

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueType classifies an input component, deciding how its raw text is
// interpreted by the predefined extractors.
type ValueType uint8

const (
	// TypeNum is a numeric option/operand; VAL yields a quantitative
	// feature.
	TypeNum ValueType = iota
	// TypeBin is a boolean flag; VAL yields 0/1.
	TypeBin
	// TypeStr is free text; VAL yields a categorical feature.
	TypeStr
	// TypeEnum is a closed set of strings; VAL yields a categorical
	// feature.
	TypeEnum
	// TypeFile is a path into the input filesystem; SIZE/LINES/WORDS
	// read the file.
	TypeFile
)

var valueTypeNames = map[string]ValueType{
	"num":  TypeNum,
	"bin":  TypeBin,
	"str":  TypeStr,
	"enum": TypeEnum,
	"file": TypeFile,
}

func (t ValueType) String() string {
	for name, v := range valueTypeNames {
		if v == t {
			return name
		}
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// PosEnd marks "the end of the command line" ($) in operand positions.
const PosEnd = -1

// OptionSpec describes one option construct.
type OptionSpec struct {
	// Names holds the option's aliases, e.g. ["-e", "--echo"].
	Names   []string
	Type    ValueType
	Attrs   []string
	Default string
	HasArg  bool
}

// Primary returns the option's first alias, used to name its features.
func (o *OptionSpec) Primary() string { return o.Names[0] }

// OperandSpec describes one operand construct covering command-line
// positions [Lo, Hi] (1-based; Hi == PosEnd means "through the end").
type OperandSpec struct {
	Lo, Hi int
	Type   ValueType
	Attrs  []string
}

// RuntimeSpec reserves feature-vector positions for values the running
// application passes to the translator via UpdateV — the enriched-XICL
// mechanism for exploiting the program's own initialization computation.
type RuntimeSpec struct {
	// Name is the programmer-defined feature name (must start with "m").
	Name string
	// Count is how many numeric slots the feature occupies.
	Count int
	// Default fills the slots until UpdateV supplies values.
	Default float64
}

// Spec is a parsed XICL specification.
type Spec struct {
	Options  []OptionSpec
	Operands []OperandSpec
	Runtime  []RuntimeSpec
}

// ParseSpec parses XICL source. Lines starting with "#" are comments. A
// construct is NAME { field=value; ... } and may span lines.
func ParseSpec(src string) (*Spec, error) {
	spec := &Spec{}
	// Strip comments, then scan constructs.
	var clean strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		clean.WriteString(line)
		clean.WriteString("\n")
	}
	text := clean.String()
	pos := 0
	construct := 0
	for {
		// Next word.
		for pos < len(text) && isSpace(text[pos]) {
			pos++
		}
		if pos >= len(text) {
			break
		}
		start := pos
		for pos < len(text) && !isSpace(text[pos]) && text[pos] != '{' {
			pos++
		}
		kw := strings.TrimSpace(text[start:pos])
		for pos < len(text) && isSpace(text[pos]) {
			pos++
		}
		if pos >= len(text) || text[pos] != '{' {
			return nil, fmt.Errorf("xicl: construct %d (%q): expected '{'", construct+1, kw)
		}
		close := strings.IndexByte(text[pos:], '}')
		if close < 0 {
			return nil, fmt.Errorf("xicl: construct %d (%q): missing '}'", construct+1, kw)
		}
		body := text[pos+1 : pos+close]
		pos += close + 1
		construct++

		fields, err := parseFields(body)
		if err != nil {
			return nil, fmt.Errorf("xicl: construct %d (%q): %v", construct, kw, err)
		}
		switch kw {
		case "option":
			o, err := buildOption(fields)
			if err != nil {
				return nil, fmt.Errorf("xicl: option %d: %v", construct, err)
			}
			spec.Options = append(spec.Options, o)
		case "operand":
			o, err := buildOperand(fields)
			if err != nil {
				return nil, fmt.Errorf("xicl: operand %d: %v", construct, err)
			}
			spec.Operands = append(spec.Operands, o)
		case "runtime":
			r, err := buildRuntime(fields)
			if err != nil {
				return nil, fmt.Errorf("xicl: runtime %d: %v", construct, err)
			}
			spec.Runtime = append(spec.Runtime, r)
		default:
			return nil, fmt.Errorf("xicl: unknown construct %q", kw)
		}
	}
	return spec, nil
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

func parseFields(body string) (map[string]string, error) {
	fields := map[string]string{}
	for _, part := range strings.Split(body, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("field %q is not key=value", part)
		}
		key := strings.TrimSpace(part[:eq])
		val := strings.TrimSpace(part[eq+1:])
		if _, dup := fields[key]; dup {
			return nil, fmt.Errorf("duplicate field %q", key)
		}
		fields[key] = val
	}
	return fields, nil
}

func parseType(fields map[string]string) (ValueType, error) {
	ts, ok := fields["type"]
	if !ok {
		return 0, fmt.Errorf("missing type")
	}
	t, ok := valueTypeNames[ts]
	if !ok {
		return 0, fmt.Errorf("unknown type %q", ts)
	}
	return t, nil
}

func parseAttrs(fields map[string]string) []string {
	if a, ok := fields["attr"]; ok && a != "" {
		return strings.Split(a, ":")
	}
	return nil
}

func buildOption(fields map[string]string) (OptionSpec, error) {
	var o OptionSpec
	name, ok := fields["name"]
	if !ok || name == "" {
		return o, fmt.Errorf("missing name")
	}
	o.Names = strings.Split(name, ":")
	for _, n := range o.Names {
		if !strings.HasPrefix(n, "-") {
			return o, fmt.Errorf("option name %q must start with '-'", n)
		}
	}
	t, err := parseType(fields)
	if err != nil {
		return o, err
	}
	o.Type = t
	o.Attrs = parseAttrs(fields)
	if len(o.Attrs) == 0 {
		o.Attrs = []string{"VAL"}
	}
	o.Default = fields["default"]
	switch fields["has_arg"] {
	case "y", "yes", "1":
		o.HasArg = true
	case "", "n", "no", "0":
		o.HasArg = false
	default:
		return o, fmt.Errorf("bad has_arg %q", fields["has_arg"])
	}
	if !o.HasArg && o.Type != TypeBin {
		return o, fmt.Errorf("option %s without argument must have type bin", o.Primary())
	}
	return o, nil
}

func buildOperand(fields map[string]string) (OperandSpec, error) {
	var o OperandSpec
	posStr, ok := fields["position"]
	if !ok {
		return o, fmt.Errorf("missing position")
	}
	lo, hi, err := parsePosition(posStr)
	if err != nil {
		return o, err
	}
	o.Lo, o.Hi = lo, hi
	t, err := parseType(fields)
	if err != nil {
		return o, err
	}
	o.Type = t
	o.Attrs = parseAttrs(fields)
	if len(o.Attrs) == 0 {
		o.Attrs = []string{"VAL"}
	}
	return o, nil
}

func parsePosition(s string) (lo, hi int, err error) {
	parse := func(tok string) (int, error) {
		if tok == "$" {
			return PosEnd, nil
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n < 1 {
			return 0, fmt.Errorf("bad position %q", tok)
		}
		return n, nil
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		if lo, err = parse(s[:i]); err != nil {
			return 0, 0, err
		}
		if hi, err = parse(s[i+1:]); err != nil {
			return 0, 0, err
		}
		if lo == PosEnd {
			return 0, 0, fmt.Errorf("position range cannot start at $")
		}
		if hi != PosEnd && hi < lo {
			return 0, 0, fmt.Errorf("empty position range %q", s)
		}
		return lo, hi, nil
	}
	if lo, err = parse(s); err != nil {
		return 0, 0, err
	}
	return lo, lo, nil
}

func buildRuntime(fields map[string]string) (RuntimeSpec, error) {
	var r RuntimeSpec
	name, ok := fields["name"]
	if !ok || !strings.HasPrefix(name, "m") {
		return r, fmt.Errorf("runtime feature name %q must start with 'm'", name)
	}
	r.Name = name
	r.Count = 1
	if c, ok := fields["count"]; ok {
		n, err := strconv.Atoi(c)
		if err != nil || n < 1 {
			return r, fmt.Errorf("bad count %q", c)
		}
		r.Count = n
	}
	if d, ok := fields["default"]; ok {
		f, err := strconv.ParseFloat(d, 64)
		if err != nil {
			return r, fmt.Errorf("bad default %q", d)
		}
		r.Default = f
	}
	return r, nil
}
