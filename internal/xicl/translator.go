package xicl

import (
	"fmt"
	"strings"
)

// Translator converts a program's command line into a feature vector
// according to an XICL specification — the paper's XICLTranslator. One
// translator serves one run; runtime features arrive through UpdateV and
// Done (the paper's XICLFeatureVector interface).
type Translator struct {
	Spec     *Spec
	Registry *Registry
	Env      *Env

	// OnDone, when set, fires once all runtime features have been
	// delivered (or immediately after BuildFVector when the spec has no
	// runtime constructs). The evolvable VM hooks prediction here.
	OnDone func(Vector)

	vector     Vector
	runtimeIdx map[string]int
	built      bool
	done       bool
}

// NewTranslator builds a translator over the given spec, method registry,
// and input filesystem.
func NewTranslator(spec *Spec, reg *Registry, fs FS) *Translator {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Translator{
		Spec:       spec,
		Registry:   reg,
		Env:        &Env{FS: fs},
		runtimeIdx: make(map[string]int),
	}
}

// Cost returns the cycles spent on feature extraction so far.
func (t *Translator) Cost() int64 { return t.Env.Cycles() }

// Vector returns the current feature vector (valid after BuildFVector).
func (t *Translator) Vector() Vector { return t.vector }

// BuildFVector parses the command line (arguments only, without the
// program name) and produces the feature vector. The vector's shape —
// length, names, kinds — depends only on the specification, never on the
// particular input, so vectors from different runs are comparable.
func (t *Translator) BuildFVector(cmdline []string) (Vector, error) {
	if t.built {
		return nil, fmt.Errorf("xicl: BuildFVector called twice")
	}
	optVals, operands, err := t.parseCommandLine(cmdline)
	if err != nil {
		return nil, err
	}

	var vec Vector
	for i := range t.Spec.Options {
		o := &t.Spec.Options[i]
		raw, present := optVals[o.Primary()]
		if !present {
			raw = o.Default
		}
		fs, err := t.extract(o.Primary(), o.Attrs, raw, o.Type)
		if err != nil {
			return nil, err
		}
		vec = append(vec, fs...)
	}
	for i := range t.Spec.Operands {
		od := &t.Spec.Operands[i]
		matched := matchOperands(operands, od)
		fs, err := t.operandFeatures(od, matched)
		if err != nil {
			return nil, err
		}
		vec = append(vec, fs...)
	}
	for i := range t.Spec.Runtime {
		r := &t.Spec.Runtime[i]
		t.runtimeIdx[r.Name] = len(vec)
		for j := 0; j < r.Count; j++ {
			name := r.Name
			if r.Count > 1 {
				name = fmt.Sprintf("%s.%d", r.Name, j)
			}
			vec = append(vec, NumFeature(name, r.Default))
		}
	}

	t.vector = vec
	t.built = true
	if len(t.Spec.Runtime) == 0 {
		t.fireDone()
	}
	return vec, nil
}

// UpdateV stores runtime feature values delivered by the application (the
// paper's XICLFeatureVector.updateV). Extra values beyond the declared
// count are ignored; missing ones keep their defaults.
func (t *Translator) UpdateV(name string, vals ...float64) error {
	if !t.built {
		return fmt.Errorf("xicl: UpdateV before BuildFVector")
	}
	base, ok := t.runtimeIdx[name]
	if !ok {
		return fmt.Errorf("xicl: no runtime construct %q in spec", name)
	}
	count := 0
	for i := range t.Spec.Runtime {
		if t.Spec.Runtime[i].Name == name {
			count = t.Spec.Runtime[i].Count
		}
	}
	for j := 0; j < count && j < len(vals); j++ {
		t.vector[base+j].Num = vals[j]
	}
	t.Env.Charge(15 + 5*int64(len(vals)))
	return nil
}

// Done signals that no more runtime values will arrive, releasing the
// prediction hook (the paper's XICLFeatureVector.done).
func (t *Translator) Done() { t.fireDone() }

func (t *Translator) fireDone() {
	if t.done {
		return
	}
	t.done = true
	if t.OnDone != nil {
		t.OnDone(t.vector)
	}
}

// DoneFired reports whether Done (or an implicit completion) has occurred.
func (t *Translator) DoneFired() bool { return t.done }

// parseCommandLine splits tokens into option values (keyed by the
// option's primary name) and positional operands, POSIX style: "--" ends
// option processing, "--opt=value" is accepted, an option with has_arg
// consumes the next token, and repeated options keep the last value.
func (t *Translator) parseCommandLine(cmdline []string) (map[string]string, []string, error) {
	byAlias := map[string]*OptionSpec{}
	for i := range t.Spec.Options {
		for _, alias := range t.Spec.Options[i].Names {
			byAlias[alias] = &t.Spec.Options[i]
		}
	}
	optVals := map[string]string{}
	var operands []string
	onlyOperands := false
	for i := 0; i < len(cmdline); i++ {
		tok := cmdline[i]
		if onlyOperands || tok == "-" || !strings.HasPrefix(tok, "-") || len(tok) == 1 {
			operands = append(operands, tok)
			continue
		}
		if tok == "--" {
			onlyOperands = true
			continue
		}
		name, inline, hasInline := tok, "", false
		if eq := strings.IndexByte(tok, '='); eq >= 0 {
			name, inline, hasInline = tok[:eq], tok[eq+1:], true
		}
		o, ok := byAlias[name]
		if !ok {
			return nil, nil, fmt.Errorf("xicl: unknown option %q", name)
		}
		switch {
		case hasInline:
			if !o.HasArg {
				return nil, nil, fmt.Errorf("xicl: option %s takes no argument", name)
			}
			optVals[o.Primary()] = inline
		case o.HasArg:
			if i+1 >= len(cmdline) {
				return nil, nil, fmt.Errorf("xicl: option %s requires an argument", name)
			}
			i++
			optVals[o.Primary()] = cmdline[i]
		default:
			optVals[o.Primary()] = "1"
		}
	}
	return optVals, operands, nil
}

// matchOperands selects the operands covered by the spec's position
// range (1-based, PosEnd = through the end, or the last operand when both
// bounds are PosEnd-like single "$").
func matchOperands(operands []string, od *OperandSpec) []string {
	n := len(operands)
	lo, hi := od.Lo, od.Hi
	if lo == PosEnd { // single "$": the last operand
		if n == 0 {
			return nil
		}
		return operands[n-1:]
	}
	if hi == PosEnd {
		hi = n
	}
	if lo > n {
		return nil
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		return nil
	}
	return operands[lo-1 : hi]
}

// componentName names an operand construct's features.
func componentName(od *OperandSpec) string {
	switch {
	case od.Lo == PosEnd:
		return "arg$"
	case od.Hi == od.Lo:
		return fmt.Sprintf("arg%d", od.Lo)
	case od.Hi == PosEnd:
		return fmt.Sprintf("arg%d$", od.Lo)
	default:
		return fmt.Sprintf("arg%d-%d", od.Lo, od.Hi)
	}
}

// operandFeatures extracts and aggregates features for one operand
// construct. For range constructs, numeric features are summed across
// matching operands and categorical features keep the first value; a
// count feature "<name>.N" is prepended so the model can see arity.
func (t *Translator) operandFeatures(od *OperandSpec, matched []string) (Vector, error) {
	comp := componentName(od)
	isRange := od.Hi != od.Lo
	var out Vector
	if isRange {
		out = append(out, NumFeature(comp+".N", float64(len(matched))))
	}

	// Resolve attr methods up front so absent operands still produce a
	// stable shape.
	type attrInfo struct {
		name   string
		method XFMethod
	}
	attrs := make([]attrInfo, 0, len(od.Attrs))
	for _, a := range od.Attrs {
		m, ok := t.Registry.Lookup(a)
		if !ok {
			return nil, fmt.Errorf("xicl: unknown attr %q (register a method named %q?)", a, a)
		}
		attrs = append(attrs, attrInfo{a, m})
	}

	for _, ai := range attrs {
		agg := make([]Feature, ai.method.Arity())
		for j := range agg {
			name := comp + "." + ai.name
			if ai.method.Arity() > 1 {
				name = fmt.Sprintf("%s.%d", name, j)
			}
			agg[j] = NumFeature(name, 0)
		}
		for oi, raw := range matched {
			fs, err := ai.method.XFeature(raw, od.Type, t.Env)
			if err != nil {
				return nil, fmt.Errorf("xicl: %s on operand %d: %v", ai.name, oi+1, err)
			}
			if len(fs) != ai.method.Arity() {
				return nil, fmt.Errorf("xicl: method %s yielded %d features, declared %d",
					ai.name, len(fs), ai.method.Arity())
			}
			for j, ft := range fs {
				switch {
				case ft.Kind == Categorical && (oi == 0 || agg[j].Kind != Categorical):
					agg[j] = CatFeature(agg[j].Name, ft.Cat)
				case ft.Kind == Categorical:
					// keep first categorical value
				default:
					agg[j].Num += ft.Num
				}
			}
		}
		out = append(out, agg...)
	}
	return out, nil
}

// extract runs an option's attr methods over its raw value.
func (t *Translator) extract(comp string, attrs []string, raw string, typ ValueType) (Vector, error) {
	var out Vector
	for _, a := range attrs {
		m, ok := t.Registry.Lookup(a)
		if !ok {
			return nil, fmt.Errorf("xicl: unknown attr %q (register a method named %q?)", a, a)
		}
		fs, err := m.XFeature(raw, typ, t.Env)
		if err != nil {
			return nil, fmt.Errorf("xicl: %s on %s: %v", a, comp, err)
		}
		for j, ft := range fs {
			name := comp + "." + a
			if len(fs) > 1 {
				name = fmt.Sprintf("%s.%d", name, j)
			}
			ft.Name = name
			out = append(out, ft)
		}
	}
	return out, nil
}
