package xicl

import (
	"fmt"
	"strconv"
	"strings"
)

// Env gives feature-extraction methods access to the input filesystem and
// a cycle meter; everything an extractor does is charged to the run that
// invoked the translator (the paper's overhead analysis measures exactly
// this).
type Env struct {
	FS     FS
	cycles int64
}

// Charge adds extraction cost to the meter.
func (e *Env) Charge(cycles int64) { e.cycles += cycles }

// Cycles returns the accumulated extraction cost.
func (e *Env) Cycles() int64 { return e.cycles }

// XFMethod is a feature-extraction method — the Go analogue of the
// paper's XFMethod interface. Implementations compute a fixed number
// (Arity) of features from one input component's raw value.
type XFMethod interface {
	// Arity is the number of features the method yields; the translator
	// needs it to keep vector shapes stable when components are absent.
	Arity() int
	// XFeature extracts the features. Feature names are assigned by the
	// translator from the component and attr names; only Kind and value
	// are taken from the returned features.
	XFeature(raw string, typ ValueType, env *Env) ([]Feature, error)
}

// XFMethodFunc adapts a function to a single-feature XFMethod.
type XFMethodFunc func(raw string, typ ValueType, env *Env) (Feature, error)

func (f XFMethodFunc) Arity() int { return 1 }

func (f XFMethodFunc) XFeature(raw string, typ ValueType, env *Env) ([]Feature, error) {
	ft, err := f(raw, typ, env)
	if err != nil {
		return nil, err
	}
	return []Feature{ft}, nil
}

// Registry maps attr names to extraction methods. It is the analogue of
// the paper's xfMethodsMap plus Class.forName-style lookup: predefined
// methods are installed by NewRegistry, programmer-defined ones (names
// starting with "m") are added with Register.
type Registry struct {
	methods map[string]XFMethod
}

// NewRegistry returns a registry with the predefined methods VAL, SIZE,
// LINES, WORDS and LEN installed.
func NewRegistry() *Registry {
	r := &Registry{methods: make(map[string]XFMethod)}
	r.methods["VAL"] = XFMethodFunc(xfVal)
	r.methods["SIZE"] = XFMethodFunc(xfSize)
	r.methods["LINES"] = XFMethodFunc(xfLines)
	r.methods["WORDS"] = XFMethodFunc(xfWords)
	r.methods["LEN"] = XFMethodFunc(xfLen)
	return r
}

// Register installs a programmer-defined method. Names must start with
// "m" to be distinguishable from predefined features, as in the paper.
func (r *Registry) Register(name string, m XFMethod) error {
	if !strings.HasPrefix(name, "m") {
		return fmt.Errorf("xicl: programmer-defined method %q must start with 'm'", name)
	}
	if m == nil || m.Arity() < 1 {
		return fmt.Errorf("xicl: method %q must yield at least one feature", name)
	}
	if _, dup := r.methods[name]; dup {
		return fmt.Errorf("xicl: method %q already registered", name)
	}
	r.methods[name] = m
	return nil
}

// Lookup resolves an attr name to its method.
func (r *Registry) Lookup(name string) (XFMethod, bool) {
	m, ok := r.methods[name]
	return m, ok
}

// Names returns the registered method names (unsorted).
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.methods))
	for n := range r.methods {
		names = append(names, n)
	}
	return names
}

// --- predefined methods ---

// xfVal interprets the component's value directly: quantitative for num
// and bin, categorical otherwise.
func xfVal(raw string, typ ValueType, env *Env) (Feature, error) {
	env.Charge(20)
	switch typ {
	case TypeNum:
		if raw == "" {
			return NumFeature("", 0), nil
		}
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return Feature{}, fmt.Errorf("VAL: %q is not numeric", raw)
		}
		return NumFeature("", f), nil
	case TypeBin:
		on := raw == "1" || raw == "true" || raw == "y"
		if on {
			return NumFeature("", 1), nil
		}
		return NumFeature("", 0), nil
	default:
		return CatFeature("", raw), nil
	}
}

// xfSize is the file size in bytes.
func xfSize(raw string, typ ValueType, env *Env) (Feature, error) {
	env.Charge(60)
	if typ != TypeFile {
		return Feature{}, fmt.Errorf("SIZE applies to file components")
	}
	if raw == "" {
		return NumFeature("", 0), nil
	}
	n, err := env.FS.Size(raw)
	if err != nil {
		return Feature{}, fmt.Errorf("SIZE: %v", err)
	}
	return NumFeature("", float64(n)), nil
}

func readFileCharged(raw string, env *Env) ([]byte, error) {
	b, err := env.FS.ReadFile(raw)
	if err != nil {
		return nil, err
	}
	env.Charge(40 + int64(len(b))/8)
	return b, nil
}

// xfLines counts newline-separated lines in a file.
func xfLines(raw string, typ ValueType, env *Env) (Feature, error) {
	if typ != TypeFile {
		return Feature{}, fmt.Errorf("LINES applies to file components")
	}
	if raw == "" {
		return NumFeature("", 0), nil
	}
	b, err := readFileCharged(raw, env)
	if err != nil {
		return Feature{}, fmt.Errorf("LINES: %v", err)
	}
	lines := 0
	for _, c := range b {
		if c == '\n' {
			lines++
		}
	}
	if len(b) > 0 && b[len(b)-1] != '\n' {
		lines++
	}
	return NumFeature("", float64(lines)), nil
}

// xfWords counts whitespace-separated words in a file.
func xfWords(raw string, typ ValueType, env *Env) (Feature, error) {
	if typ != TypeFile {
		return Feature{}, fmt.Errorf("WORDS applies to file components")
	}
	if raw == "" {
		return NumFeature("", 0), nil
	}
	b, err := readFileCharged(raw, env)
	if err != nil {
		return Feature{}, fmt.Errorf("WORDS: %v", err)
	}
	return NumFeature("", float64(len(strings.Fields(string(b))))), nil
}

// xfLen is the length of the raw value text itself.
func xfLen(raw string, _ ValueType, env *Env) (Feature, error) {
	env.Charge(10)
	return NumFeature("", float64(len(raw))), nil
}
