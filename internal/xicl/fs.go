package xicl

import (
	"fmt"
	"os"
	"sort"
)

// FS abstracts the filesystem the translator reads input files from. The
// experiment harness supplies a virtual filesystem holding synthesized
// benchmark inputs; real deployments use OSFS.
type FS interface {
	// ReadFile returns the content of the named file.
	ReadFile(path string) ([]byte, error)
	// Size returns the file's length in bytes without necessarily
	// reading it.
	Size(path string) (int64, error)
}

// OSFS reads from the host filesystem.
type OSFS struct{}

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) Size(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// MapFS is an in-memory filesystem keyed by path.
type MapFS map[string][]byte

func (m MapFS) ReadFile(path string) ([]byte, error) {
	b, ok := m[path]
	if !ok {
		return nil, fmt.Errorf("xicl: no such file %q", path)
	}
	return b, nil
}

func (m MapFS) Size(path string) (int64, error) {
	b, ok := m[path]
	if !ok {
		return 0, fmt.Errorf("xicl: no such file %q", path)
	}
	return int64(len(b)), nil
}

// Paths returns the files in the map in sorted order.
func (m MapFS) Paths() []string {
	paths := make([]string, 0, len(m))
	for p := range m {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}
