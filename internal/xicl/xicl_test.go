package xicl

import (
	"strings"
	"testing"
)

// routeSpec is the paper's Figure 2(b) example: a shortest-route finder
// with -n (number of paths), -e/--echo (status messages), and graph-file
// operands carrying programmer-defined mNodes and mEdges features.
const routeSpec = `
# XICL for the route example (paper Fig. 2)
option  {name=-n; type=num; attr=VAL; default=1; has_arg=y}
option  {name=-e:--echo; type=bin; attr=VAL; default=0; has_arg=n}
operand {position=1:$; type=file; attr=mNodes:mEdges}
`

// graph files: first line "nodes edges".
func graphFS() MapFS {
	return MapFS{
		"graph":  []byte("100 1000\n0 1\n1 2\n"),
		"graph2": []byte("7 9\n0 1\n"),
	}
}

func registerGraphMethods(t *testing.T, reg *Registry) {
	t.Helper()
	header := func(raw string, env *Env) []string {
		b, err := env.FS.ReadFile(raw)
		if err != nil {
			return nil
		}
		env.Charge(int64(len(b)) / 4)
		line, _, _ := strings.Cut(string(b), "\n")
		return strings.Fields(line)
	}
	mustRegister := func(name string, idx int) {
		err := reg.Register(name, XFMethodFunc(func(raw string, _ ValueType, env *Env) (Feature, error) {
			fields := header(raw, env)
			if idx >= len(fields) {
				return NumFeature("", 0), nil
			}
			var v float64
			for _, c := range fields[idx] {
				v = v*10 + float64(c-'0')
			}
			return NumFeature("", v), nil
		}))
		if err != nil {
			t.Fatal(err)
		}
	}
	mustRegister("mNodes", 0)
	mustRegister("mEdges", 1)
}

func buildRoute(t *testing.T, cmdline ...string) Vector {
	t.Helper()
	spec, err := ParseSpec(routeSpec)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	reg := NewRegistry()
	registerGraphMethods(t, reg)
	tr := NewTranslator(spec, reg, graphFS())
	vec, err := tr.BuildFVector(cmdline)
	if err != nil {
		t.Fatalf("BuildFVector: %v", err)
	}
	return vec
}

func TestPaperRouteExample(t *testing.T) {
	// "route -n 3 graph" with a 100-node 1000-edge graph must yield
	// (3, 0, 100, 1000) per the paper (plus the operand-count feature our
	// range aggregation adds).
	vec := buildRoute(t, "-n", "3", "graph")
	want := map[string]float64{
		"-n.VAL":       3,
		"-e.VAL":       0,
		"arg1$.N":      1,
		"arg1$.mNodes": 100,
		"arg1$.mEdges": 1000,
	}
	if len(vec) != len(want) {
		t.Fatalf("vector = %v, want %d features", vec, len(want))
	}
	for name, v := range want {
		i := vec.Index(name)
		if i < 0 {
			t.Errorf("missing feature %s in %v", name, vec)
			continue
		}
		if vec[i].Num != v {
			t.Errorf("%s = %v, want %v", name, vec[i].Num, v)
		}
	}
}

func TestDefaultsAndAliases(t *testing.T) {
	// No options: -n defaults to 1, echo off.
	vec := buildRoute(t, "graph")
	if i := vec.Index("-n.VAL"); vec[i].Num != 1 {
		t.Errorf("-n default = %v, want 1", vec[i].Num)
	}
	// Alias --echo sets -e.
	vec = buildRoute(t, "--echo", "graph")
	if i := vec.Index("-e.VAL"); vec[i].Num != 1 {
		t.Errorf("--echo not mapped to -e: %v", vec)
	}
}

func TestMultipleOperandsAggregate(t *testing.T) {
	vec := buildRoute(t, "graph", "graph2")
	checks := map[string]float64{
		"arg1$.N":      2,
		"arg1$.mNodes": 107,  // 100 + 7
		"arg1$.mEdges": 1009, // 1000 + 9
	}
	for name, v := range checks {
		if i := vec.Index(name); i < 0 || vec[i].Num != v {
			t.Errorf("%s wrong in %v (want %v)", name, vec, v)
		}
	}
}

func TestVectorShapeStable(t *testing.T) {
	a := buildRoute(t, "-n", "3", "graph")
	b := buildRoute(t, "--echo", "graph", "graph2")
	if len(a) != len(b) {
		t.Fatalf("shapes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Kind != b[i].Kind {
			t.Errorf("position %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestInlineOptionValue(t *testing.T) {
	vec := buildRoute(t, "-n=5", "graph")
	if i := vec.Index("-n.VAL"); vec[i].Num != 5 {
		t.Errorf("-n=5 gave %v", vec[i].Num)
	}
}

func TestDoubleDashEndsOptions(t *testing.T) {
	spec, _ := ParseSpec(`
option  {name=-x; type=bin; attr=VAL; default=0; has_arg=n}
operand {position=1; type=str; attr=VAL:LEN}
`)
	tr := NewTranslator(spec, nil, MapFS{})
	vec, err := tr.BuildFVector([]string{"--", "-x"})
	if err != nil {
		t.Fatal(err)
	}
	if i := vec.Index("-x.VAL"); vec[i].Num != 0 {
		t.Error("-x after -- treated as option")
	}
	if i := vec.Index("arg1.VAL"); vec[i].Cat != "-x" {
		t.Errorf("operand VAL = %v, want -x", vec[i])
	}
	if i := vec.Index("arg1.LEN"); vec[i].Num != 2 {
		t.Errorf("operand LEN = %v, want 2", vec[i])
	}
}

func TestPredefinedFileMethods(t *testing.T) {
	spec, err := ParseSpec(`operand {position=1; type=file; attr=SIZE:LINES:WORDS}`)
	if err != nil {
		t.Fatal(err)
	}
	fs := MapFS{"in.txt": []byte("hello world\nsecond line\n")}
	tr := NewTranslator(spec, nil, fs)
	vec, err := tr.BuildFVector([]string{"in.txt"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"arg1.SIZE": 24, "arg1.LINES": 2, "arg1.WORDS": 4}
	for name, v := range want {
		if i := vec.Index(name); i < 0 || vec[i].Num != v {
			t.Errorf("%s = %v, want %v", name, vec, v)
		}
	}
	if tr.Cost() <= 0 {
		t.Error("no extraction cost charged")
	}
}

func TestCategoricalEnumOption(t *testing.T) {
	spec, err := ParseSpec(`option {name=-f; type=enum; attr=VAL; default=text; has_arg=y}`)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTranslator(spec, nil, MapFS{})
	vec, err := tr.BuildFVector([]string{"-f", "xml"})
	if err != nil {
		t.Fatal(err)
	}
	if vec[0].Kind != Categorical || vec[0].Cat != "xml" {
		t.Errorf("enum VAL = %v, want categorical xml", vec[0])
	}
}

func TestRuntimeFeaturesAndDone(t *testing.T) {
	spec, err := ParseSpec(`
option  {name=-k; type=num; attr=VAL; default=2; has_arg=y}
runtime {name=mDims; count=2; default=-1}
`)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTranslator(spec, nil, MapFS{})
	var fired Vector
	tr.OnDone = func(v Vector) { fired = append(Vector(nil), v...) }

	vec, err := tr.BuildFVector(nil)
	if err != nil {
		t.Fatal(err)
	}
	if fired != nil {
		t.Fatal("OnDone fired before runtime features arrived")
	}
	if i := vec.Index("mDims.0"); i < 0 || vec[i].Num != -1 {
		t.Fatalf("runtime defaults missing: %v", vec)
	}
	if err := tr.UpdateV("mDims", 33, 44); err != nil {
		t.Fatal(err)
	}
	tr.Done()
	if fired == nil {
		t.Fatal("OnDone did not fire after Done")
	}
	if i := fired.Index("mDims.0"); fired[i].Num != 33 {
		t.Errorf("mDims.0 = %v, want 33", fired[i].Num)
	}
	if i := fired.Index("mDims.1"); fired[i].Num != 44 {
		t.Errorf("mDims.1 = %v, want 44", fired[i].Num)
	}
	// Done is idempotent.
	tr.Done()
	if !tr.DoneFired() {
		t.Error("DoneFired = false")
	}
}

func TestUpdateVUnknownName(t *testing.T) {
	spec, _ := ParseSpec(`runtime {name=mA}`)
	tr := NewTranslator(spec, nil, MapFS{})
	if _, err := tr.BuildFVector(nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.UpdateV("mB", 1); err == nil {
		t.Error("UpdateV with unknown name succeeded")
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"unknown construct", `widget {name=-x}`, "unknown construct"},
		{"missing brace", `option {name=-x; type=bin`, "missing '}'"},
		{"missing type", `option {name=-x; has_arg=n}`, "missing type"},
		{"bad type", `option {name=-x; type=zzz; has_arg=n}`, "unknown type"},
		{"no dash", `option {name=x; type=bin; has_arg=n}`, "must start with '-'"},
		{"nonbin noarg", `option {name=-x; type=num; has_arg=n}`, "must have type bin"},
		{"bad position", `operand {position=0; type=str}`, "bad position"},
		{"range from $", "operand {position=$:2; type=str}", "cannot start at $"},
		{"empty range", `operand {position=3:2; type=str}`, "empty position range"},
		{"runtime no m", `runtime {name=dims}`, "must start with 'm'"},
		{"dup field", `option {name=-x; name=-y; type=bin; has_arg=n}`, "duplicate field"},
		{"not kv", `option {name}`, "not key=value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.src)
			if err == nil {
				t.Fatalf("ParseSpec succeeded, want error with %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestTranslateErrors(t *testing.T) {
	spec, _ := ParseSpec(`
option  {name=-n; type=num; attr=VAL; default=1; has_arg=y}
operand {position=1; type=file; attr=SIZE}
`)
	tr := func() *Translator { return NewTranslator(spec, nil, MapFS{}) }

	if _, err := tr().BuildFVector([]string{"-z"}); err == nil ||
		!strings.Contains(err.Error(), "unknown option") {
		t.Errorf("unknown option not rejected: %v", err)
	}
	if _, err := tr().BuildFVector([]string{"-n"}); err == nil ||
		!strings.Contains(err.Error(), "requires an argument") {
		t.Errorf("missing argument not rejected: %v", err)
	}
	if _, err := tr().BuildFVector([]string{"-n", "abc"}); err == nil ||
		!strings.Contains(err.Error(), "not numeric") {
		t.Errorf("non-numeric VAL not rejected: %v", err)
	}
	if _, err := tr().BuildFVector([]string{"-n", "1", "nofile"}); err == nil ||
		!strings.Contains(err.Error(), "no such file") {
		t.Errorf("missing file not rejected: %v", err)
	}
	tt := tr()
	if _, err := tt.BuildFVector(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tt.BuildFVector(nil); err == nil {
		t.Error("second BuildFVector succeeded")
	}
}

func TestRegistryRules(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("notM", XFMethodFunc(xfLen)); err == nil {
		t.Error("Register without m prefix succeeded")
	}
	if err := reg.Register("mX", XFMethodFunc(xfLen)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("mX", XFMethodFunc(xfLen)); err == nil {
		t.Error("duplicate Register succeeded")
	}
	if _, ok := reg.Lookup("VAL"); !ok {
		t.Error("predefined VAL missing")
	}
}

func TestAbsentOperandKeepsShape(t *testing.T) {
	spec, _ := ParseSpec(`operand {position=2; type=str; attr=LEN}`)
	tr := NewTranslator(spec, nil, MapFS{})
	vec, err := tr.BuildFVector([]string{"only-one"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || vec[0].Num != 0 {
		t.Errorf("absent operand features = %v, want single zero", vec)
	}
}

func TestLastOperandDollar(t *testing.T) {
	spec, _ := ParseSpec(`operand {position=$; type=str; attr=LEN}`)
	tr := NewTranslator(spec, nil, MapFS{})
	vec, err := tr.BuildFVector([]string{"aa", "bbbb"})
	if err != nil {
		t.Fatal(err)
	}
	if vec[0].Num != 4 {
		t.Errorf("$ operand LEN = %v, want 4 (last operand)", vec[0].Num)
	}
}

func TestGenerateSpecFromPaperUsage(t *testing.T) {
	// The paper's Figure 2(a) usage text.
	usage := `
SYNOPSIS: route [options] FILE...
OPTIONS:
-n N: find N shortest paths. N is 1 by default.
-e, --echo: status message. Off by default.
`
	src, err := GenerateSpec(usage)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(src)
	if err != nil {
		t.Fatalf("generated spec does not parse: %v\n%s", err, src)
	}
	if len(spec.Options) != 2 {
		t.Fatalf("got %d options, want 2:\n%s", len(spec.Options), src)
	}
	n := spec.Options[0]
	if n.Primary() != "-n" || n.Type != TypeNum || !n.HasArg {
		t.Errorf("-n inferred wrong: %+v", n)
	}
	echo := spec.Options[1]
	if echo.Primary() != "-e" || echo.Type != TypeBin || echo.HasArg ||
		len(echo.Names) != 2 || echo.Names[1] != "--echo" {
		t.Errorf("-e/--echo inferred wrong: %+v", echo)
	}
	if len(spec.Operands) != 1 {
		t.Fatalf("got %d operands, want 1", len(spec.Operands))
	}
	op := spec.Operands[0]
	if op.Lo != 1 || op.Hi != PosEnd || op.Type != TypeFile {
		t.Errorf("FILE... operand inferred wrong: %+v", op)
	}

	// The draft is immediately usable by the translator.
	tr := NewTranslator(spec, nil, MapFS{"g1": []byte("x"), "g2": []byte("y")})
	vec, err := tr.BuildFVector([]string{"-n", "3", "--echo", "g1", "g2"})
	if err != nil {
		t.Fatal(err)
	}
	if i := vec.Index("-n.VAL"); i < 0 || vec[i].Num != 3 {
		t.Errorf("generated spec unusable: %v", vec)
	}
}

func TestGenerateSpecPlaceholderTypes(t *testing.T) {
	usage := `
SYNOPSIS: tool INPUTFILE
OPTIONS:
-o OUTFILE: write output here.
-d DEPTH: recursion depth.
-m MODE: operating mode.
-q: quiet.
`
	src, err := GenerateSpec(usage)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	types := map[string]ValueType{}
	for _, o := range spec.Options {
		types[o.Primary()] = o.Type
	}
	if types["-o"] != TypeFile || types["-d"] != TypeNum ||
		types["-m"] != TypeStr || types["-q"] != TypeBin {
		t.Errorf("placeholder types wrong: %v\n%s", types, src)
	}
	if len(spec.Operands) != 1 || spec.Operands[0].Type != TypeFile ||
		spec.Operands[0].Hi != 1 {
		t.Errorf("INPUTFILE operand wrong: %+v", spec.Operands)
	}
}

func TestGenerateSpecRejectsGarbage(t *testing.T) {
	if _, err := GenerateSpec("hello world"); err == nil {
		t.Error("garbage usage accepted")
	}
}
