// Package xicl implements the paper's Extensible Input Characterization
// Language: a mini-language in which a programmer describes the format and
// the potentially important features of a program's inputs, plus the
// translator that turns an arbitrary (legal) command line into a
// well-formed feature vector.
//
// A specification is a sequence of constructs:
//
//	option  {name=-n; type=num; attr=VAL; default=1; has_arg=y}
//	option  {name=-e:--echo; type=bin; attr=VAL; default=0; has_arg=n}
//	operand {position=1:$; type=file; attr=mNodes:mEdges}
//	runtime {name=mScene; count=2}
//
// option and operand are the paper's two primary constructs; runtime is
// the enriched-XICL extension for values the application passes to the
// translator while it initializes (XICLFeatureVector.updateV in the
// paper). Attr names starting with "m" are programmer-defined feature
// extractors resolved through a Registry; the rest are predefined (VAL,
// SIZE, LINES, WORDS, LEN).
package xicl

import (
	"fmt"
	"strconv"
	"strings"
)

// FeatureKind distinguishes quantitative from categorical features, a
// separation the paper calls out as important for behaviour modelling.
type FeatureKind uint8

const (
	// Numeric is a quantitative feature.
	Numeric FeatureKind = iota
	// Categorical is a nominal feature compared only by equality.
	Categorical
)

func (k FeatureKind) String() string {
	if k == Categorical {
		return "cat"
	}
	return "num"
}

// Feature is one element of a feature vector.
type Feature struct {
	Name string
	Kind FeatureKind
	Num  float64
	Cat  string
}

// NumFeature returns a quantitative feature.
func NumFeature(name string, v float64) Feature {
	return Feature{Name: name, Kind: Numeric, Num: v}
}

// CatFeature returns a categorical feature.
func CatFeature(name, v string) Feature {
	return Feature{Name: name, Kind: Categorical, Cat: v}
}

func (f Feature) String() string {
	if f.Kind == Categorical {
		return fmt.Sprintf("%s=%q", f.Name, f.Cat)
	}
	return fmt.Sprintf("%s=%s", f.Name, strconv.FormatFloat(f.Num, 'g', -1, 64))
}

// Equal reports whether two features have the same name, kind and value.
func (f Feature) Equal(g Feature) bool {
	if f.Name != g.Name || f.Kind != g.Kind {
		return false
	}
	if f.Kind == Categorical {
		return f.Cat == g.Cat
	}
	return f.Num == g.Num
}

// Vector is an ordered feature vector. The translator guarantees a stable
// shape for a given specification: the same positions carry the same
// feature names in every run.
type Vector []Feature

func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, f := range v {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Names returns the feature names in order.
func (v Vector) Names() []string {
	names := make([]string, len(v))
	for i, f := range v {
		names[i] = f.Name
	}
	return names
}

// Index returns the position of the named feature, or −1.
func (v Vector) Index(name string) int {
	for i, f := range v {
		if f.Name == name {
			return i
		}
	}
	return -1
}
