// Package gc defines the garbage-collection policies of the VM heap and
// their cost models — the substrate for the paper's §VI extension,
// input-specific selection of garbage collectors (Mao & Shen, VEE 2009).
//
// The execution engine (internal/interp) implements the mechanics: when
// an allocation would exceed the heap budget it marks live arrays from
// the roots (globals, locals, operand stack, array interiors) and then
// either sweeps dead slots in place (MarkSweep) or evacuates live arrays
// into a fresh heap (Copying). The two policies differ in where their
// costs land:
//
//   - MarkSweep pays per heap slot examined at every collection and a
//     small free-list charge per allocation, but never moves data;
//   - Copying pays per live cell evacuated and nothing for dead data,
//     with cheap bump-pointer allocation.
//
// High-garbage workloads therefore favour Copying; high-retention
// workloads favour MarkSweep — an input-dependent trade-off a learner
// can predict from input features.
package gc

import "fmt"

// Policy selects a collector.
type Policy uint8

const (
	// None disables collection: the heap only grows (the default, and
	// the behaviour of the VM for the paper's main experiments).
	None Policy = iota
	// MarkSweep frees dead arrays in place.
	MarkSweep
	// Copying evacuates live arrays to a fresh heap.
	Copying
)

func (p Policy) String() string {
	switch p {
	case None:
		return "none"
	case MarkSweep:
		return "marksweep"
	case Copying:
		return "copying"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Cost-model constants (virtual cycles).
const (
	// MarkCostPerCell is charged per live cell traced (both policies).
	MarkCostPerCell = 2
	// SweepCostPerCell is charged per heap cell (live or dead) swept
	// over by MarkSweep — the whole heap space is traversed.
	SweepCostPerCell = 1
	// CopyCostPerCell is charged per live cell evacuated by Copying.
	CopyCostPerCell = 4
	// CollectionFixedCost is the fixed charge of any collection.
	CollectionFixedCost = 400
	// AllocOverheadMarkSweep / AllocOverheadCopying are charged per
	// NEWARR on top of the instruction cost (free-list search vs bump).
	AllocOverheadMarkSweep = 3
	AllocOverheadCopying   = 1
)

// Config enables collection on an engine.
type Config struct {
	Policy Policy
	// BudgetCells triggers a collection when live+new cells would
	// exceed it. Zero means unlimited (no collection even for non-None
	// policies).
	BudgetCells int64
}

// Collection records one collection's observables — enough to estimate
// post-hoc what the other policy would have cost.
type Collection struct {
	LiveCells  int64 // cells reachable at collection time
	TotalCells int64 // cells in the heap when the collection started
	FreedCells int64
}

// Stats accumulates a run's collector behaviour.
type Stats struct {
	Policy      Policy
	Collections []Collection
	GCCycles    int64 // total cycles spent collecting
	AllocCycles int64 // total allocation overhead cycles
	Allocs      int64
	FreedCells  int64
}

// CollectionCost returns the cycle charge of one collection under a
// policy, given its observables.
func CollectionCost(p Policy, c Collection) int64 {
	switch p {
	case MarkSweep:
		return CollectionFixedCost + MarkCostPerCell*c.LiveCells + SweepCostPerCell*c.TotalCells
	case Copying:
		return CollectionFixedCost + (MarkCostPerCell+CopyCostPerCell)*c.LiveCells
	default:
		return 0
	}
}

// AllocOverhead returns the per-allocation charge of a policy.
func AllocOverhead(p Policy) int64 {
	switch p {
	case MarkSweep:
		return AllocOverheadMarkSweep
	case Copying:
		return AllocOverheadCopying
	default:
		return 0
	}
}

// EstimateCost predicts a policy's total GC cycles for a run whose
// collection observables and allocation count are known — the oracle the
// GC selector learns from. The observables transfer across policies
// because liveness at each collection point is a program property, not a
// collector property (collections trigger at the same allocation points
// under the same budget).
func EstimateCost(p Policy, collections []Collection, allocs int64) int64 {
	var total int64
	for _, c := range collections {
		total += CollectionCost(p, c)
	}
	return total + AllocOverhead(p)*allocs
}

// IdealPolicy returns the cheaper of MarkSweep and Copying for recorded
// behaviour.
func IdealPolicy(collections []Collection, allocs int64) Policy {
	ms := EstimateCost(MarkSweep, collections, allocs)
	cp := EstimateCost(Copying, collections, allocs)
	if ms <= cp {
		return MarkSweep
	}
	return Copying
}
