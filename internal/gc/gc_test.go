package gc

import "testing"

func TestPolicyString(t *testing.T) {
	cases := map[Policy]string{
		None:      "none",
		MarkSweep: "marksweep",
		Copying:   "copying",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy unprintable")
	}
}

func TestCollectionCost(t *testing.T) {
	c := Collection{LiveCells: 100, TotalCells: 1000, FreedCells: 900}
	ms := CollectionCost(MarkSweep, c)
	wantMS := int64(CollectionFixedCost + MarkCostPerCell*100 + SweepCostPerCell*1000)
	if ms != wantMS {
		t.Errorf("marksweep cost = %d, want %d", ms, wantMS)
	}
	cp := CollectionCost(Copying, c)
	wantCP := int64(CollectionFixedCost + (MarkCostPerCell+CopyCostPerCell)*100)
	if cp != wantCP {
		t.Errorf("copying cost = %d, want %d", cp, wantCP)
	}
	if CollectionCost(None, c) != 0 {
		t.Error("none policy has nonzero collection cost")
	}
}

func TestAllocOverhead(t *testing.T) {
	if AllocOverhead(MarkSweep) <= AllocOverhead(Copying) {
		t.Error("free-list allocation should cost more than bump allocation")
	}
	if AllocOverhead(None) != 0 {
		t.Error("no-GC allocation overhead nonzero")
	}
}

func TestEstimateCostSumsCollections(t *testing.T) {
	cols := []Collection{
		{LiveCells: 10, TotalCells: 100},
		{LiveCells: 20, TotalCells: 100},
	}
	got := EstimateCost(Copying, cols, 50)
	want := CollectionCost(Copying, cols[0]) + CollectionCost(Copying, cols[1]) +
		AllocOverhead(Copying)*50
	if got != want {
		t.Errorf("EstimateCost = %d, want %d", got, want)
	}
	if EstimateCost(MarkSweep, nil, 10) != AllocOverhead(MarkSweep)*10 {
		t.Error("collection-free estimate wrong")
	}
}

func TestIdealPolicyBoundaries(t *testing.T) {
	// Everything dies: copying pays almost nothing.
	garbage := []Collection{{LiveCells: 1, TotalCells: 10_000, FreedCells: 9_999}}
	if IdealPolicy(garbage, 100) != Copying {
		t.Error("all-garbage heap should favour copying")
	}
	// Everything lives: copying pays for all of it, sweeping is linear
	// in the same space but without the copy.
	retained := []Collection{{LiveCells: 10_000, TotalCells: 10_000, FreedCells: 0}}
	if IdealPolicy(retained, 100) != MarkSweep {
		t.Error("all-live heap should favour marksweep")
	}
	// No collections: decided by allocation overhead (marksweep's
	// free-list is pricier, but ties go to marksweep at zero allocs).
	if IdealPolicy(nil, 0) != MarkSweep {
		t.Error("tie should default to marksweep")
	}
	if IdealPolicy(nil, 100) != Copying {
		t.Error("alloc-heavy collection-free run should favour copying")
	}
}
