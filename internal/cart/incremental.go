package cart

import (
	"fmt"

	"evolvevm/internal/xicl"
)

// Incremental accumulates training examples across production runs and
// maintains a classification tree over them. The paper separates learning
// into online lightweight data collection (Add) and offline model
// construction (the rebuild), keeping runtime overhead negligible; the
// rebuild happens lazily, outside the program's measured execution.
type Incremental struct {
	params   Params
	examples []Example
	tree     *Tree
	stale    bool

	// RebuildEvery controls how many Adds may accumulate before Predict
	// rebuilds (1 = always fresh). Larger values trade model freshness
	// for rebuild time — the ablation in bench_test.go measures this.
	RebuildEvery int
	sinceRebuild int
}

// NewIncremental returns an empty incremental learner.
func NewIncremental(p Params) *Incremental {
	return &Incremental{params: p, RebuildEvery: 1}
}

// Add records one observation.
func (inc *Incremental) Add(ex Example) {
	inc.examples = append(inc.examples, ex)
	inc.sinceRebuild++
	if inc.sinceRebuild >= inc.RebuildEvery || inc.tree == nil {
		inc.stale = true
	}
}

// Len returns the number of stored examples.
func (inc *Incremental) Len() int { return len(inc.examples) }

// Examples returns the stored examples (shared slice; callers must not
// modify).
func (inc *Incremental) Examples() []Example { return inc.examples }

// Tree returns the current model, rebuilding if stale. Returns nil when
// no examples exist yet.
func (inc *Incremental) Tree() *Tree {
	if len(inc.examples) == 0 {
		return nil
	}
	if inc.stale || inc.tree == nil {
		t, err := Build(inc.examples, inc.params)
		if err != nil {
			// Only reachable with inconsistent shapes, which one
			// translator cannot produce; surface loudly in development.
			panic(fmt.Sprintf("cart: incremental rebuild: %v", err))
		}
		inc.tree = t
		inc.stale = false
		inc.sinceRebuild = 0
	}
	return inc.tree
}

// Predict classifies v with the current model; ok is false when the model
// is empty.
func (inc *Incremental) Predict(v xicl.Vector) (int, bool) {
	t := inc.Tree()
	if t == nil {
		return 0, false
	}
	return t.Predict(v), true
}
