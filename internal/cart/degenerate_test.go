package cart

import (
	"testing"

	"evolvevm/internal/xicl"
)

// TestSingleExample: one observation must build a pure leaf that predicts
// its own label for any query.
func TestSingleExample(t *testing.T) {
	names := []string{"n"}
	tree, err := Build([]Example{{Features: numVec(names, 9), Label: 3}}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d != 0 {
		t.Errorf("Depth = %d, want 0 (single leaf)", d)
	}
	for _, q := range []float64{-100, 9, 100} {
		if got := tree.Predict(numVec(names, q)); got != 3 {
			t.Errorf("Predict(%v) = %d, want 3", q, got)
		}
	}
}

// TestIdenticalFeatures: when every example carries the same feature
// vector no split can separate them; the tree must degrade to a majority
// leaf instead of looping or splitting vacuously.
func TestIdenticalFeatures(t *testing.T) {
	names := []string{"a", "b"}
	var ex []Example
	for i := 0; i < 9; i++ {
		label := 1
		if i < 3 {
			label = 0
		}
		ex = append(ex, Example{Features: numVec(names, 4, 4), Label: label})
	}
	tree, err := Build(ex, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d != 0 {
		t.Errorf("Depth = %d, want 0 (no informative split exists)", d)
	}
	if got := tree.Predict(numVec(names, 4, 4)); got != 1 {
		t.Errorf("Predict = %d, want majority label 1", got)
	}
}

// TestSingleCategoryCategorical: an all-categorical vector whose only
// feature takes one value everywhere is equally unsplittable.
func TestSingleCategoryCategorical(t *testing.T) {
	mk := func() xicl.Vector { return xicl.Vector{xicl.CatFeature("fmt", "png")} }
	ex := []Example{
		{Features: mk(), Label: 2},
		{Features: mk(), Label: 2},
		{Features: mk(), Label: 0},
	}
	tree, err := Build(ex, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d != 0 {
		t.Errorf("Depth = %d, want 0", d)
	}
	if got := tree.Predict(mk()); got != 2 {
		t.Errorf("Predict = %d, want majority 2", got)
	}
}

// TestAllCategoricalSplits: trees over purely categorical vectors must
// still learn a separable relation (no numeric thresholds available).
func TestAllCategoricalSplits(t *testing.T) {
	mk := func(fmtName, mode string) xicl.Vector {
		return xicl.Vector{xicl.CatFeature("fmt", fmtName), xicl.CatFeature("mode", mode)}
	}
	var ex []Example
	for i := 0; i < 6; i++ {
		ex = append(ex,
			Example{Features: mk("png", "fast"), Label: 0},
			Example{Features: mk("jpg", "fast"), Label: 1},
			Example{Features: mk("png", "slow"), Label: 0},
			Example{Features: mk("jpg", "slow"), Label: 1})
	}
	tree, err := Build(ex, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict(mk("png", "slow")); got != 0 {
		t.Errorf("Predict(png) = %d, want 0", got)
	}
	if got := tree.Predict(mk("jpg", "fast")); got != 1 {
		t.Errorf("Predict(jpg) = %d, want 1", got)
	}
	// "mode" never reduces impurity and must not appear in the tree.
	if d := tree.Depth(); d != 1 {
		t.Errorf("Depth = %d, want 1 (single categorical split)", d)
	}
}

// TestMinLeafForcesLeaf: a MinLeaf larger than any feasible partition
// collapses the tree to a majority leaf rather than producing undersized
// children.
func TestMinLeafForcesLeaf(t *testing.T) {
	names := []string{"x"}
	var ex []Example
	for i := 0; i < 6; i++ {
		label := 0
		if i >= 3 {
			label = 1
		}
		ex = append(ex, Example{Features: numVec(names, float64(i)), Label: label})
	}
	tree, err := Build(ex, Params{MinLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d != 0 {
		t.Errorf("Depth = %d, want 0 (MinLeaf 4 admits no split of 6)", d)
	}
}

// TestIncrementalDegenerate: the incremental learner fed a single example
// must predict it back, and Predict on an empty learner must decline.
func TestIncrementalDegenerate(t *testing.T) {
	names := []string{"n"}
	inc := NewIncremental(Params{})
	if _, ok := inc.Predict(numVec(names, 1)); ok {
		t.Fatal("empty incremental learner predicted")
	}
	inc.Add(Example{Features: numVec(names, 1), Label: 7})
	if got, ok := inc.Predict(numVec(names, 1)); !ok || got != 7 {
		t.Errorf("Predict after one Add = %d,%v, want 7,true", got, ok)
	}
}
