// Package cart implements the classification trees the evolvable VM
// learns input-behaviour models with (paper §IV-B): entropy-driven
// divide-and-conquer trees over mixed numeric/categorical feature vectors,
// with automatic feature selection (features that never reduce impurity
// never appear in a tree), an incremental learner that accumulates
// examples across production runs, and k-fold cross-validation.
package cart

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"evolvevm/internal/xicl"
)

// Example is one training observation: an input feature vector and the
// class observed for it (for the paper's use case, a method's ideal
// optimization level).
type Example struct {
	Features xicl.Vector
	Label    int
}

// Params controls tree induction.
type Params struct {
	// MaxDepth bounds the tree height (0 means DefaultMaxDepth).
	MaxDepth int
	// MinLeaf is the minimum number of examples in a leaf (0 means 1).
	MinLeaf int
	// MinGain is the smallest entropy reduction worth splitting on.
	MinGain float64
}

// DefaultMaxDepth bounds trees when Params.MaxDepth is zero.
const DefaultMaxDepth = 12

func (p Params) withDefaults() Params {
	if p.MaxDepth <= 0 {
		p.MaxDepth = DefaultMaxDepth
	}
	if p.MinLeaf <= 0 {
		p.MinLeaf = 1
	}
	if p.MinGain <= 0 {
		p.MinGain = 1e-9
	}
	return p
}

// Tree is a trained classification tree.
type Tree struct {
	root  *node
	names []string
}

type node struct {
	leaf  bool
	label int

	feat   int
	kind   xicl.FeatureKind
	thresh float64 // numeric: left if value < thresh
	catVal string  // categorical: left if value == catVal
	left   *node
	right  *node
}

// Build induces a tree from examples. All feature vectors must share one
// shape (same length, names, kinds), which the XICL translator guarantees
// per specification.
func Build(examples []Example, p Params) (*Tree, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("cart: no examples")
	}
	shape := examples[0].Features
	for i, ex := range examples {
		if len(ex.Features) != len(shape) {
			return nil, fmt.Errorf("cart: example %d has %d features, example 0 has %d",
				i, len(ex.Features), len(shape))
		}
		for j := range ex.Features {
			if ex.Features[j].Kind != shape[j].Kind {
				return nil, fmt.Errorf("cart: example %d feature %d kind mismatch", i, j)
			}
		}
	}
	p = p.withDefaults()
	t := &Tree{names: shape.Names()}
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	t.root = grow(examples, idx, p, 0)
	return t, nil
}

// grow recursively builds a subtree over examples[idx].
func grow(examples []Example, idx []int, p Params, depth int) *node {
	maj, pure := majority(examples, idx)
	if pure || depth >= p.MaxDepth || len(idx) < 2*p.MinLeaf {
		return &node{leaf: true, label: maj}
	}
	split, ok := bestSplit(examples, idx, p)
	if !ok {
		return &node{leaf: true, label: maj}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if split.goesLeft(examples[i].Features[split.feat]) {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) < p.MinLeaf || len(rightIdx) < p.MinLeaf {
		return &node{leaf: true, label: maj}
	}
	n := &node{
		feat:   split.feat,
		kind:   split.kind,
		thresh: split.thresh,
		catVal: split.catVal,
	}
	n.left = grow(examples, leftIdx, p, depth+1)
	n.right = grow(examples, rightIdx, p, depth+1)
	// Collapse pointless splits (both children same-label leaves).
	if n.left.leaf && n.right.leaf && n.left.label == n.right.label {
		return &node{leaf: true, label: n.left.label}
	}
	return n
}

type splitSpec struct {
	feat   int
	kind   xicl.FeatureKind
	thresh float64
	catVal string
}

func (s *splitSpec) goesLeft(f xicl.Feature) bool {
	if s.kind == xicl.Categorical {
		return f.Cat == s.catVal
	}
	return f.Num < s.thresh
}

// majority returns the most frequent label (smallest on ties) and whether
// the set is pure.
func majority(examples []Example, idx []int) (label int, pure bool) {
	counts := map[int]int{}
	for _, i := range idx {
		counts[examples[i].Label]++
	}
	best, bestN := 0, -1
	for l, n := range counts {
		if n > bestN || (n == bestN && l < best) {
			best, bestN = l, n
		}
	}
	return best, len(counts) == 1
}

// entropy of the label distribution over examples[idx].
func entropy(examples []Example, idx []int) float64 {
	counts := map[int]int{}
	for _, i := range idx {
		counts[examples[i].Label]++
	}
	h := 0.0
	n := float64(len(idx))
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// bestSplit finds the question with the largest information gain,
// breaking ties deterministically by (feature, threshold/category).
func bestSplit(examples []Example, idx []int, p Params) (splitSpec, bool) {
	baseH := entropy(examples, idx)
	n := float64(len(idx))
	var best splitSpec
	bestGain := p.MinGain

	consider := func(s splitSpec) {
		var li, ri []int
		for _, i := range idx {
			if s.goesLeft(examples[i].Features[s.feat]) {
				li = append(li, i)
			} else {
				ri = append(ri, i)
			}
		}
		if len(li) == 0 || len(ri) == 0 {
			return
		}
		gain := baseH - (float64(len(li))/n)*entropy(examples, li) -
			(float64(len(ri))/n)*entropy(examples, ri)
		if gain > bestGain+1e-12 {
			bestGain, best = gain, s
		}
	}

	nFeats := len(examples[idx[0]].Features)
	for f := 0; f < nFeats; f++ {
		kind := examples[idx[0]].Features[f].Kind
		if kind == xicl.Categorical {
			seen := map[string]bool{}
			var vals []string
			for _, i := range idx {
				v := examples[i].Features[f].Cat
				if !seen[v] {
					seen[v] = true
					vals = append(vals, v)
				}
			}
			if len(vals) < 2 {
				continue
			}
			sort.Strings(vals)
			for _, v := range vals {
				consider(splitSpec{feat: f, kind: kind, catVal: v})
			}
		} else {
			var vals []float64
			seen := map[float64]bool{}
			for _, i := range idx {
				v := examples[i].Features[f].Num
				if !seen[v] {
					seen[v] = true
					vals = append(vals, v)
				}
			}
			if len(vals) < 2 {
				continue
			}
			sort.Float64s(vals)
			for i := 0; i+1 < len(vals); i++ {
				consider(splitSpec{feat: f, kind: kind, thresh: (vals[i] + vals[i+1]) / 2})
			}
		}
	}
	return best, bestGain > p.MinGain
}

// Predict classifies a feature vector.
func (t *Tree) Predict(v xicl.Vector) int {
	n := t.root
	for !n.leaf {
		s := splitSpec{feat: n.feat, kind: n.kind, thresh: n.thresh, catVal: n.catVal}
		if n.feat >= len(v) {
			// Malformed query: fall to the right (the "else" branch).
			n = n.right
			continue
		}
		if s.goesLeft(v[n.feat]) {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// UsedFeatures returns the indices of features appearing in any split —
// the tree's automatic feature selection (paper §IV-B: features that never
// reduce impurity never appear).
func (t *Tree) UsedFeatures() []int {
	used := map[int]bool{}
	var walk func(*node)
	walk = func(n *node) {
		if n == nil || n.leaf {
			return
		}
		used[n.feat] = true
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	out := make([]int, 0, len(used))
	for f := range used {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// UsedFeatureNames resolves UsedFeatures against the training shape.
func (t *Tree) UsedFeatureNames() []string {
	var names []string
	for _, f := range t.UsedFeatures() {
		if f < len(t.names) {
			names = append(names, t.names[f])
		}
	}
	return names
}

// NodeCount returns the number of nodes in the tree.
func (t *Tree) NodeCount() int {
	var count func(*node) int
	count = func(n *node) int {
		if n == nil {
			return 0
		}
		if n.leaf {
			return 1
		}
		return 1 + count(n.left) + count(n.right)
	}
	return count(t.root)
}

// Depth returns the tree height (a lone leaf has depth 0).
func (t *Tree) Depth() int {
	var depth func(*node) int
	depth = func(n *node) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := depth(n.left), depth(n.right)
		if l > r {
			return 1 + l
		}
		return 1 + r
	}
	return depth(t.root)
}

// String renders the tree as indented text for diagnostics.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *node, indent string)
	walk = func(n *node, indent string) {
		if n.leaf {
			fmt.Fprintf(&b, "%s=> %d\n", indent, n.label)
			return
		}
		name := fmt.Sprintf("f%d", n.feat)
		if n.feat < len(t.names) {
			name = t.names[n.feat]
		}
		if n.kind == xicl.Categorical {
			fmt.Fprintf(&b, "%s%s == %q?\n", indent, name, n.catVal)
		} else {
			fmt.Fprintf(&b, "%s%s < %g?\n", indent, name, n.thresh)
		}
		walk(n.left, indent+"  y ")
		walk(n.right, indent+"  n ")
	}
	walk(t.root, "")
	return b.String()
}
