package cart

import (
	"math/rand"
	"testing"
	"testing/quick"

	"evolvevm/internal/xicl"
)

func numVec(names []string, vals ...float64) xicl.Vector {
	v := make(xicl.Vector, len(vals))
	for i := range vals {
		v[i] = xicl.NumFeature(names[i], vals[i])
	}
	return v
}

func TestLearnsNumericThreshold(t *testing.T) {
	names := []string{"size"}
	var ex []Example
	for i := 0; i < 40; i++ {
		label := 0
		if float64(i) >= 20 {
			label = 2
		}
		ex = append(ex, Example{Features: numVec(names, float64(i)), Label: label})
	}
	tree, err := Build(ex, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict(numVec(names, 3.7)); got != 0 {
		t.Errorf("Predict(3.7) = %d, want 0", got)
	}
	if got := tree.Predict(numVec(names, 119)); got != 2 {
		t.Errorf("Predict(119) = %d, want 2", got)
	}
	if d := tree.Depth(); d != 1 {
		t.Errorf("Depth = %d, want 1 (single threshold)", d)
	}
}

func TestLearnsCategoricalSplit(t *testing.T) {
	mk := func(fmtName string) xicl.Vector {
		return xicl.Vector{xicl.CatFeature("fmt", fmtName)}
	}
	var ex []Example
	for i := 0; i < 10; i++ {
		ex = append(ex,
			Example{Features: mk("xml"), Label: 2},
			Example{Features: mk("text"), Label: 0},
			Example{Features: mk("pdf"), Label: 1},
		)
	}
	tree, err := Build(ex, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		v    string
		want int
	}{{"xml", 2}, {"text", 0}, {"pdf", 1}} {
		if got := tree.Predict(mk(tc.v)); got != tc.want {
			t.Errorf("Predict(%s) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestAutomaticFeatureSelection(t *testing.T) {
	// Feature 0 decides the label; features 1 and 2 are constant (an
	// unused option at its default) and random noise with no signal.
	names := []string{"real", "constant", "noise"}
	rng := rand.New(rand.NewSource(7))
	var ex []Example
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 100
		label := 0
		if x > 50 {
			label = 1
		}
		ex = append(ex, Example{
			Features: numVec(names, x, 42, 0), // noise constant too... see below
			Label:    label,
		})
	}
	tree, err := Build(ex, Params{})
	if err != nil {
		t.Fatal(err)
	}
	used := tree.UsedFeatureNames()
	if len(used) != 1 || used[0] != "real" {
		t.Errorf("UsedFeatureNames = %v, want [real]", used)
	}
}

func TestMixedFeatures(t *testing.T) {
	// label = 2 when fmt==xml && n>=10, else 0.
	mk := func(format string, n float64) xicl.Vector {
		return xicl.Vector{
			xicl.CatFeature("fmt", format),
			xicl.NumFeature("n", n),
		}
	}
	var ex []Example
	for i := 0; i < 30; i++ {
		n := float64(i)
		for _, format := range []string{"xml", "txt"} {
			label := 0
			if format == "xml" && n >= 10 {
				label = 2
			}
			ex = append(ex, Example{Features: mk(format, n), Label: label})
		}
	}
	tree, err := Build(ex, Params{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		f    string
		n    float64
		want int
	}{
		{"xml", 25, 2}, {"xml", 3, 0}, {"txt", 25, 0}, {"txt", 3, 0},
	}
	for _, tc := range cases {
		if got := tree.Predict(mk(tc.f, tc.n)); got != tc.want {
			t.Errorf("Predict(%s,%v) = %d, want %d", tc.f, tc.n, got, tc.want)
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	names := []string{"a", "b"}
	rng := rand.New(rand.NewSource(3))
	var ex []Example
	for i := 0; i < 100; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		label := 0
		if a+b > 10 {
			label = 1
		}
		ex = append(ex, Example{Features: numVec(names, a, b), Label: label})
	}
	t1, err := Build(ex, Params{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Build(ex, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if t1.String() != t2.String() {
		t.Error("same data produced different trees")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Params{}); err == nil {
		t.Error("Build on empty set succeeded")
	}
	ex := []Example{
		{Features: numVec([]string{"a"}, 1), Label: 0},
		{Features: numVec([]string{"a", "b"}, 1, 2), Label: 1},
	}
	if _, err := Build(ex, Params{}); err == nil {
		t.Error("Build with mismatched shapes succeeded")
	}
}

func TestMaxDepthBounds(t *testing.T) {
	names := []string{"x"}
	var ex []Example
	for i := 0; i < 64; i++ {
		ex = append(ex, Example{Features: numVec(names, float64(i)), Label: i % 2})
	}
	tree, err := Build(ex, Params{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 3 {
		t.Errorf("Depth = %d, want <= 3", d)
	}
}

func TestCrossValidate(t *testing.T) {
	names := []string{"x"}
	var learnable, noise []Example
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		x := float64(i)
		label := 0
		if x >= 30 {
			label = 1
		}
		learnable = append(learnable, Example{Features: numVec(names, x), Label: label})
		noise = append(noise, Example{Features: numVec(names, rng.Float64()), Label: rng.Intn(2)})
	}
	if acc := CrossValidate(learnable, 5, Params{}); acc < 0.9 {
		t.Errorf("CV accuracy on learnable data = %v, want >= 0.9", acc)
	}
	if acc := CrossValidate(noise, 5, Params{}); acc > 0.75 {
		t.Errorf("CV accuracy on noise = %v, want < 0.75", acc)
	}
	if acc := CrossValidate(nil, 5, Params{}); acc != 0 {
		t.Errorf("CV on empty = %v, want 0", acc)
	}
	if acc := CrossValidate(learnable[:1], 5, Params{}); acc != 0 {
		t.Errorf("CV on singleton = %v, want 0", acc)
	}
}

func TestIncrementalImproves(t *testing.T) {
	names := []string{"x"}
	inc := NewIncremental(Params{})
	if _, ok := inc.Predict(numVec(names, 1)); ok {
		t.Fatal("empty model predicted")
	}
	for i := 0; i < 50; i++ {
		x := float64(i % 25)
		label := 0
		if x >= 12 {
			label = 2
		}
		inc.Add(Example{Features: numVec(names, x), Label: label})
	}
	if inc.Len() != 50 {
		t.Errorf("Len = %d, want 50", inc.Len())
	}
	if got, ok := inc.Predict(numVec(names, 20)); !ok || got != 2 {
		t.Errorf("Predict(20) = %d,%v want 2,true", got, ok)
	}
	if got, ok := inc.Predict(numVec(names, 2)); !ok || got != 0 {
		t.Errorf("Predict(2) = %d,%v want 0,true", got, ok)
	}
}

func TestIncrementalRebuildEvery(t *testing.T) {
	names := []string{"x"}
	inc := NewIncremental(Params{})
	inc.RebuildEvery = 10
	for i := 0; i < 5; i++ {
		inc.Add(Example{Features: numVec(names, float64(i)), Label: 0})
	}
	t1 := inc.Tree()
	// Adds below the rebuild threshold must not invalidate the tree.
	for i := 0; i < 5; i++ {
		inc.Add(Example{Features: numVec(names, 100+float64(i)), Label: 1})
	}
	if t2 := inc.Tree(); t1 != t2 {
		t.Error("tree rebuilt before RebuildEvery adds accumulated")
	}
	// Reaching RebuildEvery adds since the last rebuild triggers one.
	for i := 0; i < 5; i++ {
		inc.Add(Example{Features: numVec(names, 200+float64(i)), Label: 1})
	}
	if t3 := inc.Tree(); t1 == t3 {
		t.Error("tree not rebuilt after RebuildEvery adds")
	}
}

// Property: a tree fits its own training data perfectly whenever the
// labels are a deterministic function of the features (no conflicting
// duplicates) and depth is unbounded enough.
func TestQuickTrainingFit(t *testing.T) {
	names := []string{"a", "b"}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%40) + 5
		var ex []Example
		for i := 0; i < count; i++ {
			a := float64(rng.Intn(20))
			b := float64(rng.Intn(20))
			// Hidden deterministic rule.
			label := 0
			switch {
			case a > 12 && b < 5:
				label = 2
			case a+b > 22:
				label = 1
			}
			ex = append(ex, Example{Features: numVec(names, a, b), Label: label})
		}
		tree, err := Build(ex, Params{MaxDepth: 32})
		if err != nil {
			return false
		}
		for _, e := range ex {
			if tree.Predict(e.Features) != e.Label {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Predict is total — it returns some label seen in training for
// arbitrary query vectors, without panicking.
func TestQuickPredictTotal(t *testing.T) {
	names := []string{"a", "b", "c"}
	f := func(seed int64, qa, qb, qc float64) bool {
		rng := rand.New(rand.NewSource(seed))
		labels := map[int]bool{}
		var ex []Example
		for i := 0; i < 30; i++ {
			l := rng.Intn(4)
			labels[l] = true
			ex = append(ex, Example{
				Features: numVec(names, rng.Float64()*5, rng.Float64()*5, rng.Float64()*5),
				Label:    l,
			})
		}
		tree, err := Build(ex, Params{})
		if err != nil {
			return false
		}
		got := tree.Predict(numVec(names, qa, qb, qc))
		return labels[got]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	names := []string{"size"}
	ex := []Example{
		{Features: numVec(names, 1), Label: 0},
		{Features: numVec(names, 9), Label: 1},
	}
	tree, err := Build(ex, Params{})
	if err != nil {
		t.Fatal(err)
	}
	s := tree.String()
	if s == "" || tree.NodeCount() != 3 {
		t.Errorf("String/NodeCount wrong: %q nodes=%d", s, tree.NodeCount())
	}
}
