package cart

// CrossValidate estimates model quality by k-fold cross-validation and
// returns the mean held-out accuracy — the confidence computation the
// paper pairs with decayed self-evaluation. Folds are assigned round
// robin, which is deterministic and label-interleaving for run-ordered
// example streams. k is clamped to [2, len(examples)]; with fewer than
// two examples the estimate is 0 (no evidence).
func CrossValidate(examples []Example, k int, p Params) float64 {
	n := len(examples)
	if n < 2 {
		return 0
	}
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	correct, total := 0, 0
	for fold := 0; fold < k; fold++ {
		var train, test []Example
		for i, ex := range examples {
			if i%k == fold {
				test = append(test, ex)
			} else {
				train = append(train, ex)
			}
		}
		if len(train) == 0 || len(test) == 0 {
			continue
		}
		tree, err := Build(train, p)
		if err != nil {
			continue
		}
		for _, ex := range test {
			total++
			if tree.Predict(ex.Features) == ex.Label {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
