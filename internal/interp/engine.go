package interp

import (
	"fmt"
	"math"
	"sync"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/gc"
)

// RuntimeError describes a dynamic failure (division by zero, bad array
// access, resource exhaustion) with its program location.
type RuntimeError struct {
	Prog string
	Fn   string
	PC   int
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime: %s.%s+%d: %s", e.Prog, e.Fn, e.PC, e.Msg)
}

// CanceledError reports a run aborted by its interrupt hook (context
// cancellation or deadline). The abort happens at a sample boundary, after
// the crossing instruction's cycles were charged, so the engine's cycle
// ledger remains fully attributed: every cycle on the clock is accounted
// to executed code, compilation, overhead, or the collector.
type CanceledError struct {
	Prog string
	// Fn and PC locate the executing function when the abort fired. Fn is
	// empty when the run was canceled before its first instruction.
	Fn     string
	PC     int
	Cycles int64 // virtual cycles charged before the abort
	Cause  error // the interrupt hook's error (e.g. context.Canceled)
}

func (e *CanceledError) Error() string {
	if e.Fn == "" {
		return fmt.Sprintf("canceled: %s before execution: %v", e.Prog, e.Cause)
	}
	return fmt.Sprintf("canceled: %s.%s+%d after %d cycles: %v", e.Prog, e.Fn, e.PC, e.Cycles, e.Cause)
}

// Unwrap exposes the cancellation cause so errors.Is(err,
// context.Canceled) and errors.Is(err, context.DeadlineExceeded) work.
func (e *CanceledError) Unwrap() error { return e.Cause }

// Defaults for engine limits.
const (
	DefaultSampleStride = 20_000         // cycles between method samples
	DefaultMaxCycles    = 50_000_000_000 // runaway-loop fuse
	DefaultMaxHeapCells = 64 << 20       // max live array cells
	maxCallDepth        = 4096
)

// Engine executes a program under a virtual-cycle clock.
//
// The executable form of each function is obtained through Provider at
// every call, so a controller may swap in recompiled code between
// invocations (the activation that is already running keeps its old code,
// as in a JIT without on-stack replacement).
//
// OnInvoke fires after the code for a new activation has been fetched,
// with the function's cumulative invocation count (1 on first call).
// OnSample fires once per SampleStride cycles of executed code, attributed
// to the function executing when the stride boundary is crossed — the
// deterministic analogue of Jikes RVM's timer-based sampler.
type Engine struct {
	Prog     *bytecode.Program
	Provider func(fnIdx int) *Code
	OnInvoke func(fnIdx int, count int64)
	OnSample func(fnIdx int)

	SampleStride int64
	MaxCycles    int64
	MaxHeapCells int64

	// Interrupt, when set, is polled once before the first instruction and
	// then at every sample boundary (every SampleStride cycles of executed
	// code). A non-nil return aborts the run with a *CanceledError wrapping
	// it. The poll sits off the batched fast path — segments never cross a
	// sample boundary — so an idle hook costs nothing per instruction.
	// Typically wired to a context.Context's Err method (vm.Machine.SetContext).
	Interrupt func() error

	// DisableBatching turns off the host-performance fast path entirely:
	// every instruction is dispatched and charged individually, as in the
	// pre-substrate engine. DisableFusion keeps block-batched accounting
	// but runs segments op by op without superinstructions. Both exist
	// for the fused-vs-unfused determinism suite; virtual results are
	// bit-identical in every combination (see fuse.go).
	DisableBatching bool
	DisableFusion   bool

	// DisableClosures turns off the closure-threaded tier (closure.go):
	// hot segments keep running through the fused switch. EagerClosures
	// closure-threads every executed Code immediately, regardless of
	// level or hotness — the equivalence suites use it to hold the
	// closure tier to bit identity at every tier from the first
	// instruction. Both host-side only; virtual results are identical in
	// every combination.
	DisableClosures bool
	EagerClosures   bool

	// DisableRegTier turns off the register-converted trace tier
	// (trace.go, regir.go): hot loops keep running through closures or
	// the fused switch. EagerRegTier builds and activates traces for
	// every executed Code immediately, regardless of level or hotness —
	// the equivalence suites use it to hold the register tier to bit
	// identity at every tier from the first instruction. Both host-side
	// only; virtual results are identical in every combination.
	DisableRegTier bool
	EagerRegTier   bool

	// DisableOSR turns off mid-iteration (on-stack replacement) entries
	// into the register tier: traces activate at loop heads only.
	// EagerOSR activates OSR entry points without waiting for the parent
	// trace's back-edge hotness gate. StressDeopt forces every trace run
	// to hand back to the accounted loop after a single iteration,
	// hammering the exit/re-entry state mapping. DisableCallInline
	// refuses CALL during trace building, restoring the pre-inlining
	// per-loop degradation. All four are host-side only; virtual results
	// are identical in every combination.
	DisableOSR        bool
	EagerOSR          bool
	StressDeopt       bool
	DisableCallInline bool

	// PeekCode reports the code the engine's current Provider would
	// return for fnIdx WITHOUT side effects — nil when the function has
	// no current code form yet (never invoked). The trace tier uses it to
	// guard inlined call sites; the contract is that whenever PeekCode
	// returns non-nil, a Provider call for the same function is pure and
	// returns an equivalent code. NewEngine wires it to the default
	// Provider's table; anyone replacing Provider (vm.Machine, the
	// difftest harnesses) replaces PeekCode alongside it.
	PeekCode func(fnIdx int) *Code

	Globals     []bytecode.Value
	Output      []bytecode.Value
	Cycles      int64
	Invocations []int64
	// Work[fn] accumulates tier-independent baseline cost of the
	// instructions fn executed; FnCycles[fn] accumulates the actual
	// (tier-scaled) cycles charged to fn.
	Work     []int64
	FnCycles []int64

	// GC enables heap collection (zero value: the heap only grows).
	// GCStats records the collector's behaviour for the run.
	GC      gc.Config
	GCStats gc.Stats

	heap      [][]bytecode.Value
	heapCells int64
	freeSlots []int64

	// Root sets published for the collector. During Run these alias the
	// evaluator's live locals arena and operand stack; they are synced
	// at every allocation site (the only place a collection can start).
	rootLocals []bytecode.Value
	rootStack  []bytecode.Value

	nextSample int64
	halted     bool
}

// NewEngine returns an engine for prog with default limits and a baseline
// Provider that interprets every function at level −1. Callers typically
// replace Provider with a tier-aware one.
func NewEngine(prog *bytecode.Program) *Engine {
	e := &Engine{
		Prog:         prog,
		SampleStride: DefaultSampleStride,
		MaxCycles:    DefaultMaxCycles,
		MaxHeapCells: DefaultMaxHeapCells,
		Globals:      make([]bytecode.Value, len(prog.Globals)),
		Invocations:  make([]int64, len(prog.Funcs)),
		Work:         make([]int64, len(prog.Funcs)),
		FnCycles:     make([]int64, len(prog.Funcs)),
	}
	// The default provider base-compiles lazily: engines are created per
	// run by the thousands during experiments, and most replace Provider
	// (or never touch most functions) before the eager forms would pay
	// off. NewCode is pure, so laziness is unobservable.
	baseline := make([]*Code, len(prog.Funcs))
	e.Provider = func(fnIdx int) *Code {
		c := baseline[fnIdx]
		if c == nil {
			c = NewCode(fnIdx, prog.Funcs[fnIdx], -1, BaselineScalePct)
			baseline[fnIdx] = c
		}
		return c
	}
	e.PeekCode = func(fnIdx int) *Code { return baseline[fnIdx] }
	return e
}

// SetGlobal stores v in the named global slot.
func (e *Engine) SetGlobal(name string, v bytecode.Value) error {
	idx, ok := e.Prog.GlobalIndex(name)
	if !ok {
		return fmt.Errorf("interp: no global %q in %s", name, e.Prog.Name)
	}
	e.Globals[idx] = v
	return nil
}

// Global reads the named global slot.
func (e *Engine) Global(name string) (bytecode.Value, error) {
	idx, ok := e.Prog.GlobalIndex(name)
	if !ok {
		return bytecode.Value{}, fmt.Errorf("interp: no global %q in %s", name, e.Prog.Name)
	}
	return e.Globals[idx], nil
}

// NewArray allocates a heap array of n cells and returns its reference
// value, collecting garbage first when a GC policy is enabled and the
// heap budget would be exceeded. Exposed so harnesses can pass array
// inputs to programs.
func (e *Engine) NewArray(n int64) (bytecode.Value, error) {
	if n < 0 {
		return bytecode.Value{}, fmt.Errorf("interp: negative array length %d", n)
	}
	collecting := e.GC.Policy != gc.None && e.GC.BudgetCells > 0
	if collecting && e.heapCells+n > e.GC.BudgetCells {
		e.Collect()
		if e.heapCells+n > e.GC.BudgetCells {
			return bytecode.Value{}, fmt.Errorf(
				"interp: out of memory: %d live + %d requested cells exceed budget %d",
				e.heapCells, n, e.GC.BudgetCells)
		}
	}
	if e.heapCells+n > e.MaxHeapCells {
		return bytecode.Value{}, fmt.Errorf("interp: heap limit exceeded (%d cells)", e.MaxHeapCells)
	}
	if collecting {
		e.GCStats.Allocs++
		overhead := gc.AllocOverhead(e.GC.Policy)
		e.GCStats.AllocCycles += overhead
		e.Cycles += overhead
	}
	e.heapCells += n
	// MarkSweep reuses freed slots; Copying and None bump-append.
	if e.GC.Policy == gc.MarkSweep && len(e.freeSlots) > 0 {
		slot := e.freeSlots[len(e.freeSlots)-1]
		e.freeSlots = e.freeSlots[:len(e.freeSlots)-1]
		e.heap[slot] = make([]bytecode.Value, n)
		return bytecode.Arr(slot), nil
	}
	e.heap = append(e.heap, make([]bytecode.Value, n))
	return bytecode.Arr(int64(len(e.heap) - 1)), nil
}

// Array returns the backing slice of an array reference.
func (e *Engine) Array(v bytecode.Value) ([]bytecode.Value, error) {
	if v.Kind != bytecode.KArr || v.I < 0 || v.I >= int64(len(e.heap)) || e.heap[v.I] == nil {
		return nil, fmt.Errorf("interp: %s is not a live array reference", v)
	}
	return e.heap[v.I], nil
}

// LiveCells returns the number of live heap cells.
func (e *Engine) LiveCells() int64 { return e.heapCells }

// Collect runs one garbage collection under the configured policy,
// charging its cost to the clock. Reachability roots are the globals,
// the published locals arena and operand stack, and array interiors.
func (e *Engine) Collect() {
	if e.GC.Policy == gc.None {
		return
	}
	e.GCStats.Policy = e.GC.Policy
	mark := make([]bool, len(e.heap))
	var liveCells int64
	var work []int64
	visit := func(v bytecode.Value) {
		if v.Kind == bytecode.KArr && v.I >= 0 && v.I < int64(len(e.heap)) && !mark[v.I] {
			mark[v.I] = true
			work = append(work, v.I)
		}
	}
	for _, v := range e.Globals {
		visit(v)
	}
	for _, v := range e.rootLocals {
		visit(v)
	}
	for _, v := range e.rootStack {
		visit(v)
	}
	for len(work) > 0 {
		idx := work[len(work)-1]
		work = work[:len(work)-1]
		arr := e.heap[idx]
		liveCells += int64(len(arr))
		for _, v := range arr {
			visit(v)
		}
	}

	rec := gc.Collection{
		LiveCells:  liveCells,
		TotalCells: e.heapCells,
		FreedCells: e.heapCells - liveCells,
	}

	switch e.GC.Policy {
	case gc.MarkSweep:
		for i, arr := range e.heap {
			if arr != nil && !mark[i] {
				e.heap[i] = nil
				e.freeSlots = append(e.freeSlots, int64(i))
			}
		}
	case gc.Copying:
		newHeap := make([][]bytecode.Value, 0, len(e.heap))
		remap := make([]int64, len(e.heap))
		for i := range remap {
			remap[i] = -1
		}
		for i, arr := range e.heap {
			if arr != nil && mark[i] {
				remap[i] = int64(len(newHeap))
				newHeap = append(newHeap, arr)
			}
		}
		fix := func(vals []bytecode.Value) {
			for i, v := range vals {
				if v.Kind == bytecode.KArr && v.I >= 0 && v.I < int64(len(remap)) && remap[v.I] >= 0 {
					vals[i].I = remap[v.I]
				}
			}
		}
		fix(e.Globals)
		fix(e.rootLocals)
		fix(e.rootStack)
		for _, arr := range newHeap {
			fix(arr)
		}
		e.heap = newHeap
		e.freeSlots = nil
	}
	e.heapCells = liveCells

	cost := gc.CollectionCost(e.GC.Policy, rec)
	e.GCStats.GCCycles += cost
	e.GCStats.FreedCells += rec.FreedCells
	e.GCStats.Collections = append(e.GCStats.Collections, rec)
	e.AddCycles(cost)
}

// AddCycles charges n cycles of non-executing work (e.g. compilation) to
// the clock. Stride boundaries crossed this way produce no samples,
// mirroring Jikes RVM, where the sampler observes only application code.
// Compilation charges reach hundreds of strides, so the boundary skip is
// closed-form rather than a loop (this sits on the hot compile-charge
// path of every recompilation).
func (e *Engine) AddCycles(n int64) {
	e.Cycles += n
	if e.nextSample <= e.Cycles {
		e.nextSample += ((e.Cycles-e.nextSample)/e.SampleStride + 1) * e.SampleStride
	}
}

type frame struct {
	code       *Code
	pc         int
	localsBase int
	spBase     int
}

// runScratch is the pooled per-run working memory of the evaluator: the
// locals arena, operand stack, frame stack, the closure-tier threading
// state, and the trace-tier register file. Engines are created (or reset)
// per run by the thousands during experiments; recycling the arenas makes
// the steady state allocation-free. Values carry no pointers, so retaining
// their backing arrays in the pool pins nothing.
type runScratch struct {
	locals []bytecode.Value
	stack  []bytecode.Value
	frames []frame
	st     cstate
	regs   []bytecode.Value

	// Trace-tier side channels (trace.go): curCodes holds the guarded
	// current callee code per inlined call site of the running trace;
	// deopt carries a callee-frame materialization request out of
	// runTrace; trapFn re-attributes a trace trap to an inlined callee
	// (-1: none).
	curCodes []*Code
	deopt    deoptState
	trapFn   int32
}

var scratchPool = sync.Pool{
	New: func() any {
		return &runScratch{
			locals: make([]bytecode.Value, 0, 256),
			stack:  make([]bytecode.Value, 0, 256),
			frames: make([]frame, 0, 32),
		}
	},
}

// Reset returns the engine to its post-NewEngine state for a fresh run of
// the same program, keeping the Provider (and any baseline-code cache
// behind it) and the allocated ledger slices. Pooled vm.Machines use this
// to make repeated runs allocation-free; everything a run can observe —
// globals, output, clocks, ledgers, heap, GC state, limits, hooks, and
// substrate toggles — is restored to defaults.
func (e *Engine) Reset() {
	e.OnInvoke = nil
	e.OnSample = nil
	e.SampleStride = DefaultSampleStride
	e.MaxCycles = DefaultMaxCycles
	e.MaxHeapCells = DefaultMaxHeapCells
	e.Interrupt = nil
	e.DisableBatching = false
	e.DisableFusion = false
	e.DisableClosures = false
	e.EagerClosures = false
	e.DisableRegTier = false
	e.EagerRegTier = false
	e.DisableOSR = false
	e.EagerOSR = false
	e.StressDeopt = false
	e.DisableCallInline = false
	clear(e.Globals)
	e.Output = e.Output[:0]
	e.Cycles = 0
	clear(e.Invocations)
	clear(e.Work)
	clear(e.FnCycles)
	e.GC = gc.Config{}
	e.GCStats = gc.Stats{}
	for i := range e.heap {
		e.heap[i] = nil
	}
	e.heap = e.heap[:0]
	e.heapCells = 0
	e.freeSlots = e.freeSlots[:0]
	e.rootLocals, e.rootStack = nil, nil
	e.nextSample = 0
	e.halted = false
}

// Run executes the program's entry function to completion and returns its
// result value.
func (e *Engine) Run() (bytecode.Value, error) {
	e.nextSample = e.Cycles + e.SampleStride
	e.halted = false
	if e.Interrupt != nil {
		if cause := e.Interrupt(); cause != nil {
			return bytecode.Value{}, &CanceledError{Prog: e.Prog.Name, Cycles: e.Cycles, Cause: cause}
		}
	}

	sc := scratchPool.Get().(*runScratch)
	locals := sc.locals[:0]
	stack := sc.stack[:0]
	frames := sc.frames[:0]
	st := &sc.st
	st.e = e
	sc.deopt = deoptState{}
	sc.trapFn = -1
	e.rootLocals, e.rootStack = nil, nil
	defer func() {
		// Hand the (possibly grown) arenas back. The frame stack and the
		// trace side channels hold *Code pointers; clear them so the pool
		// pins no compiled code, and unpublish the GC roots so the engine
		// no longer aliases pooled memory.
		sc.locals, sc.stack = locals[:0], stack[:0]
		sc.frames = frames[:cap(frames)]
		clear(sc.frames)
		sc.frames = sc.frames[:0]
		sc.st = cstate{}
		sc.curCodes = sc.curCodes[:cap(sc.curCodes)]
		clear(sc.curCodes)
		sc.curCodes = sc.curCodes[:0]
		sc.deopt = deoptState{}
		e.rootLocals, e.rootStack = nil, nil
		scratchPool.Put(sc)
	}()

	push := func(fnIdx int) error {
		if len(frames) >= maxCallDepth {
			return &RuntimeError{Prog: e.Prog.Name, Fn: e.Prog.Funcs[fnIdx].Name,
				Msg: fmt.Sprintf("call depth exceeds %d", maxCallDepth)}
		}
		code := e.Provider(fnIdx)
		frames = append(frames, frame{
			code:       code,
			localsBase: len(locals),
			spBase:     len(stack),
		})
		for i := 0; i < code.NLocals; i++ {
			locals = append(locals, bytecode.Value{})
		}
		e.Invocations[fnIdx]++
		if e.OnInvoke != nil {
			e.OnInvoke(fnIdx, e.Invocations[fnIdx])
		}
		return nil
	}

	if err := push(e.Prog.Entry); err != nil {
		return bytecode.Value{}, err
	}
	// Entry takes no arguments by Verify.

	var result bytecode.Value
	for len(frames) > 0 {
		fr := &frames[len(frames)-1]
		code := fr.code
		lb := fr.localsBase
		workP := &e.Work[code.FnIdx]
		cycP := &e.FnCycles[code.FnIdx]
		var pl *plan
		var cp *closPlan
		var tp *tracePlan
		if !e.DisableBatching {
			if !e.DisableRegTier {
				tp = code.traceFor(e.EagerRegTier, !e.DisableCallInline, e.PeekCode)
			}
			if !e.DisableClosures {
				cp = code.closureFor(!e.DisableFusion, e.EagerClosures)
			}
			if cp == nil {
				pl = code.planFor(!e.DisableFusion)
			}
		}
		rerr := func(format string, args ...interface{}) error {
			return &RuntimeError{Prog: e.Prog.Name, Fn: code.Name, PC: fr.pc,
				Msg: fmt.Sprintf(format, args...)}
		}

	body:
		for {
			pc := fr.pc
			if pc < 0 || pc >= len(code.Instrs) {
				return result, rerr("pc out of range")
			}

			// Fastest path: the register-converted trace tier. A hot loop
			// head whose whole next iteration fits the sample window runs
			// as a register program — locals live in a register file, the
			// operand stack is untouched, and one batched debit covers the
			// iteration. Mid-iteration pcs with an OSR entry point enter
			// the same way and run the iteration's remainder (on-stack
			// replacement; any interpreter stack values stay untouched
			// beneath the trace, which is entry-stack-neutral by
			// construction). Side exits and traps roll back the unexecuted
			// suffix and land on exactly the accounted loop's state; exits
			// inside an inlined callee materialize a real callee frame.
			if tp != nil {
				run := (*trace)(nil)
				if tr := tp.tr[pc]; tr != nil {
					if e.Cycles+tr.cost < e.nextSample &&
						(e.EagerRegTier || tr.entries.Add(1) >= traceHotEntries) {
						run = tr
					}
				} else if !e.DisableOSR {
					if os := tp.osr[pc]; os != nil && e.Cycles+os.cost < e.nextSample &&
						(e.EagerOSR || e.EagerRegTier || os.parent.entries.Load() >= traceHotEntries) {
						run = os
					}
				}
				if run != nil {
					var npc int
					var tpc int32
					var msg string
					stack, npc, tpc, msg = e.runTrace(run, sc, len(frames), locals, lb, stack, workP, cycP)
					if msg != "" {
						if fn := sc.trapFn; fn >= 0 {
							sc.trapFn = -1
							return result, &RuntimeError{Prog: e.Prog.Name,
								Fn: e.Prog.Funcs[fn].Name, PC: int(tpc), Msg: msg}
						}
						fr.pc = int(tpc)
						return result, rerr("%s", msg)
					}
					if sc.deopt.active {
						// Materialize the inlined callee as a real frame:
						// locals from its pinned register block (entry
						// deopt zero-fills past the arguments), operand
						// stack rematerialized above its frame base. The
						// caller resumes after the CALL when the callee
						// returns. fr dangles once frames grows — set its
						// resume pc first.
						d := sc.deopt
						sc.deopt = deoptState{}
						fr.pc = npc
						nf := frame{code: d.code, pc: int(d.pc), localsBase: len(locals)}
						if d.entry {
							locals = append(locals, sc.regs[d.lbase:d.lbase+d.nargs]...)
							for i := d.nargs; i < d.nloc; i++ {
								locals = append(locals, bytecode.Value{})
							}
						} else {
							locals = append(locals, sc.regs[d.lbase:d.lbase+d.nloc]...)
						}
						nf.spBase = len(stack)
						for _, p := range d.cpush {
							stack = rpushVal(stack, d.tr, sc.regs, p)
						}
						frames = append(frames, nf)
						break body // switch to the reconstructed callee frame
					}
					fr.pc = npc
					continue
				}
			}

			// Next: the closure-threaded tier. Same segment
			// geometry and batched charge as the fused plan below — the
			// closure program is compiled from it fop for fop — but each
			// micro-op is a pre-bound closure, so there is no operand
			// decoding and no dispatch switch. A trapping closure deposits
			// the identical suffix-charge rollback in st.
			if cp != nil {
				if s := cp.seg[pc]; s != nil && e.Cycles+s.cost < e.nextSample {
					e.Cycles += s.cost
					*workP += s.base
					*cycP += s.cost
					st.locals, st.lb = locals, lb
					npc := int(s.end)
					sp := stack
					for _, fn := range s.fns {
						var r int
						if sp, r = fn(st, sp); r != closFall {
							if r == closTrap {
								stack = sp
								e.Cycles -= int64(st.rem)
								*workP -= int64(st.remBase)
								*cycP -= int64(st.rem)
								fr.pc = int(st.tpc)
								return result, rerr("%s", st.msg)
							}
							npc = r // branches only terminate segments
						}
					}
					stack = sp
					fr.pc = npc
					continue
				}
			}

			// Fast path: a batchable straight-line segment starts here and
			// charging it whole cannot reach the next sample boundary, so
			// no sampler tick, cycle-fuse check, trap, or call can occur
			// inside it. Charge once, then run the pre-decoded
			// micro-program without per-instruction accounting. Every
			// other case takes the original per-instruction loop below.
			if pl != nil {
				if s := pl.seg[pc]; s != nil && e.Cycles+s.cost < e.nextSample {
					e.Cycles += s.cost
					*workP += s.base
					*cycP += s.cost
					fr.pc = int(s.end) // branches below overwrite this
					for i := range s.ops {
						f := &s.ops[i]
						switch f.op {
						case bytecode.NOP:
						case bytecode.IPUSH:
							stack = append(stack, bytecode.Int(int64(f.a)))
						case bytecode.CONST:
							stack = append(stack, code.Consts[f.a])
						case bytecode.LOAD:
							stack = append(stack, locals[lb+int(f.a)])
						case bytecode.STORE:
							locals[lb+int(f.a)] = stack[len(stack)-1]
							stack = stack[:len(stack)-1]
						case bytecode.GLOAD:
							stack = append(stack, e.Globals[f.a])
						case bytecode.GSTORE:
							e.Globals[f.a] = stack[len(stack)-1]
							stack = stack[:len(stack)-1]
						case bytecode.IINC:
							locals[lb+int(f.a)].I += int64(f.b)
						case bytecode.POP:
							stack = stack[:len(stack)-1]
						case bytecode.DUP:
							stack = append(stack, stack[len(stack)-1])
						case bytecode.SWAP:
							n := len(stack)
							stack[n-1], stack[n-2] = stack[n-2], stack[n-1]
						case bytecode.IADD, bytecode.ISUB, bytecode.IMUL,
							bytecode.IAND, bytecode.IOR, bytecode.IXOR,
							bytecode.ISHL, bytecode.ISHR:
							n := len(stack)
							r := intBin(f.op, stack[n-2].I, stack[n-1].I)
							stack = stack[:n-1]
							stack[n-2] = bytecode.Int(r)
						case bytecode.INEG:
							stack[len(stack)-1] = bytecode.Int(-stack[len(stack)-1].I)
						case bytecode.INOT:
							stack[len(stack)-1] = bytecode.Int(^stack[len(stack)-1].I)
						case bytecode.FADD, bytecode.FSUB, bytecode.FMUL, bytecode.FDIV:
							n := len(stack)
							a, b := stack[n-2].AsFloat(), stack[n-1].AsFloat()
							stack = stack[:n-1]
							var r float64
							switch f.op {
							case bytecode.FADD:
								r = a + b
							case bytecode.FSUB:
								r = a - b
							case bytecode.FMUL:
								r = a * b
							case bytecode.FDIV:
								r = a / b
							}
							stack[n-2] = bytecode.Float(r)
						case bytecode.FNEG:
							stack[len(stack)-1] = bytecode.Float(-stack[len(stack)-1].AsFloat())
						case bytecode.FSQRT:
							stack[len(stack)-1] = bytecode.Float(math.Sqrt(stack[len(stack)-1].AsFloat()))
						case bytecode.FABS:
							stack[len(stack)-1] = bytecode.Float(math.Abs(stack[len(stack)-1].AsFloat()))
						case bytecode.I2F:
							stack[len(stack)-1] = bytecode.Float(float64(stack[len(stack)-1].I))
						case bytecode.F2I:
							stack[len(stack)-1] = bytecode.Int(int64(stack[len(stack)-1].F))
						case bytecode.IEQ, bytecode.INE, bytecode.ILT,
							bytecode.ILE, bytecode.IGT, bytecode.IGE:
							n := len(stack)
							r := intCmp(f.op, stack[n-2].I, stack[n-1].I)
							stack = stack[:n-1]
							stack[n-2] = bytecode.Bool(r)
						case bytecode.FEQ, bytecode.FNE, bytecode.FLT,
							bytecode.FLE, bytecode.FGT, bytecode.FGE:
							n := len(stack)
							a, b := stack[n-2].AsFloat(), stack[n-1].AsFloat()
							stack = stack[:n-1]
							var r bool
							switch f.op {
							case bytecode.FEQ:
								r = a == b
							case bytecode.FNE:
								r = a != b
							case bytecode.FLT:
								r = a < b
							case bytecode.FLE:
								r = a <= b
							case bytecode.FGT:
								r = a > b
							case bytecode.FGE:
								r = a >= b
							}
							stack[n-2] = bytecode.Bool(r)
						case bytecode.IDIV, bytecode.IMOD:
							n := len(stack)
							a, b := stack[n-2].I, stack[n-1].I
							stack = stack[:n-1]
							if b == 0 {
								e.Cycles -= int64(f.rem)
								*workP -= int64(f.remBase)
								*cycP -= int64(f.rem)
								fr.pc = int(f.tpc)
								if f.op == bytecode.IDIV {
									return result, rerr("integer division by zero")
								}
								return result, rerr("integer modulo by zero")
							}
							if f.op == bytecode.IDIV {
								stack[n-2] = bytecode.Int(a / b)
							} else {
								stack[n-2] = bytecode.Int(a % b)
							}
						case bytecode.ALOAD:
							n := len(stack)
							arr, aerr := e.Array(stack[n-2])
							if aerr == nil {
								idx := stack[n-1].AsInt()
								if idx >= 0 && idx < int64(len(arr)) {
									stack = stack[:n-1]
									stack[n-2] = arr[idx]
									break
								}
								aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
							}
							e.Cycles -= int64(f.rem)
							*workP -= int64(f.remBase)
							*cycP -= int64(f.rem)
							fr.pc = int(f.tpc)
							return result, rerr("aload: %v", aerr)
						case bytecode.ASTORE:
							n := len(stack)
							arr, aerr := e.Array(stack[n-3])
							if aerr == nil {
								idx := stack[n-2].AsInt()
								if idx >= 0 && idx < int64(len(arr)) {
									arr[idx] = stack[n-1]
									stack = stack[:n-3]
									break
								}
								aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
							}
							e.Cycles -= int64(f.rem)
							*workP -= int64(f.remBase)
							*cycP -= int64(f.rem)
							fr.pc = int(f.tpc)
							return result, rerr("astore: %v", aerr)
						case bytecode.ALEN:
							arr, aerr := e.Array(stack[len(stack)-1])
							if aerr != nil {
								e.Cycles -= int64(f.rem)
								*workP -= int64(f.remBase)
								*cycP -= int64(f.rem)
								fr.pc = int(f.tpc)
								return result, rerr("alen: %v", aerr)
							}
							stack[len(stack)-1] = bytecode.Int(int64(len(arr)))
						case bytecode.PRINT:
							e.Output = append(e.Output, stack[len(stack)-1])
							stack = stack[:len(stack)-1]
						case bytecode.JMP:
							fr.pc = int(f.a)
						case bytecode.JZ:
							v := stack[len(stack)-1]
							stack = stack[:len(stack)-1]
							if !v.IsTrue() {
								fr.pc = int(f.a)
							}
						case bytecode.JNZ:
							v := stack[len(stack)-1]
							stack = stack[:len(stack)-1]
							if v.IsTrue() {
								fr.pc = int(f.a)
							}

						// Fused superinstructions.
						case fLLBin:
							stack = append(stack, bytecode.Int(intBin(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, locals[lb+int(f.b)].I)))
						case fLLCmp:
							stack = append(stack, bytecode.Bool(intCmp(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, locals[lb+int(f.b)].I)))
						case fLIBin:
							stack = append(stack, bytecode.Int(intBin(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, int64(f.b))))
						case fLICmp:
							stack = append(stack, bytecode.Bool(intCmp(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, int64(f.b))))
						case fLGBin:
							stack = append(stack, bytecode.Int(intBin(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, e.Globals[f.b].I)))
						case fLGCmp:
							stack = append(stack, bytecode.Bool(intCmp(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, e.Globals[f.b].I)))
						case fMove:
							locals[lb+int(f.b)] = locals[lb+int(f.a)]
						case fGMove:
							locals[lb+int(f.b)] = e.Globals[f.a]
						case fIStore:
							locals[lb+int(f.a)] = bytecode.Int(int64(f.b))
						case fCStore:
							locals[lb+int(f.a)] = code.Consts[f.b]
						case fIncJmp:
							locals[lb+int(f.a)].I += int64(f.b)
							fr.pc = int(f.c)
						case fCmpJz, fCmpJnz:
							n := len(stack)
							r := intCmp(bytecode.Op(f.c), stack[n-2].I, stack[n-1].I)
							stack = stack[:n-2]
							if r == (f.op == fCmpJnz) {
								fr.pc = int(f.b)
							}
						case fCCmpJz, fCCmpJnz:
							n := len(stack)
							r := intCmp(bytecode.Op(f.c), stack[n-1].I, code.Consts[f.a].I)
							stack = stack[:n-1]
							if r == (f.op == fCCmpJnz) {
								fr.pc = int(f.b)
							}
						case fICmpJz, fICmpJnz:
							n := len(stack)
							r := intCmp(bytecode.Op(f.c), stack[n-1].I, int64(f.a))
							stack = stack[:n-1]
							if r == (f.op == fICmpJnz) {
								fr.pc = int(f.b)
							}
						case fLJz:
							if !locals[lb+int(f.a)].IsTrue() {
								fr.pc = int(f.b)
							}
						case fLJnz:
							if locals[lb+int(f.a)].IsTrue() {
								fr.pc = int(f.b)
							}
						case fALoad:
							arr, aerr := e.Array(locals[lb+int(f.a)])
							if aerr == nil {
								idx := locals[lb+int(f.b)].AsInt()
								if idx >= 0 && idx < int64(len(arr)) {
									stack = append(stack, arr[idx])
									break
								}
								aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
							}
							e.Cycles -= int64(f.rem)
							*workP -= int64(f.remBase)
							*cycP -= int64(f.rem)
							fr.pc = int(f.tpc)
							return result, rerr("aload: %v", aerr)
						case fGALoad:
							arr, aerr := e.Array(e.Globals[f.a])
							if aerr == nil {
								idx := locals[lb+int(f.b)].AsInt()
								if idx >= 0 && idx < int64(len(arr)) {
									stack = append(stack, arr[idx])
									break
								}
								aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
							}
							e.Cycles -= int64(f.rem)
							*workP -= int64(f.remBase)
							*cycP -= int64(f.rem)
							fr.pc = int(f.tpc)
							return result, rerr("aload: %v", aerr)
						case fLLBinS:
							locals[lb+int(f.d)] = bytecode.Int(intBin(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, locals[lb+int(f.b)].I))
						case fLIBinS:
							locals[lb+int(f.d)] = bytecode.Int(intBin(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, int64(f.b)))
						case fLGBinS:
							locals[lb+int(f.d)] = bytecode.Int(intBin(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, e.Globals[f.b].I))
						case fLLCmpJz, fLLCmpJnz:
							r := intCmp(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, locals[lb+int(f.b)].I)
							if r == (f.op == fLLCmpJnz) {
								fr.pc = int(f.d)
							}
						case fLGCmpJz, fLGCmpJnz:
							r := intCmp(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, e.Globals[f.b].I)
							if r == (f.op == fLGCmpJnz) {
								fr.pc = int(f.d)
							}
						case fLICmpJz, fLICmpJnz:
							r := intCmp(bytecode.Op(f.c),
								locals[lb+int(f.a)].I, int64(f.b))
							if r == (f.op == fLICmpJnz) {
								fr.pc = int(f.d)
							}
						}
					}
					continue
				}
			}

			in := code.Instrs[pc]
			e.Cycles += code.Cost[pc]
			*workP += code.Base[pc]
			*cycP += code.Cost[pc]
			if e.Cycles >= e.nextSample {
				for e.Cycles >= e.nextSample {
					e.nextSample += e.SampleStride
					code.noteSample()
					if e.OnSample != nil {
						e.OnSample(code.FnIdx)
					}
				}
				// A sampler tick is the promotion point of the closure
				// tier: re-ask for the threaded form so code that just got
				// hot (or was recompiled hot in OnSample) starts threading
				// without leaving the frame. Host-side only — the virtual
				// stream is untouched.
				if cp == nil && !e.DisableBatching && !e.DisableClosures {
					if cp = code.closureFor(!e.DisableFusion, e.EagerClosures); cp != nil {
						pl = nil
					}
				}
				if tp == nil && !e.DisableBatching && !e.DisableRegTier {
					tp = code.traceFor(e.EagerRegTier, !e.DisableCallInline, e.PeekCode)
				}
				if e.Cycles > e.MaxCycles {
					return result, rerr("cycle limit %d exceeded", e.MaxCycles)
				}
				if e.Interrupt != nil {
					if cause := e.Interrupt(); cause != nil {
						return result, &CanceledError{Prog: e.Prog.Name, Fn: code.Name,
							PC: pc, Cycles: e.Cycles, Cause: cause}
					}
				}
			}
			fr.pc = pc + 1

			switch in.Op {
			case bytecode.NOP:
			case bytecode.IPUSH:
				stack = append(stack, bytecode.Int(int64(in.A)))
			case bytecode.CONST:
				stack = append(stack, code.Consts[in.A])
			case bytecode.LOAD:
				stack = append(stack, locals[lb+int(in.A)])
			case bytecode.STORE:
				locals[lb+int(in.A)] = stack[len(stack)-1]
				stack = stack[:len(stack)-1]
			case bytecode.GLOAD:
				stack = append(stack, e.Globals[in.A])
			case bytecode.GSTORE:
				e.Globals[in.A] = stack[len(stack)-1]
				stack = stack[:len(stack)-1]
			case bytecode.IINC:
				locals[lb+int(in.A)].I += int64(in.B)
			case bytecode.POP:
				stack = stack[:len(stack)-1]
			case bytecode.DUP:
				stack = append(stack, stack[len(stack)-1])
			case bytecode.SWAP:
				n := len(stack)
				stack[n-1], stack[n-2] = stack[n-2], stack[n-1]

			case bytecode.IADD, bytecode.ISUB, bytecode.IMUL, bytecode.IDIV,
				bytecode.IMOD, bytecode.IAND, bytecode.IOR, bytecode.IXOR,
				bytecode.ISHL, bytecode.ISHR:
				n := len(stack)
				a, b := stack[n-2].I, stack[n-1].I
				stack = stack[:n-1]
				var r int64
				switch in.Op {
				case bytecode.IADD:
					r = a + b
				case bytecode.ISUB:
					r = a - b
				case bytecode.IMUL:
					r = a * b
				case bytecode.IDIV:
					if b == 0 {
						return result, rerr("integer division by zero")
					}
					r = a / b
				case bytecode.IMOD:
					if b == 0 {
						return result, rerr("integer modulo by zero")
					}
					r = a % b
				case bytecode.IAND:
					r = a & b
				case bytecode.IOR:
					r = a | b
				case bytecode.IXOR:
					r = a ^ b
				case bytecode.ISHL:
					r = a << (uint64(b) & 63)
				case bytecode.ISHR:
					r = a >> (uint64(b) & 63)
				}
				stack[n-2] = bytecode.Int(r)
			case bytecode.INEG:
				stack[len(stack)-1] = bytecode.Int(-stack[len(stack)-1].I)
			case bytecode.INOT:
				stack[len(stack)-1] = bytecode.Int(^stack[len(stack)-1].I)

			case bytecode.FADD, bytecode.FSUB, bytecode.FMUL, bytecode.FDIV:
				n := len(stack)
				a, b := stack[n-2].AsFloat(), stack[n-1].AsFloat()
				stack = stack[:n-1]
				var r float64
				switch in.Op {
				case bytecode.FADD:
					r = a + b
				case bytecode.FSUB:
					r = a - b
				case bytecode.FMUL:
					r = a * b
				case bytecode.FDIV:
					r = a / b
				}
				stack[n-2] = bytecode.Float(r)
			case bytecode.FNEG:
				stack[len(stack)-1] = bytecode.Float(-stack[len(stack)-1].AsFloat())
			case bytecode.FSQRT:
				stack[len(stack)-1] = bytecode.Float(math.Sqrt(stack[len(stack)-1].AsFloat()))
			case bytecode.FABS:
				stack[len(stack)-1] = bytecode.Float(math.Abs(stack[len(stack)-1].AsFloat()))

			case bytecode.I2F:
				stack[len(stack)-1] = bytecode.Float(float64(stack[len(stack)-1].I))
			case bytecode.F2I:
				stack[len(stack)-1] = bytecode.Int(int64(stack[len(stack)-1].F))

			case bytecode.IEQ, bytecode.INE, bytecode.ILT, bytecode.ILE,
				bytecode.IGT, bytecode.IGE:
				n := len(stack)
				a, b := stack[n-2].I, stack[n-1].I
				stack = stack[:n-1]
				var r bool
				switch in.Op {
				case bytecode.IEQ:
					r = a == b
				case bytecode.INE:
					r = a != b
				case bytecode.ILT:
					r = a < b
				case bytecode.ILE:
					r = a <= b
				case bytecode.IGT:
					r = a > b
				case bytecode.IGE:
					r = a >= b
				}
				stack[n-2] = bytecode.Bool(r)
			case bytecode.FEQ, bytecode.FNE, bytecode.FLT, bytecode.FLE,
				bytecode.FGT, bytecode.FGE:
				n := len(stack)
				a, b := stack[n-2].AsFloat(), stack[n-1].AsFloat()
				stack = stack[:n-1]
				var r bool
				switch in.Op {
				case bytecode.FEQ:
					r = a == b
				case bytecode.FNE:
					r = a != b
				case bytecode.FLT:
					r = a < b
				case bytecode.FLE:
					r = a <= b
				case bytecode.FGT:
					r = a > b
				case bytecode.FGE:
					r = a >= b
				}
				stack[n-2] = bytecode.Bool(r)

			case bytecode.JMP:
				fr.pc = int(in.A)
			case bytecode.JZ:
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if !v.IsTrue() {
					fr.pc = int(in.A)
				}
			case bytecode.JNZ:
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if v.IsTrue() {
					fr.pc = int(in.A)
				}

			case bytecode.CALL:
				argc := int(in.B)
				args := stack[len(stack)-argc:]
				if err := push(int(in.A)); err != nil {
					return result, err
				}
				nf := &frames[len(frames)-1]
				copy(locals[nf.localsBase:], args)
				stack = stack[:len(stack)-argc]
				nf.spBase = len(stack)
				break body // switch to callee frame

			case bytecode.RET:
				rv := stack[len(stack)-1]
				stack = stack[:fr.spBase]
				locals = locals[:fr.localsBase]
				frames = frames[:len(frames)-1]
				stack = append(stack, rv)
				if len(frames) == 0 {
					result = rv
					return result, nil
				}
				break body // resume caller frame

			case bytecode.NEWARR:
				n := stack[len(stack)-1].AsInt()
				// Publish the collector's root sets: a collection can
				// only start inside NewArray. A copying collection
				// rewrites references in place, so the aliased local
				// slices stay valid afterwards.
				e.rootLocals, e.rootStack = locals, stack[:len(stack)-1]
				ref, err := e.NewArray(n)
				if err != nil {
					return result, rerr("%v", err)
				}
				// Allocation cost scales with size; charge it to the
				// allocating function as well so the per-function ledger
				// (Σ FnCycles) reconciles with the engine clock.
				e.Cycles += 2 * n
				*cycP += 2 * n
				stack[len(stack)-1] = ref
			case bytecode.ALOAD:
				n := len(stack)
				arr, err := e.Array(stack[n-2])
				if err != nil {
					return result, rerr("aload: %v", err)
				}
				idx := stack[n-1].AsInt()
				if idx < 0 || idx >= int64(len(arr)) {
					return result, rerr("aload: index %d out of range [0,%d)", idx, len(arr))
				}
				stack = stack[:n-1]
				stack[n-2] = arr[idx]
			case bytecode.ASTORE:
				n := len(stack)
				arr, err := e.Array(stack[n-3])
				if err != nil {
					return result, rerr("astore: %v", err)
				}
				idx := stack[n-2].AsInt()
				if idx < 0 || idx >= int64(len(arr)) {
					return result, rerr("astore: index %d out of range [0,%d)", idx, len(arr))
				}
				arr[idx] = stack[n-1]
				stack = stack[:n-3]
			case bytecode.ALEN:
				arr, err := e.Array(stack[len(stack)-1])
				if err != nil {
					return result, rerr("alen: %v", err)
				}
				stack[len(stack)-1] = bytecode.Int(int64(len(arr)))

			case bytecode.PRINT:
				e.Output = append(e.Output, stack[len(stack)-1])
				stack = stack[:len(stack)-1]

			case bytecode.HALT:
				e.halted = true
				if len(stack) > fr.spBase {
					result = stack[len(stack)-1]
				}
				return result, nil

			default:
				return result, rerr("invalid opcode %d", in.Op)
			}
		}
	}
	return result, nil
}

// Halted reports whether the last Run ended on a HALT instruction.
func (e *Engine) Halted() bool { return e.halted }
