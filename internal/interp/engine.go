package interp

import (
	"fmt"
	"sync"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/gc"
)

// RuntimeError describes a dynamic failure (division by zero, bad array
// access, resource exhaustion) with its program location.
type RuntimeError struct {
	Prog string
	Fn   string
	PC   int
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime: %s.%s+%d: %s", e.Prog, e.Fn, e.PC, e.Msg)
}

// CanceledError reports a run aborted by its interrupt hook (context
// cancellation or deadline). The abort happens at a sample boundary, after
// the crossing instruction's cycles were charged, so the engine's cycle
// ledger remains fully attributed: every cycle on the clock is accounted
// to executed code, compilation, overhead, or the collector.
type CanceledError struct {
	Prog string
	// Fn and PC locate the executing function when the abort fired. Fn is
	// empty when the run was canceled before its first instruction.
	Fn     string
	PC     int
	Cycles int64 // virtual cycles charged before the abort
	Cause  error // the interrupt hook's error (e.g. context.Canceled)
}

func (e *CanceledError) Error() string {
	if e.Fn == "" {
		return fmt.Sprintf("canceled: %s before execution: %v", e.Prog, e.Cause)
	}
	return fmt.Sprintf("canceled: %s.%s+%d after %d cycles: %v", e.Prog, e.Fn, e.PC, e.Cycles, e.Cause)
}

// Unwrap exposes the cancellation cause so errors.Is(err,
// context.Canceled) and errors.Is(err, context.DeadlineExceeded) work.
func (e *CanceledError) Unwrap() error { return e.Cause }

// Defaults for engine limits.
const (
	DefaultSampleStride = 20_000         // cycles between method samples
	DefaultMaxCycles    = 50_000_000_000 // runaway-loop fuse
	DefaultMaxHeapCells = 64 << 20       // max live array cells
	maxCallDepth        = 4096
)

// Engine executes a program under a virtual-cycle clock.
//
// The executable form of each function is obtained through Provider at
// every call, so a controller may swap in recompiled code between
// invocations (the activation that is already running keeps its old code,
// as in a JIT without on-stack replacement).
//
// OnInvoke fires after the code for a new activation has been fetched,
// with the function's cumulative invocation count (1 on first call).
// OnSample fires once per SampleStride cycles of executed code, attributed
// to the function executing when the stride boundary is crossed — the
// deterministic analogue of Jikes RVM's timer-based sampler.
type Engine struct {
	Prog     *bytecode.Program
	Provider func(fnIdx int) *Code
	OnInvoke func(fnIdx int, count int64)
	OnSample func(fnIdx int)

	SampleStride int64
	MaxCycles    int64
	MaxHeapCells int64

	// Interrupt, when set, is polled once before the first instruction and
	// then at every sample boundary (every SampleStride cycles of executed
	// code). A non-nil return aborts the run with a *CanceledError wrapping
	// it. The poll sits off the batched fast path — segments never cross a
	// sample boundary — so an idle hook costs nothing per instruction.
	// Typically wired to a context.Context's Err method (vm.Machine.SetContext).
	Interrupt func() error

	// DisableBatching turns off the host-performance fast path entirely:
	// every instruction is dispatched and charged individually, as in the
	// pre-substrate engine. DisableFusion keeps block-batched accounting
	// but runs segments op by op without superinstructions. Both exist
	// for the fused-vs-unfused determinism suite; virtual results are
	// bit-identical in every combination (see fuse.go).
	DisableBatching bool
	DisableFusion   bool

	// DisableClosures turns off the closure-threaded tier (closure.go):
	// hot segments keep running through the fused switch. EagerClosures
	// closure-threads every executed Code immediately, regardless of
	// level or hotness — the equivalence suites use it to hold the
	// closure tier to bit identity at every tier from the first
	// instruction. Both host-side only; virtual results are identical in
	// every combination.
	DisableClosures bool
	EagerClosures   bool

	// DisableRegTier turns off the register-converted trace tier
	// (trace.go, regir.go): hot loops keep running through closures or
	// the fused switch. EagerRegTier builds and activates traces for
	// every executed Code immediately, regardless of level or hotness —
	// the equivalence suites use it to hold the register tier to bit
	// identity at every tier from the first instruction. Both host-side
	// only; virtual results are identical in every combination.
	DisableRegTier bool
	EagerRegTier   bool

	// DisableOSR turns off mid-iteration (on-stack replacement) entries
	// into the register tier: traces activate at loop heads only.
	// EagerOSR activates OSR entry points without waiting for the parent
	// trace's back-edge hotness gate. StressDeopt forces every trace run
	// to hand back to the accounted loop after a single iteration,
	// hammering the exit/re-entry state mapping. DisableCallInline
	// refuses CALL during trace building, restoring the pre-inlining
	// per-loop degradation. All four are host-side only; virtual results
	// are identical in every combination.
	DisableOSR        bool
	EagerOSR          bool
	StressDeopt       bool
	DisableCallInline bool

	// BgCompile, when set, receives closure- and trace-plan builds as
	// background jobs instead of the engine building them inline at the
	// promotion point: the engine enqueues once per missing plan (gated
	// by the Code's in-flight bit) and keeps executing in its current
	// best tier until the built plan appears in the slot. Host-side only
	// — which tier runs an iteration is never a virtual observable, so
	// wall-clock-racy installs cannot perturb results (DESIGN.md §15).
	// SyncCompile forces inline builds even when BgCompile is set; the
	// equivalence suites use it to pin the synchronous oracle. The eager
	// toggles below always build inline regardless.
	BgCompile   CompileQueue
	SyncCompile bool

	// PeekCode reports the code the engine's current Provider would
	// return for fnIdx WITHOUT side effects — nil when the function has
	// no current code form yet (never invoked). The trace tier uses it to
	// guard inlined call sites; the contract is that whenever PeekCode
	// returns non-nil, a Provider call for the same function is pure and
	// returns an equivalent code. NewEngine wires it to the default
	// Provider's table; anyone replacing Provider (vm.Machine, the
	// difftest harnesses) replaces PeekCode alongside it.
	PeekCode func(fnIdx int) *Code

	Globals     []bytecode.Value
	Output      []bytecode.Value
	Cycles      int64
	Invocations []int64
	// Work[fn] accumulates tier-independent baseline cost of the
	// instructions fn executed; FnCycles[fn] accumulates the actual
	// (tier-scaled) cycles charged to fn.
	Work     []int64
	FnCycles []int64

	// GC enables heap collection (zero value: the heap only grows).
	// GCStats records the collector's behaviour for the run.
	GC      gc.Config
	GCStats gc.Stats

	heap      [][]bytecode.Value
	heapCells int64
	freeSlots []int64

	// Root sets published for the collector. During Run these alias the
	// evaluator's live locals arena and operand stack; they are synced
	// at every allocation site (the only place a collection can start).
	rootLocals []bytecode.Value
	rootStack  []bytecode.Value

	nextSample int64
	halted     bool
}

// NewEngine returns an engine for prog with default limits and a baseline
// Provider that interprets every function at level −1. Callers typically
// replace Provider with a tier-aware one.
func NewEngine(prog *bytecode.Program) *Engine {
	e := &Engine{
		Prog:         prog,
		SampleStride: DefaultSampleStride,
		MaxCycles:    DefaultMaxCycles,
		MaxHeapCells: DefaultMaxHeapCells,
		Globals:      make([]bytecode.Value, len(prog.Globals)),
		Invocations:  make([]int64, len(prog.Funcs)),
		Work:         make([]int64, len(prog.Funcs)),
		FnCycles:     make([]int64, len(prog.Funcs)),
	}
	// The default provider base-compiles lazily: engines are created per
	// run by the thousands during experiments, and most replace Provider
	// (or never touch most functions) before the eager forms would pay
	// off. NewCode is pure, so laziness is unobservable.
	baseline := make([]*Code, len(prog.Funcs))
	e.Provider = func(fnIdx int) *Code {
		c := baseline[fnIdx]
		if c == nil {
			c = NewCode(fnIdx, prog.Funcs[fnIdx], -1, BaselineScalePct)
			baseline[fnIdx] = c
		}
		return c
	}
	e.PeekCode = func(fnIdx int) *Code { return baseline[fnIdx] }
	return e
}

// SetGlobal stores v in the named global slot.
func (e *Engine) SetGlobal(name string, v bytecode.Value) error {
	idx, ok := e.Prog.GlobalIndex(name)
	if !ok {
		return fmt.Errorf("interp: no global %q in %s", name, e.Prog.Name)
	}
	e.Globals[idx] = v
	return nil
}

// Global reads the named global slot.
func (e *Engine) Global(name string) (bytecode.Value, error) {
	idx, ok := e.Prog.GlobalIndex(name)
	if !ok {
		return bytecode.Value{}, fmt.Errorf("interp: no global %q in %s", name, e.Prog.Name)
	}
	return e.Globals[idx], nil
}

// NewArray allocates a heap array of n cells and returns its reference
// value, collecting garbage first when a GC policy is enabled and the
// heap budget would be exceeded. Exposed so harnesses can pass array
// inputs to programs.
func (e *Engine) NewArray(n int64) (bytecode.Value, error) {
	if n < 0 {
		return bytecode.Value{}, fmt.Errorf("interp: negative array length %d", n)
	}
	collecting := e.GC.Policy != gc.None && e.GC.BudgetCells > 0
	if collecting && e.heapCells+n > e.GC.BudgetCells {
		e.Collect()
		if e.heapCells+n > e.GC.BudgetCells {
			return bytecode.Value{}, fmt.Errorf(
				"interp: out of memory: %d live + %d requested cells exceed budget %d",
				e.heapCells, n, e.GC.BudgetCells)
		}
	}
	if e.heapCells+n > e.MaxHeapCells {
		return bytecode.Value{}, fmt.Errorf("interp: heap limit exceeded (%d cells)", e.MaxHeapCells)
	}
	if collecting {
		e.GCStats.Allocs++
		overhead := gc.AllocOverhead(e.GC.Policy)
		e.GCStats.AllocCycles += overhead
		e.Cycles += overhead
	}
	e.heapCells += n
	// MarkSweep reuses freed slots; Copying and None bump-append.
	if e.GC.Policy == gc.MarkSweep && len(e.freeSlots) > 0 {
		slot := e.freeSlots[len(e.freeSlots)-1]
		e.freeSlots = e.freeSlots[:len(e.freeSlots)-1]
		e.heap[slot] = make([]bytecode.Value, n)
		return bytecode.Arr(slot), nil
	}
	e.heap = append(e.heap, make([]bytecode.Value, n))
	return bytecode.Arr(int64(len(e.heap) - 1)), nil
}

// Array returns the backing slice of an array reference.
func (e *Engine) Array(v bytecode.Value) ([]bytecode.Value, error) {
	if v.Kind != bytecode.KArr || v.I < 0 || v.I >= int64(len(e.heap)) || e.heap[v.I] == nil {
		return nil, fmt.Errorf("interp: %s is not a live array reference", v)
	}
	return e.heap[v.I], nil
}

// LiveCells returns the number of live heap cells.
func (e *Engine) LiveCells() int64 { return e.heapCells }

// Collect runs one garbage collection under the configured policy,
// charging its cost to the clock. Reachability roots are the globals,
// the published locals arena and operand stack, and array interiors.
func (e *Engine) Collect() {
	if e.GC.Policy == gc.None {
		return
	}
	e.GCStats.Policy = e.GC.Policy
	mark := make([]bool, len(e.heap))
	var liveCells int64
	var work []int64
	visit := func(v bytecode.Value) {
		if v.Kind == bytecode.KArr && v.I >= 0 && v.I < int64(len(e.heap)) && !mark[v.I] {
			mark[v.I] = true
			work = append(work, v.I)
		}
	}
	for _, v := range e.Globals {
		visit(v)
	}
	for _, v := range e.rootLocals {
		visit(v)
	}
	for _, v := range e.rootStack {
		visit(v)
	}
	for len(work) > 0 {
		idx := work[len(work)-1]
		work = work[:len(work)-1]
		arr := e.heap[idx]
		liveCells += int64(len(arr))
		for _, v := range arr {
			visit(v)
		}
	}

	rec := gc.Collection{
		LiveCells:  liveCells,
		TotalCells: e.heapCells,
		FreedCells: e.heapCells - liveCells,
	}

	switch e.GC.Policy {
	case gc.MarkSweep:
		for i, arr := range e.heap {
			if arr != nil && !mark[i] {
				e.heap[i] = nil
				e.freeSlots = append(e.freeSlots, int64(i))
			}
		}
	case gc.Copying:
		newHeap := make([][]bytecode.Value, 0, len(e.heap))
		remap := make([]int64, len(e.heap))
		for i := range remap {
			remap[i] = -1
		}
		for i, arr := range e.heap {
			if arr != nil && mark[i] {
				remap[i] = int64(len(newHeap))
				newHeap = append(newHeap, arr)
			}
		}
		fix := func(vals []bytecode.Value) {
			for i, v := range vals {
				if v.Kind == bytecode.KArr && v.I >= 0 && v.I < int64(len(remap)) && remap[v.I] >= 0 {
					vals[i].I = remap[v.I]
				}
			}
		}
		fix(e.Globals)
		fix(e.rootLocals)
		fix(e.rootStack)
		for _, arr := range newHeap {
			fix(arr)
		}
		e.heap = newHeap
		e.freeSlots = nil
	}
	e.heapCells = liveCells

	cost := gc.CollectionCost(e.GC.Policy, rec)
	e.GCStats.GCCycles += cost
	e.GCStats.FreedCells += rec.FreedCells
	e.GCStats.Collections = append(e.GCStats.Collections, rec)
	e.AddCycles(cost)
}

// AddCycles charges n cycles of non-executing work (e.g. compilation) to
// the clock. Stride boundaries crossed this way produce no samples,
// mirroring Jikes RVM, where the sampler observes only application code.
// Compilation charges reach hundreds of strides, so the boundary skip is
// closed-form rather than a loop (this sits on the hot compile-charge
// path of every recompilation).
func (e *Engine) AddCycles(n int64) {
	e.Cycles += n
	if e.nextSample <= e.Cycles {
		e.nextSample += ((e.Cycles-e.nextSample)/e.SampleStride + 1) * e.SampleStride
	}
}

type frame struct {
	code       *Code
	pc         int
	localsBase int
	spBase     int
}

// runScratch is the pooled per-run working memory of the evaluator: the
// locals arena, operand stack, frame stack, the closure-tier threading
// state, and the trace-tier register file. Engines are created (or reset)
// per run by the thousands during experiments; recycling the arenas makes
// the steady state allocation-free. Values carry no pointers, so retaining
// their backing arrays in the pool pins nothing.
type runScratch struct {
	locals []bytecode.Value
	stack  []bytecode.Value
	frames []frame
	st     cstate
	regs   []bytecode.Value

	// Trace-tier side channels (trace.go): curCodes holds the guarded
	// current callee code per inlined call site of the running trace;
	// deopt carries a callee-frame materialization request out of
	// runTrace; trapFn re-attributes a trace trap to an inlined callee
	// (-1: none).
	curCodes []*Code
	deopt    deoptState
	trapFn   int32
}

var scratchPool = sync.Pool{
	New: func() any {
		return &runScratch{
			locals: make([]bytecode.Value, 0, 256),
			stack:  make([]bytecode.Value, 0, 256),
			frames: make([]frame, 0, 32),
		}
	},
}

// Reset returns the engine to its post-NewEngine state for a fresh run of
// the same program, keeping the Provider (and any baseline-code cache
// behind it) and the allocated ledger slices. Pooled vm.Machines use this
// to make repeated runs allocation-free; everything a run can observe —
// globals, output, clocks, ledgers, heap, GC state, limits, hooks, and
// substrate toggles — is restored to defaults.
func (e *Engine) Reset() {
	e.OnInvoke = nil
	e.OnSample = nil
	e.SampleStride = DefaultSampleStride
	e.MaxCycles = DefaultMaxCycles
	e.MaxHeapCells = DefaultMaxHeapCells
	e.Interrupt = nil
	e.DisableBatching = false
	e.DisableFusion = false
	e.DisableClosures = false
	e.EagerClosures = false
	e.DisableRegTier = false
	e.EagerRegTier = false
	e.DisableOSR = false
	e.EagerOSR = false
	e.StressDeopt = false
	e.DisableCallInline = false
	e.BgCompile = nil
	e.SyncCompile = false
	clear(e.Globals)
	e.Output = e.Output[:0]
	e.Cycles = 0
	clear(e.Invocations)
	clear(e.Work)
	clear(e.FnCycles)
	e.GC = gc.Config{}
	e.GCStats = gc.Stats{}
	for i := range e.heap {
		e.heap[i] = nil
	}
	e.heap = e.heap[:0]
	e.heapCells = 0
	e.freeSlots = e.freeSlots[:0]
	e.rootLocals, e.rootStack = nil, nil
	e.nextSample = 0
	e.halted = false
}

// Halted reports whether the last Run ended on a HALT instruction.
func (e *Engine) Halted() bool { return e.halted }
