package interp

import "sync/atomic"

// This file exports the trace tier's build- and run-time counters: why
// loops degrade off the register tier (per reason), how often traces are
// entered at their head vs through an OSR entry point, and how often they
// deoptimize back to the switch loop. The counters are process-global and
// host-side only — they never feed back into any virtual observable — and
// exist so a benchmark regression is attributable: a call-heavy shape that
// stops inlining shows up as a guard-failure or degradation count, not
// just a slower wall clock. Surfaced by `evolvevm serve` /v1/stats and
// `expdriver -tracestats`.

// Degradation reasons, in the order of the DegradeReasons names.
const (
	degCall     = iota // CALL not inlinable (inlining off, recursive, no peek)
	degRet             // RET on the caller path
	degNewArr          // NEWARR (allocation can start a collection)
	degHalt            // HALT
	degTooLarge        // linearized iteration exceeds traceMaxInstrs
	degRegs            // register file overflow (≥ traceMaxRegs locals+temps)
	degStack           // unbalanced stack: pops below entry or non-neutral back edge
	degCold            // a needed pc has no batchable segment (cold glue code)
	degInner           // walk revisits a segment: an inner loop's back edge
	degCallee          // callee body not inlinable (branchy-to-exit only, nested call, too large)
	degOther
	degCount
)

// DegradeReasons names the per-reason degradation counters, index-aligned
// with the TraceStats.Degrade slice.
var DegradeReasons = [degCount]string{
	"call", "ret", "newarr", "halt", "too-large", "regs",
	"unbalanced-stack", "cold", "inner-loop", "callee", "other",
}

var traceStats struct {
	built    atomic.Int64
	degraded [degCount]atomic.Int64

	headEntries  atomic.Int64
	osrEntries   atomic.Int64
	sideExits    atomic.Int64
	traps        atomic.Int64
	deopts       atomic.Int64
	guardFails   atomic.Int64
	inlinedCalls atomic.Int64
	inlineDeopts atomic.Int64
}

// TraceStats is a point-in-time snapshot of the trace tier's counters.
type TraceStats struct {
	// Built counts loops successfully converted to register traces;
	// Degrade counts refusals per reason (DegradeReasons order).
	Built   int64            `json:"built"`
	Degrade map[string]int64 `json:"degrade,omitempty"`

	// HeadEntries counts trace activations at a loop head; OSREntries
	// counts mid-iteration activations through an OSR entry point.
	HeadEntries int64 `json:"head_entries"`
	OSREntries  int64 `json:"osr_entries"`

	// SideExits counts deoptimizations through a side exit (symbolic
	// stack rematerialized, suffix charge rolled back); Traps counts
	// trapping deoptimizations; Deopts counts forced per-iteration
	// returns under StressDeopt.
	SideExits int64 `json:"side_exits"`
	Traps     int64 `json:"traps"`
	Deopts    int64 `json:"stress_deopts"`

	// GuardFails counts inline-guard failures (the callee's current code
	// no longer matches the inlined fingerprint); InlinedCalls counts
	// calls executed inside the register tier; InlineDeopts counts
	// mid-call deoptimizations into a materialized callee frame.
	GuardFails   int64 `json:"guard_fails"`
	InlinedCalls int64 `json:"inlined_calls"`
	InlineDeopts int64 `json:"inline_deopts"`
}

// ReadTraceStats snapshots the process-global trace-tier counters.
func ReadTraceStats() TraceStats {
	st := TraceStats{
		Built:        traceStats.built.Load(),
		HeadEntries:  traceStats.headEntries.Load(),
		OSREntries:   traceStats.osrEntries.Load(),
		SideExits:    traceStats.sideExits.Load(),
		Traps:        traceStats.traps.Load(),
		Deopts:       traceStats.deopts.Load(),
		GuardFails:   traceStats.guardFails.Load(),
		InlinedCalls: traceStats.inlinedCalls.Load(),
		InlineDeopts: traceStats.inlineDeopts.Load(),
	}
	for i := 0; i < degCount; i++ {
		if n := traceStats.degraded[i].Load(); n != 0 {
			if st.Degrade == nil {
				st.Degrade = make(map[string]int64, degCount)
			}
			st.Degrade[DegradeReasons[i]] = n
		}
	}
	return st
}

// ResetTraceStats zeroes the process-global trace-tier counters (tests).
func ResetTraceStats() {
	traceStats.built.Store(0)
	for i := range traceStats.degraded {
		traceStats.degraded[i].Store(0)
	}
	traceStats.headEntries.Store(0)
	traceStats.osrEntries.Store(0)
	traceStats.sideExits.Store(0)
	traceStats.traps.Store(0)
	traceStats.deopts.Store(0)
	traceStats.guardFails.Store(0)
	traceStats.inlinedCalls.Store(0)
	traceStats.inlineDeopts.Store(0)
}

func noteDegrade(reason int) {
	if reason < 0 || reason >= degCount {
		reason = degOther
	}
	traceStats.degraded[reason].Add(1)
}
