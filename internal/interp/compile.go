package interp

import (
	"sync/atomic"

	"evolvevm/internal/bytecode"
)

// This file is the engine side of background tier compilation: the job
// and queue types a compilation pool implements (internal/bgcompile),
// the per-Code in-flight bitmask that keeps the hot path from touching
// the pool more than once per missing plan, and the tier-promotion
// helpers the generated run loops call in place of the old synchronous
// Code.closureFor/traceFor.
//
// Determinism: which host tier executes an iteration is never a virtual
// observable — results, traps, cycles, samples, and ledgers are proven
// bit-identical across all four tiers by the difftest soaks — so a plan
// that lands at a wall-clock-racy moment changes only host speed. That
// is the entire correctness argument for building plans on background
// goroutines (see DESIGN.md §15).

// CompileKind identifies which plan form a background build produces.
type CompileKind uint8

const (
	// CompileClosure builds the closure-threaded plan; Mode is the
	// superinstruction-fusion flag (the plan slot).
	CompileClosure CompileKind = iota
	// CompileTrace builds the register-converted trace plan; Mode is the
	// CALL-inlining flag (the plan slot).
	CompileTrace
)

// CompileJob is one deferred plan build. The engine enqueues it when a
// Code crosses its hotness threshold without a plan; a pool worker calls
// Build, or Discard when the job is dropped or deduplicated, so the
// Code's in-flight bit is always released exactly once.
type CompileJob struct {
	Code *Code
	Kind CompileKind
	Mode bool
	// Peek is the code-table snapshot for trace-tier callee inlining,
	// captured on the engine's goroutine at enqueue time (the live
	// PeekCode may read state owned by the engine's goroutine, so a
	// background builder must never call it). Nil for closure jobs and
	// for engines without a code table; inlining then refuses callees,
	// which is always safe — inline sites re-guard at run time anyway.
	Peek func(int) *Code
	// Priority is the Code's sampler count at enqueue time; hotter code
	// compiles first.
	Priority int64
}

// Build performs the job's plan build and CAS install, releasing the
// in-flight bit. It reports whether the install won (false: another
// builder got there first, or a trace rebuild found nothing to improve).
func (j CompileJob) Build() bool {
	defer j.Code.clearPending(j.Kind, j.Mode)
	if j.Kind == CompileClosure {
		return j.Code.installClosurePlan(j.Mode)
	}
	return j.Code.installTracePlan(j.Mode, j.Peek)
}

// Discard releases the job's in-flight bit without building — the pool
// calls it for dropped and dedup-suppressed jobs so the owning engine
// can re-enqueue on a later promotion attempt.
func (j CompileJob) Discard() { j.Code.clearPending(j.Kind, j.Mode) }

// CompileQueue accepts deferred plan builds. Submit must not block:
// bounded implementations drop (and Discard) rather than stall the
// submitting engine.
type CompileQueue interface {
	Submit(CompileJob)
}

// pendingBit maps a (kind, mode) pair to its bit in Code.pending.
func pendingBit(kind CompileKind, mode bool) uint32 {
	b := uint32(1) << (uint32(kind) * 2)
	if mode {
		b <<= 1
	}
	return b
}

// markPending claims the in-flight bit for (kind, mode), reporting
// whether this caller won it. While the bit is held, every other engine
// sharing the Code skips its own enqueue — a thundering herd of cold
// tenants triggers exactly one Submit per missing plan.
func (c *Code) markPending(kind CompileKind, mode bool) bool {
	bit := pendingBit(kind, mode)
	for {
		old := c.pending.Load()
		if old&bit != 0 {
			return false
		}
		if c.pending.CompareAndSwap(old, old|bit) {
			return true
		}
	}
}

// clearPending releases the in-flight bit for (kind, mode).
func (c *Code) clearPending(kind CompileKind, mode bool) {
	for {
		old := c.pending.Load()
		next := old &^ pendingBit(kind, mode)
		if old == next || c.pending.CompareAndSwap(old, next) {
			return
		}
	}
}

// closureHot reports whether the code has earned its closure-threaded
// form under the engine's promotion policy.
func (e *Engine) closureHot(code *Code) bool {
	return e.EagerClosures || (code.Level >= 0 && code.samples.Load() >= ClosureHotSamples)
}

// traceHot reports whether the code has earned register conversion.
func (e *Engine) traceHot(code *Code) bool {
	return e.EagerRegTier || (code.Level >= 0 && code.samples.Load() >= TraceHotSamples)
}

// asyncCompile reports whether plan builds go through the background
// queue. Eager modes always build inline even when a queue is attached:
// the equivalence suites that set them need the plan before the first
// instruction, and an eager build is a test-only configuration anyway.
func (e *Engine) asyncCompile(eager bool) bool {
	return e.BgCompile != nil && !e.SyncCompile && !eager
}

// closureTier returns the closure plan code should run under, or nil.
// Synchronous mode builds inline at the promotion point (the pre-async
// behaviour); asynchronous mode enqueues once and keeps executing in the
// current best tier until the built plan appears in the slot.
func (e *Engine) closureTier(code *Code) *closPlan {
	fuse := !e.DisableFusion
	slot := 0
	if fuse {
		slot = 1
	}
	if p := code.closures[slot].Load(); p != nil {
		return p
	}
	if !e.closureHot(code) {
		return nil
	}
	if e.asyncCompile(e.EagerClosures) {
		e.enqueueCompile(code, CompileClosure, fuse)
		return code.closures[slot].Load()
	}
	code.installClosurePlan(fuse)
	return code.closures[slot].Load()
}

// traceTier returns the register trace plan code should run under, or
// nil. A built plan whose provisional inline refusals could now succeed
// (retry) is rebuilt — inline in synchronous mode, through the queue in
// asynchronous mode, where the stale plan keeps running until the
// rebuilt one is installed.
func (e *Engine) traceTier(code *Code) *tracePlan {
	inline := !e.DisableCallInline
	slot := 0
	if inline {
		slot = 1
	}
	if p := code.traces[slot].Load(); p != nil {
		if !p.retry(e.PeekCode) {
			return p
		}
	} else if !e.traceHot(code) {
		return nil
	}
	if e.asyncCompile(e.EagerRegTier) {
		e.enqueueCompile(code, CompileTrace, inline)
		return code.traces[slot].Load()
	}
	code.installTracePlan(inline, e.PeekCode)
	return code.traces[slot].Load()
}

// enqueueCompile submits one build to the background queue, gated by the
// Code's in-flight bit so the pool sees at most one job per missing plan
// regardless of how many engines share the Code. Trace jobs carry a
// code-table snapshot taken here, on the engine's goroutine.
func (e *Engine) enqueueCompile(code *Code, kind CompileKind, mode bool) {
	if !code.markPending(kind, mode) {
		return
	}
	job := CompileJob{Code: code, Kind: kind, Mode: mode, Priority: code.samples.Load()}
	if kind == CompileTrace {
		job.Peek = e.snapshotPeek()
	}
	e.BgCompile.Submit(job)
}

// snapshotPeek captures the engine's current code table as an immutable
// snapshot a background builder may read freely. The live PeekCode can
// alias per-run state mutated by the engine's goroutine (vm.Machine's
// current-code table), so handing it to a worker would race; the
// snapshot is taken here, where calling PeekCode is legal. A stale
// snapshot is always safe — inlined call sites re-validate the callee
// fingerprint at run time.
func (e *Engine) snapshotPeek() func(int) *Code {
	if e.PeekCode == nil {
		return nil
	}
	snap := make([]*Code, len(e.Prog.Funcs))
	for i := range snap {
		snap[i] = e.PeekCode(i)
	}
	return func(fnIdx int) *Code {
		if fnIdx < 0 || fnIdx >= len(snap) {
			return nil
		}
		return snap[fnIdx]
	}
}

// WarmJobs returns background-compile jobs for every plan form the code
// has earned (by level and sampler count) but not yet built in the given
// modes, claiming each job's in-flight bit. The serving front end calls
// this at epoch barriers to pre-warm the published winning chain, so
// cold tenants inherit compiled plans along with learned state. An empty
// return means the code is fully compiled (or too cold to bother).
func (c *Code) WarmJobs(fuse, inline bool, peek func(int) *Code) []CompileJob {
	if c.Level < 0 {
		return nil
	}
	var jobs []CompileJob
	n := c.samples.Load()
	cslot, tslot := 0, 0
	if fuse {
		cslot = 1
	}
	if inline {
		tslot = 1
	}
	if n >= ClosureHotSamples && c.closures[cslot].Load() == nil &&
		c.markPending(CompileClosure, fuse) {
		jobs = append(jobs, CompileJob{Code: c, Kind: CompileClosure, Mode: fuse, Priority: n})
	}
	// An inline-mode trace build without a code table would permanently
	// pin a degraded plan for loops containing calls: a nil peek refuses
	// CALL outright, without recording the callee as provisionally
	// missing, so no retry-rebuild would ever fire. Those codes wait for
	// an engine with a real table instead.
	if n >= TraceHotSamples && c.traces[tslot].Load() == nil &&
		!(inline && peek == nil && c.hasCall()) &&
		c.markPending(CompileTrace, inline) {
		jobs = append(jobs, CompileJob{Code: c, Kind: CompileTrace, Mode: inline, Peek: peek, Priority: n})
	}
	return jobs
}

// hasCall reports whether the code contains any CALL instruction.
func (c *Code) hasCall() bool {
	for _, in := range c.Instrs {
		if in.Op == bytecode.CALL {
			return true
		}
	}
	return false
}

// compileStats counts plan-install CAS races lost process-wide: a loser
// paid for a full build whose result was discarded. Nonzero values are
// expected under concurrent engines sharing Codes; the counters exist so
// "how much build work is wasted" is measurable rather than folklore.
var compileStats struct {
	lostPlans    atomic.Int64
	lostClosures atomic.Int64
	lostTraces   atomic.Int64
}

// PlanInstallStats is a point-in-time snapshot of the plan-install race
// counters (host-side diagnostics, never a virtual observable).
type PlanInstallStats struct {
	// Lost* count CompareAndSwap installs that found the slot already
	// filled by a concurrent builder, per plan form.
	LostPlans    int64 `json:"lost_plans"`
	LostClosures int64 `json:"lost_closures"`
	LostTraces   int64 `json:"lost_traces"`
}

// ReadPlanInstallStats snapshots the process-global install-race counters.
func ReadPlanInstallStats() PlanInstallStats {
	return PlanInstallStats{
		LostPlans:    compileStats.lostPlans.Load(),
		LostClosures: compileStats.lostClosures.Load(),
		LostTraces:   compileStats.lostTraces.Load(),
	}
}

// ResetPlanInstallStats zeroes the install-race counters (tests).
func ResetPlanInstallStats() {
	compileStats.lostPlans.Store(0)
	compileStats.lostClosures.Store(0)
	compileStats.lostTraces.Store(0)
}
