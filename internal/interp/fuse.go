package interp

import (
	"math"

	"evolvevm/internal/bytecode"
)

// This file implements the host-performance execution plan of a Code: a
// pre-decoded view of the instruction stream that lets Engine.Run charge
// virtual cycles per straight-line segment instead of per instruction,
// and dispatch fused superinstructions instead of their components.
//
// The plan NEVER changes virtual results. The engine takes the fast path
// for a segment only when charging the whole segment cannot cross the
// next sample-stride boundary (checked arithmetically up front); in every
// other case — a boundary inside the segment, a call or return, an
// allocation — execution falls back to the original per-instruction
// loop, byte for byte the pre-substrate engine. Because every
// instruction of a segment belongs to the same function, batching
// preserves per-function cycle and work attribution exactly, and because
// the fast path runs only between sample boundaries, the sampler (and
// any compile it triggers, with its own cycle charges) fires at exactly
// the same points of the virtual-cycle stream as before.
//
// Trapping-but-allocation-free ops (idiv, imod, aload, astore, alen) ARE
// admitted into segments: each micro-op carries the summed charge of the
// instructions after it (rem/remBase) plus its original successor pc
// (tpc), so when one traps the engine subtracts the not-yet-executed
// suffix and reports the trap at the exact pc the per-instruction loop
// would have — the original loop charges an instruction before its trap
// check, which is precisely what the upfront-charge-minus-suffix
// reproduces. The fused-vs-unfused determinism suites in
// internal/difftest and internal/harness hold every mode to bit identity
// over the generator corpus (trapping runs included) and the benchmark
// suite.

// Fused superinstruction opcodes. They extend bytecode.Op past NumOps and
// exist only inside plan micro-programs — never in bytecode streams, so
// the assembler, verifier, and optimizer are unaware of them.
const (
	// fLLBin: push Int(locals[A].I op locals[B].I); C is the int binop.
	fLLBin bytecode.Op = bytecode.Op(bytecode.NumOps) + iota
	// fLLCmp: push Bool(locals[A].I cmp locals[B].I); C is the int cmp.
	fLLCmp
	// fLIBin: push Int(locals[A].I op B); C is the int binop.
	fLIBin
	// fLICmp: push Bool(locals[A].I cmp B); C is the int cmp.
	fLICmp
	// fLGBin: push Int(locals[A].I op Globals[B].I); C is the int binop.
	fLGBin
	// fLGCmp: push Bool(locals[A].I cmp Globals[B].I); C is the int cmp.
	fLGCmp
	// fMove: locals[B] = locals[A] (LOAD+STORE).
	fMove
	// fGMove: locals[B] = Globals[A] (GLOAD+STORE).
	fGMove
	// fIStore: locals[A] = Int(B) (IPUSH+STORE).
	fIStore
	// fCStore: locals[A] = Consts[B] (CONST+STORE).
	fCStore
	// fIncJmp: locals[A].I += B; pc = C (IINC+JMP loop back-edge).
	fIncJmp
	// fCmpJz / fCmpJnz: pop b, pop a, branch to B on (a cmp b) false /
	// true; C is the int cmp.
	fCmpJz
	fCmpJnz
	// fCCmpJz / fCCmpJnz: pop a, branch to B on (a.I cmp Consts[A].I)
	// false / true; C is the int cmp (CONST+cmp+branch).
	fCCmpJz
	fCCmpJnz
	// fICmpJz / fICmpJnz: pop a, branch to B on (a.I cmp A) false / true;
	// C is the int cmp (IPUSH+cmp+branch).
	fICmpJz
	fICmpJnz
	// fLJz / fLJnz: branch to B on !locals[A].IsTrue() / IsTrue()
	// (LOAD+branch).
	fLJz
	fLJnz
	// fALoad: push Array(locals[A])[locals[B]] (LOAD+LOAD+ALOAD — the
	// array-indexing idiom). Traps like ALOAD on a dead reference or an
	// out-of-range index.
	fALoad
	// fGALoad: push Array(Globals[A])[locals[B]] (GLOAD+LOAD+ALOAD — the
	// global-array indexing idiom; benchmark inputs live in globals).
	fGALoad
	// fLLBinS: locals[D] = locals[A].I op locals[B].I
	// (LOAD+LOAD+binop+STORE — a full register-style ALU op with no stack
	// traffic); C is the int binop.
	fLLBinS
	// fLIBinS: locals[D] = locals[A].I op B (LOAD+IPUSH+binop+STORE).
	fLIBinS
	// fLGBinS: locals[D] = locals[A].I op Globals[B].I
	// (LOAD+GLOAD+binop+STORE).
	fLGBinS
	// fLLCmpJz / fLLCmpJnz: branch to D on (locals[A].I cmp locals[B].I)
	// false / true; C is the int cmp (LOAD+LOAD+cmp+branch — the loop
	// header idiom).
	fLLCmpJz
	fLLCmpJnz
	// fLGCmpJz / fLGCmpJnz: branch to D on (locals[A].I cmp Globals[B].I)
	// false / true; C is the int cmp.
	fLGCmpJz
	fLGCmpJnz
	// fLICmpJz / fLICmpJnz: branch to D on (locals[A].I cmp B) false /
	// true; C is the int cmp.
	fLICmpJz
	fLICmpJnz
)

// fop is one micro-operation of a segment: a plain bytecode op executed
// without per-instruction accounting, or a fused superinstruction.
//
// rem/remBase hold the summed Cost/Base of the segment instructions
// AFTER the ones this micro-op covers, and tpc is the pc following its
// last covered instruction — the trap-rollback data: a trapping micro-op
// subtracts rem from the upfront segment charge and reports the trap at
// tpc, landing on exactly the state the per-instruction loop produces.
type fop struct {
	op           bytecode.Op
	a, b, c, d   int32
	rem, remBase int32
	tpc          int32
}

// segRun is one batchable straight-line segment: cost and base are the
// summed charges of the covered instructions, end is the fall-through pc
// after the segment, and ops is the micro-program.
type segRun struct {
	cost int64
	base int64
	end  int32
	ops  []fop
}

// plan indexes segment runs by the original pc of their first
// instruction; seg[pc] is nil when no batchable segment starts at pc.
type plan struct {
	seg []*segRun
}

// The predicates below read the spec-derived classification tables in
// fuse_gen.go (opSegClass, opGroupOf), so an op added to internal/opspec
// is admitted into segments — or kept on the accounted path — by its
// declared class and trap clauses alone. The bounds guards keep the
// predicates total over fused superinstruction opcodes, which extend
// bytecode.Op past the table length.

// intBinOp reports whether op is a non-trapping integer binop (IDIV and
// IMOD trap on zero and carry rollback data instead).
func intBinOp(op bytecode.Op) bool {
	return int(op) < len(opGroupOf) && opGroupOf[op] == groupIntBin && opSegClass[op] == segInterior
}

// intCmpOp reports whether op is an integer comparison.
func intCmpOp(op bytecode.Op) bool {
	return int(op) < len(opGroupOf) && opGroupOf[op] == groupIntCmp
}

// trappingSafe reports whether op may appear inside a segment despite
// being able to trap: it allocates nothing (so no GC can start inside a
// segment), transfers no control, and its trap is reproduced exactly via
// the fop rollback data. NEWARR stays excluded — it charges size-scaled
// alloc cycles and can start a collection, both of which belong on the
// accounted path.
func trappingSafe(op bytecode.Op) bool {
	return int(op) < len(opSegClass) && opSegClass[op] == segTrapping
}

// interiorSafe reports whether op may appear inside a segment: it cannot
// trap, cannot transfer control, and touches no engine state other than
// stack, locals, globals, and the output log.
func interiorSafe(op bytecode.Op) bool {
	return int(op) < len(opSegClass) && opSegClass[op] == segInterior
}

// branchOp reports whether op may terminate a segment: an unconditional
// or conditional jump (non-trapping; included in the batch charge, with
// the branch itself executed as the segment's final micro-op).
func branchOp(op bytecode.Op) bool {
	return int(op) < len(opSegClass) && opSegClass[op] == segBranch
}

// buildPlan analyses the code and constructs its execution plan. With
// fuse false, every micro-program is the 1:1 unaccounted copy of the
// original ops (block batching without superinstructions — the
// metamorphic middle rung).
func buildPlan(c *Code, fuse bool) *plan {
	instrs := c.Instrs
	n := len(instrs)
	p := &plan{seg: make([]*segRun, n)}

	// Any pc that is a jump target may only be entered at a segment
	// head, so targets split segments.
	target := make([]bool, n)
	for _, in := range instrs {
		if in.Op.IsJump() && in.A >= 0 && int(in.A) < n {
			target[in.A] = true
		}
	}

	inSeg := func(op bytecode.Op) bool { return interiorSafe(op) || trappingSafe(op) }

	pc := 0
	for pc < n {
		if !inSeg(instrs[pc].Op) && !branchOp(instrs[pc].Op) {
			pc++
			continue
		}
		// Extend the run over segment-safe ops, stopping at jump
		// targets; optionally take one terminating branch.
		end := pc
		for end < n && inSeg(instrs[end].Op) && (end == pc || !target[end]) {
			end++
		}
		if end < n && branchOp(instrs[end].Op) && (end == pc || !target[end]) {
			end++
		}
		if end-pc < 2 {
			// A lone op saves nothing over the accounted path. end > pc
			// always holds here, so the walk advances.
			pc = end
			continue
		}
		s := &segRun{end: int32(end)}
		for i := pc; i < end; i++ {
			s.cost += c.Cost[i]
			s.base += c.Base[i]
		}
		if s.cost > math.MaxInt32 {
			// The fop rollback fields are int32; a segment this costly
			// cannot exist with the current cost table, but degrade to
			// the accounted path rather than truncate if it ever does.
			pc = end
			continue
		}
		s.ops = compileSeg(c, pc, end, fuse)
		p.seg[pc] = s
		pc = end
	}
	return p
}

// compileSeg translates the segment [start, end) into its micro-program,
// fusing known patterns when fuse is set, and stamps every micro-op with
// its trap-rollback data (suffix charges and successor pc).
func compileSeg(c *Code, start, end int, fuse bool) []fop {
	in := c.Instrs[start:end]
	// suf[k] is the summed charge of segment instructions from relative
	// index k on; suf[len(in)] is 0.
	suf := make([]int32, len(in)+1)
	sufBase := make([]int32, len(in)+1)
	for k := len(in) - 1; k >= 0; k-- {
		suf[k] = suf[k+1] + int32(c.Cost[start+k])
		sufBase[k] = sufBase[k+1] + int32(c.Base[start+k])
	}
	out := make([]fop, 0, len(in))
	for i := 0; i < len(in); {
		f, n := fop{}, 0
		if fuse {
			f, n = matchFused(in[i:])
		}
		if n == 0 {
			f, n = fop{op: in[i].Op, a: in[i].A, b: in[i].B}, 1
		}
		f.rem = suf[i+n]
		f.remBase = sufBase[i+n]
		f.tpc = int32(start + i + n)
		out = append(out, f)
		i += n
	}
	return out
}

// matchFused matches a superinstruction pattern at the head of in and
// returns the fused op plus how many instructions it covers (0: none).
// Longest patterns are tried first.
func matchFused(in []bytecode.Instr) (fop, int) {
	if len(in) >= 4 {
		a, b, c, d := in[0], in[1], in[2], in[3]
		if a.Op == bytecode.LOAD {
			switch {
			case b.Op == bytecode.LOAD && intBinOp(c.Op) && d.Op == bytecode.STORE:
				return fop{op: fLLBinS, a: a.A, b: b.A, c: int32(c.Op), d: d.A}, 4
			case b.Op == bytecode.IPUSH && intBinOp(c.Op) && d.Op == bytecode.STORE:
				return fop{op: fLIBinS, a: a.A, b: b.A, c: int32(c.Op), d: d.A}, 4
			case b.Op == bytecode.GLOAD && intBinOp(c.Op) && d.Op == bytecode.STORE:
				return fop{op: fLGBinS, a: a.A, b: b.A, c: int32(c.Op), d: d.A}, 4
			case b.Op == bytecode.LOAD && intCmpOp(c.Op) && d.Op == bytecode.JZ:
				return fop{op: fLLCmpJz, a: a.A, b: b.A, c: int32(c.Op), d: d.A}, 4
			case b.Op == bytecode.LOAD && intCmpOp(c.Op) && d.Op == bytecode.JNZ:
				return fop{op: fLLCmpJnz, a: a.A, b: b.A, c: int32(c.Op), d: d.A}, 4
			case b.Op == bytecode.GLOAD && intCmpOp(c.Op) && d.Op == bytecode.JZ:
				return fop{op: fLGCmpJz, a: a.A, b: b.A, c: int32(c.Op), d: d.A}, 4
			case b.Op == bytecode.GLOAD && intCmpOp(c.Op) && d.Op == bytecode.JNZ:
				return fop{op: fLGCmpJnz, a: a.A, b: b.A, c: int32(c.Op), d: d.A}, 4
			case b.Op == bytecode.IPUSH && intCmpOp(c.Op) && d.Op == bytecode.JZ:
				return fop{op: fLICmpJz, a: a.A, b: b.A, c: int32(c.Op), d: d.A}, 4
			case b.Op == bytecode.IPUSH && intCmpOp(c.Op) && d.Op == bytecode.JNZ:
				return fop{op: fLICmpJnz, a: a.A, b: b.A, c: int32(c.Op), d: d.A}, 4
			}
		}
	}
	if len(in) >= 3 {
		a, b, c := in[0], in[1], in[2]
		switch {
		case a.Op == bytecode.LOAD && b.Op == bytecode.LOAD && intBinOp(c.Op):
			return fop{op: fLLBin, a: a.A, b: b.A, c: int32(c.Op)}, 3
		case a.Op == bytecode.LOAD && b.Op == bytecode.LOAD && intCmpOp(c.Op):
			return fop{op: fLLCmp, a: a.A, b: b.A, c: int32(c.Op)}, 3
		case a.Op == bytecode.LOAD && b.Op == bytecode.IPUSH && intBinOp(c.Op):
			return fop{op: fLIBin, a: a.A, b: b.A, c: int32(c.Op)}, 3
		case a.Op == bytecode.LOAD && b.Op == bytecode.IPUSH && intCmpOp(c.Op):
			return fop{op: fLICmp, a: a.A, b: b.A, c: int32(c.Op)}, 3
		case a.Op == bytecode.LOAD && b.Op == bytecode.GLOAD && intBinOp(c.Op):
			return fop{op: fLGBin, a: a.A, b: b.A, c: int32(c.Op)}, 3
		case a.Op == bytecode.LOAD && b.Op == bytecode.GLOAD && intCmpOp(c.Op):
			return fop{op: fLGCmp, a: a.A, b: b.A, c: int32(c.Op)}, 3
		case a.Op == bytecode.LOAD && b.Op == bytecode.LOAD && c.Op == bytecode.ALOAD:
			return fop{op: fALoad, a: a.A, b: b.A}, 3
		case a.Op == bytecode.GLOAD && b.Op == bytecode.LOAD && c.Op == bytecode.ALOAD:
			return fop{op: fGALoad, a: a.A, b: b.A}, 3
		case a.Op == bytecode.CONST && intCmpOp(b.Op) && c.Op == bytecode.JZ:
			return fop{op: fCCmpJz, a: a.A, b: c.A, c: int32(b.Op)}, 3
		case a.Op == bytecode.CONST && intCmpOp(b.Op) && c.Op == bytecode.JNZ:
			return fop{op: fCCmpJnz, a: a.A, b: c.A, c: int32(b.Op)}, 3
		case a.Op == bytecode.IPUSH && intCmpOp(b.Op) && c.Op == bytecode.JZ:
			return fop{op: fICmpJz, a: a.A, b: c.A, c: int32(b.Op)}, 3
		case a.Op == bytecode.IPUSH && intCmpOp(b.Op) && c.Op == bytecode.JNZ:
			return fop{op: fICmpJnz, a: a.A, b: c.A, c: int32(b.Op)}, 3
		}
	}
	if len(in) >= 2 {
		a, b := in[0], in[1]
		switch {
		case a.Op == bytecode.LOAD && b.Op == bytecode.STORE:
			return fop{op: fMove, a: a.A, b: b.A}, 2
		case a.Op == bytecode.GLOAD && b.Op == bytecode.STORE:
			return fop{op: fGMove, a: a.A, b: b.A}, 2
		case a.Op == bytecode.IPUSH && b.Op == bytecode.STORE:
			return fop{op: fIStore, a: b.A, b: a.A}, 2
		case a.Op == bytecode.CONST && b.Op == bytecode.STORE:
			return fop{op: fCStore, a: b.A, b: a.A}, 2
		case a.Op == bytecode.IINC && b.Op == bytecode.JMP:
			return fop{op: fIncJmp, a: a.A, b: a.B, c: b.A}, 2
		case intCmpOp(a.Op) && b.Op == bytecode.JZ:
			return fop{op: fCmpJz, b: b.A, c: int32(a.Op)}, 2
		case intCmpOp(a.Op) && b.Op == bytecode.JNZ:
			return fop{op: fCmpJnz, b: b.A, c: int32(a.Op)}, 2
		case a.Op == bytecode.LOAD && b.Op == bytecode.JZ:
			return fop{op: fLJz, a: a.A, b: b.A}, 2
		case a.Op == bytecode.LOAD && b.Op == bytecode.JNZ:
			return fop{op: fLJnz, a: a.A, b: b.A}, 2
		}
	}
	return fop{}, 0
}
