package interp

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"evolvevm/internal/bytecode"
)

// This file holds the golden state-mapping tests of the OSR / deopt /
// call-inlining machinery (DESIGN.md §12): every way of leaving a
// register trace — plain side exit, callee side exit, trap inside an
// inlined callee, guard failure, depth trap, forced deopt — must hand the
// accounted interpreter a machine state bit-identical to the one a pure
// per-instruction interpretation would have reached. The tests compare
// complete engine snapshots (result, trap identity, clock, per-function
// ledgers, invocation counts, sample profile, output, globals) between a
// reference run with the whole substrate off and runs with traces, OSR,
// and inlining forced on.
//
// These tests read and reset the package-global trace counters, so they
// must not run in parallel with each other (they don't: no t.Parallel).

// engineSnap is everything observable about one finished engine run.
type engineSnap struct {
	result  bytecode.Value
	trap    string // "fn:pc:msg" or ""
	cycles  int64
	fnCyc   []int64
	work    []int64
	invokes []int64
	samples []int64
	output  []bytecode.Value
	globals []bytecode.Value
	halted  bool
}

// snapRun executes src with the given globals under configure and
// captures the full snapshot. Runtime traps are recorded, not fatal.
func snapRun(t *testing.T, p *bytecode.Program, globals map[string]bytecode.Value,
	configure func(*Engine)) *engineSnap {
	t.Helper()
	e := NewEngine(p)
	e.MaxCycles = 200_000_000
	samples := make([]int64, len(p.Funcs))
	e.OnSample = func(fnIdx int) { samples[fnIdx]++ }
	for k, v := range globals {
		if err := e.SetGlobal(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if configure != nil {
		configure(e)
	}
	res, err := e.Run()
	s := &engineSnap{
		result:  res,
		cycles:  e.Cycles,
		fnCyc:   append([]int64(nil), e.FnCycles...),
		work:    append([]int64(nil), e.Work...),
		invokes: append([]int64(nil), e.Invocations...),
		samples: samples,
		output:  append([]bytecode.Value(nil), e.Output...),
		globals: append([]bytecode.Value(nil), e.Globals...),
		halted:  e.Halted(),
	}
	if err != nil {
		var re *RuntimeError
		if !errors.As(err, &re) {
			t.Fatalf("non-runtime failure: %v", err)
		}
		s.trap = fmt.Sprintf("%s:%d:%s", re.Fn, re.PC, re.Msg)
	}
	return s
}

// snapIdentical asserts two snapshots are bit-identical in every field.
func snapIdentical(t *testing.T, ctx string, ref, got *engineSnap) {
	t.Helper()
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("%s: state diverged:\nref: trap=%q result=%+v cycles=%d fnCyc=%v work=%v inv=%v samples=%v out=%v halted=%v\ngot: trap=%q result=%+v cycles=%d fnCyc=%v work=%v inv=%v samples=%v out=%v halted=%v",
			ctx,
			ref.trap, ref.result, ref.cycles, ref.fnCyc, ref.work, ref.invokes, ref.samples, ref.output, ref.halted,
			got.trap, got.result, got.cycles, got.fnCyc, got.work, got.invokes, got.samples, got.output, got.halted)
	}
}

// traceConfigs is the ladder of trace-tier configurations every golden
// program is checked under, each against the substrate-off reference.
var traceConfigs = []struct {
	name      string
	configure func(*Engine)
}{
	{"reg", func(e *Engine) { e.EagerRegTier = true }},
	{"reg-noosr", func(e *Engine) { e.EagerRegTier = true; e.DisableOSR = true }},
	{"reg-osr", func(e *Engine) { e.EagerRegTier = true; e.EagerOSR = true }},
	{"reg-osr-deopt", func(e *Engine) { e.EagerRegTier = true; e.EagerOSR = true; e.StressDeopt = true }},
	{"reg-noinline", func(e *Engine) { e.EagerRegTier = true; e.DisableCallInline = true }},
}

func checkTraceLadder(t *testing.T, src string, globals map[string]bytecode.Value) {
	t.Helper()
	p := mustProg(t, src)
	ref := snapRun(t, p, globals, func(e *Engine) { e.DisableBatching = true })
	for _, cfg := range traceConfigs {
		got := snapRun(t, p, globals, cfg.configure)
		snapIdentical(t, cfg.name, ref, got)
	}
}

// branchySrc is a traced loop with side exits at three distinct body
// offsets and three distinct symbolic-stack shapes at the exit point: one
// value pending mid-expression (jnz exita), a different pending value
// (jnz exitb), and an empty stack (jnz exitc). Globals a, b, c pick the
// iteration at which each exit fires (or never, when out of range), so
// sweeping them forces a side exit — and the rematerialization of the
// interpreter stack — at every exit offset and at every point of the
// iteration space. The exit blocks jump back to the loop head, so under
// EagerOSR the empty-stack exit target is also a mid-loop OSR entry.
const branchySrc = `
global n
global a
global b
global c
func main() locals i s
  const 0
  store s
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load s
  load i
  iadd
  gload a
  load i
  ieq
  jnz exita
  const 3
  imul
  load i
  gload b
  ieq
  jnz exitb
  store s
  load i
  gload c
  ieq
  jnz exitc
  iinc i 1
  jmp loop
exita:
  pop
  load s
  const 1000
  iadd
  store s
  iinc i 1
  jmp loop
exitb:
  store s
  iinc i 1
  jmp loop
exitc:
  load s
  const 7
  iadd
  store s
  iinc i 1
  jmp loop
done:
  load s
  ret
end
`

// TestTraceSideExitStateMapping sweeps the side-exit iteration over the
// whole loop: for every (exit offset, firing iteration) pair the traced
// run must reconstruct the exact interpreter state — including the
// partially evaluated expression stack — and continue to the identical
// final snapshot.
func TestTraceSideExitStateMapping(t *testing.T) {
	const n = 12
	for which := 0; which < 3; which++ {
		for at := int64(0); at <= n; at++ { // n exits never fire: pure-loop case
			g := map[string]bytecode.Value{
				"n": bytecode.Int(n),
				"a": bytecode.Int(-1), "b": bytecode.Int(-1), "c": bytecode.Int(-1),
			}
			name := []string{"a", "b", "c"}[which]
			g[name] = bytecode.Int(at)
			t.Run(fmt.Sprintf("exit=%s@%d", name, at), func(t *testing.T) {
				checkTraceLadder(t, branchySrc, g)
			})
		}
	}
	// All three exits armed at interleaved iterations.
	checkTraceLadder(t, branchySrc, map[string]bytecode.Value{
		"n": bytecode.Int(20),
		"a": bytecode.Int(3), "b": bytecode.Int(7), "c": bytecode.Int(11),
	})
}

// TestOSREntryCounted proves OSR entries actually fire on the branchy
// loop: the empty-stack exit block jumps back into the loop, so under
// EagerOSR the engine must enter the register tier mid-loop.
func TestOSREntryCounted(t *testing.T) {
	p := mustProg(t, branchySrc)
	g := map[string]bytecode.Value{
		"n": bytecode.Int(10),
		"a": bytecode.Int(-1), "b": bytecode.Int(-1), "c": bytecode.Int(4),
	}
	ResetTraceStats()
	ref := snapRun(t, p, g, func(e *Engine) { e.DisableBatching = true })
	got := snapRun(t, p, g, func(e *Engine) { e.EagerRegTier = true; e.EagerOSR = true })
	snapIdentical(t, "eager-osr", ref, got)
	st := ReadTraceStats()
	if st.OSREntries == 0 {
		t.Errorf("no OSR entries recorded: %+v", st)
	}
	if st.SideExits == 0 {
		t.Errorf("no side exits recorded: %+v", st)
	}
}

// divTrapSrc traps with division by zero inside the traced loop body at
// an input-chosen iteration; the trap pc, message, attributed function,
// and the exact clock at the fault must match the interpreter.
const divTrapSrc = `
global n
global d
func main() locals i s
  const 0
  store s
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load s
  const 100
  load i
  gload d
  isub
  idiv
  iadd
  store s
  iinc i 1
  jmp loop
done:
  load s
  ret
end
`

// TestTraceTrapStateMapping forces a mid-trace trap at every iteration of
// the loop, including iteration 0 (trap before the first back edge) and
// the never-trapping case.
func TestTraceTrapStateMapping(t *testing.T) {
	const n = 8
	for d := int64(0); d <= n; d++ {
		t.Run(fmt.Sprintf("trap@%d", d), func(t *testing.T) {
			checkTraceLadder(t, divTrapSrc, map[string]bytecode.Value{
				"n": bytecode.Int(n), "d": bytecode.Int(d),
			})
		})
	}
	// d = n+5 never traps inside the loop.
	checkTraceLadder(t, divTrapSrc, map[string]bytecode.Value{
		"n": bytecode.Int(n), "d": bytecode.Int(n + 5),
	})
}

// callLoopSrc is the call-heavy shape: a hot loop whose body calls a
// small non-recursive callee every iteration. With inlining enabled the
// whole loop — CALL included — must run in the register tier.
const callLoopSrc = `
global n
func main() locals i s
  const 0
  store s
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load s
  load i
  call leaf 1
  iadd
  store s
  iinc i 1
  jmp loop
done:
  load s
  ret
end
func leaf(x) locals y
  load x
  load x
  imul
  store y
  load y
  const 1
  iadd
  ret
end
`

// TestCallInliningRunsInRegisterTier is the acceptance gate of the
// inlining work: for the call-heavy shape, trace building must not
// degrade at the CALL (the "call" degradation counter stays zero), the
// call site must be inlined, and every virtual observable — invocation
// counts and per-callee cycle ledgers included — must be bit-identical
// to pure interpretation.
func TestCallInliningRunsInRegisterTier(t *testing.T) {
	p := mustProg(t, callLoopSrc)
	g := map[string]bytecode.Value{"n": bytecode.Int(500)}
	ref := snapRun(t, p, g, func(e *Engine) { e.DisableBatching = true })

	ResetTraceStats()
	got := snapRun(t, p, g, func(e *Engine) { e.EagerRegTier = true })
	snapIdentical(t, "inline", ref, got)
	st := ReadTraceStats()
	if st.Degrade["call"] != 0 {
		t.Errorf("call-heavy loop degraded at CALL %d times; want 0 (stats %+v)", st.Degrade["call"], st)
	}
	if st.Built == 0 {
		t.Errorf("no traces built: %+v", st)
	}
	if st.InlinedCalls == 0 {
		t.Errorf("no inlined calls executed: %+v", st)
	}

	// Same program with inlining refused: the loop degrades at the CALL.
	ResetTraceStats()
	got = snapRun(t, p, g, func(e *Engine) { e.EagerRegTier = true; e.DisableCallInline = true })
	snapIdentical(t, "noinline", ref, got)
	st = ReadTraceStats()
	if st.Degrade["call"] == 0 {
		t.Errorf("inlining disabled but no call degradation recorded: %+v", st)
	}

	// Full ladder for good measure (OSR, stress deopt, ...).
	checkTraceLadder(t, callLoopSrc, g)
}

// TestInlineGuardFailureDeopts swaps the callee's code mid-run — the
// recompilation pattern — so the inline guard's fingerprint check fails
// and the trace must side-exit at the CALL and replay it through the
// interpreter, which then serves the new code. Reference and traced runs
// apply the identical swap, so every observable must still match.
func TestInlineGuardFailureDeopts(t *testing.T) {
	p := mustProg(t, callLoopSrc)
	g := map[string]bytecode.Value{"n": bytecode.Int(400)}
	leafIdx, ok := p.FuncIndex("leaf")
	if !ok {
		t.Fatal("no leaf function")
	}

	// The swapped-in code is semantically identical but at a different
	// tier (different costs), so its fingerprint — and the virtual clock
	// from the swap point on — legitimately differs from the original.
	withSwap := func(extra func(*Engine)) func(*Engine) {
		return func(e *Engine) {
			slow := NewCode(leafIdx, p.Funcs[leafIdx], -1, 100)
			fast := NewCode(leafIdx, p.Funcs[leafIdx], 2, 40)
			cur := slow
			base := e.Provider
			basePeek := e.PeekCode
			e.Provider = func(fn int) *Code {
				if fn == leafIdx {
					return cur
				}
				return base(fn)
			}
			e.PeekCode = func(fn int) *Code {
				if fn == leafIdx {
					return cur
				}
				return basePeek(fn)
			}
			e.OnInvoke = func(fn int, count int64) {
				if fn == leafIdx && count == 100 {
					cur = fast
				}
			}
			if extra != nil {
				extra(e)
			}
		}
	}

	ref := snapRun(t, p, g, withSwap(func(e *Engine) { e.DisableBatching = true }))
	ResetTraceStats()
	got := snapRun(t, p, g, withSwap(func(e *Engine) { e.EagerRegTier = true }))
	snapIdentical(t, "guard-fail", ref, got)
	st := ReadTraceStats()
	if st.GuardFails == 0 {
		t.Errorf("code swap produced no inline guard failures: %+v", st)
	}
	if st.InlinedCalls == 0 {
		t.Errorf("no inlined calls before the swap: %+v", st)
	}
}

// TestInlineHookChargeDeopts installs an OnInvoke hook that charges the
// clock (the controller-recompile pattern): charges landing inside a
// trace's prepaid window force the entry deopt — the callee frame is
// materialized at pc 0 and the interpreter continues inside the call.
func TestInlineHookChargeDeopts(t *testing.T) {
	p := mustProg(t, callLoopSrc)
	g := map[string]bytecode.Value{"n": bytecode.Int(300)}
	leafIdx, ok := p.FuncIndex("leaf")
	if !ok {
		t.Fatal("no leaf function")
	}
	withHook := func(extra func(*Engine)) func(*Engine) {
		return func(e *Engine) {
			e.OnInvoke = func(fn int, count int64) {
				if fn == leafIdx && count%50 == 0 {
					e.AddCycles(10_000) // deterministic "compile" charge
				}
			}
			if extra != nil {
				extra(e)
			}
		}
	}
	ref := snapRun(t, p, g, withHook(func(e *Engine) { e.DisableBatching = true }))
	ResetTraceStats()
	got := snapRun(t, p, g, withHook(func(e *Engine) { e.EagerRegTier = true }))
	snapIdentical(t, "hook-charge", ref, got)
	st := ReadTraceStats()
	if st.InlinedCalls == 0 {
		t.Errorf("no inlined calls executed under hook: %+v", st)
	}
}

// TestInlineDepthTrap drives the call-heavy loop at the very edge of the
// call-depth budget, so the inlined CALL's depth check must fire — with
// the exact trap identity (callee name, pc 0, message) and clock position
// (after the CALL charge, before the invocation count) the interpreter
// produces.
func TestInlineDepthTrap(t *testing.T) {
	src := `
global n
func main() locals r
  const ` + fmt.Sprint(maxCallDepth-2) + `
  call down 1
  ret
end
func down(d) locals i s
  load d
  jz hot
  load d
  const 1
  isub
  call down 1
  ret
hot:
  const 0
  store s
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load s
  load i
  call leaf 1
  iadd
  store s
  iinc i 1
  jmp loop
done:
  load s
  ret
end
func leaf(x)
  load x
  const 1
  iadd
  ret
end
`
	p := mustProg(t, src)
	g := map[string]bytecode.Value{"n": bytecode.Int(10)}
	ref := snapRun(t, p, g, func(e *Engine) { e.DisableBatching = true })
	if !strings.Contains(ref.trap, "call depth exceeds") {
		t.Fatalf("reference did not depth-trap: trap=%q", ref.trap)
	}
	ResetTraceStats()
	got := snapRun(t, p, g, func(e *Engine) { e.EagerRegTier = true })
	snapIdentical(t, "depth-trap", ref, got)
}

// TestStressDeoptCounts proves ForcedDeopt actually exercises the
// deopt boundary: every non-OSR trace execution hands control back after
// one iteration.
func TestStressDeoptCounts(t *testing.T) {
	p := mustProg(t, callLoopSrc)
	g := map[string]bytecode.Value{"n": bytecode.Int(200)}
	ref := snapRun(t, p, g, func(e *Engine) { e.DisableBatching = true })
	ResetTraceStats()
	got := snapRun(t, p, g, func(e *Engine) { e.EagerRegTier = true; e.StressDeopt = true })
	snapIdentical(t, "stress-deopt", ref, got)
	if st := ReadTraceStats(); st.Deopts == 0 {
		t.Errorf("StressDeopt recorded no deopts: %+v", st)
	}
}
