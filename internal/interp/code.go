// Package interp implements the execution engine of the evolvable VM: an
// evaluator that runs executable code forms under a deterministic
// virtual-cycle clock with stride-based method sampling.
//
// The same evaluator executes every compilation tier. The baseline tier
// (level −1) runs a function's original bytecode at the baseline per-opcode
// cycle costs; optimized tiers (levels 0–2, produced by internal/jit) run
// rewritten bytecode at reduced per-opcode costs, modelling better code
// generation. Virtual cycles make every run bit-reproducible — the
// substitution for wall-clock time on the paper's hardware (see DESIGN.md).
package interp

import (
	"math"
	"sync/atomic"

	"evolvevm/internal/bytecode"
)

// BaselineScalePct is the per-op cost multiplier of the baseline
// interpreter tier, in percent.
const BaselineScalePct = 100

// BaseCost returns the baseline interpreter cycle cost of op, read from
// the generated single-source cost table in internal/bytecode.
func BaseCost(op bytecode.Op) int64 { return bytecode.OpCost(op) }

// Code is an executable form of one function: instructions (original or
// optimizer-rewritten), a constant pool, and precomputed per-instruction
// cycle costs. The VM keeps one current Code per function and swaps it on
// recompilation.
type Code struct {
	FnIdx    int
	Name     string
	Level    int // −1 baseline, 0..2 optimized tiers
	Instrs   []bytecode.Instr
	Consts   []bytecode.Value
	NArgs    int
	NLocals  int
	MaxStack int
	// Cost[i] is the cycle charge of executing Instrs[i].
	Cost []int64
	// Base[i] is the unscaled baseline cost of Instrs[i], used to
	// attribute tier-independent "work" to functions (the oracle's view
	// of how much computation a method performed).
	Base []int64

	// plans caches the host-performance execution plans (see fuse.go):
	// slot 0 without superinstruction fusion, slot 1 with it. Plans are
	// built lazily on first execution and are immutable afterwards, so a
	// Code may be shared by concurrently running engines (the harness
	// code cache does exactly that).
	plans [2]atomic.Pointer[plan]

	// closures caches the closure-threaded forms of the plans (see
	// closure.go), same slot convention. Built once hot, immutable after,
	// shared exactly like plans — a Code that travels through jit.Cache
	// carries its closure program to every later run.
	closures [2]atomic.Pointer[closPlan]

	// traces caches the register-converted hot-loop traces (trace.go,
	// regir.go): slot 0 without CALL inlining, slot 1 with it. Trace
	// conversion reads the raw instruction stream over the plan's segment
	// geometry, which is identical with and without superinstruction
	// fusion, so fused and unfused runs share one trace program per
	// inline mode. Built once hot, immutable after, shared across engines
	// and runs exactly like plans and closures — a Code cached in
	// jit.Cache carries its register plans, OSR entry maps, and inline
	// guards to every later run (the guards re-validate against each
	// run's own code table, so a stale inlined body can never execute).
	traces [2]atomic.Pointer[tracePlan]

	// fp caches Fingerprint (0 = not yet computed).
	fp atomic.Uint64

	// samples counts deterministic sampler ticks attributed to this code
	// across every engine and run sharing it — the hotness signal that
	// triggers the closure tier. Host-side only: the count never feeds
	// back into any virtual observable.
	samples atomic.Int64

	// pending is the in-flight background-compile bitmask (one bit per
	// CompileKind × mode, see pendingBit in compile.go). While a bit is
	// held, engines sharing the Code skip re-enqueueing that build, so
	// the hot path touches the compile queue at most once per missing
	// plan.
	pending atomic.Uint32
}

// ClosureHotSamples is the number of sampler ticks after which an
// optimized Code (level ≥ 0) is closure-threaded. One tick equals a full
// sample stride of executed cycles attributed to the function, so two
// ticks mark genuinely hot code while staying early enough that the
// threaded form covers most of the remaining execution.
const ClosureHotSamples = 2

// TraceHotSamples is the sampler-tick threshold after which an optimized
// Code's loops are register-converted (trace.go). Same threshold as the
// closure tier: both forms are built at the same promotion point, and a
// trace additionally proves itself by back-edge arrivals before it runs
// (traceHotEntries).
const TraceHotSamples = 2

// noteSample records one sampler tick for hotness tracking.
func (c *Code) noteSample() { c.samples.Add(1) }

// Samples returns the cumulative sampler ticks attributed to this code
// (diagnostics).
func (c *Code) Samples() int64 { return c.samples.Load() }

// installClosurePlan builds the closure-threaded form for the given
// fusion mode and installs it CAS-once: of concurrent builders, exactly
// one plan lands and every loser discards its build (counted in
// PlanInstallStats). Promotion policy — hotness, eagerness, sync vs
// async — lives in Engine.closureTier; this is only the build step, so
// background workers and the engine's own goroutine share one path.
// Reports whether this caller's plan was installed.
func (c *Code) installClosurePlan(fuse bool) bool {
	slot := 0
	if fuse {
		slot = 1
	}
	if c.closures[slot].Load() != nil {
		return false
	}
	p := buildClosurePlan(c, fuse)
	if !c.closures[slot].CompareAndSwap(nil, p) {
		compileStats.lostClosures.Add(1)
		return false
	}
	return true
}

// installTracePlan builds the register-converted trace plan for the
// given inline mode and installs it CAS-once against the plan it is
// replacing (nil on first build; the retried plan on a provisional-
// inline rebuild — each callee flips nil→non-nil at most once per code
// table, so rebuilds are bounded). Competing builders may inline against
// different callee snapshots, but every inlined site re-guards at run
// time, so whichever plan lands is valid under any code table; losers
// discard their build (counted in PlanInstallStats). Reports whether
// this caller's plan was installed.
func (c *Code) installTracePlan(inline bool, peek func(int) *Code) bool {
	slot := 0
	if inline {
		slot = 1
	}
	old := c.traces[slot].Load()
	if old != nil && !old.retry(peek) {
		return false
	}
	p := buildTracePlan(c, inline, peek)
	if !c.traces[slot].CompareAndSwap(old, p) {
		compileStats.lostTraces.Add(1)
		return false
	}
	return true
}

// TraceReady reports whether a trace plan has been built for this code
// in either inline mode (diagnostics; cache tests use it to prove
// register plans travel with cached Codes).
func (c *Code) TraceReady() bool {
	return c.traces[0].Load() != nil || c.traces[1].Load() != nil
}

// TraceInfo summarizes the built trace plan of one inline mode: the
// number of loop-head traces, OSR entry points, and inlined call sites.
// All zeros when no plan is built. Diagnostics; the jit.Cache round-trip
// test uses it to prove OSR entry maps and inline guards travel with
// cached Codes.
func (c *Code) TraceInfo(inline bool) (heads, osrEntries, inlinedCalls int) {
	slot := 0
	if inline {
		slot = 1
	}
	tp := c.traces[slot].Load()
	if tp == nil {
		return 0, 0, 0
	}
	for _, t := range tp.tr {
		if t != nil {
			heads++
			inlinedCalls += len(t.calls)
		}
	}
	for _, t := range tp.osr {
		if t != nil {
			osrEntries++
			inlinedCalls += len(t.calls)
		}
	}
	return heads, osrEntries, inlinedCalls
}

// Fingerprint returns a content hash of the code's observable execution
// behaviour — level, arity, locals, instruction stream, constant pool,
// and cost table — used as the inline guard of the trace tier: an
// inlined callee body may run only while the engine's current code for
// that function still fingerprints the same. Computed lazily and cached;
// two Codes with equal fingerprints execute identically under the
// engine.
func (c *Code) Fingerprint() uint64 {
	if fp := c.fp.Load(); fp != 0 {
		return fp
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(int64(c.Level)))
	mix(uint64(c.NArgs))
	mix(uint64(c.NLocals))
	mix(uint64(len(c.Instrs)))
	for _, in := range c.Instrs {
		mix(uint64(in.Op))
		mix(uint64(int64(in.A)))
		mix(uint64(int64(in.B)))
	}
	mix(uint64(len(c.Consts)))
	for _, v := range c.Consts {
		mix(uint64(v.Kind))
		mix(uint64(v.I))
		mix(math.Float64bits(v.F))
	}
	for _, cost := range c.Cost {
		mix(uint64(cost))
	}
	if h == 0 {
		h = 1 // reserve 0 for "not yet computed"
	}
	c.fp.Store(h)
	return h
}

// planFor returns the execution plan of the code, building it on first
// use. The build is deterministic, so whichever of several concurrent
// builders wins the CAS installs an identical plan; losers discard
// theirs (counted in PlanInstallStats) rather than overwriting.
func (c *Code) planFor(fuse bool) *plan {
	slot := 0
	if fuse {
		slot = 1
	}
	if p := c.plans[slot].Load(); p != nil {
		return p
	}
	p := buildPlan(c, fuse)
	if !c.plans[slot].CompareAndSwap(nil, p) {
		compileStats.lostPlans.Add(1)
		return c.plans[slot].Load()
	}
	return p
}

// NewCode builds an executable form from a function body at the given
// tier cost scale (percent of baseline per-op cost, minimum charge 1).
func NewCode(fnIdx int, f *bytecode.Function, level, scalePct int) *Code {
	c := &Code{
		FnIdx:    fnIdx,
		Name:     f.Name,
		Level:    level,
		Instrs:   f.Code,
		Consts:   f.Consts,
		NArgs:    f.NArgs,
		NLocals:  f.NLocals,
		MaxStack: f.MaxStack,
		Cost:     make([]int64, len(f.Code)),
		Base:     make([]int64, len(f.Code)),
	}
	for i, in := range f.Code {
		cost := bytecode.OpCost(in.Op) * int64(scalePct) / 100
		if cost < 1 {
			cost = 1
		}
		c.Cost[i] = cost
		c.Base[i] = bytecode.OpCost(in.Op)
	}
	return c
}

// StaticCycles returns the sum of per-instruction costs — a size proxy used
// in diagnostics.
func (c *Code) StaticCycles() int64 {
	var n int64
	for _, v := range c.Cost {
		n += v
	}
	return n
}
