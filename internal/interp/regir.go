package interp

import (
	"math"

	"evolvevm/internal/bytecode"
)

// This file implements the register IR of the trace tier (trace.go) and
// the stack-to-register converter that produces it. A linearized hot-loop
// body (one iteration of bytecode, discovered over the fusion plan's
// segment geometry) is abstract-interpreted with a symbolic operand
// stack: LOADs become register references (copy propagation), pushed
// immediates and constants stay symbolic until a consumer needs them in a
// register (constant rematerialization), and pure stack shuffles (DUP,
// SWAP, POP) compile to nothing. What remains is a short register
// program over a file that mirrors the frame's locals in its low slots —
// loop-carried values never touch the operand stack while the trace
// runs.
//
// The conversion refuses anything it cannot prove equivalent and returns
// nil, degrading that loop to the closure/fused path: ops outside the
// segment-safe set (which excludes CALL/RET/NEWARR/HALT by plan
// construction), operand-stack pops below the loop-entry depth or a
// non-empty symbolic stack at the back edge ("escaping stack depth"),
// and register or cost overflows.
//
// Bit identity is inherited from the same two mechanisms as the fused
// and closure tiers (fuse.go §comment, DESIGN.md §10): a whole iteration
// is charged only when it fits inside the current sample window, and
// every side exit or trap carries the summed charge of the unexecuted
// instruction suffix so the rollback lands on exactly the ledger state
// of the per-instruction loop. Register writes are invisible between
// exits by construction: locals are copied in at trace entry and written
// back at every exit, and nothing observable (globals, output, heap)
// is ever reordered or elided — only stack and local traffic is.

// Trace conversion limits.
const (
	// traceMaxInstrs caps one linearized iteration.
	traceMaxInstrs = 256
	// traceMaxRegs caps the register file: the function's locals plus the
	// converter's temporaries.
	traceMaxRegs = 64
)

// rOp is a register-IR opcode.
type rOp uint8

const (
	rLoadI   rOp = iota // regs[d] = Int(a)
	rLoadC              // regs[d] = Consts[a]
	rMove               // regs[d] = regs[a]
	rGLoad              // regs[d] = Globals[a]
	rGStore             // Globals[a] = regs[b]
	rInc                // regs[d].I += a (kind-preserving, like IINC)
	rBin                // regs[d] = Int(intBin(sub, regs[a].I, regs[b].I))
	rBinI               // regs[d] = Int(intBin(sub, regs[a].I, b))
	rCmp                // regs[d] = Bool(intCmp(sub, regs[a].I, regs[b].I))
	rCmpI               // regs[d] = Bool(intCmp(sub, regs[a].I, b))
	rNeg                // regs[d] = Int(-regs[a].I)
	rNot                // regs[d] = Int(^regs[a].I)
	rFBin               // regs[d] = Float(fltBin(sub, regs[a].AsFloat(), regs[b].AsFloat()))
	rFCmp               // regs[d] = Bool(fltCmp(sub, regs[a].AsFloat(), regs[b].AsFloat()))
	rFNeg               // regs[d] = Float(-regs[a].AsFloat())
	rFSqrt              // regs[d] = Float(math.Sqrt(regs[a].AsFloat()))
	rFAbs               // regs[d] = Float(math.Abs(regs[a].AsFloat()))
	rI2F                // regs[d] = Float(float64(regs[a].I))
	rF2I                // regs[d] = Int(int64(regs[a].F))
	rDivMod             // regs[d] = Int(regs[a].I / or % regs[b].I); trap x on zero
	rALoad              // regs[d] = Array(regs[a])[regs[b].AsInt()]; trap x
	rAStore             // Array(regs[a])[regs[b].AsInt()] = regs[d]; trap x
	rALen               // regs[d] = Int(len(Array(regs[a]))); trap x
	rPrint              // Output = append(Output, regs[a])
	rBrTrue             // exit x when regs[a].IsTrue()
	rBrFalse            // exit x when !regs[a].IsTrue()
	rBrCmp              // exit x when intCmp(sub, regs[a].I, regs[b].I) == (d != 0)
	rBrCmpI             // exit x when intCmp(sub, regs[a].I, b) == (d != 0)
	rBrFCmp             // exit x when fltCmp(sub, regs[a].AsFloat(), regs[b].AsFloat()) == (d != 0)
)

// rins is one register instruction. d is the destination register except
// for rAStore (value source), rInc (the incremented local), and the
// branch-exit ops (the wanted condition sense, 0/1). x indexes the
// trace's exit table for branches and its trap table for trapping ops.
type rins struct {
	op   rOp
	sub  bytecode.Op // arithmetic/comparison selector for grouped ops
	d    int32
	a, b int32
	x    int32
}

// rWritesD reports whether op writes regs[d] as a pure result — the set
// the store peephole may retarget at a local.
func rWritesD(op rOp) bool {
	switch op {
	case rLoadI, rLoadC, rMove, rGLoad, rBin, rBinI, rCmp, rCmpI,
		rNeg, rNot, rFBin, rFCmp, rFNeg, rFSqrt, rFAbs, rI2F, rF2I,
		rDivMod, rALoad, rALen:
		return true
	}
	return false
}

// rpush is one value the engine must push onto the real operand stack
// when a side exit fires: a register's current value, a rematerialized
// immediate, or a constant-pool entry. kind uses the symKind numbering.
type rpush struct {
	kind uint8
	v    int32
}

// rexit is one side exit: the off-trace resume pc plus the suffix
// rollback (summed Cost/Base of the linearized instructions after the
// branch) and the symbolic stack to rematerialize.
type rexit struct {
	pc, rem, remBase int32
	push             []rpush
}

// rtrap is the rollback record of one trapping instruction: suffix
// charges and the successor pc the accounted loop would report.
type rtrap struct {
	rem, remBase, tpc int32
}

// fltBin applies a float binop, mirroring the accounted interpreter.
func fltBin(op bytecode.Op, a, b float64) float64 {
	switch op {
	case bytecode.FADD:
		return a + b
	case bytecode.FSUB:
		return a - b
	case bytecode.FMUL:
		return a * b
	default: // FDIV
		return a / b
	}
}

// fltCmp applies a float comparison, mirroring the accounted interpreter.
func fltCmp(op bytecode.Op, a, b float64) bool {
	switch op {
	case bytecode.FEQ:
		return a == b
	case bytecode.FNE:
		return a != b
	case bytecode.FLT:
		return a < b
	case bytecode.FLE:
		return a <= b
	case bytecode.FGT:
		return a > b
	default: // FGE
		return a >= b
	}
}

// symKind classifies a symbolic stack slot.
type symKind uint8

const (
	symReg   symKind = iota // a register (local or temp) holds the value
	symImm                  // an int32 immediate, not yet materialized
	symConst                // a constant-pool entry, not yet materialized
)

// sym is one slot of the converter's symbolic operand stack.
type sym struct {
	k symKind
	v int32
}

// rconv is the conversion state for one trace.
type rconv struct {
	c            *Code
	head         int
	pcs          []int   // linearized instruction pcs, one iteration
	suf, sufBase []int32 // suffix charge sums over pcs (len(pcs)+1)

	ins   []rins
	exits []rexit
	traps []rtrap

	stk   []sym
	nloc  int
	nregs int
	ref   []int16 // per-register refcount; slots < nloc are locals (untracked)
}

// convertTrace compiles one linearized loop iteration into a trace, or
// nil when any instruction defeats the conversion.
func convertTrace(c *Code, head int, pcs []int) *trace {
	if c.NLocals >= traceMaxRegs {
		return nil
	}
	n := len(pcs)
	cv := &rconv{
		c:       c,
		head:    head,
		pcs:     pcs,
		suf:     make([]int32, n+1),
		sufBase: make([]int32, n+1),
		nloc:    c.NLocals,
		nregs:   c.NLocals,
		ref:     make([]int16, c.NLocals),
	}
	var cost, base int64
	for k := n - 1; k >= 0; k-- {
		cost += c.Cost[pcs[k]]
		base += c.Base[pcs[k]]
		if cost > math.MaxInt32 {
			return nil
		}
		cv.suf[k] = cv.suf[k+1] + int32(c.Cost[pcs[k]])
		cv.sufBase[k] = cv.sufBase[k+1] + int32(c.Base[pcs[k]])
	}
	for i := 0; i < n; i++ {
		if !cv.instr(i) {
			return nil
		}
	}
	if len(cv.stk) != 0 {
		return nil // iteration not stack-neutral: escaping stack depth
	}
	t := &trace{
		head:   int32(head),
		cost:   cost,
		base:   base,
		nloc:   int32(cv.nloc),
		nregs:  int32(cv.nregs),
		consts: c.Consts,
		ins:    cv.ins,
		exits:  cv.exits,
		traps:  cv.traps,
	}
	return t
}

func (cv *rconv) emit(in rins) { cv.ins = append(cv.ins, in) }

func (cv *rconv) push(s sym) { cv.stk = append(cv.stk, s) }

// pop takes the top symbolic slot; failure means the instruction would
// consume a value pushed before the loop was entered.
func (cv *rconv) pop() (sym, bool) {
	if len(cv.stk) == 0 {
		return sym{}, false
	}
	s := cv.stk[len(cv.stk)-1]
	cv.stk = cv.stk[:len(cv.stk)-1]
	return s, true
}

// alloc claims a free temporary register (refcount 1), or -1 when the
// file is full.
func (cv *rconv) alloc() int32 {
	for i := cv.nloc; i < cv.nregs; i++ {
		if cv.ref[i] == 0 {
			cv.ref[i] = 1
			return int32(i)
		}
	}
	if cv.nregs >= traceMaxRegs {
		return -1
	}
	cv.ref = append(cv.ref, 1)
	cv.nregs++
	return int32(cv.nregs - 1)
}

func (cv *rconv) retain(r int32) {
	if int(r) >= cv.nloc {
		cv.ref[r]++
	}
}

func (cv *rconv) release(r int32) {
	if int(r) >= cv.nloc {
		cv.ref[r]--
	}
}

func (cv *rconv) releaseSym(s sym) {
	if s.k == symReg {
		cv.release(s.v)
	}
}

// use returns a register holding s, materializing immediates and
// constants into a fresh temp. The caller releases the returned register
// after emitting its consumer (a no-op for locals; for temps this drops
// either the symbolic stack's reference or the materialization's).
func (cv *rconv) use(s sym) int32 {
	switch s.k {
	case symReg:
		return s.v
	case symImm:
		d := cv.alloc()
		if d >= 0 {
			cv.emit(rins{op: rLoadI, d: d, a: s.v})
		}
		return d
	default:
		d := cv.alloc()
		if d >= 0 {
			cv.emit(rins{op: rLoadC, d: d, a: s.v})
		}
		return d
	}
}

// immVal extracts the int64 the accounted interpreter would read from
// s's .I field, for constant folding and reg-imm forms.
func (cv *rconv) immVal(s sym) (int64, bool) {
	switch s.k {
	case symImm:
		return int64(s.v), true
	case symConst:
		return cv.c.Consts[s.v].I, true
	}
	return 0, false
}

// spillLocal rewrites symbolic stack slots that reference local k into a
// fresh temp holding its current value — required before any write to k
// so earlier LOADs keep observing the pre-write value.
func (cv *rconv) spillLocal(k int32) bool {
	t := int32(-1)
	for j := range cv.stk {
		if cv.stk[j].k == symReg && cv.stk[j].v == k {
			if t < 0 {
				if t = cv.alloc(); t < 0 {
					return false
				}
				cv.emit(rins{op: rMove, d: t, a: k})
			} else {
				cv.retain(t)
			}
			cv.stk[j] = sym{k: symReg, v: t}
		}
	}
	return true
}

// store compiles "local k = v". When v is a dead temp produced by the
// immediately preceding instruction, that instruction is retargeted at k
// and the move disappears (safe: spillLocal already ran, so no live
// symbolic slot reads k, and no instruction was emitted after the
// producer).
func (cv *rconv) store(k int32, v sym) {
	switch v.k {
	case symImm:
		cv.emit(rins{op: rLoadI, d: k, a: v.v})
	case symConst:
		cv.emit(rins{op: rLoadC, d: k, a: v.v})
	default:
		if int(v.v) >= cv.nloc {
			cv.release(v.v)
			if cv.ref[v.v] == 0 && len(cv.ins) > 0 {
				if last := &cv.ins[len(cv.ins)-1]; last.d == v.v && rWritesD(last.op) {
					last.d = k
					return
				}
			}
			cv.emit(rins{op: rMove, d: k, a: v.v})
			return
		}
		if v.v != k {
			cv.emit(rins{op: rMove, d: k, a: v.v})
		}
	}
}

// addExit records a side exit at linearized position i resuming at
// target, snapshotting the symbolic stack (condition already popped) for
// rematerialization.
func (cv *rconv) addExit(i, target int) int32 {
	var push []rpush
	if len(cv.stk) > 0 {
		push = make([]rpush, len(cv.stk))
		for j, s := range cv.stk {
			push[j] = rpush{kind: uint8(s.k), v: s.v}
		}
	}
	cv.exits = append(cv.exits, rexit{
		pc:      int32(target),
		rem:     cv.suf[i+1],
		remBase: cv.sufBase[i+1],
		push:    push,
	})
	return int32(len(cv.exits) - 1)
}

// addTrap records the rollback data of a trapping instruction at
// linearized position i.
func (cv *rconv) addTrap(i int) int32 {
	cv.traps = append(cv.traps, rtrap{
		rem:     cv.suf[i+1],
		remBase: cv.sufBase[i+1],
		tpc:     int32(cv.pcs[i] + 1),
	})
	return int32(len(cv.traps) - 1)
}

// instr converts the instruction at linearized position i; false aborts
// the trace.
func (cv *rconv) instr(i int) bool {
	pc := cv.pcs[i]
	in := cv.c.Instrs[pc]
	switch in.Op {
	case bytecode.NOP:

	case bytecode.IPUSH:
		cv.push(sym{k: symImm, v: in.A})
	case bytecode.CONST:
		cv.push(sym{k: symConst, v: in.A})
	case bytecode.LOAD:
		cv.push(sym{k: symReg, v: in.A})

	case bytecode.STORE:
		v, ok := cv.pop()
		if !ok || !cv.spillLocal(in.A) {
			return false
		}
		cv.store(in.A, v)

	case bytecode.GLOAD:
		// Globals are mutable under the trace's own GSTOREs, so a global
		// read materializes immediately instead of staying symbolic.
		d := cv.alloc()
		if d < 0 {
			return false
		}
		cv.emit(rins{op: rGLoad, d: d, a: in.A})
		cv.push(sym{k: symReg, v: d})
	case bytecode.GSTORE:
		v, ok := cv.pop()
		if !ok {
			return false
		}
		r := cv.use(v)
		if r < 0 {
			return false
		}
		cv.emit(rins{op: rGStore, a: in.A, b: r})
		cv.release(r)

	case bytecode.IINC:
		if !cv.spillLocal(in.A) {
			return false
		}
		cv.emit(rins{op: rInc, d: in.A, a: in.B})

	case bytecode.POP:
		v, ok := cv.pop()
		if !ok {
			return false
		}
		cv.releaseSym(v)
	case bytecode.DUP:
		if len(cv.stk) == 0 {
			return false
		}
		s := cv.stk[len(cv.stk)-1]
		if s.k == symReg {
			cv.retain(s.v)
		}
		cv.push(s)
	case bytecode.SWAP:
		n := len(cv.stk)
		if n < 2 {
			return false
		}
		cv.stk[n-1], cv.stk[n-2] = cv.stk[n-2], cv.stk[n-1]

	case bytecode.IADD, bytecode.ISUB, bytecode.IMUL, bytecode.IAND,
		bytecode.IOR, bytecode.IXOR, bytecode.ISHL, bytecode.ISHR:
		b, ok := cv.pop()
		if !ok {
			return false
		}
		a, ok := cv.pop()
		if !ok {
			return false
		}
		av, aImm := cv.immVal(a)
		bv, bImm := cv.immVal(b)
		if aImm && bImm {
			if r := intBin(in.Op, av, bv); r >= math.MinInt32 && r <= math.MaxInt32 {
				cv.push(sym{k: symImm, v: int32(r)})
				return true
			}
		}
		if bImm && bv >= math.MinInt32 && bv <= math.MaxInt32 {
			ra := cv.use(a)
			if ra < 0 {
				return false
			}
			cv.release(ra)
			d := cv.alloc()
			if d < 0 {
				return false
			}
			cv.emit(rins{op: rBinI, sub: in.Op, d: d, a: ra, b: int32(bv)})
			cv.push(sym{k: symReg, v: d})
			return true
		}
		ra := cv.use(a)
		rb := cv.use(b)
		if ra < 0 || rb < 0 {
			return false
		}
		cv.release(ra)
		cv.release(rb)
		d := cv.alloc()
		if d < 0 {
			return false
		}
		cv.emit(rins{op: rBin, sub: in.Op, d: d, a: ra, b: rb})
		cv.push(sym{k: symReg, v: d})

	case bytecode.IEQ, bytecode.INE, bytecode.ILT, bytecode.ILE,
		bytecode.IGT, bytecode.IGE:
		b, ok := cv.pop()
		if !ok {
			return false
		}
		a, ok := cv.pop()
		if !ok {
			return false
		}
		av, aImm := cv.immVal(a)
		bv, bImm := cv.immVal(b)
		if aImm && bImm {
			// Bool() is Int(0/1), so the fold stays an integer immediate.
			r := int32(0)
			if intCmp(in.Op, av, bv) {
				r = 1
			}
			cv.push(sym{k: symImm, v: r})
			return true
		}
		if bImm && bv >= math.MinInt32 && bv <= math.MaxInt32 {
			ra := cv.use(a)
			if ra < 0 {
				return false
			}
			cv.release(ra)
			d := cv.alloc()
			if d < 0 {
				return false
			}
			cv.emit(rins{op: rCmpI, sub: in.Op, d: d, a: ra, b: int32(bv)})
			cv.push(sym{k: symReg, v: d})
			return true
		}
		ra := cv.use(a)
		rb := cv.use(b)
		if ra < 0 || rb < 0 {
			return false
		}
		cv.release(ra)
		cv.release(rb)
		d := cv.alloc()
		if d < 0 {
			return false
		}
		cv.emit(rins{op: rCmp, sub: in.Op, d: d, a: ra, b: rb})
		cv.push(sym{k: symReg, v: d})

	case bytecode.INEG, bytecode.INOT:
		v, ok := cv.pop()
		if !ok {
			return false
		}
		if iv, isImm := cv.immVal(v); isImm {
			r := -iv
			if in.Op == bytecode.INOT {
				r = ^iv
			}
			if r >= math.MinInt32 && r <= math.MaxInt32 {
				cv.push(sym{k: symImm, v: int32(r)})
				return true
			}
		}
		rv := cv.use(v)
		if rv < 0 {
			return false
		}
		cv.release(rv)
		d := cv.alloc()
		if d < 0 {
			return false
		}
		op := rNeg
		if in.Op == bytecode.INOT {
			op = rNot
		}
		cv.emit(rins{op: op, d: d, a: rv})
		cv.push(sym{k: symReg, v: d})

	case bytecode.FADD, bytecode.FSUB, bytecode.FMUL, bytecode.FDIV,
		bytecode.FEQ, bytecode.FNE, bytecode.FLT, bytecode.FLE,
		bytecode.FGT, bytecode.FGE:
		b, ok := cv.pop()
		if !ok {
			return false
		}
		a, ok := cv.pop()
		if !ok {
			return false
		}
		ra := cv.use(a)
		rb := cv.use(b)
		if ra < 0 || rb < 0 {
			return false
		}
		cv.release(ra)
		cv.release(rb)
		d := cv.alloc()
		if d < 0 {
			return false
		}
		op := rFBin
		switch in.Op {
		case bytecode.FEQ, bytecode.FNE, bytecode.FLT, bytecode.FLE,
			bytecode.FGT, bytecode.FGE:
			op = rFCmp
		}
		cv.emit(rins{op: op, sub: in.Op, d: d, a: ra, b: rb})
		cv.push(sym{k: symReg, v: d})

	case bytecode.FNEG, bytecode.FSQRT, bytecode.FABS, bytecode.I2F, bytecode.F2I:
		v, ok := cv.pop()
		if !ok {
			return false
		}
		rv := cv.use(v)
		if rv < 0 {
			return false
		}
		cv.release(rv)
		d := cv.alloc()
		if d < 0 {
			return false
		}
		var op rOp
		switch in.Op {
		case bytecode.FNEG:
			op = rFNeg
		case bytecode.FSQRT:
			op = rFSqrt
		case bytecode.FABS:
			op = rFAbs
		case bytecode.I2F:
			op = rI2F
		default:
			op = rF2I
		}
		cv.emit(rins{op: op, d: d, a: rv})
		cv.push(sym{k: symReg, v: d})

	case bytecode.IDIV, bytecode.IMOD:
		b, ok := cv.pop()
		if !ok {
			return false
		}
		a, ok := cv.pop()
		if !ok {
			return false
		}
		ra := cv.use(a)
		rb := cv.use(b)
		if ra < 0 || rb < 0 {
			return false
		}
		cv.release(ra)
		cv.release(rb)
		d := cv.alloc()
		if d < 0 {
			return false
		}
		cv.emit(rins{op: rDivMod, sub: in.Op, d: d, a: ra, b: rb, x: cv.addTrap(i)})
		cv.push(sym{k: symReg, v: d})

	case bytecode.ALOAD:
		idx, ok := cv.pop()
		if !ok {
			return false
		}
		ref, ok := cv.pop()
		if !ok {
			return false
		}
		rr := cv.use(ref)
		ri := cv.use(idx)
		if rr < 0 || ri < 0 {
			return false
		}
		cv.release(rr)
		cv.release(ri)
		d := cv.alloc()
		if d < 0 {
			return false
		}
		cv.emit(rins{op: rALoad, d: d, a: rr, b: ri, x: cv.addTrap(i)})
		cv.push(sym{k: symReg, v: d})

	case bytecode.ASTORE:
		val, ok := cv.pop()
		if !ok {
			return false
		}
		idx, ok := cv.pop()
		if !ok {
			return false
		}
		ref, ok := cv.pop()
		if !ok {
			return false
		}
		rr := cv.use(ref)
		ri := cv.use(idx)
		rv := cv.use(val)
		if rr < 0 || ri < 0 || rv < 0 {
			return false
		}
		cv.emit(rins{op: rAStore, d: rv, a: rr, b: ri, x: cv.addTrap(i)})
		cv.release(rr)
		cv.release(ri)
		cv.release(rv)

	case bytecode.ALEN:
		ref, ok := cv.pop()
		if !ok {
			return false
		}
		rr := cv.use(ref)
		if rr < 0 {
			return false
		}
		cv.release(rr)
		d := cv.alloc()
		if d < 0 {
			return false
		}
		cv.emit(rins{op: rALen, d: d, a: rr, x: cv.addTrap(i)})
		cv.push(sym{k: symReg, v: d})

	case bytecode.PRINT:
		v, ok := cv.pop()
		if !ok {
			return false
		}
		r := cv.use(v)
		if r < 0 {
			return false
		}
		cv.emit(rins{op: rPrint, a: r})
		cv.release(r)

	case bytecode.JMP:
		// Control flow is already encoded in the linearization: a closing
		// JMP loops, a non-closing one falls through to pcs[i+1].

	case bytecode.JZ, bytecode.JNZ:
		v, ok := cv.pop()
		if !ok {
			return false
		}
		// Where does the off-trace edge go, and on which branch sense?
		// Non-closing branches (and a closing branch whose fall-through
		// is the head) exit when taken; a closing branch whose taken
		// target is the head exits when not taken, at the fall-through.
		closing := i == len(cv.pcs)-1
		exitWhenTaken := true
		exitPC := int(in.A)
		if closing && int(in.A) == cv.head {
			exitWhenTaken = false
			exitPC = pc + 1
		}
		wantTrue := exitWhenTaken // JNZ is taken on IsTrue
		if in.Op == bytecode.JZ {
			wantTrue = !exitWhenTaken
		}
		if v.k != symReg {
			// Statically known condition: a branch that never exits
			// compiles to nothing; one that always exits means the loop
			// never completes an iteration, so the trace is useless.
			t := v.v != 0
			if v.k == symConst {
				t = cv.c.Consts[v.v].IsTrue()
			}
			return t != wantTrue
		}
		x := cv.addExit(i, exitPC)
		want := int32(0)
		if wantTrue {
			want = 1
		}
		if int(v.v) >= cv.nloc {
			cv.release(v.v)
			if cv.ref[v.v] == 0 && len(cv.ins) > 0 {
				// Compare-and-branch fusion: fold a dead, just-emitted
				// comparison into the exit test itself.
				if last := &cv.ins[len(cv.ins)-1]; last.d == v.v {
					switch last.op {
					case rCmp:
						*last = rins{op: rBrCmp, sub: last.sub, d: want, a: last.a, b: last.b, x: x}
						return true
					case rCmpI:
						*last = rins{op: rBrCmpI, sub: last.sub, d: want, a: last.a, b: last.b, x: x}
						return true
					case rFCmp:
						*last = rins{op: rBrFCmp, sub: last.sub, d: want, a: last.a, b: last.b, x: x}
						return true
					}
				}
			}
		}
		op := rBrFalse
		if wantTrue {
			op = rBrTrue
		}
		cv.emit(rins{op: op, a: v.v, x: x})

	default:
		// CALL, RET, NEWARR, HALT and anything unknown never reach here —
		// the linearization only walks plan segments — but degrade rather
		// than miscompile if they ever do.
		return false
	}
	return true
}
