package interp

import (
	"math"

	"evolvevm/internal/bytecode"
)

// This file implements the register IR of the trace tier (trace.go) and
// the stack-to-register converter that produces it. A linearized hot-loop
// body (one iteration of bytecode, discovered over the fusion plan's
// segment geometry) is abstract-interpreted with a symbolic operand
// stack: LOADs become register references (copy propagation), pushed
// immediates and constants stay symbolic until a consumer needs them in a
// register (constant rematerialization), and pure stack shuffles (DUP,
// SWAP, POP) compile to nothing. What remains is a short register
// program over a file that mirrors the frame's locals in its low slots —
// loop-carried values never touch the operand stack while the trace
// runs.
//
// CALL is admitted by trace-style inlining: a small, non-recursive callee
// body is linearized (following its hot fall-through path) and spliced
// into the iteration's item stream, with the callee's locals pinned to a
// fresh contiguous register block. The inlined body is guarded by the
// callee Code's fingerprint — if the runtime callee no longer matches,
// the trace deoptimizes at the CALL itself and the interpreter replays
// the whole call sequence. Conditional branches inside the callee become
// callee exits: deoptimization points that materialize a real callee
// frame (locals from the pinned block, operand stack rematerialized) so
// the switch loop resumes mid-callee bit-identically.
//
// The conversion refuses anything it cannot prove equivalent and reports
// a degradation reason (stats.go), degrading that loop to the
// closure/fused path: ops outside the segment-safe set, operand-stack
// pops below the loop-entry depth or a non-empty symbolic stack at the
// back edge ("escaping stack depth"), register or cost overflows, and
// callee bodies with loops, nested calls, or allocation.
//
// Bit identity is inherited from the same two mechanisms as the fused
// and closure tiers (fuse.go §comment, DESIGN.md §10): a whole iteration
// is charged only when it fits inside the current sample window, and
// every side exit or trap carries the summed charge of the unexecuted
// instruction suffix — split per function once calls are inlined — so the
// rollback lands on exactly the ledger state of the per-instruction
// loop. Register writes are invisible between exits by construction:
// locals are copied in at trace entry and written back at every exit, and
// nothing observable (globals, output, heap) is ever reordered or elided
// — only stack and local traffic is.

// Trace conversion limits.
const (
	// traceMaxInstrs caps one linearized iteration (inlined callee
	// instructions included).
	traceMaxInstrs = 256
	// traceMaxRegs caps the register file: the function's locals plus the
	// converter's temporaries plus pinned callee-local blocks.
	traceMaxRegs = 64
	// inlineMaxInstrs caps one inlined callee body ("small" in the
	// trace-inlining rule): the linearized path from entry to RET.
	inlineMaxInstrs = 48
)

// rOp is a register-IR opcode.
type rOp uint8

const (
	rLoadI   rOp = iota // regs[d] = Int(a)
	rLoadC              // regs[d] = Consts[a]
	rMove               // regs[d] = regs[a]
	rGLoad              // regs[d] = Globals[a]
	rGStore             // Globals[a] = regs[b]
	rInc                // regs[d].I += a (kind-preserving, like IINC)
	rBin                // regs[d] = Int(intBin(sub, regs[a].I, regs[b].I))
	rBinI               // regs[d] = Int(intBin(sub, regs[a].I, b))
	rCmp                // regs[d] = Bool(intCmp(sub, regs[a].I, regs[b].I))
	rCmpI               // regs[d] = Bool(intCmp(sub, regs[a].I, b))
	rFBin               // regs[d] = Float(fltBin(sub, regs[a].AsFloat(), regs[b].AsFloat()))
	rFCmp               // regs[d] = Bool(fltCmp(sub, regs[a].AsFloat(), regs[b].AsFloat()))
	rPure1              // regs[d] = semTab1[sub](regs[a])
	rPure2              // regs[d] = semTab2[sub](regs[a], regs[b])
	rPure3              // regs[d] = semTab3[sub](regs[a], regs[b], regs[x])
	rDivMod             // regs[d] = Int(regs[a].I / or % regs[b].I); trap x on zero
	rALoad              // regs[d] = Array(regs[a])[regs[b].AsInt()]; trap x
	rAStore             // Array(regs[a])[regs[b].AsInt()] = regs[d]; trap x
	rALen               // regs[d] = Int(len(Array(regs[a]))); trap x
	rPrint              // Output = append(Output, regs[a])
	rBrTrue             // exit x when regs[a].IsTrue()
	rBrFalse            // exit x when !regs[a].IsTrue()
	rBrCmp              // exit x when intCmp(sub, regs[a].I, regs[b].I) == (d != 0)
	rBrCmpI             // exit x when intCmp(sub, regs[a].I, b) == (d != 0)
	rBrFCmp             // exit x when fltCmp(sub, regs[a].AsFloat(), regs[b].AsFloat()) == (d != 0)
	rCall               // inlined call site x: guard, hook, zero callee locals
)

// rins is one register instruction. d is the destination register except
// for rAStore (value source), rInc (the incremented local), and the
// branch-exit ops (the wanted condition sense, 0/1). x indexes the
// trace's exit table for branches, its trap table for trapping ops, and
// its call table for rCall.
type rins struct {
	op   rOp
	sub  bytecode.Op // arithmetic/comparison selector for grouped ops
	d    int32
	a, b int32
	x    int32
}

// rWritesD reports whether op writes regs[d] as a pure result — the set
// the store peephole may retarget at a local.
func rWritesD(op rOp) bool {
	switch op {
	case rLoadI, rLoadC, rMove, rGLoad, rBin, rBinI, rCmp, rCmpI,
		rFBin, rFCmp, rPure1, rPure2, rPure3,
		rDivMod, rALoad, rALen:
		return true
	}
	return false
}

// rpush is one value the engine must push onto the real operand stack
// when a side exit fires: a register's current value, a rematerialized
// immediate, or a constant-pool entry. kind uses the symKind numbering.
type rpush struct {
	kind uint8
	v    int32
}

// slotRem is the rollback charge of one inlined-callee slot (1-based
// index into trace.xfns via slot-1): the summed Cost/Base of that
// function's not-yet-executed instructions.
type slotRem struct {
	slot, rem, remBase int32
}

// rexit is one side exit: the off-trace resume pc plus the suffix
// rollback — tot comes off the engine clock, rem/remBase off the caller's
// ledgers, crem off each inlined callee's — and the symbolic stack to
// rematerialize. A callee exit (callIdx >= 0) additionally materializes a
// callee frame resuming at cpc, with the callee's operand stack in cpush
// (push then holds only the caller's residual stack below the call).
type rexit struct {
	pc           int32
	tot          int32
	rem, remBase int32
	crem         []slotRem
	push         []rpush
	callIdx      int32 // -1 for plain exits
	cpc          int32 // callee resume pc (callee exits only)
	cpush        []rpush
}

// rtrap is the rollback record of one trapping instruction: suffix
// charges and the successor pc the accounted loop would report. fn >= 0
// attributes the trap to an inlined callee (error Fn/PC name that
// function, exactly as the interpreted call would).
type rtrap struct {
	tot          int32
	rem, remBase int32
	crem         []slotRem
	tpc          int32
	fn           int32 // -1: the trace's own function
}

// rcall is one inlined call site: the build-time callee (the guard), the
// pinned register block holding the callee's locals, the deopt records
// for guard failure (exitX: resume at the CALL with the args still on the
// stack) and for a mid-call bail after the invocation hook charged cycles
// (ptot/prem/premBase/pcrem position the clock at the accounted post-CALL
// point; push rematerializes the caller's residual stack).
type rcall struct {
	fnIdx  int32
	slot   int32 // charge slot (index into trace.xfns via slot-1)
	code   *Code // expected callee code at build time
	fp     uint64
	callPC int32
	lbase  int32 // pinned register block: callee local k lives in regs[lbase+k]
	nargs  int32
	nloc   int32
	exitX  int32

	ptot           int32
	prem, premBase int32
	pcrem          []slotRem
	push           []rpush // caller residual stack (args consumed)
}

// symKind classifies a symbolic stack slot.
type symKind uint8

const (
	symReg   symKind = iota // a register (local or temp) holds the value
	symImm                  // an int32 immediate, not yet materialized
	symConst                // a merged-constant-pool entry, not yet materialized
)

// sym is one slot of the converter's symbolic operand stack.
type sym struct {
	k symKind
	v int32
}

// titem is one linearized instruction of the trace: its owning Code (the
// loop's function, or an inlined callee), its pc there, the charge slot
// its Cost/Base accrue to, and — for a CALL instruction — the ordinal of
// its call site.
type titem struct {
	code *Code
	pc   int32
	slot int32
	call int32 // call-site ordinal at a CALL item, else -1
}

// rconv is the conversion state for one trace.
type rconv struct {
	caller *Code
	head   int
	items  []titem
	fns    []int32 // charge-slot function indexes; fns[0] is the caller

	// Per-slot suffix charge sums over items (len(items)+1 each): sufT is
	// the engine-clock total, sufS/sufSB split it per charge slot.
	sufT        []int32
	sufS, sufSB [][]int32

	// consts is the trace's constant pool: the caller's pool, copied on
	// write when an inlined callee contributes entries.
	consts      []bytecode.Value
	constsOwned bool

	ins   []rins
	exits []rexit
	traps []rtrap
	calls []rcall

	stk    []sym
	nloc   int
	nregs  int
	ref    []int16 // per-register refcount; slots < nloc are locals (untracked)
	pinned []bool  // pinned callee-local blocks: never allocated, never refcounted

	// Callee-conversion context: curCall >= 0 while converting inside an
	// inlined body; floor is the symbolic stack depth at callee entry
	// (pops below it refuse, exits split caller/callee stacks there).
	curCall int32
	floor   int

	// missing records a CALL refused only because the callee has never
	// been compiled (peek returned nil). Such a refusal is provisional:
	// the plan records it so traceFor can rebuild once the callee's code
	// exists (see tracePlan.missing).
	missing []int32
}

// convertTrace compiles one linearized loop iteration into a trace. pcs
// holds the caller's linearized pcs (CALL instructions included when
// inlining); callee bodies are expanded here. Returns nil and a
// degradation reason when any instruction defeats the conversion; the
// third result lists callees whose absence (never compiled) caused the
// refusal, so the caller can schedule a rebuild when they appear.
func convertTrace(c *Code, head int, pcs []int, inline bool, peek func(int) *Code) (*trace, int, []int32) {
	if c.NLocals >= traceMaxRegs {
		return nil, degRegs, nil
	}
	cv := &rconv{
		caller:  c,
		head:    head,
		fns:     []int32{int32(c.FnIdx)},
		consts:  c.Consts,
		nloc:    c.NLocals,
		nregs:   c.NLocals,
		ref:     make([]int16, c.NLocals),
		pinned:  make([]bool, c.NLocals),
		curCall: -1,
	}
	if reason := cv.expand(pcs, inline, peek); reason != degCount {
		return nil, reason, cv.missing
	}
	if reason := cv.sumSuffixes(); reason != degCount {
		return nil, reason, nil
	}
	for i := range cv.items {
		if ok, reason := cv.instr(i); !ok {
			return nil, reason, nil
		}
	}
	if len(cv.stk) != 0 {
		return nil, degStack, nil // iteration not stack-neutral: escaping stack depth
	}
	t := &trace{
		head:   int32(head),
		cost:   int64(cv.sufT[0]),
		cost0:  int64(cv.sufS[0][0]),
		base0:  int64(cv.sufSB[0][0]),
		nloc:   int32(cv.nloc),
		nregs:  int32(cv.nregs),
		consts: cv.consts,
		ins:    cv.ins,
		exits:  cv.exits,
		traps:  cv.traps,
		calls:  cv.calls,
	}
	for s := 1; s < len(cv.fns); s++ {
		t.xfns = append(t.xfns, cv.fns[s])
		t.xcost = append(t.xcost, int64(cv.sufS[s][0]))
		t.xbase = append(t.xbase, int64(cv.sufSB[s][0]))
	}
	return t, degCount, nil
}

// expand turns the caller's linearized pcs into the trace's item stream,
// splicing each inlinable CALL's callee body in place. Returns degCount
// on success, a degradation reason otherwise.
func (cv *rconv) expand(pcs []int, inline bool, peek func(int) *Code) int {
	c := cv.caller
	for _, pc := range pcs {
		in := c.Instrs[pc]
		if in.Op != bytecode.CALL {
			cv.items = append(cv.items, titem{code: c, pc: int32(pc), slot: 0, call: -1})
			continue
		}
		if !inline || peek == nil {
			return degCall
		}
		fnIdx := int(in.A)
		if fnIdx == c.FnIdx {
			return degCall // self-recursion can never be guard-stable
		}
		cc := peek(fnIdx)
		if cc == nil {
			// Callee never invoked: nothing to inline against yet. Record
			// it so the plan can be rebuilt once the code table has a body
			// — with a lazy provider the first build often precedes the
			// callee's first invocation.
			cv.missing = append(cv.missing, int32(fnIdx))
			return degCall
		}
		cpcs, reason := linearizeCallee(cc)
		if cpcs == nil {
			return reason
		}
		slot := int32(-1)
		for s, fn := range cv.fns {
			if fn == int32(fnIdx) {
				slot = int32(s)
				break
			}
		}
		if slot < 0 {
			cv.fns = append(cv.fns, int32(fnIdx))
			slot = int32(len(cv.fns) - 1)
		}
		cv.calls = append(cv.calls, rcall{
			fnIdx:  int32(fnIdx),
			slot:   slot,
			code:   cc,
			fp:     cc.Fingerprint(),
			callPC: int32(pc),
			nargs:  in.B,
			nloc:   int32(cc.NLocals),
		})
		cv.items = append(cv.items, titem{code: c, pc: int32(pc), slot: 0, call: int32(len(cv.calls) - 1)})
		for _, cpc := range cpcs {
			cv.items = append(cv.items, titem{code: cc, pc: cpc, slot: slot, call: -1})
		}
	}
	if len(cv.items) > traceMaxInstrs {
		return degTooLarge
	}
	return degCount
}

// linearizeCallee walks a callee body from its entry to RET, following
// fall-throughs, unconditional jumps, and the fall-through arm of
// conditional branches (the taken arm becomes a callee exit during
// conversion). Refuses loops, nested calls, allocation, HALT, and bodies
// over the inline size cap.
func linearizeCallee(cc *Code) ([]int32, int) {
	var pcs []int32
	seen := make(map[int]bool)
	pc := 0
	for {
		if pc < 0 || pc >= len(cc.Instrs) || seen[pc] {
			return nil, degCallee
		}
		seen[pc] = true
		in := cc.Instrs[pc]
		switch in.Op {
		case bytecode.RET:
			pcs = append(pcs, int32(pc))
			return pcs, degCount
		case bytecode.JMP:
			pcs = append(pcs, int32(pc))
			pc = int(in.A)
		case bytecode.CALL:
			return nil, degCallee // depth-1 inlining only
		case bytecode.NEWARR:
			return nil, degNewArr
		case bytecode.HALT:
			return nil, degHalt
		default:
			pcs = append(pcs, int32(pc))
			pc++
		}
		if len(pcs) > inlineMaxInstrs {
			return nil, degCallee
		}
	}
}

// sumSuffixes computes the per-position suffix charge sums over the item
// stream: the engine-clock total and the per-slot split the exit and trap
// rollbacks subtract.
func (cv *rconv) sumSuffixes() int {
	n := len(cv.items)
	cv.sufT = make([]int32, n+1)
	cv.sufS = make([][]int32, len(cv.fns))
	cv.sufSB = make([][]int32, len(cv.fns))
	for s := range cv.sufS {
		cv.sufS[s] = make([]int32, n+1)
		cv.sufSB[s] = make([]int32, n+1)
	}
	var total int64
	for k := n - 1; k >= 0; k-- {
		it := cv.items[k]
		cost := it.code.Cost[it.pc]
		base := it.code.Base[it.pc]
		total += cost
		if total > math.MaxInt32 {
			return degTooLarge
		}
		cv.sufT[k] = cv.sufT[k+1] + int32(cost)
		for s := range cv.sufS {
			cv.sufS[s][k] = cv.sufS[s][k+1]
			cv.sufSB[s][k] = cv.sufSB[s][k+1]
		}
		cv.sufS[it.slot][k] += int32(cost)
		cv.sufSB[it.slot][k] += int32(base)
	}
	return degCount
}

func (cv *rconv) emit(in rins) { cv.ins = append(cv.ins, in) }

func (cv *rconv) push(s sym) { cv.stk = append(cv.stk, s) }

// pop takes the top symbolic slot; failure means the instruction would
// consume a value pushed before the loop (or, inside an inlined callee,
// before the call) was entered.
func (cv *rconv) pop() (sym, bool) {
	if len(cv.stk) <= cv.floor {
		return sym{}, false
	}
	s := cv.stk[len(cv.stk)-1]
	cv.stk = cv.stk[:len(cv.stk)-1]
	return s, true
}

// alloc claims a free temporary register (refcount 1), or -1 when the
// file is full. Pinned callee-local blocks hold refcount 1 forever, so
// the scan never reuses them.
func (cv *rconv) alloc() int32 {
	for i := cv.nloc; i < cv.nregs; i++ {
		if cv.ref[i] == 0 {
			cv.ref[i] = 1
			return int32(i)
		}
	}
	if cv.nregs >= traceMaxRegs {
		return -1
	}
	cv.ref = append(cv.ref, 1)
	cv.pinned = append(cv.pinned, false)
	cv.nregs++
	return int32(cv.nregs - 1)
}

func (cv *rconv) retain(r int32) {
	if int(r) >= cv.nloc && !cv.pinned[r] {
		cv.ref[r]++
	}
}

func (cv *rconv) release(r int32) {
	if int(r) >= cv.nloc && !cv.pinned[r] {
		cv.ref[r]--
	}
}

func (cv *rconv) releaseSym(s sym) {
	if s.k == symReg {
		cv.release(s.v)
	}
}

// use returns a register holding s, materializing immediates and
// constants into a fresh temp. The caller releases the returned register
// after emitting its consumer (a no-op for locals; for temps this drops
// either the symbolic stack's reference or the materialization's).
func (cv *rconv) use(s sym) int32 {
	switch s.k {
	case symReg:
		return s.v
	case symImm:
		d := cv.alloc()
		if d >= 0 {
			cv.emit(rins{op: rLoadI, d: d, a: s.v})
		}
		return d
	default:
		d := cv.alloc()
		if d >= 0 {
			cv.emit(rins{op: rLoadC, d: d, a: s.v})
		}
		return d
	}
}

// immVal extracts the int64 the accounted interpreter would read from
// s's .I field, for constant folding and reg-imm forms.
func (cv *rconv) immVal(s sym) (int64, bool) {
	switch s.k {
	case symImm:
		return int64(s.v), true
	case symConst:
		return cv.consts[s.v].I, true
	}
	return 0, false
}

// constIdx maps a constant-pool reference of code to the trace's merged
// pool, copying the caller's pool on first callee contribution.
func (cv *rconv) constIdx(code *Code, idx int32) int32 {
	if code == cv.caller {
		return idx
	}
	v := code.Consts[idx]
	for j, have := range cv.consts {
		if have == v {
			return int32(j)
		}
	}
	if !cv.constsOwned {
		cv.consts = append(append([]bytecode.Value(nil), cv.consts...), v)
		cv.constsOwned = true
	} else {
		cv.consts = append(cv.consts, v)
	}
	return int32(len(cv.consts) - 1)
}

// localReg maps a LOAD/STORE/IINC slot of the current context to its
// register: the caller's locals mirror regs[0:nloc], an inlined callee's
// live in its pinned block.
func (cv *rconv) localReg(k int32) int32 {
	if cv.curCall >= 0 {
		return cv.calls[cv.curCall].lbase + k
	}
	return k
}

// spillLocal rewrites symbolic stack slots that reference register k into
// a fresh temp holding its current value — required before any write to k
// so earlier LOADs keep observing the pre-write value.
func (cv *rconv) spillLocal(k int32) bool {
	t := int32(-1)
	for j := range cv.stk {
		if cv.stk[j].k == symReg && cv.stk[j].v == k {
			if t < 0 {
				if t = cv.alloc(); t < 0 {
					return false
				}
				cv.emit(rins{op: rMove, d: t, a: k})
			} else {
				cv.retain(t)
			}
			cv.stk[j] = sym{k: symReg, v: t}
		}
	}
	return true
}

// store compiles "register k = v" for a local or pinned callee-local k.
// When v is a dead temp produced by the immediately preceding
// instruction, that instruction is retargeted at k and the move
// disappears (safe: spillLocal already ran, so no live symbolic slot
// reads k, and no instruction was emitted after the producer).
func (cv *rconv) store(k int32, v sym) {
	switch v.k {
	case symImm:
		cv.emit(rins{op: rLoadI, d: k, a: v.v})
	case symConst:
		cv.emit(rins{op: rLoadC, d: k, a: v.v})
	default:
		if int(v.v) >= cv.nloc {
			cv.release(v.v)
			if !cv.pinned[v.v] && cv.ref[v.v] == 0 && len(cv.ins) > 0 {
				if last := &cv.ins[len(cv.ins)-1]; last.d == v.v && rWritesD(last.op) {
					last.d = k
					return
				}
			}
			if v.v != k {
				cv.emit(rins{op: rMove, d: k, a: v.v})
			}
			return
		}
		if v.v != k {
			cv.emit(rins{op: rMove, d: k, a: v.v})
		}
	}
}

// snapshot freezes syms into a rematerialization push list.
func snapshot(syms []sym) []rpush {
	if len(syms) == 0 {
		return nil
	}
	push := make([]rpush, len(syms))
	for j, s := range syms {
		push[j] = rpush{kind: uint8(s.k), v: s.v}
	}
	return push
}

// remAt returns the rollback charges for resuming before item j: the
// engine-clock total, the caller slot's share, and the per-callee shares.
func (cv *rconv) remAt(j int) (tot, rem, remBase int32, crem []slotRem) {
	tot = cv.sufT[j]
	rem = cv.sufS[0][j]
	remBase = cv.sufSB[0][j]
	for s := 1; s < len(cv.fns); s++ {
		if cv.sufS[s][j] != 0 || cv.sufSB[s][j] != 0 {
			crem = append(crem, slotRem{slot: int32(s), rem: cv.sufS[s][j], remBase: cv.sufSB[s][j]})
		}
	}
	return
}

// addExit records a side exit at item position i resuming at target,
// snapshotting the symbolic stack (condition already popped) for
// rematerialization. atCall includes item i itself in the rollback (the
// guard-failure exit replays the CALL instruction). Inside an inlined
// callee the exit becomes a callee-frame deopt: the caller's residual
// stack and the callee's own stack are split at the call floor.
func (cv *rconv) addExit(i, target int, atCall bool) int32 {
	j := i + 1
	if atCall {
		j = i
	}
	tot, rem, remBase, crem := cv.remAt(j)
	ex := rexit{
		pc:      int32(target),
		tot:     tot,
		rem:     rem,
		remBase: remBase,
		crem:    crem,
		callIdx: -1,
	}
	if cv.curCall >= 0 {
		ex.callIdx = cv.curCall
		ex.cpc = int32(target)
		ex.pc = cv.calls[cv.curCall].callPC
		ex.push = snapshot(cv.stk[:cv.floor])
		ex.cpush = snapshot(cv.stk[cv.floor:])
	} else {
		ex.push = snapshot(cv.stk)
	}
	cv.exits = append(cv.exits, ex)
	return int32(len(cv.exits) - 1)
}

// addTrap records the rollback data of a trapping instruction at item
// position i, attributing it to the inlined callee when inside one.
func (cv *rconv) addTrap(i int) int32 {
	tot, rem, remBase, crem := cv.remAt(i + 1)
	t := rtrap{
		tot:     tot,
		rem:     rem,
		remBase: remBase,
		crem:    crem,
		tpc:     cv.items[i].pc + 1,
		fn:      -1,
	}
	if cv.curCall >= 0 {
		t.fn = cv.calls[cv.curCall].fnIdx
	}
	cv.traps = append(cv.traps, t)
	return int32(len(cv.traps) - 1)
}

// instr converts the item at position i; on failure the second return is
// the degradation reason.
func (cv *rconv) instr(i int) (bool, int) {
	it := cv.items[i]
	pc := int(it.pc)
	in := it.code.Instrs[it.pc]
	switch in.Op {
	case bytecode.NOP:

	case bytecode.IPUSH:
		cv.push(sym{k: symImm, v: in.A})
	case bytecode.CONST:
		cv.push(sym{k: symConst, v: cv.constIdx(it.code, in.A)})
	case bytecode.LOAD:
		cv.push(sym{k: symReg, v: cv.localReg(in.A)})

	case bytecode.STORE:
		v, ok := cv.pop()
		k := cv.localReg(in.A)
		if !ok || !cv.spillLocal(k) {
			return false, degStack
		}
		cv.store(k, v)

	case bytecode.GLOAD:
		// Globals are mutable under the trace's own GSTOREs, so a global
		// read materializes immediately instead of staying symbolic.
		d := cv.alloc()
		if d < 0 {
			return false, degRegs
		}
		cv.emit(rins{op: rGLoad, d: d, a: in.A})
		cv.push(sym{k: symReg, v: d})
	case bytecode.GSTORE:
		v, ok := cv.pop()
		if !ok {
			return false, degStack
		}
		r := cv.use(v)
		if r < 0 {
			return false, degRegs
		}
		cv.emit(rins{op: rGStore, a: in.A, b: r})
		cv.release(r)

	case bytecode.IINC:
		k := cv.localReg(in.A)
		if !cv.spillLocal(k) {
			return false, degRegs
		}
		cv.emit(rins{op: rInc, d: k, a: in.B})

	case bytecode.POP:
		v, ok := cv.pop()
		if !ok {
			return false, degStack
		}
		cv.releaseSym(v)
	case bytecode.DUP:
		if len(cv.stk) <= cv.floor {
			return false, degStack
		}
		s := cv.stk[len(cv.stk)-1]
		if s.k == symReg {
			cv.retain(s.v)
		}
		cv.push(s)
	case bytecode.SWAP:
		n := len(cv.stk)
		if n-cv.floor < 2 {
			return false, degStack
		}
		cv.stk[n-1], cv.stk[n-2] = cv.stk[n-2], cv.stk[n-1]

	case bytecode.ALOAD:
		idx, ok := cv.pop()
		if !ok {
			return false, degStack
		}
		ref, ok := cv.pop()
		if !ok {
			return false, degStack
		}
		rr := cv.use(ref)
		ri := cv.use(idx)
		if rr < 0 || ri < 0 {
			return false, degRegs
		}
		cv.release(rr)
		cv.release(ri)
		d := cv.alloc()
		if d < 0 {
			return false, degRegs
		}
		cv.emit(rins{op: rALoad, d: d, a: rr, b: ri, x: cv.addTrap(i)})
		cv.push(sym{k: symReg, v: d})

	case bytecode.ASTORE:
		val, ok := cv.pop()
		if !ok {
			return false, degStack
		}
		idx, ok := cv.pop()
		if !ok {
			return false, degStack
		}
		ref, ok := cv.pop()
		if !ok {
			return false, degStack
		}
		rr := cv.use(ref)
		ri := cv.use(idx)
		rv := cv.use(val)
		if rr < 0 || ri < 0 || rv < 0 {
			return false, degRegs
		}
		cv.emit(rins{op: rAStore, d: rv, a: rr, b: ri, x: cv.addTrap(i)})
		cv.release(rr)
		cv.release(ri)
		cv.release(rv)

	case bytecode.ALEN:
		ref, ok := cv.pop()
		if !ok {
			return false, degStack
		}
		rr := cv.use(ref)
		if rr < 0 {
			return false, degRegs
		}
		cv.release(rr)
		d := cv.alloc()
		if d < 0 {
			return false, degRegs
		}
		cv.emit(rins{op: rALen, d: d, a: rr, x: cv.addTrap(i)})
		cv.push(sym{k: symReg, v: d})

	case bytecode.PRINT:
		v, ok := cv.pop()
		if !ok {
			return false, degStack
		}
		r := cv.use(v)
		if r < 0 {
			return false, degRegs
		}
		cv.emit(rins{op: rPrint, a: r})
		cv.release(r)

	case bytecode.JMP:
		// Control flow is already encoded in the linearization: a closing
		// JMP loops, a non-closing one falls through to the next item.

	case bytecode.JZ, bytecode.JNZ:
		v, ok := cv.pop()
		if !ok {
			return false, degStack
		}
		// Where does the off-trace edge go, and on which branch sense?
		// In the caller: non-closing branches (and a closing branch whose
		// fall-through is the head) exit when taken; a closing branch
		// whose taken target is the head exits when not taken, at the
		// fall-through. Inside an inlined callee the fall-through is the
		// traced path, so the exit is always the taken arm.
		exitWhenTaken := true
		exitPC := int(in.A)
		if cv.curCall < 0 {
			closing := i == len(cv.items)-1
			if closing && int(in.A) == cv.head {
				exitWhenTaken = false
				exitPC = pc + 1
			}
		}
		wantTrue := exitWhenTaken // JNZ is taken on IsTrue
		if in.Op == bytecode.JZ {
			wantTrue = !exitWhenTaken
		}
		if v.k != symReg {
			// Statically known condition: a branch that never exits
			// compiles to nothing; one that always exits means the traced
			// path never completes, so the trace is useless.
			t := v.v != 0
			if v.k == symConst {
				t = cv.consts[v.v].IsTrue()
			}
			if t == wantTrue {
				return false, degOther
			}
			return true, degCount
		}
		x := cv.addExit(i, exitPC, false)
		want := int32(0)
		if wantTrue {
			want = 1
		}
		if int(v.v) >= cv.nloc && !cv.pinned[v.v] {
			cv.release(v.v)
			if cv.ref[v.v] == 0 && len(cv.ins) > 0 {
				// Compare-and-branch fusion: fold a dead, just-emitted
				// comparison into the exit test itself.
				if last := &cv.ins[len(cv.ins)-1]; last.d == v.v {
					switch last.op {
					case rCmp:
						*last = rins{op: rBrCmp, sub: last.sub, d: want, a: last.a, b: last.b, x: x}
						return true, degCount
					case rCmpI:
						*last = rins{op: rBrCmpI, sub: last.sub, d: want, a: last.a, b: last.b, x: x}
						return true, degCount
					case rFCmp:
						*last = rins{op: rBrFCmp, sub: last.sub, d: want, a: last.a, b: last.b, x: x}
						return true, degCount
					}
				}
			}
		}
		op := rBrFalse
		if wantTrue {
			op = rBrTrue
		}
		cv.emit(rins{op: op, a: v.v, x: x})

	case bytecode.CALL:
		if cv.curCall >= 0 || it.call < 0 {
			return false, degCall
		}
		argc := int(in.B)
		if len(cv.stk) < argc {
			return false, degStack // args pushed before the loop was entered
		}
		rc := &cv.calls[it.call]
		// Guard-failure exit first, while the args are still symbolically
		// on the stack: it resumes AT the CALL, so its rollback includes
		// this item's own charge and the interpreter replays the call.
		rc.exitX = cv.addExit(i, pc, true)
		// Pin a fresh contiguous register block for the callee's locals.
		if cv.nregs+int(rc.nloc) > traceMaxRegs {
			return false, degRegs
		}
		rc.lbase = int32(cv.nregs)
		for j := int32(0); j < rc.nloc; j++ {
			cv.ref = append(cv.ref, 1)
			cv.pinned = append(cv.pinned, true)
		}
		cv.nregs += int(rc.nloc)
		// Materialize the arguments into the block, then drop their
		// symbolic references (no allocation happens in between, so exit
		// snapshots taken above stay valid at runtime).
		args := cv.stk[len(cv.stk)-argc:]
		for j, a := range args {
			d := rc.lbase + int32(j)
			switch a.k {
			case symImm:
				cv.emit(rins{op: rLoadI, d: d, a: a.v})
			case symConst:
				cv.emit(rins{op: rLoadC, d: d, a: a.v})
			default:
				cv.emit(rins{op: rMove, d: d, a: a.v})
			}
		}
		cv.stk = cv.stk[:len(cv.stk)-argc]
		for _, a := range args {
			cv.releaseSym(a)
		}
		rc.push = snapshot(cv.stk)
		rc.ptot, rc.prem, rc.premBase, rc.pcrem = cv.remAt(i + 1)
		cv.emit(rins{op: rCall, x: it.call})
		cv.curCall = it.call
		cv.floor = len(cv.stk)

	case bytecode.RET:
		if cv.curCall < 0 {
			return false, degRet
		}
		rv, ok := cv.pop()
		if !ok {
			return false, degStack
		}
		// The accounted RET truncates to the frame base before pushing the
		// return value: drop anything the callee left above its floor.
		for len(cv.stk) > cv.floor {
			s, _ := cv.pop()
			cv.releaseSym(s)
		}
		cv.curCall = -1
		cv.floor = 0
		cv.push(rv)

	default:
		// Everything else is a value op whose lowering rule is derived
		// from the spec (regLower, regir_gen.go). NEWARR, HALT and
		// anything unknown classify lowNone and degrade rather than
		// miscompile.
		return cv.lower(i, in)
	}
	return true, degCount
}

// lower compiles one value-producing instruction by its spec-derived
// lowering rule. Scalar groups keep their immediate forms and integer
// constant folds; pure kernel ops fold through the generated kernel
// itself when every operand is symbolically known, and otherwise become
// an rPureN over the generated semantic tables.
func (cv *rconv) lower(i int, in bytecode.Instr) (bool, int) {
	kind := regLower[in.Op]
	switch kind {
	case lowPure1, lowPure2, lowPure3:
		ar := int(kind-lowPure1) + 1
		var vs [3]sym
		for j := ar - 1; j >= 0; j-- {
			s, ok := cv.pop()
			if !ok {
				return false, degStack
			}
			vs[j] = s
		}
		if f, ok := cv.foldKernel(in.Op, ar, vs); ok {
			cv.push(f)
			return true, degCount
		}
		var rs [3]int32
		for j := 0; j < ar; j++ {
			if rs[j] = cv.use(vs[j]); rs[j] < 0 {
				return false, degRegs
			}
		}
		for j := 0; j < ar; j++ {
			cv.release(rs[j])
		}
		d := cv.alloc()
		if d < 0 {
			return false, degRegs
		}
		cv.emit(rins{op: rPure1 + rOp(ar-1), sub: in.Op, d: d, a: rs[0], b: rs[1], x: rs[2]})
		cv.push(sym{k: symReg, v: d})
		return true, degCount

	case lowIntBin, lowIntCmp, lowFltBin, lowFltCmp, lowTrapBin:
		b, ok := cv.pop()
		if !ok {
			return false, degStack
		}
		a, ok := cv.pop()
		if !ok {
			return false, degStack
		}
		if kind == lowIntBin || kind == lowIntCmp {
			av, aImm := cv.immVal(a)
			bv, bImm := cv.immVal(b)
			if aImm && bImm {
				if kind == lowIntCmp {
					// Bool() is Int(0/1), so the fold stays an integer
					// immediate.
					r := int32(0)
					if intCmp(in.Op, av, bv) {
						r = 1
					}
					cv.push(sym{k: symImm, v: r})
					return true, degCount
				}
				if r := intBin(in.Op, av, bv); r >= math.MinInt32 && r <= math.MaxInt32 {
					cv.push(sym{k: symImm, v: int32(r)})
					return true, degCount
				}
			}
			if bImm && bv >= math.MinInt32 && bv <= math.MaxInt32 {
				ra := cv.use(a)
				if ra < 0 {
					return false, degRegs
				}
				cv.release(ra)
				d := cv.alloc()
				if d < 0 {
					return false, degRegs
				}
				op := rBinI
				if kind == lowIntCmp {
					op = rCmpI
				}
				cv.emit(rins{op: op, sub: in.Op, d: d, a: ra, b: int32(bv)})
				cv.push(sym{k: symReg, v: d})
				return true, degCount
			}
		}
		ra := cv.use(a)
		rb := cv.use(b)
		if ra < 0 || rb < 0 {
			return false, degRegs
		}
		cv.release(ra)
		cv.release(rb)
		d := cv.alloc()
		if d < 0 {
			return false, degRegs
		}
		ins := rins{sub: in.Op, d: d, a: ra, b: rb}
		switch kind {
		case lowIntBin:
			ins.op = rBin
		case lowIntCmp:
			ins.op = rCmp
		case lowFltBin:
			ins.op = rFBin
		case lowFltCmp:
			ins.op = rFCmp
		default:
			ins.op = rDivMod
			ins.x = cv.addTrap(i)
		}
		cv.emit(ins)
		cv.push(sym{k: symReg, v: d})
		return true, degCount
	}
	return false, degOther
}

// foldKernel constant-folds a pure kernel op whose operands are all
// symbolically known, by running the generated kernel on exactly the
// values the accounted interpreter would see (symImm rematerializes as
// bytecode.Int, symConst as the pool entry). The fold is kept only when
// the result is an immediate-representable integer; anything else
// materializes normally.
func (cv *rconv) foldKernel(op bytecode.Op, ar int, vs [3]sym) (sym, bool) {
	var vals [3]bytecode.Value
	for j := 0; j < ar; j++ {
		switch vs[j].k {
		case symImm:
			vals[j] = bytecode.Int(int64(vs[j].v))
		case symConst:
			vals[j] = cv.consts[vs[j].v]
		default:
			return sym{}, false
		}
	}
	var r bytecode.Value
	switch ar {
	case 1:
		r = semTab1[op](vals[0])
	case 2:
		r = semTab2[op](vals[0], vals[1])
	default:
		r = semTab3[op](vals[0], vals[1], vals[2])
	}
	if r.Kind != bytecode.KInt || r.I < math.MinInt32 || r.I > math.MaxInt32 {
		return sym{}, false
	}
	return sym{k: symImm, v: int32(r.I)}, true
}
