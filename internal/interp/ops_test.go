package interp

import (
	"testing"

	"evolvevm/internal/bytecode"
)

// TestOpcodeSemantics pins down every arithmetic, logic, comparison, and
// stack opcode with a table of tiny programs.
func TestOpcodeSemantics(t *testing.T) {
	cases := []struct {
		name string
		body string // instructions; must leave the result on top
		want bytecode.Value
	}{
		{"iadd", "const 2\nconst 3\niadd", bytecode.Int(5)},
		{"isub", "const 2\nconst 3\nisub", bytecode.Int(-1)},
		{"imul", "const -4\nconst 3\nimul", bytecode.Int(-12)},
		{"idiv", "const 7\nconst 2\nidiv", bytecode.Int(3)},
		{"idiv negative", "const -7\nconst 2\nidiv", bytecode.Int(-3)},
		{"imod", "const 7\nconst 3\nimod", bytecode.Int(1)},
		{"ineg", "const 9\nineg", bytecode.Int(-9)},
		{"iand", "const 12\nconst 10\niand", bytecode.Int(8)},
		{"ior", "const 12\nconst 10\nior", bytecode.Int(14)},
		{"ixor", "const 12\nconst 10\nixor", bytecode.Int(6)},
		{"ishl", "const 3\nconst 4\nishl", bytecode.Int(48)},
		{"ishr", "const 48\nconst 4\nishr", bytecode.Int(3)},
		{"ishr negative", "const -16\nconst 2\nishr", bytecode.Int(-4)},
		{"shift masks to 63", "const 1\nconst 64\nishl", bytecode.Int(1)},
		{"inot", "const 0\ninot", bytecode.Int(-1)},

		{"fadd", "fconst 1.5\nfconst 2.25\nfadd", bytecode.Float(3.75)},
		{"fsub", "fconst 1.5\nfconst 2.25\nfsub", bytecode.Float(-0.75)},
		{"fmul", "fconst 1.5\nfconst 2\nfmul", bytecode.Float(3)},
		{"fdiv", "fconst 3\nfconst 2\nfdiv", bytecode.Float(1.5)},
		{"fneg", "fconst 2.5\nfneg", bytecode.Float(-2.5)},
		{"fsqrt", "fconst 9\nfsqrt", bytecode.Float(3)},
		{"fabs", "fconst -4.5\nfabs", bytecode.Float(4.5)},
		{"fadd mixes ints", "const 1\nfconst 0.5\nfadd", bytecode.Float(1.5)},

		{"i2f", "const 7\ni2f", bytecode.Float(7)},
		{"f2i truncates", "fconst 7.9\nf2i", bytecode.Int(7)},
		{"f2i negative", "fconst -7.9\nf2i", bytecode.Int(-7)},

		{"ieq true", "const 4\nconst 4\nieq", bytecode.Int(1)},
		{"ieq false", "const 4\nconst 5\nieq", bytecode.Int(0)},
		{"ine", "const 4\nconst 5\nine", bytecode.Int(1)},
		{"ilt", "const 4\nconst 5\nilt", bytecode.Int(1)},
		{"ile eq", "const 5\nconst 5\nile", bytecode.Int(1)},
		{"igt", "const 4\nconst 5\nigt", bytecode.Int(0)},
		{"ige eq", "const 5\nconst 5\nige", bytecode.Int(1)},
		{"feq", "fconst 2.5\nfconst 2.5\nfeq", bytecode.Int(1)},
		{"fne", "fconst 2.5\nfconst 2.6\nfne", bytecode.Int(1)},
		{"flt", "fconst 2.5\nfconst 2.6\nflt", bytecode.Int(1)},
		{"fle", "fconst 2.6\nfconst 2.6\nfle", bytecode.Int(1)},
		{"fgt", "fconst 2.7\nfconst 2.6\nfgt", bytecode.Int(1)},
		{"fge", "fconst 2.5\nfconst 2.6\nfge", bytecode.Int(0)},

		{"dup", "const 6\ndup\niadd", bytecode.Int(12)},
		{"swap", "const 10\nconst 3\nswap\nisub", bytecode.Int(-7)},
		{"pop", "const 1\nconst 2\npop", bytecode.Int(1)},
		{"nop", "nop\nconst 3\nnop", bytecode.Int(3)},

		{"select true", "const 7\nconst 9\nconst 1\nselect", bytecode.Int(7)},
		{"select false", "const 7\nconst 9\nconst 0\nselect", bytecode.Int(9)},
		{"select float cond", "fconst 1.5\nfconst 2.5\nfconst 0\nselect", bytecode.Float(2.5)},
		{"iabs negative", "const -9\niabs", bytecode.Int(9)},
		{"iabs positive", "const 9\niabs", bytecode.Int(9)},
		{"iabs zero", "const 0\niabs", bytecode.Int(0)},

		{"jnz taken", "const 1\njnz over\nconst 10\nret\nover:\nconst 20", bytecode.Int(20)},
		{"jz not taken", "const 1\njz over\nconst 10\nret\nover:\nconst 20", bytecode.Int(10)},
		{"jz float zero", "fconst 0\njz over\nconst 10\nret\nover:\nconst 20", bytecode.Int(20)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "func main() locals a\n" + tc.body + "\nret\nend\n"
			p, err := bytecode.Assemble("ops", src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			e := NewEngine(p)
			v, err := e.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !v.Equal(tc.want) {
				t.Errorf("result = %v, want %v", v, tc.want)
			}
		})
	}
}

func TestIincSemantics(t *testing.T) {
	p, err := bytecode.Assemble("iinc", `
func main() locals x
  const 10
  store x
  iinc x 5
  iinc x -3
  load x
  ret
end
`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(p)
	v, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 12 {
		t.Errorf("iinc result = %v, want 12", v)
	}
}

func TestGlobalAccessors(t *testing.T) {
	p, _ := bytecode.Assemble("g", "global g\nfunc main()\n const 0\n ret\nend\n")
	e := NewEngine(p)
	if err := e.SetGlobal("nope", bytecode.Int(1)); err == nil {
		t.Error("SetGlobal of unknown name succeeded")
	}
	if _, err := e.Global("nope"); err == nil {
		t.Error("Global of unknown name succeeded")
	}
	if err := e.SetGlobal("g", bytecode.Float(2.5)); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Global("g"); v.F != 2.5 {
		t.Errorf("global round trip = %v", v)
	}
}

func TestDeepRecursionGuard(t *testing.T) {
	p, err := bytecode.Assemble("deep", `
func main()
  const 0
  call spin 1
  ret
end
func spin(x)
  load x
  call spin 1
  ret
end
`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(p)
	_, err = e.Run()
	if err == nil {
		t.Fatal("infinite recursion terminated normally")
	}
}
