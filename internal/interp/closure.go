package interp

import (
	"fmt"

	"evolvevm/internal/bytecode"
)

// This file implements the closure-threaded host tier: a second executable
// form of a Code's execution plan in which every micro-op of a segment is
// a Go closure with its operands, constants, and arithmetic pre-bound at
// build time (subroutine threading, after Izawa et al.'s one-interpreter/
// one-engine design and Deegen's observation that dispatch discipline buys
// most of a VM's host speed). The engine runs a closure segment as a flat
// loop of indirect calls — no per-op operand decoding and no mega-switch.
//
// The tier is built FROM the fusion plan (fuse.go), segment by segment and
// fop by fop, so its segmentation, batched cycle charges, and suffix-charge
// trap rollback are identical by construction: a closure plan can never
// change a virtual observable. The substrate equivalence suites hold the
// closure tier to bit identity against the accounted loop and the fused
// switch over the full generator corpus, trapped and GC runs included.
//
// Closure plans are built when a Code at an optimized tier (level ≥ 0) has
// accumulated enough deterministic sampler ticks (see closureHotSamples),
// or eagerly under Engine.EagerClosures (the equivalence suites use this
// to cover every tier, baseline included). Built plans are cached on the
// Code next to the fusion plans, so cross-run reuse through jit.Cache
// carries the closure program along with the code it threads.

// closOp is one closure-threaded micro-op. The live operand stack is
// threaded through the call in registers (passed in, returned back) so the
// hot stack top never round-trips through memory between micro-ops; slower
// state — locals, globals, trap rollback — lives behind the cstate
// pointer. The int result is closFall to fall through, closTrap after
// filling the cstate trap fields, or a non-negative branch-target pc
// (only segment-final ops branch).
type closOp func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int)

const (
	closFall = -1
	closTrap = -2
)

// cstate is the out-of-band register file a closure segment threads
// through: the locals arena of the running frame plus the engine for
// globals, heap, and output. Trapping closures deposit their rollback
// data (suffix charges, successor pc, message) before returning closTrap.
type cstate struct {
	e      *Engine
	locals []bytecode.Value
	lb     int

	rem, remBase int32
	tpc          int32
	msg          string
}

// closSeg mirrors segRun: one batchable straight-line segment with its
// summed charges, fall-through pc, and closure micro-program.
type closSeg struct {
	cost int64
	base int64
	end  int32
	fns  []closOp
}

// closPlan indexes closure segments by the pc of their first instruction,
// exactly like plan.seg.
type closPlan struct {
	seg []*closSeg
}

// buildClosurePlan translates the code's fusion plan (or its unfused
// sibling) into closure form. Segments whose micro-ops cannot all be
// compiled degrade to nil and run on the accounted path — a host-side
// slowdown only, never a virtual difference.
func buildClosurePlan(c *Code, fuse bool) *closPlan {
	p := c.planFor(fuse)
	cp := &closPlan{seg: make([]*closSeg, len(p.seg))}
	for pc, s := range p.seg {
		if s == nil {
			continue
		}
		cs := &closSeg{cost: s.cost, base: s.base, end: s.end, fns: make([]closOp, 0, len(s.ops))}
		ok := true
		for i := range s.ops {
			fn := closCompile(c, &s.ops[i])
			if fn == nil {
				ok = false
				break
			}
			cs.fns = append(cs.fns, fn)
		}
		if ok {
			cp.seg[pc] = cs
		}
	}
	return cp
}

// closCompile builds the closure for one micro-op. Plain opcode-level
// micro-ops are built by the generated closCompilePlain (closure_gen.go),
// so an opcode's closure semantics have exactly one source — the spec;
// the fused superinstruction arms below stay scaffolding because they
// encode combinations of ops, pre-binding decoded operands, constants,
// branch targets, comparison truth tables, and trap rollback data
// exactly like the engine's fused switch.
func closCompile(c *Code, f *fop) closOp {
	if int(f.op) < bytecode.NumOps {
		return closCompilePlain(c, f)
	}
	a, b, d := int(f.a), int(f.b), int(f.d)
	rem, remBase, tpc := f.rem, f.remBase, f.tpc

	switch f.op {
	// Fused superinstructions.
	case fLLBin:
		opc := bytecode.Op(f.c)
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			return append(sp, bytecode.Int(intBin(opc, st.locals[st.lb+a].I, st.locals[st.lb+b].I))), closFall
		}
	case fLLCmp:
		lt, eq, gt, _ := cmpFlags(bytecode.Op(f.c))
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			x, y := st.locals[st.lb+a].I, st.locals[st.lb+b].I
			r := gt
			if x < y {
				r = lt
			} else if x == y {
				r = eq
			}
			return append(sp, bytecode.Bool(r)), closFall
		}
	case fLIBin:
		opc := bytecode.Op(f.c)
		imm := int64(f.b)
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			return append(sp, bytecode.Int(intBin(opc, st.locals[st.lb+a].I, imm))), closFall
		}
	case fLICmp:
		lt, eq, gt, _ := cmpFlags(bytecode.Op(f.c))
		imm := int64(f.b)
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			x := st.locals[st.lb+a].I
			r := gt
			if x < imm {
				r = lt
			} else if x == imm {
				r = eq
			}
			return append(sp, bytecode.Bool(r)), closFall
		}
	case fLGBin:
		opc := bytecode.Op(f.c)
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			return append(sp, bytecode.Int(intBin(opc, st.locals[st.lb+a].I, st.e.Globals[b].I))), closFall
		}
	case fLGCmp:
		lt, eq, gt, _ := cmpFlags(bytecode.Op(f.c))
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			x, y := st.locals[st.lb+a].I, st.e.Globals[b].I
			r := gt
			if x < y {
				r = lt
			} else if x == y {
				r = eq
			}
			return append(sp, bytecode.Bool(r)), closFall
		}
	case fMove:
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			st.locals[st.lb+b] = st.locals[st.lb+a]
			return sp, closFall
		}
	case fGMove:
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			st.locals[st.lb+b] = st.e.Globals[a]
			return sp, closFall
		}
	case fIStore:
		v := bytecode.Int(int64(f.b))
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			st.locals[st.lb+a] = v
			return sp, closFall
		}
	case fCStore:
		v := c.Consts[b]
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			st.locals[st.lb+a] = v
			return sp, closFall
		}
	case fIncJmp:
		inc := int64(f.b)
		to := int(f.c)
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			st.locals[st.lb+a].I += inc
			return sp, to
		}
	case fCmpJz, fCmpJnz:
		jlt, jeq, jgt := cmpJumpFlags(bytecode.Op(f.c), f.op == fCmpJnz)
		return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			n := len(sp)
			x, y := sp[n-2].I, sp[n-1].I
			sp = sp[:n-2]
			r := jgt
			if x < y {
				r = jlt
			} else if x == y {
				r = jeq
			}
			if r {
				return sp, b
			}
			return sp, closFall
		}
	case fCCmpJz, fCCmpJnz:
		jlt, jeq, jgt := cmpJumpFlags(bytecode.Op(f.c), f.op == fCCmpJnz)
		cv := c.Consts[a].I
		return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			n := len(sp)
			x := sp[n-1].I
			sp = sp[:n-1]
			r := jgt
			if x < cv {
				r = jlt
			} else if x == cv {
				r = jeq
			}
			if r {
				return sp, b
			}
			return sp, closFall
		}
	case fICmpJz, fICmpJnz:
		jlt, jeq, jgt := cmpJumpFlags(bytecode.Op(f.c), f.op == fICmpJnz)
		imm := int64(f.a)
		return func(_ *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			n := len(sp)
			x := sp[n-1].I
			sp = sp[:n-1]
			r := jgt
			if x < imm {
				r = jlt
			} else if x == imm {
				r = jeq
			}
			if r {
				return sp, b
			}
			return sp, closFall
		}
	case fLJz:
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			if !st.locals[st.lb+a].IsTrue() {
				return sp, b
			}
			return sp, closFall
		}
	case fLJnz:
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			if st.locals[st.lb+a].IsTrue() {
				return sp, b
			}
			return sp, closFall
		}
	case fALoad:
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			arr, aerr := st.e.Array(st.locals[st.lb+a])
			if aerr == nil {
				idx := st.locals[st.lb+b].AsInt()
				if idx >= 0 && idx < int64(len(arr)) {
					return append(sp, arr[idx]), closFall
				}
				aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
			}
			st.rem, st.remBase, st.tpc = rem, remBase, tpc
			st.msg = fmt.Sprintf("aload: %v", aerr)
			return sp, closTrap
		}
	case fGALoad:
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			arr, aerr := st.e.Array(st.e.Globals[a])
			if aerr == nil {
				idx := st.locals[st.lb+b].AsInt()
				if idx >= 0 && idx < int64(len(arr)) {
					return append(sp, arr[idx]), closFall
				}
				aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
			}
			st.rem, st.remBase, st.tpc = rem, remBase, tpc
			st.msg = fmt.Sprintf("aload: %v", aerr)
			return sp, closTrap
		}
	case fLLBinS:
		opc := bytecode.Op(f.c)
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			st.locals[st.lb+d] = bytecode.Int(intBin(opc, st.locals[st.lb+a].I, st.locals[st.lb+b].I))
			return sp, closFall
		}
	case fLIBinS:
		opc := bytecode.Op(f.c)
		imm := int64(f.b)
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			st.locals[st.lb+d] = bytecode.Int(intBin(opc, st.locals[st.lb+a].I, imm))
			return sp, closFall
		}
	case fLGBinS:
		opc := bytecode.Op(f.c)
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			st.locals[st.lb+d] = bytecode.Int(intBin(opc, st.locals[st.lb+a].I, st.e.Globals[b].I))
			return sp, closFall
		}
	case fLLCmpJz, fLLCmpJnz:
		jlt, jeq, jgt := cmpJumpFlags(bytecode.Op(f.c), f.op == fLLCmpJnz)
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			x, y := st.locals[st.lb+a].I, st.locals[st.lb+b].I
			r := jgt
			if x < y {
				r = jlt
			} else if x == y {
				r = jeq
			}
			if r {
				return sp, d
			}
			return sp, closFall
		}
	case fLGCmpJz, fLGCmpJnz:
		jlt, jeq, jgt := cmpJumpFlags(bytecode.Op(f.c), f.op == fLGCmpJnz)
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			x, y := st.locals[st.lb+a].I, st.e.Globals[b].I
			r := jgt
			if x < y {
				r = jlt
			} else if x == y {
				r = jeq
			}
			if r {
				return sp, d
			}
			return sp, closFall
		}
	case fLICmpJz, fLICmpJnz:
		jlt, jeq, jgt := cmpJumpFlags(bytecode.Op(f.c), f.op == fLICmpJnz)
		imm := int64(f.b)
		return func(st *cstate, sp []bytecode.Value) ([]bytecode.Value, int) {
			x := st.locals[st.lb+a].I
			r := jgt
			if x < imm {
				r = jlt
			} else if x == imm {
				r = jeq
			}
			if r {
				return sp, d
			}
			return sp, closFall
		}
	}
	return nil
}
