package interp

import (
	"fmt"
	"math"
	"sync/atomic"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/opt"
)

// This file implements the trace tier, the fourth host tier: hot loop
// bodies run as register programs (regir.go) instead of stack programs.
// A trace anchors at a loop head from opt.Loops and linearizes the hot
// path through the fusion plan's segment geometry — following
// fall-throughs and unconditional jumps, recording a side exit at every
// conditional branch — until the path closes back at the head. One
// iteration becomes one register program; the engine runs it in a flat
// loop that charges the whole iteration in a single batched debit.
//
// Bit identity follows the same two-part argument as the fused and
// closure tiers (fuse.go, closure.go): an iteration is entered only when
// its full charge fits inside the current sample window, so no sampler
// tick, cycle-fuse check, or interrupt poll can fall inside it; and
// every side exit and trap subtracts the summed charge of the
// not-yet-executed suffix, landing on exactly the ledger state, stack,
// locals, and pc of the per-instruction loop. Loops the converter cannot
// express (calls, allocation, escaping stack depth, too large) simply
// never get a trace and keep running on the closure/fused path —
// per-loop degradation, never a virtual difference.
//
// Trace activation is two-staged and deterministic on the host side:
// the Code must be hot by sampler count (TraceHotSamples, like the
// closure tier), and then each individual loop must prove itself by
// back-edge arrivals (traceHotEntries) before its register program runs.
// Engine.EagerRegTier short-circuits both gates for the equivalence
// suites. Neither gate feeds back into any virtual observable.

// traceHotEntries is the per-trace back-edge arrival count after which a
// built trace starts executing. Arrivals are counted only when the
// iteration would fit the sample window, so the counter tracks genuine
// execution opportunities.
const traceHotEntries = 4

// trace is the compiled register program of one hot loop: one iteration
// of straight-line register instructions, its batched charge, the side
// exits back to bytecode, and the trap rollback table.
type trace struct {
	head   int32
	cost   int64 // summed Cost of one iteration (the batched debit)
	base   int64 // summed Base of one iteration
	nloc   int32 // locals mirrored in regs[0:nloc]
	nregs  int32 // full register file size (locals + temps)
	consts []bytecode.Value
	ins    []rins
	exits  []rexit
	traps  []rtrap

	// entries counts hot-loop arrivals across every engine sharing the
	// Code (host-side only; the gate for traceHotEntries).
	entries atomic.Int64
}

// tracePlan indexes traces by loop-head pc; tr[pc] is nil when no
// convertible loop starts at pc.
type tracePlan struct {
	tr []*trace
}

// buildTracePlan discovers and converts every traceable loop of the
// code. Geometry comes from the fused plan slot: segmentation is
// identical with and without superinstruction fusion (only the
// micro-programs differ), so fused and unfused runs share one trace
// program per Code.
func buildTracePlan(c *Code) *tracePlan {
	tp := &tracePlan{tr: make([]*trace, len(c.Instrs))}
	p := c.planFor(true)
	tried := make(map[int]bool)
	for _, lp := range opt.Loops(c.Instrs) {
		if lp.Head >= len(tp.tr) || tried[lp.Head] {
			continue
		}
		tried[lp.Head] = true
		if pcs := linearizeTrace(c, p, lp.Head); pcs != nil {
			tp.tr[lp.Head] = convertTrace(c, lp.Head, pcs)
		}
	}
	return tp
}

// linearizeTrace walks plan segments from the loop head, linearizing the
// fall-through/unconditional path of one iteration. It returns the pcs
// of the iteration's instructions in execution order, or nil when the
// loop is untraceable: a needed pc has no batchable segment (covers
// CALL/RET/NEWARR/HALT and cold glue code), the walk revisits a segment
// without passing the head (an inner loop's back edge — the inner loop
// earns its own trace instead), or the iteration exceeds the size cap.
func linearizeTrace(c *Code, p *plan, head int) []int {
	var pcs []int
	seen := make(map[int]bool)
	cur := head
	for {
		if cur < 0 || cur >= len(p.seg) || seen[cur] {
			return nil
		}
		s := p.seg[cur]
		if s == nil {
			return nil
		}
		seen[cur] = true
		end := int(s.end)
		for pc := cur; pc < end; pc++ {
			pcs = append(pcs, pc)
		}
		if len(pcs) > traceMaxInstrs {
			return nil
		}
		switch in := c.Instrs[end-1]; in.Op {
		case bytecode.JMP:
			if int(in.A) == head {
				return pcs // the back edge: iteration closed
			}
			cur = int(in.A)
		case bytecode.JZ, bytecode.JNZ:
			if int(in.A) == head || end == head {
				return pcs // conditional back edge (either sense)
			}
			cur = end // stay on trace through the fall-through
		default:
			if end == head {
				return pcs // fall-through back into the head
			}
			cur = end
		}
	}
}

// runTrace executes iterations of tr until the next one would not fit
// the sample window (normal return at the head), a side exit fires, or
// a trap fires. The caller has already verified the first iteration
// fits and charged nothing; every path out of this function leaves the
// engine's ledgers, locals, operand stack, and resume pc bit-identical
// to the per-instruction loop's.
//
// Returns the (possibly grown) operand stack, the resume pc, and — for
// traps only — the trap's successor pc and message (msg == "" means no
// trap).
func (e *Engine) runTrace(tr *trace, sc *runScratch, locals []bytecode.Value, lb int, stack []bytecode.Value, workP, cycP *int64) ([]bytecode.Value, int, int32, string) {
	if cap(sc.regs) < int(tr.nregs) {
		sc.regs = make([]bytecode.Value, tr.nregs)
	}
	regs := sc.regs[:tr.nregs]
	nloc := int(tr.nloc)
	copy(regs[:nloc], locals[lb:lb+nloc])

	for {
		// One batched debit per iteration; exits and traps roll back the
		// unexecuted suffix below.
		e.Cycles += tr.cost
		*workP += tr.base
		*cycP += tr.cost

		for i := range tr.ins {
			in := &tr.ins[i]
			switch in.op {
			case rLoadI:
				regs[in.d] = bytecode.Int(int64(in.a))
			case rLoadC:
				regs[in.d] = tr.consts[in.a]
			case rMove:
				regs[in.d] = regs[in.a]
			case rGLoad:
				regs[in.d] = e.Globals[in.a]
			case rGStore:
				e.Globals[in.a] = regs[in.b]
			case rInc:
				regs[in.d].I += int64(in.a)
			case rBin:
				regs[in.d] = bytecode.Int(intBin(in.sub, regs[in.a].I, regs[in.b].I))
			case rBinI:
				regs[in.d] = bytecode.Int(intBin(in.sub, regs[in.a].I, int64(in.b)))
			case rCmp:
				regs[in.d] = bytecode.Bool(intCmp(in.sub, regs[in.a].I, regs[in.b].I))
			case rCmpI:
				regs[in.d] = bytecode.Bool(intCmp(in.sub, regs[in.a].I, int64(in.b)))
			case rNeg:
				regs[in.d] = bytecode.Int(-regs[in.a].I)
			case rNot:
				regs[in.d] = bytecode.Int(^regs[in.a].I)
			case rFBin:
				regs[in.d] = bytecode.Float(fltBin(in.sub, regs[in.a].AsFloat(), regs[in.b].AsFloat()))
			case rFCmp:
				regs[in.d] = bytecode.Bool(fltCmp(in.sub, regs[in.a].AsFloat(), regs[in.b].AsFloat()))
			case rFNeg:
				regs[in.d] = bytecode.Float(-regs[in.a].AsFloat())
			case rFSqrt:
				regs[in.d] = bytecode.Float(math.Sqrt(regs[in.a].AsFloat()))
			case rFAbs:
				regs[in.d] = bytecode.Float(math.Abs(regs[in.a].AsFloat()))
			case rI2F:
				regs[in.d] = bytecode.Float(float64(regs[in.a].I))
			case rF2I:
				regs[in.d] = bytecode.Int(int64(regs[in.a].F))
			case rDivMod:
				y := regs[in.b].I
				if y == 0 {
					msg := "integer division by zero"
					if in.sub == bytecode.IMOD {
						msg = "integer modulo by zero"
					}
					return e.traceTrap(tr, in.x, regs, locals, lb, stack, workP, cycP, msg)
				}
				if in.sub == bytecode.IDIV {
					regs[in.d] = bytecode.Int(regs[in.a].I / y)
				} else {
					regs[in.d] = bytecode.Int(regs[in.a].I % y)
				}
			case rALoad:
				arr, aerr := e.Array(regs[in.a])
				if aerr == nil {
					idx := regs[in.b].AsInt()
					if idx >= 0 && idx < int64(len(arr)) {
						regs[in.d] = arr[idx]
						break
					}
					aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
				}
				return e.traceTrap(tr, in.x, regs, locals, lb, stack, workP, cycP,
					fmt.Sprintf("aload: %v", aerr))
			case rAStore:
				arr, aerr := e.Array(regs[in.a])
				if aerr == nil {
					idx := regs[in.b].AsInt()
					if idx >= 0 && idx < int64(len(arr)) {
						arr[idx] = regs[in.d]
						break
					}
					aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
				}
				return e.traceTrap(tr, in.x, regs, locals, lb, stack, workP, cycP,
					fmt.Sprintf("astore: %v", aerr))
			case rALen:
				arr, aerr := e.Array(regs[in.a])
				if aerr != nil {
					return e.traceTrap(tr, in.x, regs, locals, lb, stack, workP, cycP,
						fmt.Sprintf("alen: %v", aerr))
				}
				regs[in.d] = bytecode.Int(int64(len(arr)))
			case rPrint:
				e.Output = append(e.Output, regs[in.a])
			case rBrTrue:
				if regs[in.a].IsTrue() {
					return e.traceLeave(tr, in.x, regs, locals, lb, stack, workP, cycP)
				}
			case rBrFalse:
				if !regs[in.a].IsTrue() {
					return e.traceLeave(tr, in.x, regs, locals, lb, stack, workP, cycP)
				}
			case rBrCmp:
				if intCmp(in.sub, regs[in.a].I, regs[in.b].I) == (in.d != 0) {
					return e.traceLeave(tr, in.x, regs, locals, lb, stack, workP, cycP)
				}
			case rBrCmpI:
				if intCmp(in.sub, regs[in.a].I, int64(in.b)) == (in.d != 0) {
					return e.traceLeave(tr, in.x, regs, locals, lb, stack, workP, cycP)
				}
			case rBrFCmp:
				if fltCmp(in.sub, regs[in.a].AsFloat(), regs[in.b].AsFloat()) == (in.d != 0) {
					return e.traceLeave(tr, in.x, regs, locals, lb, stack, workP, cycP)
				}
			}
		}

		// Back at the head. Loop only while the next full iteration still
		// fits the sample window; otherwise hand back to the engine loop,
		// which crosses the boundary on the accounted path exactly as the
		// other tiers do.
		if e.Cycles+tr.cost >= e.nextSample {
			copy(locals[lb:lb+nloc], regs[:nloc])
			return stack, int(tr.head), 0, ""
		}
	}
}

// traceLeave takes side exit x: roll back the unexecuted suffix, write
// the register file back to the locals, and rematerialize the symbolic
// operand stack, resuming at the exit's bytecode pc.
func (e *Engine) traceLeave(tr *trace, x int32, regs, locals []bytecode.Value, lb int, stack []bytecode.Value, workP, cycP *int64) ([]bytecode.Value, int, int32, string) {
	ex := &tr.exits[x]
	e.Cycles -= int64(ex.rem)
	*workP -= int64(ex.remBase)
	*cycP -= int64(ex.rem)
	copy(locals[lb:lb+int(tr.nloc)], regs[:tr.nloc])
	for _, p := range ex.push {
		switch symKind(p.kind) {
		case symReg:
			stack = append(stack, regs[p.v])
		case symImm:
			stack = append(stack, bytecode.Int(int64(p.v)))
		default:
			stack = append(stack, tr.consts[p.v])
		}
	}
	return stack, int(ex.pc), 0, ""
}

// traceTrap aborts the run at trap x: same suffix rollback and local
// write-back as a side exit, then the trap surfaces at the successor pc
// with the message the accounted loop would produce.
func (e *Engine) traceTrap(tr *trace, x int32, regs, locals []bytecode.Value, lb int, stack []bytecode.Value, workP, cycP *int64, msg string) ([]bytecode.Value, int, int32, string) {
	t := &tr.traps[x]
	e.Cycles -= int64(t.rem)
	*workP -= int64(t.remBase)
	*cycP -= int64(t.rem)
	copy(locals[lb:lb+int(tr.nloc)], regs[:tr.nloc])
	return stack, 0, t.tpc, msg
}
