package interp

import (
	"fmt"
	"sync/atomic"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/opt"
)

// This file implements the trace tier, the fourth host tier: hot loop
// bodies run as register programs (regir.go) instead of stack programs.
// A trace anchors at a loop head from opt.Loops and linearizes the hot
// path through the fusion plan's segment geometry — following
// fall-throughs and unconditional jumps, recording a side exit at every
// conditional branch — until the path closes back at the head. One
// iteration becomes one register program; the engine runs it in a flat
// loop that charges the whole iteration in a single batched debit.
//
// Two mechanisms widen the tier's reach beyond whole simple loops:
//
// On-stack replacement (OSR). Besides the head trace, the plan carries
// partial traces anchored at the head trace's in-loop side-exit pcs.
// When the switch/fused interpreter finds itself mid-iteration at such a
// pc — most often right after a side exit took the cold arm of a branch
// — it enters the register tier there, runs the REST of the iteration as
// a register program, and rejoins the head trace at the back edge
// (tr.once). Entry state mapping is the same locals→register copy as a
// head entry; no operand-stack mapping is needed because a partial trace
// is built from an empty symbolic stack and refuses to pop below its
// entry depth, so it can only exist at pcs where the remainder of the
// iteration is stack-neutral — any values the interpreter left on the
// stack stay untouched beneath it. Deoptimization from any side exit
// reconstructs interpreter state exactly as head-trace exits do: suffix
// charge rollback, register→locals writeback, symbolic-stack
// rematerialization.
//
// CALL inlining. A loop whose body calls a small non-recursive function
// no longer degrades: the callee's hot path is spliced into the
// iteration (regir.go), its locals pinned to a private register block.
// Each inlined site is guarded by the callee Code's fingerprint against
// the engine's current code table (Engine.PeekCode): on mismatch the
// trace side-exits AT the CALL, with the arguments rematerialized on the
// operand stack and every charge of the call rolled back, so the
// interpreter replays the whole call sequence — including a possibly
// charging Provider fetch — against the new code. Invocation counts and
// the OnInvoke hook fire inside the trace at exactly the interpreter's
// clock position (the trace's overcharge is subtracted around the hook
// and re-added after); if the hook charges compile cycles that push the
// rest of the iteration over the sample window, the trace deoptimizes by
// materializing a real callee frame at its entry (args from the pinned
// block), which is also how a side exit inside the callee body resumes:
// a reconstructed callee frame at the branch target, caller frame
// resuming after the CALL.
//
// Bit identity follows the same two-part argument as the fused and
// closure tiers (fuse.go, closure.go): an iteration (or iteration
// remainder, for OSR) is entered only when its full charge fits inside
// the current sample window, so no sampler tick, cycle-fuse check, or
// interrupt poll can fall inside it; and every side exit and trap
// subtracts the summed charge of the not-yet-executed suffix — split per
// function once calls are inlined — landing on exactly the ledger state,
// stack, locals, frames, and pc of the per-instruction loop. Loops the
// converter cannot express simply never get a trace and keep running on
// the closure/fused path — per-loop degradation, never a virtual
// difference.
//
// Trace activation is two-staged and deterministic on the host side:
// the Code must be hot by sampler count (TraceHotSamples, like the
// closure tier), and then each individual loop must prove itself by
// back-edge arrivals (traceHotEntries) before its register program runs.
// OSR traces inherit their parent head trace's arrival count.
// Engine.EagerRegTier short-circuits both gates for the equivalence
// suites; Engine.EagerOSR only the OSR gate. Neither gate feeds back
// into any virtual observable.

// traceHotEntries is the per-trace back-edge arrival count after which a
// built trace starts executing. Arrivals are counted only when the
// iteration would fit the sample window, so the counter tracks genuine
// execution opportunities.
const traceHotEntries = 4

// trace is the compiled register program of one hot loop (or, for
// once-traces, the tail of one iteration): straight-line register
// instructions, the batched charge split per charged function, side
// exits back to bytecode, trap rollbacks, and inlined call sites.
type trace struct {
	head int32
	// cost is the full batched debit to the engine clock per iteration;
	// cost0/base0 are the shares charged to the trace's own function.
	// Inlined callees' shares live in the parallel xfns/xcost/xbase
	// (nil when nothing is inlined).
	cost         int64
	cost0, base0 int64
	xfns         []int32
	xcost, xbase []int64

	nloc   int32 // locals mirrored in regs[0:nloc]
	nregs  int32 // full register file size (locals + temps + pinned blocks)
	consts []bytecode.Value
	ins    []rins
	exits  []rexit
	traps  []rtrap
	calls  []rcall

	// once marks an OSR partial trace: it covers the tail of one
	// iteration from a mid-loop pc to the back edge and always returns at
	// the head after a single pass (the head trace takes over there).
	// parent is the head trace whose arrival count gates it.
	once   bool
	parent *trace

	// entries counts hot-loop arrivals across every engine sharing the
	// Code (host-side only; the gate for traceHotEntries).
	entries atomic.Int64
}

// tracePlan indexes traces by pc: tr[pc] is the head trace of a loop
// starting at pc, osr[pc] the partial trace entering mid-iteration at pc
// (both nil when absent).
type tracePlan struct {
	tr  []*trace
	osr []*trace

	// missing lists callees that defeated an inlining attempt only
	// because they had never been compiled when the plan was built (a
	// lazy provider compiles on first invocation, which may come after
	// the loop's first frame). traceFor rebuilds the plan once any of
	// them exists; each callee flips nil→non-nil at most once per code
	// table, so rebuilds are bounded.
	missing []int32
}

// retry reports whether rebuilding the plan could now succeed: some
// refusal was provisional (missing callee) and the current code table
// has a body for that callee.
func (tp *tracePlan) retry(peek func(int) *Code) bool {
	if len(tp.missing) == 0 || peek == nil {
		return false
	}
	for _, fn := range tp.missing {
		if peek(int(fn)) != nil {
			return true
		}
	}
	return false
}

// noteMissing records provisional refusals, deduplicated.
func (tp *tracePlan) noteMissing(fns []int32) {
	for _, fn := range fns {
		dup := false
		for _, m := range tp.missing {
			if m == fn {
				dup = true
				break
			}
		}
		if !dup {
			tp.missing = append(tp.missing, fn)
		}
	}
}

// deoptState is the side channel through which runTrace asks the engine
// loop to materialize an inlined callee as a real interpreter frame: at
// its entry (entry=true, after the invocation hook charged cycles that
// broke the window fit) or at a side exit inside its body (resume at pc
// with the callee's operand stack rematerialized from cpush).
type deoptState struct {
	active bool
	entry  bool
	code   *Code
	pc     int32
	lbase  int32
	nargs  int32
	nloc   int32
	tr     *trace
	cpush  []rpush
}

// buildTracePlan discovers and converts every traceable loop of the
// code, then grows OSR entry points at the head traces' in-loop side
// exits. Geometry comes from the fused plan slot: segmentation is
// identical with and without superinstruction fusion (only the
// micro-programs differ), so fused and unfused runs share one trace
// program per inline mode. peek supplies the engine's current code table
// for callee inlining (see Engine.PeekCode); the resulting plan is still
// valid under any other code table because every inlined site re-guards
// at run time.
func buildTracePlan(c *Code, inline bool, peek func(int) *Code) *tracePlan {
	n := len(c.Instrs)
	tp := &tracePlan{tr: make([]*trace, n), osr: make([]*trace, n)}
	p := c.planFor(true)
	loops := opt.Loops(c.Instrs)
	// A head with several back edges (cold arms rejoining the loop) is
	// reported once per back edge; the loop region for OSR purposes is
	// the widest one — exit-handler blocks between the first and last
	// back edge are legitimate mid-iteration entry points.
	lastEnd := make(map[int]int)
	for _, lp := range loops {
		if lp.End > lastEnd[lp.Head] {
			lastEnd[lp.Head] = lp.End
		}
	}
	tried := make(map[int]bool)
	for _, lp := range loops {
		if lp.Head >= n || tried[lp.Head] {
			continue
		}
		tried[lp.Head] = true
		pcs, reason := linearizeFrom(c, p, lp.Head, lp.Head, inline)
		var t *trace
		var miss []int32
		if pcs != nil {
			t, reason, miss = convertTrace(c, lp.Head, pcs, inline, peek)
		}
		if t == nil {
			// A refusal caused only by a never-yet-compiled callee is
			// provisional — the plan is rebuilt when the callee appears —
			// so it is not counted as a degradation.
			if len(miss) == 0 {
				noteDegrade(reason)
			}
			tp.noteMissing(miss)
			continue
		}
		traceStats.built.Add(1)
		tp.tr[lp.Head] = t

		// OSR entry points: for every plain in-loop side exit of the head
		// trace, try to trace the remainder of the iteration from the
		// exit pc back to the head. Exits that left values on the operand
		// stack cannot have a stack-neutral remainder (the head trace's
		// own neutrality proves the remainder must consume them), so the
		// conversion below would refuse them; skip the work.
		for _, ex := range t.exits {
			epc := int(ex.pc)
			if ex.callIdx >= 0 || len(ex.push) != 0 ||
				epc <= lp.Head || epc > lastEnd[lp.Head] || tp.tr[epc] != nil || tp.osr[epc] != nil {
				continue
			}
			opcs, _ := linearizeFrom(c, p, epc, lp.Head, inline)
			if opcs == nil {
				continue
			}
			ot, _, omiss := convertTrace(c, lp.Head, opcs, inline, peek)
			if ot == nil {
				tp.noteMissing(omiss)
				continue
			}
			ot.once = true
			ot.parent = t
			tp.osr[epc] = ot
		}
	}
	return tp
}

// linearizeFrom walks plan segments from start, linearizing the
// fall-through/unconditional path until it closes at head: for
// start == head, one full loop iteration; otherwise the tail of an
// iteration (an OSR trace). It returns the pcs of the path's
// instructions in execution order, with CALL instructions passed through
// for inlining when inline is set, or nil plus a degradation reason:
// a needed pc has no batchable segment (RET/NEWARR/HALT and cold glue
// code), the walk revisits a segment without passing the head (an inner
// loop's back edge — the inner loop earns its own trace instead), or the
// path exceeds the size cap.
func linearizeFrom(c *Code, p *plan, start, head int, inline bool) ([]int, int) {
	var pcs []int
	seen := make(map[int]bool)
	cur := start
	for {
		if cur < 0 || cur >= len(p.seg) {
			return nil, degOther
		}
		if seen[cur] {
			return nil, degInner
		}
		seen[cur] = true
		s := p.seg[cur]
		if s == nil {
			switch c.Instrs[cur].Op {
			case bytecode.CALL:
				if !inline {
					return nil, degCall
				}
				pcs = append(pcs, cur)
				if len(pcs) > traceMaxInstrs {
					return nil, degTooLarge
				}
				cur++ // the callee returns to the next pc
				continue
			case bytecode.RET:
				return nil, degRet
			case bytecode.NEWARR:
				return nil, degNewArr
			case bytecode.HALT:
				return nil, degHalt
			default:
				return nil, degCold
			}
		}
		end := int(s.end)
		for pc := cur; pc < end; pc++ {
			pcs = append(pcs, pc)
		}
		if len(pcs) > traceMaxInstrs {
			return nil, degTooLarge
		}
		switch in := c.Instrs[end-1]; in.Op {
		case bytecode.JMP:
			if int(in.A) == head {
				return pcs, degCount // the back edge: path closed
			}
			cur = int(in.A)
		case bytecode.JZ, bytecode.JNZ:
			if int(in.A) == head || end == head {
				return pcs, degCount // conditional back edge (either sense)
			}
			cur = end // stay on trace through the fall-through
		default:
			if end == head {
				return pcs, degCount // fall-through back into the head
			}
			cur = end
		}
	}
}

// rpushVal rematerializes one symbolic stack slot onto the real operand
// stack at a deoptimization point.
func rpushVal(stack []bytecode.Value, tr *trace, regs []bytecode.Value, p rpush) []bytecode.Value {
	switch symKind(p.kind) {
	case symReg:
		return append(stack, regs[p.v])
	case symImm:
		return append(stack, bytecode.Int(int64(p.v)))
	default:
		return append(stack, tr.consts[p.v])
	}
}

// runTrace executes iterations of tr until the next one would not fit
// the sample window (normal return at the head; after a single pass for
// once-traces), a side exit fires, or a trap fires. The caller has
// already verified the first iteration fits and charged nothing; every
// path out of this function leaves the engine's ledgers, locals, operand
// stack, frames-to-be, and resume pc bit-identical to the
// per-instruction loop's. depth is the current frame-stack depth (the
// inlined-call depth check).
//
// Returns the (possibly grown) operand stack, the resume pc, and — for
// traps only — the trap's successor pc and message (msg == "" means no
// trap). Two further outcomes travel through sc: sc.deopt asks the
// engine loop to materialize an inlined-callee frame, and sc.trapFn
// re-attributes a trap to an inlined callee.
func (e *Engine) runTrace(tr *trace, sc *runScratch, depth int, locals []bytecode.Value, lb int, stack []bytecode.Value, workP, cycP *int64) ([]bytecode.Value, int, int32, string) {
	if cap(sc.regs) < int(tr.nregs) {
		sc.regs = make([]bytecode.Value, tr.nregs)
	}
	regs := sc.regs[:tr.nregs]
	nloc := int(tr.nloc)
	copy(regs[:nloc], locals[lb:lb+nloc])
	if len(tr.calls) > 0 {
		if cap(sc.curCodes) < len(tr.calls) {
			sc.curCodes = make([]*Code, len(tr.calls))
		}
		sc.curCodes = sc.curCodes[:len(tr.calls)]
	}
	if tr.once {
		traceStats.osrEntries.Add(1)
	} else {
		traceStats.headEntries.Add(1)
	}

	for {
		// One batched debit per iteration, split per charged function;
		// exits and traps roll back the unexecuted suffix below.
		e.Cycles += tr.cost
		*workP += tr.base0
		*cycP += tr.cost0
		for k, fn := range tr.xfns {
			e.Work[fn] += tr.xbase[k]
			e.FnCycles[fn] += tr.xcost[k]
		}

		for i := range tr.ins {
			in := &tr.ins[i]
			switch in.op {
			case rLoadI:
				regs[in.d] = bytecode.Int(int64(in.a))
			case rLoadC:
				regs[in.d] = tr.consts[in.a]
			case rMove:
				regs[in.d] = regs[in.a]
			case rGLoad:
				regs[in.d] = e.Globals[in.a]
			case rGStore:
				e.Globals[in.a] = regs[in.b]
			case rInc:
				regs[in.d].I += int64(in.a)
			case rBin:
				regs[in.d] = bytecode.Int(intBin(in.sub, regs[in.a].I, regs[in.b].I))
			case rBinI:
				regs[in.d] = bytecode.Int(intBin(in.sub, regs[in.a].I, int64(in.b)))
			case rCmp:
				regs[in.d] = bytecode.Bool(intCmp(in.sub, regs[in.a].I, regs[in.b].I))
			case rCmpI:
				regs[in.d] = bytecode.Bool(intCmp(in.sub, regs[in.a].I, int64(in.b)))
			case rFBin:
				regs[in.d] = bytecode.Float(fltBin(in.sub, regs[in.a].AsFloat(), regs[in.b].AsFloat()))
			case rFCmp:
				regs[in.d] = bytecode.Bool(fltCmp(in.sub, regs[in.a].AsFloat(), regs[in.b].AsFloat()))
			case rPure1:
				regs[in.d] = semTab1[in.sub](regs[in.a])
			case rPure2:
				regs[in.d] = semTab2[in.sub](regs[in.a], regs[in.b])
			case rPure3:
				regs[in.d] = semTab3[in.sub](regs[in.a], regs[in.b], regs[in.x])
			case rDivMod:
				y := regs[in.b].I
				if y == 0 {
					return e.traceTrap(tr, sc, in.x, regs, locals, lb, stack, workP, cycP, regTrapMsg[in.sub])
				}
				if in.sub == bytecode.IDIV {
					regs[in.d] = bytecode.Int(regs[in.a].I / y)
				} else {
					regs[in.d] = bytecode.Int(regs[in.a].I % y)
				}
			case rALoad:
				arr, aerr := e.Array(regs[in.a])
				if aerr == nil {
					idx := regs[in.b].AsInt()
					if idx >= 0 && idx < int64(len(arr)) {
						regs[in.d] = arr[idx]
						break
					}
					aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
				}
				return e.traceTrap(tr, sc, in.x, regs, locals, lb, stack, workP, cycP,
					fmt.Sprintf("aload: %v", aerr))
			case rAStore:
				arr, aerr := e.Array(regs[in.a])
				if aerr == nil {
					idx := regs[in.b].AsInt()
					if idx >= 0 && idx < int64(len(arr)) {
						arr[idx] = regs[in.d]
						break
					}
					aerr = fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
				}
				return e.traceTrap(tr, sc, in.x, regs, locals, lb, stack, workP, cycP,
					fmt.Sprintf("astore: %v", aerr))
			case rALen:
				arr, aerr := e.Array(regs[in.a])
				if aerr != nil {
					return e.traceTrap(tr, sc, in.x, regs, locals, lb, stack, workP, cycP,
						fmt.Sprintf("alen: %v", aerr))
				}
				regs[in.d] = bytecode.Int(int64(len(arr)))
			case rPrint:
				e.Output = append(e.Output, regs[in.a])
			case rBrTrue:
				if regs[in.a].IsTrue() {
					return e.traceLeave(tr, sc, in.x, regs, locals, lb, stack, workP, cycP)
				}
			case rBrFalse:
				if !regs[in.a].IsTrue() {
					return e.traceLeave(tr, sc, in.x, regs, locals, lb, stack, workP, cycP)
				}
			case rBrCmp:
				if intCmp(in.sub, regs[in.a].I, regs[in.b].I) == (in.d != 0) {
					return e.traceLeave(tr, sc, in.x, regs, locals, lb, stack, workP, cycP)
				}
			case rBrCmpI:
				if intCmp(in.sub, regs[in.a].I, int64(in.b)) == (in.d != 0) {
					return e.traceLeave(tr, sc, in.x, regs, locals, lb, stack, workP, cycP)
				}
			case rBrFCmp:
				if fltCmp(in.sub, regs[in.a].AsFloat(), regs[in.b].AsFloat()) == (in.d != 0) {
					return e.traceLeave(tr, sc, in.x, regs, locals, lb, stack, workP, cycP)
				}
			case rCall:
				rc := &tr.calls[in.x]
				// Inline guard: the engine's current code for the callee
				// must still be what was inlined. On mismatch, side-exit
				// AT the CALL (arguments rematerialized, every charge of
				// the call rolled back) and let the interpreter replay it
				// — including any charging Provider fetch — against the
				// current code.
				cur := e.PeekCode(int(rc.fnIdx))
				if cur != rc.code && (cur == nil || cur.Fingerprint() != rc.fp) {
					traceStats.guardFails.Add(1)
					return e.traceLeave(tr, sc, rc.exitX, regs, locals, lb, stack, workP, cycP)
				}
				sc.curCodes[in.x] = cur
				// Depth check, before the invocation is recorded — the
				// interpreter's push() errors out in the same order. The
				// clock is positioned after the CALL's own charge, where
				// the accounted loop reports this trap (at callee pc 0).
				if depth >= maxCallDepth {
					e.rollbackPost(tr, rc, workP, cycP)
					copy(locals[lb:lb+nloc], regs[:nloc])
					sc.trapFn = rc.fnIdx
					traceStats.traps.Add(1)
					return stack, 0, 0, fmt.Sprintf("call depth exceeds %d", maxCallDepth)
				}
				e.Invocations[rc.fnIdx]++
				if e.OnInvoke != nil {
					// The hook must observe the clock at the accounted
					// post-CALL position: subtract the iteration's
					// still-uncharged suffix, fire, re-add. If the hook
					// charged cycles (a compile) and the remainder no
					// longer fits the sample window, deoptimize by
					// materializing the callee as a real frame at its
					// entry — the interpreter crosses the boundary on the
					// accounted path inside the callee, exactly as it
					// would have.
					e.rollbackPost(tr, rc, workP, cycP)
					e.OnInvoke(int(rc.fnIdx), e.Invocations[rc.fnIdx])
					if e.Cycles+int64(rc.ptot) >= e.nextSample {
						traceStats.inlineDeopts.Add(1)
						copy(locals[lb:lb+nloc], regs[:nloc])
						for _, p := range rc.push {
							stack = rpushVal(stack, tr, regs, p)
						}
						sc.deopt = deoptState{
							active: true, entry: true, code: sc.curCodes[in.x],
							pc: 0, lbase: rc.lbase, nargs: rc.nargs, nloc: rc.nloc, tr: tr,
						}
						return stack, int(rc.callPC) + 1, 0, ""
					}
					e.chargePost(tr, rc, workP, cycP)
				}
				// Fresh activation: non-argument callee locals start zero
				// (the argument registers were filled just above by the
				// trace's own moves).
				for j := rc.lbase + rc.nargs; j < rc.lbase+rc.nloc; j++ {
					regs[j] = bytecode.Value{}
				}
				traceStats.inlinedCalls.Add(1)
			}
		}

		// Back at the head. A once-trace (OSR tail) always hands back —
		// the head trace takes over from here — and StressDeopt forces a
		// hand-back every iteration to hammer the exit/re-entry machinery.
		// Otherwise loop only while the next full iteration still fits the
		// sample window; the engine loop crosses the boundary on the
		// accounted path exactly as the other tiers do.
		if tr.once || e.StressDeopt {
			if e.StressDeopt && !tr.once {
				traceStats.deopts.Add(1)
			}
			copy(locals[lb:lb+nloc], regs[:nloc])
			return stack, int(tr.head), 0, ""
		}
		if e.Cycles+tr.cost >= e.nextSample {
			copy(locals[lb:lb+nloc], regs[:nloc])
			return stack, int(tr.head), 0, ""
		}
	}
}

// rollbackPost subtracts the iteration charges not yet earned at the
// accounted post-CALL position of call site rc: the suffix after the
// CALL item, split per charged function.
func (e *Engine) rollbackPost(tr *trace, rc *rcall, workP, cycP *int64) {
	e.Cycles -= int64(rc.ptot)
	*workP -= int64(rc.premBase)
	*cycP -= int64(rc.prem)
	for _, sr := range rc.pcrem {
		fn := tr.xfns[sr.slot-1]
		e.Work[fn] -= int64(sr.remBase)
		e.FnCycles[fn] -= int64(sr.rem)
	}
}

// chargePost re-adds what rollbackPost subtracted, returning the clock to
// the whole-iteration-charged state the trace runs under.
func (e *Engine) chargePost(tr *trace, rc *rcall, workP, cycP *int64) {
	e.Cycles += int64(rc.ptot)
	*workP += int64(rc.premBase)
	*cycP += int64(rc.prem)
	for _, sr := range rc.pcrem {
		fn := tr.xfns[sr.slot-1]
		e.Work[fn] += int64(sr.remBase)
		e.FnCycles[fn] += int64(sr.rem)
	}
}

// traceLeave takes side exit x: roll back the unexecuted suffix (per
// charged function), write the register file back to the locals, and
// rematerialize the symbolic operand stack, resuming at the exit's
// bytecode pc. A callee exit additionally deposits a frame
// materialization request in sc.deopt: the engine loop reconstructs the
// inlined callee as a real frame resuming at the branch target, with the
// caller set to resume after the CALL.
func (e *Engine) traceLeave(tr *trace, sc *runScratch, x int32, regs, locals []bytecode.Value, lb int, stack []bytecode.Value, workP, cycP *int64) ([]bytecode.Value, int, int32, string) {
	ex := &tr.exits[x]
	e.Cycles -= int64(ex.tot)
	*workP -= int64(ex.remBase)
	*cycP -= int64(ex.rem)
	for _, sr := range ex.crem {
		fn := tr.xfns[sr.slot-1]
		e.Work[fn] -= int64(sr.remBase)
		e.FnCycles[fn] -= int64(sr.rem)
	}
	copy(locals[lb:lb+int(tr.nloc)], regs[:tr.nloc])
	for _, p := range ex.push {
		stack = rpushVal(stack, tr, regs, p)
	}
	traceStats.sideExits.Add(1)
	if ex.callIdx >= 0 {
		rc := &tr.calls[ex.callIdx]
		sc.deopt = deoptState{
			active: true, code: sc.curCodes[ex.callIdx],
			pc: ex.cpc, lbase: rc.lbase, nargs: rc.nargs, nloc: rc.nloc,
			tr: tr, cpush: ex.cpush,
		}
		return stack, int(rc.callPC) + 1, 0, ""
	}
	return stack, int(ex.pc), 0, ""
}

// traceTrap aborts the run at trap x: same suffix rollback and local
// write-back as a side exit, then the trap surfaces at the successor pc
// with the message the accounted loop would produce — re-attributed via
// sc.trapFn when the trapping instruction was inlined from a callee.
func (e *Engine) traceTrap(tr *trace, sc *runScratch, x int32, regs, locals []bytecode.Value, lb int, stack []bytecode.Value, workP, cycP *int64, msg string) ([]bytecode.Value, int, int32, string) {
	t := &tr.traps[x]
	e.Cycles -= int64(t.tot)
	*workP -= int64(t.remBase)
	*cycP -= int64(t.rem)
	for _, sr := range t.crem {
		fn := tr.xfns[sr.slot-1]
		e.Work[fn] -= int64(sr.remBase)
		e.FnCycles[fn] -= int64(sr.rem)
	}
	copy(locals[lb:lb+int(tr.nloc)], regs[:tr.nloc])
	if t.fn >= 0 {
		sc.trapFn = t.fn
	}
	traceStats.traps.Add(1)
	return stack, 0, t.tpc, msg
}
