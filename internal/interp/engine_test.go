package interp

import (
	"strings"
	"testing"

	"evolvevm/internal/bytecode"
)

func mustProg(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	p, err := bytecode.Assemble("t", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func run(t *testing.T, src string, globals map[string]bytecode.Value) (bytecode.Value, *Engine) {
	t.Helper()
	e := NewEngine(mustProg(t, src))
	for k, v := range globals {
		if err := e.SetGlobal(k, v); err != nil {
			t.Fatal(err)
		}
	}
	v, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return v, e
}

func TestRunSumLoop(t *testing.T) {
	src := `
global n
func main() locals i sum
  const 0
  store sum
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load sum
  load i
  iadd
  store sum
  iinc i 1
  jmp loop
done:
  load sum
  ret
end
`
	v, e := run(t, src, map[string]bytecode.Value{"n": bytecode.Int(100)})
	if v.I != 4950 {
		t.Errorf("sum = %v, want 4950", v)
	}
	if e.Cycles <= 0 {
		t.Error("no cycles charged")
	}
}

func TestRunCallsAndRecursion(t *testing.T) {
	src := `
func main() locals r
  const 10
  call fib 1
  ret
end
func fib(n)
  load n
  const 2
  ilt
  jz rec
  load n
  ret
rec:
  load n
  const 1
  isub
  call fib 1
  load n
  const 2
  isub
  call fib 1
  iadd
  ret
end
`
	v, e := run(t, src, nil)
	if v.I != 55 {
		t.Errorf("fib(10) = %v, want 55", v)
	}
	fibIdx, _ := e.Prog.FuncIndex("fib")
	if e.Invocations[fibIdx] != 177 {
		t.Errorf("fib invocations = %d, want 177", e.Invocations[fibIdx])
	}
}

func TestRunFloatAndConversions(t *testing.T) {
	src := `
func main() locals x
  fconst 2
  fsqrt
  fconst 2
  fmul
  f2i
  ret
end
`
	v, _ := run(t, src, nil)
	if v.I != 2 {
		t.Errorf("sqrt(2)*2 truncated = %v, want 2", v)
	}
}

func TestRunArrays(t *testing.T) {
	src := `
func main() locals a i sum
  const 10
  newarr
  store a
  const 0
  store i
fill:
  load i
  const 10
  ige
  jnz sumup
  load a
  load i
  load i
  load i
  imul
  astore
  iinc i 1
  jmp fill
sumup:
  const 0
  store sum
  const 0
  store i
loop:
  load i
  load a
  alen
  ige
  jnz done
  load sum
  load a
  load i
  aload
  iadd
  store sum
  iinc i 1
  jmp loop
done:
  load sum
  ret
end
`
	v, _ := run(t, src, nil)
	if v.I != 285 { // sum of squares 0..9
		t.Errorf("sum of squares = %v, want 285", v)
	}
}

func TestRunGlobalsAndOutput(t *testing.T) {
	src := `
global out
func main() locals x
  const 42
  gstore out
  gload out
  print
  const 0
  ret
end
`
	_, e := run(t, src, nil)
	if v, _ := e.Global("out"); v.I != 42 {
		t.Errorf("global out = %v, want 42", v)
	}
	if len(e.Output) != 1 || e.Output[0].I != 42 {
		t.Errorf("output = %v, want [42]", e.Output)
	}
}

func TestRunHalt(t *testing.T) {
	src := `
func main() locals x
  const 9
  halt
end
`
	v, e := run(t, src, nil)
	if v.I != 9 {
		t.Errorf("halt result = %v, want 9", v)
	}
	if !e.Halted() {
		t.Error("Halted() = false after HALT")
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"div zero", "func main()\n const 1\n const 0\n idiv\n ret\nend\n", "division by zero"},
		{"mod zero", "func main()\n const 1\n const 0\n imod\n ret\nend\n", "modulo by zero"},
		{"array oob", "func main() locals a\n const 3\n newarr\n store a\n load a\n const 5\n aload\n ret\nend\n", "out of range"},
		{"neg array", "func main()\n const -1\n newarr\n ret\nend\n", "negative array length"},
		{"not array", "func main()\n const 7\n alen\n ret\nend\n", "not a live array"},
		{"infinite loop", "func main()\nloop:\n jmp loop\nend\n", "cycle limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(mustProg(t, tc.src))
			e.MaxCycles = 1_000_000
			_, err := e.Run()
			if err == nil {
				t.Fatalf("Run succeeded, want error with %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestDeterministicCycles(t *testing.T) {
	src := `
global n
func main() locals i s
  const 0
  store s
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load s
  load i
  iadd
  store s
  iinc i 1
  jmp loop
done:
  load s
  ret
end
`
	var first int64
	for trial := 0; trial < 3; trial++ {
		_, e := run(t, src, map[string]bytecode.Value{"n": bytecode.Int(1000)})
		if trial == 0 {
			first = e.Cycles
		} else if e.Cycles != first {
			t.Fatalf("trial %d: cycles %d != %d", trial, e.Cycles, first)
		}
	}
}

func TestSamplerAttributesHotMethod(t *testing.T) {
	src := `
func main() locals i
  const 0
  store i
loop:
  load i
  const 200
  ige
  jnz done
  const 0
  call work 1
  pop
  iinc i 1
  jmp loop
done:
  const 0
  ret
end
func work(x) locals j
  const 0
  store j
inner:
  load j
  const 500
  ige
  jnz out
  iinc j 1
  jmp inner
out:
  load x
  ret
end
`
	p := mustProg(t, src)
	e := NewEngine(p)
	e.SampleStride = 5_000
	samples := make(map[int]int)
	e.OnSample = func(fnIdx int) { samples[fnIdx]++ }
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	workIdx, _ := p.FuncIndex("work")
	mainIdx, _ := p.FuncIndex("main")
	if samples[workIdx] == 0 {
		t.Fatal("hot method got no samples")
	}
	if samples[workIdx] <= samples[mainIdx] {
		t.Errorf("samples: work=%d main=%d; want work to dominate",
			samples[workIdx], samples[mainIdx])
	}
	total := samples[workIdx] + samples[mainIdx]
	approx := e.Cycles / e.SampleStride
	if int64(total) < approx-2 || int64(total) > approx+2 {
		t.Errorf("total samples %d, want ~cycles/stride = %d", total, approx)
	}
}

func TestOnInvokeSeesCounts(t *testing.T) {
	src := `
func main() locals i
  const 0
  store i
loop:
  load i
  const 5
  ige
  jnz done
  const 1
  call f 1
  pop
  iinc i 1
  jmp loop
done:
  const 0
  ret
end
func f(x)
  load x
  ret
end
`
	p := mustProg(t, src)
	e := NewEngine(p)
	var counts []int64
	fIdx, _ := p.FuncIndex("f")
	e.OnInvoke = func(fnIdx int, count int64) {
		if fnIdx == fIdx {
			counts = append(counts, count)
		}
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(counts) != 5 || counts[0] != 1 || counts[4] != 5 {
		t.Errorf("invoke counts = %v, want [1 2 3 4 5]", counts)
	}
}

func TestAddCyclesSkipsSamples(t *testing.T) {
	src := "func main()\n const 0\n ret\nend\n"
	e := NewEngine(mustProg(t, src))
	e.SampleStride = 100
	sampled := 0
	e.OnSample = func(int) { sampled++ }
	e.AddCycles(10_000) // compile-time style charge before Run
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sampled != 0 {
		t.Errorf("AddCycles produced %d samples, want 0", sampled)
	}
	if e.Cycles < 10_000 {
		t.Errorf("cycles = %d, want >= 10000", e.Cycles)
	}
}

func TestProviderSwapTakesEffectNextInvocation(t *testing.T) {
	src := `
func main() locals i
  const 0
  store i
loop:
  load i
  const 4
  ige
  jnz done
  const 1
  call f 1
  pop
  iinc i 1
  jmp loop
done:
  const 0
  ret
end
func f(x)
  load x
  ret
end
`
	p := mustProg(t, src)
	e := NewEngine(p)
	fIdx, _ := p.FuncIndex("f")

	slow := NewCode(fIdx, p.Funcs[fIdx], -1, 100)
	fast := NewCode(fIdx, p.Funcs[fIdx], 2, 40)
	var served []int
	cur := slow
	base := e.Provider
	e.Provider = func(fn int) *Code {
		if fn == fIdx {
			served = append(served, cur.Level)
			return cur
		}
		return base(fn)
	}
	e.OnInvoke = func(fn int, count int64) {
		if fn == fIdx && count == 2 {
			cur = fast // "recompile" after the 2nd invocation begins
		}
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{-1, -1, 2, 2}
	if len(served) != len(want) {
		t.Fatalf("served %v, want %v", served, want)
	}
	for i := range want {
		if served[i] != want[i] {
			t.Fatalf("served %v, want %v", served, want)
		}
	}
}

func TestCostScaleReducesCycles(t *testing.T) {
	src := `
func main() locals i
  const 0
  store i
loop:
  load i
  const 1000
  ige
  jnz done
  iinc i 1
  jmp loop
done:
  const 0
  ret
end
`
	p := mustProg(t, src)

	cycles := func(scale int) int64 {
		e := NewEngine(p)
		code := NewCode(0, p.Funcs[0], 2, scale)
		e.Provider = func(int) *Code { return code }
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Cycles
	}
	full, half := cycles(100), cycles(50)
	if half >= full {
		t.Errorf("scale 50 cycles %d >= scale 100 cycles %d", half, full)
	}
	ratio := float64(half) / float64(full)
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("cycle ratio = %.3f, want ~0.5", ratio)
	}
}
