package interp

import (
	"strings"
	"testing"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/gc"
)

// churnSrc allocates a temp array per iteration (garbage unless
// retained): every keepevery-th temp is stored into the keep array — a
// nested array-of-arrays, so marking must trace interiors. The result
// mixes temp contents and retained contents, catching any collector that
// frees live data or resurrects dead slots.
const churnSrc = `
global iters
global keepevery
global tmpsize
global keep
global result

func main() locals i t j acc ki
  const 0
  store acc
  const 0
  store ki
  const 0
  store i
loop:
  load i
  gload iters
  ige
  jnz check
  gload tmpsize
  newarr
  store t
  const 0
  store j
fill:
  load j
  gload tmpsize
  ige
  jnz filled
  load t
  load j
  load i
  load j
  iadd
  astore
  iinc j 1
  jmp fill
filled:
  load acc
  load t
  const 0
  aload
  iadd
  store acc
  load i
  gload keepevery
  imod
  jnz skip
  gload keep
  load ki
  load t
  astore
  iinc ki 1
skip:
  iinc i 1
  jmp loop
check:
  const 0
  store j
verify:
  load j
  load ki
  ige
  jnz done
  load acc
  gload keep
  load j
  aload
  const 1
  aload
  iadd
  store acc
  iinc j 1
  jmp verify
done:
  load acc
  gstore result
  gload result
  ret
end
`

func runChurn(t *testing.T, cfg gc.Config, iters, keepevery, tmpsize int64) (*Engine, bytecode.Value) {
	t.Helper()
	prog, err := bytecode.Assemble("churn", churnSrc)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(prog)
	e.GC = cfg
	keepSlots := iters/keepevery + 1
	ref, err := e.NewArray(keepSlots)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]bytecode.Value{
		"iters":     bytecode.Int(iters),
		"keepevery": bytecode.Int(keepevery),
		"tmpsize":   bytecode.Int(tmpsize),
		"keep":      ref,
	} {
		if err := e.SetGlobal(name, v); err != nil {
			t.Fatal(err)
		}
	}
	v, err := e.Run()
	if err != nil {
		t.Fatalf("run with %v: %v", cfg, err)
	}
	return e, v
}

func TestGCPoliciesPreserveSemantics(t *testing.T) {
	_, want := runChurn(t, gc.Config{}, 200, 10, 50)
	for _, policy := range []gc.Policy{gc.MarkSweep, gc.Copying} {
		e, got := runChurn(t, gc.Config{Policy: policy, BudgetCells: 2000}, 200, 10, 50)
		if !got.Equal(want) {
			t.Errorf("%v: result %v, want %v", policy, got, want)
		}
		if len(e.GCStats.Collections) == 0 {
			t.Errorf("%v: no collections despite tight budget", policy)
		}
		if e.GCStats.GCCycles <= 0 || e.GCStats.FreedCells <= 0 {
			t.Errorf("%v: stats not recorded: %+v", policy, e.GCStats)
		}
		if e.LiveCells() > 2000 {
			t.Errorf("%v: live cells %d exceed budget", policy, e.LiveCells())
		}
	}
}

func TestGCKeepsLiveDataIntact(t *testing.T) {
	for _, policy := range []gc.Policy{gc.MarkSweep, gc.Copying} {
		e, _ := runChurn(t, gc.Config{Policy: policy, BudgetCells: 1500}, 100, 5, 40)
		keepRef, err := e.Global("keep")
		if err != nil {
			t.Fatal(err)
		}
		keep, err := e.Array(keepRef)
		if err != nil {
			t.Fatalf("%v: keep array dangling: %v", policy, err)
		}
		// keep[k] holds the temp from iteration 5k; its cell j is 5k+j.
		for k := 0; k < 100/5; k++ {
			inner, err := e.Array(keep[k])
			if err != nil {
				t.Fatalf("%v: retained array %d dangling: %v", policy, k, err)
			}
			for j := 0; j < 3; j++ {
				want := int64(5*k + j)
				if inner[j].I != want {
					t.Fatalf("%v: keep[%d][%d] = %v, want %d (live data corrupted)",
						policy, k, j, inner[j], want)
				}
			}
		}
	}
}

func TestGCWithoutBudgetNeverCollects(t *testing.T) {
	e, _ := runChurn(t, gc.Config{Policy: gc.MarkSweep}, 50, 5, 10)
	if len(e.GCStats.Collections) != 0 {
		t.Error("collection with zero budget")
	}
}

func TestGCOutOfMemory(t *testing.T) {
	// Retain everything: live data exceeds budget -> deterministic OOM.
	prog, err := bytecode.Assemble("churn", churnSrc)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(prog)
	e.GC = gc.Config{Policy: gc.Copying, BudgetCells: 300}
	ref, err := e.NewArray(100)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]bytecode.Value{
		"iters":     bytecode.Int(100),
		"keepevery": bytecode.Int(1), // keep every temp alive
		"tmpsize":   bytecode.Int(50),
		"keep":      ref,
	} {
		if err := e.SetGlobal(name, v); err != nil {
			t.Fatal(err)
		}
	}
	_, err = e.Run()
	if err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Errorf("retaining workload got %v, want out-of-memory", err)
	}
}

func TestGCCostModelsDiffer(t *testing.T) {
	// Low retention: Copying (pays for live only) must beat MarkSweep
	// (pays per slot examined) on GC cycles.
	msLow, _ := runChurn(t, gc.Config{Policy: gc.MarkSweep, BudgetCells: 2000}, 400, 100, 50)
	cpLow, _ := runChurn(t, gc.Config{Policy: gc.Copying, BudgetCells: 2000}, 400, 100, 50)
	if cpLow.GCStats.GCCycles >= msLow.GCStats.GCCycles {
		t.Errorf("low retention: copying GC cycles %d >= marksweep %d",
			cpLow.GCStats.GCCycles, msLow.GCStats.GCCycles)
	}

	// The recorded observables let the oracle pick the cheaper policy.
	low := gc.IdealPolicy(cpLow.GCStats.Collections, cpLow.GCStats.Allocs)
	if low != gc.Copying {
		t.Errorf("oracle picked %v for low retention, want copying", low)
	}
}

func TestGCIdealPolicyFlipsWithRetention(t *testing.T) {
	// High retention, few big live arrays, occasional small garbage:
	// sweeping a handful of slots is cheap, copying the live data is not.
	cols := []gc.Collection{{LiveCells: 10000, TotalCells: 10100, FreedCells: 100}}
	if got := gc.IdealPolicy(cols, 50); got != gc.MarkSweep {
		t.Errorf("high retention ideal = %v, want marksweep", got)
	}
	cols = []gc.Collection{{LiveCells: 50, TotalCells: 9050, FreedCells: 9000}}
	if got := gc.IdealPolicy(cols, 50); got != gc.Copying {
		t.Errorf("low retention ideal = %v, want copying", got)
	}
}

func TestGCMarkSweepReusesSlots(t *testing.T) {
	e, _ := runChurn(t, gc.Config{Policy: gc.MarkSweep, BudgetCells: 1200}, 300, 50, 30)
	// With slot reuse the heap slot count stays bounded well below the
	// 300 allocations performed.
	if len(e.heap) > 150 {
		t.Errorf("marksweep heap grew to %d slots for 300 allocs", len(e.heap))
	}
}

func TestGCCopyingCompactsHeap(t *testing.T) {
	e, _ := runChurn(t, gc.Config{Policy: gc.Copying, BudgetCells: 1200}, 300, 50, 30)
	live := 0
	for _, arr := range e.heap {
		if arr != nil {
			live++
		}
	}
	if live != len(e.heap) {
		t.Error("copying heap contains dead slots")
	}
}
