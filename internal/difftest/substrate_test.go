package difftest

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"

	"evolvevm/internal/aos"
	"evolvevm/internal/bgcompile"
	"evolvevm/internal/gc"
	"evolvevm/internal/interp"
	"evolvevm/internal/jit"
	"evolvevm/internal/vm"
)

// This file proves the host performance layer — superinstruction fusion,
// block-batched cycle accounting, and the cross-run code cache — is
// unobservable in virtual terms: every ledger, sample profile, trap, and
// heap cell is bit-identical with the substrate on, partially on, and off.
//
// Unlike the cross-tier oracle, these comparisons do NOT skip
// resource-trapped runs: a cycle-limit trap must fire at the identical
// instruction under every substrate mode, so trapped executions are
// compared bit-for-bit like completed ones.

// substrateModes enumerates the metamorphic ladder: the original
// per-instruction loop, batching without fusion, the full fused switch,
// the closure-threaded tier (eager, so every tier from baseline up is
// threaded from the first instruction), fused and unfused, and the
// register-converted trace tier (eager, entered from the first back-edge
// arrival), again fused and unfused. "full" leaves closures and traces on
// their production hotness gates, so it also covers mid-run promotion
// from the fused switch to the threaded and register forms.
var substrateModes = []struct {
	name      string
	configure func(*interp.Engine)
}{
	{"off", func(e *interp.Engine) { e.DisableBatching = true }},
	{"batch-nofuse", func(e *interp.Engine) { e.DisableFusion = true; e.DisableClosures = true; e.DisableRegTier = true }},
	{"full", nil},
	{"closure", func(e *interp.Engine) { e.EagerClosures = true; e.DisableRegTier = true }},
	{"closure-nofuse", func(e *interp.Engine) { e.EagerClosures = true; e.DisableFusion = true; e.DisableRegTier = true }},
	{"noclosure", func(e *interp.Engine) { e.DisableClosures = true }},
	{"reg", func(e *interp.Engine) { e.EagerRegTier = true }},
	{"reg-nofuse", func(e *interp.Engine) { e.EagerRegTier = true; e.DisableFusion = true }},
	{"reg-noclosure", func(e *interp.Engine) { e.EagerRegTier = true; e.DisableClosures = true }},
	{"noreg", func(e *interp.Engine) { e.DisableRegTier = true }},
	// OSR / deopt / inlining ladder: forced mid-iteration entry at every
	// OSR point, forced deoptimization back to the accounted loop after a
	// single trace iteration (every exit boundary's state mapping fires),
	// OSR disabled entirely (loop-head entries only), and CALL inlining
	// refused (traces degrade at calls, pre-inlining behaviour).
	{"osr-eager", func(e *interp.Engine) { e.EagerRegTier = true; e.EagerOSR = true }},
	{"osr-deopt", func(e *interp.Engine) { e.EagerRegTier = true; e.EagerOSR = true; e.StressDeopt = true }},
	{"noosr", func(e *interp.Engine) { e.EagerRegTier = true; e.DisableOSR = true }},
	{"noinline", func(e *interp.Engine) { e.EagerRegTier = true; e.DisableCallInline = true }},
}

// withEagerReg layers the CI force-enable knobs over a mode: when
// EVOLVEVM_EAGER_REGTIER is set, every mode that leaves the register tier
// enabled enters traces eagerly, so the soak exercises the register
// executor on all generated code rather than only on loops that cross the
// hotness thresholds; EVOLVEVM_EAGER_OSR additionally forces OSR entry at
// every mid-loop entry point. EVOLVEVM_ASYNC_COMPILE attaches a shared
// background compilation pool to every engine, so the whole mode ladder
// reruns with plans built by pool workers and CAS-installed mid-run
// (eager modes still build inline — they need plans before the first
// instruction). Modes that disable a tier (or batching entirely) are
// unaffected — their configure runs last and wins.
func withEagerReg(configure func(*interp.Engine)) func(*interp.Engine) {
	eagerReg := os.Getenv("EVOLVEVM_EAGER_REGTIER") != ""
	eagerOSR := os.Getenv("EVOLVEVM_EAGER_OSR") != ""
	async := os.Getenv("EVOLVEVM_ASYNC_COMPILE") != ""
	if !eagerReg && !eagerOSR && !async {
		return configure
	}
	return func(e *interp.Engine) {
		if eagerReg {
			e.EagerRegTier = true
		}
		if eagerOSR {
			e.EagerOSR = true
		}
		if async {
			e.BgCompile = sharedAsyncPool()
		}
		if configure != nil {
			configure(e)
		}
	}
}

// sharedAsyncPool lazily builds the one background compilation pool the
// env-layered soak passes share. Never closed: it lives for the test
// process, like the exec layer's default pool.
var (
	asyncPoolOnce sync.Once
	asyncPool     *bgcompile.Pool
)

func sharedAsyncPool() *bgcompile.Pool {
	asyncPoolOnce.Do(func() { asyncPool = bgcompile.NewPool(0, 0) })
	return asyncPool
}

// execDiff reports how two Execs diverge in any observable — semantic
// state via Compare, plus every cycle ledger and the per-function sample
// profile — or nil when bit-identical.
func execDiff(ref, got *Exec) error {
	if err := Compare(ref, got); err != nil {
		return err
	}
	if ref.Cycles != got.Cycles || ref.ExecCycles != got.ExecCycles ||
		ref.Work != got.Work || ref.CompileCycles != got.CompileCycles ||
		ref.GCCycles != got.GCCycles || ref.AllocCycles != got.AllocCycles {
		return fmt.Errorf("ledger diverged:\nref: cycles=%d exec=%d work=%d compile=%d gc=%d alloc=%d\ngot: cycles=%d exec=%d work=%d compile=%d gc=%d alloc=%d",
			ref.Cycles, ref.ExecCycles, ref.Work, ref.CompileCycles, ref.GCCycles, ref.AllocCycles,
			got.Cycles, got.ExecCycles, got.Work, got.CompileCycles, got.GCCycles, got.AllocCycles)
	}
	if !reflect.DeepEqual(ref.FnSamples, got.FnSamples) {
		return fmt.Errorf("sample profile diverged:\nref: %v\ngot: %v", ref.FnSamples, got.FnSamples)
	}
	return nil
}

// execBitIdentical asserts two Execs agree on every observable.
func execBitIdentical(t *testing.T, ctx string, ref, got *Exec) {
	t.Helper()
	if err := execDiff(ref, got); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
}

// TestSubstrateBitIdentical runs generated programs at every tier with
// the substrate off (reference), batched-unfused, and fully on, asserting
// bit-identical Execs — including runs that trap, resource limits
// included.
func TestSubstrateBitIdentical(t *testing.T) {
	n := int64(soakN(t) / 5) // 400 seeds in full mode, 20 under -short
	seeds := make([]int64, 0, n)
	if *seedFlag >= 0 {
		seeds = append(seeds, *seedFlag)
	} else {
		for s := int64(0); s < n; s++ {
			seeds = append(seeds, s)
		}
	}
	var checked int
	for _, seed := range seeds {
		g := genFor(seed)
		for k, input := range g.Inputs {
			for level := jit.MinLevel; level <= jit.MaxLevel; level++ {
				ref, err := RunTierConfigured(g.Prog, level, gc.Config{}, preCap,
					g.NumericGlobals, input, substrateModes[0].configure)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, mode := range substrateModes[1:] {
					got, err := RunTierConfigured(g.Prog, level, gc.Config{}, preCap,
						g.NumericGlobals, input, withEagerReg(mode.configure))
					if err != nil {
						t.Fatalf("seed %d mode %s: %v", seed, mode.name, err)
					}
					ctx := fmt.Sprintf("seed %d input %d level %d mode %s", seed, k, level, mode.name)
					execBitIdentical(t, ctx, ref, got)
				}
				checked++
			}
		}
	}
	t.Logf("substrate: %d (seed, input, tier) executions bit-identical across %d modes",
		checked, len(substrateModes))
	if checked == 0 {
		t.Fatal("substrate soak checked zero runs")
	}
}

// TestSubstrateAsyncCompile holds background tier compilation to the
// bit-identity bar: runs whose closure and trace plans are built by pool
// workers and CAS-installed at arbitrary wall-clock moments mid-run —
// including several submitters racing each other on one pool, where
// in-flight dedup leaves some runs executing in lower tiers the whole
// way — must match the serial sync-compile oracle in every observable.
// At drain, the pool's flow must conserve: every submit accounted as
// exactly one of built, lost-install, dropped, or deduped.
func TestSubstrateAsyncCompile(t *testing.T) {
	pool := bgcompile.NewPool(2, 32)
	defer pool.Close()
	syncOracle := func(e *interp.Engine) { e.SyncCompile = true }
	async := func(e *interp.Engine) { e.BgCompile = pool }

	n := int64(soakN(t) / 10) // 200 seeds in full mode, 10 under -short
	seeds := make([]int64, 0, n)
	if *seedFlag >= 0 {
		seeds = append(seeds, *seedFlag)
	} else {
		for s := int64(0); s < n; s++ {
			seeds = append(seeds, s)
		}
	}
	var checked int
	for _, seed := range seeds {
		g := genFor(seed)
		for k, input := range g.Inputs {
			for level := jit.MinLevel; level <= jit.MaxLevel; level++ {
				ref, err := RunTierConfigured(g.Prog, level, gc.Config{}, preCap,
					g.NumericGlobals, input, syncOracle)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				got, err := RunTierConfigured(g.Prog, level, gc.Config{}, preCap,
					g.NumericGlobals, input, async)
				if err != nil {
					t.Fatalf("seed %d async: %v", seed, err)
				}
				ctx := fmt.Sprintf("seed %d input %d level %d async", seed, k, level)
				execBitIdentical(t, ctx, ref, got)

				// Concurrent-submitter leg (top tier only, where every plan
				// kind is in play): four goroutines run the same execution
				// against the shared pool while its workers install plans.
				if level == jit.MaxLevel {
					errc := make(chan error, 4)
					for w := 0; w < 4; w++ {
						go func() {
							got, err := RunTierConfigured(g.Prog, level, gc.Config{}, preCap,
								g.NumericGlobals, input, async)
							if err != nil {
								errc <- err
								return
							}
							errc <- execDiff(ref, got)
						}()
					}
					for w := 0; w < 4; w++ {
						if err := <-errc; err != nil {
							t.Fatalf("%s (concurrent): %v", ctx, err)
						}
					}
				}
				checked++
			}
		}
	}
	pool.Drain()
	st := pool.Stats()
	if got := st.Built + st.LostInstalls + st.Dropped + st.Deduped; got != st.Enqueued {
		t.Fatalf("pool counters do not conserve: built %d + lost %d + dropped %d + deduped %d = %d, enqueued %d",
			st.Built, st.LostInstalls, st.Dropped, st.Deduped, got, st.Enqueued)
	}
	t.Logf("async compile: %d executions bit-identical vs sync oracle (pool: enqueued=%d built=%d deduped=%d dropped=%d)",
		checked, st.Enqueued, st.Built, st.Deduped, st.Dropped)
	if checked == 0 {
		t.Fatal("async compile soak checked zero runs")
	}
}

// TestSubstrateBitIdenticalGC reruns a corpus slice under both collectors
// with a tight heap budget: GC pause charges go through AddCycles, whose
// interaction with batched charging is exactly the subtle path the fast
// path's sample-window guard protects.
func TestSubstrateBitIdenticalGC(t *testing.T) {
	n := int64(soakN(t) / 10)
	if *seedFlag >= 0 {
		n = 0
	}
	cfgs := []gc.Config{
		{Policy: gc.MarkSweep, BudgetCells: 48},
		{Policy: gc.Copying, BudgetCells: 48},
	}
	var checked int
	for seed := int64(0); seed < n; seed++ {
		g := genFor(seed)
		for k, input := range g.Inputs {
			for _, cfg := range cfgs {
				for level := jit.MinLevel; level <= jit.MaxLevel; level++ {
					ref, err := RunTierConfigured(g.Prog, level, cfg, preCap,
						g.NumericGlobals, input, substrateModes[0].configure)
					if err != nil {
						t.Fatalf("seed %d gc=%s: %v", seed, cfg.Policy, err)
					}
					for _, mode := range substrateModes[1:] {
						got, err := RunTierConfigured(g.Prog, level, cfg, preCap,
							g.NumericGlobals, input, withEagerReg(mode.configure))
						if err != nil {
							t.Fatalf("seed %d gc=%s mode %s: %v", seed, cfg.Policy, mode.name, err)
						}
						ctx := fmt.Sprintf("seed %d input %d gc=%s level %d mode %s",
							seed, k, cfg.Policy, level, mode.name)
						execBitIdentical(t, ctx, ref, got)
					}
					checked++
				}
			}
		}
	}
	t.Logf("substrate+gc: %d executions bit-identical", checked)
	if n > 0 && checked == 0 {
		t.Fatal("substrate gc soak checked zero runs")
	}
}

// machineState is everything a harness observes from one vm.Machine run.
type machineState struct {
	ex             *Exec
	totalCycles    int64
	compileCycles  int64
	overheadCycles int64
	recompilations int
	samples        []int64
	levels         []int
}

func runMachine(t *testing.T, g *Generated, seed int64, configure func(*vm.Machine)) *machineState {
	t.Helper()
	m := vm.New(g.Prog, jit.DefaultConfig(), aos.NewReactive())
	m.Engine.MaxCycles = preCap
	for j, s := range g.NumericGlobals {
		if j < len(g.Inputs[0]) {
			m.Engine.Globals[s] = g.Inputs[0][j]
		}
	}
	if configure != nil {
		configure(m)
	}
	st := &machineState{ex: &Exec{}}
	res, err := m.Run()
	if err != nil {
		re, ok := err.(*interp.RuntimeError)
		if !ok {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st.ex.Trap = re.Msg
	}
	captureState(st.ex, m.Engine, res)
	if lerr := m.LedgerError(); lerr != nil {
		t.Fatalf("seed %d: %v", seed, lerr)
	}
	st.totalCycles = m.TotalCycles()
	st.compileCycles = m.CompileCycles
	st.overheadCycles = m.OverheadCycles
	st.recompilations = m.Recompilations
	st.samples = append([]int64(nil), m.Samples...)
	st.levels = m.Levels()
	return st
}

// TestSubstrateMachine drives the full vm.Machine with the reactive AOS
// controller — mid-run recompilation, sample-triggered compiles, the
// whole feedback loop — with the substrate on vs off, including the
// cross-run code cache, and asserts the machines are indistinguishable:
// same result, traps, cycle ledgers, per-function samples, and final
// compilation levels. The shared cache persists across all seeds, so
// later iterations exercise genuine cross-run cache hits.
func TestSubstrateMachine(t *testing.T) {
	n := int64(soakN(t) / 10)
	seeds := make([]int64, 0, n)
	if *seedFlag >= 0 {
		seeds = append(seeds, *seedFlag)
	} else {
		for s := int64(0); s < n; s++ {
			seeds = append(seeds, s)
		}
	}
	cache := jit.NewCache()
	var checked int
	for _, seed := range seeds {
		g := genFor(seed)
		if len(g.Inputs) == 0 {
			continue
		}
		ref := runMachine(t, g, seed, func(m *vm.Machine) {
			m.Engine.DisableBatching = true
		})
		full := runMachine(t, g, seed, func(m *vm.Machine) {
			m.Compiler.UseShared(cache)
		})
		// Second cached run of the same program: every compile must now be
		// a shared-cache hit, with identical virtual charges.
		again := runMachine(t, g, seed, func(m *vm.Machine) {
			m.Compiler.UseShared(cache)
		})
		for _, got := range []*machineState{full, again} {
			ctx := fmt.Sprintf("seed %d", seed)
			execBitIdentical(t, ctx, ref.ex, got.ex)
			if ref.totalCycles != got.totalCycles || ref.compileCycles != got.compileCycles ||
				ref.overheadCycles != got.overheadCycles || ref.recompilations != got.recompilations {
				t.Fatalf("%s: machine ledger diverged: ref total=%d compile=%d overhead=%d recomp=%d, got total=%d compile=%d overhead=%d recomp=%d",
					ctx, ref.totalCycles, ref.compileCycles, ref.overheadCycles, ref.recompilations,
					got.totalCycles, got.compileCycles, got.overheadCycles, got.recompilations)
			}
			if !reflect.DeepEqual(ref.samples, got.samples) {
				t.Fatalf("%s: machine samples diverged: %v vs %v", ctx, ref.samples, got.samples)
			}
			if !reflect.DeepEqual(ref.levels, got.levels) {
				t.Fatalf("%s: final levels diverged: %v vs %v", ctx, ref.levels, got.levels)
			}
		}
		checked++
	}
	cs := cache.Stats()
	t.Logf("machine substrate: %d programs bit-identical; code cache %d hits / %d misses / %d entries",
		checked, cs.Hits, cs.Misses, cs.Entries)
	if checked == 0 {
		t.Fatal("machine substrate soak checked zero runs")
	}
	if *seedFlag < 0 && checked > 1 && cs.Hits == 0 {
		t.Error("cross-run code cache never hit across repeated runs")
	}
}
