package difftest

import (
	"context"
	"fmt"
	"testing"

	"evolvevm/internal/exec"
	"evolvevm/internal/harness"
	"evolvevm/internal/programs"
	"evolvevm/internal/serve"
	"evolvevm/internal/traffic"
)

func programByName(t *testing.T, name string) *programs.Benchmark {
	t.Helper()
	b := programs.ByName(name)
	if b == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	return b
}

// This file extends the substrate soak through the serving stack: the
// same multi-tenant trace served on every host execution tier must
// produce byte-identical virtual outcomes, and the serve path must agree
// with a direct interpreter-harness oracle run outside the server.

// serveTiers pins the serving front end onto each of the four host
// execution tiers: the original per-instruction switch, the fused
// batching switch, the closure-threaded tier, and the register-converted
// trace tier (entered eagerly so short serving runs reach it).
var serveTiers = []struct {
	name string
	sub  exec.Substrate
}{
	{"switch", exec.Substrate{NoBatching: true}},
	{"fused", exec.Substrate{NoClosures: true, NoRegTier: true}},
	{"closure", exec.Substrate{NoRegTier: true}},
	{"reg", exec.Substrate{EagerRegTier: true}},
}

// soakTrace is the shared serving workload: three tenants over two
// input-sensitive benchmarks, dense arrivals, no deadlines.
func soakTrace(t *testing.T, requests int) (*traffic.Trace, []string) {
	t.Helper()
	benches := []string{"compress", "search"}
	tr, err := traffic.Generate(traffic.GenConfig{
		Seed:     17,
		Requests: requests,
		Tenants:  3,
		Benches:  benches,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, benches
}

func serveSoakConfig(benches []string, sc harness.Scenario, sub exec.Substrate) serve.Config {
	return serve.Config{
		Workers:     4,
		QueueDepth:  32,
		EpochLength: 12,
		Scenario:    sc,
		Seed:        17,
		CorpusSize:  4,
		Benches:     benches,
		Substrate:   sub,
	}
}

func serveTrace(t *testing.T, cfg serve.Config, tr *traffic.Trace) []traffic.Outcome {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Run(context.Background(), tr); err != nil {
		t.Fatal(err)
	}
	if err := s.LedgerBalanced(); err != nil {
		t.Fatal(err)
	}
	return s.Outcomes()
}

// TestServeSoakAcrossHostTiers serves one trace under the Evolve
// scenario on all four host tiers plus the production default and
// asserts every virtual outcome — status, trap, cycles, and the full
// response checksum (which folds the result value and the prediction
// bit) — is identical. The host execution tier must be unobservable
// through the entire serving stack: admission, chain scheduling, epoch
// barriers, shared-tier seeding, and the learner itself.
func TestServeSoakAcrossHostTiers(t *testing.T) {
	requests := 48
	if !testing.Short() {
		requests = 120
	}
	tr, benches := soakTrace(t, requests)

	ref := serveTrace(t, serveSoakConfig(benches, harness.ScenarioEvolve, exec.Substrate{}), tr)
	if len(ref) != requests {
		t.Fatalf("reference served %d outcomes, want %d", len(ref), requests)
	}
	for _, tier := range serveTiers {
		got := serveTrace(t, serveSoakConfig(benches, harness.ScenarioEvolve, tier.sub), tr)
		if len(got) != len(ref) {
			t.Fatalf("tier %s: %d outcomes, want %d", tier.name, len(got), len(ref))
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("tier %s: seq %d diverged from full substrate:\nref: %+v\ngot: %+v",
					tier.name, ref[i].Seq, ref[i], got[i])
			}
		}
	}
	t.Logf("serve soak: %d outcomes bit-identical across %d host tiers", len(ref), len(serveTiers)+1)
}

// TestServeSoakMatchesDirectOracle serves a trace under the Null
// scenario — no cross-run learning, so every request's outcome is a pure
// function of (benchmark, input) — and checks each outcome against a
// direct harness run that never touches the server: same program, same
// corpus, no pool, no admission, no session. Any disagreement means the
// serving stack itself perturbed an execution. The oracle leg repeats on
// every host tier, so a tier-specific serving bug cannot hide behind the
// tier-invariance test above.
func TestServeSoakMatchesDirectOracle(t *testing.T) {
	requests := 32
	if !testing.Short() {
		requests = 80
	}
	tr, benches := soakTrace(t, requests)

	// Direct oracle: one runner per benchmark at the default substrate.
	type oracleKey struct {
		bench string
		input int
	}
	oracle := make(map[oracleKey]*harness.RunResult)
	runners := make(map[string]*harness.Runner)
	for _, name := range benches {
		r, err := harness.NewRunner(programByName(t, name), 4, 17)
		if err != nil {
			t.Fatal(err)
		}
		runners[name] = r
	}
	for _, req := range tr.Requests {
		r := runners[req.Bench]
		idx := ((req.Input % len(r.Inputs)) + len(r.Inputs)) % len(r.Inputs)
		key := oracleKey{req.Bench, idx}
		if oracle[key] != nil {
			continue
		}
		res, err := r.RunRequest(context.Background(), harness.ScenarioNull, r.Inputs[idx])
		if err != nil {
			t.Fatalf("oracle %s input %d: %v", req.Bench, idx, err)
		}
		oracle[key] = res
	}

	for _, tier := range append([]struct {
		name string
		sub  exec.Substrate
	}{{"full", exec.Substrate{}}}, serveTiers...) {
		out := serveTrace(t, serveSoakConfig(benches, harness.ScenarioNull, tier.sub), tr)
		for i, o := range out {
			req := tr.Requests[i]
			if o.Seq != req.Seq {
				t.Fatalf("tier %s: outcome %d has seq %d, want %d", tier.name, i, o.Seq, req.Seq)
			}
			r := runners[req.Bench]
			idx := ((req.Input % len(r.Inputs)) + len(r.Inputs)) % len(r.Inputs)
			want := oracle[oracleKey{req.Bench, idx}]
			ctx := fmt.Sprintf("tier %s seq %d %s/%s input %s",
				tier.name, o.Seq, req.Tenant, req.Bench, r.Inputs[idx].ID)
			wantStatus := traffic.StatusOK
			if want.Trap != "" {
				wantStatus = traffic.StatusTrap
			}
			if o.Status != wantStatus || o.Trap != want.Trap {
				t.Fatalf("%s: serve status %q trap %q, oracle status %q trap %q",
					ctx, o.Status, o.Trap, wantStatus, want.Trap)
			}
			if o.Cycles != want.Cycles {
				t.Fatalf("%s: serve cycles %d, oracle cycles %d", ctx, o.Cycles, want.Cycles)
			}
		}
	}
	t.Logf("serve soak: %d outcomes match the direct oracle on all host tiers", len(tr.Requests))
}
