package difftest

import (
	"fmt"
	"testing"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/gc"
	"evolvevm/internal/interp"
	"evolvevm/internal/jit"
)

// FuzzAsmRoundTrip checks the assembler/formatter contract: any program
// the assembler accepts and the formatter can express must survive
// Format → Assemble with identical meaning, and Format must reach a
// fixpoint after one round trip (the first trip canonicalizes local
// names and const encodings; after that the text is stable).
func FuzzAsmRoundTrip(f *testing.F) {
	f.Add("func main()\n  ipush 1\n  ret\nend\n")
	f.Add("global g\nfunc main() locals i\nL:\n  load i\n  gload g\n  ilt\n  jz E\n  iinc i 1\n  jmp L\nE:\n  ipush 0\n  ret\nend\n")
	for s := int64(0); s < 4; s++ {
		if src, err := bytecode.Format(genFor(s).Prog); err == nil {
			f.Add(src)
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := bytecode.Assemble("fuzz", src)
		if err != nil {
			return
		}
		s1, err := bytecode.Format(p1)
		if err != nil {
			return // inexpressible (e.g. entry not named "main")
		}
		p2, err := bytecode.Assemble("fuzz", s1)
		if err != nil {
			t.Fatalf("Format output rejected by Assemble: %v\n%s", err, s1)
		}
		s2, err := bytecode.Format(p2)
		if err != nil {
			t.Fatalf("second Format failed: %v", err)
		}
		p3, err := bytecode.Assemble("fuzz", s2)
		if err != nil {
			t.Fatalf("second round trip rejected: %v\n%s", err, s2)
		}
		s3, err := bytecode.Format(p3)
		if err != nil {
			t.Fatalf("third Format failed: %v", err)
		}
		if s2 != s3 {
			t.Fatalf("Format not a fixpoint after one round trip:\n--- trip 2\n%s\n--- trip 3\n%s", s2, s3)
		}
		if bytecode.Verify(p1) == nil {
			if err := bytecode.Verify(p2); err != nil {
				t.Fatalf("round trip broke verification: %v", err)
			}
		}
	})
}

// decodeProgram deserializes fuzz bytes into a program: a compact,
// total decoding (any byte string yields some program) so the fuzzer
// explores the verifier's acceptance frontier instead of fighting a
// parser. Exhausted input reads as zero.
func decodeProgram(data []byte) *bytecode.Program {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	p := bytecode.NewProgram("fuzz")
	for i, n := 0, int(next()%4); i < n; i++ {
		p.AddGlobal(fmt.Sprintf("g%d", i))
	}
	nFuncs := int(next()%3) + 1
	for i := 0; i < nFuncs; i++ {
		fn := &bytecode.Function{Name: "main"}
		if i > 0 {
			fn.Name = fmt.Sprintf("f%d", i)
			fn.NArgs = int(next() % 4)
		}
		fn.NLocals = fn.NArgs + int(next()%4)
		for j, n := 0, int(next()%3); j < n; j++ {
			if next()%2 == 0 {
				fn.Consts = append(fn.Consts, bytecode.Int(int64(int8(next()))))
			} else {
				fn.Consts = append(fn.Consts, bytecode.Float(float64(int8(next()))/2))
			}
		}
		nInstrs := int(next()%32) + 1
		for j := 0; j < nInstrs; j++ {
			fn.Code = append(fn.Code, bytecode.Instr{
				Op: bytecode.Op(next() % byte(bytecode.NumOps)),
				A:  int32(int8(next())),
				B:  int32(int8(next())),
			})
		}
		if _, err := p.AddFunction(fn); err != nil {
			panic(err) // names are unique by construction
		}
	}
	return p
}

// FuzzVerify probes the verifier's robustness contract: whatever program
// the verifier accepts must compile cleanly at every optimization level
// and execute without panicking — runtime traps are fine, crashes and
// optimizer rejections of verified input are bugs (this is exactly the
// class the unreachable-operand verifier gap fell into).
func FuzzVerify(f *testing.F) {
	// A valid specimen under decodeProgram's encoding: no globals, one
	// function, one local, no consts, code "ipush 1; ret".
	f.Add([]byte{0, 0, 1, 0, 1, byte(bytecode.IPUSH), 1, 0, byte(bytecode.RET), 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeProgram(data)
		if err := bytecode.Verify(p); err != nil {
			return
		}
		for level := 0; level <= jit.MaxLevel; level++ {
			comp := jit.NewCompiler(p, jit.DefaultConfig())
			if _, _, err := comp.CompileAll(level); err != nil {
				t.Fatalf("verified program rejected by O%d: %v", level, err)
			}
		}
		eng := interp.NewEngine(p)
		eng.MaxCycles = 200_000
		eng.MaxHeapCells = 1 << 16
		eng.Run() // traps allowed; panics are fuzz failures
	})
}

// FuzzCrossTier feeds assembled programs straight into the cross-tier
// oracle: any verifier-valid text must behave identically at the
// interpreter and all JIT levels on the fuzzed inputs. GC stays off so
// heap indices in printed-then-dropped references remain stable.
func FuzzCrossTier(f *testing.F) {
	for s := int64(0); s < 4; s++ {
		if src, err := bytecode.Format(genFor(s).Prog); err == nil {
			f.Add(src, int64(s), int64(-s), int64(7*s))
		}
	}
	f.Fuzz(func(t *testing.T, src string, in1, in2, in3 int64) {
		prog, err := bytecode.Assemble("fuzz", src)
		if err != nil {
			return
		}
		if err := bytecode.Verify(prog); err != nil {
			return
		}
		slots := make([]int, 0, 3)
		for i := range prog.Globals {
			if len(slots) == 3 {
				break
			}
			slots = append(slots, i)
		}
		input := []bytecode.Value{bytecode.Int(in1), bytecode.Float(float64(in2)), bytecode.Int(in3)}
		input = input[:len(slots)]

		// Skip programs too hot for a fuzz iteration.
		pre, err := RunTier(prog, jit.MinLevel, gc.Config{}, 500_000, slots, input)
		if err != nil {
			t.Fatal(err)
		}
		if pre.ResourceTrapped() {
			return
		}
		g := &Generated{
			Cfg:            GenConfig{Seed: -1},
			Prog:           prog,
			NumericGlobals: slots,
			Inputs:         [][]bytecode.Value{input},
		}
		if _, err := CheckInput(g, input, gc.Config{}, 2_000_000); err != nil {
			t.Fatalf("%v\nprogram:\n%s", err, src)
		}
	})
}
