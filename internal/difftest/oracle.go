package difftest

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/gc"
	"evolvevm/internal/interp"
	"evolvevm/internal/jit"
)

// Exec captures everything observable about one execution of a program at
// one compilation tier: the result, normalized trap, output stream, final
// globals, the reachable heap in canonical form, and the cycle ledgers.
// Two tiers are semantically equivalent iff their Execs Compare clean.
type Exec struct {
	Level  int
	Trap   string // normalized trap message; "" when the run completed
	Halted bool
	Result string
	Output []string
	// Globals holds the final global slots in canonical rendering; array
	// references appear as canonical ids assigned in first-encounter
	// order (result, then output, then globals), so physically different
	// heap layouts with the same reachable shape compare equal.
	Globals []string
	// Heap[i] renders the cells of the array with canonical id i.
	Heap []string

	// Ledgers.
	Cycles        int64 // engine clock at end of run
	ExecCycles    int64 // Σ FnCycles: tier-scaled cycles charged to code
	Work          int64 // Σ Work: tier-independent baseline cost executed
	CompileCycles int64 // charged by CompileAll before the run
	GCCycles      int64
	AllocCycles   int64

	// FnSamples[i] counts the stride samples attributed to function i —
	// the exact profile an optimization controller would observe. Captured
	// so the substrate-equivalence suites can assert that the host
	// performance layer preserves sampling bit-for-bit.
	FnSamples []int64
}

// resourceTrap reports whether a trap message describes resource
// exhaustion (cycle fuse, call depth, heap budget) rather than a semantic
// fault. Different tiers legitimately hit resource limits at different
// points, so resource traps are excluded from cross-tier equivalence.
func resourceTrap(msg string) bool {
	return strings.Contains(msg, "cycle limit") ||
		strings.Contains(msg, "call depth exceeds") ||
		strings.Contains(msg, "out of memory") ||
		strings.Contains(msg, "heap limit exceeded")
}

// ResourceTrapped reports whether the run died on a resource limit.
func (ex *Exec) ResourceTrapped() bool { return ex.Trap != "" && resourceTrap(ex.Trap) }

// canon assigns canonical ids to heap arrays in first-encounter order and
// renders values structurally: integers by decimal, floats by exact bit
// pattern (all NaNs collapse to one token), references by canonical id.
// This makes comparisons independent of physical heap indices, which
// differ across runs under a copying collector.
type canon struct {
	eng   *interp.Engine
	ids   map[int64]int
	queue []int64
}

func newCanon(eng *interp.Engine) *canon {
	return &canon{eng: eng, ids: make(map[int64]int)}
}

func (c *canon) render(v bytecode.Value) string {
	switch v.Kind {
	case bytecode.KArr:
		id, ok := c.ids[v.I]
		if !ok {
			if _, err := c.eng.Array(v); err != nil {
				// A collected reference (e.g. printed then dropped). Not
				// reachable, so no structure to compare.
				return "a!dead"
			}
			id = len(c.ids)
			c.ids[v.I] = id
			c.queue = append(c.queue, v.I)
		}
		return "a" + strconv.Itoa(id)
	case bytecode.KFloat:
		if math.IsNaN(v.F) {
			return "fNaN"
		}
		return "f" + strconv.FormatUint(math.Float64bits(v.F), 16)
	case bytecode.KInt:
		return strconv.FormatInt(v.I, 10)
	default:
		return fmt.Sprintf("k%d:%d:%x", v.Kind, v.I, math.Float64bits(v.F))
	}
}

// drain renders every enqueued array, following interior references
// breadth-first so the whole reachable heap gets canonical ids.
func (c *canon) drain() []string {
	var out []string
	for i := 0; i < len(c.queue); i++ {
		arr, err := c.eng.Array(bytecode.Arr(c.queue[i]))
		if err != nil {
			out = append(out, "!dead")
			continue
		}
		elems := make([]string, len(arr))
		for j, v := range arr {
			elems[j] = c.render(v)
		}
		out = append(out, strings.Join(elems, ","))
	}
	return out
}

// RunTier executes prog pinned to one compilation tier (−1 for the
// baseline interpreter, 0–2 for whole-program JIT at that level) with the
// given input values stored into global slots before the run. A non-nil
// error reports an infrastructure failure (the optimizer rejected the
// program); runtime traps are captured in Exec.Trap, not returned.
func RunTier(prog *bytecode.Program, level int, gcCfg gc.Config, maxCycles int64,
	slots []int, input []bytecode.Value) (*Exec, error) {
	return RunTierConfigured(prog, level, gcCfg, maxCycles, slots, input, nil)
}

// RunTierConfigured is RunTier with an engine-configuration hook applied
// before execution. The substrate suites use it to toggle the host
// performance layer (batching, fusion) and prove the resulting Execs —
// including cycle ledgers and sample profiles — are bit-identical.
func RunTierConfigured(prog *bytecode.Program, level int, gcCfg gc.Config, maxCycles int64,
	slots []int, input []bytecode.Value, configure func(*interp.Engine)) (*Exec, error) {

	eng := interp.NewEngine(prog)
	if maxCycles > 0 {
		eng.MaxCycles = maxCycles
	}
	// Fuzzed programs can request absurd allocations; a heap-limit trap is
	// a resource trap and excluded from equivalence, so capping here only
	// bounds the tester's memory, never its verdicts.
	eng.MaxHeapCells = 1 << 20
	eng.GC = gcCfg
	for j, s := range slots {
		if j < len(input) {
			eng.Globals[s] = input[j]
		}
	}
	samples := make([]int64, len(prog.Funcs))
	eng.OnSample = func(fnIdx int) { samples[fnIdx]++ }
	if configure != nil {
		configure(eng)
	}
	ex := &Exec{Level: level, FnSamples: samples}
	if level > jit.MinLevel {
		comp := jit.NewCompiler(prog, jit.DefaultConfig())
		codes, total, err := comp.CompileAll(level)
		if err != nil {
			return nil, fmt.Errorf("difftest: compile at O%d failed: %w", level, err)
		}
		eng.Provider = func(i int) *interp.Code { return codes[i] }
		// The whole-program table is immutable, so the pure-lookup PeekCode
		// contract holds trivially — enables CALL inlining in the trace tier.
		eng.PeekCode = func(i int) *interp.Code { return codes[i] }
		eng.AddCycles(total)
		ex.CompileCycles = total
	}
	res, err := eng.Run()
	if err != nil {
		var rerr *interp.RuntimeError
		if !errors.As(err, &rerr) {
			return nil, fmt.Errorf("difftest: non-runtime failure at level %d: %w", level, err)
		}
		// Normalize to the message alone: Fn and PC legitimately change
		// under inlining and code motion; the fault itself must not.
		ex.Trap = rerr.Msg
	}
	captureState(ex, eng, res)
	if lerr := ledgerCheck(ex, eng); lerr != nil {
		return nil, lerr
	}
	return ex, nil
}

func captureState(ex *Exec, eng *interp.Engine, res bytecode.Value) {
	ex.Halted = eng.Halted()
	c := newCanon(eng)
	ex.Result = c.render(res)
	for _, v := range eng.Output {
		ex.Output = append(ex.Output, c.render(v))
	}
	for _, v := range eng.Globals {
		ex.Globals = append(ex.Globals, c.render(v))
	}
	ex.Heap = c.drain()
	ex.Cycles = eng.Cycles
	for i := range eng.FnCycles {
		ex.ExecCycles += eng.FnCycles[i]
		ex.Work += eng.Work[i]
	}
	ex.GCCycles = eng.GCStats.GCCycles
	ex.AllocCycles = eng.GCStats.AllocCycles
}

// ledgerCheck asserts the per-run cycle-accounting invariant: every cycle
// on the engine clock is attributable to executed code, compilation, or
// the collector. Holds at every tier by construction; a violation means a
// subsystem charged the clock without recording the charge.
func ledgerCheck(ex *Exec, eng *interp.Engine) error {
	charged := ex.ExecCycles + ex.CompileCycles + ex.GCCycles + ex.AllocCycles
	if charged != eng.Cycles {
		return fmt.Errorf("difftest: level %d cycle ledger off by %d (clock %d, exec %d, compile %d, gc %d, alloc %d)",
			ex.Level, eng.Cycles-charged, eng.Cycles, ex.ExecCycles, ex.CompileCycles, ex.GCCycles, ex.AllocCycles)
	}
	return nil
}

// Compare checks semantic equivalence of two tiers' executions of the
// same program on the same input. The callers guarantee neither side
// resource-trapped. Result values are compared only on completed runs (a
// trapped run has no result); output, globals, and reachable heap must
// match even at a trap — prints and global stores that happened before
// the fault are observable behaviour an optimizer must preserve.
func Compare(a, b *Exec) error {
	fail := func(what, av, bv string) error {
		return fmt.Errorf("difftest: tier divergence level %d vs %d: %s: %q vs %q",
			a.Level, b.Level, what, av, bv)
	}
	if a.Trap != b.Trap {
		return fail("trap", a.Trap, b.Trap)
	}
	if a.Halted != b.Halted {
		return fail("halted", fmt.Sprint(a.Halted), fmt.Sprint(b.Halted))
	}
	if a.Trap == "" && a.Result != b.Result {
		return fail("result", a.Result, b.Result)
	}
	if len(a.Output) != len(b.Output) {
		return fail("output length", fmt.Sprint(len(a.Output)), fmt.Sprint(len(b.Output)))
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			return fail(fmt.Sprintf("output[%d]", i), a.Output[i], b.Output[i])
		}
	}
	for i := range a.Globals {
		if a.Globals[i] != b.Globals[i] {
			return fail(fmt.Sprintf("global[%d]", i), a.Globals[i], b.Globals[i])
		}
	}
	if len(a.Heap) != len(b.Heap) {
		return fail("reachable arrays", fmt.Sprint(len(a.Heap)), fmt.Sprint(len(b.Heap)))
	}
	for i := range a.Heap {
		if a.Heap[i] != b.Heap[i] {
			return fail(fmt.Sprintf("heap[a%d]", i), a.Heap[i], b.Heap[i])
		}
	}
	return nil
}

// Report is the oracle's verdict on one (program, input) pair: the four
// tier executions, or Skipped when any tier hit a resource limit.
type Report struct {
	Execs   []*Exec // index i holds level i−1
	Skipped bool
}

// CheckInput runs one input vector through the interpreter and every JIT
// level and cross-checks them. gcCfg applies to every tier. Returns the
// report and the first divergence or invariant violation found.
func CheckInput(g *Generated, input []bytecode.Value, gcCfg gc.Config, maxCycles int64) (*Report, error) {
	rep := &Report{}
	for level := jit.MinLevel; level <= jit.MaxLevel; level++ {
		ex, err := RunTier(g.Prog, level, gcCfg, maxCycles, g.NumericGlobals, input)
		if err != nil {
			return rep, fmt.Errorf("seed %d: %w", g.Cfg.Seed, err)
		}
		rep.Execs = append(rep.Execs, ex)
		if ex.ResourceTrapped() {
			rep.Skipped = true
			return rep, nil
		}
	}
	base := rep.Execs[0]
	for _, ex := range rep.Execs[1:] {
		if err := Compare(base, ex); err != nil {
			return rep, fmt.Errorf("seed %d: %w", g.Cfg.Seed, err)
		}
	}
	return rep, rep.checkLedgerInvariants(g.Cfg.Seed)
}

// checkLedgerInvariants asserts the sound cross-tier cycle invariants:
//
//   - compile cycles strictly increase with optimization level (higher
//     tiers run strictly longer pass pipelines at higher cost multipliers);
//   - at the baseline tier, per-op charge equals baseline cost exactly, so
//     ExecCycles − Work is precisely the (tier-independent) size-scaled
//     allocation charge — nonnegative and even;
//   - at optimized tiers, per-op charge never exceeds baseline cost, so
//     ExecCycles − allocCharge ≤ Work.
//
// Note the dynamic-work ordering Work(O2) ≤ Work(O1) ≤ Work(O0) is NOT
// asserted per program — it is not a theorem (LICM preheaders lose on
// zero-trip loops; inlining re-zeroes locals). The soak asserts it in
// aggregate over the whole corpus instead.
func (r *Report) checkLedgerInvariants(seed int64) error {
	if r.Skipped || len(r.Execs) == 0 {
		return nil
	}
	base := r.Execs[0]
	alloc := base.ExecCycles - base.Work
	if alloc < 0 || alloc%2 != 0 {
		return fmt.Errorf("seed %d: baseline alloc charge %d (exec %d, work %d) not a nonnegative even number",
			seed, alloc, base.ExecCycles, base.Work)
	}
	prevCompile := base.CompileCycles // 0 at baseline
	for _, ex := range r.Execs[1:] {
		if ex.CompileCycles <= prevCompile {
			return fmt.Errorf("seed %d: compile cycles not strictly increasing: level %d charged %d after %d",
				seed, ex.Level, ex.CompileCycles, prevCompile)
		}
		prevCompile = ex.CompileCycles
		if ex.Trap == "" && base.Trap == "" {
			if ex.ExecCycles-alloc > ex.Work {
				return fmt.Errorf("seed %d: level %d exec cycles %d exceed work %d + alloc %d",
					seed, ex.Level, ex.ExecCycles, ex.Work, alloc)
			}
		}
	}
	return nil
}
