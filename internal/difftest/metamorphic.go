package difftest

import (
	"fmt"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/gc"
	"evolvevm/internal/interp"
	"evolvevm/internal/jit"
	"evolvevm/internal/opt"
)

// CheckPasses is the per-pass metamorphic harness: for every function of
// the program it applies the level's pass pipeline one pass at a time
// (cumulatively, exactly as opt.Optimize would), and after EACH pass that
// changed the code it re-verifies the function and re-runs the program
// with only that function swapped for its partially-optimized form,
// comparing against the unoptimized baseline on every input vector. When
// the full pipeline diverges, this pinpoints the first guilty pass rather
// than the pipeline as a whole.
func CheckPasses(g *Generated, level int, maxCycles int64) error {
	prog := g.Prog
	for fnIdx := range prog.Funcs {
		// Reference executions of the unmodified program, one per input.
		refs := make([]*Exec, len(g.Inputs))
		for k, input := range g.Inputs {
			ex, err := runPatched(prog, fnIdx, nil, maxCycles, g.NumericGlobals, input)
			if err != nil {
				return fmt.Errorf("seed %d: reference run: %w", g.Cfg.Seed, err)
			}
			refs[k] = ex
		}

		f := prog.Funcs[fnIdx].Clone()
		for _, pass := range opt.Pipeline(level) {
			changed := pass.Apply(prog, f)
			if err := bytecode.VerifyFunc(prog, f); err != nil {
				return fmt.Errorf("seed %d: pass %q (level %d) broke %s: %w",
					g.Cfg.Seed, pass.Name, level, prog.Funcs[fnIdx].Name, err)
			}
			if !changed {
				continue
			}
			for k, input := range g.Inputs {
				if refs[k].ResourceTrapped() {
					continue
				}
				got, err := runPatched(prog, fnIdx, f, maxCycles, g.NumericGlobals, input)
				if err != nil {
					return fmt.Errorf("seed %d: pass %q on %s: %w",
						g.Cfg.Seed, pass.Name, prog.Funcs[fnIdx].Name, err)
				}
				if got.ResourceTrapped() {
					continue
				}
				if err := Compare(refs[k], got); err != nil {
					return fmt.Errorf("seed %d input %d: pass %q miscompiled %s: %w",
						g.Cfg.Seed, k, pass.Name, prog.Funcs[fnIdx].Name, err)
				}
			}
		}
	}
	return nil
}

// runPatched executes prog at the baseline tier with function fnIdx
// replaced by patched (nil runs the program unmodified). The patched body
// runs at baseline per-op costs, so only its semantics — not its tier —
// differ from the reference.
func runPatched(prog *bytecode.Program, fnIdx int, patched *bytecode.Function,
	maxCycles int64, slots []int, input []bytecode.Value) (*Exec, error) {

	eng := interp.NewEngine(prog)
	if maxCycles > 0 {
		eng.MaxCycles = maxCycles
	}
	eng.GC = gc.Config{}
	for j, s := range slots {
		if j < len(input) {
			eng.Globals[s] = input[j]
		}
	}
	if patched != nil {
		codes := make([]*interp.Code, len(prog.Funcs))
		for i, fn := range prog.Funcs {
			body := fn
			if i == fnIdx {
				body = patched
			}
			codes[i] = interp.NewCode(i, body, jit.MinLevel, interp.BaselineScalePct)
		}
		eng.Provider = func(i int) *interp.Code { return codes[i] }
		// Immutable table ⇒ pure-lookup PeekCode contract holds trivially.
		eng.PeekCode = func(i int) *interp.Code { return codes[i] }
	}
	ex := &Exec{Level: jit.MinLevel}
	res, err := eng.Run()
	if err != nil {
		rerr, ok := err.(*interp.RuntimeError)
		if !ok {
			return nil, fmt.Errorf("difftest: non-runtime failure: %w", err)
		}
		ex.Trap = rerr.Msg
	}
	captureState(ex, eng, res)
	if lerr := ledgerCheck(ex, eng); lerr != nil {
		return nil, lerr
	}
	return ex, nil
}
