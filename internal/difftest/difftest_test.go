package difftest

import (
	"flag"
	"fmt"
	"testing"

	"evolvevm/internal/aos"
	"evolvevm/internal/bytecode"
	"evolvevm/internal/gc"
	"evolvevm/internal/interp"
	"evolvevm/internal/jit"
	"evolvevm/internal/vm"
)

// -difftest.seed reruns one generator seed under full logging:
//
//	go test ./internal/difftest -run TestCrossTier -difftest.seed=12345 -v
var seedFlag = flag.Int64("difftest.seed", -1, "run only this generator seed through the cross-tier oracle")

// Soak sizes: every seed is cross-checked at all four tiers on every
// input vector.
const (
	soakShort = 100
	soakLong  = 2000

	// preCap weeds out seeds that run too hot for a fast soak; runCap
	// gives the surviving runs ample headroom so resource traps stay rare.
	preCap = 3_000_000
	runCap = 30_000_000
)

func soakN(t *testing.T) int {
	if testing.Short() {
		return soakShort
	}
	return soakLong
}

func genFor(seed int64) *Generated {
	return Generate(GenConfig{Seed: seed, AllowTraps: seed%2 == 0})
}

// TestCrossTier is the tentpole soak: N generated programs, each run at
// the interpreter and all three JIT levels on several input vectors,
// asserting identical observable behaviour and sound cycle ledgers, plus
// the aggregate dynamic-work ordering O2 ≤ O1 ≤ O0 ≤ baseline over the
// whole corpus.
func TestCrossTier(t *testing.T) {
	seeds := make([]int64, 0, soakLong)
	if *seedFlag >= 0 {
		seeds = append(seeds, *seedFlag)
	} else {
		for s := int64(0); s < int64(soakN(t)); s++ {
			seeds = append(seeds, s)
		}
	}

	var (
		checked, skipped, trapped int
		workByLevel               [4]int64
	)
	for _, seed := range seeds {
		g := genFor(seed)
		for k, input := range g.Inputs {
			// Deterministically drop (seed, input) pairs that are too hot
			// to soak quickly: if the baseline can't finish under preCap,
			// every tier gets skipped.
			pre, err := RunTier(g.Prog, jit.MinLevel, gc.Config{}, preCap, g.NumericGlobals, input)
			if err != nil {
				t.Fatalf("seed %d input %d: %v", seed, k, err)
			}
			if pre.ResourceTrapped() {
				skipped++
				continue
			}
			rep, err := CheckInput(g, input, gc.Config{}, runCap)
			if err != nil {
				t.Fatalf("input %d: %v\nreproduce: go test ./internal/difftest -run TestCrossTier -difftest.seed=%d -v", k, err, seed)
			}
			if rep.Skipped {
				skipped++
				continue
			}
			checked++
			if rep.Execs[0].Trap != "" {
				trapped++
			} else {
				for i, ex := range rep.Execs {
					workByLevel[i] += ex.Work
				}
			}
		}
	}
	t.Logf("cross-tier: %d runs checked (%d trapped identically), %d skipped on resource limits", checked, trapped, skipped)
	t.Logf("aggregate dynamic work: base=%d O0=%d O1=%d O2=%d",
		workByLevel[0], workByLevel[1], workByLevel[2], workByLevel[3])
	if checked == 0 {
		t.Fatal("soak checked zero runs")
	}
	if *seedFlag >= 0 {
		return // single-seed repro: aggregate assertions are meaningless
	}
	if min := len(seeds); checked < min {
		t.Errorf("only %d of at least %d runs survived the resource-limit filter", checked, min)
	}
	// Aggregate ordering over the corpus. Not a per-program theorem (LICM
	// preheaders lose on zero-trip loops, inlining re-zeroes locals), but
	// over hundreds of programs each optimization level must pay off.
	for i := 1; i < 4; i++ {
		if workByLevel[i] > workByLevel[i-1] {
			t.Errorf("aggregate dynamic work regressed: level %d did %d, level %d did %d",
				i-2, workByLevel[i], i-3, workByLevel[i-1])
		}
	}
}

// TestCrossTierGC reruns a slice of the corpus under both collectors with
// a tight heap budget, so allocation-heavy seeds actually collect. The
// canonical heap comparison is physical-layout independent, so all tiers
// must agree under MarkSweep, Copying, and no GC alike.
func TestCrossTierGC(t *testing.T) {
	n := soakN(t) / 4
	if *seedFlag >= 0 {
		n = 0
	}
	cfgs := []gc.Config{
		{Policy: gc.MarkSweep, BudgetCells: 48},
		{Policy: gc.Copying, BudgetCells: 48},
	}
	var checked, skipped int
	for s := int64(0); s < int64(n); s++ {
		g := genFor(s)
		for k, input := range g.Inputs {
			for _, cfg := range cfgs {
				rep, err := CheckInput(g, input, cfg, runCap)
				if err != nil {
					t.Fatalf("gc=%s input %d: %v\nreproduce: go test ./internal/difftest -run TestCrossTierGC -difftest.seed=%d -v", cfg.Policy, k, err, s)
				}
				if rep.Skipped {
					skipped++
					continue
				}
				checked++
			}
		}
	}
	if *seedFlag >= 0 {
		g := genFor(*seedFlag)
		for _, input := range g.Inputs {
			for _, cfg := range cfgs {
				if rep, err := CheckInput(g, input, cfg, runCap); err != nil {
					t.Fatal(err)
				} else if !rep.Skipped {
					checked++
				}
			}
		}
	}
	t.Logf("gc cross-tier: %d runs checked, %d skipped (OOM under tight budget)", checked, skipped)
	if checked == 0 {
		t.Fatal("gc soak checked zero runs")
	}
}

// TestMetamorphicPasses applies each optimization pass individually and
// cumulatively, verifying and re-running after every pass, so a pipeline
// divergence is attributed to the first pass that introduced it.
func TestMetamorphicPasses(t *testing.T) {
	n := int64(soakN(t) / 4)
	seeds := make([]int64, 0, n)
	if *seedFlag >= 0 {
		seeds = append(seeds, *seedFlag)
	} else {
		for s := int64(0); s < n; s++ {
			seeds = append(seeds, s)
		}
	}
	for _, seed := range seeds {
		g := genFor(seed)
		if err := CheckPasses(g, jit.MaxLevel, runCap); err != nil {
			t.Fatalf("%v\nreproduce: go test ./internal/difftest -run TestMetamorphicPasses -difftest.seed=%d -v", err, seed)
		}
	}
}

// TestMachineMixedTier runs generated programs through the full vm.Machine
// with the reactive AOS controller — functions migrate tiers mid-run — and
// checks the mixed-tier execution agrees with the pure interpreter, and
// that the machine's cycle ledger reconciles.
func TestMachineMixedTier(t *testing.T) {
	n := int64(soakN(t) / 4)
	seeds := make([]int64, 0, n)
	if *seedFlag >= 0 {
		seeds = append(seeds, *seedFlag)
	} else {
		for s := int64(0); s < n; s++ {
			seeds = append(seeds, s)
		}
	}
	var checked, skipped int
	for _, seed := range seeds {
		g := genFor(seed)
		for k, input := range g.Inputs {
			ref, err := RunTier(g.Prog, jit.MinLevel, gc.Config{}, runCap, g.NumericGlobals, input)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if ref.ResourceTrapped() {
				skipped++
				continue
			}
			m := vm.New(g.Prog, jit.DefaultConfig(), aos.NewReactive())
			m.Engine.MaxCycles = runCap
			for j, s := range g.NumericGlobals {
				m.Engine.Globals[s] = input[j]
			}
			got := &Exec{}
			res, rerr := m.Run()
			if rerr != nil {
				re, ok := rerr.(*interp.RuntimeError)
				if !ok {
					t.Fatalf("seed %d input %d: %v", seed, k, rerr)
				}
				got.Trap = re.Msg
			}
			captureState(got, m.Engine, res)
			if got.ResourceTrapped() {
				skipped++
				continue
			}
			if err := Compare(ref, got); err != nil {
				t.Fatalf("seed %d input %d: mixed-tier machine diverged from interpreter: %v", seed, k, err)
			}
			if err := m.LedgerError(); err != nil {
				t.Fatalf("seed %d input %d: %v", seed, k, err)
			}
			checked++
		}
	}
	t.Logf("mixed-tier: %d runs checked, %d skipped", checked, skipped)
	if checked == 0 {
		t.Fatal("mixed-tier soak checked zero runs")
	}
}

// TestGeneratorDeterminism: the same seed must generate byte-identical
// programs and inputs (the whole subsystem hinges on reproducibility).
func TestGeneratorDeterminism(t *testing.T) {
	for s := int64(0); s < 20; s++ {
		a, b := genFor(s), genFor(s)
		fa, err := bytecode.Format(a.Prog)
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		fb, err := bytecode.Format(b.Prog)
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if fa != fb {
			t.Fatalf("seed %d generated two different programs", s)
		}
		if len(a.Inputs) != len(b.Inputs) {
			t.Fatalf("seed %d generated different input sets", s)
		}
		for k := range a.Inputs {
			for j := range a.Inputs[k] {
				if !a.Inputs[k][j].Equal(b.Inputs[k][j]) {
					t.Fatalf("seed %d input %d differs", s, k)
				}
			}
		}
	}
}

// TestGeneratedProgramsFormat: every generated program must be expressible
// in assembly and round-trip through Assemble unchanged in meaning — this
// is what lets failing seeds be minimized into committed .evm reproducers.
func TestGeneratedProgramsFormat(t *testing.T) {
	for s := int64(0); s < 50; s++ {
		g := genFor(s)
		src, err := bytecode.Format(g.Prog)
		if err != nil {
			t.Fatalf("seed %d: Format: %v", s, err)
		}
		p2, err := bytecode.Assemble(fmt.Sprintf("gen%d", s), src)
		if err != nil {
			t.Fatalf("seed %d: reassembly: %v", s, err)
		}
		if err := bytecode.Verify(p2); err != nil {
			t.Fatalf("seed %d: reassembled program invalid: %v", s, err)
		}
	}
}
