package difftest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/gc"
	"evolvevm/internal/jit"
)

// TestRegressions replays the minimized miscompile reproducers in
// testdata/ — programs distilled from failing generator seeds — through
// both the per-pass metamorphic harness and the full cross-tier oracle.
// Each file documents the optimizer bug it pinned down.
func TestRegressions(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.evm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no reproducers in testdata/")
	}
	for _, file := range files {
		t.Run(strings.TrimSuffix(filepath.Base(file), ".evm"), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := bytecode.Assemble(filepath.Base(file), string(src))
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			if err := bytecode.Verify(prog); err != nil {
				t.Fatalf("verify: %v", err)
			}
			// Reproducers take no inputs; wrap into the oracle's shape.
			g := &Generated{
				Cfg:    GenConfig{Seed: -1},
				Prog:   prog,
				Inputs: [][]bytecode.Value{nil},
			}
			if err := CheckPasses(g, jit.MaxLevel, runCap); err != nil {
				t.Errorf("per-pass: %v", err)
			}
			if rep, err := CheckInput(g, nil, gc.Config{}, runCap); err != nil {
				t.Errorf("cross-tier: %v", err)
			} else if rep.Skipped {
				t.Errorf("reproducer unexpectedly hit a resource limit")
			}
		})
	}
}
