// Package difftest is the VM's differential-testing and fuzzing
// subsystem: a seeded generator of verifier-valid, guaranteed-terminating
// bytecode programs, a cross-tier oracle that proves the interpreter and
// every JIT level compute identical results, and a per-pass metamorphic
// harness that pinpoints the optimization pass responsible for a
// divergence. See DESIGN.md ("Differential testing") for the invariants.
package difftest

import (
	"fmt"
	"math/rand"

	"evolvevm/internal/bytecode"
)

// GenConfig controls program generation.
type GenConfig struct {
	// Seed selects the program deterministically: the same seed always
	// yields the same program and input vectors.
	Seed int64
	// AllowTraps admits constructs that may trap at runtime (unguarded
	// division, array ops on integer-valued slots). Trap behaviour must
	// still be identical across tiers; disabling them keeps programs
	// running to completion for throughput-oriented soaks.
	AllowTraps bool
}

// Generated is a generator output: a verified program plus deterministic
// input vectors for its numeric global slots.
type Generated struct {
	Cfg  GenConfig
	Prog *bytecode.Program
	// NumericGlobals lists the global slots that act as program inputs.
	NumericGlobals []int
	// Inputs holds input vectors; Inputs[k][j] is the value for slot
	// NumericGlobals[j] in the k-th run.
	Inputs [][]bytecode.Value
}

// Generation limits.
const (
	genMaxHelpers    = 3
	genHelperDynCap  = 4_000  // estimated dynamic instructions per helper
	genMainDynCap    = 30_000 // estimated dynamic instructions for main
	genMaxBodyInstrs = 220
	genMaxExprDepth  = 3
	genMaxLoopDepth  = 2
	genMaxTrip       = 8
)

// Generate builds a random program from cfg. The result always passes
// bytecode.Verify, and — because loop counters live in reserved slots,
// loop bounds are masked or statically small, and the call graph is a
// DAG — always terminates within a bounded number of instructions.
func Generate(cfg GenConfig) *Generated {
	g := &generator{
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		prog: bytecode.NewProgram(fmt.Sprintf("gen%d", cfg.Seed)),
		cfg:  cfg,
	}
	g.build()
	if err := bytecode.Verify(g.prog); err != nil {
		// A generator bug, not an input problem: fail loudly with the
		// seed so the program can be reproduced.
		panic(fmt.Sprintf("difftest: seed %d generated an invalid program: %v", cfg.Seed, err))
	}
	out := &Generated{Cfg: cfg, Prog: g.prog, NumericGlobals: g.numGlobals}
	nInputs := 2 + g.rng.Intn(2)
	for k := 0; k < nInputs; k++ {
		vec := make([]bytecode.Value, len(g.numGlobals))
		for j := range vec {
			switch g.rng.Intn(6) {
			case 0:
				vec[j] = bytecode.Int(int64(g.rng.Intn(7)) - 3) // near zero: trip-count & divisor edges
			case 1:
				vec[j] = bytecode.Int(g.rng.Int63() - g.rng.Int63()) // full-range int64
			case 2:
				vec[j] = bytecode.Float(g.rng.NormFloat64() * 100)
			default:
				vec[j] = bytecode.Int(int64(g.rng.Intn(201)) - 100)
			}
		}
		out.Inputs = append(out.Inputs, vec)
	}
	return out
}

type arrSlot struct {
	slot int32
	size int64 // power of two, 1..8
}

func (a arrSlot) mask() int32 { return int32(a.size - 1) }

type generator struct {
	rng  *rand.Rand
	prog *bytecode.Program
	cfg  GenConfig

	numGlobals []int    // numeric global slots (the input vector)
	arrGlobal  *arrSlot // optional array-typed global
}

func (g *generator) build() {
	// Globals: 1..3 numeric inputs plus an optional array global.
	nNum := 1 + g.rng.Intn(3)
	for i := 0; i < nNum; i++ {
		g.numGlobals = append(g.numGlobals, g.prog.AddGlobal(fmt.Sprintf("g%d", i)))
	}
	if g.rng.Intn(2) == 0 {
		size := int64(1) << g.rng.Intn(4)
		slot := g.prog.AddGlobal("garr")
		g.arrGlobal = &arrSlot{slot: int32(slot), size: size}
	}

	// Declare all functions first so call targets resolve to stable
	// indices, then fill bodies from the last helper backwards: a
	// function may only call helpers with larger indices, so the call
	// graph is a DAG and every callee's dynamic-cost estimate is known
	// when its callers are generated.
	nHelpers := g.rng.Intn(genMaxHelpers + 1)
	type fnMeta struct {
		idx    int
		fn     *bytecode.Function
		dynEst int64
	}
	metas := make([]*fnMeta, 0, nHelpers+1)
	for i := 0; i < nHelpers; i++ {
		fn := &bytecode.Function{Name: fmt.Sprintf("h%d", i), NArgs: g.rng.Intn(4)}
		idx, err := g.prog.AddFunction(fn)
		if err != nil {
			panic(err)
		}
		metas = append(metas, &fnMeta{idx: idx, fn: fn})
	}
	mainFn := &bytecode.Function{Name: "main"}
	mainIdx, err := g.prog.AddFunction(mainFn)
	if err != nil {
		panic(err)
	}
	metas = append(metas, &fnMeta{idx: mainIdx, fn: mainFn})

	for i := len(metas) - 1; i >= 0; i-- {
		m := metas[i]
		var callees []callee
		for _, c := range metas[i+1:] {
			if c.fn == mainFn {
				continue
			}
			callees = append(callees, callee{idx: int32(c.idx), nargs: c.fn.NArgs, dynEst: c.dynEst})
		}
		cap := int64(genHelperDynCap)
		if m.fn == mainFn {
			cap = genMainDynCap
		}
		fg := &fnGen{g: g, f: m.fn, callees: callees, mult: 1, capEst: cap}
		fg.generate(m.fn == mainFn)
		m.dynEst = fg.est
	}
}

type callee struct {
	idx    int32
	nargs  int
	dynEst int64
}

// fnGen builds one function body, tracking an estimate of the dynamic
// instruction count (est, under the current loop multiplier mult) so
// generated programs stay cheap to execute at every tier.
type fnGen struct {
	g       *generator
	f       *bytecode.Function
	callees []callee

	numLocals []int32   // numeric slots usable in expressions and stores
	arrLocals []arrSlot // numeric-element arrays, safe for aload/astore
	refArr    *arrSlot  // array whose elements are array references
	counters  []int32   // reserved loop counters (read-only for exprs)

	mult      int64 // product of enclosing loop trip counts
	est       int64
	capEst    int64
	loopDepth int
}

func (fg *fnGen) rng() *rand.Rand { return fg.g.rng }

func (fg *fnGen) emit(op bytecode.Op, a, b int32) int {
	fg.f.Code = append(fg.f.Code, bytecode.Instr{Op: op, A: a, B: b})
	fg.est += fg.mult
	return len(fg.f.Code) - 1
}

func (fg *fnGen) patch(pc int, target int) { fg.f.Code[pc].A = int32(target) }

func (fg *fnGen) here() int { return len(fg.f.Code) }

func (fg *fnGen) newLocal(name string) int32 {
	slot := int32(fg.f.NLocals)
	fg.f.NLocals++
	fg.f.LocalNames = append(fg.f.LocalNames, name)
	return slot
}

func (fg *fnGen) generate(isMain bool) {
	rng := fg.rng()

	// Argument slots are numeric inputs.
	for i := 0; i < fg.f.NArgs; i++ {
		fg.numLocals = append(fg.numLocals, fg.newLocal(fmt.Sprintf("a%d", i)))
	}
	// Extra numeric locals.
	for i, n := 0, 1+rng.Intn(4); i < n; i++ {
		fg.numLocals = append(fg.numLocals, fg.newLocal(fmt.Sprintf("v%d", i)))
	}
	// Array locals, initialized in the prologue (sizes are powers of two
	// so indices can be masked into range with IAND).
	for i, n := 0, rng.Intn(3); i < n; i++ {
		a := arrSlot{slot: fg.newLocal(fmt.Sprintf("arr%d", i)), size: 1 << rng.Intn(4)}
		fg.arrLocals = append(fg.arrLocals, a)
		fg.emit(bytecode.IPUSH, int32(a.size), 0)
		fg.emit(bytecode.NEWARR, 0, 0)
		fg.emit(bytecode.STORE, a.slot, 0)
	}
	if len(fg.arrLocals) > 0 && rng.Intn(2) == 0 {
		a := arrSlot{slot: fg.newLocal("refs"), size: 1 << rng.Intn(3)}
		fg.refArr = &a
		fg.emit(bytecode.IPUSH, int32(a.size), 0)
		fg.emit(bytecode.NEWARR, 0, 0)
		fg.emit(bytecode.STORE, a.slot, 0)
	}
	// Main owns the array global: allocate it before anything else runs
	// so helpers may read it unconditionally.
	if isMain && fg.g.arrGlobal != nil {
		fg.emit(bytecode.IPUSH, int32(fg.g.arrGlobal.size), 0)
		fg.emit(bytecode.NEWARR, 0, 0)
		fg.emit(bytecode.GSTORE, fg.g.arrGlobal.slot, 0)
	}

	fg.stmts(1+rng.Intn(5), isMain)

	// Epilogue: return a value.
	fg.expr(0)
	fg.emit(bytecode.RET, 0, 0)
}

// stmts emits n statements.
func (fg *fnGen) stmts(n int, isMain bool) {
	for i := 0; i < n; i++ {
		if len(fg.f.Code) > genMaxBodyInstrs || fg.est > fg.capEst {
			return
		}
		fg.stmt(isMain)
	}
}

func (fg *fnGen) stmt(isMain bool) {
	rng := fg.rng()
	switch rng.Intn(20) {
	case 0, 1, 2: // local = expr
		fg.expr(0)
		fg.emit(bytecode.STORE, fg.pick(fg.numLocals), 0)
	case 3, 4: // global = expr
		fg.expr(0)
		fg.emit(bytecode.GSTORE, int32(fg.g.numGlobals[rng.Intn(len(fg.g.numGlobals))]), 0)
	case 5, 6: // print expr
		fg.expr(0)
		fg.emit(bytecode.PRINT, 0, 0)
	case 7, 8, 9: // if / if-else
		fg.ifStmt(isMain)
	case 10, 11, 12: // counted loop
		if fg.loopDepth < genMaxLoopDepth && fg.est+fg.mult*int64(genMaxTrip)*8 < fg.capEst {
			fg.loop(isMain)
		} else {
			fg.expr(0)
			fg.emit(bytecode.STORE, fg.pick(fg.numLocals), 0)
		}
	case 13: // arr[i] = expr
		if a, ok := fg.pickArr(); ok {
			fg.emit(bytecode.LOAD, a.slot, 0)
			fg.maskedIndex(a)
			fg.expr(1)
			fg.emit(bytecode.ASTORE, 0, 0)
		} else {
			fg.expr(0)
			fg.emit(bytecode.PRINT, 0, 0)
		}
	case 14: // refs[i] = some array (exercises interior GC pointers)
		if fg.refArr != nil {
			fg.emit(bytecode.LOAD, fg.refArr.slot, 0)
			fg.maskedIndex(*fg.refArr)
			src := fg.arrLocals[rng.Intn(len(fg.arrLocals))]
			fg.emit(bytecode.LOAD, src.slot, 0)
			fg.emit(bytecode.ASTORE, 0, 0)
		} else {
			fg.expr(0)
			fg.emit(bytecode.STORE, fg.pick(fg.numLocals), 0)
		}
	case 15: // re-allocate an array local (same static size)
		if a, ok := fg.pickArr(); ok {
			fg.emit(bytecode.IPUSH, int32(a.size), 0)
			fg.emit(bytecode.NEWARR, 0, 0)
			fg.emit(bytecode.STORE, a.slot, 0)
		} else {
			fg.expr(0)
			fg.emit(bytecode.POP, 0, 0)
		}
	case 16: // publish a local array through the array global
		if isMain && fg.g.arrGlobal != nil {
			if a, ok := fg.arrOfSize(fg.g.arrGlobal.size); ok {
				fg.emit(bytecode.LOAD, a.slot, 0)
				fg.emit(bytecode.GSTORE, fg.g.arrGlobal.slot, 0)
				return
			}
		}
		fg.expr(0)
		fg.emit(bytecode.POP, 0, 0)
	case 17: // early return (only makes the tail dead; DCE fodder)
		if fg.loopDepth > 0 || rng.Intn(3) == 0 {
			fg.expr(0)
			fg.emit(bytecode.RET, 0, 0)
		} else {
			fg.expr(0)
			fg.emit(bytecode.PRINT, 0, 0)
		}
	case 18: // halt (main only, rare)
		if isMain && rng.Intn(4) == 0 {
			fg.expr(0)
			fg.emit(bytecode.HALT, 0, 0)
		} else {
			fg.expr(0)
			fg.emit(bytecode.GSTORE, int32(fg.g.numGlobals[rng.Intn(len(fg.g.numGlobals))]), 0)
		}
	default: // nop sprinkle / call for effect
		if len(fg.callees) > 0 && rng.Intn(2) == 0 && fg.callExpr() {
			fg.emit(bytecode.POP, 0, 0)
		} else {
			fg.emit(bytecode.NOP, 0, 0)
		}
	}
}

func (fg *fnGen) ifStmt(isMain bool) {
	rng := fg.rng()
	fg.expr(0) // condition
	jz := fg.emit(bytecode.JZ, 0, 0)
	fg.stmts(1+rng.Intn(3), isMain)
	if rng.Intn(2) == 0 { // with else
		jmp := fg.emit(bytecode.JMP, 0, 0)
		fg.patch(jz, fg.here())
		fg.stmts(1+rng.Intn(2), isMain)
		fg.patch(jmp, fg.here())
	} else {
		fg.patch(jz, fg.here())
	}
}

// loop emits a counted loop with a reserved counter slot. Every bound
// shape is at most genMaxTrip..16 at runtime, and nothing in the body can
// write the counter, so termination is guaranteed.
func (fg *fnGen) loop(isMain bool) {
	rng := fg.rng()
	c := fg.newLocal(fmt.Sprintf("c%d", len(fg.counters)))

	fg.emit(bytecode.IPUSH, 0, 0)
	fg.emit(bytecode.STORE, c, 0)
	head := fg.here()
	fg.emit(bytecode.LOAD, c, 0)

	trip := int64(2 + rng.Intn(genMaxTrip-1))
	switch rng.Intn(4) {
	case 0: // masked global bound: at most 16 trips whatever the input
		fg.emit(bytecode.GLOAD, int32(fg.g.numGlobals[rng.Intn(len(fg.g.numGlobals))]), 0)
		fg.emit(bytecode.IPUSH, 15, 0)
		fg.emit(bytecode.IAND, 0, 0)
		trip = 16
	case 1: // array-length bound (LICM's ALEN candidate)
		if a, ok := fg.pickArr(); ok {
			fg.emit(bytecode.LOAD, a.slot, 0)
			fg.emit(bytecode.ALEN, 0, 0)
			trip = a.size
		} else {
			fg.emit(bytecode.IPUSH, int32(trip), 0)
		}
	default:
		fg.emit(bytecode.IPUSH, int32(trip), 0)
	}
	fg.emit(bytecode.ILT, 0, 0)
	exit := fg.emit(bytecode.JZ, 0, 0)

	outerMult := fg.mult
	fg.mult *= trip
	fg.loopDepth++
	fg.counters = append(fg.counters, c)
	fg.stmts(1+rng.Intn(3), isMain)
	fg.counters = fg.counters[:len(fg.counters)-1]
	fg.loopDepth--
	fg.mult = outerMult

	fg.emit(bytecode.IINC, c, 1)
	fg.emit(bytecode.JMP, int32(head), 0)
	fg.patch(exit, fg.here())
}

// maskedIndex emits an in-range index for a: <expr> & (size-1).
func (fg *fnGen) maskedIndex(a arrSlot) {
	fg.expr(1)
	fg.emit(bytecode.IPUSH, a.mask(), 0)
	fg.emit(bytecode.IAND, 0, 0)
}

func (fg *fnGen) pick(pool []int32) int32 { return pool[fg.rng().Intn(len(pool))] }

func (fg *fnGen) pickArr() (arrSlot, bool) {
	if len(fg.arrLocals) == 0 {
		return arrSlot{}, false
	}
	return fg.arrLocals[fg.rng().Intn(len(fg.arrLocals))], true
}

func (fg *fnGen) arrOfSize(size int64) (arrSlot, bool) {
	for _, a := range fg.arrLocals {
		if a.size == size {
			return a, true
		}
	}
	return arrSlot{}, false
}

// expr emits code pushing exactly one value.
func (fg *fnGen) expr(depth int) {
	rng := fg.rng()
	if depth >= genMaxExprDepth || fg.est > fg.capEst {
		fg.leaf()
		return
	}
	switch rng.Intn(15) {
	case 0, 1, 2, 3:
		fg.leaf()
	case 4: // unary
		fg.expr(depth + 1)
		ops := []bytecode.Op{bytecode.INEG, bytecode.INOT, bytecode.I2F,
			bytecode.F2I, bytecode.FNEG, bytecode.FSQRT, bytecode.FABS,
			bytecode.IABS}
		fg.emit(ops[rng.Intn(len(ops))], 0, 0)
	case 5, 6, 7: // integer binary
		fg.expr(depth + 1)
		fg.expr(depth + 1)
		ops := []bytecode.Op{bytecode.IADD, bytecode.ISUB, bytecode.IMUL,
			bytecode.IAND, bytecode.IOR, bytecode.IXOR, bytecode.ISHL, bytecode.ISHR}
		fg.emit(ops[rng.Intn(len(ops))], 0, 0)
	case 8: // division, guarded unless traps are allowed
		fg.expr(depth + 1)
		fg.expr(depth + 1)
		if !fg.g.cfg.AllowTraps || rng.Intn(4) != 0 {
			fg.emit(bytecode.IPUSH, 1, 0)
			fg.emit(bytecode.IOR, 0, 0) // divisor|1 is never zero
		}
		if rng.Intn(2) == 0 {
			fg.emit(bytecode.IDIV, 0, 0)
		} else {
			fg.emit(bytecode.IMOD, 0, 0)
		}
	case 9: // float binary
		fg.expr(depth + 1)
		fg.expr(depth + 1)
		ops := []bytecode.Op{bytecode.FADD, bytecode.FSUB, bytecode.FMUL, bytecode.FDIV}
		fg.emit(ops[rng.Intn(len(ops))], 0, 0)
	case 10: // comparison
		fg.expr(depth + 1)
		fg.expr(depth + 1)
		ops := []bytecode.Op{bytecode.IEQ, bytecode.INE, bytecode.ILT, bytecode.ILE,
			bytecode.IGT, bytecode.IGE, bytecode.FEQ, bytecode.FNE,
			bytecode.FLT, bytecode.FLE, bytecode.FGT, bytecode.FGE}
		fg.emit(ops[rng.Intn(len(ops))], 0, 0)
	case 11: // dup / swap shapes (peephole fodder)
		fg.expr(depth + 1)
		if rng.Intn(2) == 0 {
			fg.emit(bytecode.DUP, 0, 0)
		} else {
			fg.expr(depth + 1)
			fg.emit(bytecode.SWAP, 0, 0)
		}
		fg.emit(bytecode.IADD, 0, 0)
	case 12: // array element
		if a, ok := fg.pickArr(); ok {
			fg.emit(bytecode.LOAD, a.slot, 0)
			fg.maskedIndex(a)
			fg.emit(bytecode.ALOAD, 0, 0)
		} else {
			fg.leaf()
		}
	case 13: // select: pick between two values on a computed condition
		fg.expr(depth + 1)
		fg.expr(depth + 1)
		fg.expr(depth + 1)
		fg.emit(bytecode.SELECT, 0, 0)
	default: // call
		if !fg.callExpr() {
			fg.leaf()
		}
	}
}

// callExpr emits a call to a random callee if the budget allows.
func (fg *fnGen) callExpr() bool {
	if len(fg.callees) == 0 || fg.loopDepth >= genMaxLoopDepth {
		return false
	}
	c := fg.callees[fg.rng().Intn(len(fg.callees))]
	cost := (c.dynEst + 2) * fg.mult
	if fg.est+cost > fg.capEst {
		return false
	}
	for i := 0; i < c.nargs; i++ {
		fg.expr(genMaxExprDepth - 1) // shallow args
	}
	fg.emit(bytecode.CALL, c.idx, int32(c.nargs))
	fg.est += cost
	return true
}

func (fg *fnGen) leaf() {
	rng := fg.rng()
	switch rng.Intn(12) {
	case 0, 1:
		fg.emit(bytecode.IPUSH, int32(rng.Intn(129))-64, 0)
	case 2:
		fg.emit(bytecode.IPUSH, int32(rng.Uint32()), 0)
	case 3:
		fg.emit(bytecode.CONST, fg.f.AddConst(bytecode.Int(rng.Int63()-rng.Int63())), 0)
	case 4:
		fg.emit(bytecode.CONST, fg.f.AddConst(bytecode.Float(rng.NormFloat64()*10)), 0)
	case 5, 6:
		fg.emit(bytecode.LOAD, fg.pick(fg.numLocals), 0)
	case 7, 8:
		fg.emit(bytecode.GLOAD, int32(fg.g.numGlobals[rng.Intn(len(fg.g.numGlobals))]), 0)
	case 9:
		if len(fg.counters) > 0 {
			fg.emit(bytecode.LOAD, fg.pick(fg.counters), 0)
		} else {
			fg.emit(bytecode.IPUSH, int32(rng.Intn(17))-8, 0)
		}
	case 10: // array length
		switch {
		case fg.g.cfg.AllowTraps && rng.Intn(5) == 0:
			// Hazard: ALEN on a numeric slot traps at runtime; all
			// tiers must trap identically.
			fg.emit(bytecode.LOAD, fg.pick(fg.numLocals), 0)
			fg.emit(bytecode.ALEN, 0, 0)
		case len(fg.arrLocals) > 0:
			a := fg.arrLocals[rng.Intn(len(fg.arrLocals))]
			fg.emit(bytecode.LOAD, a.slot, 0)
			fg.emit(bytecode.ALEN, 0, 0)
		case fg.g.arrGlobal != nil:
			fg.emit(bytecode.GLOAD, fg.g.arrGlobal.slot, 0)
			fg.emit(bytecode.ALEN, 0, 0)
		default:
			fg.emit(bytecode.IPUSH, 1, 0)
		}
	default: // element of the array global
		if fg.g.arrGlobal != nil {
			fg.emit(bytecode.GLOAD, fg.g.arrGlobal.slot, 0)
			fg.maskedIndexGlobal(*fg.g.arrGlobal)
			fg.emit(bytecode.ALOAD, 0, 0)
		} else {
			fg.emit(bytecode.IPUSH, int32(rng.Intn(9))-4, 0)
		}
	}
}

// maskedIndexGlobal emits a masked index without recursing into expr
// (used from leaf, which must stay non-recursive).
func (fg *fnGen) maskedIndexGlobal(a arrSlot) {
	fg.emit(bytecode.IPUSH, int32(fg.rng().Intn(64)), 0)
	if len(fg.numLocals) > 0 && fg.rng().Intn(2) == 0 {
		fg.emit(bytecode.LOAD, fg.pick(fg.numLocals), 0)
		fg.emit(bytecode.IADD, 0, 0)
	}
	fg.emit(bytecode.IPUSH, a.mask(), 0)
	fg.emit(bytecode.IAND, 0, 0)
}
