package stripe

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func TestLookupStore(t *testing.T) {
	c := New[string, int](8)
	if _, ok := c.Lookup("a"); ok {
		t.Fatal("lookup on empty cache hit")
	}
	c.Store("a", 1)
	v, ok := c.Lookup("a")
	if !ok || v != 1 {
		t.Fatalf("got %d,%v want 1,true", v, ok)
	}
	c.Store("a", 2)
	if v, _ := c.Lookup("a"); v != 2 {
		t.Fatalf("overwrite: got %d want 2", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 2 hits 1 miss 1 entry", st)
	}
}

func TestCapacityExact(t *testing.T) {
	for _, cap := range []int{1, 2, 3, 7, 16, 33} {
		c := New[int, int](cap)
		for i := 0; i < cap*10; i++ {
			c.Store(i, i)
			if n := c.Len(); n > cap {
				t.Fatalf("cap %d: %d entries after %d stores", cap, n, i+1)
			}
		}
		st := c.Stats()
		if st.Entries > cap {
			t.Fatalf("cap %d: stats report %d entries", cap, st.Entries)
		}
		if st.Evictions == 0 {
			t.Fatalf("cap %d: expected evictions after %d stores", cap, cap*10)
		}
		// Shard capacities must partition the total exactly.
		sum := 0
		for i := range c.shards {
			sum += c.shards[i].capacity
		}
		if sum != cap {
			t.Fatalf("cap %d: shard capacities sum to %d", cap, sum)
		}
	}
}

func TestUnbounded(t *testing.T) {
	c := New[int, int](0)
	for i := 0; i < 10000; i++ {
		c.Store(i, i)
	}
	if n := c.Len(); n != 10000 {
		t.Fatalf("unbounded cache holds %d entries, want 10000", n)
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("unbounded cache evicted %d entries", st.Evictions)
	}
}

// TestClockSecondChance pins the CLOCK property that replaces LRU: an
// entry that was hit since the last sweep survives the next eviction
// pass; an entry that was not is the victim.
func TestClockSecondChance(t *testing.T) {
	c := New[int, int](2) // 2 shards of capacity 1 — each shard a 1-slot clock
	// Find two keys in the same shard so they compete for one slot.
	base := 0
	sh := c.shard(base)
	other := -1
	for k := 1; k < 1<<16; k++ {
		if c.shard(k) == sh {
			other = k
			break
		}
	}
	if other < 0 {
		t.Fatal("no colliding key found")
	}
	c.Store(base, 1)
	c.Store(other, 2) // evicts base: the only slot
	if _, ok := c.Lookup(base); ok {
		t.Fatal("base survived a full shard")
	}
	if v, ok := c.Lookup(other); !ok || v != 2 {
		t.Fatal("other should be cached")
	}
}

// TestLoadOrStore verifies the memo contract: the first caller's value
// wins and later callers observe it; counters are untouched.
func TestLoadOrStore(t *testing.T) {
	c := New[string, int](4)
	v, loaded := c.LoadOrStore("k", 1)
	if loaded || v != 1 {
		t.Fatalf("first LoadOrStore got %d,%v", v, loaded)
	}
	v, loaded = c.LoadOrStore("k", 2)
	if !loaded || v != 1 {
		t.Fatalf("second LoadOrStore got %d,%v want 1,true", v, loaded)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("LoadOrStore touched hit/miss counters: %+v", st)
	}
}

// TestConcurrentHammer drives every operation from GOMAXPROCS
// goroutines and asserts the exact-capacity invariant and counter
// conservation throughout — the package-level slice of the serving
// contention battery (see internal/serve for the end-to-end one).
func TestConcurrentHammer(t *testing.T) {
	const cap = 64
	c := New[int, *int](cap)
	workers := runtime.GOMAXPROCS(0) * 4
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := (w*31 + i) % (cap * 4)
				if v, ok := c.Lookup(key); ok {
					if *v != key {
						panic(fmt.Sprintf("key %d holds value %d", key, *v))
					}
					continue
				}
				v := key
				got, _ := c.LoadOrStore(key, &v)
				if *got != key {
					panic(fmt.Sprintf("key %d stored as %d", key, *got))
				}
				if n := c.Len(); n > cap {
					panic(fmt.Sprintf("capacity exceeded: %d > %d", n, cap))
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > cap {
		t.Fatalf("final entries %d exceed capacity %d", st.Entries, cap)
	}
	if st.Hits+st.Misses != int64(workers*perWorker) {
		t.Fatalf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, workers*perWorker)
	}
}

func BenchmarkHitParallel(b *testing.B) {
	c := New[int, int](1024)
	for i := 0; i < 1024; i++ {
		c.Store(i, i)
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Lookup(i % 1024)
			i++
		}
	})
}
