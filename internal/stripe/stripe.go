// Package stripe provides the lock-striped, read-mostly bounded cache
// that backs every process-wide cache on the serving hot path
// (jit.Cache, xicl.FVCache, the harness baseline-outcome memo).
//
// The previous generation of those caches were plain-mutex LRUs: a
// *lookup* mutated the recency list, so even a 100% hit workload
// serialized all readers behind one lock. This cache removes both
// serialization points:
//
//   - Striping: entries are sharded by key hash across N independent
//     shards, so requests for different keys contend only 1/N as often,
//     and a miss in one shard never blocks a hit in another.
//   - CLOCK recency: instead of an LRU list, each entry carries a
//     reference bit. A hit takes only the shard's read lock for the map
//     probe and sets the bit with a single atomic store (skipped when
//     already set, so hot entries stay read-only in cache-coherence
//     terms). Only misses, inserts, and evictions take the shard's
//     write lock; eviction sweeps a clock hand that gives referenced
//     entries a second chance — the classic one-bit approximation of
//     LRU.
//
// The capacity bound is exact: shard capacities partition the total, so
// the cache never holds more than its configured entry count. What is
// deliberately *not* preserved from the LRU implementation is the exact
// eviction order — CLOCK approximates it, and a skewed key distribution
// can evict a different victim than a global LRU would. That is safe for
// every cache built on this package because eviction is unobservable in
// virtual terms: a re-miss re-runs a deterministic computation (see
// DESIGN.md §14 for the determinism-boundary argument).
//
// Hit/miss/eviction counters are per-shard atomics aggregated on read,
// so Stats never blocks the hot path.
package stripe

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// defaultShards is the stripe width. Contention drops linearly with it
// while per-shard capacity (and therefore recency quality) drops too;
// 16 is far above any core count this repo targets without making the
// per-shard clocks degenerate.
const defaultShards = 16

// hashSeed randomizes shard assignment per process. Shard choice is a
// host-side detail — never a virtual observable — so a random seed costs
// nothing and hardens the stripe against adversarial key sets.
var hashSeed = maphash.MakeSeed()

// Stats reports a cache's effectiveness and occupancy, aggregated over
// all shards. The counter fields are exact (atomic per-shard counters
// summed); Entries is a consistent-per-shard sum, momentarily stale by
// design.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Capacity  int // 0 = unbounded
}

// entry is one cached key/value pair. key and v are immutable after
// publication — overwriting a key replaces the whole entry under the
// shard write lock — so readers holding an entry never race a writer.
// ref is the CLOCK reference bit: set on hit, cleared (second chance)
// by the sweeping hand, evicted when found clear.
type entry[K comparable, V any] struct {
	key  K
	v    V
	slot int // index in the shard ring; -1 when unbounded
	ref  atomic.Bool
}

type shard[K comparable, V any] struct {
	mu       sync.RWMutex
	m        map[K]*entry[K, V]
	ring     []*entry[K, V] // fixed eviction slots (bounded shards only)
	free     []int          // unoccupied ring slots
	hand     int            // CLOCK hand position in ring
	capacity int            // 0 = unbounded

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// Cache is a bounded key/value cache, striped across shards with CLOCK
// eviction. The zero value is not usable; construct with New.
type Cache[K comparable, V any] struct {
	shards   []shard[K, V]
	capacity int
}

// New returns a cache holding at most capacity entries across all shards
// (capacity <= 0 means unbounded). The shard count adapts downward so
// every shard can hold at least one entry.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	n := defaultShards
	if capacity > 0 && capacity < n {
		n = capacity
	}
	c := &Cache[K, V]{shards: make([]shard[K, V], n), capacity: capacity}
	for i := range c.shards {
		sh := &c.shards[i]
		if capacity > 0 {
			// Partition the capacity exactly: the first capacity%n shards
			// take the remainder, so shard capacities sum to capacity.
			sh.capacity = capacity / n
			if i < capacity%n {
				sh.capacity++
			}
			sh.ring = make([]*entry[K, V], sh.capacity)
			sh.free = make([]int, sh.capacity)
			for s := range sh.free {
				sh.free[s] = sh.capacity - 1 - s // pop slots in ascending order
			}
		}
		sh.m = make(map[K]*entry[K, V])
	}
	return c
}

func (c *Cache[K, V]) shard(key K) *shard[K, V] {
	h := maphash.Comparable(hashSeed, key)
	return &c.shards[h%uint64(len(c.shards))]
}

// Lookup returns the value cached under key. A hit touches only the
// shard read lock and the entry's reference bit; it never reorders any
// shared structure.
func (c *Cache[K, V]) Lookup(key K) (V, bool) {
	sh := c.shard(key)
	sh.mu.RLock()
	e := sh.m[key]
	sh.mu.RUnlock()
	if e == nil {
		sh.misses.Add(1)
		var zero V
		return zero, false
	}
	if !e.ref.Load() {
		e.ref.Store(true)
	}
	sh.hits.Add(1)
	return e.v, true
}

// Store caches v under key, evicting via the shard's clock when the
// shard is full. Overwriting an existing key replaces its entry in
// place (same slot, fresh reference bit) without an eviction.
func (c *Cache[K, V]) Store(key K, v V) {
	sh := c.shard(key)
	sh.mu.Lock()
	sh.store(key, v)
	sh.mu.Unlock()
}

// LoadOrStore returns the value already cached under key, or caches and
// returns v. Like the load-side of a double-checked memo it touches no
// hit/miss counters — the caller's preceding Lookup already accounted
// the miss. The boolean reports whether an existing value was kept.
func (c *Cache[K, V]) LoadOrStore(key K, v V) (V, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.m[key]; ok {
		if !e.ref.Load() {
			e.ref.Store(true)
		}
		return e.v, true
	}
	sh.store(key, v)
	return v, false
}

// store inserts or replaces under the shard write lock (held by caller).
func (sh *shard[K, V]) store(key K, v V) {
	if old, ok := sh.m[key]; ok {
		e := &entry[K, V]{key: key, v: v, slot: old.slot}
		e.ref.Store(true)
		if old.slot >= 0 {
			sh.ring[old.slot] = e
		}
		sh.m[key] = e
		return
	}
	e := &entry[K, V]{key: key, v: v, slot: -1}
	e.ref.Store(true)
	if sh.capacity > 0 {
		var slot int
		if n := len(sh.free); n > 0 {
			slot = sh.free[n-1]
			sh.free = sh.free[:n-1]
		} else {
			slot = sh.evict()
		}
		e.slot = slot
		sh.ring[slot] = e
	}
	sh.m[key] = e
}

// evict advances the clock hand until it finds an entry whose reference
// bit is clear, removing it and returning its freed slot. Referenced
// entries get their bit cleared and survive the pass — the second
// chance. The sweep terminates: after one full revolution every bit has
// been cleared, so the second revolution must evict.
func (sh *shard[K, V]) evict() int {
	for {
		slot := sh.hand
		sh.hand++
		if sh.hand == len(sh.ring) {
			sh.hand = 0
		}
		e := sh.ring[slot]
		if e == nil {
			continue
		}
		if e.ref.CompareAndSwap(true, false) {
			continue
		}
		delete(sh.m, e.key)
		sh.ring[slot] = nil
		sh.evictions.Add(1)
		return slot
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Range calls fn for every cached entry, one shard at a time under that
// shard's read lock. fn must not call back into the cache for keys that
// could land in the shard being walked (same-shard Store would deadlock
// on lock upgrade); touching unrelated structures — enqueueing work,
// aggregating — is fine. Iteration order is unspecified, and entries
// stored or evicted concurrently may or may not be seen: callers use
// Range for advisory sweeps (pre-warming, diagnostics), never for
// correctness.
func (c *Cache[K, V]) Range(fn func(key K, v V)) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for k, e := range sh.m {
			fn(k, e.v)
		}
		sh.mu.RUnlock()
	}
}

// Stats aggregates the per-shard counters and occupancy.
func (c *Cache[K, V]) Stats() Stats {
	st := Stats{Capacity: c.capacity}
	for i := range c.shards {
		sh := &c.shards[i]
		st.Hits += sh.hits.Load()
		st.Misses += sh.misses.Load()
		st.Evictions += sh.evictions.Load()
		sh.mu.RLock()
		st.Entries += len(sh.m)
		sh.mu.RUnlock()
	}
	return st
}
