package programs

import (
	"fmt"
	"math/rand"
	"strings"

	"evolvevm/internal/xicl"
)

// Db models SPECjvm98 _209_db: an in-memory database sorted with
// shellsort and probed with binary searches. The database file size
// drives the sort phase, the query file drives the probe phase, and the
// -s flag adds an aggregation pass over all records. The paper's Table I
// lists "sizes of database and queries" as Db's user-defined features:
// mRecords and mQueries read the header lines of the two input files.
const dbSource = `
global nrec
global keys
global nq
global queries
global dostats
global result

func main() locals acc
  call sortphase 0
  call queryphase 0
  iadd
  store acc
  gload dostats
  jz nostats
  load acc
  call statsphase 0
  iadd
  store acc
nostats:
  load acc
  gstore result
  gload result
  ret
end

; --- shellsort: one gap pass per invocation ---
func sortphase() locals gap
  gload nrec
  const 2
  idiv
  store gap
loop:
  load gap
  const 1
  ilt
  jnz done
  load gap
  call gappass 1
  pop
  load gap
  const 2
  idiv
  store gap
  jmp loop
done:
  gload keys
  const 0
  aload
  ret
end

func gappass(gap) locals i j tmp moved
  const 0
  store moved
  load gap
  store i
outer:
  load i
  gload nrec
  ige
  jnz done
  gload keys
  load i
  aload
  store tmp
  load i
  store j
inner:
  load j
  load gap
  ilt
  jnz place
  gload keys
  load j
  load gap
  isub
  aload
  load tmp
  ile
  jnz place
  gload keys
  load j
  gload keys
  load j
  load gap
  isub
  aload
  astore
  load j
  load gap
  isub
  store j
  iinc moved 1
  jmp inner
place:
  gload keys
  load j
  load tmp
  astore
  iinc i 1
  jmp outer
done:
  load moved
  ret
end

; --- binary-search probes, one query per binfind invocation ---
func queryphase() locals q hits
  const 0
  store hits
  const 0
  store q
loop:
  load q
  gload nq
  ige
  jnz done
  load hits
  gload queries
  load q
  aload
  call binfind 1
  iadd
  store hits
  iinc q 1
  jmp loop
done:
  load hits
  ret
end

func binfind(key) locals lo hi mid v
  const 0
  store lo
  gload nrec
  store hi
loop:
  load lo
  load hi
  ige
  jnz miss
  load lo
  load hi
  iadd
  const 2
  idiv
  store mid
  gload keys
  load mid
  aload
  store v
  load v
  load key
  ieq
  jnz hit
  load v
  load key
  ilt
  jnz golo
  load mid
  store hi
  jmp loop
golo:
  load mid
  const 1
  iadd
  store lo
  jmp loop
hit:
  const 1
  ret
miss:
  const 0
  ret
end

; --- aggregation pass over record blocks (with -s) ---
func statsphase() locals off end acc
  const 0
  store acc
  const 0
  store off
blocks:
  load off
  gload nrec
  ige
  jnz done
  load off
  const 256
  iadd
  store end
  load end
  gload nrec
  ile
  jnz clamped
  gload nrec
  store end
clamped:
  load acc
  load off
  load end
  call statsblock 2
  iadd
  store acc
  load end
  store off
  jmp blocks
done:
  load acc
  ret
end

func statsblock(lo, hi) locals i acc v
  const 0
  store acc
  load lo
  store i
loop:
  load i
  load hi
  ige
  jnz done
  gload keys
  load i
  aload
  store v
  load acc
  load v
  load v
  imul
  const 9973
  imod
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
`

const dbSpec = `
# SPECjvm98-style db: db [-s] DBFILE QUERYFILE
option  {name=-s:--stats; type=bin; attr=VAL; default=0; has_arg=n}
operand {position=1; type=file; attr=mRecords}
operand {position=2; type=file; attr=mQueries}
`

// headerCountMethod reads an integer count from the first line of a file
// ("<count>\n...") — the shared implementation of Db's user-defined
// features.
func headerCountMethod() xicl.XFMethod {
	return xicl.XFMethodFunc(func(raw string, _ xicl.ValueType, env *xicl.Env) (xicl.Feature, error) {
		if raw == "" {
			return xicl.NumFeature("", 0), nil
		}
		b, err := env.FS.ReadFile(raw)
		if err != nil {
			return xicl.Feature{}, err
		}
		env.Charge(30 + int64(len(b))/16)
		line, _, _ := strings.Cut(string(b), "\n")
		var v float64
		for _, c := range strings.TrimSpace(line) {
			if c < '0' || c > '9' {
				break
			}
			v = v*10 + float64(c-'0')
		}
		return xicl.NumFeature("", v), nil
	})
}

// Db returns the db benchmark.
func Db() *Benchmark {
	return &Benchmark{
		Name:              "db",
		Suite:             "jvm98",
		Source:            dbSource,
		Spec:              dbSpec,
		DefaultCorpusSize: 24,
		RegisterMethods: func(reg *xicl.Registry) error {
			if err := reg.Register("mRecords", headerCountMethod()); err != nil {
				return err
			}
			return reg.Register("mQueries", headerCountMethod())
		},
		GenInputs: genDbInputs,
	}
}

func genDbInputs(rng *rand.Rand, n int) []Input {
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		nrec := 400 + rng.Intn(2200)
		nq := 40 + rng.Intn(400)
		stats := rng.Intn(2) == 0

		keys := make([]int64, nrec)
		for j := range keys {
			keys[j] = int64(rng.Intn(1 << 20))
		}
		queries := make([]int64, nq)
		for j := range queries {
			if rng.Intn(2) == 0 {
				queries[j] = keys[rng.Intn(nrec)] // hit
			} else {
				queries[j] = int64(rng.Intn(1 << 20)) // likely miss
			}
		}

		dbPath := fmt.Sprintf("db%03d.tbl", i)
		qPath := fmt.Sprintf("q%03d.txt", i)
		dbContent := fmt.Sprintf("%d\n%s", nrec, renderInts(keys))
		qContent := fmt.Sprintf("%d\n%s", nq, renderInts(queries))

		args := []string{dbPath, qPath}
		dostats := int64(0)
		if stats {
			args = append([]string{"-s"}, args...)
			dostats = 1
		}
		// The engine needs both arrays; chain two array setups.
		setup := setupGlobalsAndArray(map[string]int64{
			"nrec":    int64(nrec),
			"nq":      int64(nq),
			"dostats": dostats,
		}, "keys", keys)
		qSetup := appendArraySetup(setup, "queries", queries)

		inputs = append(inputs, Input{
			ID:    fmt.Sprintf("db-%03d-r%d-q%d-s%d", i, nrec, nq, dostats),
			Args:  args,
			Files: map[string][]byte{dbPath: []byte(dbContent), qPath: []byte(qContent)},
			Setup: qSetup,
		})
	}
	return inputs
}

func renderInts(vals []int64) string {
	var b strings.Builder
	for _, v := range vals {
		fmt.Fprintf(&b, "%d\n", v)
	}
	return b.String()
}
