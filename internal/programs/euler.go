package programs

import (
	"fmt"
	"math/rand"
)

// Euler models Java Grande's euler: computational fluid dynamics on an
// n×n structured grid. Each time step computes fluxes row by row and then
// applies boundary conditions. The single input value (-n, the grid size)
// determines everything — the paper's Table I lists exactly one used
// feature for Euler. Iteration count scales with n, so total work grows
// ~n³ and the ideal levels of fluxrow/update climb quickly with n.
const eulerSource = `
global n
global iters
global grid
global result

func main() locals t acc
  call initgrid 0
  store acc
  const 0
  store t
steps:
  load t
  gload iters
  ige
  jnz done
  load acc
  call timestep 0
  iadd
  store acc
  iinc t 1
  jmp steps
done:
  load acc
  gstore result
  gload result
  ret
end

func initgrid() locals i total v
  gload n
  gload n
  imul
  store total
  const 0
  store i
loop:
  load i
  load total
  ige
  jnz done
  gload grid
  load i
  load i
  const 1021
  imul
  const 65535
  iand
  astore
  iinc i 1
  jmp loop
done:
  load total
  ret
end

func timestep() locals y acc
  const 0
  store acc
  const 1
  store y
rows:
  load y
  gload n
  const 1
  isub
  ige
  jnz bc
  load acc
  load y
  call fluxrow 1
  iadd
  store acc
  iinc y 1
  jmp rows
bc:
  load acc
  call boundary 0
  iadd
  ret
end

; fluxrow updates one interior row from its neighbours (4-point stencil).
func fluxrow(y) locals x acc base up down v
  const 0
  store acc
  load y
  gload n
  imul
  store base
  load base
  gload n
  isub
  store up
  load base
  gload n
  iadd
  store down
  const 1
  store x
cols:
  load x
  gload n
  const 1
  isub
  ige
  jnz done
  gload grid
  load base
  load x
  iadd
  aload
  const 2
  imul
  gload grid
  load up
  load x
  iadd
  aload
  iadd
  gload grid
  load down
  load x
  iadd
  aload
  iadd
  const 4
  idiv
  store v
  gload grid
  load base
  load x
  iadd
  load v
  astore
  load acc
  load v
  iadd
  const 1048575
  iand
  store acc
  iinc x 1
  jmp cols
done:
  load acc
  ret
end

func boundary() locals i acc last
  const 0
  store acc
  gload n
  gload n
  imul
  gload n
  isub
  store last
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  gload grid
  load i
  gload grid
  load i
  gload n
  iadd
  aload
  astore
  gload grid
  load last
  load i
  iadd
  gload grid
  load last
  load i
  iadd
  gload n
  isub
  aload
  astore
  load acc
  load i
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
`

const eulerSpec = `
# Java Grande-style euler: euler [-n GRIDSIZE] [-v]
option  {name=-n:--size; type=num; attr=VAL; default=16; has_arg=y}
option  {name=-v:--validate; type=bin; attr=VAL; default=0; has_arg=n}
`

// Euler returns the euler benchmark.
func Euler() *Benchmark {
	return &Benchmark{
		Name:              "euler",
		Suite:             "grande",
		Source:            eulerSource,
		Spec:              eulerSpec,
		DefaultCorpusSize: 24,
		InputSensitive:    true,
		GenInputs:         genEulerInputs,
	}
}

func genEulerInputs(rng *rand.Rand, n int) []Input {
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		// Bimodal: coarse validation grids and production grids.
		var size int
		if rng.Intn(5) < 2 {
			size = 8 + rng.Intn(8)
		} else {
			size = 24 + rng.Intn(24)
		}
		iters := 2 + size/2
		cells := int64(size * size)
		inputs = append(inputs, Input{
			ID:   fmt.Sprintf("euler-%03d-n%d", i, size),
			Args: []string{"-n", fmt.Sprint(size)},
			Setup: setupGlobalsAndArray(map[string]int64{
				"n":     int64(size),
				"iters": int64(iters),
			}, "grid", make([]int64, cells)),
		})
	}
	return inputs
}
