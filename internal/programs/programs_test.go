package programs

import (
	"math/rand"
	"testing"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/interp"
	"evolvevm/internal/opt"
	"evolvevm/internal/xicl"
)

func TestSuiteComplete(t *testing.T) {
	names := map[string]bool{}
	for _, b := range All() {
		names[b.Name] = true
	}
	for _, want := range []string{
		"compress", "db", "mtrt", "antlr", "bloat", "fop",
		"euler", "moldyn", "montecarlo", "search", "raytracer",
	} {
		if !names[want] {
			t.Errorf("suite missing %s", want)
		}
	}
	if len(names) != 11 {
		t.Errorf("suite has %d benchmarks, want 11", len(names))
	}
	if ByName("mtrt") == nil || ByName("nope") != nil {
		t.Error("ByName lookup broken")
	}
}

func TestAllBenchmarksAssemble(t *testing.T) {
	for _, b := range append(All(), Extensions()...) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := b.Program()
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			if prog.NumInstrs() < 30 {
				t.Errorf("suspiciously small program: %d instrs", prog.NumInstrs())
			}
			if _, err := b.ParsedSpec(); err != nil {
				t.Fatalf("spec: %v", err)
			}
			if _, err := b.Registry(); err != nil {
				t.Fatalf("registry: %v", err)
			}
		})
	}
}

func TestAllBenchmarksRunAndTranslate(t *testing.T) {
	for _, b := range append(All(), Extensions()...) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := b.Program()
			if err != nil {
				t.Fatal(err)
			}
			spec, err := b.ParsedSpec()
			if err != nil {
				t.Fatal(err)
			}
			reg, err := b.Registry()
			if err != nil {
				t.Fatal(err)
			}
			inputs := b.GenInputs(rand.New(rand.NewSource(42)), 4)
			if len(inputs) == 0 {
				t.Fatal("no inputs generated")
			}
			var shape []string
			for _, in := range inputs {
				// XICL translation must succeed with a stable shape.
				tr := xicl.NewTranslator(spec, reg, in.Files)
				vec, err := tr.BuildFVector(in.Args)
				if err != nil {
					t.Fatalf("%s: translate: %v", in.ID, err)
				}
				if shape == nil {
					shape = vec.Names()
				} else {
					names := vec.Names()
					if len(names) != len(shape) {
						t.Fatalf("%s: vector shape changed: %v vs %v", in.ID, names, shape)
					}
					for i := range names {
						if names[i] != shape[i] {
							t.Fatalf("%s: feature %d named %s, want %s", in.ID, i, names[i], shape[i])
						}
					}
				}

				// The program must run and be level-invariant.
				e := interp.NewEngine(prog)
				if err := in.Setup(e); err != nil {
					t.Fatalf("%s: setup: %v", in.ID, err)
				}
				base, err := e.Run()
				if err != nil {
					t.Fatalf("%s: baseline run: %v", in.ID, err)
				}

				e2 := interp.NewEngine(prog)
				if err := in.Setup(e2); err != nil {
					t.Fatal(err)
				}
				codes := make([]*interp.Code, len(prog.Funcs))
				for idx := range prog.Funcs {
					g, _, err := opt.Optimize(prog, idx, 2)
					if err != nil {
						t.Fatalf("%s: optimize %s: %v", in.ID, prog.Funcs[idx].Name, err)
					}
					codes[idx] = interp.NewCode(idx, g, 2, 28)
				}
				e2.Provider = func(fn int) *interp.Code { return codes[fn] }
				o2, err := e2.Run()
				if err != nil {
					t.Fatalf("%s: O2 run: %v", in.ID, err)
				}
				if !base.Equal(o2) {
					t.Errorf("%s: O2 result %v != baseline %v", in.ID, o2, base)
				}
				if e2.Cycles >= e.Cycles {
					t.Errorf("%s: O2 cycles %d >= baseline %d", in.ID, e2.Cycles, e.Cycles)
				}
				t.Logf("%s: baseline=%d cycles, O2=%d cycles (%.2fx)",
					in.ID, e.Cycles, e2.Cycles, float64(e.Cycles)/float64(e2.Cycles))
			}
		})
	}
}

func TestCorpusDeterministic(t *testing.T) {
	for _, b := range All() {
		a := b.GenInputs(rand.New(rand.NewSource(9)), 5)
		c := b.GenInputs(rand.New(rand.NewSource(9)), 5)
		if len(a) != len(c) {
			t.Fatalf("%s: nondeterministic corpus size", b.Name)
		}
		for i := range a {
			if a[i].ID != c[i].ID {
				t.Errorf("%s: input %d IDs differ: %s vs %s", b.Name, i, a[i].ID, c[i].ID)
			}
		}
	}
}

func TestWorkScalesWithInput(t *testing.T) {
	// Every benchmark must show substantial input-driven variation in
	// baseline running time — the property the paper's study requires.
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := b.Program()
			if err != nil {
				t.Fatal(err)
			}
			inputs := b.GenInputs(rand.New(rand.NewSource(5)), 8)
			minC, maxC := int64(1<<62), int64(0)
			for _, in := range inputs {
				e := interp.NewEngine(prog)
				if err := in.Setup(e); err != nil {
					t.Fatal(err)
				}
				if _, err := e.Run(); err != nil {
					t.Fatalf("%s: %v", in.ID, err)
				}
				if e.Cycles < minC {
					minC = e.Cycles
				}
				if e.Cycles > maxC {
					maxC = e.Cycles
				}
			}
			if maxC < minC*2 {
				t.Errorf("cycle range [%d, %d] too narrow (want >= 2x spread)", minC, maxC)
			}
			t.Logf("cycles: min=%d max=%d spread=%.1fx", minC, maxC, float64(maxC)/float64(minC))
		})
	}
}

func TestSetupInstallsDeclaredGlobals(t *testing.T) {
	for _, b := range All() {
		prog, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		in := b.GenInputs(rand.New(rand.NewSource(2)), 1)[0]
		e := interp.NewEngine(prog)
		if err := in.Setup(e); err != nil {
			t.Fatalf("%s: setup references undeclared global: %v", b.Name, err)
		}
		_ = bytecode.Value{}
	}
}
