package programs

import (
	"fmt"
	"math/rand"
)

// Search models Java Grande's search: alpha-beta game-tree search over a
// connect-4-style position. The input string encodes the starting
// position; its length determines the remaining search depth (the paper's
// single used feature for Search, "length of input string"). Like the
// paper's corpus, only a handful of inputs exist because legal positions
// are constrained.
const searchSource = `
global maxdepth
global board0
global result

func main() locals v
  gload board0
  gload maxdepth
  const -1000000
  const 1000000
  call alphabeta 4
  gstore result
  gload result
  ret
end

; alphabeta explores 2 successor moves per node.
func alphabeta(state, depth, alpha, beta) locals mv child v
  load depth
  const 1
  ilt
  jnz leaf
  const 0
  store mv
moves:
  load mv
  const 2
  ige
  jnz done
  load state
  load mv
  call makemove 2
  store child
  load child
  load depth
  const 1
  isub
  load beta
  ineg
  load alpha
  ineg
  call alphabeta 4
  ineg
  store v
  load v
  load alpha
  igt
  jnz raise
  jmp next
raise:
  load v
  store alpha
  load alpha
  load beta
  ige
  jnz done
next:
  iinc mv 1
  jmp moves
done:
  load alpha
  ret
leaf:
  load state
  call evaluate 1
  ret
end

func makemove(state, mv) locals s
  load state
  const 131
  imul
  load mv
  iadd
  const 16777213
  imod
  ret
end

; evaluate scores a leaf position with a short static-analysis loop.
func evaluate(state) locals i acc s
  load state
  store s
  const 0
  store acc
  const 0
  store i
loop:
  load i
  const 40
  ige
  jnz done
  load s
  const 7
  imod
  load acc
  iadd
  store acc
  load s
  const 3
  idiv
  load i
  iadd
  store s
  iinc i 1
  jmp loop
done:
  load acc
  const 64
  imod
  const 32
  isub
  ret
end
`

const searchSpec = `
# Java Grande-style search: search [-a] POSITION
option  {name=-a:--alpha-beta; type=bin; attr=VAL; default=1; has_arg=n}
operand {position=1; type=str; attr=LEN:VAL}
`

// Search returns the search benchmark.
func Search() *Benchmark {
	return &Benchmark{
		Name:              "search",
		Suite:             "grande",
		Source:            searchSource,
		Spec:              searchSpec,
		DefaultCorpusSize: 5, // paper: few inputs due to input constraints
		GenInputs:         genSearchInputs,
	}
}

func genSearchInputs(rng *rand.Rand, n int) []Input {
	if n > 6 {
		n = 6
	}
	inputs := make([]Input, 0, n)
	moves := "0123456"
	for i := 0; i < n; i++ {
		// Position string: the moves played so far. More moves played =
		// shorter remaining search.
		played := 4 + i*2
		pos := make([]byte, played)
		state := int64(7)
		for j := range pos {
			mv := rng.Intn(7)
			pos[j] = moves[mv]
			state = (state*131 + int64(mv)) % 16777213
		}
		depth := 15 - played/2 // 13, 12, 11, 10, 9, 8
		inputs = append(inputs, Input{
			ID:   fmt.Sprintf("search-%03d-len%d-d%d", i, played, depth),
			Args: []string{string(pos)},
			Setup: setupGlobals(map[string]int64{
				"maxdepth": int64(depth),
				"board0":   state,
			}),
		})
	}
	return inputs
}
