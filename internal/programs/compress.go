package programs

import (
	"fmt"
	"math/rand"
)

// Compress models SPECjvm98 _201_compress: buffer-oriented compression.
// The data is processed in blocks through a run-length pass, and — when
// full compression (-x) is requested — a frequency-counting pass and an
// entropy-coding pass. Input size determines how hot the block methods
// are; the -x flag determines whether the frequency/encode methods run at
// all. The ideal level of rleBlock grows with file size, while freqBlock
// and encodeBlock flip between "never compile" and "compile high"
// depending on -x: both relations are learnable from the XICL features
// (file SIZE and the -x flag).
const compressSource = `
global size
global data
global mode
global freqs
global result

func main() locals acc f
  const 0
  call rlephase 0
  store acc
  gload mode
  jz plain
  call freqphase 0
  pop
  load acc
  call encodephase 0
  iadd
  store acc
plain:
  load acc
  call sumphase 0
  iadd
  gstore result
  gload result
  ret
end

; --- run-length pass over blocks of 512 elements ---
func rlephase() locals off end acc
  const 0
  store acc
  const 0
  store off
blocks:
  load off
  gload size
  ige
  jnz done
  load off
  const 512
  iadd
  store end
  load end
  gload size
  ile
  jnz clamped
  gload size
  store end
clamped:
  load acc
  load off
  load end
  call rleblock 2
  iadd
  store acc
  load end
  store off
  jmp blocks
done:
  load acc
  ret
end

func rleblock(lo, hi) locals i runs prev cur
  const 0
  store runs
  const -1
  store prev
  load lo
  store i
loop:
  load i
  load hi
  ige
  jnz done
  gload data
  load i
  aload
  store cur
  load cur
  load prev
  ieq
  jnz same
  iinc runs 1
  load cur
  store prev
same:
  iinc i 1
  jmp loop
done:
  load runs
  ret
end

; --- frequency counting (full compression only) ---
func freqphase() locals off end f
  const 256
  newarr
  gstore freqs
  const 0
  store off
blocks:
  load off
  gload size
  ige
  jnz done
  load off
  const 512
  iadd
  store end
  load end
  gload size
  ile
  jnz clamped
  gload size
  store end
clamped:
  load off
  load end
  call freqblock 2
  pop
  load end
  store off
  jmp blocks
done:
  const 0
  ret
end

func freqblock(lo, hi) locals i v
  load lo
  store i
loop:
  load i
  load hi
  ige
  jnz done
  gload data
  load i
  aload
  const 255
  iand
  store v
  gload freqs
  load v
  gload freqs
  load v
  aload
  const 1
  iadd
  astore
  iinc i 1
  jmp loop
done:
  const 0
  ret
end

; --- entropy-coding pass (full compression only) ---
func encodephase() locals off end acc
  const 0
  store acc
  const 0
  store off
blocks:
  load off
  gload size
  ige
  jnz done
  load off
  const 512
  iadd
  store end
  load end
  gload size
  ile
  jnz clamped
  gload size
  store end
clamped:
  load acc
  load off
  load end
  call encodeblock 2
  iadd
  store acc
  load end
  store off
  jmp blocks
done:
  load acc
  ret
end

func encodeblock(lo, hi) locals i acc v
  const 0
  store acc
  load lo
  store i
loop:
  load i
  load hi
  ige
  jnz done
  gload data
  load i
  aload
  const 255
  iand
  store v
  load acc
  gload freqs
  load v
  aload
  const 7
  imul
  load v
  ixor
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end

; --- checksum pass (always) ---
func sumphase() locals off end acc
  const 0
  store acc
  const 0
  store off
blocks:
  load off
  gload size
  ige
  jnz done
  load off
  const 512
  iadd
  store end
  load end
  gload size
  ile
  jnz clamped
  gload size
  store end
clamped:
  load acc
  load off
  load end
  call sumblock 2
  iadd
  store acc
  load end
  store off
  jmp blocks
done:
  load acc
  ret
end

func sumblock(lo, hi) locals i acc
  const 0
  store acc
  load lo
  store i
loop:
  load i
  load hi
  ige
  jnz done
  load acc
  gload data
  load i
  aload
  load i
  iadd
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
`

const compressSpec = `
# SPECjvm98-style compress: compress [-x] FILE
option  {name=-x:--full; type=bin; attr=VAL; default=0; has_arg=n}
operand {position=1; type=file; attr=SIZE}
`

// Compress returns the compress benchmark.
func Compress() *Benchmark {
	return &Benchmark{
		Name:              "compress",
		Suite:             "jvm98",
		Source:            compressSource,
		Spec:              compressSpec,
		DefaultCorpusSize: 18, // paper Table I: 18 inputs
		InputSensitive:    true,
		GenInputs:         genCompressInputs,
	}
}

func genCompressInputs(rng *rand.Rand, n int) []Input {
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		// Bimodal corpus — small config-like files and large archives —
		// so the ideal level of the block kernels depends on file size.
		// Roughly a third of the corpus asks for full compression.
		var size int
		if rng.Intn(5) < 2 {
			size = 1500 + rng.Intn(4000)
		} else {
			size = 15000 + rng.Intn(45000)
		}
		full := rng.Intn(3) == 0
		compressibility := 1 + rng.Intn(8) // average run length

		content := make([]byte, size)
		data := make([]int64, size)
		cur := byte(rng.Intn(256))
		for j := range content {
			if rng.Intn(compressibility+1) == 0 {
				cur = byte(rng.Intn(256))
			}
			content[j] = cur
			data[j] = int64(cur)
		}

		path := fmt.Sprintf("input%03d.dat", i)
		args := []string{path}
		mode := int64(0)
		if full {
			args = append([]string{"-x"}, args...)
			mode = 1
		}
		inputs = append(inputs, Input{
			ID:    fmt.Sprintf("compress-%03d-s%d-x%d", i, size, mode),
			Args:  args,
			Files: map[string][]byte{path: content},
			Setup: setupGlobalsAndArray(map[string]int64{
				"size": int64(size),
				"mode": mode,
			}, "data", data),
		})
	}
	return inputs
}
