package programs

import (
	"fmt"
	"math/rand"
)

// Server is an allocation-heavy request-processing program used by the
// GC-selection extension (paper §VI; not part of the Table I suite). Each
// request allocates a scratch buffer, computes over it, and retains a
// slice of results with probability controlled by -k: low retention
// favours a copying collector, high retention a mark-sweep collector, so
// the ideal policy is a learnable function of the XICL features.
const serverSource = `
global nreq
global tmpsize
global keepmod
global store
global result

func main() locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  gload nreq
  ige
  jnz done
  load acc
  load i
  call handle 1
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  gstore result
  gload result
  ret
end

; handle services one request: allocate, fill, reduce, maybe retain.
func handle(req) locals buf j acc
  gload tmpsize
  newarr
  store buf
  const 0
  store j
fill:
  load j
  gload tmpsize
  ige
  jnz reduce
  load buf
  load j
  load req
  load j
  imul
  const 8191
  iand
  astore
  iinc j 1
  jmp fill
reduce:
  const 0
  store acc
  const 0
  store j
sum:
  load j
  gload tmpsize
  ige
  jnz retain
  load acc
  load buf
  load j
  aload
  iadd
  store acc
  iinc j 1
  jmp sum
retain:
  load req
  gload keepmod
  imod
  jnz drop
  gload store
  load req
  gload keepmod
  idiv
  gload store
  alen
  imod
  load buf
  astore
drop:
  load acc
  ret
end
`

const serverSpec = `
# server [-n REQUESTS] [-t TMPSIZE] [-k KEEPMOD]
option {name=-n:--requests; type=num; attr=VAL; default=200; has_arg=y}
option {name=-t:--tmpsize; type=num; attr=VAL; default=50; has_arg=y}
option {name=-k:--keepmod; type=num; attr=VAL; default=10; has_arg=y}
`

// Server returns the GC-extension benchmark (not part of Table I's
// eleven; see programs.All).
func Server() *Benchmark {
	return &Benchmark{
		Name:              "server",
		Suite:             "extension",
		Source:            serverSource,
		Spec:              serverSpec,
		DefaultCorpusSize: 24,
		InputSensitive:    true,
		GenInputs:         genServerInputs,
	}
}

func genServerInputs(rng *rand.Rand, n int) []Input {
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		nreq := 150 + rng.Intn(450)
		tmpsize := 30 + rng.Intn(80)
		// Bimodal retention: cache-like services keep nearly everything,
		// stateless ones keep almost nothing.
		var keepmod int
		if rng.Intn(2) == 0 {
			keepmod = 1 + rng.Intn(2) // retain 1/1 .. 1/2: high retention
		} else {
			keepmod = 25 + rng.Intn(40) // retain 1/25 .. 1/65: low retention
		}
		// The retained-results store is a fixed-size ring, as in a real
		// cache: high-retention inputs keep it full of live buffers,
		// low-retention inputs leave almost everything dead.
		const storeSlots = 32
		inputs = append(inputs, Input{
			ID: fmt.Sprintf("server-%03d-n%d-t%d-k%d", i, nreq, tmpsize, keepmod),
			Args: []string{
				"-n", fmt.Sprint(nreq),
				"-t", fmt.Sprint(tmpsize),
				"-k", fmt.Sprint(keepmod),
			},
			Setup: setupGlobalsAndArray(map[string]int64{
				"nreq":    int64(nreq),
				"tmpsize": int64(tmpsize),
				"keepmod": int64(keepmod),
			}, "store", make([]int64, storeSlots)),
		})
	}
	return inputs
}
