package programs

import (
	"fmt"
	"math/rand"
)

// MolDyn models Java Grande's moldyn: N-body molecular dynamics. Every
// time step computes pairwise forces (one row of the interaction matrix
// per forcerow invocation — O(N²) total) and then integrates positions.
// The single input value (-n particles) controls the force kernel's heat
// quadratically, making moldyn strongly input-sensitive.
const moldynSource = `
global npart
global steps
global px
global pv
global result

func main() locals s acc
  const 0
  store acc
  const 0
  store s
steps_loop:
  load s
  gload steps
  ige
  jnz done
  load acc
  call onestep 0
  iadd
  store acc
  iinc s 1
  jmp steps_loop
done:
  load acc
  gstore result
  gload result
  ret
end

func onestep() locals i acc
  const 0
  store acc
  const 0
  store i
forces:
  load i
  gload npart
  ige
  jnz integrate
  load acc
  load i
  call forcerow 1
  iadd
  store acc
  iinc i 1
  jmp forces
integrate:
  load acc
  call moveall 0
  iadd
  ret
end

; forcerow accumulates the force on particle i from particles j > i.
func forcerow(i) locals j acc xi d f
  const 0
  store acc
  gload px
  load i
  aload
  store xi
  load i
  const 1
  iadd
  store j
loop:
  load j
  gload npart
  ige
  jnz done
  gload px
  load j
  aload
  load xi
  isub
  store d
  load d
  jnz nonzero
  const 1
  store d
nonzero:
  const 1048576
  load d
  load d
  imul
  const 1
  iadd
  idiv
  store f
  load acc
  load f
  iadd
  store acc
  gload pv
  load j
  gload pv
  load j
  aload
  load f
  isub
  astore
  iinc j 1
  jmp loop
done:
  gload pv
  load i
  gload pv
  load i
  aload
  load acc
  iadd
  astore
  load acc
  ret
end

func moveall() locals i acc total
  const 0
  store acc
  const 0
  store i
loop:
  load i
  gload npart
  ige
  jnz done
  gload px
  load i
  gload px
  load i
  aload
  gload pv
  load i
  aload
  const 256
  idiv
  iadd
  const 16777215
  iand
  astore
  load acc
  gload px
  load i
  aload
  iadd
  const 1048575
  iand
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
`

const moldynSpec = `
# Java Grande-style moldyn: moldyn [-n PARTICLES] [-v]
option  {name=-n:--particles; type=num; attr=VAL; default=64; has_arg=y}
option  {name=-v:--validate; type=bin; attr=VAL; default=0; has_arg=n}
`

// MolDyn returns the moldyn benchmark.
func MolDyn() *Benchmark {
	return &Benchmark{
		Name:              "moldyn",
		Suite:             "grande",
		Source:            moldynSource,
		Spec:              moldynSpec,
		DefaultCorpusSize: 24,
		InputSensitive:    true,
		GenInputs:         genMolDynInputs,
	}
}

func genMolDynInputs(rng *rand.Rand, n int) []Input {
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		// Bimodal: quick equilibration checks and full simulations.
		var npart int
		if rng.Intn(5) < 2 {
			npart = 12 + rng.Intn(16)
		} else {
			npart = 56 + rng.Intn(72)
		}
		steps := 6
		px := make([]int64, npart)
		for j := range px {
			px[j] = int64(rng.Intn(1 << 20))
		}
		setup := setupGlobalsAndArray(map[string]int64{
			"npart": int64(npart),
			"steps": int64(steps),
		}, "px", px)
		setup = appendArraySetup(setup, "pv", make([]int64, npart))
		inputs = append(inputs, Input{
			ID:    fmt.Sprintf("moldyn-%03d-n%d", i, npart),
			Args:  []string{"-n", fmt.Sprint(npart)},
			Setup: setup,
		})
	}
	return inputs
}
