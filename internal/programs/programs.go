// Package programs contains the benchmark suite of the reproduction: the
// eleven applications of the paper's Table I (Compress, Db, Mtrt from
// SPECjvm98; Antlr, Bloat, Fop from DaCapo; Euler, MolDyn, MonteCarlo,
// Search, RayTracer from Java Grande), rebuilt as programs for this VM.
//
// Each benchmark bundles:
//   - the program source in the VM's assembly;
//   - an XICL specification describing its command-line interface;
//   - programmer-defined feature extractors (the paper's XFMethod
//     instances, e.g. mRules for Antlr);
//   - an input model and a corpus generator producing the kind of input
//     variety the paper collected for its experiments.
//
// Inputs change which methods are hot and how much total work a run
// performs, so the ideal per-method optimization levels are a learnable
// function of the XICL features — the property the paper studies.
package programs

import (
	"fmt"
	"math/rand"
	"sync"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/interp"
	"evolvevm/internal/xicl"
)

// Input is one concrete program input: the command line the user would
// type, the files it references, and the parsed form the program reads
// (globals and arrays installed into the engine before the run, standing
// in for the application's own argument/file parsing).
type Input struct {
	// ID names the input for logs and tables.
	ID string
	// Args is the command line (without the program name).
	Args []string
	// Files holds the virtual input files referenced by Args.
	Files xicl.MapFS
	// Setup installs the parsed input into a fresh engine.
	Setup func(e *interp.Engine) error
}

// Benchmark is one application of the suite.
type Benchmark struct {
	// Name matches the paper's Table I.
	Name string
	// Suite is "jvm98", "dacapo", or "grande".
	Suite string
	// Source is the program in VM assembly.
	Source string
	// Spec is the XICL specification source.
	Spec string
	// RegisterMethods installs the benchmark's programmer-defined
	// feature-extraction methods (may be nil).
	RegisterMethods func(reg *xicl.Registry) error
	// GenInputs deterministically generates an input corpus of size n
	// from the rng. Sizes follow the paper: most benchmarks have dozens
	// of inputs, Search only a few.
	GenInputs func(rng *rand.Rand, n int) []Input
	// DefaultCorpusSize is the corpus size used by the experiments
	// (paper Table I, column "# Inputs").
	DefaultCorpusSize int
	// InputSensitive marks the benchmarks the paper found more
	// input-sensitive (Mtrt, Compress, Euler, MolDyn, RayTracer).
	InputSensitive bool
}

// Benchmark constructors (Compress() etc.) build a fresh value per call,
// but every call yields identical Source/Spec/RegisterMethods, so the
// assembled program, parsed spec, and registry are memoized process-wide.
// All three are read-only after construction: engines never mutate a
// Program (the optimizer clones), registries are only Lookup'd, and specs
// are only read — so shared instances are safe, including concurrently.
var (
	memoMu   sync.Mutex
	progMemo = make(map[memoKey]*bytecode.Program)
	specMemo = make(map[memoKey]*xicl.Spec)
	regMemo  = make(map[string]*xicl.Registry)
)

// memoKey keys on name plus the full source text, so a hypothetical
// same-name benchmark with different source can never collide.
type memoKey struct {
	name, src string
}

// Program assembles and verifies the benchmark's source.
func (b *Benchmark) Program() (*bytecode.Program, error) {
	key := memoKey{b.Name, b.Source}
	memoMu.Lock()
	p, ok := progMemo[key]
	memoMu.Unlock()
	if ok {
		return p, nil
	}
	p, err := bytecode.Assemble(b.Name, b.Source)
	if err != nil {
		return nil, err
	}
	memoMu.Lock()
	progMemo[key] = p
	memoMu.Unlock()
	return p, nil
}

// ParsedSpec parses the benchmark's XICL specification.
func (b *Benchmark) ParsedSpec() (*xicl.Spec, error) {
	key := memoKey{b.Name, b.Spec}
	memoMu.Lock()
	s, ok := specMemo[key]
	memoMu.Unlock()
	if ok {
		return s, nil
	}
	s, err := xicl.ParseSpec(b.Spec)
	if err != nil {
		return nil, err
	}
	memoMu.Lock()
	specMemo[key] = s
	memoMu.Unlock()
	return s, nil
}

// Registry returns a method registry with the benchmark's
// programmer-defined extractors installed. Memoized by benchmark name:
// RegisterMethods is fixed per constructor, and registries are read-only
// after construction.
func (b *Benchmark) Registry() (*xicl.Registry, error) {
	memoMu.Lock()
	reg, ok := regMemo[b.Name]
	memoMu.Unlock()
	if ok {
		return reg, nil
	}
	reg = xicl.NewRegistry()
	if b.RegisterMethods != nil {
		if err := b.RegisterMethods(reg); err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
	}
	memoMu.Lock()
	regMemo[b.Name] = reg
	memoMu.Unlock()
	return reg, nil
}

// All returns the full suite in Table I order.
func All() []*Benchmark {
	return []*Benchmark{
		Compress(),
		Db(),
		Mtrt(),
		Antlr(),
		Bloat(),
		Fop(),
		Euler(),
		MolDyn(),
		MonteCarlo(),
		Search(),
		RayTracer(),
	}
}

// Extensions returns the benchmarks outside the paper's Table I suite
// (currently the GC-selection server workload).
func Extensions() []*Benchmark {
	return []*Benchmark{Server()}
}

// ByName returns the named benchmark — from the Table I suite or the
// extensions — or nil.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	for _, b := range Extensions() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// setupGlobals returns a Setup function installing integer globals.
func setupGlobals(globals map[string]int64) func(e *interp.Engine) error {
	return func(e *interp.Engine) error {
		for name, v := range globals {
			if err := e.SetGlobal(name, bytecode.Int(v)); err != nil {
				return err
			}
		}
		return nil
	}
}

// appendArraySetup chains an additional array installation after a setup.
func appendArraySetup(base func(e *interp.Engine) error, arrName string, data []int64) func(e *interp.Engine) error {
	return func(e *interp.Engine) error {
		if err := base(e); err != nil {
			return err
		}
		ref, err := e.NewArray(int64(len(data)))
		if err != nil {
			return err
		}
		arr, err := e.Array(ref)
		if err != nil {
			return err
		}
		for i, v := range data {
			arr[i] = bytecode.Int(v)
		}
		return e.SetGlobal(arrName, ref)
	}
}

// setupGlobalsAndArray installs integer globals plus one data array.
func setupGlobalsAndArray(globals map[string]int64, arrName string, data []int64) func(e *interp.Engine) error {
	return func(e *interp.Engine) error {
		for name, v := range globals {
			if err := e.SetGlobal(name, bytecode.Int(v)); err != nil {
				return err
			}
		}
		ref, err := e.NewArray(int64(len(data)))
		if err != nil {
			return err
		}
		arr, err := e.Array(ref)
		if err != nil {
			return err
		}
		for i, v := range data {
			arr[i] = bytecode.Int(v)
		}
		return e.SetGlobal(arrName, ref)
	}
}
