// Package programs contains the benchmark suite of the reproduction: the
// eleven applications of the paper's Table I (Compress, Db, Mtrt from
// SPECjvm98; Antlr, Bloat, Fop from DaCapo; Euler, MolDyn, MonteCarlo,
// Search, RayTracer from Java Grande), rebuilt as programs for this VM.
//
// Each benchmark bundles:
//   - the program source in the VM's assembly;
//   - an XICL specification describing its command-line interface;
//   - programmer-defined feature extractors (the paper's XFMethod
//     instances, e.g. mRules for Antlr);
//   - an input model and a corpus generator producing the kind of input
//     variety the paper collected for its experiments.
//
// Inputs change which methods are hot and how much total work a run
// performs, so the ideal per-method optimization levels are a learnable
// function of the XICL features — the property the paper studies.
package programs

import (
	"fmt"
	"math/rand"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/interp"
	"evolvevm/internal/xicl"
)

// Input is one concrete program input: the command line the user would
// type, the files it references, and the parsed form the program reads
// (globals and arrays installed into the engine before the run, standing
// in for the application's own argument/file parsing).
type Input struct {
	// ID names the input for logs and tables.
	ID string
	// Args is the command line (without the program name).
	Args []string
	// Files holds the virtual input files referenced by Args.
	Files xicl.MapFS
	// Setup installs the parsed input into a fresh engine.
	Setup func(e *interp.Engine) error
}

// Benchmark is one application of the suite.
type Benchmark struct {
	// Name matches the paper's Table I.
	Name string
	// Suite is "jvm98", "dacapo", or "grande".
	Suite string
	// Source is the program in VM assembly.
	Source string
	// Spec is the XICL specification source.
	Spec string
	// RegisterMethods installs the benchmark's programmer-defined
	// feature-extraction methods (may be nil).
	RegisterMethods func(reg *xicl.Registry) error
	// GenInputs deterministically generates an input corpus of size n
	// from the rng. Sizes follow the paper: most benchmarks have dozens
	// of inputs, Search only a few.
	GenInputs func(rng *rand.Rand, n int) []Input
	// DefaultCorpusSize is the corpus size used by the experiments
	// (paper Table I, column "# Inputs").
	DefaultCorpusSize int
	// InputSensitive marks the benchmarks the paper found more
	// input-sensitive (Mtrt, Compress, Euler, MolDyn, RayTracer).
	InputSensitive bool
}

// Program assembles and verifies the benchmark's source.
func (b *Benchmark) Program() (*bytecode.Program, error) {
	return bytecode.Assemble(b.Name, b.Source)
}

// ParsedSpec parses the benchmark's XICL specification.
func (b *Benchmark) ParsedSpec() (*xicl.Spec, error) {
	return xicl.ParseSpec(b.Spec)
}

// Registry returns a method registry with the benchmark's
// programmer-defined extractors installed.
func (b *Benchmark) Registry() (*xicl.Registry, error) {
	reg := xicl.NewRegistry()
	if b.RegisterMethods != nil {
		if err := b.RegisterMethods(reg); err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
	}
	return reg, nil
}

// All returns the full suite in Table I order.
func All() []*Benchmark {
	return []*Benchmark{
		Compress(),
		Db(),
		Mtrt(),
		Antlr(),
		Bloat(),
		Fop(),
		Euler(),
		MolDyn(),
		MonteCarlo(),
		Search(),
		RayTracer(),
	}
}

// Extensions returns the benchmarks outside the paper's Table I suite
// (currently the GC-selection server workload).
func Extensions() []*Benchmark {
	return []*Benchmark{Server()}
}

// ByName returns the named benchmark — from the Table I suite or the
// extensions — or nil.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	for _, b := range Extensions() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// setupGlobals returns a Setup function installing integer globals.
func setupGlobals(globals map[string]int64) func(e *interp.Engine) error {
	return func(e *interp.Engine) error {
		for name, v := range globals {
			if err := e.SetGlobal(name, bytecode.Int(v)); err != nil {
				return err
			}
		}
		return nil
	}
}

// appendArraySetup chains an additional array installation after a setup.
func appendArraySetup(base func(e *interp.Engine) error, arrName string, data []int64) func(e *interp.Engine) error {
	return func(e *interp.Engine) error {
		if err := base(e); err != nil {
			return err
		}
		ref, err := e.NewArray(int64(len(data)))
		if err != nil {
			return err
		}
		arr, err := e.Array(ref)
		if err != nil {
			return err
		}
		for i, v := range data {
			arr[i] = bytecode.Int(v)
		}
		return e.SetGlobal(arrName, ref)
	}
}

// setupGlobalsAndArray installs integer globals plus one data array.
func setupGlobalsAndArray(globals map[string]int64, arrName string, data []int64) func(e *interp.Engine) error {
	return func(e *interp.Engine) error {
		for name, v := range globals {
			if err := e.SetGlobal(name, bytecode.Int(v)); err != nil {
				return err
			}
		}
		ref, err := e.NewArray(int64(len(data)))
		if err != nil {
			return err
		}
		arr, err := e.Array(ref)
		if err != nil {
			return err
		}
		for i, v := range data {
			arr[i] = bytecode.Int(v)
		}
		return e.SetGlobal(arrName, ref)
	}
}
