package programs

import (
	"fmt"
	"math/rand"
)

// MonteCarlo models Java Grande's montecarlo: financial Monte-Carlo
// simulation. Each path runs a fixed number of LCG-driven random-walk
// steps; a statistics pass reduces the stored path values. The number of
// paths (-n) is the single input value that drives the simulation
// kernel's heat.
const montecarloSource = `
global npaths
global nsteps
global seed0
global values
global result

func main() locals p acc
  const 0
  store acc
  const 0
  store p
paths:
  load p
  gload npaths
  ige
  jnz reduce
  load p
  call onepath 1
  pop
  iinc p 1
  jmp paths
reduce:
  call statsphase 0
  gstore result
  gload result
  ret
end

; onepath simulates one random walk and stores its end value.
func onepath(p) locals s v seed
  gload seed0
  load p
  const 2654435761
  imul
  iadd
  store seed
  const 1000000
  store v
  const 0
  store s
steps:
  load s
  gload nsteps
  ige
  jnz done
  load seed
  const 1103515245
  imul
  const 12345
  iadd
  const 2147483647
  iand
  store seed
  load seed
  const 1024
  imod
  const 512
  isub
  load v
  iadd
  store v
  load v
  const 0
  igt
  jnz okpos
  const 1
  store v
okpos:
  iinc s 1
  jmp steps
done:
  gload values
  load p
  load v
  astore
  load v
  ret
end

func statsphase() locals off end acc
  const 0
  store acc
  const 0
  store off
blocks:
  load off
  gload npaths
  ige
  jnz done
  load off
  const 128
  iadd
  store end
  load end
  gload npaths
  ile
  jnz clamped
  gload npaths
  store end
clamped:
  load acc
  load off
  load end
  call statsblk 2
  iadd
  store acc
  load end
  store off
  jmp blocks
done:
  load acc
  ret
end

func statsblk(lo, hi) locals i acc v
  const 0
  store acc
  load lo
  store i
loop:
  load i
  load hi
  ige
  jnz done
  gload values
  load i
  aload
  store v
  load acc
  load v
  const 1000000
  isub
  dup
  imul
  const 100003
  imod
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
`

const montecarloSpec = `
# Java Grande-style montecarlo: montecarlo [-n PATHS] [-s SEED]
option  {name=-n:--paths; type=num; attr=VAL; default=500; has_arg=y}
option  {name=-s:--seed; type=num; attr=VAL; default=1; has_arg=y}
`

// MonteCarlo returns the montecarlo benchmark.
func MonteCarlo() *Benchmark {
	return &Benchmark{
		Name:              "montecarlo",
		Suite:             "grande",
		Source:            montecarloSource,
		Spec:              montecarloSpec,
		DefaultCorpusSize: 24,
		GenInputs:         genMonteCarloInputs,
	}
}

func genMonteCarloInputs(rng *rand.Rand, n int) []Input {
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		paths := 150 + rng.Intn(1200)
		seed := 1 + rng.Intn(10000)
		setup := setupGlobalsAndArray(map[string]int64{
			"npaths": int64(paths),
			"nsteps": 48,
			"seed0":  int64(seed),
		}, "values", make([]int64, paths))
		inputs = append(inputs, Input{
			ID:    fmt.Sprintf("montecarlo-%03d-p%d", i, paths),
			Args:  []string{"-n", fmt.Sprint(paths), "-s", fmt.Sprint(seed)},
			Setup: setup,
		})
	}
	return inputs
}
