package programs

import (
	"fmt"
	"math/rand"
	"strings"
)

// Fop models DaCapo's fop: an XSL-FO formatter. It parses the document,
// lays out each paragraph (line breaking with a quadratic-ish optimal-fit
// pass), and renders pages in the selected output format. The document's
// line count (predefined LINES feature) scales parsing and layout; the -f
// format decides whether the PDF or the text renderer is hot.
const fopSource = `
global npara
global plen
global npages
global fmtpdf
global result

func main() locals acc
  call parsephase 0
  call layoutphase 0
  iadd
  store acc
  gload fmtpdf
  jz astext
  load acc
  call pdfphase 0
  iadd
  store acc
  jmp render_done
astext:
  load acc
  call textphase 0
  iadd
  store acc
render_done:
  load acc
  gstore result
  gload result
  ret
end

; --- parse: one paragraph per invocation ---
func parsephase() locals p acc
  const 0
  store acc
  const 0
  store p
loop:
  load p
  gload npara
  ige
  jnz done
  load acc
  load p
  call parsepara 1
  iadd
  store acc
  iinc p 1
  jmp loop
done:
  load acc
  ret
end

func parsepara(p) locals len i acc
  gload plen
  load p
  aload
  store len
  const 0
  store acc
  const 0
  store i
loop:
  load i
  load len
  ige
  jnz done
  load acc
  load i
  load p
  imul
  const 127
  iand
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end

; --- layout: optimal line breaking, ~ len * avgline work ---
func layoutphase() locals p acc
  const 0
  store acc
  const 0
  store p
loop:
  load p
  gload npara
  ige
  jnz done
  load acc
  load p
  call layoutpara 1
  iadd
  store acc
  iinc p 1
  jmp loop
done:
  load acc
  ret
end

func layoutpara(p) locals len i j acc best
  gload plen
  load p
  aload
  store len
  const 0
  store acc
  const 0
  store i
outer:
  load i
  load len
  ige
  jnz done
  const 1000000
  store best
  const 0
  store j
inner:
  load j
  const 12
  ige
  jnz place
  load i
  load j
  iadd
  load p
  ixor
  const 255
  iand
  store best
  iinc j 1
  jmp inner
place:
  load acc
  load best
  iadd
  store acc
  iinc i 1
  jmp outer
done:
  load acc
  ret
end

; --- renderers: one page per invocation ---
func pdfphase() locals pg acc
  const 0
  store acc
  const 0
  store pg
loop:
  load pg
  gload npages
  ige
  jnz done
  load acc
  load pg
  call renderpdf 1
  iadd
  store acc
  iinc pg 1
  jmp loop
done:
  load acc
  ret
end

func renderpdf(pg) locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  const 900
  ige
  jnz done
  load acc
  load i
  load pg
  imul
  const 97
  imod
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end

func textphase() locals pg acc
  const 0
  store acc
  const 0
  store pg
loop:
  load pg
  gload npages
  ige
  jnz done
  load acc
  load pg
  call rendertext 1
  iadd
  store acc
  iinc pg 1
  jmp loop
done:
  load acc
  ret
end

func rendertext(pg) locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  const 240
  ige
  jnz done
  load acc
  load i
  load pg
  iadd
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
`

const fopSpec = `
# DaCapo-style fop: fop [-f pdf|txt] [-c] DOCUMENT
option  {name=-f:--format; type=enum; attr=VAL; default=pdf; has_arg=y}
option  {name=-c:--compress-output; type=bin; attr=VAL; default=0; has_arg=n}
operand {position=1; type=file; attr=LINES:SIZE}
`

// Fop returns the fop benchmark.
func Fop() *Benchmark {
	return &Benchmark{
		Name:              "fop",
		Suite:             "dacapo",
		Source:            fopSource,
		Spec:              fopSpec,
		DefaultCorpusSize: 24,
		GenInputs:         genFopInputs,
	}
}

func genFopInputs(rng *rand.Rand, n int) []Input {
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		npara := 40 + rng.Intn(400)
		pdf := rng.Intn(2) == 0

		plen := make([]int64, npara)
		var doc strings.Builder
		doc.WriteString("<fo:root>\n")
		for p := 0; p < npara; p++ {
			l := 8 + rng.Intn(40)
			plen[p] = int64(l)
			doc.WriteString("<fo:block>")
			for k := 0; k < l; k++ {
				fmt.Fprintf(&doc, "w%d ", rng.Intn(100))
			}
			doc.WriteString("</fo:block>\n")
		}
		doc.WriteString("</fo:root>\n")

		npages := 1 + npara/25
		path := fmt.Sprintf("doc%03d.fo", i)
		format := "txt"
		fmtpdf := int64(0)
		if pdf {
			format, fmtpdf = "pdf", 1
		}
		args := []string{"-f", format, path}
		setup := setupGlobalsAndArray(map[string]int64{
			"npara":  int64(npara),
			"npages": int64(npages),
			"fmtpdf": fmtpdf,
		}, "plen", plen)

		inputs = append(inputs, Input{
			ID:    fmt.Sprintf("fop-%03d-p%d-%s", i, npara, format),
			Args:  args,
			Files: map[string][]byte{path: []byte(doc.String())},
			Setup: setup,
		})
	}
	return inputs
}
