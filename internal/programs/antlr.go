package programs

import (
	"fmt"
	"math/rand"
	"strings"

	"evolvevm/internal/xicl"
)

// Antlr models DaCapo's antlr: a parser generator. It lexes the grammar
// file, parses each rule, builds an NFA per rule (quadratic in rule
// length), and emits code in the selected target language. The output
// format decides which emitter is hot; the number of rules (the paper's
// user-defined feature) decides how hot. Rule lengths are stored in the
// rulelen array; the grammar text itself drives the lexer phase.
const antlrSource = `
global nrules
global rulelen
global textlen
global gtext
global lang
global result

func main() locals acc
  call lexphase 0
  call parsephase 0
  iadd
  call nfaphase 0
  iadd
  call emitphase 0
  iadd
  gstore result
  gload result
  ret
end

; --- lexer: scan the grammar text in blocks ---
func lexphase() locals off end acc
  const 0
  store acc
  const 0
  store off
blocks:
  load off
  gload textlen
  ige
  jnz done
  load off
  const 512
  iadd
  store end
  load end
  gload textlen
  ile
  jnz clamped
  gload textlen
  store end
clamped:
  load acc
  load off
  load end
  call lexblock 2
  iadd
  store acc
  load end
  store off
  jmp blocks
done:
  load acc
  ret
end

func lexblock(lo, hi) locals i tokens c state
  const 0
  store tokens
  const 0
  store state
  load lo
  store i
loop:
  load i
  load hi
  ige
  jnz done
  gload gtext
  load i
  aload
  store c
  load c
  const 32
  ieq
  jnz space
  load state
  jnz intok
  iinc tokens 1
  const 1
  store state
  jmp next
space:
  const 0
  store state
  jmp next
intok:
next:
  iinc i 1
  jmp loop
done:
  load tokens
  ret
end

; --- parser: one rule per parserule invocation ---
func parsephase() locals r acc
  const 0
  store acc
  const 0
  store r
loop:
  load r
  gload nrules
  ige
  jnz done
  load acc
  load r
  call parserule 1
  iadd
  store acc
  iinc r 1
  jmp loop
done:
  load acc
  ret
end

func parserule(r) locals len i acc
  gload rulelen
  load r
  aload
  store len
  const 0
  store acc
  const 0
  store i
loop:
  load i
  load len
  ige
  jnz done
  load acc
  load i
  load r
  imul
  const 31
  imod
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end

; --- NFA construction: quadratic in rule length ---
func nfaphase() locals r acc
  const 0
  store acc
  const 0
  store r
loop:
  load r
  gload nrules
  ige
  jnz done
  load acc
  load r
  call buildnfa 1
  iadd
  store acc
  iinc r 1
  jmp loop
done:
  load acc
  ret
end

func buildnfa(r) locals len i j acc
  gload rulelen
  load r
  aload
  store len
  const 0
  store acc
  const 0
  store i
outer:
  load i
  load len
  ige
  jnz done
  const 0
  store j
inner:
  load j
  load len
  ige
  jnz nexti
  load acc
  load i
  load j
  ixor
  iadd
  const 65535
  iand
  store acc
  iinc j 1
  jmp inner
nexti:
  iinc i 1
  jmp outer
done:
  load acc
  ret
end

; --- emitters: one rule per invocation, language-specific ---
func emitphase() locals r acc
  const 0
  store acc
  const 0
  store r
loop:
  load r
  gload nrules
  ige
  jnz done
  gload lang
  jz astext
  load acc
  load r
  call emitjava 1
  iadd
  store acc
  jmp next
astext:
  load acc
  load r
  call emittext 1
  iadd
  store acc
next:
  iinc r 1
  jmp loop
done:
  load acc
  ret
end

func emitjava(r) locals len i acc
  gload rulelen
  load r
  aload
  store len
  const 0
  store acc
  const 0
  store i
loop:
  load i
  load len
  const 3
  imul
  ige
  jnz done
  load acc
  load i
  const 17
  imul
  load r
  iadd
  const 8191
  iand
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end

func emittext(r) locals len i acc
  gload rulelen
  load r
  aload
  store len
  const 0
  store acc
  const 0
  store i
loop:
  load i
  load len
  ige
  jnz done
  load acc
  load i
  load r
  iadd
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
`

const antlrSpec = `
# DaCapo-style antlr: antlr [-lang java|text] [-trace] [-diag] GRAMMAR
option  {name=-lang:--language; type=enum; attr=VAL; default=text; has_arg=y}
option  {name=-trace; type=bin; attr=VAL; default=0; has_arg=n}
option  {name=-diag; type=bin; attr=VAL; default=0; has_arg=n}
operand {position=1; type=file; attr=mRules:SIZE}
`

// Antlr returns the antlr benchmark.
func Antlr() *Benchmark {
	return &Benchmark{
		Name:              "antlr",
		Suite:             "dacapo",
		Source:            antlrSource,
		Spec:              antlrSpec,
		DefaultCorpusSize: 30,
		RegisterMethods: func(reg *xicl.Registry) error {
			// mRules: count "ruleN:" definitions in the grammar.
			return reg.Register("mRules", xicl.XFMethodFunc(
				func(raw string, _ xicl.ValueType, env *xicl.Env) (xicl.Feature, error) {
					if raw == "" {
						return xicl.NumFeature("", 0), nil
					}
					b, err := env.FS.ReadFile(raw)
					if err != nil {
						return xicl.Feature{}, err
					}
					env.Charge(40 + int64(len(b))/8)
					return xicl.NumFeature("", float64(strings.Count(string(b), "\nrule"))), nil
				}))
		},
		GenInputs: genAntlrInputs,
	}
}

func genAntlrInputs(rng *rand.Rand, n int) []Input {
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		nrules := 15 + rng.Intn(120)
		java := rng.Intn(2) == 0

		rulelen := make([]int64, nrules)
		var grammar strings.Builder
		grammar.WriteString("grammar G;\n")
		var text []int64
		for r := 0; r < nrules; r++ {
			l := 4 + rng.Intn(24)
			rulelen[r] = int64(l)
			fmt.Fprintf(&grammar, "\nrule%d:", r)
			for k := 0; k < l; k++ {
				fmt.Fprintf(&grammar, " tok%d", rng.Intn(40))
			}
			grammar.WriteString(" ;\n")
		}
		for _, c := range grammar.String() {
			text = append(text, int64(c))
		}

		path := fmt.Sprintf("g%03d.g", i)
		lang := "text"
		langG := int64(0)
		if java {
			lang, langG = "java", 1
		}
		args := []string{"-lang", lang, path}

		setup := setupGlobalsAndArray(map[string]int64{
			"nrules":  int64(nrules),
			"textlen": int64(len(text)),
			"lang":    langG,
		}, "rulelen", rulelen)
		setup = appendArraySetup(setup, "gtext", text)

		inputs = append(inputs, Input{
			ID:    fmt.Sprintf("antlr-%03d-r%d-%s", i, nrules, lang),
			Args:  args,
			Files: map[string][]byte{path: []byte(grammar.String())},
			Setup: setup,
		})
	}
	return inputs
}
