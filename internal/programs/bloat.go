package programs

import (
	"fmt"
	"math/rand"
	"strings"

	"evolvevm/internal/xicl"
)

// Bloat models DaCapo's bloat: a bytecode optimizer. The input "class
// file" is a list of method bodies; bloat parses it, analyzes each
// method's control flow, and runs the passes selected by -p
// (inline, dce, or all). Lines of code — the paper's user-defined mLoC
// feature — drives every phase; the pass selection decides which
// optimizer methods are hot at all.
const bloatSource = `
global nmeth
global mlen
global total
global code
global doinline
global dodce
global result

func main() locals acc
  call parsephase 0
  call cfgphase 0
  iadd
  store acc
  gload doinline
  jz noinline
  load acc
  call inlinephase 0
  iadd
  store acc
noinline:
  gload dodce
  jz nodce
  load acc
  call dcephase 0
  iadd
  store acc
nodce:
  load acc
  call emitphase 0
  iadd
  gstore result
  gload result
  ret
end

func parsephase() locals off end acc
  const 0
  store acc
  const 0
  store off
blocks:
  load off
  gload total
  ige
  jnz done
  load off
  const 512
  iadd
  store end
  load end
  gload total
  ile
  jnz clamped
  gload total
  store end
clamped:
  load acc
  load off
  load end
  call parseblock 2
  iadd
  store acc
  load end
  store off
  jmp blocks
done:
  load acc
  ret
end

func parseblock(lo, hi) locals i acc op
  const 0
  store acc
  load lo
  store i
loop:
  load i
  load hi
  ige
  jnz done
  gload code
  load i
  aload
  store op
  load acc
  load op
  const 13
  imul
  load i
  ixor
  const 16383
  iand
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end

; --- per-method control-flow analysis ---
func cfgphase() locals m acc
  const 0
  store acc
  const 0
  store m
loop:
  load m
  gload nmeth
  ige
  jnz done
  load acc
  load m
  call analyzefn 1
  iadd
  store acc
  iinc m 1
  jmp loop
done:
  load acc
  ret
end

func analyzefn(m) locals len i acc edge
  gload mlen
  load m
  aload
  store len
  const 0
  store acc
  const 0
  store i
loop:
  load i
  load len
  ige
  jnz done
  load i
  load m
  imul
  const 7
  imod
  store edge
  load acc
  load edge
  load edge
  imul
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end

; --- inlining pass: scans call sites per method, cost ~ 2x length ---
func inlinephase() locals m acc
  const 0
  store acc
  const 0
  store m
loop:
  load m
  gload nmeth
  ige
  jnz done
  load acc
  load m
  call inlinefn 1
  iadd
  store acc
  iinc m 1
  jmp loop
done:
  load acc
  ret
end

func inlinefn(m) locals len i acc
  gload mlen
  load m
  aload
  const 2
  imul
  store len
  const 0
  store acc
  const 0
  store i
loop:
  load i
  load len
  ige
  jnz done
  load acc
  load i
  const 5
  imul
  load m
  iadd
  const 4095
  iand
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end

; --- dead-code elimination: fixed-point worklist, cost ~ 3x length ---
func dcephase() locals m acc
  const 0
  store acc
  const 0
  store m
loop:
  load m
  gload nmeth
  ige
  jnz done
  load acc
  load m
  call dcefn 1
  iadd
  store acc
  iinc m 1
  jmp loop
done:
  load acc
  ret
end

func dcefn(m) locals len i acc
  gload mlen
  load m
  aload
  const 3
  imul
  store len
  const 0
  store acc
  const 0
  store i
loop:
  load i
  load len
  ige
  jnz done
  load acc
  load i
  load m
  ixor
  const 2047
  iand
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end

func emitphase() locals m acc
  const 0
  store acc
  const 0
  store m
loop:
  load m
  gload nmeth
  ige
  jnz done
  load acc
  gload mlen
  load m
  aload
  iadd
  store acc
  iinc m 1
  jmp loop
done:
  load acc
  ret
end
`

const bloatSpec = `
# DaCapo-style bloat: bloat [-p inline|dce|all] [-v] CLASSFILE
option  {name=-p:--passes; type=enum; attr=VAL; default=all; has_arg=y}
option  {name=-v:--verbose; type=bin; attr=VAL; default=0; has_arg=n}
operand {position=1; type=file; attr=mLoC:SIZE}
`

// Bloat returns the bloat benchmark.
func Bloat() *Benchmark {
	return &Benchmark{
		Name:              "bloat",
		Suite:             "dacapo",
		Source:            bloatSource,
		Spec:              bloatSpec,
		DefaultCorpusSize: 30,
		RegisterMethods: func(reg *xicl.Registry) error {
			// mLoC: non-blank, non-comment lines of the class listing.
			return reg.Register("mLoC", xicl.XFMethodFunc(
				func(raw string, _ xicl.ValueType, env *xicl.Env) (xicl.Feature, error) {
					if raw == "" {
						return xicl.NumFeature("", 0), nil
					}
					b, err := env.FS.ReadFile(raw)
					if err != nil {
						return xicl.Feature{}, err
					}
					env.Charge(40 + int64(len(b))/8)
					loc := 0
					for _, line := range strings.Split(string(b), "\n") {
						line = strings.TrimSpace(line)
						if line != "" && !strings.HasPrefix(line, "//") {
							loc++
						}
					}
					return xicl.NumFeature("", float64(loc)), nil
				}))
		},
		GenInputs: genBloatInputs,
	}
}

func genBloatInputs(rng *rand.Rand, n int) []Input {
	passes := []string{"inline", "dce", "all"}
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		nmeth := 20 + rng.Intn(140)
		pass := passes[rng.Intn(len(passes))]

		mlen := make([]int64, nmeth)
		var listing strings.Builder
		var code []int64
		total := int64(0)
		for m := 0; m < nmeth; m++ {
			l := 10 + rng.Intn(60)
			mlen[m] = int64(l)
			total += int64(l)
			fmt.Fprintf(&listing, "method m%d {\n", m)
			for k := 0; k < l; k++ {
				op := rng.Intn(200)
				code = append(code, int64(op))
				fmt.Fprintf(&listing, "  op_%d\n", op)
			}
			listing.WriteString("}\n")
		}

		path := fmt.Sprintf("cls%03d.lst", i)
		args := []string{"-p", pass, path}
		doinline, dodce := int64(0), int64(0)
		if pass == "inline" || pass == "all" {
			doinline = 1
		}
		if pass == "dce" || pass == "all" {
			dodce = 1
		}
		setup := setupGlobalsAndArray(map[string]int64{
			"nmeth":    int64(nmeth),
			"total":    total,
			"doinline": doinline,
			"dodce":    dodce,
		}, "mlen", mlen)
		setup = appendArraySetup(setup, "code", code)

		inputs = append(inputs, Input{
			ID:    fmt.Sprintf("bloat-%03d-m%d-%s", i, nmeth, pass),
			Args:  args,
			Files: map[string][]byte{path: []byte(listing.String())},
			Setup: setup,
		})
	}
	return inputs
}
