package programs

import (
	"fmt"
	"math/rand"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/interp"
)

// RayTracer models Java Grande's raytracer. Unlike the fixed-point Mtrt,
// this kernel uses the VM's float arithmetic (fsqrt-heavy sphere
// intersection and Lambert shading). The image size (-n, rendering an
// n×n image) is the single input value; object count grows mildly with n
// as in the Grande benchmark.
const raytracerSource = `
global n
global nobj
global ox
global oy
global orad
global result

func main() locals y acc
  const 0
  store acc
  const 0
  store y
rows:
  load y
  gload n
  ige
  jnz done
  load acc
  load y
  call renderrow 1
  iadd
  store acc
  iinc y 1
  jmp rows
done:
  load acc
  gstore result
  gload result
  ret
end

func renderrow(y) locals x acc
  const 0
  store acc
  const 0
  store x
cols:
  load x
  gload n
  ige
  jnz done
  load acc
  load x
  i2f
  load y
  i2f
  call shootray 2
  iadd
  store acc
  iinc x 1
  jmp cols
done:
  load acc
  ret
end

; shootray finds the nearest object along the ray and shades the hit.
func shootray(fx, fy) locals i best bestd dx dy dd r
  const -1
  store best
  fconst 1e18
  store bestd
  const 0
  store i
loop:
  load i
  gload nobj
  ige
  jnz done
  gload ox
  load i
  aload
  load fx
  fsub
  store dx
  gload oy
  load i
  aload
  load fy
  fsub
  store dy
  load dx
  load dx
  fmul
  load dy
  load dy
  fmul
  fadd
  fsqrt
  store dd
  gload orad
  load i
  aload
  store r
  load dd
  load r
  fge
  jnz next
  load dd
  load bestd
  fge
  jnz next
  load i
  store best
  load dd
  store bestd
next:
  iinc i 1
  jmp loop
done:
  load best
  const 0
  ilt
  jnz sky
  load best
  load bestd
  call shade 2
  ret
sky:
  load fx
  f2i
  load fy
  f2i
  ixor
  const 63
  iand
  ret
end

; shade computes a Lambert-ish intensity from the hit distance.
func shade(idx, dist) locals r c
  gload orad
  load idx
  aload
  store r
  load r
  load dist
  fsub
  load r
  fdiv
  fconst 255
  fmul
  store c
  load c
  f2i
  const 255
  iand
  const 1
  iadd
  ret
end
`

const raytracerSpec = `
# Java Grande-style raytracer: raytracer [-n SIZE] [-v]
option  {name=-n:--size; type=num; attr=VAL; default=24; has_arg=y}
option  {name=-v:--validate; type=bin; attr=VAL; default=0; has_arg=n}
`

// RayTracer returns the raytracer benchmark.
func RayTracer() *Benchmark {
	return &Benchmark{
		Name:              "raytracer",
		Suite:             "grande",
		Source:            raytracerSource,
		Spec:              raytracerSpec,
		DefaultCorpusSize: 30,
		InputSensitive:    true,
		GenInputs:         genRayTracerInputs,
	}
}

func genRayTracerInputs(rng *rand.Rand, n int) []Input {
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		// Bimodal: thumbnail renders and full-size frames.
		var size int
		if rng.Intn(5) < 2 {
			size = 8 + rng.Intn(10)
		} else {
			size = 28 + rng.Intn(44)
		}
		nobj := 4 + size/6
		ox := make([]float64, nobj)
		oy := make([]float64, nobj)
		orad := make([]float64, nobj)
		for j := 0; j < nobj; j++ {
			ox[j] = rng.Float64() * float64(size)
			oy[j] = rng.Float64() * float64(size)
			orad[j] = 2 + rng.Float64()*6
		}
		sz, no := int64(size), int64(nobj)
		xs, ys, rs := ox, oy, orad
		inputs = append(inputs, Input{
			ID:   fmt.Sprintf("raytracer-%03d-n%d", i, size),
			Args: []string{"-n", fmt.Sprint(size)},
			Setup: func(e *interp.Engine) error {
				if err := e.SetGlobal("n", bytecode.Int(sz)); err != nil {
					return err
				}
				if err := e.SetGlobal("nobj", bytecode.Int(no)); err != nil {
					return err
				}
				for _, arr := range []struct {
					name string
					vals []float64
				}{{"ox", xs}, {"oy", ys}, {"orad", rs}} {
					ref, err := e.NewArray(int64(len(arr.vals)))
					if err != nil {
						return err
					}
					cells, err := e.Array(ref)
					if err != nil {
						return err
					}
					for k, v := range arr.vals {
						cells[k] = bytecode.Float(v)
					}
					if err := e.SetGlobal(arr.name, ref); err != nil {
						return err
					}
				}
				return nil
			},
		})
	}
	return inputs
}
