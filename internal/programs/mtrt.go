package programs

import (
	"fmt"
	"math/rand"
	"strings"

	"evolvevm/internal/xicl"
)

// Mtrt models SPECjvm98 _227_mtrt: a ray tracer. The image dimensions
// (-w/-h), reflection depth (-d) and the scene file (number of spheres)
// jointly determine how hot tracing and intersection are — the paper's
// most input-sensitive benchmark. Geometry is 16.16-ish fixed point
// (plain int64 scaled by 1024). Per Table I the benchmark exposes 7 raw
// features of which 3 carry signal.
const mtrtSource = `
global width
global height
global depth
global nsph
global sphx
global sphy
global sphr
global result

func main() locals y acc
  const 0
  store acc
  const 0
  store y
rows:
  load y
  gload height
  ige
  jnz done
  load acc
  load y
  call renderrow 1
  iadd
  store acc
  iinc y 1
  jmp rows
done:
  load acc
  gstore result
  gload result
  ret
end

func renderrow(y) locals x acc
  const 0
  store acc
  const 0
  store x
cols:
  load x
  gload width
  ige
  jnz done
  load acc
  load x
  const 1024
  imul
  load y
  const 1024
  imul
  gload depth
  call trace 3
  iadd
  store acc
  iinc x 1
  jmp cols
done:
  load acc
  ret
end

; trace returns a shade value for the ray through (px, py); on a hit with
; remaining depth it recurses with a reflected ray.
func trace(px, py, d) locals hit shade
  load px
  load py
  call intersectall 2
  store hit
  load hit
  const 0
  ilt
  jnz background
  load hit
  load px
  load py
  call shadehit 3
  store shade
  load d
  const 1
  ilt
  jnz noreflect
  load shade
  load px
  gload sphr
  load hit
  aload
  iadd
  load py
  gload sphr
  load hit
  aload
  isub
  load d
  const 1
  isub
  call trace 3
  const 2
  idiv
  iadd
  store shade
noreflect:
  load shade
  ret
background:
  load px
  load py
  ixor
  const 255
  iand
  ret
end

; intersectall scans every sphere; returns the index of the closest hit
; or -1. A "hit" is |p - c|^2 < r^2 in scaled coordinates.
func intersectall(px, py) locals i best bestd dx dy dd
  const -1
  store best
  const 0
  store bestd
  const 0
  store i
loop:
  load i
  gload nsph
  ige
  jnz done
  gload sphx
  load i
  aload
  load px
  isub
  const 1024
  idiv
  store dx
  gload sphy
  load i
  aload
  load py
  isub
  const 1024
  idiv
  store dy
  load dx
  load dx
  imul
  load dy
  load dy
  imul
  iadd
  store dd
  load dd
  gload sphr
  load i
  aload
  const 1024
  idiv
  dup
  imul
  ige
  jnz next
  load best
  const 0
  ige
  jnz keepifcloser
  load i
  store best
  load dd
  store bestd
  jmp next
keepifcloser:
  load dd
  load bestd
  ige
  jnz next
  load i
  store best
  load dd
  store bestd
next:
  iinc i 1
  jmp loop
done:
  load best
  ret
end

func shadehit(idx, px, py) locals v
  gload sphx
  load idx
  aload
  load px
  isub
  const 3
  ishr
  gload sphy
  load idx
  aload
  load py
  isub
  const 3
  ishr
  ixor
  store v
  load v
  const 0
  ige
  jnz pos
  load v
  ineg
  store v
pos:
  load v
  const 255
  iand
  ret
end
`

const mtrtSpec = `
# SPECjvm98-style mtrt: mtrt [-w W] [-h H] [-d DEPTH] [-a] [-q] SCENE
option  {name=-w:--width; type=num; attr=VAL; default=32; has_arg=y}
option  {name=-h:--height; type=num; attr=VAL; default=32; has_arg=y}
option  {name=-d:--depth; type=num; attr=VAL; default=1; has_arg=y}
option  {name=-a:--antialias; type=bin; attr=VAL; default=0; has_arg=n}
option  {name=-q:--quiet; type=bin; attr=VAL; default=0; has_arg=n}
operand {position=1; type=file; attr=mSpheres:SIZE}
`

// Mtrt returns the mtrt benchmark.
func Mtrt() *Benchmark {
	return &Benchmark{
		Name:              "mtrt",
		Suite:             "jvm98",
		Source:            mtrtSource,
		Spec:              mtrtSpec,
		DefaultCorpusSize: 40,
		InputSensitive:    true,
		RegisterMethods: func(reg *xicl.Registry) error {
			// mSpheres: the scene header's object count.
			return reg.Register("mSpheres", headerCountMethod())
		},
		GenInputs: genMtrtInputs,
	}
}

func genMtrtInputs(rng *rand.Rand, n int) []Input {
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		// Bimodal corpus: quick preview renders and full-size scenes,
		// the way the application is used in practice. The ideal levels
		// of the tracing kernels differ sharply between the modes.
		var w, h, depth, nsph int
		if rng.Intn(5) < 2 {
			w, h = 8+rng.Intn(14), 8+rng.Intn(14)
			depth = rng.Intn(2)
			nsph = 2 + rng.Intn(6)
		} else {
			w, h = 32+rng.Intn(64), 32+rng.Intn(64)
			depth = 1 + rng.Intn(3)
			nsph = 8 + rng.Intn(18)
		}

		sphx := make([]int64, nsph)
		sphy := make([]int64, nsph)
		sphr := make([]int64, nsph)
		var scene strings.Builder
		fmt.Fprintf(&scene, "%d\n", nsph)
		for j := 0; j < nsph; j++ {
			sphx[j] = int64(rng.Intn(w)) * 1024
			sphy[j] = int64(rng.Intn(h)) * 1024
			sphr[j] = int64(2+rng.Intn(8)) * 1024
			fmt.Fprintf(&scene, "%d %d %d\n", sphx[j], sphy[j], sphr[j])
		}
		path := fmt.Sprintf("scene%03d.txt", i)
		args := []string{
			"-w", fmt.Sprint(w),
			"-h", fmt.Sprint(h),
			"-d", fmt.Sprint(depth),
			path,
		}
		setup := setupGlobalsAndArray(map[string]int64{
			"width":  int64(w),
			"height": int64(h),
			"depth":  int64(depth),
			"nsph":   int64(nsph),
		}, "sphx", sphx)
		setup = appendArraySetup(setup, "sphy", sphy)
		setup = appendArraySetup(setup, "sphr", sphr)

		inputs = append(inputs, Input{
			ID:    fmt.Sprintf("mtrt-%03d-%dx%d-d%d-s%d", i, w, h, depth, nsph),
			Args:  args,
			Files: map[string][]byte{path: []byte(scene.String())},
			Setup: setup,
		})
	}
	return inputs
}
