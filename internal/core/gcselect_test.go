package core

import (
	"testing"

	"evolvevm/internal/gc"
	"evolvevm/internal/xicl"
)

func gcFeatures(keepmod float64) xicl.Vector {
	return xicl.Vector{xicl.NumFeature("-k.VAL", keepmod)}
}

// statsFor fabricates run observables: low keepmod = high retention.
func statsFor(keepmod float64) gc.Stats {
	var c gc.Collection
	if keepmod < 10 {
		c = gc.Collection{LiveCells: 5000, TotalCells: 6000, FreedCells: 1000}
	} else {
		c = gc.Collection{LiveCells: 200, TotalCells: 6000, FreedCells: 5800}
	}
	return gc.Stats{Collections: []gc.Collection{c, c, c}, Allocs: 300}
}

func TestGCSelectorLearnsPolicy(t *testing.T) {
	s := NewGCSelector(DefaultConfig())
	if _, ok := s.Choose(gcFeatures(1)); ok {
		t.Fatal("fresh selector predicted")
	}

	keepmods := []float64{1, 50, 2, 40, 1, 60, 2, 30}
	for _, k := range keepmods {
		s.Observe(gcFeatures(k), statsFor(k))
	}
	if s.Runs() != len(keepmods) {
		t.Errorf("Runs = %d, want %d", s.Runs(), len(keepmods))
	}
	if s.Confidence() <= 0.7 {
		t.Fatalf("confidence %.3f did not rise on a learnable relation", s.Confidence())
	}

	if p, ok := s.Choose(gcFeatures(1.5)); !ok || p != gc.MarkSweep {
		t.Errorf("high retention choice = %v,%v want marksweep", p, ok)
	}
	if p, ok := s.Choose(gcFeatures(45)); !ok || p != gc.Copying {
		t.Errorf("low retention choice = %v,%v want copying", p, ok)
	}
}

func TestGCSelectorIgnoresCollectionFreeRuns(t *testing.T) {
	s := NewGCSelector(DefaultConfig())
	ideal := s.Observe(gcFeatures(5), gc.Stats{}) // never collected
	if ideal != gc.None {
		t.Errorf("ideal for collection-free run = %v, want none", ideal)
	}
	if s.Confidence() != 0 {
		t.Error("confidence moved on a collection-free run")
	}
	if _, ok := s.Predict(gcFeatures(5)); ok {
		t.Error("model trained on a collection-free run")
	}
}

func TestGCSelectorConfidenceDropsOnMisprediction(t *testing.T) {
	s := NewGCSelector(DefaultConfig())
	// Teach one mapping, then invert the world: accuracy collapses and
	// the guard must close again.
	for i := 0; i < 5; i++ {
		s.Observe(gcFeatures(1), statsFor(1))
	}
	if s.Confidence() <= 0.7 {
		t.Fatal("setup failed to build confidence")
	}
	for i := 0; i < 3; i++ {
		s.Observe(gcFeatures(1), statsFor(50)) // same features, flipped behaviour
	}
	if s.Confidence() > 0.7 {
		t.Errorf("confidence %.3f did not drop after consistent mispredictions", s.Confidence())
	}
	if _, ok := s.Choose(gcFeatures(1)); ok {
		t.Error("guard still open after mispredictions")
	}
}
