package core

import (
	"evolvevm/internal/aos"
	"evolvevm/internal/vm"
	"evolvevm/internal/xicl"
)

// Controller drives one run of the evolvable VM. If the learner's
// confidence passes the discriminative guard, the controller installs the
// predicted per-method levels proactively — each method is recompiled to
// its predicted level right after its first (baseline) invocation, per the
// paper §V-B: first-time compilation always happens at level −1 to avoid
// too-early optimization. Otherwise the controller behaves exactly like
// the default reactive optimizer. In both cases the run ends by feeding
// the profile back to the learner.
type Controller struct {
	ev       *Evolver
	reactive *aos.Reactive

	features       xicl.Vector
	extractionCost int64

	machine   *vm.Machine
	predicted bool        // guard passed and strategy installed
	strategy  vm.Strategy // the installed ô (nil in default mode)
	invoked   []bool
	report    *RunRecord
}

// Name implements vm.Controller.
func (c *Controller) Name() string { return "evolve" }

// OnRunStart charges the feature-extraction overhead and, when the guard
// passes and features are available, computes and installs ô.
func (c *Controller) OnRunStart(m *vm.Machine) {
	c.machine = m
	c.invoked = make([]bool, len(m.Prog.Funcs))
	m.AddOverhead(c.extractionCost)
	if c.features != nil {
		c.tryPredict()
	}
}

// SetFeatures delivers (or completes) the input feature vector, possibly
// mid-run — the path used when an XICL spec has runtime constructs and the
// application calls UpdateV/Done while initializing. Methods already past
// their first invocation are recompiled immediately.
func (c *Controller) SetFeatures(features xicl.Vector) {
	c.features = features
	if c.machine != nil && !c.predicted {
		c.tryPredict()
	}
}

func (c *Controller) tryPredict() {
	if !c.ev.WouldPredict() {
		return
	}
	c.machine.AddOverhead(c.ev.predictionCost(c.features))
	c.strategy = c.ev.PredictStrategy(c.features)
	c.predicted = true
	// Catch up on methods invoked before features arrived.
	for fn, inv := range c.invoked {
		if inv && c.strategy[fn] > -1 {
			_ = c.machine.RequestCompile(fn, c.strategy[fn])
		}
	}
}

// OnInvoke installs the predicted level after a method's first (baseline)
// invocation begins; the optimized code runs from the second invocation.
func (c *Controller) OnInvoke(m *vm.Machine, fnIdx int, count int64) {
	if count == 1 {
		c.invoked[fnIdx] = true
		if c.predicted && c.strategy[fnIdx] > -1 {
			_ = m.RequestCompile(fnIdx, c.strategy[fnIdx])
		}
	}
	if !c.predicted {
		c.reactive.OnInvoke(m, fnIdx, count)
	}
}

// OnSample keeps the default sampler-driven optimizer running in both
// modes (paper §II: the VM monitors runtime behaviour through its default
// sampling in both cases). In default mode it is the whole strategy; in
// predicted mode it acts as a safety net that can still upgrade a method
// whose level was under-predicted — upgrades only, so a correct low
// prediction on a short run is never overridden.
func (c *Controller) OnSample(m *vm.Machine, fnIdx int) {
	c.reactive.OnSample(m, fnIdx)
}

// OnRunEnd feeds the run back to the learner.
func (c *Controller) OnRunEnd(m *vm.Machine) {
	rec := c.ev.finishRun(m, c.features, c.strategy, c.predicted)
	c.report = &rec
}

// Report returns the run's learning record (valid after the run ends).
func (c *Controller) Report() *RunRecord { return c.report }

// Predicted reports whether this run executed with an installed ô.
func (c *Controller) Predicted() bool { return c.predicted }
