// Package core implements the paper's primary contribution: the evolvable
// virtual machine framework. An Evolver persists across production runs of
// one application and learns, per method, the relation between the
// program's input features and the method's ideal optimization level. At
// each new run it performs discriminative prediction: only when its
// decayed self-evaluated confidence exceeds a threshold does it proactively
// install a predicted strategy; otherwise the run falls back to the
// default reactive optimizer. After every run it labels the observed
// profile with the posterior ideal strategy and refines its models —
// the incremental learning loop of the paper's Figure 7.
package core

import (
	"evolvevm/internal/aos"
	"evolvevm/internal/bytecode"
	"evolvevm/internal/cart"
	"evolvevm/internal/vm"
	"evolvevm/internal/xicl"
)

// Config holds the evolvable VM's learning parameters. The paper uses 0.7
// for both the confidence threshold and the decay factor.
type Config struct {
	// ConfidenceThreshold (TH_c): predict only when confidence exceeds
	// it. Larger is more conservative.
	ConfidenceThreshold float64
	// Decay (γ) weights recent runs in the confidence update
	// conf ← (1−γ)·conf + γ·acc.
	Decay float64
	// Tree are the classification-tree induction parameters.
	Tree cart.Params
	// PredictBaseCost and PredictPerFeatureCost model the cycles charged
	// per method prediction (overhead analysis, paper §V-B.2).
	PredictBaseCost       int64
	PredictPerFeatureCost int64
}

// DefaultConfig returns the paper's parameter choices.
func DefaultConfig() Config {
	return Config{
		ConfidenceThreshold:   0.7,
		Decay:                 0.7,
		Tree:                  cart.Params{},
		PredictBaseCost:       120,
		PredictPerFeatureCost: 12,
	}
}

// RunRecord summarizes one run's learning outcome.
type RunRecord struct {
	Run        int
	Predicted  bool        // discriminative guard passed; ô was installed
	Accuracy   float64     // CalAccuracy(ô, o, p)
	Confidence float64     // conf after the update
	Used       vm.Strategy // strategy the run executed with (nil = default)
	Ideal      vm.Strategy // posterior ideal strategy o
	Samples    int64       // total profile samples
}

// Evolver is the persistent cross-run learner for one application. It is
// bound to the program's shape (function indices); the same Evolver must
// be reused across runs of the same program.
type Evolver struct {
	cfg    Config
	prog   *bytecode.Program
	models []*cart.Incremental // one model per method, lazily created
	conf   float64
	runs   int

	history []RunRecord
}

// NewEvolver returns an empty learner for prog.
func NewEvolver(prog *bytecode.Program, cfg Config) *Evolver {
	if cfg.Decay <= 0 || cfg.Decay > 1 {
		cfg.Decay = 0.7
	}
	// The zero value means "paper default". Negative thresholds are
	// legitimate: they disable the discriminative guard entirely (used by
	// the ablation study).
	if cfg.ConfidenceThreshold == 0 {
		cfg.ConfidenceThreshold = 0.7
	}
	return &Evolver{
		cfg:    cfg,
		prog:   prog,
		models: make([]*cart.Incremental, len(prog.Funcs)),
	}
}

// Config returns the learner's parameters.
func (ev *Evolver) Config() Config { return ev.cfg }

// Confidence returns the current self-evaluated confidence.
func (ev *Evolver) Confidence() float64 { return ev.conf }

// Runs returns how many runs the learner has observed.
func (ev *Evolver) Runs() int { return ev.runs }

// History returns the per-run learning records.
func (ev *Evolver) History() []RunRecord { return ev.history }

// WouldPredict reports whether the discriminative guard currently passes.
func (ev *Evolver) WouldPredict() bool {
	return ev.conf > ev.cfg.ConfidenceThreshold
}

// PredictStrategy produces ô for a feature vector from the current
// per-method models. Methods without a model predict baseline.
func (ev *Evolver) PredictStrategy(features xicl.Vector) vm.Strategy {
	s := vm.NewStrategy(len(ev.prog.Funcs))
	for fn, m := range ev.models {
		if m == nil {
			continue
		}
		if level, ok := m.Predict(features); ok {
			s[fn] = level
		}
	}
	return s
}

// predictionCost models the cycles of running every per-method model.
func (ev *Evolver) predictionCost(features xicl.Vector) int64 {
	var n int64
	for _, m := range ev.models {
		if m != nil {
			n++
		}
	}
	return n * (ev.cfg.PredictBaseCost + ev.cfg.PredictPerFeatureCost*int64(len(features)))
}

// ModelFor returns the incremental model of one method (nil if the method
// has never been observed).
func (ev *Evolver) ModelFor(fnIdx int) *cart.Incremental {
	if fnIdx < 0 || fnIdx >= len(ev.models) {
		return nil
	}
	return ev.models[fnIdx]
}

// UsedFeatureNames returns the union of feature names appearing in any
// method's tree — the "Used" column of the paper's Table I.
func (ev *Evolver) UsedFeatureNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, m := range ev.models {
		if m == nil || m.Tree() == nil {
			continue
		}
		for _, n := range m.Tree().UsedFeatureNames() {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	return names
}

// CrossValidatedConfidence estimates model quality by k-fold
// cross-validation over the stored examples, averaged across methods
// weighted by example count — the paper's alternative confidence source.
func (ev *Evolver) CrossValidatedConfidence(k int) float64 {
	var sum float64
	var weight int
	for _, m := range ev.models {
		if m == nil || m.Len() < 2 {
			continue
		}
		sum += cart.CrossValidate(m.Examples(), k, ev.cfg.Tree) * float64(m.Len())
		weight += m.Len()
	}
	if weight == 0 {
		return 0
	}
	return sum / float64(weight)
}

// finishRun implements the tail of Figure 7: compute the ideal strategy o
// from the run's profile, evaluate ô against it, update confidence, and
// refine the models. Model construction happens after the run ends, so it
// is not charged to the run (paper §V-B.2).
func (ev *Evolver) finishRun(m *vm.Machine, features xicl.Vector, used vm.Strategy, predictedAtStart bool) RunRecord {
	ideal := aos.IdealStrategy(m)
	if features == nil {
		// No XICL characterization: the system behaves as the default VM
		// and learns nothing (paper §II). Record the run for bookkeeping
		// without touching models or confidence.
		ev.runs++
		rec := RunRecord{Run: ev.runs, Confidence: ev.conf, Ideal: ideal}
		ev.history = append(ev.history, rec)
		return rec
	}

	var oHat vm.Strategy
	if predictedAtStart {
		oHat = used
	} else {
		// Default run: still evaluate what the model *would* have said.
		oHat = ev.PredictStrategy(features)
	}
	acc := vm.Accuracy(oHat, ideal, m.Samples)
	ev.conf = (1-ev.cfg.Decay)*ev.conf + ev.cfg.Decay*acc

	// UpdateModel(M, v, o): one example per invoked method.
	for fn := range ev.prog.Funcs {
		if m.Engine.Invocations[fn] == 0 {
			continue
		}
		if ev.models[fn] == nil {
			ev.models[fn] = cart.NewIncremental(ev.cfg.Tree)
		}
		ev.models[fn].Add(cart.Example{Features: features, Label: ideal[fn]})
	}

	ev.runs++
	var totalSamples int64
	for _, s := range m.Samples {
		totalSamples += s
	}
	rec := RunRecord{
		Run:        ev.runs,
		Predicted:  predictedAtStart,
		Accuracy:   acc,
		Confidence: ev.conf,
		Used:       used,
		Ideal:      ideal,
		Samples:    totalSamples,
	}
	ev.history = append(ev.history, rec)
	return rec
}

// Controller returns the vm.Controller for one run. features may be nil
// when the XICL spec defers them to runtime constructs; deliver them later
// through SetFeatures (triggered by the translator's Done hook).
// extractionCost is the XICL translator's cycle meter, charged to the run.
func (ev *Evolver) Controller(features xicl.Vector, extractionCost int64) *Controller {
	return &Controller{
		ev:             ev,
		reactive:       aos.NewReactive(),
		features:       features,
		extractionCost: extractionCost,
	}
}

// sanity check: core.Controller must satisfy vm.Controller.
var _ vm.Controller = (*Controller)(nil)
