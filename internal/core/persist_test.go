package core

import (
	"bytes"
	"strings"
	"testing"
)

// TestEvolverSaveIsStable pins the golden property behind checkpointing:
// serialization is deterministic (same state → same bytes) and lossless
// (save → load → save reproduces the bytes exactly). Together with
// TestPersistenceRoundTrip this means a resumed learner is
// indistinguishable from one that never stopped.
func TestEvolverSaveIsStable(t *testing.T) {
	ev := NewEvolver(testProg(t), DefaultConfig())
	for _, n := range []int64{30, 4000, 30, 4000, 800, 30, 4000} {
		oneRun(t, ev, n)
	}

	var first, second bytes.Buffer
	if err := ev.Save(&first); err != nil {
		t.Fatal(err)
	}
	if err := ev.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("two saves of the same state differ")
	}

	ev2, err := LoadEvolver(ev.prog, DefaultConfig(), bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var resaved bytes.Buffer
	if err := ev2.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), resaved.Bytes()) {
		t.Errorf("save -> load -> save is not the identity:\n%s\nvs\n%s",
			first.String(), resaved.String())
	}
}

// TestEvolverResumedLearningIsBitIdentical: a learner restored mid-stream
// must make the same predictions AND evolve identically on future runs.
func TestEvolverResumedLearningIsBitIdentical(t *testing.T) {
	warmup := []int64{30, 4000, 30, 4000, 800}
	future := []int64{30, 4000, 30, 800, 4000, 30}

	ev := NewEvolver(testProg(t), DefaultConfig())
	for _, n := range warmup {
		oneRun(t, ev, n)
	}
	var blob bytes.Buffer
	if err := ev.Save(&blob); err != nil {
		t.Fatal(err)
	}
	ev2, err := LoadEvolver(ev.prog, DefaultConfig(), bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	for i, n := range future {
		_, ca := oneRun(t, ev, n)
		_, cb := oneRun(t, ev2, n)
		ra, rb := ca.Report(), cb.Report()
		if ra.Predicted != rb.Predicted || ra.Confidence != rb.Confidence ||
			ra.Accuracy != rb.Accuracy {
			t.Fatalf("future run %d (n=%d) diverged: original %+v resumed %+v", i, n, ra, rb)
		}
	}
	if ev.Confidence() != ev2.Confidence() || ev.Runs() != ev2.Runs() {
		t.Errorf("final state diverged: %.6f/%d vs %.6f/%d",
			ev.Confidence(), ev.Runs(), ev2.Confidence(), ev2.Runs())
	}
}

func trainedSelector(t *testing.T) *GCSelector {
	t.Helper()
	s := NewGCSelector(DefaultConfig())
	for _, k := range []float64{1, 50, 2, 40, 1, 60, 2, 30} {
		s.Observe(gcFeatures(k), statsFor(k))
	}
	return s
}

func TestGCSelectorPersistenceRoundTrip(t *testing.T) {
	s := trainedSelector(t)
	var blob bytes.Buffer
	if err := s.Save(&blob); err != nil {
		t.Fatal(err)
	}

	s2, err := LoadGCSelector(DefaultConfig(), bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Confidence() != s.Confidence() || s2.Runs() != s.Runs() {
		t.Errorf("restored conf/runs = %.3f/%d, want %.3f/%d",
			s2.Confidence(), s2.Runs(), s.Confidence(), s.Runs())
	}
	for _, k := range []float64{1.5, 45, 5, 55} {
		pa, oka := s.Choose(gcFeatures(k))
		pb, okb := s2.Choose(gcFeatures(k))
		if pa != pb || oka != okb {
			t.Errorf("k=%v: choice %v,%v != restored %v,%v", k, pa, oka, pb, okb)
		}
	}

	// Save -> load -> save must be the identity (golden stability).
	var resaved bytes.Buffer
	if err := s2.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob.Bytes(), resaved.Bytes()) {
		t.Error("GC selector save -> load -> save is not the identity")
	}

	// Garbage rejected.
	if _, err := LoadGCSelector(DefaultConfig(), strings.NewReader("{nope")); err == nil {
		t.Error("garbage selector state accepted")
	}
}

// TestGCSelectorResumedLearning: observations after a restore move the
// restored selector exactly as they move the original.
func TestGCSelectorResumedLearning(t *testing.T) {
	s := trainedSelector(t)
	var blob bytes.Buffer
	if err := s.Save(&blob); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadGCSelector(DefaultConfig(), bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{3, 35, 1, 70} {
		ia := s.Observe(gcFeatures(k), statsFor(k))
		ib := s2.Observe(gcFeatures(k), statsFor(k))
		if ia != ib {
			t.Fatalf("k=%v: ideal %v != resumed %v", k, ia, ib)
		}
		if s.Confidence() != s2.Confidence() {
			t.Fatalf("k=%v: confidence %.6f != resumed %.6f", k, s.Confidence(), s2.Confidence())
		}
	}
}
