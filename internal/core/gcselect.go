package core

import (
	"evolvevm/internal/cart"
	"evolvevm/internal/gc"
	"evolvevm/internal/xicl"
)

// GCSelector applies the paper's evolvement loop (Figure 7) to a second
// optimization decision the paper's §VI proposes: input-specific
// selection of garbage collectors (after Mao & Shen, VEE 2009). Across
// production runs it learns the relation between input features and the
// collector that would have been cheapest, guarded by the same decayed
// self-evaluated confidence as the level predictor.
type GCSelector struct {
	cfg   Config
	model *cart.Incremental
	conf  float64
	runs  int
}

// NewGCSelector returns an empty selector with the given learning
// parameters (zero values take the paper's defaults, as in NewEvolver).
func NewGCSelector(cfg Config) *GCSelector {
	if cfg.Decay <= 0 || cfg.Decay > 1 {
		cfg.Decay = 0.7
	}
	if cfg.ConfidenceThreshold == 0 {
		cfg.ConfidenceThreshold = 0.7
	}
	return &GCSelector{cfg: cfg, model: cart.NewIncremental(cfg.Tree)}
}

// Confidence returns the decayed self-evaluated confidence.
func (s *GCSelector) Confidence() float64 { return s.conf }

// Runs returns the number of observed runs.
func (s *GCSelector) Runs() int { return s.runs }

// Predict returns the model's current policy estimate for the features
// (ok is false while the model is empty).
func (s *GCSelector) Predict(features xicl.Vector) (gc.Policy, bool) {
	label, ok := s.model.Predict(features)
	if !ok {
		return gc.None, false
	}
	return gc.Policy(label), true
}

// Choose performs discriminative prediction: it returns the predicted
// policy only when confidence clears the threshold; otherwise the caller
// should fall back to its default collector.
func (s *GCSelector) Choose(features xicl.Vector) (gc.Policy, bool) {
	if s.conf <= s.cfg.ConfidenceThreshold {
		return gc.None, false
	}
	return s.Predict(features)
}

// Observe closes the loop after a run: the recorded collections yield the
// posterior ideal policy (the label), the model's own estimate is scored
// against it, and confidence is updated with the decayed accuracy.
// Runs that never collected teach nothing (either policy was free).
func (s *GCSelector) Observe(features xicl.Vector, stats gc.Stats) gc.Policy {
	s.runs++
	if len(stats.Collections) == 0 {
		return gc.None
	}
	ideal := gc.IdealPolicy(stats.Collections, stats.Allocs)

	acc := 0.0
	if predicted, ok := s.Predict(features); ok && predicted == ideal {
		acc = 1
	}
	s.conf = (1-s.cfg.Decay)*s.conf + s.cfg.Decay*acc

	s.model.Add(cart.Example{Features: features, Label: int(ideal)})
	return ideal
}
