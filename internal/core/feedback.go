package core

import (
	"fmt"
	"sort"
	"strings"

	"evolvevm/internal/xicl"
)

// SpecFeedback is the VM's advice to the programmer about an XICL
// specification, computed from what the learned models actually consult —
// the extension the paper's §VI proposes ("let the virtual machine offer
// feedback to the programmers for the refinement of the specifications").
type SpecFeedback struct {
	// Used features appear in at least one method's tree.
	Used []string
	// Unused features were extracted every run but never reduced
	// impurity in any tree; candidates for removal from the spec (or
	// evidence an expected signal is missing).
	Unused []string
	// MethodsModeled / MethodsTotal sizes the learner's coverage.
	MethodsModeled, MethodsTotal int
	// Examples is the total number of stored observations.
	Examples int
}

// Feedback compares the features the translator produces (vectorNames,
// i.e. Vector.Names() of any run's vector) against the features the
// models use.
func (ev *Evolver) Feedback(vectorNames []string) SpecFeedback {
	used := map[string]bool{}
	for _, n := range ev.UsedFeatureNames() {
		used[n] = true
	}
	fb := SpecFeedback{MethodsTotal: len(ev.prog.Funcs)}
	for _, n := range vectorNames {
		if used[n] {
			fb.Used = append(fb.Used, n)
		} else {
			fb.Unused = append(fb.Unused, n)
		}
	}
	sort.Strings(fb.Used)
	sort.Strings(fb.Unused)
	for _, m := range ev.models {
		if m != nil && m.Len() > 0 {
			fb.MethodsModeled++
			fb.Examples += m.Len()
		}
	}
	return fb
}

// String renders the feedback as a short human-readable report.
func (fb SpecFeedback) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "XICL spec feedback (%d methods modeled of %d, %d observations):\n",
		fb.MethodsModeled, fb.MethodsTotal, fb.Examples)
	if len(fb.Used) > 0 {
		fmt.Fprintf(&b, "  informative features: %s\n", strings.Join(fb.Used, ", "))
	}
	if len(fb.Unused) > 0 {
		fmt.Fprintf(&b, "  never-used features:  %s\n", strings.Join(fb.Unused, ", "))
		b.WriteString("  consider removing them from the spec, or check whether an expected signal is missing\n")
	}
	return b.String()
}

// FeedbackForSpec is a convenience that derives the vector names from a
// translator dry run over an example command line.
func (ev *Evolver) FeedbackForSpec(spec *xicl.Spec, reg *xicl.Registry, fs xicl.FS, exampleArgs []string) (SpecFeedback, error) {
	tr := xicl.NewTranslator(spec, reg, fs)
	vec, err := tr.BuildFVector(exampleArgs)
	if err != nil {
		return SpecFeedback{}, err
	}
	return ev.Feedback(vec.Names()), nil
}
