package core

import (
	"testing"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/gc"
)

// TestDecayNormalization pins the γ boundary handling: γ is a weight in
// (0, 1], so 0 and out-of-range values fall back to the paper's 0.7 while
// γ=1 is legitimate (confidence tracks only the most recent run).
func TestDecayNormalization(t *testing.T) {
	prog := bytecode.NewProgram("t")
	cases := []struct {
		in, want float64
	}{
		{0, 0.7},    // zero value: paper default
		{-0.3, 0.7}, // negative: invalid, default
		{1.5, 0.7},  // above one: invalid, default
		{1, 1},      // boundary: valid, keep
		{0.01, 0.01},
	}
	for _, tc := range cases {
		if got := NewEvolver(prog, Config{Decay: tc.in}).Config().Decay; got != tc.want {
			t.Errorf("Evolver Decay %v normalized to %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestGCSelectorDecayOne checks the γ=1 boundary semantics: confidence is
// exactly the last run's accuracy, with no memory of earlier runs.
func TestGCSelectorDecayOne(t *testing.T) {
	s := NewGCSelector(Config{Decay: 1})

	// First run: empty model, no prediction, accuracy 0.
	s.Observe(gcFeatures(1), statsFor(1))
	if s.Confidence() != 0 {
		t.Fatalf("conf after first run = %v, want 0", s.Confidence())
	}
	// Second identical run: the model now predicts correctly, so with
	// γ=1 confidence jumps straight to 1.
	s.Observe(gcFeatures(1), statsFor(1))
	if s.Confidence() != 1 {
		t.Fatalf("conf after correct prediction = %v, want 1 under γ=1", s.Confidence())
	}
	// One flipped run erases all of it.
	s.Observe(gcFeatures(1), statsFor(50))
	if s.Confidence() != 0 {
		t.Fatalf("conf after misprediction = %v, want 0 under γ=1", s.Confidence())
	}
}

// TestGCSelectorDecayZeroFallsBack checks that γ=0 (which would freeze
// confidence at zero forever) is replaced by the 0.7 default: a single
// correct prediction must move confidence to exactly γ·1 = 0.7.
func TestGCSelectorDecayZeroFallsBack(t *testing.T) {
	for _, bad := range []float64{0, -1, 2} {
		s := NewGCSelector(Config{Decay: bad})
		s.Observe(gcFeatures(1), statsFor(1)) // trains, acc 0
		s.Observe(gcFeatures(1), statsFor(1)) // predicts correctly
		if s.Confidence() != 0.7 {
			t.Errorf("Decay=%v: conf after one correct prediction = %v, want 0.7 (default γ)",
				bad, s.Confidence())
		}
	}
}

// TestGCSelectorResourceOnlyRuns documents that a run whose stats carry
// allocations but no collections teaches nothing regardless of γ.
func TestGCSelectorResourceOnlyRuns(t *testing.T) {
	s := NewGCSelector(Config{Decay: 1})
	ideal := s.Observe(gcFeatures(3), gc.Stats{Allocs: 500})
	if ideal != gc.None {
		t.Errorf("ideal = %v, want none", ideal)
	}
	if s.Confidence() != 0 || s.Runs() != 1 {
		t.Errorf("conf=%v runs=%d after collection-free run, want 0 and 1",
			s.Confidence(), s.Runs())
	}
}
