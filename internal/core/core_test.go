package core

import (
	"bytes"
	"strings"
	"testing"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/jit"
	"evolvevm/internal/vm"
	"evolvevm/internal/xicl"
)

// workSrc: the hot method's work scales with the global n, so its ideal
// level is a function of the input.
const workSrc = `
global n
func main() locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  const 60
  ige
  jnz done
  load acc
  call kernel 0
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
func kernel() locals j acc
  const 0
  store acc
  const 0
  store j
loop:
  load j
  gload n
  ige
  jnz done
  load acc
  load j
  iadd
  store acc
  iinc j 1
  jmp loop
done:
  load acc
  ret
end
`

func testProg(t *testing.T) *bytecode.Program {
	t.Helper()
	p, err := bytecode.Assemble("coretest", workSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func features(n int64) xicl.Vector {
	return xicl.Vector{xicl.NumFeature("-n.VAL", float64(n))}
}

// oneRun executes one production run of the program under the evolver.
func oneRun(t *testing.T, ev *Evolver, n int64) (*vm.Machine, *Controller) {
	t.Helper()
	ctrl := ev.Controller(features(n), 25)
	m := vm.New(ev.prog, jit.DefaultConfig(), ctrl)
	if err := m.Engine.SetGlobal("n", bytecode.Int(n)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m, ctrl
}

func TestLearningLoop(t *testing.T) {
	ev := NewEvolver(testProg(t), DefaultConfig())
	if ev.WouldPredict() {
		t.Fatal("fresh evolver confident")
	}

	// Alternate small and large inputs; the kernel's ideal level differs.
	inputs := []int64{30, 4000, 30, 4000, 30, 4000, 4000, 30}
	var sawPrediction bool
	for i, n := range inputs {
		m, ctrl := oneRun(t, ev, n)
		rec := ctrl.Report()
		if rec == nil {
			t.Fatalf("run %d: no report", i)
		}
		if rec.Run != i+1 {
			t.Errorf("run number = %d, want %d", rec.Run, i+1)
		}
		if ctrl.Predicted() {
			sawPrediction = true
		}
		_ = m
	}
	if !sawPrediction {
		t.Error("never predicted after 8 runs of a trivially learnable relation")
	}
	if ev.Confidence() <= 0.7 {
		t.Errorf("confidence %.3f did not rise", ev.Confidence())
	}
	if len(ev.History()) != len(inputs) {
		t.Errorf("history length %d, want %d", len(ev.History()), len(inputs))
	}

	// The learned strategies must be input-specific.
	kernelIdx, _ := ev.prog.FuncIndex("kernel")
	sSmall := ev.PredictStrategy(features(30))
	sLarge := ev.PredictStrategy(features(4000))
	if sSmall[kernelIdx] >= sLarge[kernelIdx] {
		t.Errorf("kernel prediction small=%d large=%d, want input-specific increase",
			sSmall[kernelIdx], sLarge[kernelIdx])
	}
}

func TestGuardBlocksImmaturePredictions(t *testing.T) {
	ev := NewEvolver(testProg(t), DefaultConfig())
	_, ctrl := oneRun(t, ev, 1000)
	if ctrl.Predicted() {
		t.Error("first run predicted with empty model")
	}
	// A sequence of bad accuracy keeps the guard shut: feed the learner
	// contradictory labels by alternating extremes faster than γ decays.
	if ev.WouldPredict() && ev.Confidence() <= ev.Config().ConfidenceThreshold {
		t.Error("WouldPredict inconsistent with threshold")
	}
}

func TestPredictedRunsInstallStrategy(t *testing.T) {
	ev := NewEvolver(testProg(t), DefaultConfig())
	for i := 0; i < 6; i++ {
		oneRun(t, ev, 4000)
	}
	if !ev.WouldPredict() {
		t.Fatal("not confident after 6 identical runs")
	}
	m, ctrl := oneRun(t, ev, 4000)
	if !ctrl.Predicted() {
		t.Fatal("no prediction despite confidence")
	}
	kernelIdx, _ := ev.prog.FuncIndex("kernel")
	if m.Level(kernelIdx) < 1 {
		t.Errorf("kernel level %d after predicted run, want >= 1", m.Level(kernelIdx))
	}
	if m.OverheadCycles <= 0 {
		t.Error("prediction charged no overhead")
	}
}

func TestRunWithoutFeaturesLearnsNothing(t *testing.T) {
	ev := NewEvolver(testProg(t), DefaultConfig())
	ctrl := ev.Controller(nil, 0)
	m := vm.New(ev.prog, jit.DefaultConfig(), ctrl)
	if err := m.Engine.SetGlobal("n", bytecode.Int(500)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if ev.Confidence() != 0 {
		t.Error("confidence moved without features")
	}
	if ev.ModelFor(0) != nil {
		t.Error("model created without features")
	}
	if ev.Runs() != 1 {
		t.Error("run not recorded")
	}
}

func TestSetFeaturesMidRun(t *testing.T) {
	// Deliver features through the runtime channel after the run begins
	// (the XICL runtime-construct path): prediction must still happen
	// and apply to already-invoked methods.
	ev := NewEvolver(testProg(t), DefaultConfig())
	for i := 0; i < 6; i++ {
		oneRun(t, ev, 4000)
	}
	ctrl := ev.Controller(nil, 10)
	m := vm.New(ev.prog, jit.DefaultConfig(), ctrl)
	if err := m.Engine.SetGlobal("n", bytecode.Int(4000)); err != nil {
		t.Fatal(err)
	}
	kernelIdx, _ := ev.prog.FuncIndex("kernel")
	delivered := false
	m.Engine.OnInvoke = func(fnIdx int, count int64) {
		m.Controller.OnInvoke(m, fnIdx, count)
		if !delivered && fnIdx == kernelIdx && count == 3 {
			delivered = true
			ctrl.SetFeatures(features(4000))
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !ctrl.Predicted() {
		t.Fatal("mid-run features did not trigger prediction")
	}
	if m.Level(kernelIdx) < 1 {
		t.Errorf("already-invoked kernel not caught up (level %d)", m.Level(kernelIdx))
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	ev := NewEvolver(testProg(t), DefaultConfig())
	for _, n := range []int64{30, 4000, 30, 4000, 800} {
		oneRun(t, ev, n)
	}
	var buf bytes.Buffer
	if err := ev.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "coretest") {
		t.Error("saved state missing program name")
	}

	ev2, err := LoadEvolver(ev.prog, DefaultConfig(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Confidence() != ev.Confidence() || ev2.Runs() != ev.Runs() {
		t.Errorf("restored conf/runs = %.3f/%d, want %.3f/%d",
			ev2.Confidence(), ev2.Runs(), ev.Confidence(), ev.Runs())
	}
	for _, n := range []int64{30, 4000} {
		a := ev.PredictStrategy(features(n))
		b := ev2.PredictStrategy(features(n))
		for fn := range a {
			if a[fn] != b[fn] {
				t.Errorf("n=%d fn=%d: prediction %d != restored %d", n, fn, a[fn], b[fn])
			}
		}
	}

	// Wrong program rejected.
	other, _ := bytecode.Assemble("otherprog", "func main()\n const 1\n ret\nend\n")
	if _, err := LoadEvolver(other, DefaultConfig(), bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("state loaded into wrong program")
	}
	// Garbage rejected.
	if _, err := LoadEvolver(ev.prog, DefaultConfig(), strings.NewReader("{nope")); err == nil {
		t.Error("garbage state accepted")
	}
}

func TestUsedFeatureNamesReflectTrees(t *testing.T) {
	ev := NewEvolver(testProg(t), DefaultConfig())
	mixed := func(n int64) xicl.Vector {
		return xicl.Vector{
			xicl.NumFeature("-n.VAL", float64(n)),
			xicl.NumFeature("constant", 42),
		}
	}
	for _, n := range []int64{30, 4000, 30, 4000, 30, 4000} {
		ctrl := ev.Controller(mixed(n), 0)
		m := vm.New(ev.prog, jit.DefaultConfig(), ctrl)
		if err := m.Engine.SetGlobal("n", bytecode.Int(n)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
	}
	used := ev.UsedFeatureNames()
	for _, u := range used {
		if u == "constant" {
			t.Error("constant feature selected into a tree")
		}
	}
	if len(used) == 0 {
		t.Error("no features used despite learnable relation")
	}
}

func TestCrossValidatedConfidence(t *testing.T) {
	ev := NewEvolver(testProg(t), DefaultConfig())
	if ev.CrossValidatedConfidence(3) != 0 {
		t.Error("CV confidence nonzero on empty learner")
	}
	for _, n := range []int64{30, 4000, 30, 4000, 30, 4000, 800, 800} {
		oneRun(t, ev, n)
	}
	if cv := ev.CrossValidatedConfidence(3); cv < 0.5 {
		t.Errorf("CV confidence = %.3f on learnable relation, want >= 0.5", cv)
	}
}

func TestDefaultConfigClamps(t *testing.T) {
	ev := NewEvolver(testProg(t), Config{Decay: 5, ConfidenceThreshold: 0})
	if ev.cfg.Decay != 0.7 || ev.cfg.ConfidenceThreshold != 0.7 {
		t.Errorf("bad config not clamped: %+v", ev.cfg)
	}
	// Negative thresholds survive (guard disabled, for ablations).
	ev2 := NewEvolver(testProg(t), Config{ConfidenceThreshold: -1, Decay: 0.7})
	if !ev2.WouldPredict() {
		t.Error("negative threshold did not disable the guard")
	}
}

func TestSpecFeedback(t *testing.T) {
	ev := NewEvolver(testProg(t), DefaultConfig())
	mixed := func(n int64) xicl.Vector {
		return xicl.Vector{
			xicl.NumFeature("-n.VAL", float64(n)),
			xicl.NumFeature("-q.VAL", 0), // never varies
		}
	}
	for _, n := range []int64{30, 4000, 30, 4000, 30, 4000} {
		ctrl := ev.Controller(mixed(n), 0)
		m := vm.New(ev.prog, jit.DefaultConfig(), ctrl)
		if err := m.Engine.SetGlobal("n", bytecode.Int(n)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
	}
	fb := ev.Feedback([]string{"-n.VAL", "-q.VAL"})
	if len(fb.Used) != 1 || fb.Used[0] != "-n.VAL" {
		t.Errorf("Used = %v, want [-n.VAL]", fb.Used)
	}
	if len(fb.Unused) != 1 || fb.Unused[0] != "-q.VAL" {
		t.Errorf("Unused = %v, want [-q.VAL]", fb.Unused)
	}
	if fb.MethodsModeled == 0 || fb.Examples == 0 {
		t.Errorf("coverage empty: %+v", fb)
	}
	s := fb.String()
	if !strings.Contains(s, "-q.VAL") || !strings.Contains(s, "never-used") {
		t.Errorf("report missing advice: %s", s)
	}
}
