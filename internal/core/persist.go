package core

import (
	"encoding/json"
	"fmt"
	"io"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/cart"
	"evolvevm/internal/xicl"
)

// The on-disk model store. A production evolvable VM keeps its learned
// state between process lifetimes; Save/Load serialize the example sets
// and confidence (trees are rebuilt on load — they are derived state).

type persistFeature struct {
	Name string  `json:"name"`
	Kind string  `json:"kind"`
	Num  float64 `json:"num,omitempty"`
	Cat  string  `json:"cat,omitempty"`
}

type persistExample struct {
	Label    int              `json:"label"`
	Features []persistFeature `json:"features"`
}

type persistModel struct {
	Fn       string           `json:"fn"`
	Examples []persistExample `json:"examples"`
}

type persistState struct {
	Program    string         `json:"program"`
	Confidence float64        `json:"confidence"`
	Runs       int            `json:"runs"`
	Models     []persistModel `json:"models"`
}

// Save writes the learner's persistent state as JSON.
func (ev *Evolver) Save(w io.Writer) error {
	st := persistState{
		Program:    ev.prog.Name,
		Confidence: ev.conf,
		Runs:       ev.runs,
	}
	for fn, m := range ev.models {
		if m == nil || m.Len() == 0 {
			continue
		}
		pm := persistModel{Fn: ev.prog.Funcs[fn].Name}
		for _, ex := range m.Examples() {
			pe := persistExample{Label: ex.Label}
			for _, f := range ex.Features {
				pf := persistFeature{Name: f.Name, Kind: f.Kind.String(), Num: f.Num, Cat: f.Cat}
				pe.Features = append(pe.Features, pf)
			}
			pm.Examples = append(pm.Examples, pe)
		}
		st.Models = append(st.Models, pm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(st)
}

// persistGCState is the GC selector's saved form. Like the level
// predictor, only examples and confidence persist; the tree is rebuilt.
type persistGCState struct {
	Confidence float64          `json:"confidence"`
	Runs       int              `json:"runs"`
	Examples   []persistExample `json:"examples,omitempty"`
}

// Save writes the GC selector's persistent state as JSON.
func (s *GCSelector) Save(w io.Writer) error {
	st := persistGCState{Confidence: s.conf, Runs: s.runs}
	for _, ex := range s.model.Examples() {
		pe := persistExample{Label: ex.Label}
		for _, f := range ex.Features {
			pe.Features = append(pe.Features,
				persistFeature{Name: f.Name, Kind: f.Kind.String(), Num: f.Num, Cat: f.Cat})
		}
		st.Examples = append(st.Examples, pe)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(st)
}

// LoadGCSelector restores a selector saved by GCSelector.Save.
func LoadGCSelector(cfg Config, r io.Reader) (*GCSelector, error) {
	var st persistGCState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load gc selector: %w", err)
	}
	s := NewGCSelector(cfg)
	s.conf = st.Confidence
	s.runs = st.Runs
	for _, pe := range st.Examples {
		ex := cart.Example{Label: pe.Label}
		for _, pf := range pe.Features {
			if pf.Kind == xicl.Categorical.String() {
				ex.Features = append(ex.Features, xicl.CatFeature(pf.Name, pf.Cat))
			} else {
				ex.Features = append(ex.Features, xicl.NumFeature(pf.Name, pf.Num))
			}
		}
		s.model.Add(ex)
	}
	return s, nil
}

// LoadEvolver restores a learner saved by Save, binding it to prog. The
// program must declare every function named in the state (extra functions
// are fine — they simply have no model yet).
func LoadEvolver(prog *bytecode.Program, cfg Config, r io.Reader) (*Evolver, error) {
	var st persistState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if st.Program != prog.Name {
		return nil, fmt.Errorf("core: state is for program %q, not %q", st.Program, prog.Name)
	}
	ev := NewEvolver(prog, cfg)
	ev.conf = st.Confidence
	ev.runs = st.Runs
	for _, pm := range st.Models {
		fn, ok := prog.FuncIndex(pm.Fn)
		if !ok {
			return nil, fmt.Errorf("core: state references unknown function %q", pm.Fn)
		}
		inc := cart.NewIncremental(cfg.Tree)
		for _, pe := range pm.Examples {
			ex := cart.Example{Label: pe.Label}
			for _, pf := range pe.Features {
				var f xicl.Feature
				if pf.Kind == xicl.Categorical.String() {
					f = xicl.CatFeature(pf.Name, pf.Cat)
				} else {
					f = xicl.NumFeature(pf.Name, pf.Num)
				}
				ex.Features = append(ex.Features, f)
			}
			inc.Add(ex)
		}
		ev.models[fn] = inc
	}
	return ev, nil
}
