// Package opspec is the single declarative specification of the VM's
// instruction set: one entry per opcode carrying its mnemonic, stack
// effect, operand kind, virtual-cycle cost, semantics expression, and trap
// clauses. cmd/tiergen consumes this table and generates the opcode
// metadata in internal/bytecode plus the dispatch arms, fusion legality
// tables, closure constructors, and register-IR lowering rules of all four
// execution tiers in internal/interp — the tiers are equivalent by
// construction because every one of them is derived from this file.
//
// The package deliberately does not import internal/bytecode: the opcode
// constants over there are themselves generated from this table, in spec
// order.
package opspec

import "fmt"

// OperandKind mirrors the assembler/verifier operand classes of
// internal/bytecode. tiergen emits the bytecode-side enum from this one,
// so the two stay index-compatible.
type OperandKind uint8

const (
	OpsNone   OperandKind = iota
	OpsImm                // A is an immediate integer (IPUSH)
	OpsConst              // A is a constant-pool index
	OpsLocal              // A is a local slot
	OpsLocImm             // A is a local slot, B an immediate (IINC)
	OpsGlobal             // A is a global slot
	OpsTarget             // A is a jump target (instruction index)
	OpsCall               // A is a function index, B an arg count
	numOperandKinds
)

var operandKindNames = [numOperandKinds]string{
	OpsNone:   "opsNone",
	OpsImm:    "opsImm",
	OpsConst:  "opsConst",
	OpsLocal:  "opsLocal",
	OpsLocImm: "opsLocImm",
	OpsGlobal: "opsGlobal",
	OpsTarget: "opsTarget",
	OpsCall:   "opsCall",
}

// GoName returns the bytecode-package identifier of the operand kind.
func (k OperandKind) GoName() (string, bool) {
	if k >= numOperandKinds {
		return "", false
	}
	return operandKindNames[k], true
}

// Class is the coarse execution role of an opcode. It decides which parts
// of each tier are generated from the spec and which come from the tier's
// scaffolding templates.
type Class uint8

const (
	// Pure ops compute a value from their stack operands with no engine
	// access: the semantics live entirely in Scalar (grouped ops) or
	// Kernel, and every tier's dispatch arm is generated from them.
	Pure Class = iota
	// Structural ops move values between stack, locals, globals, and the
	// constant pool (or touch engine state like the output log and heap):
	// their per-tier arms are scaffolding templates keyed by name, but
	// their metadata, cost, and fusion legality still come from the spec.
	Structural
	// Control ops transfer control (branches, calls, returns, halt); they
	// terminate fusion segments and are handled by tier scaffolding.
	Control
)

func (c Class) String() string {
	switch c {
	case Pure:
		return "pure"
	case Structural:
		return "structural"
	case Control:
		return "control"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Trap is one trap clause of an opcode: when Cond holds at run time the op
// aborts the run with Msg. For grouped integer ops Cond is a Go expression
// over the scalar operands a and b that tiergen splices into every tier's
// dispatch arm verbatim; for Structural ops with hand-templated bodies
// (the array ops) Cond is descriptive and the clause only feeds the trap
// *flag* used by the fusion-legality and loop-hoisting tables. An empty
// Cond marks an unconditional trap and must be the last clause.
type Trap struct {
	Cond string
	Msg  string
}

// Op is the full specification of one opcode.
type Op struct {
	// Enum is the Go constant name generated into internal/bytecode
	// (e.g. "IADD"); Name is the assembler mnemonic ("iadd").
	Enum string
	Name string

	Operands OperandKind

	// Pops/Pushes is the static stack effect. Pops is -1 for CALL, whose
	// pop count is operand-dependent.
	Pops   int
	Pushes int

	// Cost is the baseline interpreter cycle charge — the single source
	// of the per-op cost tables of every tier and of the harness's cycle
	// accounting.
	Cost int64

	Class Class

	// Group names a family of ops sharing one generated scalar helper:
	// "intbin" (int64 a,b → int64), "intcmp" (int64 a,b → bool),
	// "fltbin" (float64 a,b → float64), "fltcmp" (float64 a,b → bool).
	// Scalar is the Go expression over a and b. Empty for ungrouped ops.
	Group  string
	Scalar string

	// Kernel is the semantics of an ungrouped Pure op as Go source over
	// the popped values v0..v{Pops-1} (v0 deepest). It is either a single
	// expression yielding a bytecode.Value or, when KernelStmts is set, a
	// full function body that returns one.
	Kernel      string
	KernelStmts bool

	// Traps lists the opcode's trap clauses in evaluation order.
	Traps []Trap

	// Alloc marks ops that can allocate heap memory (and hence start a
	// garbage collection). Alloc ops never enter fusion segments.
	Alloc bool

	// Jump/CondJump/Terminator feed the generated control-flow predicate
	// table (Op.IsJump and friends).
	Jump       bool
	CondJump   bool
	Terminator bool
}

// CanTrap reports whether the op has at least one trap clause.
func (o *Op) CanTrap() bool { return len(o.Traps) > 0 }

// SpecError is a positioned validation error: Index and Enum locate the
// offending spec entry (Index −1 for table-level errors).
type SpecError struct {
	Index int
	Enum  string
	Msg   string
}

func (e *SpecError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("opspec: %s", e.Msg)
	}
	return fmt.Sprintf("opspec: op %d (%s): %s", e.Index, e.Enum, e.Msg)
}

var validGroups = map[string]bool{"intbin": true, "intcmp": true, "fltbin": true, "fltcmp": true}

// Validate checks the spec table for structural mistakes and returns every
// violation as a positioned error. tiergen refuses to generate from a
// table that does not validate.
func Validate(table []Op) []error {
	var errs []error
	bad := func(i int, enum, format string, args ...interface{}) {
		errs = append(errs, &SpecError{Index: i, Enum: enum, Msg: fmt.Sprintf(format, args...)})
	}
	names := make(map[string]int, len(table))
	enums := make(map[string]int, len(table))
	for i := range table {
		o := &table[i]
		if o.Enum == "" || o.Name == "" {
			bad(i, o.Enum, "missing enum or mnemonic")
			continue
		}
		if prev, dup := enums[o.Enum]; dup {
			bad(i, o.Enum, "duplicate enum (first at op %d)", prev)
		}
		enums[o.Enum] = i
		if prev, dup := names[o.Name]; dup {
			bad(i, o.Enum, "duplicate mnemonic %q (first at op %d)", o.Name, prev)
		}
		names[o.Name] = i
		if _, ok := o.Operands.GoName(); !ok {
			bad(i, o.Enum, "unknown operand kind %d", o.Operands)
		}
		if o.Cost <= 0 {
			bad(i, o.Enum, "cost %d is not positive", o.Cost)
		}
		if o.Pops < -1 || (o.Pops == -1 && o.Operands != OpsCall) {
			bad(i, o.Enum, "invalid pop count %d", o.Pops)
		}
		if o.Pushes < 0 {
			bad(i, o.Enum, "negative push count %d", o.Pushes)
		}
		if o.Group != "" {
			if !validGroups[o.Group] {
				bad(i, o.Enum, "unknown group %q", o.Group)
			}
			if o.Scalar == "" {
				bad(i, o.Enum, "grouped op has no scalar expression")
			}
			if o.Kernel != "" {
				bad(i, o.Enum, "grouped op must not also define a kernel")
			}
			if o.Class != Pure {
				bad(i, o.Enum, "grouped op must be pure")
			}
			if o.Pops != 2 || o.Pushes != 1 {
				bad(i, o.Enum, "grouped op must pop 2 and push 1")
			}
		}
		if o.Class == Pure && o.Group == "" && o.Kernel == "" {
			bad(i, o.Enum, "pure op has neither group nor kernel")
		}
		if o.Class == Pure && o.Pushes != 1 {
			bad(i, o.Enum, "pure op must push exactly 1 value")
		}
		for ti, t := range o.Traps {
			if t.Msg == "" {
				bad(i, o.Enum, "trap clause %d has no message", ti)
			}
			if t.Cond == "" && ti != len(o.Traps)-1 {
				bad(i, o.Enum, "trap clause %d is unreachable: clause %d always traps", ti+1, ti)
			}
		}
		if o.CanTrap() && o.Class == Control {
			bad(i, o.Enum, "control op cannot carry trap clauses")
		}
		if (o.Jump || o.CondJump) && o.Operands != OpsTarget {
			bad(i, o.Enum, "jump op must take a target operand")
		}
		if o.CondJump && !o.Jump {
			bad(i, o.Enum, "conditional jump must also be a jump")
		}
	}
	if len(table) > 256 {
		errs = append(errs, &SpecError{Index: -1, Msg: fmt.Sprintf("%d opcodes exceed the uint8 opcode space", len(table))})
	}
	return errs
}

// ByEnum returns the index of the op with the given enum name, or -1.
func ByEnum(table []Op, enum string) int {
	for i := range table {
		if table[i].Enum == enum {
			return i
		}
	}
	return -1
}
