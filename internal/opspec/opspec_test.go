package opspec

import (
	"strings"
	"testing"
)

// TestTableValidates pins the committed instruction set: the table the
// generator consumes must be free of structural mistakes.
func TestTableValidates(t *testing.T) {
	if errs := Validate(Table); len(errs) > 0 {
		for _, err := range errs {
			t.Error(err)
		}
	}
}

// TestTableInvariants checks spec-wide properties the validator cannot
// express per entry: the ABI prefix is frozen (NOP is opcode 0) and the
// table fits the one-byte opcode space with room to grow.
func TestTableInvariants(t *testing.T) {
	if Table[0].Enum != "NOP" {
		t.Errorf("opcode 0 is %s, want NOP", Table[0].Enum)
	}
	if len(Table) > 256 {
		t.Errorf("%d opcodes exceed the uint8 opcode space", len(Table))
	}
	for i := range Table {
		if ByEnum(Table, Table[i].Enum) != i {
			t.Errorf("ByEnum(%s) != %d", Table[i].Enum, i)
		}
	}
	if ByEnum(Table, "NOSUCH") != -1 {
		t.Error("ByEnum of unknown enum did not return -1")
	}
}

// valid returns a minimal well-formed op to mutate in rejection cases.
func valid() Op {
	return Op{Enum: "TESTOP", Name: "testop", Pops: 1, Pushes: 1, Cost: 8,
		Class: Pure, Kernel: "v0"}
}

// TestValidateRejects feeds the validator one malformed spec entry at a
// time and asserts a positioned error naming the offending op.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Op)
		wantMsg string
	}{
		{"unknown operand kind",
			func(o *Op) { o.Operands = OperandKind(200) },
			"unknown operand kind"},
		{"negative cost",
			func(o *Op) { o.Cost = -8 },
			"cost -8 is not positive"},
		{"zero cost",
			func(o *Op) { o.Cost = 0 },
			"cost 0 is not positive"},
		{"unreachable trap clause",
			func(o *Op) {
				o.Traps = []Trap{
					{Cond: "", Msg: "always"},
					{Cond: "b == 0", Msg: "never reached"},
				}
			},
			"unreachable"},
		{"trap clause without message",
			func(o *Op) { o.Traps = []Trap{{Cond: "b == 0"}} },
			"no message"},
		{"missing mnemonic",
			func(o *Op) { o.Name = "" },
			"missing enum or mnemonic"},
		{"invalid pop count",
			func(o *Op) { o.Pops = -1 },
			"invalid pop count"},
		{"negative push count",
			func(o *Op) { o.Pushes = -2 },
			"negative push count"},
		{"unknown group",
			func(o *Op) { o.Group = "strbin"; o.Scalar = "a + b"; o.Kernel = ""; o.Pops = 2 },
			"unknown group"},
		{"grouped op without scalar",
			func(o *Op) { o.Group = "intbin"; o.Kernel = ""; o.Pops = 2 },
			"no scalar expression"},
		{"grouped op with kernel",
			func(o *Op) { o.Group = "intbin"; o.Scalar = "a + b"; o.Pops = 2 },
			"must not also define a kernel"},
		{"grouped op wrong stack effect",
			func(o *Op) { o.Group = "intbin"; o.Scalar = "a + b"; o.Kernel = ""; o.Pops = 3 },
			"must pop 2 and push 1"},
		{"pure op without semantics",
			func(o *Op) { o.Kernel = "" },
			"neither group nor kernel"},
		{"pure op pushing two",
			func(o *Op) { o.Pushes = 2 },
			"must push exactly 1"},
		{"trapping control op",
			func(o *Op) {
				o.Class = Control
				o.Kernel = ""
				o.Traps = []Trap{{Cond: "b == 0", Msg: "boom"}}
			},
			"control op cannot carry trap clauses"},
		{"jump without target operand",
			func(o *Op) { o.Class = Control; o.Kernel = ""; o.Jump = true },
			"must take a target operand"},
		{"conditional jump that is not a jump",
			func(o *Op) {
				o.Class = Control
				o.Kernel = ""
				o.CondJump = true
				o.Operands = OpsTarget
			},
			"must also be a jump"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			op := valid()
			tc.mutate(&op)
			table := []Op{{Enum: "NOP", Name: "nop", Cost: 2, Class: Structural}, op}
			errs := Validate(table)
			if len(errs) == 0 {
				t.Fatalf("malformed op accepted: %+v", op)
			}
			found := false
			for _, err := range errs {
				se, ok := err.(*SpecError)
				if !ok {
					t.Fatalf("error is %T, want *SpecError: %v", err, err)
				}
				if se.Index != 1 {
					t.Errorf("error positioned at op %d, want 1: %v", se.Index, se)
				}
				if strings.Contains(se.Msg, tc.wantMsg) {
					found = true
				}
			}
			if !found {
				t.Errorf("no error mentions %q; got %v", tc.wantMsg, errs)
			}
		})
	}
}

// TestValidateRejectsDuplicates covers the cross-entry checks: duplicate
// enums and mnemonics are reported at the second occurrence.
func TestValidateRejectsDuplicates(t *testing.T) {
	a := valid()
	b := valid() // same enum and mnemonic
	errs := Validate([]Op{a, b})
	var msgs []string
	for _, err := range errs {
		se := err.(*SpecError)
		if se.Index != 1 {
			t.Errorf("duplicate reported at op %d, want 1: %v", se.Index, se)
		}
		msgs = append(msgs, se.Msg)
	}
	joined := strings.Join(msgs, "; ")
	if !strings.Contains(joined, "duplicate enum") || !strings.Contains(joined, "duplicate mnemonic") {
		t.Errorf("duplicate enum/mnemonic not both reported: %v", errs)
	}
}

// TestSpecErrorFormat pins the positioned rendering the generator prints.
func TestSpecErrorFormat(t *testing.T) {
	e := &SpecError{Index: 12, Enum: "IDIV", Msg: "boom"}
	if got := e.Error(); got != "opspec: op 12 (IDIV): boom" {
		t.Errorf("positioned error = %q", got)
	}
	tableLevel := &SpecError{Index: -1, Msg: "too many ops"}
	if got := tableLevel.Error(); got != "opspec: too many ops" {
		t.Errorf("table-level error = %q", got)
	}
}
