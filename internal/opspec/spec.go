package opspec

// Table is the instruction set, in opcode-value order. The order is ABI:
// opcode byte values, serialized programs, and experiment checksums all
// depend on it, so new ops are appended at the end and existing entries
// are never reordered or removed.
var Table = []Op{
	{Enum: "NOP", Name: "nop", Operands: OpsNone, Pops: 0, Pushes: 0, Cost: 2, Class: Structural},

	{Enum: "IPUSH", Name: "ipush", Operands: OpsImm, Pops: 0, Pushes: 1, Cost: 8, Class: Structural},
	{Enum: "CONST", Name: "const", Operands: OpsConst, Pops: 0, Pushes: 1, Cost: 8, Class: Structural},

	{Enum: "LOAD", Name: "load", Operands: OpsLocal, Pops: 0, Pushes: 1, Cost: 8, Class: Structural},
	{Enum: "STORE", Name: "store", Operands: OpsLocal, Pops: 1, Pushes: 0, Cost: 8, Class: Structural},
	{Enum: "GLOAD", Name: "gload", Operands: OpsGlobal, Pops: 0, Pushes: 1, Cost: 10, Class: Structural},
	{Enum: "GSTORE", Name: "gstore", Operands: OpsGlobal, Pops: 1, Pushes: 0, Cost: 10, Class: Structural},

	{Enum: "IINC", Name: "iinc", Operands: OpsLocImm, Pops: 0, Pushes: 0, Cost: 9, Class: Structural},

	{Enum: "POP", Name: "pop", Operands: OpsNone, Pops: 1, Pushes: 0, Cost: 6, Class: Structural},
	{Enum: "DUP", Name: "dup", Operands: OpsNone, Pops: 1, Pushes: 2, Cost: 7, Class: Structural},
	{Enum: "SWAP", Name: "swap", Operands: OpsNone, Pops: 2, Pushes: 2, Cost: 7, Class: Structural},

	// Integer arithmetic. Binary ops pop b then a and push a∘b; the
	// scalar expressions are over int64 a and b.
	{Enum: "IADD", Name: "iadd", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 8, Class: Pure, Group: "intbin", Scalar: "a + b"},
	{Enum: "ISUB", Name: "isub", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 8, Class: Pure, Group: "intbin", Scalar: "a - b"},
	{Enum: "IMUL", Name: "imul", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 10, Class: Pure, Group: "intbin", Scalar: "a * b"},
	{Enum: "IDIV", Name: "idiv", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 22, Class: Pure, Group: "intbin", Scalar: "a / b",
		Traps: []Trap{{Cond: "b == 0", Msg: "integer division by zero"}}},
	{Enum: "IMOD", Name: "imod", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 22, Class: Pure, Group: "intbin", Scalar: "a % b",
		Traps: []Trap{{Cond: "b == 0", Msg: "integer modulo by zero"}}},
	{Enum: "INEG", Name: "ineg", Operands: OpsNone, Pops: 1, Pushes: 1, Cost: 7, Class: Pure, Kernel: "bytecode.Int(-v0.I)"},
	{Enum: "IAND", Name: "iand", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 8, Class: Pure, Group: "intbin", Scalar: "a & b"},
	{Enum: "IOR", Name: "ior", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 8, Class: Pure, Group: "intbin", Scalar: "a | b"},
	{Enum: "IXOR", Name: "ixor", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 8, Class: Pure, Group: "intbin", Scalar: "a ^ b"},
	{Enum: "ISHL", Name: "ishl", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 8, Class: Pure, Group: "intbin", Scalar: "a << (uint64(b) & 63)"},
	{Enum: "ISHR", Name: "ishr", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 8, Class: Pure, Group: "intbin", Scalar: "a >> (uint64(b) & 63)"},
	{Enum: "INOT", Name: "inot", Operands: OpsNone, Pops: 1, Pushes: 1, Cost: 7, Class: Pure, Kernel: "bytecode.Int(^v0.I)"},

	// Float arithmetic; scalar expressions are over float64 a and b.
	{Enum: "FADD", Name: "fadd", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 10, Class: Pure, Group: "fltbin", Scalar: "a + b"},
	{Enum: "FSUB", Name: "fsub", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 10, Class: Pure, Group: "fltbin", Scalar: "a - b"},
	{Enum: "FMUL", Name: "fmul", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 12, Class: Pure, Group: "fltbin", Scalar: "a * b"},
	{Enum: "FDIV", Name: "fdiv", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 26, Class: Pure, Group: "fltbin", Scalar: "a / b"},
	{Enum: "FNEG", Name: "fneg", Operands: OpsNone, Pops: 1, Pushes: 1, Cost: 8, Class: Pure, Kernel: "bytecode.Float(-v0.AsFloat())"},
	{Enum: "FSQRT", Name: "fsqrt", Operands: OpsNone, Pops: 1, Pushes: 1, Cost: 32, Class: Pure, Kernel: "bytecode.Float(math.Sqrt(v0.AsFloat()))"},
	{Enum: "FABS", Name: "fabs", Operands: OpsNone, Pops: 1, Pushes: 1, Cost: 8, Class: Pure, Kernel: "bytecode.Float(math.Abs(v0.AsFloat()))"},

	// Conversions.
	{Enum: "I2F", Name: "i2f", Operands: OpsNone, Pops: 1, Pushes: 1, Cost: 8, Class: Pure, Kernel: "bytecode.Float(float64(v0.I))"},
	{Enum: "F2I", Name: "f2i", Operands: OpsNone, Pops: 1, Pushes: 1, Cost: 8, Class: Pure, Kernel: "bytecode.Int(int64(v0.F))"},

	// Comparisons push integer 1 or 0.
	{Enum: "IEQ", Name: "ieq", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 8, Class: Pure, Group: "intcmp", Scalar: "a == b"},
	{Enum: "INE", Name: "ine", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 8, Class: Pure, Group: "intcmp", Scalar: "a != b"},
	{Enum: "ILT", Name: "ilt", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 8, Class: Pure, Group: "intcmp", Scalar: "a < b"},
	{Enum: "ILE", Name: "ile", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 8, Class: Pure, Group: "intcmp", Scalar: "a <= b"},
	{Enum: "IGT", Name: "igt", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 8, Class: Pure, Group: "intcmp", Scalar: "a > b"},
	{Enum: "IGE", Name: "ige", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 8, Class: Pure, Group: "intcmp", Scalar: "a >= b"},
	{Enum: "FEQ", Name: "feq", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 9, Class: Pure, Group: "fltcmp", Scalar: "a == b"},
	{Enum: "FNE", Name: "fne", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 9, Class: Pure, Group: "fltcmp", Scalar: "a != b"},
	{Enum: "FLT", Name: "flt", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 9, Class: Pure, Group: "fltcmp", Scalar: "a < b"},
	{Enum: "FLE", Name: "fle", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 9, Class: Pure, Group: "fltcmp", Scalar: "a <= b"},
	{Enum: "FGT", Name: "fgt", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 9, Class: Pure, Group: "fltcmp", Scalar: "a > b"},
	{Enum: "FGE", Name: "fge", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 9, Class: Pure, Group: "fltcmp", Scalar: "a >= b"},

	// Control transfer.
	{Enum: "JMP", Name: "jmp", Operands: OpsTarget, Pops: 0, Pushes: 0, Cost: 6, Class: Control, Jump: true, Terminator: true},
	{Enum: "JZ", Name: "jz", Operands: OpsTarget, Pops: 1, Pushes: 0, Cost: 9, Class: Control, Jump: true, CondJump: true},
	{Enum: "JNZ", Name: "jnz", Operands: OpsTarget, Pops: 1, Pushes: 0, Cost: 9, Class: Control, Jump: true, CondJump: true},

	{Enum: "CALL", Name: "call", Operands: OpsCall, Pops: -1, Pushes: 1, Cost: 42, Class: Control},
	{Enum: "RET", Name: "ret", Operands: OpsNone, Pops: 1, Pushes: 0, Cost: 20, Class: Control, Terminator: true},

	// Heap arrays. The array-op bodies are tier scaffolding (they need
	// the engine's heap), but the trap clauses below drive the fusion
	// legality and loop-hoisting tables, and the rollback bookkeeping of
	// the batched tiers is generated from the CanTrap flag.
	{Enum: "NEWARR", Name: "newarr", Operands: OpsNone, Pops: 1, Pushes: 1, Cost: 40, Class: Structural, Alloc: true,
		Traps: []Trap{{Cond: "allocation exceeds the heap budget", Msg: "%v"}}},
	{Enum: "ALOAD", Name: "aload", Operands: OpsNone, Pops: 2, Pushes: 1, Cost: 12, Class: Structural,
		Traps: []Trap{{Cond: "dead array reference or index out of bounds", Msg: "aload: %v"}}},
	{Enum: "ASTORE", Name: "astore", Operands: OpsNone, Pops: 3, Pushes: 0, Cost: 12, Class: Structural,
		Traps: []Trap{{Cond: "dead array reference or index out of bounds", Msg: "astore: %v"}}},
	{Enum: "ALEN", Name: "alen", Operands: OpsNone, Pops: 1, Pushes: 1, Cost: 8, Class: Structural,
		Traps: []Trap{{Cond: "dead array reference", Msg: "alen: %v"}}},

	{Enum: "PRINT", Name: "print", Operands: OpsNone, Pops: 1, Pushes: 0, Cost: 60, Class: Structural},

	{Enum: "HALT", Name: "halt", Operands: OpsNone, Pops: 0, Pushes: 0, Cost: 1, Class: Control, Terminator: true},

	// Ops below were added after the v0 instruction set; appended here so
	// every earlier opcode keeps its byte value.

	// SELECT pops a condition c, then b, then a (a pushed first) and
	// pushes a when c is true, else b — a branch-free conditional move.
	{Enum: "SELECT", Name: "select", Operands: OpsNone, Pops: 3, Pushes: 1, Cost: 8, Class: Pure, KernelStmts: true,
		Kernel: "if v2.IsTrue() {\n\treturn v0\n}\nreturn v1"},
	// IABS pushes the absolute value of an integer (math.MinInt64 maps to
	// itself, matching Go negation).
	{Enum: "IABS", Name: "iabs", Operands: OpsNone, Pops: 1, Pushes: 1, Cost: 7, Class: Pure, KernelStmts: true,
		Kernel: "if v0.I < 0 {\n\treturn bytecode.Int(-v0.I)\n}\nreturn bytecode.Int(v0.I)"},
}
