// Package sched provides a deterministic bounded-worker scheduler for
// experiment work units. Tasks form a DAG: each task may depend on tasks
// registered before it (insertion order is therefore a topological
// order, and cycles are impossible by construction). Workers always pick
// the ready task with the lowest insertion index, and every task writes
// its result into its own pre-allocated slot, so the *set* of executed
// work and all merged outputs are identical whether the graph runs on
// one worker or many — determinism comes from the dependency structure,
// not from scheduling luck.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
)

// ProfileLabels, when enabled, wraps every task in a runtime/pprof label
// set (sched_task = the task's key) so CPU profiles attribute worker time
// by experiment work unit; the labeled context flows into the task, so
// exec's per-run labels nest under it. Off by default: label sets
// allocate per task, and the profiling CLIs switch this on only when a
// profile was requested.
var ProfileLabels = false

// Task is one unit of work. It receives the graph's context, which is
// canceled as soon as any task fails.
type Task func(ctx context.Context) error

// Graph is a dependency graph of tasks built once and run once.
type Graph struct {
	tasks []node
	byKey map[string]int
}

type node struct {
	key  string
	run  Task
	deps []int
	done bool // pre-satisfied (e.g. restored from a checkpoint)
}

// NewGraph returns an empty task graph.
func NewGraph() *Graph {
	return &Graph{byKey: make(map[string]int)}
}

// Add registers a task under key, depending on previously registered
// keys. Unknown dependencies and duplicate keys panic: graph shape is
// static program structure, and a malformed graph is a programming
// error, not a runtime condition.
func (g *Graph) Add(key string, run Task, deps ...string) {
	if _, ok := g.byKey[key]; ok {
		panic(fmt.Sprintf("sched: duplicate task %q", key))
	}
	n := node{key: key, run: run, deps: make([]int, 0, len(deps))}
	for _, d := range deps {
		idx, ok := g.byKey[d]
		if !ok {
			panic(fmt.Sprintf("sched: task %q depends on unregistered %q", key, d))
		}
		n.deps = append(n.deps, idx)
	}
	g.byKey[key] = len(g.tasks)
	g.tasks = append(g.tasks, n)
}

// Done marks key as already satisfied: its task will not run, and
// dependents treat it as complete. Used for work units restored from a
// checkpoint.
func (g *Graph) Done(key string) {
	idx, ok := g.byKey[key]
	if !ok {
		panic(fmt.Sprintf("sched: Done on unregistered task %q", key))
	}
	g.tasks[idx].done = true
}

// Run executes the graph on at most workers goroutines (min 1). It
// returns the first error in task-insertion order — preferring real
// failures over the cancellation errors they induce in downstream
// tasks — so the reported error is the same regardless of worker count.
// On error, remaining tasks are abandoned and the shared context is
// canceled.
func (g *Graph) Run(ctx context.Context, workers int) error {
	if workers < 1 {
		workers = 1
	}
	if len(g.tasks) == 0 {
		return nil
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		pending  = make([]int, len(g.tasks)) // unmet dep counts
		state    = make([]int, len(g.tasks)) // 0 waiting, 1 running, 2 done
		errs     = make([]error, len(g.tasks))
		failed   bool
		remained = 0
	)
	dependents := make([][]int, len(g.tasks))
	for i, t := range g.tasks {
		if t.done {
			state[i] = 2
			continue
		}
		remained++
		pending[i] = 0
		for _, d := range t.deps {
			if !g.tasks[d].done {
				pending[i]++
				dependents[d] = append(dependents[d], i)
			}
		}
	}
	// deps always have lower indices than dependents, so a dependent
	// counts only not-yet-done tasks and no count is ever missed.

	next := func() (int, bool) {
		// Lowest-index ready task. Linear scan keeps the policy obvious;
		// graphs are tens to hundreds of tasks, not millions.
		for i := range g.tasks {
			if state[i] == 0 && pending[i] == 0 {
				return i, true
			}
		}
		return -1, false
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				var idx int
				for {
					if failed || remained == 0 {
						mu.Unlock()
						cond.Broadcast()
						return
					}
					var ok bool
					if idx, ok = next(); ok {
						break
					}
					cond.Wait()
				}
				state[idx] = 1
				mu.Unlock()

				err := g.runTask(runCtx, idx)

				mu.Lock()
				state[idx] = 2
				remained--
				if err != nil {
					errs[idx] = err
					failed = true
					cancel()
				} else {
					for _, d := range dependents[idx] {
						pending[d]--
					}
				}
				mu.Unlock()
				cond.Broadcast()
			}
		}()
	}
	wg.Wait()

	// Deterministic error selection: lowest-index non-cancellation error,
	// falling back to the lowest-index error of any kind.
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if fallback == nil {
			fallback = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return fallback
}

// runTask executes one task, under a pprof label set when profiling is
// enabled. The labeled context is handed to the task so every run it
// spawns inherits the sched_task label.
func (g *Graph) runTask(ctx context.Context, idx int) error {
	if !ProfileLabels {
		return g.tasks[idx].run(ctx)
	}
	var err error
	pprof.Do(ctx, pprof.Labels("sched_task", g.tasks[idx].key), func(ctx context.Context) {
		err = g.tasks[idx].run(ctx)
	})
	return err
}
