package sched

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestChainsSerialOrder asserts per-chain submission order is execution
// order regardless of worker count.
func TestChainsSerialOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := NewChains(workers)
			var mu sync.Mutex
			logs := map[string][]int{}
			for i := 0; i < 200; i++ {
				chain := fmt.Sprintf("c%d", i%7)
				i := i
				c.Go(chain, func() {
					mu.Lock()
					logs[chain] = append(logs[chain], i)
					mu.Unlock()
				})
			}
			c.Close()
			for chain, seq := range logs {
				for j := 1; j < len(seq); j++ {
					if seq[j] <= seq[j-1] {
						t.Fatalf("chain %s ran out of order: %v", chain, seq)
					}
				}
			}
		})
	}
}

// TestChainsBarrier asserts a barrier sees exactly the tasks submitted
// before it, and no later task starts before the barrier returns.
func TestChainsBarrier(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := NewChains(workers)
			var mu sync.Mutex
			done := map[int]bool{}
			var snapshots [][]int

			total := 0
			for epoch := 0; epoch < 4; epoch++ {
				for i := 0; i < 25; i++ {
					id := total
					total++
					c.Go(fmt.Sprintf("c%d", i%5), func() {
						mu.Lock()
						done[id] = true
						mu.Unlock()
					})
				}
				want := total
				c.Barrier(func() {
					mu.Lock()
					var seen []int
					for id := range done {
						seen = append(seen, id)
					}
					mu.Unlock()
					if len(seen) != want {
						t.Errorf("barrier after %d submissions saw %d completions", want, len(seen))
					}
					snapshots = append(snapshots, seen)
				})
			}
			c.Close()
			if len(snapshots) != 4 {
				t.Fatalf("ran %d barriers, want 4", len(snapshots))
			}
		})
	}
}

// TestChainsBarrierExclusive asserts no task submitted after a barrier
// starts while the barrier body is still running — the publication
// window the serving tier relies on. Tasks both sides of a slow barrier
// record whether they observed it mid-flight.
func TestChainsBarrierExclusive(t *testing.T) {
	for _, workers := range []int{2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := NewChains(workers)
			var mu sync.Mutex
			inBarrier := false
			violations := 0
			for epoch := 0; epoch < 20; epoch++ {
				for i := 0; i < 10; i++ {
					c.Go(fmt.Sprintf("c%d", i), func() {
						mu.Lock()
						if inBarrier {
							violations++
						}
						mu.Unlock()
					})
				}
				c.Barrier(func() {
					mu.Lock()
					inBarrier = true
					mu.Unlock()
					// Widen the window: a pre-fix scheduler starts queued
					// tasks here while the barrier body runs.
					for i := 0; i < 1000; i++ {
						mu.Lock()
						mu.Unlock() //lint:ignore SA2001 deliberate contention window
					}
					mu.Lock()
					inBarrier = false
					mu.Unlock()
				})
			}
			c.Close()
			if violations > 0 {
				t.Fatalf("%d tasks started while a barrier body was running", violations)
			}
		})
	}
}

// TestChainsDeterministicEffects runs the same workload at several worker
// counts: per-chain effect logs and barrier-published aggregates must be
// identical, the determinism contract internal/serve relies on.
func TestChainsDeterministicEffects(t *testing.T) {
	run := func(workers int) (map[string][]int, []int) {
		c := NewChains(workers)
		var mu sync.Mutex
		state := map[string][]int{} // per-chain private state
		var published []int         // global tier, touched only at barriers
		n := 0
		for epoch := 0; epoch < 3; epoch++ {
			for i := 0; i < 40; i++ {
				chain := fmt.Sprintf("t%d/b%d", i%4, i%3)
				v := n
				n++
				c.Go(chain, func() {
					mu.Lock() // protects the map shell; values are per-chain
					state[chain] = append(state[chain], v)
					mu.Unlock()
				})
			}
			c.Barrier(func() {
				sum := 0
				mu.Lock()
				for _, s := range state {
					for _, v := range s {
						sum += v
					}
				}
				mu.Unlock()
				published = append(published, sum)
			})
		}
		c.Close()
		return state, published
	}
	baseState, basePub := run(1)
	for _, workers := range []int{2, 4, 8} {
		state, pub := run(workers)
		if !reflect.DeepEqual(state, baseState) {
			t.Fatalf("workers=%d: chain state diverged from serial", workers)
		}
		if !reflect.DeepEqual(pub, basePub) {
			t.Fatalf("workers=%d: barrier publications diverged: %v vs %v", workers, pub, basePub)
		}
	}
}

// TestChainsWait asserts Wait drains without closing, allowing reuse.
func TestChainsWait(t *testing.T) {
	c := NewChains(4)
	var mu sync.Mutex
	count := 0
	for i := 0; i < 50; i++ {
		c.Go("a", func() { mu.Lock(); count++; mu.Unlock() })
	}
	c.Wait()
	mu.Lock()
	got := count
	mu.Unlock()
	if got != 50 {
		t.Fatalf("after Wait: %d tasks ran, want 50", got)
	}
	c.Go("a", func() { mu.Lock(); count++; mu.Unlock() })
	c.Close()
	if count != 51 {
		t.Fatalf("after Close: %d tasks ran, want 51", count)
	}
}

// TestChainsPanic asserts a panicking task surfaces at Close instead of
// deadlocking the executor.
func TestChainsPanic(t *testing.T) {
	c := NewChains(2)
	c.Go("a", func() { panic("boom") })
	c.Go("b", func() {})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	c.Close()
}
