package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDependencyOrder asserts every task observes its dependencies
// complete, at every worker count.
func TestDependencyOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		g := NewGraph()
		var mu sync.Mutex
		done := map[string]bool{}
		mark := func(key string, deps ...string) Task {
			return func(ctx context.Context) error {
				mu.Lock()
				defer mu.Unlock()
				for _, d := range deps {
					if !done[d] {
						return fmt.Errorf("%s ran before dependency %s", key, d)
					}
				}
				done[key] = true
				return nil
			}
		}
		g.Add("a", mark("a"))
		g.Add("b", mark("b", "a"), "a")
		g.Add("c", mark("c", "a"), "a")
		g.Add("d", mark("d", "b", "c"), "b", "c")
		if err := g.Run(context.Background(), workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(done) != 4 {
			t.Fatalf("workers=%d: ran %d tasks, want 4", workers, len(done))
		}
	}
}

// TestSerialRunsInInsertionOrder pins the one-worker policy: ready tasks
// run lowest-insertion-index first, so a serial run is fully ordered.
func TestSerialRunsInInsertionOrder(t *testing.T) {
	g := NewGraph()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		g.Add(fmt.Sprint(i), func(ctx context.Context) error {
			order = append(order, i)
			return nil
		})
	}
	if err := g.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("position %d ran task %d; full order %v", i, got, order)
		}
	}
}

// TestErrorDeterministic asserts the reported error does not depend on
// worker count: the lowest-index non-cancellation failure wins even when
// a later (or concurrent) task fails too.
func TestErrorDeterministic(t *testing.T) {
	errA := errors.New("failure a")
	errB := errors.New("failure b")
	for _, workers := range []int{1, 2, 8} {
		g := NewGraph()
		g.Add("slow-fail", func(ctx context.Context) error {
			time.Sleep(10 * time.Millisecond)
			return errA
		})
		g.Add("fast-fail", func(ctx context.Context) error { return errB })
		err := g.Run(context.Background(), workers)
		if workers == 1 {
			// Serial: slow-fail runs first and aborts the graph.
			if !errors.Is(err, errA) {
				t.Fatalf("workers=1: got %v, want %v", err, errA)
			}
			continue
		}
		// Parallel: both may fail; the lowest-index error must be chosen.
		if !errors.Is(err, errA) && !errors.Is(err, errB) {
			t.Fatalf("workers=%d: got %v", workers, err)
		}
	}
}

// TestErrorPrefersRealOverCancellation: a root-cause failure beats the
// context-cancellation errors it induces downstream, regardless of index.
func TestErrorPrefersRealOverCancellation(t *testing.T) {
	boom := errors.New("root cause")
	g := NewGraph()
	g.Add("canceled-victim", func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	g.Add("boom", func(ctx context.Context) error {
		time.Sleep(5 * time.Millisecond)
		return boom
	})
	err := g.Run(context.Background(), 2)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the root-cause error", err)
	}
}

// TestDoneSkipsTask: pre-satisfied tasks never run, and their dependents
// become ready immediately — the checkpoint-resume mechanism.
func TestDoneSkipsTask(t *testing.T) {
	g := NewGraph()
	ran := map[string]bool{}
	g.Add("cached", func(ctx context.Context) error { ran["cached"] = true; return nil })
	g.Add("dependent", func(ctx context.Context) error { ran["dependent"] = true; return nil }, "cached")
	g.Done("cached")
	if err := g.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if ran["cached"] {
		t.Error("pre-satisfied task ran anyway")
	}
	if !ran["dependent"] {
		t.Error("dependent of a pre-satisfied task never ran")
	}
}

// TestAllDone: a graph whose tasks are all pre-satisfied returns at once.
func TestAllDone(t *testing.T) {
	g := NewGraph()
	g.Add("a", func(ctx context.Context) error { return errors.New("must not run") })
	g.Done("a")
	if err := g.Run(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyGraph runs trivially.
func TestEmptyGraph(t *testing.T) {
	if err := NewGraph().Run(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
}

// TestFailureAbandonsRemaining: after a failure, tasks that were not yet
// started are abandoned rather than run.
func TestFailureAbandonsRemaining(t *testing.T) {
	g := NewGraph()
	var after atomic.Bool
	g.Add("fail", func(ctx context.Context) error { return errors.New("boom") })
	g.Add("later", func(ctx context.Context) error { after.Store(true); return nil }, "fail")
	if err := g.Run(context.Background(), 1); err == nil {
		t.Fatal("graph with failing task returned nil")
	}
	if after.Load() {
		t.Error("dependent of a failed task ran")
	}
}

// TestContextCancelPropagates: canceling the caller's context surfaces
// through running tasks as a cancellation error.
func TestContextCancelPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGraph()
	g.Add("waits", func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	err := g.Run(ctx, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestWorkerPoolIsBounded: at most `workers` tasks execute concurrently.
func TestWorkerPoolIsBounded(t *testing.T) {
	const workers = 3
	g := NewGraph()
	var cur, peak atomic.Int32
	for i := 0; i < 20; i++ {
		g.Add(fmt.Sprint(i), func(ctx context.Context) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Run(context.Background(), workers); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, want <= %d", p, workers)
	}
}

func TestMalformedGraphPanics(t *testing.T) {
	expectPanic := func(name, want string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
				t.Errorf("%s: panic %q does not mention %q", name, msg, want)
			}
		}()
		f()
	}
	expectPanic("duplicate key", "duplicate", func() {
		g := NewGraph()
		g.Add("a", nil)
		g.Add("a", nil)
	})
	expectPanic("unknown dep", "unregistered", func() {
		g := NewGraph()
		g.Add("a", nil, "ghost")
	})
	expectPanic("Done on unknown", "unregistered", func() {
		NewGraph().Done("ghost")
	})
}
