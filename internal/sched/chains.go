package sched

import (
	"container/list"
	"sync"
)

// Chains is the dynamic counterpart of Graph: a bounded-worker executor
// for tasks that arrive at runtime, ordered by named serial chains and
// global barriers rather than by a pre-built DAG. It is the scheduling
// substrate of the serving front end (internal/serve), where requests
// arrive over time and the dependency structure — per-(tenant,benchmark)
// state chains plus epoch publication barriers — is only known as they
// are admitted.
//
// Ordering guarantees, independent of worker count:
//
//   - Tasks submitted to the same chain run serially, in submission order.
//   - A barrier runs alone: every task submitted before it completes
//     first, and no task submitted after it starts until it returns.
//   - Tasks on different chains between two barriers run concurrently in
//     any order.
//
// Determinism therefore comes from the submission order and the chain
// names, not from scheduling luck: if tasks on distinct chains share no
// mutable state except what barriers publish, every observable outcome is
// a pure function of the submission sequence (the argument mirrors
// Graph's; see DESIGN.md §11).
type Chains struct {
	mu sync.Mutex
	// workCond wakes workers when a task may have become runnable;
	// doneCond wakes Wait/Close when pending work finishes. Splitting
	// them keeps every task completion from broadcasting to drain
	// waiters, and lets a submission wake exactly one worker instead of
	// all of them.
	workCond *sync.Cond
	doneCond *sync.Cond

	queue     *list.List // *chainTask in submission order
	busy      map[string]bool
	inBarrier bool // a barrier body is running; nothing else may start
	active    int  // tasks currently running (including a barrier)
	pending   int  // tasks submitted and not yet finished
	closed    bool
	panicV    any // first panic raised by a task, rethrown by Wait/Close

	workers int
	wg      sync.WaitGroup
}

type chainTask struct {
	chain   string
	barrier bool
	fn      func()
}

// NewChains starts a chain executor with the given worker count (min 1).
func NewChains(workers int) *Chains {
	if workers < 1 {
		workers = 1
	}
	c := &Chains{
		queue:   list.New(),
		busy:    make(map[string]bool),
		workers: workers,
	}
	c.workCond = sync.NewCond(&c.mu)
	c.doneCond = sync.NewCond(&c.mu)
	c.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go c.work()
	}
	return c
}

// Go submits fn to the named chain. It never blocks on execution: the
// task runs when the chain's earlier tasks and any earlier barriers have
// completed. Submitting to a closed executor panics (a programming
// error, like sending on a closed channel).
func (c *Chains) Go(chain string, fn func()) {
	c.submit(&chainTask{chain: chain, fn: fn})
}

// Barrier submits fn as a global barrier: it runs alone, after every
// previously submitted task and before any later one. Barriers are where
// the caller may safely read or publish state shared across chains.
func (c *Chains) Barrier(fn func()) {
	c.submit(&chainTask{barrier: true, fn: fn})
}

func (c *Chains) submit(t *chainTask) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		panic("sched: submit on closed Chains")
	}
	c.queue.PushBack(t)
	c.pending++
	c.mu.Unlock()
	// One new task can occupy at most one idle worker.
	c.workCond.Signal()
}

// next pops the first runnable task under c.mu, or returns nil. Only
// tasks before the first queued barrier are candidates, so a barrier
// partitions the queue exactly as documented.
func (c *Chains) next() *chainTask {
	if c.inBarrier {
		// The barrier task has been popped but its body is still running;
		// it must finish before anything submitted after it may start.
		return nil
	}
	for el := c.queue.Front(); el != nil; el = el.Next() {
		t := el.Value.(*chainTask)
		if t.barrier {
			// A barrier is runnable only when it is the queue head and
			// nothing is in flight; it blocks everything behind it.
			if el == c.queue.Front() && c.active == 0 {
				c.queue.Remove(el)
				return t
			}
			return nil
		}
		if !c.busy[t.chain] {
			c.queue.Remove(el)
			return t
		}
	}
	return nil
}

func (c *Chains) work() {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		var t *chainTask
		for {
			if c.closed && c.pending == 0 {
				c.mu.Unlock()
				return
			}
			if t = c.next(); t != nil {
				break
			}
			c.workCond.Wait()
		}
		c.active++
		if t.barrier {
			c.inBarrier = true
		} else {
			c.busy[t.chain] = true
		}
		c.mu.Unlock()

		c.run(t)

		c.mu.Lock()
		c.active--
		c.pending--
		if t.barrier {
			c.inBarrier = false
		} else {
			delete(c.busy, t.chain)
		}
		done := c.pending == 0
		c.mu.Unlock()
		// A completion can unblock several tasks at once (a finished
		// barrier releases every chain head behind it), so workers get a
		// broadcast; drain waiters only care about pending reaching zero.
		c.workCond.Broadcast()
		if done {
			c.doneCond.Broadcast()
		}
	}
}

// run executes one task, capturing the first panic so Wait can rethrow
// it instead of deadlocking on a never-finished task.
func (c *Chains) run(t *chainTask) {
	defer func() {
		if r := recover(); r != nil {
			c.mu.Lock()
			if c.panicV == nil {
				c.panicV = r
			}
			c.mu.Unlock()
		}
	}()
	t.fn()
}

// Wait blocks until every submitted task has finished. If any task
// panicked, Wait rethrows the first panic value.
func (c *Chains) Wait() {
	c.mu.Lock()
	for c.pending > 0 {
		c.doneCond.Wait()
	}
	p := c.panicV
	c.mu.Unlock()
	if p != nil {
		panic(p)
	}
}

// Close waits for all submitted work and stops the workers. Like Wait it
// rethrows the first task panic. The executor cannot be reused.
func (c *Chains) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.workCond.Broadcast()
	c.mu.Lock()
	for c.pending > 0 {
		c.doneCond.Wait()
	}
	p := c.panicV
	c.mu.Unlock()
	c.workCond.Broadcast()
	c.wg.Wait()
	if p != nil {
		panic(p)
	}
}
