package session_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"evolvevm/internal/core"
	"evolvevm/internal/programs"
	"evolvevm/internal/session"
)

// counterState is a CrossRunState with its own lock, standing in for
// foreign components in the Attach/Save race below.
type counterState struct {
	mu      sync.Mutex
	version int64
}

func (c *counterState) Snapshot() (json.RawMessage, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.Marshal(c.version)
}

func (c *counterState) Restore(blob json.RawMessage) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.Unmarshal(blob, &c.version)
}

// TestSaveRacesAttachAndCompleteUnit hammers Save concurrently with
// Attach and CompleteUnit under the race detector: every produced
// checkpoint must decode cleanly.
func TestSaveRacesAttachAndCompleteUnit(t *testing.T) {
	s := session.New()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // attacher: continually re-attaches components (the resume pattern)
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Attach(fmt.Sprintf("comp%d", i%4), &counterState{version: int64(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // unit completer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.CompleteUnit(fmt.Sprintf("unit%d", i%64), json.RawMessage(`1`))
			s.Unit(fmt.Sprintf("unit%d", (i+1)%64))
			s.UnitKeys()
		}
	}()

	for i := 0; i < 100; i++ {
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := session.Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("checkpoint does not decode: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSaveAtomicWithRunCommit asserts the commit-lock protocol: a writer
// that brackets [state commit, CompleteUnit] with BeginRun/EndRun can
// never be split by a concurrent Save — in every checkpoint the
// repository's recorded run count equals the number of completed units.
// Before Save pre-acquired component commit locks, a Save interleaved
// between the commit and CompleteUnit produced a checkpoint whose resume
// would replay a run the learner had already absorbed.
func TestSaveAtomicWithRunCommit(t *testing.T) {
	prog, err := programs.Compress().Program()
	if err != nil {
		t.Fatal(err)
	}
	st := session.NewBenchState(prog, core.DefaultConfig())
	s := session.New()
	if err := s.Attach("bench", st); err != nil {
		t.Fatal(err)
	}

	const commits = 300
	work := make([]int64, len(prog.Funcs))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < commits; i++ {
			st.BeginRun()
			// Commit: mutate learned state outside BenchState.mu, exactly
			// like a run's controller does, then record the unit.
			st.Repo().RecordWork(work)
			s.CompleteUnit(fmt.Sprintf("run%d", i), json.RawMessage(`1`))
			st.EndRun()
		}
	}()

	check := func() int {
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		chk, err := session.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		st2 := session.NewBenchState(prog, core.DefaultConfig())
		if err := chk.Attach("bench", st2); err != nil {
			t.Fatal(err)
		}
		runs, units := st2.Repo().Runs(), len(chk.UnitKeys())
		if runs != units {
			t.Fatalf("torn checkpoint: repository has %d runs but %d units completed", runs, units)
		}
		return units
	}
	for {
		check()
		select {
		case <-done:
			if got := check(); got != commits {
				t.Fatalf("final checkpoint has %d units, want %d", got, commits)
			}
			return
		default:
		}
	}
}

// TestSnapshotNeverTearsMidCommit races BenchState.Snapshot against
// BeginRun/EndRun-bracketed commits: every snapshot must restore cleanly
// into a fresh state, and its run count reflects a commit boundary.
func TestSnapshotNeverTearsMidCommit(t *testing.T) {
	prog, err := programs.Compress().Program()
	if err != nil {
		t.Fatal(err)
	}
	st := session.NewBenchState(prog, core.DefaultConfig())
	work := make([]int64, len(prog.Funcs))

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			st.BeginRun()
			st.Repo().RecordWork(work)
			st.EndRun()
		}
	}()
	for {
		blob, err := st.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		st2 := session.NewBenchState(prog, core.DefaultConfig())
		if err := st2.Restore(blob); err != nil {
			t.Fatalf("snapshot does not restore: %v", err)
		}
		select {
		case <-done:
			return
		default:
		}
	}
}
