package session

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/core"
	"evolvevm/internal/rep"
	"evolvevm/internal/xicl"
)

// BenchState bundles one benchmark's cross-run state: the Evolve
// learner, the Rep repository, the optional GC selector, and the
// memoized Default-scenario baselines. It implements CrossRunState so a
// whole benchmark's learned state checkpoints and resumes as one blob.
//
// Locking: the defaults map is written concurrently by parallel baseline
// measurements; the learners are only touched from their (serial) run
// sequences, but Snapshot/Restore may race with baseline warming, so one
// mutex covers everything.
//
// The learners themselves (Evolver, Repository, GCSelector) have no
// internal locks: a run's controller mutates them directly when the run
// commits (Controller.OnRunEnd). runMu is the commit lock that keeps
// Snapshot consistent with that: the executing layer brackets every
// state-mutating run with BeginRun/EndRun, and Snapshot/Restore acquire
// runMu first, so a snapshot observes the state strictly between run
// commits — never a half-applied one. Lock order: runMu, then mu; and
// never a session lock while holding either (see Session.Save).
type BenchState struct {
	runMu sync.Mutex
	mu    sync.Mutex
	prog  *bytecode.Program

	evolveCfg core.Config
	gcCfg     core.Config

	evolver  *core.Evolver
	repo     *rep.Repository
	gcsel    *core.GCSelector
	defaults map[string]int64
	fvcache  *xicl.FVCache
}

var _ CrossRunState = (*BenchState)(nil)

// NewBenchState returns fresh cross-run state for prog.
func NewBenchState(prog *bytecode.Program, evolveCfg core.Config) *BenchState {
	b := &BenchState{prog: prog, evolveCfg: evolveCfg}
	b.reset()
	return b
}

func (b *BenchState) reset() {
	b.evolver = core.NewEvolver(b.prog, b.evolveCfg)
	b.repo = rep.NewRepository(b.prog)
	b.gcsel = nil
	if b.defaults == nil {
		b.defaults = make(map[string]int64)
	}
	if b.fvcache == nil {
		b.fvcache = xicl.NewFVCache()
	}
}

// Reset clears the learned state (Evolve models, Rep history, GC
// selector) while keeping the memoized default baselines — those are
// deterministic properties of the inputs, not learned state.
func (b *BenchState) Reset() {
	b.runMu.Lock()
	defer b.runMu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reset()
}

// BeginRun acquires the state's commit lock for one state-mutating run.
// The run's controller mutates the learners without further locking; a
// concurrent Snapshot waits at the commit boundary instead of observing a
// torn state. Callers must pair it with EndRun. Completing session
// units inside the bracket is fine (CompleteUnit takes only the session
// mutex); saving the owning session is not — Save acquires this same
// commit lock and would deadlock.
func (b *BenchState) BeginRun() { b.runMu.Lock() }

// EndRun releases the commit lock taken by BeginRun.
func (b *BenchState) EndRun() { b.runMu.Unlock() }

// Evolver returns the benchmark's Evolve learner.
func (b *BenchState) Evolver() *core.Evolver {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.evolver
}

// SetEvolver replaces the learner (e.g. one loaded from a legacy
// single-learner state file).
func (b *BenchState) SetEvolver(ev *core.Evolver) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.evolver = ev
}

// Repo returns the benchmark's Rep repository.
func (b *BenchState) Repo() *rep.Repository {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.repo
}

// GCSelector returns the benchmark's GC selector, creating it with cfg
// on first use (later calls ignore cfg).
func (b *BenchState) GCSelector(cfg core.Config) *core.GCSelector {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.gcsel == nil {
		b.gcCfg = cfg
		b.gcsel = core.NewGCSelector(cfg)
	}
	return b.gcsel
}

// FVCache returns the benchmark's feature-vector memo. Like the default
// baselines it survives Reset and is excluded from Snapshot/Restore:
// feature extraction is a deterministic property of the inputs, not
// learned state, so the cache is always safe to rebuild and never worth
// serializing.
func (b *BenchState) FVCache() *xicl.FVCache {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fvcache
}

// DefaultCycles returns the memoized Default-scenario cycles of an input.
func (b *BenchState) DefaultCycles(inputID string) (int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.defaults[inputID]
	return c, ok
}

// SetDefaultCycles memoizes an input's Default-scenario cycles.
func (b *BenchState) SetDefaultCycles(inputID string, cycles int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.defaults[inputID] = cycles
}

// benchBlob is BenchState's serialized form. The learners' own Save
// formats are embedded verbatim, so the per-component golden tests cover
// the session checkpoint too.
type benchBlob struct {
	Program    string           `json:"program"`
	Evolver    json.RawMessage  `json:"evolver,omitempty"`
	Repository json.RawMessage  `json:"repository,omitempty"`
	GCConfig   *core.Config     `json:"gcconfig,omitempty"`
	GCSelector json.RawMessage  `json:"gcselector,omitempty"`
	Defaults   map[string]int64 `json:"defaults,omitempty"`
}

// Snapshot implements CrossRunState. It acquires the commit lock, so a
// snapshot taken while runs are in flight captures the state at a run
// boundary, never mid-commit.
func (b *BenchState) Snapshot() (json.RawMessage, error) {
	b.runMu.Lock()
	defer b.runMu.Unlock()
	return b.snapshotLocked()
}

// snapshotLocked is Snapshot with the commit lock already held — the path
// Session.Save uses after pre-acquiring every component's commit lock.
func (b *BenchState) snapshotLocked() (json.RawMessage, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	blob := benchBlob{Program: b.prog.Name, Defaults: b.defaults}
	var buf bytes.Buffer
	if err := b.evolver.Save(&buf); err != nil {
		return nil, err
	}
	blob.Evolver = append(json.RawMessage(nil), buf.Bytes()...)
	buf.Reset()
	if err := b.repo.Save(&buf); err != nil {
		return nil, err
	}
	blob.Repository = append(json.RawMessage(nil), buf.Bytes()...)
	if b.gcsel != nil {
		buf.Reset()
		if err := b.gcsel.Save(&buf); err != nil {
			return nil, err
		}
		cfg := b.gcCfg
		blob.GCConfig = &cfg
		blob.GCSelector = append(json.RawMessage(nil), buf.Bytes()...)
	}
	return json.Marshal(blob)
}

// Restore implements CrossRunState. Like Snapshot it waits for any
// in-flight run to commit before replacing the state.
func (b *BenchState) Restore(raw json.RawMessage) error {
	var blob benchBlob
	if err := json.Unmarshal(raw, &blob); err != nil {
		return fmt.Errorf("session: bench state: %w", err)
	}
	b.runMu.Lock()
	defer b.runMu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	if blob.Program != b.prog.Name {
		return fmt.Errorf("session: bench state is for program %q, not %q", blob.Program, b.prog.Name)
	}
	b.reset()
	if len(blob.Evolver) > 0 {
		ev, err := core.LoadEvolver(b.prog, b.evolveCfg, bytes.NewReader(blob.Evolver))
		if err != nil {
			return err
		}
		b.evolver = ev
	}
	if len(blob.Repository) > 0 {
		repo, err := rep.LoadRepository(b.prog, bytes.NewReader(blob.Repository))
		if err != nil {
			return err
		}
		b.repo = repo
	}
	if len(blob.GCSelector) > 0 {
		cfg := b.evolveCfg
		if blob.GCConfig != nil {
			cfg = *blob.GCConfig
		}
		sel, err := core.LoadGCSelector(cfg, bytes.NewReader(blob.GCSelector))
		if err != nil {
			return err
		}
		b.gcCfg = cfg
		b.gcsel = sel
	}
	for id, c := range blob.Defaults {
		b.defaults[id] = c
	}
	return nil
}
