// Package session is the cross-run state layer of the system. Where
// internal/exec executes one stateless run, a Session owns everything
// that outlives a run — the Evolve learner, the Rep repository, the GC
// selector, the memoized default-cycles baselines — behind the
// CrossRunState interface, plus the memoized outputs of completed
// experiment work units. A Session serializes completely, so a process
// can checkpoint mid-experiment and a later process can resume it with
// bit-identical results (see DESIGN.md §8).
package session

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// CrossRunState is state that persists across runs and survives process
// restarts. Snapshot captures the full state as an opaque blob; Restore
// replaces the state from a blob. Snapshot-then-Restore must be a
// semantic no-op: after a Restore, all future behaviour (predictions,
// plans, confidences) is bit-identical to the snapshotted original.
type CrossRunState interface {
	Snapshot() (json.RawMessage, error)
	Restore(blob json.RawMessage) error
}

// savedSession is the checkpoint file format.
type savedSession struct {
	Version    int                        `json:"version"`
	Components map[string]json.RawMessage `json:"components,omitempty"`
	Units      map[string]json.RawMessage `json:"units,omitempty"`
}

const formatVersion = 1

// Session is a serializable container of cross-run components and
// completed work-unit outputs. All methods are safe for concurrent use.
type Session struct {
	mu         sync.Mutex
	components map[string]CrossRunState
	// pending holds component blobs loaded from a checkpoint before the
	// owning component has been attached; Attach consumes them.
	pending map[string]json.RawMessage
	units   map[string]json.RawMessage
}

// New returns an empty session.
func New() *Session {
	return &Session{
		components: make(map[string]CrossRunState),
		pending:    make(map[string]json.RawMessage),
		units:      make(map[string]json.RawMessage),
	}
}

// Attach registers a live component under name. If the session was
// loaded from a checkpoint that carried state for that name, the
// component is restored from it immediately. Attaching a name twice
// replaces the previous component (the usual pattern when an experiment
// rebuilds its per-benchmark state objects on resume).
func (s *Session) Attach(name string, c CrossRunState) error {
	s.mu.Lock()
	blob, ok := s.pending[name]
	s.components[name] = c
	s.mu.Unlock()
	if ok {
		if err := c.Restore(blob); err != nil {
			return fmt.Errorf("session: restore component %q: %w", name, err)
		}
	}
	return nil
}

// Unit returns the memoized output of a completed work unit.
func (s *Session) Unit(key string) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.units[key]
	return raw, ok
}

// CompleteUnit records a work unit's output for checkpointing.
func (s *Session) CompleteUnit(key string, out json.RawMessage) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.units[key] = out
}

// UnitKeys returns the completed unit keys in sorted order.
func (s *Session) UnitKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.units))
	for k := range s.units {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Save writes the session — every attached component's snapshot, any
// still-pending component blobs, and all completed units — as JSON.
//
// Save captures one consistent view. An earlier version copied the unit
// map under the session lock but snapshotted components after releasing
// it, so a run that committed into a component while Save was in flight
// could appear in the component snapshot without its completed unit — a
// checkpoint whose resume would replay that run against a learner that
// had already learned it. Save now acquires the commit lock of every
// BenchState component (in name order, deduplicated by identity) before
// the session lock. A writer that brackets [run commit, CompleteUnit]
// with BeginRun/EndRun therefore cannot be split by a Save: the
// checkpoint's units and component states always describe the same run
// boundary. Lock order everywhere: component commit lock → session lock;
// components must never call back into their session from
// Snapshot/Restore.
func (s *Session) Save(w io.Writer) error {
	s.mu.Lock()
	type comp struct {
		name string
		c    CrossRunState
	}
	comps := make([]comp, 0, len(s.components))
	for name, c := range s.components {
		comps = append(comps, comp{name, c})
	}
	s.mu.Unlock()
	sort.Slice(comps, func(i, j int) bool { return comps[i].name < comps[j].name })

	// Hold the commit lock of every bench-state component across the
	// capture. Deduplicate by identity: the same state attached under two
	// names must be locked once.
	locked := make(map[*BenchState]bool)
	for _, cp := range comps {
		if bs, ok := cp.c.(*BenchState); ok && !locked[bs] {
			locked[bs] = true
			bs.runMu.Lock()
			defer bs.runMu.Unlock()
		}
	}

	s.mu.Lock()
	saved := savedSession{
		Version:    formatVersion,
		Components: make(map[string]json.RawMessage, len(comps)+len(s.pending)),
		Units:      make(map[string]json.RawMessage, len(s.units)),
	}
	for name, blob := range s.pending {
		saved.Components[name] = blob
	}
	for k, v := range s.units {
		saved.Units[k] = v
	}
	var snapErr error
	for _, cp := range comps {
		var blob json.RawMessage
		var err error
		if bs, ok := cp.c.(*BenchState); ok {
			blob, err = bs.snapshotLocked() // commit lock already held above
		} else {
			blob, err = cp.c.Snapshot()
		}
		if err != nil {
			snapErr = fmt.Errorf("session: snapshot component %q: %w", cp.name, err)
			break
		}
		saved.Components[cp.name] = blob
	}
	s.mu.Unlock()
	if snapErr != nil {
		return snapErr
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(saved)
}

// Load reads a session checkpoint written by Save. Component blobs stay
// pending until their components are attached.
func Load(r io.Reader) (*Session, error) {
	var saved savedSession
	if err := json.NewDecoder(r).Decode(&saved); err != nil {
		return nil, fmt.Errorf("session: load: %w", err)
	}
	if saved.Version != formatVersion {
		return nil, fmt.Errorf("session: checkpoint version %d, want %d", saved.Version, formatVersion)
	}
	s := New()
	for name, blob := range saved.Components {
		s.pending[name] = blob
	}
	for k, v := range saved.Units {
		s.units[k] = v
	}
	return s, nil
}

// SaveFile atomically writes the session checkpoint to path (write to a
// temp file in the same directory, then rename), so an interrupted save
// never corrupts an existing checkpoint.
func (s *Session) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := s.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile reads a checkpoint from path.
func LoadFile(path string) (*Session, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
