package session_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"evolvevm/internal/core"
	"evolvevm/internal/harness"
	"evolvevm/internal/programs"
	"evolvevm/internal/session"
	"evolvevm/internal/stats"
)

// fakeComponent is a minimal CrossRunState: a JSON blob it hands back.
type fakeComponent struct {
	blob json.RawMessage
}

func (f *fakeComponent) Snapshot() (json.RawMessage, error) { return f.blob, nil }
func (f *fakeComponent) Restore(b json.RawMessage) error {
	f.blob = append(json.RawMessage(nil), b...)
	return nil
}

// sameJSON compares two blobs semantically: the checkpoint encoder may
// re-indent embedded raw messages, which consumers never see because
// every unit output is read back through json.Unmarshal.
func sameJSON(t *testing.T, a, b json.RawMessage) bool {
	t.Helper()
	var va, vb any
	if err := json.Unmarshal(a, &va); err != nil {
		t.Fatalf("bad JSON %q: %v", a, err)
	}
	if err := json.Unmarshal(b, &vb); err != nil {
		t.Fatalf("bad JSON %q: %v", b, err)
	}
	return reflect.DeepEqual(va, vb)
}

func TestUnitMemoRoundTrip(t *testing.T) {
	s := session.New()
	s.CompleteUnit("b/unit", json.RawMessage(`{"x":2}`))
	s.CompleteUnit("a/unit", json.RawMessage(`[1,2,3]`))

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := session.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Unit("a/unit"); !ok || !sameJSON(t, got, json.RawMessage(`[1,2,3]`)) {
		t.Errorf("unit a/unit = %q, %v", got, ok)
	}
	if got, ok := s2.Unit("b/unit"); !ok || !sameJSON(t, got, json.RawMessage(`{"x":2}`)) {
		t.Errorf("unit b/unit = %q, %v", got, ok)
	}
	if _, ok := s2.Unit("missing"); ok {
		t.Error("missing unit reported present")
	}
	if keys := s2.UnitKeys(); !reflect.DeepEqual(keys, []string{"a/unit", "b/unit"}) {
		t.Errorf("UnitKeys = %v, want sorted pair", keys)
	}
}

func TestAttachConsumesPendingComponentBlob(t *testing.T) {
	s := session.New()
	orig := &fakeComponent{blob: json.RawMessage(`{"learned":true}`)}
	if err := s.Attach("bench/mtrt", orig); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := session.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The blob stays pending until a live component claims the name...
	fresh := &fakeComponent{}
	if err := s2.Attach("bench/mtrt", fresh); err != nil {
		t.Fatal(err)
	}
	if !sameJSON(t, fresh.blob, json.RawMessage(`{"learned":true}`)) {
		t.Errorf("attached component not restored: %q", fresh.blob)
	}
	// ...and an unrelated name restores nothing.
	other := &fakeComponent{}
	if err := s2.Attach("bench/other", other); err != nil {
		t.Fatal(err)
	}
	if other.blob != nil {
		t.Errorf("unrelated component restored from %q", other.blob)
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")
	s := session.New()
	s.CompleteUnit("k", json.RawMessage(`7`))
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Atomic write leaves no temp files behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after SaveFile, want 1", len(entries))
	}
	s2, err := session.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Unit("k"); !ok || string(got) != "7" {
		t.Errorf("unit = %q, %v", got, ok)
	}
	if _, err := session.LoadFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("loading a missing checkpoint succeeded")
	}
}

func TestLoadRejectsGarbageAndWrongVersion(t *testing.T) {
	if _, err := session.Load(bytes.NewReader([]byte("{nope"))); err == nil {
		t.Error("garbage checkpoint accepted")
	}
	if _, err := session.Load(bytes.NewReader([]byte(`{"version":999}`))); err == nil {
		t.Error("future-version checkpoint accepted")
	}
}

// TestBenchStateResumeBitIdentical is the session-level persistence
// guarantee: snapshot a benchmark's learned state mid-sequence, restore
// it into a fresh process-worth of state, and the remaining runs must be
// bit-identical in every recorded observable.
func TestBenchStateResumeBitIdentical(t *testing.T) {
	ctx := context.Background()
	mk := func() *harness.Runner {
		r, err := harness.NewRunner(programs.ByName("mtrt"), 8, 9)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := mk()
	order := a.Order(stats.Stream(9, "session-test", "order"), 20)
	half := len(order) / 2

	if _, err := a.RunSequence(ctx, harness.ScenarioEvolve, order[:half]); err != nil {
		t.Fatal(err)
	}
	blob, err := a.State.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	b := mk()
	if err := b.State.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if a.Evolver().Confidence() != b.Evolver().Confidence() ||
		a.Evolver().Runs() != b.Evolver().Runs() {
		t.Fatalf("restored learner differs: %.6f/%d vs %.6f/%d",
			a.Evolver().Confidence(), a.Evolver().Runs(),
			b.Evolver().Confidence(), b.Evolver().Runs())
	}

	for _, idx := range order[half:] {
		ra, err := a.RunOne(ctx, harness.ScenarioEvolve, a.Inputs[idx])
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.RunOne(ctx, harness.ScenarioEvolve, b.Inputs[idx])
		if err != nil {
			t.Fatal(err)
		}
		if ra.Cycles != rb.Cycles || ra.Speedup != rb.Speedup ||
			!ra.Result.Equal(rb.Result) {
			t.Fatalf("input %s: run diverged after resume:\noriginal %+v\nresumed  %+v",
				ra.InputID, ra, rb)
		}
		if ra.Evolve == nil || rb.Evolve == nil ||
			!reflect.DeepEqual(ra.Evolve, rb.Evolve) {
			t.Fatalf("input %s: learning record diverged:\noriginal %+v\nresumed  %+v",
				ra.InputID, ra.Evolve, rb.Evolve)
		}
	}
}

// TestBenchStateRejectsWrongProgram: a snapshot binds to its program.
func TestBenchStateRejectsWrongProgram(t *testing.T) {
	mtrt, err := programs.ByName("mtrt").Program()
	if err != nil {
		t.Fatal(err)
	}
	compress, err := programs.ByName("compress").Program()
	if err != nil {
		t.Fatal(err)
	}
	a := session.NewBenchState(mtrt, core.DefaultConfig())
	blob, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := session.NewBenchState(compress, core.DefaultConfig())
	if err := b.Restore(blob); err == nil {
		t.Error("mtrt snapshot restored into compress state")
	}
	if err := b.Restore(json.RawMessage("{nope")); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

// TestBenchStateResetKeepsBaselines: Reset drops learned state but keeps
// the memoized default baselines — they are input properties.
func TestBenchStateResetKeepsBaselines(t *testing.T) {
	prog, err := programs.ByName("compress").Program()
	if err != nil {
		t.Fatal(err)
	}
	s := session.NewBenchState(prog, core.DefaultConfig())
	s.SetDefaultCycles("in-0", 12345)
	ev := s.Evolver()
	s.Reset()
	if s.Evolver() == ev {
		t.Error("Reset kept the old learner")
	}
	if c, ok := s.DefaultCycles("in-0"); !ok || c != 12345 {
		t.Errorf("Reset dropped the baseline memo: %d, %v", c, ok)
	}
}

// errComponent fails to restore; Attach must surface the error.
type errComponent struct{}

func (errComponent) Snapshot() (json.RawMessage, error) { return json.RawMessage("{}"), nil }
func (errComponent) Restore(json.RawMessage) error      { return errors.New("corrupt") }

func TestAttachSurfacesRestoreError(t *testing.T) {
	s := session.New()
	if err := s.Attach("x", &fakeComponent{blob: json.RawMessage("{}")}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := session.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Attach("x", errComponent{}); err == nil {
		t.Error("failing Restore not surfaced by Attach")
	}
}
