package jit

import (
	"sync"
	"testing"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/interp"
)

func key(i int) CacheKey {
	return CacheKey{ProgFP: 7, FnIdx: i, Level: 1}
}

func put(c *Cache, i int) { c.store(key(i), &compiled{}) }

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache()
	if _, ok := c.lookup(key(1)); ok {
		t.Fatal("hit in empty cache")
	}
	put(c, 1)
	if _, ok := c.lookup(key(1)); !ok {
		t.Fatal("miss after store")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Evictions != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry / 0 evictions", s)
	}
	if s.Capacity != DefaultCacheCapacity {
		t.Errorf("capacity = %d, want default %d", s.Capacity, DefaultCacheCapacity)
	}
}

// TestCacheEvictsUnderPressure pins the sharded CLOCK contract that
// replaced exact LRU: the capacity bound is exact, every insert beyond
// it evicts exactly one entry (conservation: stores − entries ==
// evictions for distinct keys), and entries stored after the churn are
// resident.
func TestCacheEvictsUnderPressure(t *testing.T) {
	c := NewCacheCap(3)
	const stores = 20
	for i := 0; i < stores; i++ {
		put(c, i)
		if s := c.Stats(); s.Entries > 3 {
			t.Fatalf("entries = %d exceeds capacity after %d stores", s.Entries, i+1)
		}
	}
	s := c.Stats()
	if int(s.Evictions) != stores-s.Entries {
		t.Errorf("evictions = %d, want stores−entries = %d", s.Evictions, stores-s.Entries)
	}
	if _, ok := c.lookup(key(stores - 1)); !ok {
		t.Error("most recently stored entry evicted")
	}
}

func TestCacheBoundedUnderChurn(t *testing.T) {
	const capacity = 8
	c := NewCacheCap(capacity)
	for i := 0; i < 100; i++ {
		put(c, i)
	}
	s := c.Stats()
	if s.Entries > capacity {
		t.Errorf("entries = %d exceeds capacity %d", s.Entries, capacity)
	}
	if int(s.Evictions) != 100-s.Entries {
		t.Errorf("evictions = %d, want 100−entries = %d", s.Evictions, 100-s.Entries)
	}
}

func TestCacheUpdateInPlaceDoesNotEvict(t *testing.T) {
	// Capacity 1 collapses the stripe to a single one-slot shard, making
	// the in-place-update property deterministic under key hashing.
	c := NewCacheCap(1)
	put(c, 1)
	put(c, 1) // same key: update, not insert
	s := c.Stats()
	if s.Entries != 1 || s.Evictions != 0 {
		t.Errorf("stats after re-store = %+v, want 1 entry / 0 evictions", s)
	}
	put(c, 2) // distinct key in a full shard: evicts
	s = c.Stats()
	if s.Entries != 1 || s.Evictions != 1 {
		t.Errorf("stats after colliding store = %+v, want 1 entry / 1 eviction", s)
	}
	if _, ok := c.lookup(key(2)); !ok {
		t.Error("new entry missing after eviction")
	}
}

func TestCacheUnboundedWhenCapZero(t *testing.T) {
	c := NewCacheCap(0)
	for i := 0; i < 10_000; i++ {
		put(c, i)
	}
	s := c.Stats()
	if s.Entries != 10_000 || s.Evictions != 0 {
		t.Errorf("unbounded cache stats = %+v", s)
	}
	if s.Capacity != 0 {
		t.Errorf("capacity = %d, want 0 (unbounded)", s.Capacity)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCacheCap(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				put(c, (w*500+i)%64)
				c.lookup(key(i % 64))
			}
		}(w)
	}
	wg.Wait()
	if s := c.Stats(); s.Entries > 32 {
		t.Errorf("entries = %d exceeds capacity under concurrency", s.Entries)
	}
}

// TestCacheCarriesTracePlans proves that host-side execution plans built
// on a cached Code travel with it: a run that register-converts the hot
// loop leaves the trace plan on the interp.Code stored in the shared
// cache, so every later run resolving the same key starts with the
// register tier already built — the cross-run analogue of the closure
// plans the cache has always carried.
func TestCacheCarriesTracePlans(t *testing.T) {
	prog := testProg(t)
	shared := NewCache()
	c1 := NewCompiler(prog, Config{})
	c1.UseShared(shared)
	hotIdx, ok := prog.FuncIndex("hot")
	if !ok {
		t.Fatal("no hot function")
	}
	code, _, err := c1.Compile(hotIdx, MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	if code.TraceReady() {
		t.Fatal("fresh compile already had a trace plan")
	}

	// Execute the form with the register tier forced on; the run converts
	// the loop and stores the plan on the shared Code.
	e := interp.NewEngine(prog)
	e.EagerRegTier = true
	base := e.Provider
	e.Provider = func(fn int) *interp.Code {
		if fn == hotIdx {
			return code
		}
		return base(fn)
	}
	if err := e.SetGlobal("n", bytecode.Int(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !code.TraceReady() {
		t.Fatal("run with EagerRegTier built no trace plan")
	}

	// A second compiler resolving from the shared cache receives the same
	// form, register plans included.
	c2 := NewCompiler(prog, Config{})
	c2.UseShared(shared)
	code2, _, err := c2.Compile(hotIdx, MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	if code2 != code {
		t.Fatal("shared cache returned a different code form")
	}
	if !code2.TraceReady() {
		t.Fatal("cached form lost its trace plan")
	}
}

// TestCacheCarriesOSRAndInlineGuards extends the round trip to the OSR
// and inlining machinery: a run that builds a trace plan with mid-loop
// OSR entry points and guarded inlined call sites leaves them on the
// shared Code, and a second compiler resolving the same key receives the
// identical plan — entry maps and inline guards included. The guards
// re-validate against each run's own code table, so carrying them across
// runs is safe by construction.
func TestCacheCarriesOSRAndInlineGuards(t *testing.T) {
	src := `
global n
func main() locals acc
  const 0
  call hot 1
  store acc
  load acc
  ret
end
func hot(x) locals i s
  const 0
  store s
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load s
  load i
  call leaf 1
  iadd
  store s
  load i
  const 3
  imod
  jz skip
  iinc i 1
  jmp loop
skip:
  load s
  const 1
  iadd
  store s
  iinc i 1
  jmp loop
done:
  load s
  ret
end
func leaf(x)
  load x
  load x
  imul
  const 1
  iadd
  ret
end
`
	prog, err := bytecode.Assemble("cachetest", src)
	if err != nil {
		t.Fatal(err)
	}
	shared := NewCache()
	c1 := NewCompiler(prog, Config{})
	c1.UseShared(shared)
	hotIdx, ok := prog.FuncIndex("hot")
	if !ok {
		t.Fatal("no hot function")
	}
	codes := make([]*interp.Code, len(prog.Funcs))
	for i := range prog.Funcs {
		codes[i], _ = c1.Baseline(i)
	}

	e := interp.NewEngine(prog)
	e.EagerRegTier = true
	e.EagerOSR = true
	e.Provider = func(fn int) *interp.Code { return codes[fn] }
	e.PeekCode = func(fn int) *interp.Code { return codes[fn] }
	if err := e.SetGlobal("n", bytecode.Int(60)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	heads, osr, inlined := codes[hotIdx].TraceInfo(true)
	if heads == 0 || osr == 0 || inlined == 0 {
		t.Fatalf("run built heads=%d osr=%d inlined=%d; want all nonzero", heads, osr, inlined)
	}

	// Second compiler, same shared cache: identical Code, identical plan.
	c2 := NewCompiler(prog, Config{})
	c2.UseShared(shared)
	code2, _ := c2.Baseline(hotIdx)
	if code2 != codes[hotIdx] {
		t.Fatal("shared cache returned a different code form")
	}
	h2, o2, i2 := code2.TraceInfo(true)
	if h2 != heads || o2 != osr || i2 != inlined {
		t.Fatalf("cached form's trace plan changed: heads=%d osr=%d inlined=%d, want %d/%d/%d",
			h2, o2, i2, heads, osr, inlined)
	}
}
