// Package jit is the multi-level compiler driver of the evolvable VM. It
// turns functions into executable Code forms at optimization levels −1
// (baseline) through 2 by running the internal/opt pipelines, and charges
// deterministic compile cycles according to a Jikes-RVM-style cost model:
// higher levels compile slower per instruction and produce faster code.
package jit

import (
	"fmt"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/interp"
	"evolvevm/internal/opt"
)

// MinLevel and MaxLevel bound the compilation levels, matching the four
// levels (−1, 0, 1, 2) of the paper's Jikes RVM substrate.
const (
	MinLevel = -1
	MaxLevel = 2
)

// LevelSpec describes one optimized tier.
type LevelSpec struct {
	// ScalePct is the per-op execution cost relative to the baseline
	// interpreter, in percent.
	ScalePct int
	// CostMult multiplies the optimizer pipeline's intrinsic cycle count
	// to obtain the compile-time charge (higher tiers run heavier
	// analyses than the pass sketches model).
	CostMult int64
	// Speedup is the cost-benefit model's a-priori estimate of how much
	// faster this tier runs than the baseline interpreter. The controller
	// reasons with this estimate, never with measured values — exactly
	// like the hand-tuned constants in Jikes RVM's AOS.
	Speedup float64
}

// Config holds the tier table. Index i describes optimization level i.
type Config struct {
	Levels [MaxLevel + 1]LevelSpec
	// BaseCompileCyclesPerInstr is the level −1 "base compiler" charge
	// applied at a function's first invocation.
	BaseCompileCyclesPerInstr int64
}

// DefaultConfig returns the tier table used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		Levels: [MaxLevel + 1]LevelSpec{
			{ScalePct: 55, CostMult: 2, Speedup: 1.9},
			{ScalePct: 38, CostMult: 5, Speedup: 2.8},
			{ScalePct: 28, CostMult: 12, Speedup: 3.9},
		},
		BaseCompileCyclesPerInstr: 3,
	}
}

// Compiler compiles functions of one program. It memoizes per (function,
// level) within its lifetime — one Compiler per run, so every run pays its
// own compile costs, as in a JVM without a persistent code cache.
type Compiler struct {
	cfg   Config
	prog  *bytecode.Program
	cache map[cacheKey]*compiled
	// shared, when set via UseShared, is a cross-run cache: the host-side
	// compilation work is reused, but each run's virtual compile charge
	// is governed by the per-run cache above, exactly as without sharing.
	shared *Cache
}

type cacheKey struct {
	fnIdx int
	level int
}

type compiled struct {
	code   *interp.Code
	cycles int64
	res    opt.Result
}

// NewCompiler returns a compiler for prog with the given tier table.
func NewCompiler(prog *bytecode.Program, cfg Config) *Compiler {
	return &Compiler{cfg: cfg, prog: prog, cache: make(map[cacheKey]*compiled)}
}

// Config returns the compiler's tier table.
func (c *Compiler) Config() Config { return c.cfg }

// Reset returns the compiler to its just-constructed state: the per-run
// memo empties, so a subsequent run pays its own virtual compile charges
// again (first request per (function, level) charges, repeats are free),
// and any shared cross-run cache is detached — reattach it with UseShared.
// Pooled vm.Machines reset their compiler between runs this way.
func (c *Compiler) Reset() {
	clear(c.cache)
	c.shared = nil
}

// Baseline returns the level −1 form of a function together with the base
// compiler charge.
func (c *Compiler) Baseline(fnIdx int) (*interp.Code, int64) {
	key := cacheKey{fnIdx, MinLevel}
	if hit, ok := c.cache[key]; ok {
		return hit.code, hit.cycles
	}
	if hit, ok := c.sharedGet(fnIdx, MinLevel); ok {
		c.cache[key] = hit
		return hit.code, hit.cycles
	}
	f := c.prog.Funcs[fnIdx]
	code := interp.NewCode(fnIdx, f, MinLevel, interp.BaselineScalePct)
	cycles := int64(len(f.Code))*c.cfg.BaseCompileCyclesPerInstr + 20
	hit := &compiled{code: code, cycles: cycles}
	c.cache[key] = hit
	c.sharedPut(fnIdx, MinLevel, hit)
	return code, cycles
}

// Compile produces the Code form of fnIdx at the given level and the
// compile-cycle charge for doing so. Results are memoized: a second
// request for the same (function, level) returns the cached form with a
// zero charge (the code is already installed).
func (c *Compiler) Compile(fnIdx, level int) (*interp.Code, int64, error) {
	if level <= MinLevel {
		code, cycles := c.Baseline(fnIdx)
		return code, cycles, nil
	}
	if level > MaxLevel {
		return nil, 0, fmt.Errorf("jit: level %d out of range", level)
	}
	key := cacheKey{fnIdx, level}
	if hit, ok := c.cache[key]; ok {
		return hit.code, 0, nil
	}
	if hit, ok := c.sharedGet(fnIdx, level); ok {
		c.cache[key] = hit
		return hit.code, hit.cycles, nil
	}
	spec := c.cfg.Levels[level]
	f, res, err := opt.Optimize(c.prog, fnIdx, level)
	if err != nil {
		return nil, 0, err
	}
	code := interp.NewCode(fnIdx, f, level, spec.ScalePct)
	cycles := res.Cycles * spec.CostMult
	hit := &compiled{code: code, cycles: cycles, res: res}
	c.cache[key] = hit
	c.sharedPut(fnIdx, level, hit)
	return code, cycles, nil
}

// CompileAll compiles every function of the program at the given level
// and returns the code forms plus the total compile-cycle charge. Used by
// harnesses that pin a whole program to one tier (e.g. the differential
// tester's cross-tier oracle).
func (c *Compiler) CompileAll(level int) ([]*interp.Code, int64, error) {
	codes := make([]*interp.Code, len(c.prog.Funcs))
	var total int64
	for i := range c.prog.Funcs {
		code, cycles, err := c.Compile(i, level)
		if err != nil {
			return nil, total, err
		}
		codes[i] = code
		total += cycles
	}
	return codes, total, nil
}

// EstimateCompileCycles predicts the charge of compiling fnIdx at level
// without doing the work — the quantity the cost-benefit model reasons
// with. The estimate uses the pipeline's per-instruction rates on the
// original code size.
func (c *Compiler) EstimateCompileCycles(fnIdx, level int) int64 {
	if level <= MinLevel {
		return int64(len(c.prog.Funcs[fnIdx].Code))*c.cfg.BaseCompileCyclesPerInstr + 20
	}
	if level > MaxLevel {
		level = MaxLevel
	}
	size := int64(len(c.prog.Funcs[fnIdx].Code))
	perInstr := 8 + opt.PipelineRate(level)
	return (400 + size*perInstr) * c.cfg.Levels[level].CostMult
}

// Speedup returns the a-priori speedup estimate of a level over baseline
// (level −1 returns 1).
func (c *Compiler) Speedup(level int) float64 {
	if level <= MinLevel {
		return 1
	}
	if level > MaxLevel {
		level = MaxLevel
	}
	return c.cfg.Levels[level].Speedup
}
