package jit

import (
	"sync"
	"sync/atomic"
)

// CacheKey identifies one compiled code form across runs: the content
// fingerprint of the program the function lives in (optimization of a
// function may consult the whole program — inlining does), the function
// index, the level, and the full tier table. Two runs with equal keys
// would compile byte-identical code, so sharing the host-side work is
// unobservable in virtual terms.
type CacheKey struct {
	ProgFP uint64
	FnIdx  int
	Level  int
	Cfg    Config
}

// Cache is a cross-run compiled-code cache. Every run that hits still
// charges its own full virtual compile cycles (stored alongside the
// code); only the host-side optimization work is reused. interp.Code is
// immutable after construction, so one form may be executed by many
// engines — including concurrently running ones — without copying.
type Cache struct {
	mu     sync.RWMutex
	m      map[CacheKey]*compiled
	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns an empty cross-run code cache.
func NewCache() *Cache {
	return &Cache{m: make(map[CacheKey]*compiled)}
}

func (c *Cache) lookup(key CacheKey) (*compiled, bool) {
	c.mu.RLock()
	hit, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return hit, ok
}

func (c *Cache) store(key CacheKey, v *compiled) {
	c.mu.Lock()
	c.m[key] = v
	c.mu.Unlock()
}

// Stats reports cache effectiveness: lookups served from the cache,
// lookups that compiled, and resident entries.
func (c *Cache) Stats() (hits, misses int64, entries int) {
	c.mu.RLock()
	entries = len(c.m)
	c.mu.RUnlock()
	return c.hits.Load(), c.misses.Load(), entries
}

// sharedGet consults the shared cache for the compiler's program.
func (c *Compiler) sharedGet(fnIdx, level int) (*compiled, bool) {
	if c.shared == nil {
		return nil, false
	}
	return c.shared.lookup(CacheKey{
		ProgFP: c.prog.Fingerprint(), FnIdx: fnIdx, Level: level, Cfg: c.cfg})
}

func (c *Compiler) sharedPut(fnIdx, level int, v *compiled) {
	if c.shared == nil {
		return
	}
	c.shared.store(CacheKey{
		ProgFP: c.prog.Fingerprint(), FnIdx: fnIdx, Level: level, Cfg: c.cfg}, v)
}

// UseShared attaches a cross-run cache to the compiler. Call before the
// run starts; per-run charge accounting (full charge on the run's first
// request, zero on re-requests) is unchanged by sharing.
func (c *Compiler) UseShared(cache *Cache) { c.shared = cache }
