package jit

import (
	"container/list"
	"sync"
)

// CacheKey identifies one compiled code form across runs: the content
// fingerprint of the program the function lives in (optimization of a
// function may consult the whole program — inlining does), the function
// index, the level, and the full tier table. Two runs with equal keys
// would compile byte-identical code, so sharing the host-side work is
// unobservable in virtual terms.
type CacheKey struct {
	ProgFP uint64
	FnIdx  int
	Level  int
	Cfg    Config
}

// DefaultCacheCapacity bounds the process-wide code cache. At roughly a
// few kilobytes per compiled form this caps resident code in the tens of
// megabytes — far above any single experiment's working set, so steady
// state evicts only when a long-lived session cycles through many
// programs or configurations.
const DefaultCacheCapacity = 4096

// CacheStats reports cache effectiveness and occupancy.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Capacity  int // 0 = unbounded
}

// Cache is a bounded cross-run compiled-code cache with LRU eviction.
// Every run that hits still charges its own full virtual compile cycles
// (stored alongside the code); only the host-side optimization work is
// reused. interp.Code is immutable after construction, so one form may
// be executed by many engines — including concurrently running ones —
// without copying. The host execution plans a form accumulates (fused
// segments, closure programs, register-converted loop traces) live on
// the Code itself, so a cache hit hands later runs an already-warmed
// form — one conversion serves every subsequent run of the same code.
// Eviction likewise cannot change virtual results: a re-miss merely
// re-runs the host-side optimizer, which is deterministic.
type Cache struct {
	mu        sync.Mutex // plain Mutex: lookups mutate recency order
	m         map[CacheKey]*list.Element
	order     *list.List // front = most recently used
	capacity  int
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key CacheKey
	v   *compiled
}

// NewCache returns an empty cache bounded at DefaultCacheCapacity.
func NewCache() *Cache { return NewCacheCap(DefaultCacheCapacity) }

// NewCacheCap returns an empty cache holding at most capacity entries
// (capacity <= 0 means unbounded).
func NewCacheCap(capacity int) *Cache {
	return &Cache{
		m:        make(map[CacheKey]*list.Element),
		order:    list.New(),
		capacity: capacity,
	}
}

func (c *Cache) lookup(key CacheKey) (*compiled, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).v, true
}

func (c *Cache) store(key CacheKey, v *compiled) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).v = v
		c.order.MoveToFront(el)
		return
	}
	c.m[key] = c.order.PushFront(&cacheEntry{key: key, v: v})
	for c.capacity > 0 && c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Stats returns a snapshot of the cache's counters and occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.m),
		Capacity:  c.capacity,
	}
}

// sharedGet consults the shared cache for the compiler's program.
func (c *Compiler) sharedGet(fnIdx, level int) (*compiled, bool) {
	if c.shared == nil {
		return nil, false
	}
	return c.shared.lookup(CacheKey{
		ProgFP: c.prog.Fingerprint(), FnIdx: fnIdx, Level: level, Cfg: c.cfg})
}

func (c *Compiler) sharedPut(fnIdx, level int, v *compiled) {
	if c.shared == nil {
		return
	}
	c.shared.store(CacheKey{
		ProgFP: c.prog.Fingerprint(), FnIdx: fnIdx, Level: level, Cfg: c.cfg}, v)
}

// UseShared attaches a cross-run cache to the compiler. Call before the
// run starts; per-run charge accounting (full charge on the run's first
// request, zero on re-requests) is unchanged by sharing.
func (c *Compiler) UseShared(cache *Cache) { c.shared = cache }
