package jit

import (
	"evolvevm/internal/interp"
	"evolvevm/internal/stripe"
)

// CacheKey identifies one compiled code form across runs: the content
// fingerprint of the program the function lives in (optimization of a
// function may consult the whole program — inlining does), the function
// index, the level, and the full tier table. Two runs with equal keys
// would compile byte-identical code, so sharing the host-side work is
// unobservable in virtual terms.
type CacheKey struct {
	ProgFP uint64
	FnIdx  int
	Level  int
	Cfg    Config
}

// DefaultCacheCapacity bounds the process-wide code cache. At roughly a
// few kilobytes per compiled form this caps resident code in the tens of
// megabytes — far above any single experiment's working set, so steady
// state evicts only when a long-lived session cycles through many
// programs or configurations.
const DefaultCacheCapacity = 4096

// CacheStats reports cache effectiveness and occupancy.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Capacity  int // 0 = unbounded
}

// Cache is a bounded cross-run compiled-code cache. It is lock-striped
// with CLOCK (second-chance) eviction — see internal/stripe — so a hit
// takes only a per-shard read lock plus one atomic reference-bit touch;
// the serving hot path never serializes concurrent readers the way the
// previous plain-mutex LRU did (every lookup mutated recency order).
// Every run that hits still charges its own full virtual compile cycles
// (stored alongside the code); only the host-side optimization work is
// reused. interp.Code is immutable after construction, so one form may
// be executed by many engines — including concurrently running ones —
// without copying. The host execution plans a form accumulates (fused
// segments, closure programs, register-converted loop traces) live on
// the Code itself, so a cache hit hands later runs an already-warmed
// form — one conversion serves every subsequent run of the same code.
// Eviction order is a CLOCK approximation of LRU rather than exact, and
// neither order nor eviction can change virtual results: a re-miss
// merely re-runs the host-side optimizer, which is deterministic.
type Cache struct {
	c *stripe.Cache[CacheKey, *compiled]
}

// NewCache returns an empty cache bounded at DefaultCacheCapacity.
func NewCache() *Cache { return NewCacheCap(DefaultCacheCapacity) }

// NewCacheCap returns an empty cache holding at most capacity entries
// (capacity <= 0 means unbounded).
func NewCacheCap(capacity int) *Cache {
	return &Cache{c: stripe.New[CacheKey, *compiled](capacity)}
}

func (c *Cache) lookup(key CacheKey) (*compiled, bool) {
	return c.c.Lookup(key)
}

func (c *Cache) store(key CacheKey, v *compiled) {
	c.c.Store(key, v)
}

// Stats returns a snapshot of the cache's counters and occupancy. The
// counters are per-shard atomics aggregated here, so reading them never
// blocks a concurrent lookup.
func (c *Cache) Stats() CacheStats {
	st := c.c.Stats()
	return CacheStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Entries:   st.Entries,
		Capacity:  st.Capacity,
	}
}

// Range calls fn for every cached compiled form's Code, under the
// striped cache's per-shard read locks (see stripe.Cache.Range for the
// reentrancy rules). The serving front end sweeps the shared cache at
// epoch barriers to pre-warm host execution plans for hot forms; Codes
// are immutable, so fn may hand them to background builders freely.
func (c *Cache) Range(fn func(code *interp.Code)) {
	c.c.Range(func(_ CacheKey, v *compiled) { fn(v.code) })
}

// sharedGet consults the shared cache for the compiler's program.
func (c *Compiler) sharedGet(fnIdx, level int) (*compiled, bool) {
	if c.shared == nil {
		return nil, false
	}
	return c.shared.lookup(CacheKey{
		ProgFP: c.prog.Fingerprint(), FnIdx: fnIdx, Level: level, Cfg: c.cfg})
}

func (c *Compiler) sharedPut(fnIdx, level int, v *compiled) {
	if c.shared == nil {
		return
	}
	c.shared.store(CacheKey{
		ProgFP: c.prog.Fingerprint(), FnIdx: fnIdx, Level: level, Cfg: c.cfg}, v)
}

// UseShared attaches a cross-run cache to the compiler. Call before the
// run starts; per-run charge accounting (full charge on the run's first
// request, zero on re-requests) is unchanged by sharing.
func (c *Compiler) UseShared(cache *Cache) { c.shared = cache }
