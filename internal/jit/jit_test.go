package jit

import (
	"testing"

	"evolvevm/internal/bytecode"
)

const testSrc = `
global n
func main() locals acc
  const 0
  call hot 1
  store acc
  load acc
  ret
end
func hot(x) locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load acc
  load i
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
`

func testProg(t *testing.T) *bytecode.Program {
	t.Helper()
	p, err := bytecode.Assemble("jittest", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBaselineCharged(t *testing.T) {
	c := NewCompiler(testProg(t), DefaultConfig())
	code, cycles := c.Baseline(0)
	if code == nil || code.Level != MinLevel {
		t.Fatalf("baseline code level = %v", code)
	}
	if cycles <= 0 {
		t.Error("baseline compile free")
	}
	// Cached: same code, same (already-paid) charge reported.
	code2, cycles2 := c.Baseline(0)
	if code2 != code || cycles2 != cycles {
		t.Error("baseline not memoized")
	}
}

func TestCompileMemoized(t *testing.T) {
	c := NewCompiler(testProg(t), DefaultConfig())
	code, cycles, err := c.Compile(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Error("first compile free")
	}
	code2, cycles2, err := c.Compile(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if code2 != code {
		t.Error("second compile returned different code")
	}
	if cycles2 != 0 {
		t.Errorf("second compile charged %d cycles, want 0", cycles2)
	}
}

func TestCompileLevelsScaleDownCosts(t *testing.T) {
	// Unrolling grows static code while shrinking dynamic cost, so the
	// meaningful invariant is the per-instruction cost scale: every
	// compiled instruction must be cheaper than its baseline cost, and
	// the mean cost-to-baseline ratio must fall as the level rises.
	c := NewCompiler(testProg(t), DefaultConfig())
	prevRatio := 1.0
	for level := 0; level <= MaxLevel; level++ {
		code, _, err := c.Compile(1, level)
		if err != nil {
			t.Fatal(err)
		}
		if code.Level != level {
			t.Errorf("level tag = %d, want %d", code.Level, level)
		}
		var cost, base int64
		for i := range code.Cost {
			if code.Cost[i] > code.Base[i] {
				t.Errorf("level %d instr %d cost %d > baseline %d",
					level, i, code.Cost[i], code.Base[i])
			}
			cost += code.Cost[i]
			base += code.Base[i]
		}
		ratio := float64(cost) / float64(base)
		if ratio >= prevRatio {
			t.Errorf("level %d cost ratio %.3f >= previous %.3f", level, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestEstimateMonotoneInLevel(t *testing.T) {
	c := NewCompiler(testProg(t), DefaultConfig())
	prev := int64(0)
	for level := MinLevel; level <= MaxLevel; level++ {
		est := c.EstimateCompileCycles(1, level)
		if est <= prev {
			t.Errorf("estimate(level %d) = %d, not > %d", level, est, prev)
		}
		prev = est
	}
	// Bigger functions cost more.
	if c.EstimateCompileCycles(0, 2) >= c.EstimateCompileCycles(1, 2) {
		t.Error("smaller function estimated costlier")
	}
}

func TestSpeedupBounds(t *testing.T) {
	c := NewCompiler(testProg(t), DefaultConfig())
	if c.Speedup(MinLevel) != 1 {
		t.Error("baseline speedup != 1")
	}
	prev := 1.0
	for level := 0; level <= MaxLevel; level++ {
		s := c.Speedup(level)
		if s <= prev {
			t.Errorf("speedup(level %d) = %v, not > %v", level, s, prev)
		}
		prev = s
	}
	if c.Speedup(99) != c.Speedup(MaxLevel) {
		t.Error("overflow level not clamped")
	}
}

func TestCompileOutOfRange(t *testing.T) {
	c := NewCompiler(testProg(t), DefaultConfig())
	if _, _, err := c.Compile(0, MaxLevel+1); err == nil {
		t.Error("level beyond MaxLevel accepted")
	}
	if code, _, err := c.Compile(0, -5); err != nil || code.Level != MinLevel {
		t.Error("negative level should fall back to baseline")
	}
}
