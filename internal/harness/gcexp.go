package harness

import (
	"context"
	"fmt"
	"io"

	"evolvevm/internal/gc"
	"evolvevm/internal/programs"
	"evolvevm/internal/stats"
)

// GCBudgetCells is the heap budget of the GC-selection experiment: small
// enough that every server input collects, large enough that the
// highest-retention input fits.
const GCBudgetCells = 6000

// GCRow is one input's outcome in the GC-selection study.
type GCRow struct {
	InputID   string
	MarkSweep int64 // total run cycles under fixed mark-sweep
	Copying   int64 // total run cycles under fixed copying
	Ideal     gc.Policy
}

// GCResult summarizes experiment E8.
type GCResult struct {
	Rows []GCRow
	// Totals over the learned sequence and its comparators.
	FixedMarkSweep int64
	FixedCopying   int64
	Learned        int64
	Oracle         int64
	// PredictedRuns counts runs where the guard released a prediction;
	// CorrectRuns those matching the posterior ideal.
	Runs, PredictedRuns, CorrectRuns int
	FinalConfidence                  float64
}

// gcLearnedRun is one run of the learned-selector sequence.
type gcLearnedRun struct {
	InputID   string
	Cycles    int64
	Predicted bool
	Correct   bool
}

type gcLearned struct {
	Runs            []gcLearnedRun
	FinalConfidence float64
}

// GCSelection runs the §VI extension experiment: cross-input learning of
// the garbage collector on the allocation-heavy server program. Four
// configurations are compared on one random arrival sequence: the two
// fixed collectors, the evolvable selector (discriminative, defaulting
// to mark-sweep while unconfident), and the per-input oracle. The fixed
// per-input measurements are independent work units; the learned
// sequence is a strict chain and runs as one unit alongside them.
func GCSelection(ctx context.Context, w io.Writer, opts Options) (*GCResult, error) {
	b := programs.Server()
	mkRunner := func(policy gc.Policy) (*Runner, error) {
		r, err := NewRunner(b, opts.corpusFor(b), opts.Seed)
		if err != nil {
			return nil, err
		}
		r.GC = gc.Config{Policy: policy, BudgetCells: GCBudgetCells}
		return r, nil
	}
	// The fixed-policy runners are shared across the per-input units:
	// Default-scenario runs touch no learner state, so concurrent inputs
	// only share the (mutex-protected) baseline memo and the code cache.
	msRunner, err := mkRunner(gc.MarkSweep)
	if err != nil {
		return nil, err
	}
	cpRunner, err := mkRunner(gc.Copying)
	if err != nil {
		return nil, err
	}

	p := opts.planner("gcselection")
	rows := make([]GCRow, len(msRunner.Inputs))
	var learned gcLearned
	for i := range msRunner.Inputs {
		i := i
		unit(p, fmt.Sprintf("fixed/%d", i), &rows[i], nil, func(ctx context.Context) (GCRow, error) {
			var row GCRow
			in := msRunner.Inputs[i]
			ms, err := msRunner.RunOne(ctx, ScenarioDefault, in)
			if err != nil {
				return row, err
			}
			cp, err := cpRunner.RunOne(ctx, ScenarioDefault, cpRunner.Inputs[i])
			if err != nil {
				return row, err
			}
			return GCRow{
				InputID:   in.ID,
				MarkSweep: ms.Cycles,
				Copying:   cp.Cycles,
				Ideal:     gc.IdealPolicy(ms.GCStats.Collections, ms.GCStats.Allocs),
			}, nil
		})
	}
	unit(p, "learned", &learned, nil, func(ctx context.Context) (gcLearned, error) {
		var out gcLearned
		learnedRunner, err := mkRunner(gc.MarkSweep) // policy set per run below
		if err != nil {
			return out, err
		}
		selector := learnedRunner.State.GCSelector(learnedRunner.EvolveCfg)
		order := learnedRunner.Order(stats.Stream(opts.Seed, "gcselection", "order"), opts.runsFor(b))
		for _, idx := range order {
			in := learnedRunner.Inputs[idx]
			vec, _, err := learnedRunner.Features(in)
			if err != nil {
				return out, err
			}
			policy, predicted := selector.Choose(vec)
			if !predicted {
				policy = gc.MarkSweep // the VM's shipped default collector
			}
			learnedRunner.GC = gc.Config{Policy: policy, BudgetCells: GCBudgetCells}
			run, err := learnedRunner.RunOne(ctx, ScenarioDefault, in)
			if err != nil {
				return out, err
			}
			ideal := selector.Observe(vec, run.GCStats)
			out.Runs = append(out.Runs, gcLearnedRun{
				InputID:   in.ID,
				Cycles:    run.Cycles,
				Predicted: predicted,
				Correct:   predicted && policy == ideal,
			})
		}
		out.FinalConfidence = selector.Confidence()
		return out, nil
	})
	if err := p.run(ctx, opts); err != nil {
		return nil, err
	}

	res := &GCResult{Rows: rows, FinalConfidence: learned.FinalConfidence}
	perInput := make(map[string]GCRow, len(rows))
	for _, row := range rows {
		perInput[row.InputID] = row
	}
	for _, run := range learned.Runs {
		row := perInput[run.InputID]
		res.Runs++
		res.Learned += run.Cycles
		res.FixedMarkSweep += row.MarkSweep
		res.FixedCopying += row.Copying
		// The oracle takes the measured per-input best. (The cost-model
		// label row.Ideal can disagree on near-ties, because collection
		// timing perturbs the reactive JIT's sampling slightly between
		// policies.)
		if row.Copying < row.MarkSweep {
			res.Oracle += row.Copying
		} else {
			res.Oracle += row.MarkSweep
		}
		if run.Predicted {
			res.PredictedRuns++
			if run.Correct {
				res.CorrectRuns++
			}
		}
	}

	fmt.Fprintf(w, "GC selection — server benchmark, %d inputs, %d runs, budget %d cells\n",
		len(res.Rows), res.Runs, GCBudgetCells)
	fmt.Fprintf(w, "%-28s %12s %12s %10s\n", "input", "marksweep", "copying", "ideal")
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%-28s %12d %12d %10s\n", row.InputID, row.MarkSweep, row.Copying, row.Ideal)
	}
	fmt.Fprintf(w, "\ntotal cycles over the sequence:\n")
	fmt.Fprintf(w, "  fixed mark-sweep: %d\n", res.FixedMarkSweep)
	fmt.Fprintf(w, "  fixed copying:    %d\n", res.FixedCopying)
	fmt.Fprintf(w, "  learned:          %d\n", res.Learned)
	fmt.Fprintf(w, "  oracle:           %d\n", res.Oracle)
	fmt.Fprintf(w, "selector: %d/%d predicted runs correct, final confidence %.3f\n",
		res.CorrectRuns, res.PredictedRuns, res.FinalConfidence)
	return res, nil
}
