package harness

import (
	"fmt"
	"io"
	"math/rand"

	"evolvevm/internal/core"
	"evolvevm/internal/gc"
	"evolvevm/internal/programs"
)

// GCBudgetCells is the heap budget of the GC-selection experiment: small
// enough that every server input collects, large enough that the
// highest-retention input fits.
const GCBudgetCells = 6000

// GCRow is one input's outcome in the GC-selection study.
type GCRow struct {
	InputID   string
	MarkSweep int64 // total run cycles under fixed mark-sweep
	Copying   int64 // total run cycles under fixed copying
	Ideal     gc.Policy
}

// GCResult summarizes experiment E8.
type GCResult struct {
	Rows []GCRow
	// Totals over the learned sequence and its comparators.
	FixedMarkSweep int64
	FixedCopying   int64
	Learned        int64
	Oracle         int64
	// PredictedRuns counts runs where the guard released a prediction;
	// CorrectRuns those matching the posterior ideal.
	Runs, PredictedRuns, CorrectRuns int
	FinalConfidence                  float64
}

// GCSelection runs the §VI extension experiment: cross-input learning of
// the garbage collector on the allocation-heavy server program. Four
// configurations are compared on one random arrival sequence: the two
// fixed collectors, the evolvable selector (discriminative, defaulting
// to mark-sweep while unconfident), and the per-input oracle.
func GCSelection(w io.Writer, opts Options) (*GCResult, error) {
	b := programs.Server()
	mkRunner := func(policy gc.Policy) (*Runner, error) {
		r, err := NewRunner(b, opts.corpusFor(b), opts.Seed)
		if err != nil {
			return nil, err
		}
		r.GC = gc.Config{Policy: policy, BudgetCells: GCBudgetCells}
		return r, nil
	}
	msRunner, err := mkRunner(gc.MarkSweep)
	if err != nil {
		return nil, err
	}
	cpRunner, err := mkRunner(gc.Copying)
	if err != nil {
		return nil, err
	}
	learnedRunner, err := mkRunner(gc.MarkSweep) // policy set per run below
	if err != nil {
		return nil, err
	}

	res := &GCResult{}

	// Per-input fixed-policy costs and the oracle labels.
	perInput := make(map[string]GCRow)
	for i, in := range msRunner.Inputs {
		ms, err := msRunner.RunOne(ScenarioDefault, in)
		if err != nil {
			return nil, err
		}
		cp, err := cpRunner.RunOne(ScenarioDefault, cpRunner.Inputs[i])
		if err != nil {
			return nil, err
		}
		row := GCRow{
			InputID:   in.ID,
			MarkSweep: ms.Cycles,
			Copying:   cp.Cycles,
			Ideal:     gc.IdealPolicy(ms.GCStats.Collections, ms.GCStats.Allocs),
		}
		perInput[in.ID] = row
		res.Rows = append(res.Rows, row)
	}

	// The learned sequence.
	selector := core.NewGCSelector(learnedRunner.EvolveCfg)
	rng := rand.New(rand.NewSource(opts.Seed + 909))
	order := learnedRunner.Order(rng, opts.runsFor(b))
	for _, idx := range order {
		in := learnedRunner.Inputs[idx]
		row := perInput[in.ID]
		vec, _, err := learnedRunner.Features(in)
		if err != nil {
			return nil, err
		}
		policy, predicted := selector.Choose(vec)
		if !predicted {
			policy = gc.MarkSweep // the VM's shipped default collector
		}
		learnedRunner.GC = gc.Config{Policy: policy, BudgetCells: GCBudgetCells}
		run, err := learnedRunner.RunOne(ScenarioDefault, in)
		if err != nil {
			return nil, err
		}
		ideal := selector.Observe(vec, run.GCStats)

		res.Runs++
		res.Learned += run.Cycles
		res.FixedMarkSweep += row.MarkSweep
		res.FixedCopying += row.Copying
		// The oracle takes the measured per-input best. (The cost-model
		// label row.Ideal can disagree on near-ties, because collection
		// timing perturbs the reactive JIT's sampling slightly between
		// policies.)
		if row.Copying < row.MarkSweep {
			res.Oracle += row.Copying
		} else {
			res.Oracle += row.MarkSweep
		}
		if predicted {
			res.PredictedRuns++
			if policy == ideal {
				res.CorrectRuns++
			}
		}
	}
	res.FinalConfidence = selector.Confidence()

	fmt.Fprintf(w, "GC selection — server benchmark, %d inputs, %d runs, budget %d cells\n",
		len(res.Rows), res.Runs, GCBudgetCells)
	fmt.Fprintf(w, "%-28s %12s %12s %10s\n", "input", "marksweep", "copying", "ideal")
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%-28s %12d %12d %10s\n", row.InputID, row.MarkSweep, row.Copying, row.Ideal)
	}
	fmt.Fprintf(w, "\ntotal cycles over the sequence:\n")
	fmt.Fprintf(w, "  fixed mark-sweep: %d\n", res.FixedMarkSweep)
	fmt.Fprintf(w, "  fixed copying:    %d\n", res.FixedCopying)
	fmt.Fprintf(w, "  learned:          %d\n", res.Learned)
	fmt.Fprintf(w, "  oracle:           %d\n", res.Oracle)
	fmt.Fprintf(w, "selector: %d/%d predicted runs correct, final confidence %.3f\n",
		res.CorrectRuns, res.PredictedRuns, res.FinalConfidence)
	return res, nil
}
