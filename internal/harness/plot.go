package harness

import (
	"fmt"
	"io"
	"math"
	"strings"

	"evolvevm/internal/stats"
)

// AsciiSeries renders one or more aligned numeric series as a compact
// character plot, one column per run — the textual stand-in for the
// paper's temporal curves (Figure 8).
func AsciiSeries(w io.Writer, title string, labels []string, series [][]float64, height int) {
	if len(series) == 0 || len(series[0]) == 0 {
		return
	}
	if height <= 0 {
		height = 12
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		lo, hi := stats.MinMax(s)
		min, max = math.Min(min, lo), math.Max(max, hi)
	}
	if max == min {
		max = min + 1
	}
	n := len(series[0])
	marks := []byte{'*', 'o', '+', 'x', '#', '@'}

	fmt.Fprintf(w, "%s\n", title)
	for _, row := range legendRows(labels, marks) {
		fmt.Fprintf(w, "  %s\n", row)
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", n))
	}
	for si, s := range series {
		for x, v := range s {
			y := int(math.Round((v - min) / (max - min) * float64(height-1)))
			row := height - 1 - y
			grid[row][x] = marks[si%len(marks)]
		}
	}
	for i, row := range grid {
		label := "        "
		if i == 0 {
			label = fmt.Sprintf("%7.2f ", max)
		} else if i == height-1 {
			label = fmt.Sprintf("%7.2f ", min)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", n))
	fmt.Fprintf(w, "         run 1 .. %d\n", n)
}

func legendRows(labels []string, marks []byte) []string {
	rows := make([]string, 0, len(labels))
	for i, l := range labels {
		rows = append(rows, fmt.Sprintf("%c = %s", marks[i%len(marks)], l))
	}
	return rows
}

// AsciiBox renders a five-number summary as one boxplot line over the
// [lo, hi] axis, width characters wide.
func AsciiBox(f stats.FiveNum, lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	col := func(v float64) int {
		if hi == lo {
			return 0
		}
		c := int((v - lo) / (hi - lo) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := []byte(strings.Repeat(" ", width))
	for i := col(f.Min); i <= col(f.Max); i++ {
		row[i] = '-'
	}
	for i := col(f.Q1); i <= col(f.Q3); i++ {
		row[i] = '='
	}
	row[col(f.Min)] = '|'
	row[col(f.Max)] = '|'
	row[col(f.Median)] = 'M'
	return string(row)
}
