package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"

	"evolvevm/internal/sched"
	"evolvevm/internal/session"
)

// Experiments execute as graphs of *work units*. A unit is the atom of
// both parallelism and checkpointing: it runs at most once per session,
// its JSON-encoded output is memoized in the session, and on resume a
// completed unit is replayed from the checkpoint instead of re-running.
// Units that share a Runner only ever touch disjoint cross-run state (or
// the mutex-protected default-baseline memo), so the scheduler may
// execute any ready units concurrently; all result assembly and printing
// happens after the graph completes, in canonical (insertion) order —
// which is why every experiment's output is bit-identical regardless of
// worker count (see DESIGN.md §8).

// planner accumulates an experiment's work units.
type planner struct {
	g      *sched.Graph
	sess   *session.Session
	prefix string
}

func (o Options) planner(experiment string) *planner {
	return &planner{
		g:    sched.NewGraph(),
		sess: o.session(),
		// The key prefix pins every option that changes a unit's meaning,
		// so a checkpoint resumed under different flags recomputes instead
		// of replaying stale results.
		prefix: fmt.Sprintf("%s/seed=%d/runs=%d/corpus=%d/quick=%t",
			experiment, o.Seed, o.Runs, o.Corpus, o.Quick),
	}
}

// run executes the planned graph on the option's worker budget.
func (p *planner) run(ctx context.Context, o Options) error {
	return p.g.Run(ctx, o.workers())
}

// unit registers one work unit. Its output is computed by fn, delivered
// into *out, and memoized in the session under the planner's key prefix.
// Fresh outputs are round-tripped through their JSON encoding before
// delivery, so a value computed now and the same value replayed from a
// checkpoint are bit-identical — the keystone of the resume-equivalence
// guarantee. deps name units (of this planner) that must complete first.
// The returned key names the unit for dependents.
func unit[T any](p *planner, name string, out *T, deps []string, fn func(ctx context.Context) (T, error)) string {
	key := p.prefix + "/" + name
	if raw, ok := p.sess.Unit(key); ok {
		var v T
		if err := json.Unmarshal(raw, &v); err == nil {
			*out = v
			p.g.Add(key, func(context.Context) error { return nil }, deps...)
			p.g.Done(key)
			return key
		}
		// Undecodable blob (format drift): fall through and recompute.
	}
	p.g.Add(key, func(ctx context.Context) error {
		v, err := fn(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		raw, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("%s: encode: %w", name, err)
		}
		var rt T
		if err := json.Unmarshal(raw, &rt); err != nil {
			return fmt.Errorf("%s: round-trip: %w", name, err)
		}
		*out = rt
		p.sess.CompleteUnit(key, raw)
		return nil
	}, deps...)
	return key
}

// workers resolves the option set to a worker count: explicit Workers
// wins, otherwise Parallel means one worker per CPU and serial means one.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	if o.Parallel {
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

// session returns the experiment's session, creating an ephemeral one
// when the caller did not supply a checkpointable session.
func (o Options) session() *session.Session {
	if o.Session != nil {
		return o.Session
	}
	return session.New()
}
