package harness

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"evolvevm/internal/aos"
	"evolvevm/internal/programs"
	"evolvevm/internal/stats"
	"evolvevm/internal/vm"
)

// testCtx is the background context shared by the package's tests; the
// cancellation paths get dedicated coverage in the exec and cmd tests.
var testCtx = context.Background()

func newRunner(t *testing.T, name string, corpus int) *Runner {
	t.Helper()
	r, err := NewRunner(programs.ByName(name), corpus, 7)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestScenariosProduceSameResults(t *testing.T) {
	r := newRunner(t, "compress", 4)
	for _, in := range r.Inputs {
		var want *RunResult
		for _, sc := range []Scenario{ScenarioNull, ScenarioDefault, ScenarioRep, ScenarioEvolve} {
			res, err := r.RunOne(testCtx, sc, in)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = res
				continue
			}
			if !res.Result.Equal(want.Result) {
				t.Errorf("%s: %s result %v != %s result %v",
					in.ID, sc, res.Result, want.Scenario, want.Result)
			}
		}
	}
}

func TestDefaultBeatsNull(t *testing.T) {
	r := newRunner(t, "mtrt", 6)
	for _, in := range r.Inputs[:3] {
		null, err := r.RunOne(testCtx, ScenarioNull, in)
		if err != nil {
			t.Fatal(err)
		}
		def, err := r.RunOne(testCtx, ScenarioDefault, in)
		if err != nil {
			t.Fatal(err)
		}
		if def.Cycles >= null.Cycles {
			t.Errorf("%s: default %d cycles >= null %d (adaptive optimizer helps nothing?)",
				in.ID, def.Cycles, null.Cycles)
		}
	}
}

func TestEvolveLearnsAndSpeedsUp(t *testing.T) {
	r := newRunner(t, "mtrt", 12)
	rng := rand.New(rand.NewSource(3))
	order := r.Order(rng, 30)
	results, err := r.RunSequence(testCtx, ScenarioEvolve, order)
	if err != nil {
		t.Fatal(err)
	}

	if results[0].Evolve == nil {
		t.Fatal("no learning record on evolve run")
	}
	if results[0].Evolve.Predicted {
		t.Error("first run predicted despite zero confidence")
	}
	if r.Evolver().Confidence() <= r.EvolveCfg.ConfidenceThreshold {
		t.Fatalf("confidence %.3f never exceeded threshold %.2f after %d runs",
			r.Evolver().Confidence(), r.EvolveCfg.ConfidenceThreshold, len(order))
	}
	predicted := 0
	for _, res := range results {
		if res.Evolve.Predicted {
			predicted++
		}
	}
	if predicted == 0 {
		t.Fatal("discriminative guard never released prediction")
	}

	// Once predicting, Evolve should beat Default on average.
	var predSpeedups []float64
	for _, res := range results {
		if res.Evolve.Predicted {
			predSpeedups = append(predSpeedups, res.Speedup)
		}
	}
	mean := stats.Mean(predSpeedups)
	t.Logf("predicted on %d/%d runs; mean speedup while predicting = %.3f; final conf=%.3f acc(last)=%.3f",
		predicted, len(results), mean, r.Evolver().Confidence(),
		results[len(results)-1].Evolve.Accuracy)
	if mean < 1.02 {
		t.Errorf("mean Evolve speedup while predicting = %.3f, want > 1.02", mean)
	}
}

func TestEvolveOutperformsRepOnInputSensitive(t *testing.T) {
	r := newRunner(t, "mtrt", 12)
	rng := rand.New(rand.NewSource(5))
	order := r.Order(rng, 40)

	evolveRes, err := r.RunSequence(testCtx, ScenarioEvolve, order)
	if err != nil {
		t.Fatal(err)
	}
	repRes, err := r.RunSequence(testCtx, ScenarioRep, order)
	if err != nil {
		t.Fatal(err)
	}

	// Compare the tail (after warmup) as the paper's Figure 8 does.
	tail := len(order) / 2
	evolveMean := stats.Mean(Speedups(evolveRes[tail:]))
	repMean := stats.Mean(Speedups(repRes[tail:]))
	t.Logf("tail mean speedups: evolve=%.3f rep=%.3f", evolveMean, repMean)
	if evolveMean <= repMean {
		t.Errorf("evolve tail mean %.3f <= rep tail mean %.3f on input-sensitive mtrt",
			evolveMean, repMean)
	}
}

func TestRepositoryImprovesOverDefault(t *testing.T) {
	r := newRunner(t, "moldyn", 8)
	rng := rand.New(rand.NewSource(11))
	order := r.Order(rng, 20)
	results, err := r.RunSequence(testCtx, ScenarioRep, order)
	if err != nil {
		t.Fatal(err)
	}
	tail := results[len(results)/2:]
	mean := stats.Mean(Speedups(tail))
	t.Logf("rep tail mean speedup = %.3f", mean)
	// Rep must at least be competitive with Default once warmed up; its
	// actual wins are asserted distributionally in the Figure 10 test.
	if mean < 0.97 {
		t.Errorf("rep tail mean speedup %.3f well below 1.0", mean)
	}
}

func TestOverheadIsSmall(t *testing.T) {
	r := newRunner(t, "compress", 8)
	rng := rand.New(rand.NewSource(2))
	order := r.Order(rng, 16)
	results, err := r.RunSequence(testCtx, ScenarioEvolve, order)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		frac := float64(res.OverheadCycles) / float64(res.Cycles)
		if frac > 0.02 {
			t.Errorf("%s: overhead %.2f%% of run time, want < 2%%", res.InputID, 100*frac)
		}
	}
}

func TestIdealStrategiesVaryAcrossInputs(t *testing.T) {
	// The study's premise: each benchmark's ideal per-method levels must
	// be input-dependent, otherwise there is nothing to learn.
	for _, b := range programs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			r, err := NewRunner(b, 8, 21)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[string]bool{}
			for _, in := range r.Inputs {
				m := vm.New(r.Prog, r.JitCfg, aos.NewReactive())
				if err := in.Setup(m.Engine); err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					t.Fatal(err)
				}
				seen[fmt.Sprint(aos.IdealStrategy(m))] = true
			}
			if len(seen) < 2 {
				t.Errorf("all %d inputs share one ideal strategy — nothing to learn", len(r.Inputs))
			}
		})
	}
}
