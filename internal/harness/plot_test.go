package harness

import (
	"bytes"
	"strings"
	"testing"

	"evolvevm/internal/stats"
)

func TestAsciiSeries(t *testing.T) {
	var buf bytes.Buffer
	AsciiSeries(&buf, "title", []string{"a", "b"},
		[][]float64{{0, 0.5, 1}, {1, 0.5, 0}}, 5)
	out := buf.String()
	for _, want := range []string{"title", "* = a", "o = b", "run 1 .. 3", "1.00", "0.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("series plot missing %q:\n%s", want, out)
		}
	}
	// Degenerate inputs do not panic or emit.
	var empty bytes.Buffer
	AsciiSeries(&empty, "x", nil, nil, 5)
	AsciiSeries(&empty, "x", []string{"a"}, [][]float64{{}}, 5)
	if empty.Len() != 0 {
		t.Error("empty series produced output")
	}
	// Constant series (max == min) still renders.
	buf.Reset()
	AsciiSeries(&buf, "flat", []string{"a"}, [][]float64{{2, 2, 2}}, 0)
	if !strings.Contains(buf.String(), "flat") {
		t.Error("flat series not rendered")
	}
}

func TestAsciiBox(t *testing.T) {
	f := stats.FiveNum{Min: 0.8, Q1: 0.9, Median: 1.0, Q3: 1.2, Max: 1.5}
	row := AsciiBox(f, 0.5, 2.0, 40)
	if len(row) != 40 {
		t.Fatalf("box width %d, want 40", len(row))
	}
	if !strings.Contains(row, "M") || !strings.Contains(row, "=") || !strings.Contains(row, "|") {
		t.Errorf("box missing glyphs: %q", row)
	}
	mPos := strings.IndexByte(row, 'M')
	lo := strings.IndexByte(row, '|')
	hi := strings.LastIndexByte(row, '|')
	if mPos < lo || mPos > hi {
		t.Errorf("median outside whiskers: %q", row)
	}
	// Out-of-range values clamp instead of panicking.
	row = AsciiBox(stats.FiveNum{Min: -5, Q1: 0, Median: 1, Q3: 2, Max: 99}, 0.5, 2.0, 5)
	if len(row) < 10 { // width clamped up to 10
		t.Errorf("narrow box not widened: %q", row)
	}
	// Degenerate axis.
	_ = AsciiBox(f, 1, 1, 20)
}
