package harness

import (
	"bytes"
	"strings"
	"testing"

	"evolvevm/internal/gc"
	"evolvevm/internal/programs"
)

func quickOpts() Options { return Options{Seed: 3, Quick: true} }

func TestTable1Quick(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table1(testCtx, &buf,Options{Seed: 3, Quick: true,
		Benchmarks: []string{"compress", "mtrt", "search"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Inputs <= 0 {
			t.Errorf("%s: no inputs", r.Program)
		}
		if r.MaxMcyc <= r.MinMcyc {
			t.Errorf("%s: degenerate time range [%v, %v]", r.Program, r.MinMcyc, r.MaxMcyc)
		}
		if r.UsedFeat > r.TotalFeat {
			t.Errorf("%s: used %d > total %d features", r.Program, r.UsedFeat, r.TotalFeat)
		}
		if r.UsedFeat == 0 {
			t.Errorf("%s: trees use no features at all", r.Program)
		}
		if r.Conf < 0 || r.Conf > 1 || r.Acc < 0 || r.Acc > 1 {
			t.Errorf("%s: conf/acc out of range: %v/%v", r.Program, r.Conf, r.Acc)
		}
		// The paper's headline: high prediction accuracy (87% average
		// there; our deterministic substrate learns at least as well).
		if r.Acc < 0.7 {
			t.Errorf("%s: accuracy %.2f below plausible range", r.Program, r.Acc)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "mtrt") {
		t.Error("table text output malformed")
	}
}

func TestFigure8Quick(t *testing.T) {
	var buf bytes.Buffer
	series, err := Figure8(testCtx, &buf,Options{Seed: 3, Quick: true, Benchmarks: []string{"mtrt"}})
	if err != nil {
		t.Fatal(err)
	}
	s := series[0]
	n := len(s.Confidence)
	if n == 0 || len(s.EvolveSpd) != n || len(s.RepSpd) != n {
		t.Fatal("series length mismatch")
	}
	// Confidence must ascend overall: last quarter above first quarter.
	q := n / 4
	if q == 0 {
		q = 1
	}
	var early, late float64
	for i := 0; i < q; i++ {
		early += s.Confidence[i]
		late += s.Confidence[n-1-i]
	}
	if late <= early {
		t.Errorf("confidence did not ascend: early=%v late=%v", early/float64(q), late/float64(q))
	}
	if !strings.Contains(buf.String(), "confidence") {
		t.Error("figure text missing plot")
	}
}

func TestFigure9Quick(t *testing.T) {
	var buf bytes.Buffer
	points, err := Figure9(testCtx, &buf,Options{Seed: 3, Quick: true, Runs: 24,
		Benchmarks: []string{"mtrt"}})
	if err != nil {
		t.Fatal(err)
	}
	pts := points["mtrt"]
	if len(pts) == 0 {
		t.Fatal("no predicted points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].DefaultMcyc < pts[i-1].DefaultMcyc {
			t.Fatal("points not sorted by default time")
		}
	}
}

func TestFigure10Quick(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Figure10(testCtx, &buf,Options{Seed: 3, Quick: true,
		Benchmarks: []string{"mtrt", "moldyn"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Evolve.Median <= 0 || r.Rep.Median <= 0 {
			t.Errorf("%s: degenerate distributions %+v %+v", r.Program, r.Evolve, r.Rep)
		}
		// Paper's discriminative-prediction claim: Evolve's minimum
		// should not collapse the way Rep's can.
		if r.Evolve.Min < 0.5 {
			t.Errorf("%s: evolve min %.3f — guard failed badly", r.Program, r.Evolve.Min)
		}
	}
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Error("figure header missing")
	}
}

func TestOverheadQuick(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Overhead(testCtx, &buf,Options{Seed: 3, Quick: true,
		Benchmarks: []string{"compress", "bloat"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MeanPct < 0 || r.MeanPct > r.MaxPct {
			t.Errorf("%s: inconsistent overhead %v/%v", r.Program, r.MeanPct, r.MaxPct)
		}
		// Paper: overhead is negligible (<~1.4% worst case); allow slack.
		if r.MaxPct > 5 {
			t.Errorf("%s: overhead %.2f%% not negligible", r.Program, r.MaxPct)
		}
	}
}

func TestSensitivityQuick(t *testing.T) {
	var buf bytes.Buffer
	res, err := Sensitivity(testCtx, &buf,Options{Seed: 3, Quick: true, Benchmarks: []string{"mtrt"}})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if len(r.ByThreshold) != 3 {
		t.Fatalf("thresholds missing: %v", r.ByThreshold)
	}
	// Higher thresholds are more conservative: the speedup range shrinks
	// or stays, up to per-order noise on near-ties (the quick corpus is
	// small, so one flipped prediction moves the range by ~0.01).
	loRange := r.ByThreshold[0.5].Max - r.ByThreshold[0.5].Min
	hiRange := r.ByThreshold[0.9].Max - r.ByThreshold[0.9].Min
	if hiRange > loRange+0.02 {
		t.Errorf("TH=0.9 range %.3f > TH=0.5 range %.3f", hiRange, loRange)
	}
	if len(r.OrderMinEvolve) != len(r.OrderMinRep) || len(r.OrderMinEvolve) == 0 {
		t.Error("order study missing")
	}
}

func TestAblationQuick(t *testing.T) {
	var buf bytes.Buffer
	res, err := Ablation(testCtx, &buf,Options{Seed: 3, Quick: true, Benchmarks: []string{"compress"}})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.AccFull < r.AccTruncated-0.05 {
		t.Errorf("full features (%.3f) markedly worse than one feature (%.3f)",
			r.AccFull, r.AccTruncated)
	}
	if r.EarlyGuarded.Median <= 0 || r.EarlyUnguarded.Median <= 0 {
		t.Error("degenerate early-run summaries")
	}
}

func TestOptionsHelpers(t *testing.T) {
	o := Options{Benchmarks: []string{"mtrt", "bogus"}}
	if len(o.suite()) != 1 {
		t.Errorf("suite() = %d entries, want 1 (bogus filtered)", len(o.suite()))
	}
	if got := (Options{}).suite(); len(got) != 11 {
		t.Errorf("full suite = %d, want 11", len(got))
	}
	b := o.suite()[0]
	if (Options{Corpus: 9}).corpusFor(b) != 9 {
		t.Error("corpus override ignored")
	}
	if (Options{Runs: 5}).runsFor(b) != 5 {
		t.Error("runs override ignored")
	}
	if (Options{}).runsFor(b) != 70 { // mtrt has a 40-input corpus
		t.Error("paper run count wrong for many-input benchmark")
	}
}

func TestScenarioString(t *testing.T) {
	if ScenarioDefault.String() != "default" || ScenarioEvolve.String() != "evolve" ||
		ScenarioRep.String() != "rep" || ScenarioNull.String() != "null" {
		t.Error("scenario names wrong")
	}
	if Scenario(42).String() == "" {
		t.Error("unknown scenario unprintable")
	}
	_ = quickOpts()
}

func TestGCSelectionQuick(t *testing.T) {
	var buf bytes.Buffer
	res, err := GCSelection(testCtx, &buf,Options{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.Runs == 0 {
		t.Fatal("no GC runs")
	}
	// The learned sequence must not lose to the better fixed policy by
	// more than noise, and must beat the worse one.
	worse := res.FixedMarkSweep
	if res.FixedCopying > worse {
		worse = res.FixedCopying
	}
	if res.Learned > worse {
		t.Errorf("learned total %d worse than both fixed policies (%d, %d)",
			res.Learned, res.FixedMarkSweep, res.FixedCopying)
	}
	if res.Oracle > res.Learned {
		t.Errorf("oracle %d worse than learned %d — oracle broken", res.Oracle, res.Learned)
	}
	if res.PredictedRuns > 0 && res.CorrectRuns*2 < res.PredictedRuns {
		t.Errorf("selector accuracy %d/%d below 50%%", res.CorrectRuns, res.PredictedRuns)
	}
	if !strings.Contains(buf.String(), "GC selection") {
		t.Error("report missing header")
	}
}

func TestGCRunsPreserveResults(t *testing.T) {
	// Program results must be identical with and without collection.
	b := programs.Server()
	plain, err := NewRunner(b, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	collected, err := NewRunner(b, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	collected.GC = gc.Config{Policy: gc.Copying, BudgetCells: GCBudgetCells}
	for i, in := range plain.Inputs {
		a, err := plain.RunOne(testCtx, ScenarioDefault, in)
		if err != nil {
			t.Fatal(err)
		}
		c, err := collected.RunOne(testCtx, ScenarioDefault, collected.Inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !a.Result.Equal(c.Result) {
			t.Errorf("%s: GC changed the result: %v vs %v", in.ID, c.Result, a.Result)
		}
		if len(c.GCStats.Collections) == 0 {
			t.Errorf("%s: no collections under budget %d", in.ID, GCBudgetCells)
		}
	}
}
