package harness

import (
	"math/rand"
	"os"
	"reflect"
	"testing"

	"evolvevm/internal/exec"
	"evolvevm/internal/programs"
)

// substrateVariant is one setting of the host-performance toggles.
type substrateVariant struct {
	name                                             string
	noCache, noFusion, noBatching, noClosures, noReg bool
	eagerReg                                         bool
	noOSR, eagerOSR, forcedDeopt, noInline           bool
	asyncCompile                                     bool
}

var substrateVariants = []substrateVariant{
	{name: "off", noCache: true, noFusion: true, noBatching: true, noClosures: true, noReg: true},
	{name: "nofuse", noFusion: true},
	{name: "noclos", noClosures: true},
	{name: "noreg", noReg: true},
	{name: "reg", eagerReg: true},
	{name: "osr-eager", eagerReg: true, eagerOSR: true},
	{name: "osr-deopt", eagerReg: true, eagerOSR: true, forcedDeopt: true},
	{name: "noosr", eagerReg: true, noOSR: true},
	{name: "noinline", eagerReg: true, noInline: true},
	{name: "async", asyncCompile: true},
	{name: "full"},
}

// runVariant executes one benchmark sequence under a scenario with the
// given substrate toggles, using a fresh runner (fresh Evolve/Rep state)
// but the same deterministic corpus and order.
func runVariant(t *testing.T, b *programs.Benchmark, scenario Scenario,
	v substrateVariant, corpus, runs int, seed int64) []*RunResult {
	t.Helper()
	r, err := NewRunner(b, corpus, seed)
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	r.Substrate = exec.Substrate{
		NoCodeCache: v.noCache, NoFusion: v.noFusion, NoBatching: v.noBatching,
		NoClosures: v.noClosures, NoRegTier: v.noReg,
		// The CI soak job force-enables the register tier (and OSR entries)
		// everywhere they are not explicitly disabled, mirroring difftest's
		// withEagerReg.
		EagerRegTier: v.eagerReg || (os.Getenv("EVOLVEVM_EAGER_REGTIER") != "" && !v.noReg && !v.noBatching),
		NoOSR:        v.noOSR,
		EagerOSR:     v.eagerOSR || (os.Getenv("EVOLVEVM_EAGER_OSR") != "" && !v.noOSR && !v.noReg && !v.noBatching),
		ForcedDeopt:  v.forcedDeopt,
		NoCallInline: v.noInline,
		// Background plan building moves tier promotion off the hot path;
		// the "async" variant proves the ledger and results stay identical
		// regardless of when (wall-clock) a plan lands. EVOLVEVM_ASYNC_COMPILE
		// additionally layers a shared pool over every other variant via exec.
		AsyncCompile: v.asyncCompile,
	}
	order := r.Order(rand.New(rand.NewSource(seed+7)), runs)
	results, err := r.RunSequence(testCtx, scenario, order)
	if err != nil {
		t.Fatalf("%s under %s (%s): %v", b.Name, scenario, v.name, err)
	}
	return results
}

// sameRunResult asserts two runs of the same input are indistinguishable
// in every virtual observable the harness records.
func sameRunResult(t *testing.T, ctx string, ref, got *RunResult) {
	t.Helper()
	if ref.InputID != got.InputID {
		t.Fatalf("%s: order diverged: input %q vs %q", ctx, ref.InputID, got.InputID)
	}
	if ref.Result != got.Result {
		t.Fatalf("%s: result diverged: %+v vs %+v", ctx, ref.Result, got.Result)
	}
	if ref.Cycles != got.Cycles || ref.CompileCycles != got.CompileCycles ||
		ref.OverheadCycles != got.OverheadCycles || ref.Recompilations != got.Recompilations ||
		ref.TotalSamples != got.TotalSamples {
		t.Fatalf("%s: ledger diverged:\nref: cycles=%d compile=%d overhead=%d recomp=%d samples=%d\ngot: cycles=%d compile=%d overhead=%d recomp=%d samples=%d",
			ctx,
			ref.Cycles, ref.CompileCycles, ref.OverheadCycles, ref.Recompilations, ref.TotalSamples,
			got.Cycles, got.CompileCycles, got.OverheadCycles, got.Recompilations, got.TotalSamples)
	}
	if ref.Speedup != got.Speedup {
		t.Fatalf("%s: speedup diverged: %v vs %v", ctx, ref.Speedup, got.Speedup)
	}
	if !reflect.DeepEqual(ref.Levels, got.Levels) {
		t.Fatalf("%s: final levels diverged: %v vs %v", ctx, ref.Levels, got.Levels)
	}
	if !reflect.DeepEqual(ref.GCStats, got.GCStats) {
		t.Fatalf("%s: GC stats diverged: %+v vs %+v", ctx, ref.GCStats, got.GCStats)
	}
	if ref.FeatureCount != got.FeatureCount {
		t.Fatalf("%s: feature count diverged: %d vs %d", ctx, ref.FeatureCount, got.FeatureCount)
	}
}

// TestSubstrateBenchmarksBitIdentical runs every benchmark of the suite
// (plus the GC-selection extension) through Default, Rep, and Evolve
// sequences with the substrate fully off, fusion disabled, closure-tier
// disabled, register-tier disabled, register-tier eager, OSR forced /
// stress-deopted / disabled, CALL inlining refused, and fully on
// (hotness-promoted closures and traces included) — cross-run code cache
// included — and asserts the recorded RunResults
// are identical field for field. This is the harness-level counterpart
// of the difftest substrate soak: it covers the real benchmark programs,
// cross-run learning state, and the speedup bookkeeping.
func TestSubstrateBenchmarksBitIdentical(t *testing.T) {
	benches := programs.All()
	benches = append(benches, programs.Extensions()...)
	scenarios := []Scenario{ScenarioDefault, ScenarioRep, ScenarioEvolve}
	const (
		corpus = 5
		runs   = 8
		seed   = 11
	)
	for _, b := range benches {
		for _, scenario := range scenarios {
			ref := runVariant(t, b, scenario, substrateVariants[0], corpus, runs, seed)
			for _, v := range substrateVariants[1:] {
				got := runVariant(t, b, scenario, v, corpus, runs, seed)
				if len(got) != len(ref) {
					t.Fatalf("%s under %s (%s): %d results vs %d", b.Name, scenario, v.name, len(got), len(ref))
				}
				for i := range ref {
					ctx := b.Name + " under " + scenario.String() + " (" + v.name + ") run " + ref[i].InputID
					sameRunResult(t, ctx, ref[i], got[i])
				}
			}
		}
	}
	cs := CodeCacheStats()
	t.Logf("benchmark substrate: %d benchmarks × %d scenarios identical; code cache %d hits / %d misses / %d entries (%d evictions)",
		len(benches), len(scenarios), cs.Hits, cs.Misses, cs.Entries, cs.Evictions)
	if cs.Hits == 0 {
		t.Error("cross-run code cache never hit during benchmark sequences")
	}
}
