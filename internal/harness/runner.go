// Package harness runs benchmarks under the three optimization scenarios
// the paper compares — Default (reactive), Rep (repository-based), and
// Evolve (the evolvable VM) — and regenerates every table and figure of
// the paper's evaluation section (see experiments.go and DESIGN.md's
// per-experiment index).
//
// The harness is a thin orchestration layer: internal/exec executes one
// stateless run, internal/session owns the cross-run state, and
// internal/sched sequences experiment work units deterministically (see
// DESIGN.md §8 for the layering).
package harness

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"evolvevm/internal/aos"
	"evolvevm/internal/bytecode"
	"evolvevm/internal/core"
	"evolvevm/internal/exec"
	"evolvevm/internal/gc"
	"evolvevm/internal/interp"
	"evolvevm/internal/jit"
	"evolvevm/internal/programs"
	"evolvevm/internal/rep"
	"evolvevm/internal/session"
	"evolvevm/internal/stripe"
	"evolvevm/internal/vm"
	"evolvevm/internal/xicl"
)

// codeCache is the process-wide cross-run compiled-code cache, bounded
// with LRU eviction (see jit.DefaultCacheCapacity). Every run still pays
// its own virtual compile cycles; the cache only removes repeated
// host-side optimizer work when thousands of runs compile the same
// functions at the same levels. interp.Code is immutable, so sharing
// across concurrently executing machines is safe.
var codeCache = jit.NewCache()

// baselineCache memoizes Default-scenario run outcomes process-wide,
// bounded at the same capacity as the code cache and lock-striped with
// CLOCK eviction (internal/stripe) so concurrent serving requests that
// replay the same baselines never serialize behind a recency update. A
// reactive-controller run is a pure function of (benchmark, corpus seed
// and size, input, jit tier table, gc config) — the substrate switches
// provably cannot change a virtual observable (internal/difftest), so
// they stay out of the key. Experiments re-measure the same baselines
// from freshly built runners constantly (every figure, every benchmark
// iteration); replaying the memoized outcome removes those redundant
// host executions without changing a single reported number. Eviction
// is equally unobservable: a re-miss re-runs the deterministic baseline
// measurement.
var baselineCache = newBaselineCache(jit.DefaultCacheCapacity)

type baselineKey struct {
	bench  string
	seed   int64
	corpus int
	input  string
	jit    jit.Config
	gc     gc.Config
}

// baselineOutcome is immutable once stored: total virtual cycles plus the
// per-function baseline-work profile (what rep prefilling records).
type baselineOutcome struct {
	cycles int64
	work   []int64
}

// baselineMemo is the bounded memo of baseline outcomes — stripe.Cache
// specialized to baselineKey, same structure as jit.Cache.
type baselineMemo struct {
	c *stripe.Cache[baselineKey, *baselineOutcome]
}

func newBaselineCache(capacity int) *baselineMemo {
	return &baselineMemo{c: stripe.New[baselineKey, *baselineOutcome](capacity)}
}

func (c *baselineMemo) load(key baselineKey) (*baselineOutcome, bool) {
	return c.c.Lookup(key)
}

// loadOrStore returns the existing outcome for key when present and
// otherwise stores v, evicting past capacity via the shard clock.
func (c *baselineMemo) loadOrStore(key baselineKey, v *baselineOutcome) (*baselineOutcome, bool) {
	return c.c.LoadOrStore(key, v)
}

func (c *baselineMemo) stats() jit.CacheStats {
	st := c.c.Stats()
	return jit.CacheStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Entries:   st.Entries,
		Capacity:  st.Capacity,
	}
}

// CodeCacheStats reports the process-wide code cache's counters
// (diagnostics for benchmark reports).
func CodeCacheStats() jit.CacheStats {
	return codeCache.Stats()
}

// BaselineCacheStats reports the process-wide baseline-outcome cache's
// counters (diagnostics for benchmark reports).
func BaselineCacheStats() jit.CacheStats {
	return baselineCache.stats()
}

// WarmCompiledPlans sweeps the process-wide code cache and enqueues
// background builds for every cached form that has earned a host
// execution plan (by level and sampler count) but does not yet carry it
// in the given fusion/inline modes, returning the number of jobs
// submitted. The serving front end calls this at epoch barriers so cold
// tenants inherit compiled plans along with the published learned state;
// plans build without a code table, so call-inlining trace builds are
// deferred to the first executing engine (see interp.Code.WarmJobs).
func WarmCompiledPlans(q interp.CompileQueue, fuse, inline bool) int {
	if q == nil {
		return 0
	}
	n := 0
	codeCache.Range(func(code *interp.Code) {
		for _, job := range code.WarmJobs(fuse, inline, nil) {
			q.Submit(job)
			n++
		}
	})
	return n
}

// Scenario selects the optimization controller for a run.
type Scenario int

const (
	// ScenarioDefault is the reactive sample-driven optimizer.
	ScenarioDefault Scenario = iota
	// ScenarioRep is the repository-based cross-run optimizer.
	ScenarioRep
	// ScenarioEvolve is the evolvable VM.
	ScenarioEvolve
	// ScenarioNull never recompiles (pure baseline interpretation).
	ScenarioNull
)

func (s Scenario) String() string {
	switch s {
	case ScenarioDefault:
		return "default"
	case ScenarioRep:
		return "rep"
	case ScenarioEvolve:
		return "evolve"
	case ScenarioNull:
		return "null"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// RunResult captures one run's outcome.
type RunResult struct {
	InputID        string
	Scenario       Scenario
	Result         bytecode.Value
	Cycles         int64
	Speedup        float64 // default-run cycles / this run's cycles
	CompileCycles  int64
	OverheadCycles int64
	Recompilations int
	TotalSamples   int64
	Levels         []int
	// GCStats records collector behaviour when the runner enables GC.
	GCStats gc.Stats
	// Evolve learning record (nil for other scenarios).
	Evolve *core.RunRecord
	// FeatureCount is the raw feature-vector length (Evolve runs).
	FeatureCount int
	// Trap carries the normalized runtime-error message when the program
	// faulted (division by zero, bad array access, ...). Only RunRequest
	// fills it; RunOne keeps treating traps as errors. A trapped run has
	// no Result and no Speedup, but its ledger fields are fully
	// attributed.
	Trap string
}

// Runner binds one benchmark's corpus and configuration to its cross-run
// state and executes runs through the exec layer. The Runner itself is
// stateless between runs: everything that persists lives in State.
type Runner struct {
	Bench  *programs.Benchmark
	Prog   *bytecode.Program
	Spec   *xicl.Spec
	Reg    *xicl.Registry
	Inputs []programs.Input

	// corpusSeed and corpusSize identify the deterministic input corpus
	// (GenInputs is a pure function of both) — they key the process-wide
	// baseline-outcome cache.
	corpusSeed int64
	corpusSize int

	JitCfg    jit.Config
	EvolveCfg core.Config

	// TruncateFeatures collapses every feature vector to its first
	// element — the feature-ablation switch (experiment E7).
	TruncateFeatures bool

	// GC configures the heap collector for every run (zero: no GC, the
	// paper's main experiments). Used by the GC-selection extension.
	GC gc.Config

	// Substrate toggles the host-performance mechanisms (all default on;
	// see exec.Substrate).
	Substrate exec.Substrate

	// State is the benchmark's cross-run state: the Evolve learner, the
	// Rep repository, and the memoized default baselines. Replaceable for
	// checkpoint/resume (session.BenchState implements
	// session.CrossRunState).
	State *session.BenchState

	// Inspect, when non-nil, observes the machine after every scenario
	// run, exactly like exec.RunSpec.Inspect. The serving front end uses
	// it to cross-check the cycle ledger on every request.
	Inspect func(m *vm.Machine)

	// Compile, when non-nil, is the background compilation queue for
	// every run's plan builds, exactly like exec.RunSpec.Compile. The
	// serving front end sets its per-server pool here on the prototype
	// runner; Fork's struct copy carries it to every tenant chain.
	Compile interp.CompileQueue
}

// NewRunner builds a runner with a deterministic input corpus of the
// given size (0 means the benchmark's default corpus size).
func NewRunner(b *programs.Benchmark, corpusSize int, seed int64) (*Runner, error) {
	prog, err := b.Program()
	if err != nil {
		return nil, err
	}
	spec, err := b.ParsedSpec()
	if err != nil {
		return nil, err
	}
	reg, err := b.Registry()
	if err != nil {
		return nil, err
	}
	if corpusSize <= 0 {
		corpusSize = b.DefaultCorpusSize
	}
	inputs := b.GenInputs(rand.New(rand.NewSource(seed)), corpusSize)
	if len(inputs) == 0 {
		return nil, fmt.Errorf("harness: %s generated no inputs", b.Name)
	}
	r := &Runner{
		Bench:      b,
		Prog:       prog,
		Spec:       spec,
		Reg:        reg,
		Inputs:     inputs,
		corpusSeed: seed,
		corpusSize: corpusSize,
		JitCfg:     jit.DefaultConfig(),
		EvolveCfg:  core.DefaultConfig(),
	}
	r.State = session.NewBenchState(prog, r.EvolveCfg)
	return r, nil
}

// Fork returns a runner sharing the benchmark, program, corpus, and
// configuration with r but owning fresh cross-run state. The shared
// pieces are all read-only after construction, so forks may run
// concurrently with each other and with r — the multi-tenant serving
// front end forks one runner per (tenant, benchmark) state chain off a
// per-benchmark prototype.
func (r *Runner) Fork() *Runner {
	c := *r
	c.State = session.NewBenchState(c.Prog, c.EvolveCfg)
	return &c
}

// Evolver returns the cross-run Evolve learner.
func (r *Runner) Evolver() *core.Evolver { return r.State.Evolver() }

// Repo returns the cross-run Rep repository.
func (r *Runner) Repo() *rep.Repository { return r.State.Repo() }

// ResetState clears the cross-run state (Evolve models, Rep repository),
// keeping the corpus, configs, and memoized default baselines. Call
// after changing EvolveCfg so the fresh learner picks it up.
func (r *Runner) ResetState() {
	r.State = session.NewBenchState(r.Prog, r.EvolveCfg)
}

// Features translates an input's command line into its feature vector,
// returning the extraction cost in cycles. Extraction is a pure function
// of the input, so the full vector and its cost are memoized per input ID
// in the cross-run state; every run is still charged the cost, exactly as
// if the translator had run again. Cached vectors are shared and must not
// be mutated (the harness paths only read them); the feature-ablation
// truncation is a reslice applied after the cache, so it composes with
// memoization without copying.
func (r *Runner) Features(in programs.Input) (xicl.Vector, int64, error) {
	cache := r.State.FVCache()
	vec, cost, ok := cache.Get(in.ID)
	if !ok {
		tr := xicl.NewTranslator(r.Spec, r.Reg, in.Files)
		var err error
		vec, err = tr.BuildFVector(in.Args)
		if err != nil {
			return nil, 0, fmt.Errorf("harness: %s: %w", in.ID, err)
		}
		cost = tr.Cost()
		cache.Put(in.ID, vec, cost)
	}
	if r.TruncateFeatures && len(vec) > 1 {
		vec = vec[:1]
	}
	return vec, cost, nil
}

// spec assembles the exec.RunSpec shared by every scenario.
func (r *Runner) spec(in programs.Input) *exec.RunSpec {
	return &exec.RunSpec{
		Prog:       r.Prog,
		Jit:        r.JitCfg,
		GC:         r.GC,
		Substrate:  r.Substrate,
		SharedCode: codeCache,
		Compile:    r.Compile,
		Setup:      in.Setup,
		Inspect:    r.Inspect,
	}
}

// configure installs the scenario's controller into spec, returning the
// Evolve controller (nil for other scenarios) and the feature count.
func (r *Runner) configure(spec *exec.RunSpec, scenario Scenario, in programs.Input) (*core.Controller, int, error) {
	switch scenario {
	case ScenarioDefault:
		spec.Controller = func(*vm.Machine) vm.Controller { return aos.NewReactive() }
	case ScenarioNull:
		spec.Controller = nil
	case ScenarioRep:
		repo := r.State.Repo()
		spec.Controller = func(m *vm.Machine) vm.Controller {
			return repo.Controller(m.Compiler, m.Engine.SampleStride)
		}
	case ScenarioEvolve:
		vec, cost, err := r.Features(in)
		if err != nil {
			return nil, 0, err
		}
		evolveCtrl := r.State.Evolver().Controller(vec, cost)
		spec.Controller = func(*vm.Machine) vm.Controller { return evolveCtrl }
		return evolveCtrl, len(vec), nil
	default:
		return nil, 0, fmt.Errorf("harness: unknown scenario %v", scenario)
	}
	return nil, 0, nil
}

// result folds an exec outcome into a RunResult.
func (r *Runner) result(scenario Scenario, in programs.Input, out *exec.RunOutcome,
	evolveCtrl *core.Controller, featureCount int) *RunResult {
	res := &RunResult{
		InputID:        in.ID,
		Scenario:       scenario,
		Result:         out.Result,
		Cycles:         out.Cycles,
		CompileCycles:  out.CompileCycles,
		OverheadCycles: out.OverheadCycles,
		Recompilations: out.Recompilations,
		TotalSamples:   out.TotalSamples,
		Levels:         out.Levels,
		GCStats:        out.GCStats,
		FeatureCount:   featureCount,
	}
	if evolveCtrl != nil {
		res.Evolve = evolveCtrl.Report()
	}
	return res
}

// RunOne executes the input under the scenario, updating cross-run state
// for Rep and Evolve.
func (r *Runner) RunOne(ctx context.Context, scenario Scenario, in programs.Input) (*RunResult, error) {
	spec := r.spec(in)
	evolveCtrl, featureCount, err := r.configure(spec, scenario, in)
	if err != nil {
		return nil, err
	}
	out, err := exec.Run(ctx, spec)
	if err != nil {
		return nil, fmt.Errorf("harness: %s under %s: %w", in.ID, scenario, err)
	}
	res := r.result(scenario, in, out, evolveCtrl, featureCount)
	if def, err := r.DefaultCycles(ctx, in); err == nil && res.Cycles > 0 {
		res.Speedup = float64(def) / float64(res.Cycles)
	}
	return res, nil
}

// RunRequest executes one serving request: like RunOne, but a program
// trap is captured as part of the result (Trap set, ledger fields
// attributed, no Result or Speedup) instead of failing the call. An
// aborted run — context cancellation or deadline — still returns the
// typed *interp.CanceledError so the front end can answer with a timeout
// status; cross-run state is untouched by failed runs (the controller
// only commits in OnRunEnd, which aborted and trapped runs never reach).
//
// RunRequest takes no state locks of its own: a caller whose state is
// snapshotted concurrently (the serving front end under checkpoint or
// epoch publication) brackets the call with State.BeginRun/EndRun.
func (r *Runner) RunRequest(ctx context.Context, scenario Scenario, in programs.Input) (*RunResult, error) {
	spec := r.spec(in)
	evolveCtrl, featureCount, err := r.configure(spec, scenario, in)
	if err != nil {
		return nil, err
	}
	out := &exec.RunOutcome{}
	err = exec.RunInto(ctx, spec, out)
	if err != nil {
		var rerr *interp.RuntimeError
		if errors.As(err, &rerr) {
			res := r.result(scenario, in, out, evolveCtrl, featureCount)
			res.Trap = rerr.Msg
			return res, nil
		}
		return nil, err
	}
	res := r.result(scenario, in, out, evolveCtrl, featureCount)
	if def, err := r.DefaultCycles(ctx, in); err == nil && res.Cycles > 0 {
		res.Speedup = float64(def) / float64(res.Cycles)
	}
	return res, nil
}

// DefaultCycles returns the memoized Default-scenario running time of an
// input. The reactive controller is stateless, so one measurement per
// input is exact — and process-wide: a second runner over the same corpus
// replays the outcome from the baseline cache instead of re-executing.
func (r *Runner) DefaultCycles(ctx context.Context, in programs.Input) (int64, error) {
	if c, ok := r.State.DefaultCycles(in.ID); ok {
		return c, nil
	}
	bl, err := r.baseline(ctx, in)
	if err != nil {
		return 0, err
	}
	r.State.SetDefaultCycles(in.ID, bl.cycles)
	return bl.cycles, nil
}

func (r *Runner) baselineKey(in programs.Input) baselineKey {
	return baselineKey{
		bench:  r.Bench.Name,
		seed:   r.corpusSeed,
		corpus: r.corpusSize,
		input:  in.ID,
		jit:    r.JitCfg,
		gc:     r.GC,
	}
}

// baseline measures (or replays) the input's Default-scenario outcome.
func (r *Runner) baseline(ctx context.Context, in programs.Input) (*baselineOutcome, error) {
	key := r.baselineKey(in)
	if v, ok := baselineCache.load(key); ok {
		return v, nil
	}
	spec := r.spec(in)
	spec.Controller = func(*vm.Machine) vm.Controller { return aos.NewReactive() }
	bl := &baselineOutcome{}
	userInspect := spec.Inspect
	spec.Inspect = func(m *vm.Machine) {
		bl.work = append([]int64(nil), m.Engine.Work...)
		if userInspect != nil {
			userInspect(m)
		}
	}
	out, err := exec.Run(ctx, spec)
	if err != nil {
		return nil, err
	}
	bl.cycles = out.Cycles
	v, _ := baselineCache.loadOrStore(key, bl)
	return v, nil
}

// WarmDefaults measures the Default-scenario baseline of every corpus
// input concurrently and memoizes the results. Each measurement is an
// independent deterministic run, so parallelism cannot change any value —
// it only moves host work off the sequential experiment path.
func (r *Runner) WarmDefaults(ctx context.Context) error {
	return r.warmDefaults(ctx, r.Inputs)
}

func (r *Runner) warmDefaults(ctx context.Context, inputs []programs.Input) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(inputs) {
		workers = len(inputs)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan programs.Input)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			failed := false
			for in := range jobs {
				if failed {
					continue // drain so the feeder never blocks
				}
				if _, err := r.DefaultCycles(ctx, in); err != nil {
					failed = true
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
	for _, in := range inputs {
		jobs <- in
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// Order draws a random sequence of input indices — the arrival order of
// production runs. The same order can be replayed under every scenario.
func (r *Runner) Order(rng *rand.Rand, runs int) []int {
	order := make([]int, runs)
	for i := range order {
		order[i] = rng.Intn(len(r.Inputs))
	}
	return order
}

// RunSequence executes the inputs selected by order under one scenario,
// evolving the scenario's cross-run state along the way. A learner's
// sequence is a strict chain — run k+1's prediction depends on run k's
// model update — so the runs execute serially; only the default-baseline
// warming ahead of the chain is concurrent.
func (r *Runner) RunSequence(ctx context.Context, scenario Scenario, order []int) ([]*RunResult, error) {
	// Warm the default-cycles baselines of the inputs this sequence will
	// touch, in parallel. Errors are deliberately ignored here: a failing
	// input fails identically (and with better context) inside RunOne.
	seen := make(map[int]bool, len(order))
	var warm []programs.Input
	for _, idx := range order {
		if !seen[idx] {
			seen[idx] = true
			warm = append(warm, r.Inputs[idx])
		}
	}
	_ = r.warmDefaults(ctx, warm)
	results := make([]*RunResult, 0, len(order))
	for _, idx := range order {
		res, err := r.RunOne(ctx, scenario, r.Inputs[idx])
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}

// Speedups extracts the speedup series from results.
func Speedups(results []*RunResult) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.Speedup
	}
	return out
}
