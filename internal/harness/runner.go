// Package harness runs benchmarks under the three optimization scenarios
// the paper compares — Default (reactive), Rep (repository-based), and
// Evolve (the evolvable VM) — and regenerates every table and figure of
// the paper's evaluation section (see experiments.go and DESIGN.md's
// per-experiment index).
package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"evolvevm/internal/aos"
	"evolvevm/internal/bytecode"
	"evolvevm/internal/core"
	"evolvevm/internal/gc"
	"evolvevm/internal/jit"
	"evolvevm/internal/programs"
	"evolvevm/internal/rep"
	"evolvevm/internal/vm"
	"evolvevm/internal/xicl"
)

// codeCache is the process-wide cross-run compiled-code cache. Every run
// still pays its own virtual compile cycles (see jit.Cache); the cache
// only removes repeated host-side optimizer work when thousands of runs
// compile the same functions at the same levels. interp.Code is immutable,
// so sharing across concurrently executing machines is safe.
var codeCache = jit.NewCache()

// CodeCacheStats reports the process-wide code cache's hit/miss counts
// and resident entries (diagnostics for benchmark reports).
func CodeCacheStats() (hits, misses int64, entries int) {
	return codeCache.Stats()
}

// Scenario selects the optimization controller for a run.
type Scenario int

const (
	// ScenarioDefault is the reactive sample-driven optimizer.
	ScenarioDefault Scenario = iota
	// ScenarioRep is the repository-based cross-run optimizer.
	ScenarioRep
	// ScenarioEvolve is the evolvable VM.
	ScenarioEvolve
	// ScenarioNull never recompiles (pure baseline interpretation).
	ScenarioNull
)

func (s Scenario) String() string {
	switch s {
	case ScenarioDefault:
		return "default"
	case ScenarioRep:
		return "rep"
	case ScenarioEvolve:
		return "evolve"
	case ScenarioNull:
		return "null"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// RunResult captures one run's outcome.
type RunResult struct {
	InputID        string
	Scenario       Scenario
	Result         bytecode.Value
	Cycles         int64
	Speedup        float64 // default-run cycles / this run's cycles
	CompileCycles  int64
	OverheadCycles int64
	Recompilations int
	TotalSamples   int64
	Levels         []int
	// GCStats records collector behaviour when the runner enables GC.
	GCStats gc.Stats
	// Evolve learning record (nil for other scenarios).
	Evolve *core.RunRecord
	// FeatureCount is the raw feature-vector length (Evolve runs).
	FeatureCount int
}

// Runner executes one benchmark's runs, holding the cross-run state of
// the Rep repository and the Evolve learner.
type Runner struct {
	Bench  *programs.Benchmark
	Prog   *bytecode.Program
	Spec   *xicl.Spec
	Reg    *xicl.Registry
	Inputs []programs.Input

	JitCfg    jit.Config
	EvolveCfg core.Config

	// TruncateFeatures collapses every feature vector to its first
	// element — the feature-ablation switch (experiment E7).
	TruncateFeatures bool

	// GC configures the heap collector for every run (zero: no GC, the
	// paper's main experiments). Used by the GC-selection extension.
	GC gc.Config

	// Host-performance substrate switches. All default off (substrate
	// active): each mechanism is individually toggleable so the
	// determinism suites can prove bit-identical virtual results with any
	// combination disabled.
	NoCodeCache bool // skip the process-wide cross-run code cache
	NoFusion    bool // batch blocks but without superinstruction fusion
	NoBatching  bool // original per-instruction dispatch only

	Evolver *core.Evolver
	Repo    *rep.Repository

	defaultsMu    sync.Mutex
	defaultCycles map[string]int64
}

// NewRunner builds a runner with a deterministic input corpus of the
// given size (0 means the benchmark's default corpus size).
func NewRunner(b *programs.Benchmark, corpusSize int, seed int64) (*Runner, error) {
	prog, err := b.Program()
	if err != nil {
		return nil, err
	}
	spec, err := b.ParsedSpec()
	if err != nil {
		return nil, err
	}
	reg, err := b.Registry()
	if err != nil {
		return nil, err
	}
	if corpusSize <= 0 {
		corpusSize = b.DefaultCorpusSize
	}
	inputs := b.GenInputs(rand.New(rand.NewSource(seed)), corpusSize)
	if len(inputs) == 0 {
		return nil, fmt.Errorf("harness: %s generated no inputs", b.Name)
	}
	r := &Runner{
		Bench:         b,
		Prog:          prog,
		Spec:          spec,
		Reg:           reg,
		Inputs:        inputs,
		JitCfg:        jit.DefaultConfig(),
		EvolveCfg:     core.DefaultConfig(),
		defaultCycles: make(map[string]int64),
	}
	r.ResetState()
	return r, nil
}

// ResetState clears the cross-run state (Evolve models, Rep repository),
// keeping the corpus and configs. Used between experiment variants.
func (r *Runner) ResetState() {
	r.Evolver = core.NewEvolver(r.Prog, r.EvolveCfg)
	r.Repo = rep.NewRepository(r.Prog)
}

// Features translates an input's command line into its feature vector,
// returning the extraction cost in cycles.
func (r *Runner) Features(in programs.Input) (xicl.Vector, int64, error) {
	tr := xicl.NewTranslator(r.Spec, r.Reg, in.Files)
	vec, err := tr.BuildFVector(in.Args)
	if err != nil {
		return nil, 0, fmt.Errorf("harness: %s: %w", in.ID, err)
	}
	if r.TruncateFeatures && len(vec) > 1 {
		vec = vec[:1]
	}
	return vec, tr.Cost(), nil
}

// RunOne executes the input under the scenario, updating cross-run state
// for Rep and Evolve.
func (r *Runner) RunOne(scenario Scenario, in programs.Input) (*RunResult, error) {
	var ctrl vm.Controller
	var evolveCtrl *core.Controller
	var featureCount int

	switch scenario {
	case ScenarioDefault:
		ctrl = aos.NewReactive()
	case ScenarioNull:
		ctrl = vm.NullController{}
	case ScenarioRep:
		// The plan needs the compiler's cost model; build machine first.
	case ScenarioEvolve:
		vec, cost, err := r.Features(in)
		if err != nil {
			return nil, err
		}
		featureCount = len(vec)
		evolveCtrl = r.Evolver.Controller(vec, cost)
		ctrl = evolveCtrl
	default:
		return nil, fmt.Errorf("harness: unknown scenario %v", scenario)
	}

	m := vm.New(r.Prog, r.JitCfg, ctrl)
	m.Engine.GC = r.GC
	r.applySubstrate(m)
	if scenario == ScenarioRep {
		repCtrl := r.Repo.Controller(m.Compiler, m.Engine.SampleStride)
		m.Controller = repCtrl
	}
	if err := in.Setup(m.Engine); err != nil {
		return nil, fmt.Errorf("harness: %s: setup: %w", in.ID, err)
	}
	v, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("harness: %s under %s: %w", in.ID, scenario, err)
	}

	res := &RunResult{
		InputID:        in.ID,
		Scenario:       scenario,
		Result:         v,
		Cycles:         m.TotalCycles(),
		CompileCycles:  m.CompileCycles,
		OverheadCycles: m.OverheadCycles,
		Recompilations: m.Recompilations,
		Levels:         m.Levels(),
		GCStats:        m.Engine.GCStats,
		FeatureCount:   featureCount,
	}
	for _, s := range m.Samples {
		res.TotalSamples += s
	}
	if evolveCtrl != nil {
		res.Evolve = evolveCtrl.Report()
	}
	if def, err := r.DefaultCycles(in); err == nil && res.Cycles > 0 {
		res.Speedup = float64(def) / float64(res.Cycles)
	}
	return res, nil
}

// applySubstrate configures a machine's host-performance layer according
// to the runner's toggles. None of these change virtual results (see
// DESIGN.md, "Host performance layer").
func (r *Runner) applySubstrate(m *vm.Machine) {
	m.Engine.DisableBatching = r.NoBatching
	m.Engine.DisableFusion = r.NoFusion
	if !r.NoCodeCache {
		m.Compiler.UseShared(codeCache)
	}
}

// DefaultCycles returns the memoized Default-scenario running time of an
// input. The reactive controller is stateless, so one measurement per
// input is exact.
func (r *Runner) DefaultCycles(in programs.Input) (int64, error) {
	r.defaultsMu.Lock()
	c, ok := r.defaultCycles[in.ID]
	r.defaultsMu.Unlock()
	if ok {
		return c, nil
	}
	c, err := r.measureDefault(in)
	if err != nil {
		return 0, err
	}
	r.defaultsMu.Lock()
	r.defaultCycles[in.ID] = c
	r.defaultsMu.Unlock()
	return c, nil
}

// measureDefault runs an input once under the reactive controller. The
// measurement is deterministic and independent of all cross-run state, so
// it may execute concurrently with other measurements.
func (r *Runner) measureDefault(in programs.Input) (int64, error) {
	m := vm.New(r.Prog, r.JitCfg, aos.NewReactive())
	m.Engine.GC = r.GC
	r.applySubstrate(m)
	if err := in.Setup(m.Engine); err != nil {
		return 0, err
	}
	if _, err := m.Run(); err != nil {
		return 0, err
	}
	return m.TotalCycles(), nil
}

// WarmDefaults measures the Default-scenario baseline of every corpus
// input concurrently and memoizes the results. Each measurement is an
// independent deterministic run, so parallelism cannot change any value —
// it only moves host work off the sequential experiment path.
func (r *Runner) WarmDefaults() error { return r.warmDefaults(r.Inputs) }

func (r *Runner) warmDefaults(inputs []programs.Input) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(inputs) {
		workers = len(inputs)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan programs.Input)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			failed := false
			for in := range jobs {
				if failed {
					continue // drain so the feeder never blocks
				}
				if _, err := r.DefaultCycles(in); err != nil {
					failed = true
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
	for _, in := range inputs {
		jobs <- in
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// Order draws a random sequence of input indices — the arrival order of
// production runs. The same order can be replayed under every scenario.
func (r *Runner) Order(rng *rand.Rand, runs int) []int {
	order := make([]int, runs)
	for i := range order {
		order[i] = rng.Intn(len(r.Inputs))
	}
	return order
}

// RunSequence executes the inputs selected by order under one scenario,
// evolving the scenario's cross-run state along the way.
func (r *Runner) RunSequence(scenario Scenario, order []int) ([]*RunResult, error) {
	// Warm the default-cycles baselines of the inputs this sequence will
	// touch, in parallel. Errors are deliberately ignored here: a failing
	// input fails identically (and with better context) inside RunOne.
	seen := make(map[int]bool, len(order))
	var warm []programs.Input
	for _, idx := range order {
		if !seen[idx] {
			seen[idx] = true
			warm = append(warm, r.Inputs[idx])
		}
	}
	_ = r.warmDefaults(warm)
	results := make([]*RunResult, 0, len(order))
	for _, idx := range order {
		res, err := r.RunOne(scenario, r.Inputs[idx])
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}

// Speedups extracts the speedup series from results.
func Speedups(results []*RunResult) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.Speedup
	}
	return out
}
