package harness

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"evolvevm/internal/core"
	"evolvevm/internal/programs"
	"evolvevm/internal/stats"
)

// Options scales the experiments. The zero value reproduces the paper's
// setup; Quick shrinks corpora and sequences for fast test runs.
type Options struct {
	// Seed drives corpus generation and input arrival order.
	Seed int64
	// Benchmarks filters the suite by name (nil = all).
	Benchmarks []string
	// Runs overrides the runs-per-benchmark (0 = the paper's 30, or 70
	// for benchmarks with many inputs).
	Runs int
	// Corpus overrides each benchmark's corpus size (0 = default).
	Corpus int
	// Quick reduces corpora and sequences for unit tests.
	Quick bool
	// Parallel runs independent benchmarks concurrently (per-benchmark
	// results are unchanged: every benchmark's cross-run state is its
	// own, and rows are collected in suite order).
	Parallel bool
}

// forEachBench applies f to every selected benchmark, concurrently when
// opts.Parallel is set, and returns the first error.
func (o Options) forEachBench(f func(i int, b *programs.Benchmark) error) error {
	suite := o.suite()
	if !o.Parallel {
		for i, b := range suite {
			if err := f(i, b); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(suite))
	var wg sync.WaitGroup
	for i, b := range suite {
		wg.Add(1)
		go func(i int, b *programs.Benchmark) {
			defer wg.Done()
			errs[i] = f(i, b)
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (o Options) suite() []*programs.Benchmark {
	all := programs.All()
	if len(o.Benchmarks) == 0 {
		return all
	}
	var out []*programs.Benchmark
	for _, name := range o.Benchmarks {
		if b := programs.ByName(name); b != nil {
			out = append(out, b)
		}
	}
	return out
}

func (o Options) corpusFor(b *programs.Benchmark) int {
	if o.Corpus > 0 {
		return o.Corpus
	}
	if o.Quick {
		n := b.DefaultCorpusSize / 3
		if n < 3 {
			n = 3
		}
		return n
	}
	return b.DefaultCorpusSize
}

func (o Options) runsFor(b *programs.Benchmark) int {
	if o.Runs > 0 {
		return o.Runs
	}
	if o.Quick {
		return 12
	}
	// Paper: 30 runs, or 70 for programs with many inputs.
	if b.DefaultCorpusSize >= 40 {
		return 70
	}
	return 30
}

// ---------------------------------------------------------------------
// Experiment E1 — Table I
// ---------------------------------------------------------------------

// Table1Row mirrors one row of the paper's Table I.
type Table1Row struct {
	Program   string
	Suite     string
	Inputs    int
	MinMcyc   float64 // min default running time, Mcycles (the paper's s)
	MaxMcyc   float64
	TotalFeat int
	UsedFeat  int
	Conf      float64 // mean confidence over the second half of the runs
	Acc       float64 // mean prediction accuracy over the second half
}

// Table1 reproduces the paper's Table I: per benchmark, the corpus size,
// the running-time range under the Default VM, the raw and tree-selected
// feature counts, and Evolve's confidence and accuracy.
func Table1(w io.Writer, opts Options) ([]Table1Row, error) {
	rows := make([]Table1Row, len(opts.suite()))
	err := opts.forEachBench(func(i int, b *programs.Benchmark) error {
		r, err := NewRunner(b, opts.corpusFor(b), opts.Seed)
		if err != nil {
			return err
		}
		row := Table1Row{Program: b.Name, Suite: b.Suite, Inputs: len(r.Inputs)}

		minC, maxC := int64(1<<62), int64(0)
		for _, in := range r.Inputs {
			c, err := r.DefaultCycles(in)
			if err != nil {
				return err
			}
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		row.MinMcyc = float64(minC) / 1e6
		row.MaxMcyc = float64(maxC) / 1e6

		vec, _, err := r.Features(r.Inputs[0])
		if err != nil {
			return err
		}
		row.TotalFeat = len(vec)

		rng := rand.New(rand.NewSource(opts.Seed + 101))
		order := r.Order(rng, opts.runsFor(b))
		results, err := r.RunSequence(ScenarioEvolve, order)
		if err != nil {
			return err
		}
		var confs, accs []float64
		for _, res := range results[len(results)/2:] {
			if res.Evolve != nil {
				confs = append(confs, res.Evolve.Confidence)
				accs = append(accs, res.Evolve.Accuracy)
			}
		}
		row.Conf = stats.Mean(confs)
		row.Acc = stats.Mean(accs)
		row.UsedFeat = len(r.Evolver.UsedFeatureNames())
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}

	fmt.Fprintln(w, "Table I — Benchmarks (running time in Mcycles; conf/acc from Evolve)")
	fmt.Fprintf(w, "%-11s %-7s %7s %9s %9s %6s %5s %6s %6s\n",
		"Program", "Suite", "#Inputs", "MinTime", "MaxTime", "Total", "Used", "conf", "acc")
	for _, row := range rows {
		fmt.Fprintf(w, "%-11s %-7s %7d %9.2f %9.2f %6d %5d %6.2f %6.2f\n",
			row.Program, row.Suite, row.Inputs, row.MinMcyc, row.MaxMcyc,
			row.TotalFeat, row.UsedFeat, row.Conf, row.Acc)
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Experiment E2 — Figure 8
// ---------------------------------------------------------------------

// Fig8Series holds the temporal curves for one benchmark.
type Fig8Series struct {
	Program    string
	Confidence []float64
	Accuracy   []float64
	EvolveSpd  []float64
	RepSpd     []float64
}

// Figure8 reproduces the paper's Figure 8 for Mtrt and RayTracer: the
// temporal evolution of Evolve's confidence and prediction accuracy, with
// per-run speedups of Evolve and Rep over Default under the same random
// input arrival order.
func Figure8(w io.Writer, opts Options) ([]Fig8Series, error) {
	if opts.Benchmarks == nil {
		opts.Benchmarks = []string{"mtrt", "raytracer"}
	}
	// suite() drops unknown names silently, which would desync the
	// index-addressed slots below; reject them here instead.
	for _, name := range opts.Benchmarks {
		if programs.ByName(name) == nil {
			return nil, fmt.Errorf("harness: no benchmark %q", name)
		}
	}
	// Per-benchmark work runs through forEachBench so opts.Parallel
	// applies; results land in slots indexed by suite order, and all
	// writing to w happens sequentially afterwards.
	out := make([]Fig8Series, len(opts.Benchmarks))
	runsBy := make([]int, len(opts.Benchmarks))
	err := opts.forEachBench(func(i int, b *programs.Benchmark) error {
		r, err := NewRunner(b, opts.corpusFor(b), opts.Seed)
		if err != nil {
			return err
		}
		runs := opts.runsFor(b)
		runsBy[i] = runs
		order := r.Order(rand.New(rand.NewSource(opts.Seed+202)), runs)

		evolveRes, err := r.RunSequence(ScenarioEvolve, order)
		if err != nil {
			return err
		}
		repRes, err := r.RunSequence(ScenarioRep, order)
		if err != nil {
			return err
		}

		s := Fig8Series{Program: b.Name}
		for k := range evolveRes {
			rec := evolveRes[k].Evolve
			s.Confidence = append(s.Confidence, rec.Confidence)
			s.Accuracy = append(s.Accuracy, rec.Accuracy)
			s.EvolveSpd = append(s.EvolveSpd, evolveRes[k].Speedup)
			s.RepSpd = append(s.RepSpd, repRes[k].Speedup)
		}
		out[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, s := range out {
		fmt.Fprintf(w, "\nFigure 8 — %s (%d runs)\n", s.Program, runsBy[i])
		AsciiSeries(w, "confidence (*) and prediction accuracy (o)",
			[]string{"confidence", "accuracy"},
			[][]float64{s.Confidence, s.Accuracy}, 10)
		AsciiSeries(w, "speedup over Default: Evolve (*) vs Rep (o)",
			[]string{"evolve speedup", "rep speedup"},
			[][]float64{s.EvolveSpd, s.RepSpd}, 10)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Experiment E3 — Figure 9
// ---------------------------------------------------------------------

// Fig9Point is one run in the running-time/speedup correlation study.
type Fig9Point struct {
	DefaultMcyc float64
	EvolveSpd   float64
	RepSpd      float64
}

// Figure9 reproduces the paper's Figure 9 for Mtrt and Compress: the
// correlation between a run's Default running time and the speedup Evolve
// achieves, against Rep using a repository pre-filled with the whole
// corpus (the paper's "histogram of all runs" to avoid warmup). The
// initial non-predicting Evolve runs are excluded, as in the paper.
func Figure9(w io.Writer, opts Options) (map[string][]Fig9Point, error) {
	benches := opts.Benchmarks
	if benches == nil {
		benches = []string{"mtrt", "compress"}
	}
	out := make(map[string][]Fig9Point)
	for _, name := range benches {
		b := programs.ByName(name)
		if b == nil {
			return out, fmt.Errorf("harness: no benchmark %q", name)
		}
		r, err := NewRunner(b, opts.corpusFor(b), opts.Seed)
		if err != nil {
			return out, err
		}
		runs := opts.runsFor(b)
		if !opts.Quick && opts.Runs == 0 && name == "mtrt" {
			runs = 92 // the paper's Mtrt sequence length
		}
		order := r.Order(rand.New(rand.NewSource(opts.Seed+303)), runs)

		evolveRes, err := r.RunSequence(ScenarioEvolve, order)
		if err != nil {
			return out, err
		}

		// Rep with a warmed repository: record a Default profile of every
		// corpus input once, then measure each sequenced run.
		r2, err := NewRunner(b, opts.corpusFor(b), opts.Seed)
		if err != nil {
			return out, err
		}
		if err := r2.PrefillRepository(); err != nil {
			return out, err
		}
		var points []Fig9Point
		for i, idx := range order {
			if !evolveRes[i].Evolve.Predicted {
				continue // paper excludes the pre-confidence runs
			}
			repRes, err := r2.RunOne(ScenarioRep, r2.Inputs[idx])
			if err != nil {
				return out, err
			}
			def, err := r.DefaultCycles(r.Inputs[idx])
			if err != nil {
				return out, err
			}
			points = append(points, Fig9Point{
				DefaultMcyc: float64(def) / 1e6,
				EvolveSpd:   evolveRes[i].Speedup,
				RepSpd:      repRes.Speedup,
			})
		}
		sort.Slice(points, func(a, z int) bool {
			return points[a].DefaultMcyc < points[z].DefaultMcyc
		})
		out[name] = points

		fmt.Fprintf(w, "\nFigure 9 — %s: speedup vs default running time (%d predicted runs)\n",
			name, len(points))
		fmt.Fprintf(w, "%10s %10s %10s\n", "def(Mcyc)", "evolve", "rep")
		for _, p := range points {
			fmt.Fprintf(w, "%10.2f %10.3f %10.3f\n", p.DefaultMcyc, p.EvolveSpd, p.RepSpd)
		}
		var times, evs, reps []float64
		for _, p := range points {
			times = append(times, p.DefaultMcyc)
			evs = append(evs, p.EvolveSpd)
			reps = append(reps, p.RepSpd)
		}
		fmt.Fprintf(w, "rank correlation(time, evolve-rep gap): %.3f\n",
			stats.Spearman(times, sub(evs, reps)))
	}
	return out, nil
}

func sub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// PrefillRepository records one profile per corpus input into the Rep
// repository (Figure 9's warm-start, the paper's "histogram of all
// runs"). Each input is executed once under the Rep scenario, whose
// controller records the run.
func (r *Runner) PrefillRepository() error {
	for _, in := range r.Inputs {
		if _, err := r.RunOne(ScenarioRep, in); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Experiment E4 — Figure 10
// ---------------------------------------------------------------------

// Fig10Row holds the speedup distributions of one benchmark.
type Fig10Row struct {
	Program string
	Evolve  stats.FiveNum
	Rep     stats.FiveNum
}

// Figure10 reproduces the paper's Figure 10: boxplots of per-run speedups
// for every benchmark under Evolve and Rep, over the same input order.
func Figure10(w io.Writer, opts Options) ([]Fig10Row, error) {
	rows := make([]Fig10Row, len(opts.suite()))
	err := opts.forEachBench(func(i int, b *programs.Benchmark) error {
		r, err := NewRunner(b, opts.corpusFor(b), opts.Seed)
		if err != nil {
			return err
		}
		order := r.Order(rand.New(rand.NewSource(opts.Seed+404)), opts.runsFor(b))
		evolveRes, err := r.RunSequence(ScenarioEvolve, order)
		if err != nil {
			return err
		}
		repRes, err := r.RunSequence(ScenarioRep, order)
		if err != nil {
			return err
		}
		rows[i] = Fig10Row{
			Program: b.Name,
			Evolve:  stats.Summary(Speedups(evolveRes)),
			Rep:     stats.Summary(Speedups(repRes)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	fmt.Fprintln(w, "Figure 10 — speedup distributions (Evolve vs Rep, normalized to Default)")
	fmt.Fprintf(w, "%-11s %-7s %7s %7s %7s %7s %7s  %s\n",
		"Program", "VM", "min", "q1", "median", "q3", "max", "0.5 .. 2.0")
	lo, hi := 0.5, 2.0
	for _, row := range rows {
		for _, v := range []struct {
			name string
			f    stats.FiveNum
		}{{"evolve", row.Evolve}, {"rep", row.Rep}} {
			fmt.Fprintf(w, "%-11s %-7s %7.3f %7.3f %7.3f %7.3f %7.3f  [%s]\n",
				row.Program, v.name, v.f.Min, v.f.Q1, v.f.Median, v.f.Q3, v.f.Max,
				AsciiBox(v.f, lo, hi, 40))
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Experiment E5 — overhead analysis (§V-B.2)
// ---------------------------------------------------------------------

// OverheadRow reports Evolve's bookkeeping overhead for one benchmark.
type OverheadRow struct {
	Program     string
	MeanPct     float64
	MaxPct      float64
	MaxInput    string
	ExtractPart float64 // extraction share of overhead, mean
}

// Overhead reproduces the paper's overhead analysis: the fraction of run
// time Evolve spends on feature extraction and prediction (model
// construction happens after the run and is not charged).
func Overhead(w io.Writer, opts Options) ([]OverheadRow, error) {
	rows := make([]OverheadRow, len(opts.suite()))
	err := opts.forEachBench(func(i int, b *programs.Benchmark) error {
		r, err := NewRunner(b, opts.corpusFor(b), opts.Seed)
		if err != nil {
			return err
		}
		order := r.Order(rand.New(rand.NewSource(opts.Seed+505)), opts.runsFor(b))
		results, err := r.RunSequence(ScenarioEvolve, order)
		if err != nil {
			return err
		}
		row := OverheadRow{Program: b.Name}
		var fracs []float64
		for _, res := range results {
			frac := 100 * float64(res.OverheadCycles) / float64(res.Cycles)
			fracs = append(fracs, frac)
			if frac > row.MaxPct {
				row.MaxPct, row.MaxInput = frac, res.InputID
			}
		}
		row.MeanPct = stats.Mean(fracs)
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Overhead — Evolve bookkeeping as % of run time")
	fmt.Fprintf(w, "%-11s %8s %8s  %s\n", "Program", "mean%", "max%", "max on input")
	for _, row := range rows {
		fmt.Fprintf(w, "%-11s %8.3f %8.3f  %s\n", row.Program, row.MeanPct, row.MaxPct, row.MaxInput)
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Experiment E6 — sensitivity (§V-B.3)
// ---------------------------------------------------------------------

// SensitivityResult summarizes the threshold and order studies.
type SensitivityResult struct {
	Program string
	// ByThreshold maps TH_c to the Evolve speedup distribution.
	ByThreshold map[float64]stats.FiveNum
	// OrderWorstEvolve / OrderWorstRep: worst-case per-order minimum
	// speedup across the tried input orders.
	OrderMinEvolve []float64
	OrderMinRep    []float64
}

// Sensitivity reproduces §V-B.3: higher confidence thresholds make Evolve
// more conservative (smaller speedup ranges, better worst case), and
// changing the input arrival order hurts Rep more than Evolve.
func Sensitivity(w io.Writer, opts Options) ([]SensitivityResult, error) {
	benches := opts.Benchmarks
	if benches == nil {
		benches = []string{"mtrt", "raytracer"}
	}
	thresholds := []float64{0.5, 0.7, 0.9}
	orders := 5
	if opts.Quick {
		orders = 3
	}

	var out []SensitivityResult
	for _, name := range benches {
		b := programs.ByName(name)
		if b == nil {
			return out, fmt.Errorf("harness: no benchmark %q", name)
		}
		res := SensitivityResult{Program: name, ByThreshold: map[float64]stats.FiveNum{}}

		for _, th := range thresholds {
			r, err := NewRunner(b, opts.corpusFor(b), opts.Seed)
			if err != nil {
				return out, err
			}
			r.EvolveCfg.ConfidenceThreshold = th
			r.ResetState()
			order := r.Order(rand.New(rand.NewSource(opts.Seed+606)), opts.runsFor(b))
			results, err := r.RunSequence(ScenarioEvolve, order)
			if err != nil {
				return out, err
			}
			res.ByThreshold[th] = stats.Summary(Speedups(results))
		}

		for o := 0; o < orders; o++ {
			r, err := NewRunner(b, opts.corpusFor(b), opts.Seed)
			if err != nil {
				return out, err
			}
			order := r.Order(rand.New(rand.NewSource(opts.Seed+700+int64(o))), opts.runsFor(b))
			evolveRes, err := r.RunSequence(ScenarioEvolve, order)
			if err != nil {
				return out, err
			}
			repRes, err := r.RunSequence(ScenarioRep, order)
			if err != nil {
				return out, err
			}
			e := stats.Summary(Speedups(evolveRes))
			p := stats.Summary(Speedups(repRes))
			res.OrderMinEvolve = append(res.OrderMinEvolve, e.Min)
			res.OrderMinRep = append(res.OrderMinRep, p.Min)
		}
		out = append(out, res)

		fmt.Fprintf(w, "\nSensitivity — %s\n", name)
		fmt.Fprintf(w, "  threshold   min     q1    med     q3    max\n")
		for _, th := range thresholds {
			f := res.ByThreshold[th]
			fmt.Fprintf(w, "   TH=%.1f  %6.3f %6.3f %6.3f %6.3f %6.3f\n",
				th, f.Min, f.Q1, f.Median, f.Q3, f.Max)
		}
		fmt.Fprintf(w, "  worst-case speedup per input order:\n")
		fmt.Fprintf(w, "   evolve: %s (spread %.3f)\n",
			fmtFloats(res.OrderMinEvolve), spread(res.OrderMinEvolve))
		fmt.Fprintf(w, "   rep:    %s (spread %.3f)\n",
			fmtFloats(res.OrderMinRep), spread(res.OrderMinRep))
	}
	return out, nil
}

func fmtFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.3f", x)
	}
	return strings.Join(parts, " ")
}

func spread(xs []float64) float64 {
	lo, hi := stats.MinMax(xs)
	return hi - lo
}

// ---------------------------------------------------------------------
// Experiment E7 — ablations (this reproduction's additions)
// ---------------------------------------------------------------------

// AblationResult compares design variants of the evolvable VM.
type AblationResult struct {
	Program string
	// Guarded vs unguarded discriminative prediction: speedup summary of
	// the first quarter of the sequence (where immature models bite).
	EarlyGuarded   stats.FiveNum
	EarlyUnguarded stats.FiveNum
	// Features ablation: accuracy with the full vector vs with the
	// vector truncated to its first feature.
	AccFull      float64
	AccTruncated float64
}

// Ablation runs the design ablations DESIGN.md calls out: (a) disabling
// the discriminative guard (predict from run 1), and (b) collapsing the
// XICL feature vector to a single feature.
func Ablation(w io.Writer, opts Options) ([]AblationResult, error) {
	benches := opts.Benchmarks
	if benches == nil {
		benches = []string{"mtrt", "compress"}
	}
	var out []AblationResult
	for _, name := range benches {
		b := programs.ByName(name)
		if b == nil {
			return out, fmt.Errorf("harness: no benchmark %q", name)
		}
		res := AblationResult{Program: name}

		run := func(threshold float64, truncate bool, orderSeed int64) ([]*RunResult, *core.Evolver, error) {
			r, err := NewRunner(b, opts.corpusFor(b), opts.Seed)
			if err != nil {
				return nil, nil, err
			}
			r.EvolveCfg.ConfidenceThreshold = threshold
			r.ResetState()
			r.TruncateFeatures = truncate
			order := r.Order(rand.New(rand.NewSource(orderSeed)), opts.runsFor(b))
			results, err := r.RunSequence(ScenarioEvolve, order)
			return results, r.Evolver, err
		}

		// Aggregate the early-run (first quarter) speedups across several
		// arrival orders: the guard's value is worst-case protection, so
		// a single lucky order under-reports it.
		orders := 5
		if opts.Quick {
			orders = 2
		}
		var earlyGuarded, earlyUnguarded []float64
		for o := 0; o < orders; o++ {
			seed := opts.Seed + 808 + int64(o)
			guarded, _, err := run(0.7, false, seed)
			if err != nil {
				return out, err
			}
			unguarded, _, err := run(-1, false, seed) // conf > -1 always: no guard
			if err != nil {
				return out, err
			}
			quarter := len(guarded) / 4
			if quarter < 2 {
				quarter = 2
			}
			earlyGuarded = append(earlyGuarded, Speedups(guarded[:quarter])...)
			earlyUnguarded = append(earlyUnguarded, Speedups(unguarded[:quarter])...)
		}
		res.EarlyGuarded = stats.Summary(earlyGuarded)
		res.EarlyUnguarded = stats.Summary(earlyUnguarded)

		_, evFull, err := run(0.7, false, opts.Seed+808)
		if err != nil {
			return out, err
		}
		_, evTrunc, err := run(0.7, true, opts.Seed+808)
		if err != nil {
			return out, err
		}
		res.AccFull = lastConfAcc(evFull)
		res.AccTruncated = lastConfAcc(evTrunc)
		out = append(out, res)

		fmt.Fprintf(w, "\nAblation — %s\n", name)
		fmt.Fprintf(w, "  early runs (first quarter), guarded:   min=%.3f med=%.3f\n",
			res.EarlyGuarded.Min, res.EarlyGuarded.Median)
		fmt.Fprintf(w, "  early runs (first quarter), unguarded: min=%.3f med=%.3f\n",
			res.EarlyUnguarded.Min, res.EarlyUnguarded.Median)
		fmt.Fprintf(w, "  mean accuracy, full features: %.3f; single feature: %.3f\n",
			res.AccFull, res.AccTruncated)
	}
	return out, nil
}

func lastConfAcc(ev *core.Evolver) float64 {
	hist := ev.History()
	if len(hist) == 0 {
		return 0
	}
	var accs []float64
	for _, rec := range hist[len(hist)/2:] {
		accs = append(accs, rec.Accuracy)
	}
	return stats.Mean(accs)
}
