package harness

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"evolvevm/internal/core"
	"evolvevm/internal/exec"
	"evolvevm/internal/programs"
	"evolvevm/internal/session"
	"evolvevm/internal/stats"
)

// Options scales the experiments. The zero value reproduces the paper's
// setup; Quick shrinks corpora and sequences for fast test runs.
type Options struct {
	// Seed drives corpus generation and input arrival order. Derived
	// random streams are named, not offset: see stats.Stream.
	Seed int64
	// Benchmarks filters the suite by name (nil = all).
	Benchmarks []string
	// Runs overrides the runs-per-benchmark (0 = the paper's 30, or 70
	// for benchmarks with many inputs).
	Runs int
	// Corpus overrides each benchmark's corpus size (0 = default).
	Corpus int
	// Quick reduces corpora and sequences for unit tests.
	Quick bool
	// Parallel runs independent work units concurrently on one worker per
	// CPU. Results are bit-identical either way: units are scheduled by a
	// deterministic dependency graph and merged in canonical order.
	Parallel bool
	// Workers overrides the scheduler's worker count (0 = derive from
	// Parallel). Workers=1 is fully serial.
	Workers int
	// Session, when non-nil, memoizes completed work units and enables
	// checkpoint/resume (expdriver -checkpoint/-resume). Nil runs with an
	// ephemeral session.
	Session *session.Session
	// Substrate sets the host-performance toggles of every runner the
	// experiment builds (zero value: everything on). Virtual results are
	// provably independent of it (the substrate equivalence suites); the
	// benchmark variant columns use it to measure the host-side effect of
	// individual tiers on whole experiments.
	Substrate exec.Substrate
}

// newRunner builds a runner for b with the experiment's substrate
// toggles applied.
func (o Options) newRunner(b *programs.Benchmark) (*Runner, error) {
	r, err := NewRunner(b, o.corpusFor(b), o.Seed)
	if err != nil {
		return nil, err
	}
	r.Substrate = o.Substrate
	return r, nil
}

func (o Options) suite() []*programs.Benchmark {
	all := programs.All()
	if len(o.Benchmarks) == 0 {
		return all
	}
	var out []*programs.Benchmark
	for _, name := range o.Benchmarks {
		if b := programs.ByName(name); b != nil {
			out = append(out, b)
		}
	}
	return out
}

func (o Options) corpusFor(b *programs.Benchmark) int {
	if o.Corpus > 0 {
		return o.Corpus
	}
	if o.Quick {
		n := b.DefaultCorpusSize / 3
		if n < 3 {
			n = 3
		}
		return n
	}
	return b.DefaultCorpusSize
}

func (o Options) runsFor(b *programs.Benchmark) int {
	if o.Runs > 0 {
		return o.Runs
	}
	if o.Quick {
		return 12
	}
	// Paper: 30 runs, or 70 for programs with many inputs.
	if b.DefaultCorpusSize >= 40 {
		return 70
	}
	return 30
}

// sharedRunner builds one lazily constructed runner shared by the units
// of one benchmark arm. Construction happens inside whichever unit runs
// first; sync.OnceValues makes that safe and exactly-once.
func (o Options) sharedRunner(b *programs.Benchmark) func() (*Runner, error) {
	return sync.OnceValues(func() (*Runner, error) {
		return o.newRunner(b)
	})
}

// ---------------------------------------------------------------------
// Experiment E1 — Table I
// ---------------------------------------------------------------------

// Table1Row mirrors one row of the paper's Table I.
type Table1Row struct {
	Program   string
	Suite     string
	Inputs    int
	MinMcyc   float64 // min default running time, Mcycles (the paper's s)
	MaxMcyc   float64
	TotalFeat int
	UsedFeat  int
	Conf      float64 // mean confidence over the second half of the runs
	Acc       float64 // mean prediction accuracy over the second half
}

// table1Defaults is the corpus-characterization unit of one benchmark.
type table1Defaults struct {
	Inputs    int
	MinMcyc   float64
	MaxMcyc   float64
	TotalFeat int
}

// table1Evolve is the learning unit of one benchmark.
type table1Evolve struct {
	Conf     float64
	Acc      float64
	UsedFeat int
}

// Table1 reproduces the paper's Table I: per benchmark, the corpus size,
// the running-time range under the Default VM, the raw and tree-selected
// feature counts, and Evolve's confidence and accuracy.
func Table1(ctx context.Context, w io.Writer, opts Options) ([]Table1Row, error) {
	suite := opts.suite()
	p := opts.planner("table1")
	defs := make([]table1Defaults, len(suite))
	evs := make([]table1Evolve, len(suite))
	for i, b := range suite {
		b := b
		runner := opts.sharedRunner(b)
		unit(p, "defaults/"+b.Name, &defs[i], nil, func(ctx context.Context) (table1Defaults, error) {
			var out table1Defaults
			r, err := runner()
			if err != nil {
				return out, err
			}
			if err := r.WarmDefaults(ctx); err != nil {
				return out, err
			}
			minC, maxC := int64(1<<62), int64(0)
			for _, in := range r.Inputs {
				c, err := r.DefaultCycles(ctx, in)
				if err != nil {
					return out, err
				}
				if c < minC {
					minC = c
				}
				if c > maxC {
					maxC = c
				}
			}
			vec, _, err := r.Features(r.Inputs[0])
			if err != nil {
				return out, err
			}
			return table1Defaults{
				Inputs:    len(r.Inputs),
				MinMcyc:   float64(minC) / 1e6,
				MaxMcyc:   float64(maxC) / 1e6,
				TotalFeat: len(vec),
			}, nil
		})
		unit(p, "evolve/"+b.Name, &evs[i], nil, func(ctx context.Context) (table1Evolve, error) {
			var out table1Evolve
			r, err := runner()
			if err != nil {
				return out, err
			}
			order := r.Order(stats.Stream(opts.Seed, "table1", "order", b.Name), opts.runsFor(b))
			results, err := r.RunSequence(ctx, ScenarioEvolve, order)
			if err != nil {
				return out, err
			}
			var confs, accs []float64
			for _, res := range results[len(results)/2:] {
				if res.Evolve != nil {
					confs = append(confs, res.Evolve.Confidence)
					accs = append(accs, res.Evolve.Accuracy)
				}
			}
			return table1Evolve{
				Conf:     stats.Mean(confs),
				Acc:      stats.Mean(accs),
				UsedFeat: len(r.Evolver().UsedFeatureNames()),
			}, nil
		})
	}
	if err := p.run(ctx, opts); err != nil {
		return nil, err
	}

	rows := make([]Table1Row, len(suite))
	for i, b := range suite {
		rows[i] = Table1Row{
			Program: b.Name, Suite: b.Suite,
			Inputs: defs[i].Inputs, MinMcyc: defs[i].MinMcyc, MaxMcyc: defs[i].MaxMcyc,
			TotalFeat: defs[i].TotalFeat, UsedFeat: evs[i].UsedFeat,
			Conf: evs[i].Conf, Acc: evs[i].Acc,
		}
	}

	fmt.Fprintln(w, "Table I — Benchmarks (running time in Mcycles; conf/acc from Evolve)")
	fmt.Fprintf(w, "%-11s %-7s %7s %9s %9s %6s %5s %6s %6s\n",
		"Program", "Suite", "#Inputs", "MinTime", "MaxTime", "Total", "Used", "conf", "acc")
	for _, row := range rows {
		fmt.Fprintf(w, "%-11s %-7s %7d %9.2f %9.2f %6d %5d %6.2f %6.2f\n",
			row.Program, row.Suite, row.Inputs, row.MinMcyc, row.MaxMcyc,
			row.TotalFeat, row.UsedFeat, row.Conf, row.Acc)
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Experiment E2 — Figure 8
// ---------------------------------------------------------------------

// Fig8Series holds the temporal curves for one benchmark.
type Fig8Series struct {
	Program    string
	Confidence []float64
	Accuracy   []float64
	EvolveSpd  []float64
	RepSpd     []float64
}

type fig8Evolve struct {
	Confidence []float64
	Accuracy   []float64
	Speedup    []float64
}

// Figure8 reproduces the paper's Figure 8 for Mtrt and RayTracer: the
// temporal evolution of Evolve's confidence and prediction accuracy, with
// per-run speedups of Evolve and Rep over Default under the same random
// input arrival order.
func Figure8(ctx context.Context, w io.Writer, opts Options) ([]Fig8Series, error) {
	if opts.Benchmarks == nil {
		opts.Benchmarks = []string{"mtrt", "raytracer"}
	}
	// suite() drops unknown names silently, which would desync the
	// index-addressed slots below; reject them here instead.
	for _, name := range opts.Benchmarks {
		if programs.ByName(name) == nil {
			return nil, fmt.Errorf("harness: no benchmark %q", name)
		}
	}
	suite := opts.suite()
	p := opts.planner("figure8")
	evs := make([]fig8Evolve, len(suite))
	reps := make([][]float64, len(suite))
	runsBy := make([]int, len(suite))
	for i, b := range suite {
		b := b
		runsBy[i] = opts.runsFor(b)
		runner := opts.sharedRunner(b)
		orderFor := func(r *Runner) []int {
			return r.Order(stats.Stream(opts.Seed, "figure8", "order", b.Name), opts.runsFor(b))
		}
		unit(p, "evolve/"+b.Name, &evs[i], nil, func(ctx context.Context) (fig8Evolve, error) {
			var out fig8Evolve
			r, err := runner()
			if err != nil {
				return out, err
			}
			results, err := r.RunSequence(ctx, ScenarioEvolve, orderFor(r))
			if err != nil {
				return out, err
			}
			for _, res := range results {
				out.Confidence = append(out.Confidence, res.Evolve.Confidence)
				out.Accuracy = append(out.Accuracy, res.Evolve.Accuracy)
				out.Speedup = append(out.Speedup, res.Speedup)
			}
			return out, nil
		})
		unit(p, "rep/"+b.Name, &reps[i], nil, func(ctx context.Context) ([]float64, error) {
			r, err := runner()
			if err != nil {
				return nil, err
			}
			results, err := r.RunSequence(ctx, ScenarioRep, orderFor(r))
			if err != nil {
				return nil, err
			}
			return Speedups(results), nil
		})
	}
	if err := p.run(ctx, opts); err != nil {
		return nil, err
	}

	out := make([]Fig8Series, len(suite))
	for i, b := range suite {
		out[i] = Fig8Series{
			Program:    b.Name,
			Confidence: evs[i].Confidence,
			Accuracy:   evs[i].Accuracy,
			EvolveSpd:  evs[i].Speedup,
			RepSpd:     reps[i],
		}
	}
	for i, s := range out {
		fmt.Fprintf(w, "\nFigure 8 — %s (%d runs)\n", s.Program, runsBy[i])
		AsciiSeries(w, "confidence (*) and prediction accuracy (o)",
			[]string{"confidence", "accuracy"},
			[][]float64{s.Confidence, s.Accuracy}, 10)
		AsciiSeries(w, "speedup over Default: Evolve (*) vs Rep (o)",
			[]string{"evolve speedup", "rep speedup"},
			[][]float64{s.EvolveSpd, s.RepSpd}, 10)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Experiment E3 — Figure 9
// ---------------------------------------------------------------------

// Fig9Point is one run in the running-time/speedup correlation study.
type Fig9Point struct {
	DefaultMcyc float64
	EvolveSpd   float64
	RepSpd      float64
}

// fig9Evolve records the learning sequence: which runs the guard
// released, their speedups, and their inputs' default times.
type fig9Evolve struct {
	Order     []int
	Predicted []bool
	Speedup   []float64
	DefCycles []int64
}

// Figure9 reproduces the paper's Figure 9 for Mtrt and Compress: the
// correlation between a run's Default running time and the speedup Evolve
// achieves, against Rep using a repository pre-filled with the whole
// corpus (the paper's "histogram of all runs" to avoid warmup). The
// initial non-predicting Evolve runs are excluded, as in the paper.
func Figure9(ctx context.Context, w io.Writer, opts Options) (map[string][]Fig9Point, error) {
	benches := opts.Benchmarks
	if benches == nil {
		benches = []string{"mtrt", "compress"}
	}
	for _, name := range benches {
		if programs.ByName(name) == nil {
			return nil, fmt.Errorf("harness: no benchmark %q", name)
		}
	}
	p := opts.planner("figure9")
	evs := make([]fig9Evolve, len(benches))
	reps := make([][]float64, len(benches))
	for i, name := range benches {
		i, name := i, name
		b := programs.ByName(name)
		runs := opts.runsFor(b)
		if !opts.Quick && opts.Runs == 0 && name == "mtrt" {
			runs = 92 // the paper's Mtrt sequence length
		}
		evKey := unit(p, "evolve/"+name, &evs[i], nil, func(ctx context.Context) (fig9Evolve, error) {
			var out fig9Evolve
			r, err := opts.newRunner(b)
			if err != nil {
				return out, err
			}
			out.Order = r.Order(stats.Stream(opts.Seed, "figure9", "order", name), runs)
			results, err := r.RunSequence(ctx, ScenarioEvolve, out.Order)
			if err != nil {
				return out, err
			}
			for k, res := range results {
				def, err := r.DefaultCycles(ctx, r.Inputs[out.Order[k]])
				if err != nil {
					return out, err
				}
				out.Predicted = append(out.Predicted, res.Evolve.Predicted)
				out.Speedup = append(out.Speedup, res.Speedup)
				out.DefCycles = append(out.DefCycles, def)
			}
			return out, nil
		})
		// Rep with a warmed repository: record a Default profile of every
		// corpus input once, then measure each predicted sequenced run.
		// Depends on the evolve unit: the guard's Predicted flags select
		// which runs execute, and Rep's state evolves per executed run.
		unit(p, "rep/"+name, &reps[i], []string{evKey}, func(ctx context.Context) ([]float64, error) {
			r2, err := opts.newRunner(b)
			if err != nil {
				return nil, err
			}
			if err := r2.PrefillRepository(ctx); err != nil {
				return nil, err
			}
			var spd []float64
			for k, idx := range evs[i].Order {
				if !evs[i].Predicted[k] {
					continue // paper excludes the pre-confidence runs
				}
				res, err := r2.RunOne(ctx, ScenarioRep, r2.Inputs[idx])
				if err != nil {
					return nil, err
				}
				spd = append(spd, res.Speedup)
			}
			return spd, nil
		})
	}
	if err := p.run(ctx, opts); err != nil {
		return nil, err
	}

	out := make(map[string][]Fig9Point)
	for i, name := range benches {
		var points []Fig9Point
		rep := reps[i]
		n := 0
		for k := range evs[i].Order {
			if !evs[i].Predicted[k] {
				continue
			}
			points = append(points, Fig9Point{
				DefaultMcyc: float64(evs[i].DefCycles[k]) / 1e6,
				EvolveSpd:   evs[i].Speedup[k],
				RepSpd:      rep[n],
			})
			n++
		}
		sort.Slice(points, func(a, z int) bool {
			return points[a].DefaultMcyc < points[z].DefaultMcyc
		})
		out[name] = points

		fmt.Fprintf(w, "\nFigure 9 — %s: speedup vs default running time (%d predicted runs)\n",
			name, len(points))
		fmt.Fprintf(w, "%10s %10s %10s\n", "def(Mcyc)", "evolve", "rep")
		for _, pt := range points {
			fmt.Fprintf(w, "%10.2f %10.3f %10.3f\n", pt.DefaultMcyc, pt.EvolveSpd, pt.RepSpd)
		}
		var times, evsS, repsS []float64
		for _, pt := range points {
			times = append(times, pt.DefaultMcyc)
			evsS = append(evsS, pt.EvolveSpd)
			repsS = append(repsS, pt.RepSpd)
		}
		fmt.Fprintf(w, "rank correlation(time, evolve-rep gap): %.3f\n",
			stats.Spearman(times, sub(evsS, repsS)))
	}
	return out, nil
}

func sub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// PrefillRepository records one profile per corpus input into the Rep
// repository (Figure 9's warm-start, the paper's "histogram of all
// runs"). The recorded quantity is the per-function baseline-work
// profile, which is controller- and level-independent — so the prefill
// replays each input's profile from the process-wide baseline cache
// (measuring it once if missing) instead of executing a throwaway run
// per input. The resulting repository state is bit-identical to one
// built by executing every input under the Rep scenario.
func (r *Runner) PrefillRepository(ctx context.Context) error {
	repo := r.State.Repo()
	for _, in := range r.Inputs {
		bl, err := r.baseline(ctx, in)
		if err != nil {
			return err
		}
		repo.RecordWork(bl.work)
	}
	return nil
}

// ---------------------------------------------------------------------
// Experiment E4 — Figure 10
// ---------------------------------------------------------------------

// Fig10Row holds the speedup distributions of one benchmark.
type Fig10Row struct {
	Program string
	Evolve  stats.FiveNum
	Rep     stats.FiveNum
}

// Figure10 reproduces the paper's Figure 10: boxplots of per-run speedups
// for every benchmark under Evolve and Rep, over the same input order.
func Figure10(ctx context.Context, w io.Writer, opts Options) ([]Fig10Row, error) {
	suite := opts.suite()
	p := opts.planner("figure10")
	evolve := make([]stats.FiveNum, len(suite))
	repSum := make([]stats.FiveNum, len(suite))
	for i, b := range suite {
		b := b
		runner := opts.sharedRunner(b)
		orderFor := func(r *Runner) []int {
			return r.Order(stats.Stream(opts.Seed, "figure10", "order", b.Name), opts.runsFor(b))
		}
		seq := func(scenario Scenario) func(ctx context.Context) (stats.FiveNum, error) {
			return func(ctx context.Context) (stats.FiveNum, error) {
				r, err := runner()
				if err != nil {
					return stats.FiveNum{}, err
				}
				results, err := r.RunSequence(ctx, scenario, orderFor(r))
				if err != nil {
					return stats.FiveNum{}, err
				}
				return stats.Summary(Speedups(results)), nil
			}
		}
		unit(p, "evolve/"+b.Name, &evolve[i], nil, seq(ScenarioEvolve))
		unit(p, "rep/"+b.Name, &repSum[i], nil, seq(ScenarioRep))
	}
	if err := p.run(ctx, opts); err != nil {
		return nil, err
	}

	rows := make([]Fig10Row, len(suite))
	for i, b := range suite {
		rows[i] = Fig10Row{Program: b.Name, Evolve: evolve[i], Rep: repSum[i]}
	}
	fmt.Fprintln(w, "Figure 10 — speedup distributions (Evolve vs Rep, normalized to Default)")
	fmt.Fprintf(w, "%-11s %-7s %7s %7s %7s %7s %7s  %s\n",
		"Program", "VM", "min", "q1", "median", "q3", "max", "0.5 .. 2.0")
	lo, hi := 0.5, 2.0
	for _, row := range rows {
		for _, v := range []struct {
			name string
			f    stats.FiveNum
		}{{"evolve", row.Evolve}, {"rep", row.Rep}} {
			fmt.Fprintf(w, "%-11s %-7s %7.3f %7.3f %7.3f %7.3f %7.3f  [%s]\n",
				row.Program, v.name, v.f.Min, v.f.Q1, v.f.Median, v.f.Q3, v.f.Max,
				AsciiBox(v.f, lo, hi, 40))
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Experiment E5 — overhead analysis (§V-B.2)
// ---------------------------------------------------------------------

// OverheadRow reports Evolve's bookkeeping overhead for one benchmark.
type OverheadRow struct {
	Program     string
	MeanPct     float64
	MaxPct      float64
	MaxInput    string
	ExtractPart float64 // extraction share of overhead, mean
}

// Overhead reproduces the paper's overhead analysis: the fraction of run
// time Evolve spends on feature extraction and prediction (model
// construction happens after the run and is not charged).
func Overhead(ctx context.Context, w io.Writer, opts Options) ([]OverheadRow, error) {
	suite := opts.suite()
	p := opts.planner("overhead")
	rows := make([]OverheadRow, len(suite))
	for i, b := range suite {
		i, b := i, b
		unit(p, "evolve/"+b.Name, &rows[i], nil, func(ctx context.Context) (OverheadRow, error) {
			row := OverheadRow{Program: b.Name}
			r, err := opts.newRunner(b)
			if err != nil {
				return row, err
			}
			order := r.Order(stats.Stream(opts.Seed, "overhead", "order", b.Name), opts.runsFor(b))
			results, err := r.RunSequence(ctx, ScenarioEvolve, order)
			if err != nil {
				return row, err
			}
			var fracs []float64
			for _, res := range results {
				frac := 100 * float64(res.OverheadCycles) / float64(res.Cycles)
				fracs = append(fracs, frac)
				if frac > row.MaxPct {
					row.MaxPct, row.MaxInput = frac, res.InputID
				}
			}
			row.MeanPct = stats.Mean(fracs)
			return row, nil
		})
	}
	if err := p.run(ctx, opts); err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Overhead — Evolve bookkeeping as % of run time")
	fmt.Fprintf(w, "%-11s %8s %8s  %s\n", "Program", "mean%", "max%", "max on input")
	for _, row := range rows {
		fmt.Fprintf(w, "%-11s %8.3f %8.3f  %s\n", row.Program, row.MeanPct, row.MaxPct, row.MaxInput)
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Experiment E6 — sensitivity (§V-B.3)
// ---------------------------------------------------------------------

// SensitivityResult summarizes the threshold and order studies.
type SensitivityResult struct {
	Program string
	// ByThreshold maps TH_c to the Evolve speedup distribution.
	ByThreshold map[float64]stats.FiveNum
	// OrderWorstEvolve / OrderWorstRep: worst-case per-order minimum
	// speedup across the tried input orders.
	OrderMinEvolve []float64
	OrderMinRep    []float64
}

type sensitivityOrder struct {
	MinEvolve float64
	MinRep    float64
}

// Sensitivity reproduces §V-B.3: higher confidence thresholds make Evolve
// more conservative (smaller speedup ranges, better worst case), and
// changing the input arrival order hurts Rep more than Evolve. Every
// ⟨threshold⟩ and ⟨order⟩ arm is an independent work unit on its own
// fresh learner, so all of them run concurrently.
func Sensitivity(ctx context.Context, w io.Writer, opts Options) ([]SensitivityResult, error) {
	benches := opts.Benchmarks
	if benches == nil {
		benches = []string{"mtrt", "raytracer"}
	}
	for _, name := range benches {
		if programs.ByName(name) == nil {
			return nil, fmt.Errorf("harness: no benchmark %q", name)
		}
	}
	thresholds := []float64{0.5, 0.7, 0.9}
	orders := 5
	if opts.Quick {
		orders = 3
	}

	p := opts.planner("sensitivity")
	byTh := make([][]stats.FiveNum, len(benches))
	byOrder := make([][]sensitivityOrder, len(benches))
	for i, name := range benches {
		name := name
		b := programs.ByName(name)
		byTh[i] = make([]stats.FiveNum, len(thresholds))
		byOrder[i] = make([]sensitivityOrder, orders)

		for t, th := range thresholds {
			th := th
			unit(p, fmt.Sprintf("threshold/%s/%.1f", name, th), &byTh[i][t], nil,
				func(ctx context.Context) (stats.FiveNum, error) {
					r, err := opts.newRunner(b)
					if err != nil {
						return stats.FiveNum{}, err
					}
					r.EvolveCfg.ConfidenceThreshold = th
					r.ResetState()
					// All thresholds replay the same arrival order.
					order := r.Order(stats.Stream(opts.Seed, "sensitivity", "threshold-order", name),
						opts.runsFor(b))
					results, err := r.RunSequence(ctx, ScenarioEvolve, order)
					if err != nil {
						return stats.FiveNum{}, err
					}
					return stats.Summary(Speedups(results)), nil
				})
		}
		for o := 0; o < orders; o++ {
			o := o
			unit(p, fmt.Sprintf("order/%s/%d", name, o), &byOrder[i][o], nil,
				func(ctx context.Context) (sensitivityOrder, error) {
					var out sensitivityOrder
					r, err := opts.newRunner(b)
					if err != nil {
						return out, err
					}
					order := r.Order(stats.Stream(opts.Seed, "sensitivity", "order", name, strconv.Itoa(o)),
						opts.runsFor(b))
					evolveRes, err := r.RunSequence(ctx, ScenarioEvolve, order)
					if err != nil {
						return out, err
					}
					repRes, err := r.RunSequence(ctx, ScenarioRep, order)
					if err != nil {
						return out, err
					}
					out.MinEvolve = stats.Summary(Speedups(evolveRes)).Min
					out.MinRep = stats.Summary(Speedups(repRes)).Min
					return out, nil
				})
		}
	}
	if err := p.run(ctx, opts); err != nil {
		return nil, err
	}

	var out []SensitivityResult
	for i, name := range benches {
		res := SensitivityResult{Program: name, ByThreshold: map[float64]stats.FiveNum{}}
		for t, th := range thresholds {
			res.ByThreshold[th] = byTh[i][t]
		}
		for o := 0; o < orders; o++ {
			res.OrderMinEvolve = append(res.OrderMinEvolve, byOrder[i][o].MinEvolve)
			res.OrderMinRep = append(res.OrderMinRep, byOrder[i][o].MinRep)
		}
		out = append(out, res)

		fmt.Fprintf(w, "\nSensitivity — %s\n", name)
		fmt.Fprintf(w, "  threshold   min     q1    med     q3    max\n")
		for _, th := range thresholds {
			f := res.ByThreshold[th]
			fmt.Fprintf(w, "   TH=%.1f  %6.3f %6.3f %6.3f %6.3f %6.3f\n",
				th, f.Min, f.Q1, f.Median, f.Q3, f.Max)
		}
		fmt.Fprintf(w, "  worst-case speedup per input order:\n")
		fmt.Fprintf(w, "   evolve: %s (spread %.3f)\n",
			fmtFloats(res.OrderMinEvolve), spread(res.OrderMinEvolve))
		fmt.Fprintf(w, "   rep:    %s (spread %.3f)\n",
			fmtFloats(res.OrderMinRep), spread(res.OrderMinRep))
	}
	return out, nil
}

func fmtFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.3f", x)
	}
	return strings.Join(parts, " ")
}

func spread(xs []float64) float64 {
	lo, hi := stats.MinMax(xs)
	return hi - lo
}

// ---------------------------------------------------------------------
// Experiment E7 — ablations (this reproduction's additions)
// ---------------------------------------------------------------------

// AblationResult compares design variants of the evolvable VM.
type AblationResult struct {
	Program string
	// Guarded vs unguarded discriminative prediction: speedup summary of
	// the first quarter of the sequence (where immature models bite).
	EarlyGuarded   stats.FiveNum
	EarlyUnguarded stats.FiveNum
	// Features ablation: accuracy with the full vector vs with the
	// vector truncated to its first feature.
	AccFull      float64
	AccTruncated float64
}

// ablationArm is one sequence variant's outcome: the early-run speedups
// (first quarter) and the second-half mean accuracy.
type ablationArm struct {
	Early []float64
	Acc   float64
}

// Ablation runs the design ablations DESIGN.md calls out: (a) disabling
// the discriminative guard (predict from run 1), and (b) collapsing the
// XICL feature vector to a single feature. Every ⟨variant, order⟩ arm is
// an independent unit.
func Ablation(ctx context.Context, w io.Writer, opts Options) ([]AblationResult, error) {
	benches := opts.Benchmarks
	if benches == nil {
		benches = []string{"mtrt", "compress"}
	}
	for _, name := range benches {
		if programs.ByName(name) == nil {
			return nil, fmt.Errorf("harness: no benchmark %q", name)
		}
	}
	// Aggregate the early-run (first quarter) speedups across several
	// arrival orders: the guard's value is worst-case protection, so a
	// single lucky order under-reports it.
	orders := 5
	if opts.Quick {
		orders = 2
	}

	p := opts.planner("ablation")
	guarded := make([][]ablationArm, len(benches))
	unguarded := make([][]ablationArm, len(benches))
	truncated := make([]ablationArm, len(benches))
	for i, name := range benches {
		name := name
		b := programs.ByName(name)
		guarded[i] = make([]ablationArm, orders)
		unguarded[i] = make([]ablationArm, orders)

		arm := func(threshold float64, truncate bool, o int) func(ctx context.Context) (ablationArm, error) {
			return func(ctx context.Context) (ablationArm, error) {
				var out ablationArm
				r, err := opts.newRunner(b)
				if err != nil {
					return out, err
				}
				r.EvolveCfg.ConfidenceThreshold = threshold
				r.ResetState()
				r.TruncateFeatures = truncate
				order := r.Order(stats.Stream(opts.Seed, "ablation", "order", name, strconv.Itoa(o)),
					opts.runsFor(b))
				results, err := r.RunSequence(ctx, ScenarioEvolve, order)
				if err != nil {
					return out, err
				}
				quarter := len(results) / 4
				if quarter < 2 {
					quarter = 2
				}
				out.Early = Speedups(results[:quarter])
				out.Acc = lastConfAcc(r.Evolver())
				return out, nil
			}
		}
		for o := 0; o < orders; o++ {
			unit(p, fmt.Sprintf("guarded/%s/%d", name, o), &guarded[i][o], nil, arm(0.7, false, o))
			unit(p, fmt.Sprintf("unguarded/%s/%d", name, o), &unguarded[i][o], nil, arm(-1, false, o))
		}
		// The full-feature accuracy comes from the guarded order-0 arm; only
		// the truncated variant needs its own sequence.
		unit(p, "truncated/"+name, &truncated[i], nil, arm(0.7, true, 0))
	}
	if err := p.run(ctx, opts); err != nil {
		return nil, err
	}

	var out []AblationResult
	for i, name := range benches {
		res := AblationResult{Program: name}
		var earlyGuarded, earlyUnguarded []float64
		for o := 0; o < orders; o++ {
			earlyGuarded = append(earlyGuarded, guarded[i][o].Early...)
			earlyUnguarded = append(earlyUnguarded, unguarded[i][o].Early...)
		}
		res.EarlyGuarded = stats.Summary(earlyGuarded)
		res.EarlyUnguarded = stats.Summary(earlyUnguarded)
		res.AccFull = guarded[i][0].Acc
		res.AccTruncated = truncated[i].Acc
		out = append(out, res)

		fmt.Fprintf(w, "\nAblation — %s\n", name)
		fmt.Fprintf(w, "  early runs (first quarter), guarded:   min=%.3f med=%.3f\n",
			res.EarlyGuarded.Min, res.EarlyGuarded.Median)
		fmt.Fprintf(w, "  early runs (first quarter), unguarded: min=%.3f med=%.3f\n",
			res.EarlyUnguarded.Min, res.EarlyUnguarded.Median)
		fmt.Fprintf(w, "  mean accuracy, full features: %.3f; single feature: %.3f\n",
			res.AccFull, res.AccTruncated)
	}
	return out, nil
}

func lastConfAcc(ev *core.Evolver) float64 {
	hist := ev.History()
	if len(hist) == 0 {
		return 0
	}
	var accs []float64
	for _, rec := range hist[len(hist)/2:] {
		accs = append(accs, rec.Accuracy)
	}
	return stats.Mean(accs)
}
