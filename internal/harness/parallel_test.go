package harness

import (
	"io"
	"testing"
)

func TestParallelTable1Race(t *testing.T) {
	opts := Options{Seed: 2, Quick: true, Parallel: true,
		Benchmarks: []string{"compress", "euler", "moldyn", "search"}}
	seq, err := Table1(io.Discard, Options{Seed: 2, Quick: true,
		Benchmarks: opts.Benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table1(io.Discard, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("row %d differs: sequential %+v parallel %+v", i, seq[i], par[i])
		}
	}
}
