package harness

import (
	"io"
	"testing"
)

func fig8Equal(a, b Fig8Series) bool {
	if a.Program != b.Program {
		return false
	}
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq(a.Confidence, b.Confidence) && eq(a.Accuracy, b.Accuracy) &&
		eq(a.EvolveSpd, b.EvolveSpd) && eq(a.RepSpd, b.RepSpd)
}

func TestParallelFigure8Race(t *testing.T) {
	benches := []string{"compress", "euler", "search"}
	seq, err := Figure8(testCtx, io.Discard, Options{Seed: 5, Quick: true, Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Figure8(testCtx, io.Discard, Options{Seed: 5, Quick: true, Parallel: true,
		Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("series counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !fig8Equal(seq[i], par[i]) {
			t.Errorf("series %d (%s) differs between sequential and parallel runs",
				i, seq[i].Program)
		}
	}
}

func TestParallelTable1Race(t *testing.T) {
	opts := Options{Seed: 2, Quick: true, Parallel: true,
		Benchmarks: []string{"compress", "euler", "moldyn", "search"}}
	seq, err := Table1(testCtx, io.Discard, Options{Seed: 2, Quick: true,
		Benchmarks: opts.Benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table1(testCtx, io.Discard, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("row %d differs: sequential %+v parallel %+v", i, seq[i], par[i])
		}
	}
}
