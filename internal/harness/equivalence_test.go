package harness

import (
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"evolvevm/internal/session"
)

// The acceptance suite of the layering refactor: every experiment must
// produce bit-identical results with the scheduler fully serial, fully
// parallel, and resumed from a mid-experiment checkpoint that carries
// only half the work units. The checkpoint round-trips through a file,
// so the serialized form is what is proven equivalent.

type equivExperiment struct {
	name string
	run  func(t *testing.T, opts Options) any
}

var equivExperiments = []equivExperiment{
	{"table1", func(t *testing.T, opts Options) any {
		rows, err := Table1(testCtx, io.Discard, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}},
	{"figure8", func(t *testing.T, opts Options) any {
		series, err := Figure8(testCtx, io.Discard, opts)
		if err != nil {
			t.Fatal(err)
		}
		return series
	}},
	{"figure9", func(t *testing.T, opts Options) any {
		points, err := Figure9(testCtx, io.Discard, opts)
		if err != nil {
			t.Fatal(err)
		}
		return points
	}},
	{"figure10", func(t *testing.T, opts Options) any {
		rows, err := Figure10(testCtx, io.Discard, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}},
	{"overhead", func(t *testing.T, opts Options) any {
		rows, err := Overhead(testCtx, io.Discard, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}},
	{"sensitivity", func(t *testing.T, opts Options) any {
		res, err := Sensitivity(testCtx, io.Discard, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}},
	{"ablation", func(t *testing.T, opts Options) any {
		res, err := Ablation(testCtx, io.Discard, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}},
	{"gcselection", func(t *testing.T, opts Options) any {
		res, err := GCSelection(testCtx, io.Discard, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}},
}

func equivOpts(name string) Options {
	opts := Options{Seed: 6, Quick: true}
	switch name {
	case "table1", "figure10":
		opts.Benchmarks = []string{"compress", "mtrt"}
	case "figure8", "figure9", "sensitivity":
		opts.Benchmarks = []string{"mtrt"}
	case "overhead", "ablation":
		opts.Benchmarks = []string{"compress"}
	}
	return opts
}

func TestSchedulerEquivalence(t *testing.T) {
	for _, e := range equivExperiments {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			// Serial reference run, recording work units into a session.
			full := session.New()
			serialOpts := equivOpts(e.name)
			serialOpts.Workers = 1
			serialOpts.Session = full
			serial := e.run(t, serialOpts)

			// Fully parallel, no session.
			parOpts := equivOpts(e.name)
			parOpts.Parallel = true
			parallel := e.run(t, parOpts)
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("parallel run diverged from serial:\nserial   %+v\nparallel %+v",
					serial, parallel)
			}

			// Simulate an interrupted run: a checkpoint carrying only the
			// first half of the units, round-tripped through a file.
			partial := session.New()
			keys := full.UnitKeys()
			if len(keys) == 0 {
				t.Fatal("experiment recorded no work units")
			}
			for _, k := range keys[:(len(keys)+1)/2] {
				raw, ok := full.Unit(k)
				if !ok {
					t.Fatalf("unit %q vanished", k)
				}
				partial.CompleteUnit(k, raw)
			}
			path := filepath.Join(t.TempDir(), "checkpoint.json")
			if err := partial.SaveFile(path); err != nil {
				t.Fatal(err)
			}
			restored, err := session.LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			resOpts := equivOpts(e.name)
			resOpts.Parallel = true
			resOpts.Session = restored
			resumed := e.run(t, resOpts)
			if !reflect.DeepEqual(serial, resumed) {
				t.Errorf("resumed run diverged from serial:\nserial  %+v\nresumed %+v",
					serial, resumed)
			}

			// After the resumed run, the session holds every unit again — a
			// second resume would be a pure replay.
			if got := len(restored.UnitKeys()); got != len(keys) {
				t.Errorf("resumed session has %d units, want %d", got, len(keys))
			}
		})
	}
}

// TestResumeIsPureReplay: with every unit cached, the experiment must
// reproduce its results without executing any runs (cheap and identical).
func TestResumeIsPureReplay(t *testing.T) {
	full := session.New()
	opts := equivOpts("table1")
	opts.Session = full
	serial := equivExperiments[0].run(t, opts)

	replayOpts := equivOpts("table1")
	replayOpts.Session = full
	replay := equivExperiments[0].run(t, replayOpts)
	if !reflect.DeepEqual(serial, replay) {
		t.Errorf("pure replay diverged:\nfirst  %+v\nreplay %+v", serial, replay)
	}
}

// TestUnitKeysScopeBySetup: units computed under one (seed, quick, runs,
// corpus) setup must never be replayed under another.
func TestUnitKeysScopeBySetup(t *testing.T) {
	s := session.New()
	a := Options{Seed: 6, Quick: true, Benchmarks: []string{"compress"}, Session: s}
	if _, err := Table1(testCtx, io.Discard, a); err != nil {
		t.Fatal(err)
	}
	before := len(s.UnitKeys())
	if before == 0 {
		t.Fatal("no units recorded")
	}
	b := Options{Seed: 7, Quick: true, Benchmarks: []string{"compress"}, Session: s}
	if _, err := Table1(testCtx, io.Discard, b); err != nil {
		t.Fatal(err)
	}
	after := len(s.UnitKeys())
	if after <= before {
		t.Errorf("different seed reused the same unit keys (%d -> %d)", before, after)
	}
}
