package exec

// Allocation-regression tests for the steady-state hot paths. Each test
// warms its path once (first runs pay one-time costs: plan decode,
// closure compilation, pool population) and then asserts the steady
// state stays allocation-free with testing.AllocsPerRun, so the
// zero-allocation property is locked in by CI rather than measured once
// in a benchmark. Under -race the numeric bounds are skipped (see
// raceEnabled) but every path still executes.

import (
	"context"
	"testing"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/interp"
	"evolvevm/internal/jit"
)

const allocLoopSrc = `
global n
func main() locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load acc
  load i
  ixor
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
`

func allocLoopProg(t *testing.T) *bytecode.Program {
	t.Helper()
	prog, err := bytecode.Assemble("allocloop", allocLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// checkAllocs runs fn through AllocsPerRun and asserts the steady-state
// bound (skipped under the race detector, where sync.Pool drops items at
// random by design).
func checkAllocs(t *testing.T, name string, maxAllocs float64, fn func()) {
	t.Helper()
	fn() // warm: plans, closures, pools
	got := testing.AllocsPerRun(20, fn)
	if raceEnabled {
		t.Logf("%s: %.1f allocs/run (bound %.0f not enforced under -race)", name, got, maxAllocs)
		return
	}
	if got > maxAllocs {
		t.Errorf("%s: %.1f allocs/run, want ≤ %.0f", name, got, maxAllocs)
	}
}

// engineRun resets e, rebinds the loop bound, and runs to completion.
func engineRun(t *testing.T, e *interp.Engine, setup func(e *interp.Engine)) func() {
	return func() {
		e.Reset()
		setup(e)
		if err := e.SetGlobal("n", bytecode.Int(5000)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAllocsInterpStepLoop locks in the per-instruction dispatch loop:
// with batching disabled the engine still runs out of pooled scratch.
func TestAllocsInterpStepLoop(t *testing.T) {
	e := interp.NewEngine(allocLoopProg(t))
	run := engineRun(t, e, func(e *interp.Engine) { e.DisableBatching = true })
	checkAllocs(t, "step loop", 0, run)
}

// TestAllocsFusedPlanExecution locks in the fused block-batched path
// (the default substrate with the closure tier held off).
func TestAllocsFusedPlanExecution(t *testing.T) {
	e := interp.NewEngine(allocLoopProg(t))
	run := engineRun(t, e, func(e *interp.Engine) { e.DisableClosures = true })
	checkAllocs(t, "fused plan", 0, run)
}

// TestAllocsClosureTierExecution locks in the closure-threaded tier:
// after the one-time closure compilation (paid in the warm-up run via
// the shared Code), steady-state segment dispatch is allocation-free.
func TestAllocsClosureTierExecution(t *testing.T) {
	e := interp.NewEngine(allocLoopProg(t))
	run := engineRun(t, e, func(e *interp.Engine) { e.EagerClosures = true })
	checkAllocs(t, "closure tier", 0, run)
}

// TestAllocsRegTier locks in the register-converted trace tier: after
// the one-time trace conversion (paid in the warm-up run via the shared
// Code) and the scratch register file's first growth (pooled with the
// run scratch), steady-state loop iterations are allocation-free.
func TestAllocsRegTier(t *testing.T) {
	e := interp.NewEngine(allocLoopProg(t))
	run := engineRun(t, e, func(e *interp.Engine) { e.EagerRegTier = true })
	checkAllocs(t, "register tier", 0, run)
}

// TestAllocsJitCacheHit locks in the shared-cache hit path: a compiler
// that resolves a compile request from the cross-run cache must not
// allocate once its local memo map has been sized.
func TestAllocsJitCacheHit(t *testing.T) {
	prog := allocLoopProg(t)
	shared := jit.NewCache()
	warm := jit.NewCompiler(prog, jit.Config{})
	warm.UseShared(shared)
	if _, _, err := warm.Compile(0, jit.MaxLevel); err != nil {
		t.Fatal(err)
	}
	c := jit.NewCompiler(prog, jit.Config{})
	checkAllocs(t, "jit cache hit", 0, func() {
		c.Reset() // clears the local memo, keeps its buckets
		c.UseShared(shared)
		if _, _, err := c.Compile(0, jit.MaxLevel); err != nil {
			t.Fatal(err)
		}
	})
	if s := shared.Stats(); s.Hits == 0 {
		t.Fatalf("shared cache never hit: %+v", s)
	}
}

// TestAllocsExecRunCachedProgram locks in the full exec layer: a run of
// a program whose machine is pooled and whose code is in the shared
// cache reuses the caller's outcome buffers and allocates nothing.
func TestAllocsExecRunCachedProgram(t *testing.T) {
	prog := allocLoopProg(t)
	shared := jit.NewCache()
	spec := &RunSpec{
		Prog:       prog,
		SharedCode: shared,
		Setup: func(e *interp.Engine) error {
			return e.SetGlobal("n", bytecode.Int(5000))
		},
	}
	out := &RunOutcome{}
	checkAllocs(t, "exec cached run", 0, func() {
		if err := RunInto(context.Background(), spec, out); err != nil {
			t.Fatal(err)
		}
	})
	if out.Cycles == 0 {
		t.Fatal("run recorded no cycles")
	}
}
