//go:build race

package exec

// raceEnabled relaxes the numeric allocation bounds: under the race
// detector sync.Pool intentionally drops items at random, so pooled hot
// paths allocate nondeterministically. The tests still execute every path
// (catching data races); only the allocs-per-run assertions are skipped.
const raceEnabled = true
