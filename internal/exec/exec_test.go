package exec

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"evolvevm/internal/aos"
	"evolvevm/internal/bytecode"
	"evolvevm/internal/interp"
	"evolvevm/internal/jit"
	"evolvevm/internal/vm"
)

// loopProg assembles the test workload: an n-iteration arithmetic loop,
// hot enough to sample and compile when n is large.
func loopProg(t testing.TB) *bytecode.Program {
	t.Helper()
	prog, err := bytecode.Assemble("cancelloop", `
global n
func main() locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  gload n
  ige
  jnz done
  load acc
  load i
  ixor
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
`)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func loopSpec(t testing.TB, n int64) *RunSpec {
	return &RunSpec{
		Prog:       loopProg(t),
		Jit:        jit.DefaultConfig(),
		Controller: func(m *vm.Machine) vm.Controller { return aos.NewReactive() },
		Setup: func(e *interp.Engine) error {
			return e.SetGlobal("n", bytecode.Int(n))
		},
	}
}

func TestRunProducesOutcome(t *testing.T) {
	out, err := Run(context.Background(), loopSpec(t, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if out.Cycles <= 0 {
		t.Errorf("no cycles charged: %+v", out)
	}
	if len(out.Levels) == 0 {
		t.Error("no per-function levels recorded")
	}
}

// TestNilContext: a nil ctx means "no deadline", not a crash.
func TestNilContext(t *testing.T) {
	if _, err := Run(nil, loopSpec(t, 100)); err != nil {
		t.Fatal(err)
	}
}

// TestPreRunCancellation: an already-canceled context aborts before any
// virtual work, with the typed error and no function attribution.
func TestPreRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, loopSpec(t, 100))
	var cerr *interp.CanceledError
	if !errors.As(err, &cerr) {
		t.Fatalf("got %T (%v), want *interp.CanceledError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if cerr.Fn != "" || cerr.Cycles != 0 {
		t.Errorf("pre-run abort attributed to %q after %d cycles", cerr.Fn, cerr.Cycles)
	}
}

// TestDeadlineAbortsMidFlight: a short deadline on a long run aborts at a
// sample boundary with a typed, located error and a consistent ledger.
func TestDeadlineAbortsMidFlight(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	spec := loopSpec(t, 200_000_000) // far more virtual work than 15ms of host time
	var m *vm.Machine
	spec.Inspect = func(got *vm.Machine) { m = got }
	_, err := Run(ctx, spec)
	var cerr *interp.CanceledError
	if !errors.As(err, &cerr) {
		t.Fatalf("got %T (%v), want *interp.CanceledError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false for %v", err)
	}
	if cerr.Fn == "" || cerr.Cycles == 0 {
		t.Errorf("mid-flight abort not attributed: fn=%q cycles=%d", cerr.Fn, cerr.Cycles)
	}
	if m == nil {
		t.Fatal("Inspect hook not called on abort")
	}
	if lerr := m.LedgerError(); lerr != nil {
		t.Errorf("cycle ledger inconsistent after abort: %v", lerr)
	}
}

// TestCancelBetweenSetupAndRun: cancellation arriving after the pre-run
// check still aborts — the engine polls its interrupt hook at Run start.
func TestCancelBetweenSetupAndRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := loopSpec(t, 100)
	inner := spec.Setup
	spec.Setup = func(e *interp.Engine) error {
		cancel() // fires after exec.Run's own ctx.Err() check passed
		return inner(e)
	}
	_, err := Run(ctx, spec)
	var cerr *interp.CanceledError
	if !errors.As(err, &cerr) {
		t.Fatalf("got %T (%v), want *interp.CanceledError", err, err)
	}
	if cerr.Fn != "" {
		t.Errorf("abort before first instruction attributed to %q", cerr.Fn)
	}
}

func TestSetupErrorWrapped(t *testing.T) {
	spec := loopSpec(t, 100)
	boom := errors.New("bad input binding")
	spec.Setup = func(e *interp.Engine) error { return boom }
	_, err := Run(context.Background(), spec)
	if !errors.Is(err, boom) {
		t.Fatalf("setup error lost: %v", err)
	}
	if !strings.Contains(err.Error(), "exec: setup") {
		t.Errorf("setup error not labeled: %v", err)
	}
}

// TestSubstrateTogglesBitIdentical: the same spec yields the same virtual
// outcome with the host substrate fully on, unfused, and fully off, with
// and without the shared code cache.
func TestSubstrateTogglesBitIdentical(t *testing.T) {
	cache := jit.NewCache()
	variants := []Substrate{
		{NoCodeCache: true, NoFusion: true, NoBatching: true},
		{NoFusion: true},
		{},
	}
	var ref *RunOutcome
	for i, sub := range variants {
		spec := loopSpec(t, 300_000)
		spec.Substrate = sub
		spec.SharedCode = cache
		out, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if ref == nil {
			ref = out
			continue
		}
		if out.Result != ref.Result || out.Cycles != ref.Cycles ||
			out.CompileCycles != ref.CompileCycles || out.TotalSamples != ref.TotalSamples {
			t.Errorf("variant %d diverged:\nref %+v\ngot %+v", i, ref, out)
		}
	}
	if cache.Stats().Hits == 0 {
		t.Error("shared code cache never hit across cached variants")
	}
}
