// Package exec is the stateless per-run execution layer of the system:
// it turns one immutable RunSpec — program, input binding, scenario
// controller, jit/GC configuration, substrate switches — into one
// RunOutcome. It holds no cross-run state of its own (that lives in
// internal/session) and no experiment logic (internal/harness); a spec
// may therefore be executed from any goroutine, and thousands of
// concurrent runs only share immutable inputs plus the explicitly
// thread-safe shared code cache.
//
// Cancellation is first-class: the run's context is threaded into the
// engine's sample-boundary check, so a canceled or deadline-exceeded run
// aborts cleanly mid-flight with a typed *interp.CanceledError and a
// fully attributed cycle ledger (see vm.Machine.LedgerError).
package exec

import (
	"context"
	"fmt"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/gc"
	"evolvevm/internal/interp"
	"evolvevm/internal/jit"
	"evolvevm/internal/vm"
)

// Substrate toggles the host-performance mechanisms of a run. The zero
// value enables everything; each switch exists so the determinism suites
// can prove bit-identical virtual results with any combination disabled.
type Substrate struct {
	NoCodeCache bool // skip the shared cross-run code cache
	NoFusion    bool // batch blocks but without superinstruction fusion
	NoBatching  bool // original per-instruction dispatch only
}

// RunSpec describes one run completely. It is immutable from Run's point
// of view: Run never writes to it, so one spec value may be reused (or
// copied) freely.
type RunSpec struct {
	Prog *bytecode.Program
	Jit  jit.Config
	GC   gc.Config

	Substrate Substrate
	// SharedCode, when non-nil and not disabled by the substrate, lets the
	// run reuse host-side compilation work across runs. Virtual compile
	// charges are unaffected.
	SharedCode *jit.Cache

	// Controller builds the run's optimization controller once the machine
	// exists (repository controllers need the compiler's cost model). A
	// nil Controller runs under vm.NullController.
	Controller func(m *vm.Machine) vm.Controller

	// Setup binds the input to the engine (globals, array arguments)
	// before execution. May be nil.
	Setup func(e *interp.Engine) error

	// Inspect, when non-nil, observes the machine after the run finishes —
	// on success and on abort — before Run returns. Used by ledger
	// cross-checks and tests; production callers usually leave it nil.
	Inspect func(m *vm.Machine)
}

// RunOutcome captures the virtual observables of one finished run.
type RunOutcome struct {
	Result         bytecode.Value
	Cycles         int64
	CompileCycles  int64
	OverheadCycles int64
	Recompilations int
	TotalSamples   int64
	Levels         []int
	GCStats        gc.Stats
}

// Run executes spec under ctx. On success it returns the run's outcome;
// on failure the error is either the program's own runtime error or, for
// a canceled/expired context, a *interp.CanceledError wrapping ctx.Err().
func Run(ctx context.Context, spec *RunSpec) (*RunOutcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, &interp.CanceledError{Prog: spec.Prog.Name, Cause: err}
	}
	m := vm.New(spec.Prog, spec.Jit, nil)
	if spec.Controller != nil {
		m.Controller = spec.Controller(m)
	}
	m.SetContext(ctx)
	m.Engine.GC = spec.GC
	m.Engine.DisableBatching = spec.Substrate.NoBatching
	m.Engine.DisableFusion = spec.Substrate.NoFusion
	if !spec.Substrate.NoCodeCache && spec.SharedCode != nil {
		m.Compiler.UseShared(spec.SharedCode)
	}
	if spec.Setup != nil {
		if err := spec.Setup(m.Engine); err != nil {
			return nil, fmt.Errorf("exec: setup: %w", err)
		}
	}
	v, err := m.Run()
	if spec.Inspect != nil {
		spec.Inspect(m)
	}
	if err != nil {
		return nil, err
	}
	out := &RunOutcome{
		Result:         v,
		Cycles:         m.TotalCycles(),
		CompileCycles:  m.CompileCycles,
		OverheadCycles: m.OverheadCycles,
		Recompilations: m.Recompilations,
		Levels:         m.Levels(),
		GCStats:        m.Engine.GCStats,
	}
	for _, s := range m.Samples {
		out.TotalSamples += s
	}
	return out, nil
}
