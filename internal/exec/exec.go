// Package exec is the stateless per-run execution layer of the system:
// it turns one immutable RunSpec — program, input binding, scenario
// controller, jit/GC configuration, substrate switches — into one
// RunOutcome. It holds no cross-run state of its own (that lives in
// internal/session) and no experiment logic (internal/harness); a spec
// may therefore be executed from any goroutine, and thousands of
// concurrent runs only share immutable inputs plus the explicitly
// thread-safe shared code cache.
//
// Cancellation is first-class: the run's context is threaded into the
// engine's sample-boundary check, so a canceled or deadline-exceeded run
// aborts cleanly mid-flight with a typed *interp.CanceledError and a
// fully attributed cycle ledger (see vm.Machine.LedgerError).
//
// Machines are pooled per program: a run acquires a reset vm.Machine
// from a sync.Pool keyed by the program and releases it on the way out,
// so the steady state of repeated runs allocates no machine, engine,
// compiler, or ledger memory. Correctness does not depend on the pool —
// a Reset machine is observationally a fresh one (the substrate and
// scheduler equivalence suites run with pooling active).
package exec

import (
	"context"
	"fmt"
	"os"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"evolvevm/internal/bgcompile"
	"evolvevm/internal/bytecode"
	"evolvevm/internal/gc"
	"evolvevm/internal/interp"
	"evolvevm/internal/jit"
	"evolvevm/internal/vm"
)

// Substrate toggles the host-performance mechanisms of a run. The zero
// value enables everything; each switch exists so the determinism suites
// can prove bit-identical virtual results with any combination disabled.
type Substrate struct {
	NoCodeCache bool // skip the shared cross-run code cache
	NoFusion    bool // batch blocks but without superinstruction fusion
	NoBatching  bool // original per-instruction dispatch only
	NoClosures  bool // fused switch only, no closure-threaded tier
	NoRegTier   bool // no register-converted hot-loop traces

	// EagerRegTier builds and enters register traces without any hotness
	// gate, at every tier including baseline. The equivalence suites and
	// CI use it to force the register tier over code that would otherwise
	// stay below the promotion thresholds.
	EagerRegTier bool

	// NoOSR disables mid-iteration (on-stack replacement) trace entries;
	// traces activate at loop heads only. EagerOSR activates OSR entry
	// points without the parent trace's back-edge hotness gate (forced
	// OSR entry, EVOLVEVM_EAGER_OSR in the difftest soak). ForcedDeopt
	// makes every trace run deoptimize back to the accounted loop after
	// one iteration, exercising the exit/re-entry state mapping on every
	// boundary. NoCallInline refuses CALL during trace building (the
	// pre-inlining per-loop degradation). All host-side only.
	NoOSR        bool
	EagerOSR     bool
	ForcedDeopt  bool
	NoCallInline bool

	// AsyncCompile routes closure- and trace-plan builds through a
	// background compilation pool (RunSpec.Compile when set, else the
	// process-global DefaultCompilePool) instead of building them inline
	// at the promotion point; the engine keeps executing in its current
	// best tier until the built plan lands. The EVOLVEVM_ASYNC_COMPILE
	// environment knob turns it on for every run that does not pin
	// SyncCompile, which forces inline builds regardless — the
	// equivalence suites use the pair to hold both modes to bit-identical
	// virtual results. Host-side only, like every other switch here.
	AsyncCompile bool
	SyncCompile  bool
}

// asyncCompileEnv caches the EVOLVEVM_ASYNC_COMPILE knob: set non-empty,
// every run without Substrate.SyncCompile compiles through the
// background pool, so CI can sweep the whole difftest and harness
// matrix in async mode without touching each suite.
var asyncCompileEnv = os.Getenv("EVOLVEVM_ASYNC_COMPILE") != ""

// AsyncCompileEnv reports whether the EVOLVEVM_ASYNC_COMPILE knob was
// set at process start. Serving and test layers use it to decide whether
// to attach their own compile pools.
func AsyncCompileEnv() bool { return asyncCompileEnv }

// defaultCompilePool is the lazily created process-global background
// compilation pool used by batch runs (env knob or Substrate.AsyncCompile
// without an explicit RunSpec.Compile). It lives for the process — batch
// drivers have no shutdown point, and an idle pool costs a few parked
// goroutines.
var (
	defaultCompilePool atomic.Pointer[bgcompile.Pool]
	defaultCompileMu   sync.Mutex
)

// DefaultCompilePool returns the process-global compilation pool,
// creating it (default workers and depth) on first use.
func DefaultCompilePool() *bgcompile.Pool {
	if p := defaultCompilePool.Load(); p != nil {
		return p
	}
	defaultCompileMu.Lock()
	defer defaultCompileMu.Unlock()
	if p := defaultCompilePool.Load(); p != nil {
		return p
	}
	p := bgcompile.NewPool(0, 0)
	defaultCompilePool.Store(p)
	return p
}

// CompilePoolStats snapshots the process-global pool's counters, or nil
// when no batch run ever created it (diagnostics: expdriver -tracestats).
func CompilePoolStats() *bgcompile.Stats {
	p := defaultCompilePool.Load()
	if p == nil {
		return nil
	}
	st := p.Stats()
	return &st
}

// ProfileLabels, when enabled, wraps every run in a runtime/pprof label
// set (exec_prog, exec_controller) so CPU profiles attribute time by
// program and scenario. Off by default: attaching labels allocates per
// run, which would break the allocation-free steady state, so the
// profiling CLIs switch it on only when a profile is requested.
var ProfileLabels = false

// RunSpec describes one run completely. It is immutable from Run's point
// of view: Run never writes to it, so one spec value may be reused (or
// copied) freely.
type RunSpec struct {
	Prog *bytecode.Program
	Jit  jit.Config
	GC   gc.Config

	Substrate Substrate
	// SharedCode, when non-nil and not disabled by the substrate, lets the
	// run reuse host-side compilation work across runs. Virtual compile
	// charges are unaffected.
	SharedCode *jit.Cache

	// Compile, when non-nil, is the background compilation queue for this
	// run's plan builds (the serving front end passes its per-server
	// pool). Ignored under Substrate.SyncCompile; when nil, the
	// AsyncCompile switch or env knob falls back to DefaultCompilePool.
	Compile interp.CompileQueue

	// Controller builds the run's optimization controller once the machine
	// exists (repository controllers need the compiler's cost model). A
	// nil Controller runs under vm.NullController.
	Controller func(m *vm.Machine) vm.Controller

	// Setup binds the input to the engine (globals, array arguments)
	// before execution. May be nil.
	Setup func(e *interp.Engine) error

	// Inspect, when non-nil, observes the machine after the run finishes —
	// on success and on abort — before Run returns. Used by ledger
	// cross-checks and tests; production callers usually leave it nil.
	Inspect func(m *vm.Machine)
}

// RunOutcome captures the virtual observables of one finished run.
type RunOutcome struct {
	Result         bytecode.Value
	Cycles         int64
	CompileCycles  int64
	OverheadCycles int64
	Recompilations int
	TotalSamples   int64
	Levels         []int
	GCStats        gc.Stats
}

// machinePools maps *bytecode.Program → *sync.Pool of reset vm.Machines.
// Programs are memoized package-level values (programs.Registry), so the
// key set stays small and the pools live for the process.
var machinePools sync.Map

// acquireMachine returns a machine for prog, reusing a pooled one when
// available. The machine comes back in its post-New state (vm.Machine.Reset).
func acquireMachine(prog *bytecode.Program, cfg jit.Config) *vm.Machine {
	if p, ok := machinePools.Load(prog); ok {
		if m, _ := p.(*sync.Pool).Get().(*vm.Machine); m != nil {
			m.Reset(cfg)
			return m
		}
	}
	return vm.New(prog, cfg, nil)
}

// releaseMachine returns a machine to its program's pool. Callers must be
// done with every reference into the machine (the outcome copies all of
// them out).
func releaseMachine(m *vm.Machine) {
	p, ok := machinePools.Load(m.Prog)
	if !ok {
		p, _ = machinePools.LoadOrStore(m.Prog, &sync.Pool{})
	}
	p.(*sync.Pool).Put(m)
}

// Run executes spec under ctx. On success it returns the run's outcome;
// on failure the error is either the program's own runtime error or, for
// a canceled/expired context, a *interp.CanceledError wrapping ctx.Err().
func Run(ctx context.Context, spec *RunSpec) (*RunOutcome, error) {
	out := &RunOutcome{}
	if err := RunInto(ctx, spec, out); err != nil {
		return nil, err
	}
	return out, nil
}

// RunInto executes spec like Run but fills a caller-owned outcome,
// reusing its Levels and GC-stats backing when capacities allow. Callers
// that measure many runs and fold each outcome into aggregates (baseline
// warming, sequence driving) reuse one outcome value to keep the steady
// state allocation-free; callers that retain the outcome use Run.
//
// On a failed run — a program trap (*interp.RuntimeError) or an abort
// (*interp.CanceledError) — RunInto still fills the outcome's ledger
// fields (Cycles, CompileCycles, OverheadCycles, Recompilations, Levels,
// samples, GC stats) before returning the error: a trap is a legitimate,
// fully attributed outcome for a serving front end, not a measurement
// failure. Only Result is left zero, since a failed run has none.
func RunInto(ctx context.Context, spec *RunSpec, out *RunOutcome) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return &interp.CanceledError{Prog: spec.Prog.Name, Cause: err}
	}
	m := acquireMachine(spec.Prog, spec.Jit)
	defer releaseMachine(m)
	if spec.Controller != nil {
		m.Controller = spec.Controller(m)
	}
	m.SetContext(ctx)
	m.Engine.GC = spec.GC
	m.Engine.DisableBatching = spec.Substrate.NoBatching
	m.Engine.DisableFusion = spec.Substrate.NoFusion
	m.Engine.DisableClosures = spec.Substrate.NoClosures
	m.Engine.DisableRegTier = spec.Substrate.NoRegTier
	m.Engine.EagerRegTier = spec.Substrate.EagerRegTier
	m.Engine.DisableOSR = spec.Substrate.NoOSR
	m.Engine.EagerOSR = spec.Substrate.EagerOSR
	m.Engine.StressDeopt = spec.Substrate.ForcedDeopt
	m.Engine.DisableCallInline = spec.Substrate.NoCallInline
	m.Engine.SyncCompile = spec.Substrate.SyncCompile
	if !spec.Substrate.SyncCompile {
		if spec.Compile != nil {
			m.Engine.BgCompile = spec.Compile
		} else if spec.Substrate.AsyncCompile || asyncCompileEnv {
			m.Engine.BgCompile = DefaultCompilePool()
		}
	}
	if !spec.Substrate.NoCodeCache && spec.SharedCode != nil {
		m.Compiler.UseShared(spec.SharedCode)
	}
	if spec.Setup != nil {
		if err := spec.Setup(m.Engine); err != nil {
			return fmt.Errorf("exec: setup: %w", err)
		}
	}
	var v bytecode.Value
	var err error
	if ProfileLabels {
		pprof.Do(ctx, pprof.Labels(
			"exec_prog", spec.Prog.Name,
			"exec_controller", m.Controller.Name(),
		), func(context.Context) {
			v, err = m.Run()
		})
	} else {
		v, err = m.Run()
	}
	if spec.Inspect != nil {
		spec.Inspect(m)
	}
	out.Result = v
	out.Cycles = m.TotalCycles()
	out.CompileCycles = m.CompileCycles
	out.OverheadCycles = m.OverheadCycles
	out.Recompilations = m.Recompilations
	out.Levels = m.LevelsInto(out.Levels[:0])
	out.GCStats = m.Engine.GCStats
	out.TotalSamples = 0
	for _, s := range m.Samples {
		out.TotalSamples += s
	}
	if err != nil {
		out.Result = bytecode.Value{}
		return err
	}
	return nil
}
