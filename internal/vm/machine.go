// Package vm assembles the execution engine, the multi-level JIT, and a
// pluggable optimization controller into a complete virtual machine for
// one program run. The controller — reactive (internal/aos), repository
// based (internal/rep), or evolvable (internal/core) — observes
// invocations and samples and issues recompilation requests; the machine
// charges every compile to the run's virtual-cycle clock, exactly as the
// paper accounts compilation time in total run time.
package vm

import (
	"context"
	"fmt"
	"time"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/interp"
	"evolvevm/internal/jit"
)

// Controller reacts to runtime events and drives recompilation through
// Machine.RequestCompile.
type Controller interface {
	// Name identifies the optimization scenario ("default", "rep",
	// "evolve", ...).
	Name() string
	// OnRunStart fires before the entry function is invoked.
	OnRunStart(m *Machine)
	// OnInvoke fires at each function entry with its cumulative
	// invocation count. Compiles requested here take effect from the
	// function's next invocation.
	OnInvoke(m *Machine, fnIdx int, count int64)
	// OnSample fires on every sampler tick, attributed to the executing
	// function.
	OnSample(m *Machine, fnIdx int)
	// OnRunEnd fires after the program finishes, with the full profile
	// available.
	OnRunEnd(m *Machine)
}

// NullController performs no recompilation: every method runs at the
// baseline level forever (a pure interpreter VM).
type NullController struct{}

func (NullController) Name() string                  { return "null" }
func (NullController) OnRunStart(*Machine)           {}
func (NullController) OnInvoke(*Machine, int, int64) {}
func (NullController) OnSample(*Machine, int)        {}
func (NullController) OnRunEnd(*Machine)             {}

// Machine executes one program run under a controller.
type Machine struct {
	Prog       *bytecode.Program
	Engine     *interp.Engine
	Compiler   *jit.Compiler
	Controller Controller

	// Samples[fn] counts sampler ticks attributed to fn — the profile p
	// of the paper's Figure 7.
	Samples []int64

	// Compile accounting.
	CompileCycles        int64
	BaseCompileCycles    int64
	CompileCyclesByLevel map[int]int64
	Recompilations       int

	// OverheadCycles accumulates controller bookkeeping charged via
	// AddOverhead (feature extraction, prediction) — the quantity
	// reported in the paper's overhead analysis.
	OverheadCycles int64

	current []*interp.Code
	levels  []int

	// Hook closures wired into the engine, created once at New so Reset
	// can rewire them without allocating.
	onInvoke func(fnIdx int, count int64)
	onSample func(fnIdx int)
}

// New builds a machine for a single run of prog.
func New(prog *bytecode.Program, cfg jit.Config, ctrl Controller) *Machine {
	if ctrl == nil {
		ctrl = NullController{}
	}
	m := &Machine{
		Prog:                 prog,
		Engine:               interp.NewEngine(prog),
		Compiler:             jit.NewCompiler(prog, cfg),
		Controller:           ctrl,
		Samples:              make([]int64, len(prog.Funcs)),
		CompileCyclesByLevel: make(map[int]int64),
		current:              make([]*interp.Code, len(prog.Funcs)),
		levels:               make([]int, len(prog.Funcs)),
	}
	for i := range m.levels {
		m.levels[i] = jit.MinLevel - 1 // not yet base-compiled
	}
	m.onInvoke = func(fnIdx int, count int64) {
		m.Controller.OnInvoke(m, fnIdx, count)
	}
	m.onSample = func(fnIdx int) {
		m.Samples[fnIdx]++
		m.Controller.OnSample(m, fnIdx)
	}
	m.Engine.Provider = m.provide
	// Side-effect-free view of the current code table for the trace
	// tier's inline guards: nil until provide base-compiled the function,
	// after which provide is a pure lookup — exactly the PeekCode
	// contract. Survives Machine.Reset (engine Reset keeps Provider and
	// PeekCode; m.current is cleared, so stale code is never peeked).
	m.Engine.PeekCode = func(fnIdx int) *interp.Code { return m.current[fnIdx] }
	m.Engine.OnInvoke = m.onInvoke
	m.Engine.OnSample = m.onSample
	return m
}

// Reset prepares the machine for a fresh run of the same program:
// compiler per-run memo cleared (each run pays its own virtual compile
// charges; reattach a shared cache with Compiler.UseShared), ledgers
// zeroed, code table and levels back to never-invoked, engine fully reset
// with its hooks rewired, controller back to Null until the caller
// installs one. With an unchanged tier table this allocates nothing —
// internal/exec pools machines per program on top of it.
func (m *Machine) Reset(cfg jit.Config) {
	if cfg == m.Compiler.Config() {
		m.Compiler.Reset()
	} else {
		m.Compiler = jit.NewCompiler(m.Prog, cfg)
	}
	m.Controller = NullController{}
	clear(m.Samples)
	m.CompileCycles = 0
	m.BaseCompileCycles = 0
	clear(m.CompileCyclesByLevel)
	m.Recompilations = 0
	m.OverheadCycles = 0
	clear(m.current)
	for i := range m.levels {
		m.levels[i] = jit.MinLevel - 1 // not yet base-compiled
	}
	m.Engine.Reset()
	m.Engine.OnInvoke = m.onInvoke
	m.Engine.OnSample = m.onSample
}

// provide returns the current code form of fnIdx, lazily base-compiling
// at the first encounter (the analogue of Jikes RVM's baseline compile).
func (m *Machine) provide(fnIdx int) *interp.Code {
	if m.current[fnIdx] == nil {
		code, cycles := m.Compiler.Baseline(fnIdx)
		m.current[fnIdx] = code
		m.levels[fnIdx] = jit.MinLevel
		m.BaseCompileCycles += cycles
		m.Engine.AddCycles(cycles)
	}
	return m.current[fnIdx]
}

// Level returns the compilation level fnIdx currently runs at (−1 if only
// base-compiled; −2 if never invoked).
func (m *Machine) Level(fnIdx int) int { return m.levels[fnIdx] }

// Levels returns a copy of the current per-function levels.
func (m *Machine) Levels() []int { return append([]int(nil), m.levels...) }

// LevelsInto appends the current per-function levels to dst (pass
// dst[:0] to reuse its backing) — the allocation-free form of Levels.
func (m *Machine) LevelsInto(dst []int) []int { return append(dst, m.levels...) }

// RequestCompile recompiles fnIdx at level if that is an upgrade over its
// current tier, charging the compile cycles to the run clock. The new
// code takes effect at the function's next invocation. Downgrade or
// same-level requests are ignored, as in Jikes RVM.
func (m *Machine) RequestCompile(fnIdx, level int) error {
	if fnIdx < 0 || fnIdx >= len(m.Prog.Funcs) {
		return fmt.Errorf("vm: function index %d out of range", fnIdx)
	}
	if level <= m.levels[fnIdx] || level < 0 {
		return nil
	}
	if level > jit.MaxLevel {
		level = jit.MaxLevel
	}
	code, cycles, err := m.Compiler.Compile(fnIdx, level)
	if err != nil {
		return err
	}
	m.current[fnIdx] = code
	m.levels[fnIdx] = level
	m.CompileCycles += cycles
	m.CompileCyclesByLevel[level] += cycles
	m.Recompilations++
	m.Engine.AddCycles(cycles)
	return nil
}

// AddOverhead charges controller bookkeeping (feature extraction,
// prediction, model work) to the run clock and the overhead ledger.
func (m *Machine) AddOverhead(cycles int64) {
	if cycles <= 0 {
		return
	}
	m.OverheadCycles += cycles
	m.Engine.AddCycles(cycles)
}

// SetContext arranges for the run to abort with a *interp.CanceledError at
// the next sample boundary once ctx is done. A nil or never-canceled
// context clears the hook. Call before Run.
func (m *Machine) SetContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		m.Engine.Interrupt = nil
		return
	}
	if dl, ok := ctx.Deadline(); ok {
		// Check the deadline against the wall clock rather than relying
		// on ctx.Err() alone: Err() only flips after the runtime timer
		// fires, and timer delivery latency can exceed a tight deadline
		// by more than the run's own wall time on coarse-tick kernels.
		m.Engine.Interrupt = func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if !time.Now().Before(dl) {
				return context.DeadlineExceeded
			}
			return nil
		}
		return
	}
	m.Engine.Interrupt = ctx.Err
}

// Run executes the program to completion.
func (m *Machine) Run() (bytecode.Value, error) {
	m.Controller.OnRunStart(m)
	v, err := m.Engine.Run()
	if err != nil {
		return v, err
	}
	m.Controller.OnRunEnd(m)
	return v, nil
}

// TotalCycles returns the run's total virtual time (execution + compiles +
// overhead).
func (m *Machine) TotalCycles() int64 { return m.Engine.Cycles }

// LedgerError cross-checks the machine's cycle accounting after a run:
// every cycle on the engine clock must be attributable to executed code
// (Σ FnCycles), compilation, controller overhead, or the collector.
// A nonzero discrepancy means a subsystem charged the clock without
// recording the charge (or vice versa).
func (m *Machine) LedgerError() error {
	var exec int64
	for _, c := range m.Engine.FnCycles {
		exec += c
	}
	charged := exec + m.BaseCompileCycles + m.CompileCycles + m.OverheadCycles +
		m.Engine.GCStats.GCCycles + m.Engine.GCStats.AllocCycles
	if charged != m.Engine.Cycles {
		return fmt.Errorf("vm: cycle ledger off by %d: clock %d, charged %d (exec %d, base-compile %d, compile %d, overhead %d, gc %d, alloc %d)",
			m.Engine.Cycles-charged, m.Engine.Cycles, charged, exec,
			m.BaseCompileCycles, m.CompileCycles, m.OverheadCycles,
			m.Engine.GCStats.GCCycles, m.Engine.GCStats.AllocCycles)
	}
	return nil
}

// Profile returns a copy of the sample counts per function.
func (m *Machine) Profile() []int64 { return append([]int64(nil), m.Samples...) }
