package vm

import "evolvevm/internal/jit"

// Strategy assigns a compilation level to every function of a program,
// indexed by function index. Level −1 means "leave at baseline".
type Strategy []int

// NewStrategy returns an all-baseline strategy for n functions.
func NewStrategy(n int) Strategy {
	s := make(Strategy, n)
	for i := range s {
		s[i] = jit.MinLevel
	}
	return s
}

// Clone copies the strategy.
func (s Strategy) Clone() Strategy { return append(Strategy(nil), s...) }

// Accuracy implements the paper's prediction-accuracy measure: the
// fraction of sampled time spent in methods whose level was predicted
// correctly,
//
//	acc = Σ_{m : pred(m)=ideal(m)} T_m / Σ_m T_m ,
//
// where T_m is the number of samples attributed to m. Runs with no
// samples score 1 (nothing observable was mispredicted).
func Accuracy(pred, ideal Strategy, samples []int64) float64 {
	var correct, total int64
	for fn, t := range samples {
		if t == 0 {
			continue
		}
		total += t
		if fn < len(pred) && fn < len(ideal) && pred[fn] == ideal[fn] {
			correct += t
		}
	}
	if total == 0 {
		return 1
	}
	return float64(correct) / float64(total)
}
