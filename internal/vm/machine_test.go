package vm

import (
	"testing"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/jit"
)

const testSrc = `
global n
func main() locals i acc
  const 0
  store acc
  const 0
  store i
loop:
  load i
  const 50
  ige
  jnz done
  load acc
  call hot 0
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
func hot() locals j acc
  const 0
  store acc
  const 0
  store j
loop:
  load j
  gload n
  ige
  jnz done
  load acc
  load j
  iadd
  store acc
  iinc j 1
  jmp loop
done:
  load acc
  ret
end
`

func testProg(t *testing.T) *bytecode.Program {
	t.Helper()
	p, err := bytecode.Assemble("vmtest", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// scriptController compiles a method to a fixed level at its kth invocation.
type scriptController struct {
	fn, level int
	at        int64
}

func (scriptController) Name() string        { return "script" }
func (scriptController) OnRunStart(*Machine) {}
func (s scriptController) OnInvoke(m *Machine, fnIdx int, count int64) {
	if fnIdx == s.fn && count == s.at {
		if err := m.RequestCompile(fnIdx, s.level); err != nil {
			panic(err)
		}
	}
}
func (scriptController) OnSample(*Machine, int) {}
func (scriptController) OnRunEnd(*Machine)      {}

func setup(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.Engine.SetGlobal("n", bytecode.Int(500)); err != nil {
		t.Fatal(err)
	}
}

func TestNullControllerStaysBaseline(t *testing.T) {
	p := testProg(t)
	m := New(p, jit.DefaultConfig(), nil)
	setup(t, m)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for fn := range p.Funcs {
		if m.Level(fn) != jit.MinLevel {
			t.Errorf("method %d at level %d, want baseline", fn, m.Level(fn))
		}
	}
	if m.Recompilations != 0 || m.CompileCycles != 0 {
		t.Error("null controller recompiled")
	}
	if m.BaseCompileCycles <= 0 {
		t.Error("base compile never charged")
	}
}

func TestScriptedRecompileSpeedsUp(t *testing.T) {
	p := testProg(t)
	hotIdx, _ := p.FuncIndex("hot")

	mBase := New(p, jit.DefaultConfig(), nil)
	setup(t, mBase)
	rBase, err := mBase.Run()
	if err != nil {
		t.Fatal(err)
	}

	m := New(p, jit.DefaultConfig(), scriptController{fn: hotIdx, level: 2, at: 1})
	setup(t, m)
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(rBase) {
		t.Fatalf("results differ: %v vs %v", r, rBase)
	}
	if m.Level(hotIdx) != 2 {
		t.Errorf("hot at level %d, want 2", m.Level(hotIdx))
	}
	if m.TotalCycles() >= mBase.TotalCycles() {
		t.Errorf("compiled run %d cycles >= interpreted %d",
			m.TotalCycles(), mBase.TotalCycles())
	}
	if m.CompileCycles <= 0 || m.Recompilations != 1 {
		t.Errorf("compile accounting wrong: %d cycles, %d recompiles",
			m.CompileCycles, m.Recompilations)
	}
	if m.CompileCyclesByLevel[2] != m.CompileCycles {
		t.Error("per-level compile ledger inconsistent")
	}
}

func TestRequestCompileNeverDowngrades(t *testing.T) {
	p := testProg(t)
	m := New(p, jit.DefaultConfig(), nil)
	setup(t, m)
	hotIdx, _ := p.FuncIndex("hot")
	// Force baseline materialization first.
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.RequestCompile(hotIdx, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.RequestCompile(hotIdx, 1); err != nil {
		t.Fatal(err)
	}
	if m.Level(hotIdx) != 2 {
		t.Errorf("downgrade happened: level %d", m.Level(hotIdx))
	}
	if m.Recompilations != 1 {
		t.Errorf("no-op downgrade counted: %d recompiles", m.Recompilations)
	}
	if err := m.RequestCompile(hotIdx, 99); err != nil {
		t.Errorf("over-max level not clamped: %v", err)
	}
	if err := m.RequestCompile(-1, 2); err == nil {
		t.Error("bad fn index accepted")
	}
}

func TestAddOverheadLedger(t *testing.T) {
	m := New(testProg(t), jit.DefaultConfig(), nil)
	m.AddOverhead(1000)
	m.AddOverhead(-5) // ignored
	if m.OverheadCycles != 1000 {
		t.Errorf("overhead = %d, want 1000", m.OverheadCycles)
	}
	if m.Engine.Cycles != 1000 {
		t.Errorf("clock = %d, want 1000", m.Engine.Cycles)
	}
}

func TestSamplesFlowToProfile(t *testing.T) {
	p := testProg(t)
	m := New(p, jit.DefaultConfig(), nil)
	m.Engine.SampleStride = 2000
	setup(t, m)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	hotIdx, _ := p.FuncIndex("hot")
	if m.Samples[hotIdx] == 0 {
		t.Error("hot method unsampled")
	}
	prof := m.Profile()
	prof[hotIdx] = -1
	if m.Samples[hotIdx] == -1 {
		t.Error("Profile returned aliasing slice")
	}
}

func TestStrategyAccuracy(t *testing.T) {
	pred := Strategy{2, -1, 1}
	ideal := Strategy{2, 0, 1}
	samples := []int64{50, 30, 20}
	got := Accuracy(pred, ideal, samples)
	want := float64(50+20) / 100
	if got != want {
		t.Errorf("Accuracy = %v, want %v", got, want)
	}
	if Accuracy(pred, ideal, []int64{0, 0, 0}) != 1 {
		t.Error("no-sample accuracy != 1")
	}
	if Accuracy(nil, nil, nil) != 1 {
		t.Error("empty accuracy != 1")
	}
	// Methods outside the strategies count as mispredicted.
	if acc := Accuracy(Strategy{1}, Strategy{1}, []int64{10, 10}); acc != 0.5 {
		t.Errorf("short-strategy accuracy = %v, want 0.5", acc)
	}
}

func TestNewStrategyAndClone(t *testing.T) {
	s := NewStrategy(3)
	for _, l := range s {
		if l != jit.MinLevel {
			t.Fatalf("NewStrategy not all baseline: %v", s)
		}
	}
	c := s.Clone()
	c[0] = 2
	if s[0] == 2 {
		t.Error("Clone aliases")
	}
}
