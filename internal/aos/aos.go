// Package aos implements the VM's default adaptive optimization system:
// the reactive sample-driven cost-benefit controller that ships with the
// machine (the paper's "Default" scenario, modelled on Jikes RVM), and the
// posterior ideal-strategy oracle used to label training data for the
// evolvable VM.
package aos

import (
	"evolvevm/internal/jit"
	"evolvevm/internal/vm"
)

// Reactive is the Jikes-RVM-style controller. At every sample of a method
// it estimates the method's future execution time as equal to its past
// time (samples so far × sample stride) and recompiles to the level with
// the greatest positive benefit−cost margin:
//
//	benefit(j) = future × (1 − speedup(i)/speedup(j))
//	cost(j)    = estimated compile cycles at level j
//
// Decisions use the tier table's a-priori speedups, never measurements.
type Reactive struct{}

// NewReactive returns the default reactive controller.
func NewReactive() *Reactive { return &Reactive{} }

func (r *Reactive) Name() string                     { return "default" }
func (r *Reactive) OnRunStart(*vm.Machine)           {}
func (r *Reactive) OnInvoke(*vm.Machine, int, int64) {}
func (r *Reactive) OnRunEnd(*vm.Machine)             {}

func (r *Reactive) OnSample(m *vm.Machine, fnIdx int) {
	cur := m.Level(fnIdx)
	if cur >= jit.MaxLevel {
		return
	}
	future := m.Samples[fnIdx] * m.Engine.SampleStride
	curSpeed := m.Compiler.Speedup(cur)

	bestLevel, bestMargin := -1, int64(0)
	for j := cur + 1; j <= jit.MaxLevel; j++ {
		benefit := int64(float64(future) * (1 - curSpeed/m.Compiler.Speedup(j)))
		cost := m.Compiler.EstimateCompileCycles(fnIdx, j)
		if margin := benefit - cost; margin > bestMargin {
			bestMargin, bestLevel = margin, j
		}
	}
	if bestLevel >= 0 {
		// Compile errors cannot occur for verified programs; a failure
		// here means a broken optimizer, which tests catch. Ignore to
		// keep the controller non-fatal, as in the real AOS.
		_ = m.RequestCompile(fnIdx, bestLevel)
	}
}

// IdealStrategy computes the posterior optimal per-method levels for a
// finished run: for each invoked method, the level j minimizing
//
//	estCompile(j) + work(m)/speedup(j)
//
// where work(m) is the tier-independent baseline cost the method actually
// executed. This is the paper's GetIdealOptStrategy — the label the model
// builder learns from, derived with the same cost model the reactive
// controller uses.
func IdealStrategy(m *vm.Machine) vm.Strategy {
	ideal := vm.NewStrategy(len(m.Prog.Funcs))
	for fn := range m.Prog.Funcs {
		if m.Engine.Invocations[fn] == 0 {
			continue
		}
		work := m.Engine.Work[fn]
		best, bestCost := jit.MinLevel, work // level −1: no compile, full time
		for j := 0; j <= jit.MaxLevel; j++ {
			cost := m.Compiler.EstimateCompileCycles(fn, j) +
				int64(float64(work)/m.Compiler.Speedup(j))
			if cost < bestCost {
				best, bestCost = j, cost
			}
		}
		ideal[fn] = best
	}
	return ideal
}
