package aos

import (
	"testing"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/jit"
	"evolvevm/internal/vm"
)

// hotColdSrc has a hot method (big loop, many invocations) and a cold one
// (invoked once, trivial).
const hotColdSrc = `
global n
func main() locals i acc
  call cold 0
  store acc
  const 0
  store i
loop:
  load i
  const 80
  ige
  jnz done
  load acc
  call hot 0
  iadd
  store acc
  iinc i 1
  jmp loop
done:
  load acc
  ret
end
func hot() locals j acc
  const 0
  store acc
  const 0
  store j
loop:
  load j
  gload n
  ige
  jnz done
  load acc
  load j
  ixor
  store acc
  iinc j 1
  jmp loop
done:
  load acc
  ret
end
func cold() locals x
  const 7
  ret
end
`

func run(t *testing.T, n int64) *vm.Machine {
	t.Helper()
	p, err := bytecode.Assemble("aostest", hotColdSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(p, jit.DefaultConfig(), NewReactive())
	if err := m.Engine.SetGlobal("n", bytecode.Int(n)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReactiveUpgradesHotOnly(t *testing.T) {
	m := run(t, 2000)
	hotIdx, _ := m.Prog.FuncIndex("hot")
	coldIdx, _ := m.Prog.FuncIndex("cold")
	if m.Level(hotIdx) <= jit.MinLevel {
		t.Errorf("hot method stayed at level %d", m.Level(hotIdx))
	}
	if m.Level(coldIdx) != jit.MinLevel {
		t.Errorf("cold method recompiled to %d", m.Level(coldIdx))
	}
}

func TestReactiveStaysCheapOnTinyRuns(t *testing.T) {
	// A tiny run accumulates a couple of samples at most: the cheap O0
	// tier can be justified, the expensive O2 tier never is.
	m := run(t, 3)
	for fn := range m.Prog.Funcs {
		if m.Level(fn) >= jit.MaxLevel {
			t.Errorf("method %s aggressively recompiled on a tiny run (level %d)",
				m.Prog.Funcs[fn].Name, m.Level(fn))
		}
	}
}

func TestReactiveBeatsBaselineOnLongRuns(t *testing.T) {
	p, err := bytecode.Assemble("aostest", hotColdSrc)
	if err != nil {
		t.Fatal(err)
	}
	base := vm.New(p, jit.DefaultConfig(), vm.NullController{})
	base.Engine.SetGlobal("n", bytecode.Int(2000))
	if _, err := base.Run(); err != nil {
		t.Fatal(err)
	}
	m := run(t, 2000)
	if m.TotalCycles() >= base.TotalCycles() {
		t.Errorf("reactive %d cycles >= pure interpreter %d",
			m.TotalCycles(), base.TotalCycles())
	}
}

func TestIdealStrategyScalesWithWork(t *testing.T) {
	small := run(t, 20)
	large := run(t, 5000)
	hotIdx, _ := small.Prog.FuncIndex("hot")
	coldIdx, _ := small.Prog.FuncIndex("cold")

	idealSmall := IdealStrategy(small)
	idealLarge := IdealStrategy(large)
	if idealLarge[hotIdx] <= idealSmall[hotIdx] {
		t.Errorf("ideal(hot): small=%d large=%d, want strictly increasing",
			idealSmall[hotIdx], idealLarge[hotIdx])
	}
	if idealLarge[hotIdx] != jit.MaxLevel {
		t.Errorf("ideal(hot) on large run = %d, want %d", idealLarge[hotIdx], jit.MaxLevel)
	}
	if idealSmall[coldIdx] != jit.MinLevel || idealLarge[coldIdx] != jit.MinLevel {
		t.Error("cold method should be ideal at baseline")
	}
}

func TestIdealStrategySkipsUninvoked(t *testing.T) {
	p, err := bytecode.Assemble("t", `
func main() locals x
  const 1
  ret
end
func never() locals x
  const 2
  ret
end
`)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(p, jit.DefaultConfig(), NewReactive())
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	ideal := IdealStrategy(m)
	neverIdx, _ := p.FuncIndex("never")
	if ideal[neverIdx] != jit.MinLevel {
		t.Errorf("uninvoked method ideal = %d, want baseline", ideal[neverIdx])
	}
}
