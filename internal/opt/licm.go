package opt

import (
	"fmt"

	"evolvevm/internal/bytecode"
)

// LICM hoists loop-invariant global loads and array-length computations
// into a preheader executed once per loop entry.
//
// A loop is a region [h, e] ending in a backward jump to h, with no entry
// from outside into its interior. Only candidates in the loop's
// unconditionally-executed prefix (the instructions from h up to the first
// jump — in practice the loop-bound computation) are hoisted, which keeps
// the transformation safe for zero-trip loops:
//
//   - GLOAD g, when the region contains no GSTORE g and no CALL
//     (a callee could write the global);
//   - LOAD a; ALEN, when the region never writes local a (array lengths
//     are immutable in this VM, so the length of an invariant reference
//     is invariant).
//
// Hoisted values are materialized into fresh locals.
func LICM(_ *bytecode.Program, f *bytecode.Function) bool {
	changed := false
	for iter := 0; iter < 8; iter++ {
		if !licmOnce(f) {
			break
		}
		changed = true
	}
	return changed
}

// trapEffectFree reports that an opcode can neither trap nor produce an
// observable effect (output, global/heap writes, allocation, calls), so a
// hoisted trap may move above it without changing observable behaviour.
func trapEffectFree(op bytecode.Op) bool {
	switch op {
	case bytecode.IDIV, bytecode.IMOD, // divide-by-zero traps
		bytecode.ALOAD, bytecode.ASTORE, bytecode.ALEN, // array traps
		bytecode.NEWARR,                 // allocation: OOM trap, GC, heap growth
		bytecode.GSTORE, bytecode.PRINT, // observable effects
		bytecode.CALL, bytecode.RET, bytecode.HALT: // arbitrary effects / exits
		return false
	}
	return true
}

func licmOnce(f *bytecode.Function) bool {
	for _, lp := range Loops(f.Code) {
		if hoistInLoop(f, lp) {
			return true
		}
	}
	return false
}

func hoistInLoop(f *bytecode.Function, lp Loop) bool {
	h, e := lp.Head, lp.End

	// Region facts.
	regionHasCall := false
	gstored := map[int32]bool{}
	localWritten := map[int32]bool{}
	for pc := h; pc <= e; pc++ {
		switch in := f.Code[pc]; in.Op {
		case bytecode.CALL:
			regionHasCall = true
		case bytecode.GSTORE:
			gstored[in.A] = true
		case bytecode.STORE, bytecode.IINC:
			localWritten[in.A] = true
		}
	}

	// Unconditionally executed prefix: h up to (excluding) the first jump.
	prefixEnd := h
	for prefixEnd <= e && !f.Code[prefixEnd].Op.IsJump() &&
		f.Code[prefixEnd].Op != bytecode.RET && f.Code[prefixEnd].Op != bytecode.HALT {
		prefixEnd++
	}

	// Collect candidates from the prefix. A GLOAD is hoistable from
	// anywhere in it: reading an invariant global earlier neither traps
	// nor is observable. Hoisting an ALEN additionally moves a potential
	// trap (the local may hold a non-array) to the loop entry, so it is
	// only sound while every earlier prefix instruction is itself free of
	// traps and observable effects — otherwise the trap would jump ahead
	// of prints, global stores, or a differently-worded earlier trap.
	type candidate struct {
		kind bytecode.Op // GLOAD or ALEN
		slot int32       // global slot (GLOAD) or array local (ALEN)
		tmp  int32       // destination local, assigned below
	}
	var cands []candidate
	seen := map[[2]int32]bool{}
	pureSoFar := true
	for pc := h; pc < prefixEnd; pc++ {
		in := f.Code[pc]
		switch {
		case in.Op == bytecode.GLOAD && !gstored[in.A] && !regionHasCall:
			key := [2]int32{int32(bytecode.GLOAD), in.A}
			if !seen[key] {
				seen[key] = true
				cands = append(cands, candidate{kind: bytecode.GLOAD, slot: in.A})
			}
		case in.Op == bytecode.LOAD && pc+1 < prefixEnd &&
			f.Code[pc+1].Op == bytecode.ALEN && !localWritten[in.A] && pureSoFar:
			key := [2]int32{int32(bytecode.ALEN), in.A}
			if !seen[key] {
				seen[key] = true
				cands = append(cands, candidate{kind: bytecode.ALEN, slot: in.A})
			}
		}
		if !trapEffectFree(in.Op) {
			pureSoFar = false
		}
	}
	if len(cands) == 0 {
		return false
	}

	// Allocate temp locals and build the preheader.
	var pre []bytecode.Instr
	for i := range cands {
		cands[i].tmp = int32(f.NLocals)
		f.NLocals++
		f.LocalNames = append(f.LocalNames, fmt.Sprintf("$licm%d", cands[i].tmp))
		switch cands[i].kind {
		case bytecode.GLOAD:
			pre = append(pre,
				bytecode.Instr{Op: bytecode.GLOAD, A: cands[i].slot},
				bytecode.Instr{Op: bytecode.STORE, A: cands[i].tmp})
		case bytecode.ALEN:
			pre = append(pre,
				bytecode.Instr{Op: bytecode.LOAD, A: cands[i].slot},
				bytecode.Instr{Op: bytecode.ALEN},
				bytecode.Instr{Op: bytecode.STORE, A: cands[i].tmp})
		}
	}

	// Replace occurrences throughout the region.
	for pc := h; pc <= e; pc++ {
		in := f.Code[pc]
		for _, c := range cands {
			switch {
			case c.kind == bytecode.GLOAD && in.Op == bytecode.GLOAD && in.A == c.slot:
				f.Code[pc] = bytecode.Instr{Op: bytecode.LOAD, A: c.tmp}
			case c.kind == bytecode.ALEN && in.Op == bytecode.LOAD && in.A == c.slot &&
				pc+1 <= e && f.Code[pc+1].Op == bytecode.ALEN:
				f.Code[pc] = bytecode.Instr{Op: bytecode.LOAD, A: c.tmp}
				f.Code[pc+1] = bytecode.Instr{Op: bytecode.NOP}
			}
		}
	}

	// Insert the preheader at h and remap jump targets. Positions >= h
	// shift by len(pre); a jump to h itself goes to the preheader when it
	// comes from outside the (shifted) region — i.e. loop entry — and to
	// the original header when it is a backedge from inside.
	P := len(pre)
	newCode := make([]bytecode.Instr, 0, len(f.Code)+P)
	newCode = append(newCode, f.Code[:h]...)
	newCode = append(newCode, pre...)
	newCode = append(newCode, f.Code[h:]...)
	for i := range newCode {
		in := &newCode[i]
		if !in.Op.IsJump() {
			continue
		}
		if i >= h && i < h+P {
			continue // preheader has no jumps, but keep the guard
		}
		orig := i
		if i >= h+P {
			orig = i - P
		}
		t := int(in.A)
		switch {
		case t < h:
			// unchanged
		case t == h:
			if orig >= lp.Head && orig <= lp.End {
				in.A = int32(h + P) // backedge: skip the preheader
			}
			// entry edges keep targeting h = preheader start
		default:
			in.A = int32(t + P)
		}
	}
	f.Code = newCode
	compact(f)
	return true
}
