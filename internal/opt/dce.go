package opt

import "evolvevm/internal/bytecode"

// DeadCode removes unreachable instructions and eliminates stores to
// locals that are never read anywhere in the function (STORE x becomes POP,
// IINC x becomes NOP). Arguments in slots the caller populated are handled
// like any other local: if never read, writes to them are dead.
func DeadCode(_ *bytecode.Program, f *bytecode.Function) bool {
	changed := false

	// Unreachable-code elimination.
	live := reachable(f)
	for pc := range f.Code {
		if !live[pc] && f.Code[pc].Op != bytecode.NOP {
			f.Code[pc] = bytecode.Instr{Op: bytecode.NOP}
			changed = true
		}
	}

	// Dead-store elimination: find locals with no reads.
	read := make([]bool, f.NLocals)
	for _, in := range f.Code {
		if in.Op == bytecode.LOAD {
			read[in.A] = true
		}
	}
	for pc, in := range f.Code {
		switch in.Op {
		case bytecode.STORE:
			if !read[in.A] {
				f.Code[pc] = bytecode.Instr{Op: bytecode.POP}
				changed = true
			}
		case bytecode.IINC:
			if !read[in.A] {
				f.Code[pc] = bytecode.Instr{Op: bytecode.NOP}
				changed = true
			}
		}
	}

	if changed {
		compact(f)
	}
	return changed
}
