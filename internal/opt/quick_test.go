package opt_test

// Property-based testing of the optimizer: generate random structured
// programs (expressions, branches, counted loops, calls), verify them,
// run them at baseline and at every optimization level, and require
// identical results and outputs. This exercises pass interactions that
// hand-written cases cannot enumerate.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"evolvevm/internal/bytecode"
	"evolvevm/internal/gc"
	"evolvevm/internal/interp"
	"evolvevm/internal/opt"
)

// progGen emits random but always-verifiable assembly. Programs are
// structured: statements are assignments of expressions to locals,
// if/else blocks, counted loops, array fills/reads, and calls to
// previously generated helper functions.
type progGen struct {
	rng    *rand.Rand
	b      strings.Builder
	labels int
	funcs  []genFunc // helpers available for calls

	// arr is the current function's array local (a 16-cell scratch
	// array allocated at entry), or "" when arrays are disabled. Array
	// indices are masked with "iand 15", so accesses are always legal.
	arr string
}

type genFunc struct {
	name  string
	nargs int
}

func (g *progGen) label() string {
	g.labels++
	return fmt.Sprintf("L%d", g.labels)
}

func (g *progGen) emit(format string, args ...interface{}) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

// expr pushes exactly one integer value computed from the locals in
// scope. Division is avoided entirely so runtime errors cannot occur.
func (g *progGen) expr(locals []string, depth int) {
	switch {
	case depth <= 0 || g.rng.Intn(3) == 0:
		if len(locals) > 0 && g.rng.Intn(2) == 0 {
			g.emit("  load %s", locals[g.rng.Intn(len(locals))])
		} else {
			g.emit("  const %d", g.rng.Intn(201)-100)
		}
	case g.arr != "" && g.rng.Intn(5) == 0: // array read
		g.emit("  load %s", g.arr)
		g.expr(locals, depth-1)
		g.emit("  const 15")
		g.emit("  iand")
		g.emit("  aload")
	default:
		g.expr(locals, depth-1)
		g.expr(locals, depth-1)
		ops := []string{"iadd", "isub", "imul", "iand", "ior", "ixor",
			"ieq", "ine", "ilt", "ile", "igt", "ige"}
		g.emit("  %s", ops[g.rng.Intn(len(ops))])
	}
}

// stmt emits one statement using the given locals.
func (g *progGen) stmt(locals []string, depth int) {
	switch g.rng.Intn(7) {
	case 0, 1: // assignment
		g.expr(locals, 2)
		g.emit("  store %s", locals[g.rng.Intn(len(locals))])
	case 2: // if/else
		elseL, endL := g.label(), g.label()
		g.expr(locals, 1)
		g.emit("  jz %s", elseL)
		g.block(locals, depth-1)
		g.emit("  jmp %s", endL)
		g.emit("%s:", elseL)
		g.block(locals, depth-1)
		g.emit("%s:", endL)
	case 3: // counted loop over a dedicated counter local
		if depth <= 0 {
			g.expr(locals, 1)
			g.emit("  store %s", locals[g.rng.Intn(len(locals))])
			return
		}
		cnt := locals[0] // locals[0] is reserved as loop counter space
		headL, endL := g.label(), g.label()
		g.emit("  const %d", g.rng.Intn(6))
		g.emit("  store %s", cnt)
		g.emit("%s:", headL)
		g.emit("  load %s", cnt)
		g.emit("  const 0")
		g.emit("  ile")
		g.emit("  jnz %s", endL)
		g.block(locals[1:], depth-1)
		g.emit("  iinc %s -1", cnt)
		g.emit("  jmp %s", headL)
		g.emit("%s:", endL)
	case 4: // call a helper if one exists
		if len(g.funcs) == 0 {
			g.expr(locals, 2)
			g.emit("  store %s", locals[g.rng.Intn(len(locals))])
			return
		}
		f := g.funcs[g.rng.Intn(len(g.funcs))]
		for i := 0; i < f.nargs; i++ {
			g.expr(locals, 1)
		}
		g.emit("  call %s %d", f.name, f.nargs)
		g.emit("  store %s", locals[g.rng.Intn(len(locals))])
	case 5: // print an expression (observable output)
		g.expr(locals, 2)
		g.emit("  print")
	case 6: // array write
		if g.arr == "" {
			g.expr(locals, 2)
			g.emit("  print")
			return
		}
		g.emit("  load %s", g.arr)
		g.expr(locals, 1)
		g.emit("  const 15")
		g.emit("  iand")
		g.expr(locals, 1)
		g.emit("  astore")
	}
}

func (g *progGen) block(locals []string, depth int) {
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		if len(locals) == 0 {
			return
		}
		g.stmt(locals, depth)
	}
}

// allocScratch emits the per-function scratch array (fresh per
// invocation: helpers called in loops churn the heap, which the
// GC-equivalence property test relies on).
func (g *progGen) allocScratch(name string) {
	g.arr = name
	g.emit("  const 16")
	g.emit("  newarr")
	g.emit("  store %s", name)
}

// helper generates a small leaf-ish function (may call earlier helpers).
func (g *progGen) helper(idx int) {
	nargs := 1 + g.rng.Intn(3)
	name := fmt.Sprintf("h%d", idx)
	args := make([]string, nargs)
	for i := range args {
		args[i] = fmt.Sprintf("a%d", i)
	}
	g.emit("func %s(%s) locals c t u w", name, strings.Join(args, ", "))
	locals := append([]string{"c", "t", "u"}, args...)
	g.allocScratch("w")
	g.block(locals, 1)
	g.expr(locals, 2)
	g.emit("  ret")
	g.emit("end")
	g.funcs = append(g.funcs, genFunc{name: name, nargs: nargs})
}

// Generate builds a full random program.
func generateProgram(seed int64) (string, error) {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	nHelpers := g.rng.Intn(3)
	for i := 0; i < nHelpers; i++ {
		g.helper(i)
	}
	g.emit("func main() locals c x y z w")
	locals := []string{"c", "x", "y", "z"}
	g.allocScratch("w")
	g.block(locals, 3)
	g.expr(locals, 2)
	g.emit("  ret")
	g.emit("end")
	return g.b.String(), nil
}

func runProgram(prog *bytecode.Program, forms []*bytecode.Function) (bytecode.Value, []bytecode.Value, error) {
	e := interp.NewEngine(prog)
	e.MaxCycles = 200_000_000
	if forms != nil {
		codes := make([]*interp.Code, len(prog.Funcs))
		for i, f := range forms {
			codes[i] = interp.NewCode(i, f, 2, 100)
		}
		e.Provider = func(fn int) *interp.Code { return codes[fn] }
	}
	v, err := e.Run()
	return v, e.Output, err
}

func TestQuickOptimizerEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		src, err := generateProgram(seed)
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}
		prog, err := bytecode.Assemble(fmt.Sprintf("gen%d", seed), src)
		if err != nil {
			t.Logf("seed %d: generated invalid program: %v\n%s", seed, err, src)
			return false
		}
		baseV, baseOut, err := runProgram(prog, nil)
		if err != nil {
			t.Logf("seed %d: baseline run failed: %v", seed, err)
			return false
		}
		for level := 0; level <= 2; level++ {
			forms := make([]*bytecode.Function, len(prog.Funcs))
			for idx := range prog.Funcs {
				f, _, err := opt.Optimize(prog, idx, level)
				if err != nil {
					t.Logf("seed %d: optimize L%d %s: %v\n%s", seed, level,
						prog.Funcs[idx].Name, err,
						bytecode.Disassemble(prog, prog.Funcs[idx]))
					return false
				}
				forms[idx] = f
			}
			v, out, err := runProgram(prog, forms)
			if err != nil {
				t.Logf("seed %d: L%d run failed: %v", seed, level, err)
				return false
			}
			if !v.Equal(baseV) {
				t.Logf("seed %d: L%d result %v != %v\n%s", seed, level, v, baseV, src)
				return false
			}
			if len(out) != len(baseOut) {
				t.Logf("seed %d: L%d output length %d != %d", seed, level, len(out), len(baseOut))
				return false
			}
			for i := range out {
				if !out[i].Equal(baseOut[i]) {
					t.Logf("seed %d: L%d output[%d] %v != %v", seed, level, i, out[i], baseOut[i])
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120}
	if testing.Short() {
		cfg.MaxCount = 25
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// The generator itself must produce verifiable programs for any seed —
// a meta-property that keeps the equivalence test honest.
func TestQuickGeneratorAlwaysVerifies(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		src, err := generateProgram(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := bytecode.Assemble("gen", src); err != nil {
			t.Fatalf("seed %d produced invalid program: %v\n%s", seed, err, src)
		}
	}
}

// TestQuickGCEquivalence runs random array-churning programs under no
// collection, mark-sweep, and copying, requiring identical results and
// outputs — the collectors must be invisible to program semantics.
func TestQuickGCEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		src, err := generateProgram(seed)
		if err != nil {
			return false
		}
		prog, err := bytecode.Assemble(fmt.Sprintf("gcgen%d", seed), src)
		if err != nil {
			t.Logf("seed %d: invalid program: %v", seed, err)
			return false
		}
		type outcome struct {
			v   bytecode.Value
			out []bytecode.Value
		}
		run := func(cfg gc.Config) (outcome, error) {
			e := interp.NewEngine(prog)
			e.MaxCycles = 200_000_000
			e.GC = cfg
			v, err := e.Run()
			return outcome{v, e.Output}, err
		}
		base, err := run(gc.Config{})
		if err != nil {
			t.Logf("seed %d: base run: %v", seed, err)
			return false
		}
		for _, policy := range []gc.Policy{gc.MarkSweep, gc.Copying} {
			got, err := run(gc.Config{Policy: policy, BudgetCells: 256})
			if err != nil {
				t.Logf("seed %d: %v run: %v", seed, policy, err)
				return false
			}
			if !got.v.Equal(base.v) || len(got.out) != len(base.out) {
				t.Logf("seed %d: %v diverged: %v vs %v", seed, policy, got.v, base.v)
				return false
			}
			for i := range got.out {
				if !got.out[i].Equal(base.out[i]) {
					t.Logf("seed %d: %v output[%d] %v != %v",
						seed, policy, i, got.out[i], base.out[i])
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80}
	if testing.Short() {
		cfg.MaxCount = 20
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}
