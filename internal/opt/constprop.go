package opt

import "evolvevm/internal/bytecode"

// ConstProp propagates constants through local slots within basic
// blocks: after "push c; store x", subsequent "load x" in the same block
// become "push c" until x is written again. IINC on a known local keeps
// it known (the constant advances). Locals are function-private, so
// calls never invalidate the state; block boundaries do.
//
// The pass mainly pays off after inlining, where constant call arguments
// become constant locals, and it feeds the peephole folder that runs
// after it in the pipeline.
func ConstProp(_ *bytecode.Program, f *bytecode.Function) bool {
	lead := leaders(f)
	known := make(map[int32]bytecode.Value)
	changed := false

	for pc := 0; pc < len(f.Code); pc++ {
		if lead[pc] {
			clear(known)
		}
		in := f.Code[pc]
		switch in.Op {
		case bytecode.LOAD:
			if v, ok := known[in.A]; ok {
				f.Code[pc] = emitPush(f, v)
				changed = true
			}
		case bytecode.STORE:
			// "push c; store x" with no label between makes x known.
			if pc > 0 && !lead[pc] && isPush(f.Code[pc-1]) {
				known[in.A] = pushedValue(f, f.Code[pc-1])
			} else {
				delete(known, in.A)
			}
		case bytecode.IINC:
			if v, ok := known[in.A]; ok && v.Kind == bytecode.KInt {
				known[in.A] = bytecode.Int(v.I + int64(in.B))
			} else {
				delete(known, in.A)
			}
		}
	}
	return changed
}
