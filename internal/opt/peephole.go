package opt

import "evolvevm/internal/bytecode"

// Peephole rewrites short instruction sequences within basic blocks:
// constant folding of adjacent pushes, iinc synthesis, algebraic
// identities, strength reduction, dup forwarding, push/pop cancellation,
// and branch threading. It never crosses a jump target with a
// multi-instruction pattern. Returns whether the function changed.
func Peephole(p *bytecode.Program, f *bytecode.Function) bool {
	changed := false
	for peepholeOnce(p, f) {
		changed = true
		compact(f) // fuse across removed instructions on the next round
	}
	return changed
}

func peepholeOnce(_ *bytecode.Program, f *bytecode.Function) bool {
	targets := jumpTargets(f)
	code := f.Code
	changed := false

	// Kind facts gate the rewrites that are only sound for a known
	// operand kind (the machine is dynamically typed: integer opcodes
	// read the I field of a float operand, and IINC preserves a local's
	// kind). Both are computed on the code as it stood at scan start;
	// rewrites preserve the kinds of produced values, so the facts stay
	// valid as the scan mutates the body.
	intLocal := intOnlyLocals(f, targets)
	topIsKind := func(pc int, k bytecode.Kind) bool {
		got, known := topKindBefore(f, targets, pc)
		return known && got == k
	}

	// free reports that pcs (start, start+n] are not jump targets, so a
	// pattern of n+1 instructions starting at start is safe to rewrite.
	free := func(start, n int) bool {
		for i := 1; i <= n; i++ {
			if targets[int32(start+i)] {
				return false
			}
		}
		return true
	}
	nopOut := func(pcs ...int) {
		for _, pc := range pcs {
			code[pc] = bytecode.Instr{Op: bytecode.NOP}
		}
		changed = true
	}

	for pc := 0; pc < len(code); pc++ {
		in := code[pc]
		switch in.Op {
		case bytecode.NOP:
			continue

		case bytecode.JMP, bytecode.JZ, bytecode.JNZ:
			// Branch threading: a (conditional) jump to an unconditional
			// jump follows it. Bounded to avoid cycles of JMPs.
			t := in.A
			for hop := 0; hop < 8; hop++ {
				if int(t) < len(code) && code[t].Op == bytecode.JMP && code[t].A != t {
					t = code[t].A
					continue
				}
				break
			}
			if t != in.A {
				code[pc].A = t
				changed = true
			}
			// jump to the immediately following instruction
			if int(code[pc].A) == pc+1 {
				if in.Op == bytecode.JMP {
					nopOut(pc)
				} else {
					code[pc] = bytecode.Instr{Op: bytecode.POP}
					changed = true
				}
			}
			continue
		}

		if pc+1 >= len(code) || !free(pc, 1) {
			continue
		}
		next := code[pc+1]

		// push ; pop  =>  (nothing)     and  dup ; pop  =>  (nothing)
		if next.Op == bytecode.POP {
			switch in.Op {
			case bytecode.IPUSH, bytecode.CONST, bytecode.LOAD, bytecode.GLOAD, bytecode.DUP:
				nopOut(pc, pc+1)
				continue
			}
		}

		// load x ; load x  =>  load x ; dup
		if in.Op == bytecode.LOAD && next.Op == bytecode.LOAD && in.A == next.A {
			code[pc+1] = bytecode.Instr{Op: bytecode.DUP}
			changed = true
			continue
		}
		// store x ; load x  =>  dup ; store x
		if in.Op == bytecode.STORE && next.Op == bytecode.LOAD && in.A == next.A {
			code[pc] = bytecode.Instr{Op: bytecode.DUP}
			code[pc+1] = bytecode.Instr{Op: bytecode.STORE, A: in.A}
			changed = true
			continue
		}
		// Double negation / complement cancels — but only on an operand
		// of the opcode's own kind: INEG;INEG maps a float x to Int(x.I)
		// twice negated, not back to x, and FNEG;FNEG turns an int into
		// a float.
		if in.Op == next.Op &&
			((in.Op == bytecode.INEG || in.Op == bytecode.INOT) && topIsKind(pc, bytecode.KInt) ||
				in.Op == bytecode.FNEG && topIsKind(pc, bytecode.KFloat)) {
			nopOut(pc, pc+1)
			continue
		}

		// push c ; jz/jnz  =>  jmp or nothing (constant branch folding)
		if isPush(in) && next.Op.IsConditionalJump() {
			taken := pushedValue(f, in).IsTrue() == (next.Op == bytecode.JNZ)
			if taken {
				code[pc] = bytecode.Instr{Op: bytecode.JMP, A: next.A}
				nopOut(pc + 1)
			} else {
				nopOut(pc, pc+1)
			}
			continue
		}

		// push c ; <unop>  =>  push f(c)
		if isPush(in) {
			c := pushedValue(f, in)
			if v, ok := foldUnary(next.Op, c); ok {
				code[pc] = emitPush(f, v)
				nopOut(pc + 1)
				continue
			}
		}

		// Algebraic identities and strength reduction on  push c ; <binop>.
		// Dropping the opcode is only sound when the remaining operand
		// already has the kind the opcode would have produced: IADD on a
		// float operand x yields Int(x.I + 0), not x, so "x + 0 => x"
		// needs a provably integer x (and dually for the float
		// identities). Strength reduction keeps the opcode's coercion
		// and needs no kind facts: x.I*2^k == x.I<<k mod 2^64.
		if isPush(in) && free(pc, 1) {
			c := pushedValue(f, in)
			if c.Kind == bytecode.KInt {
				switch {
				case c.I == 0 && (next.Op == bytecode.IADD || next.Op == bytecode.ISUB ||
					next.Op == bytecode.IOR || next.Op == bytecode.IXOR ||
					next.Op == bytecode.ISHL || next.Op == bytecode.ISHR) &&
					topIsKind(pc, bytecode.KInt):
					nopOut(pc, pc+1)
					continue
				case c.I == 1 && (next.Op == bytecode.IMUL || next.Op == bytecode.IDIV) &&
					topIsKind(pc, bytecode.KInt):
					nopOut(pc, pc+1)
					continue
				case next.Op == bytecode.IMUL && c.I > 1 && c.I&(c.I-1) == 0:
					code[pc] = bytecode.Instr{Op: bytecode.IPUSH, A: int32(log2(c.I))}
					code[pc+1] = bytecode.Instr{Op: bytecode.ISHL}
					changed = true
					continue
				}
			}
			if c.Kind == bytecode.KFloat && c.F == 1 &&
				(next.Op == bytecode.FMUL || next.Op == bytecode.FDIV) &&
				topIsKind(pc, bytecode.KFloat) {
				nopOut(pc, pc+1)
				continue
			}
		}

		if pc+2 >= len(code) || !free(pc, 2) {
			continue
		}
		third := code[pc+2]

		// push a ; push b ; binop  =>  push (a∘b)
		if isPush(in) && isPush(next) {
			a, b := pushedValue(f, in), pushedValue(f, next)
			if v, ok := foldBinary(third.Op, a, b); ok {
				code[pc] = emitPush(f, v)
				nopOut(pc+1, pc+2)
				continue
			}
		}

		// load x ; push c ; iadd/isub ; store x  =>  iinc x ±c
		//
		// IINC adds to the I field in place and leaves the local's kind
		// alone, whereas IADD coerces a float local to Int(x.I + c), so
		// the rewrite requires a local that provably never holds a float.
		if pc+3 < len(code) && free(pc, 3) &&
			in.Op == bytecode.LOAD && isPush(next) &&
			(third.Op == bytecode.IADD || third.Op == bytecode.ISUB) &&
			code[pc+3].Op == bytecode.STORE && code[pc+3].A == in.A &&
			int(in.A) < len(intLocal) && intLocal[in.A] {
			c := pushedValue(f, next)
			if c.Kind == bytecode.KInt {
				delta := c.I
				if third.Op == bytecode.ISUB {
					delta = -delta
				}
				if delta >= -1<<31 && delta < 1<<31 {
					code[pc] = bytecode.Instr{Op: bytecode.IINC, A: in.A, B: int32(delta)}
					nopOut(pc+1, pc+2, pc+3)
					continue
				}
			}
		}
	}
	return changed
}

func log2(n int64) int32 {
	k := int32(0)
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// foldUnary evaluates a side-effect-free unary opcode on a constant.
func foldUnary(op bytecode.Op, v bytecode.Value) (bytecode.Value, bool) {
	switch op {
	case bytecode.INEG:
		if v.Kind == bytecode.KInt {
			return bytecode.Int(-v.I), true
		}
	case bytecode.INOT:
		if v.Kind == bytecode.KInt {
			return bytecode.Int(^v.I), true
		}
	case bytecode.FNEG:
		return bytecode.Float(-v.AsFloat()), v.Kind != bytecode.KArr
	case bytecode.I2F:
		if v.Kind == bytecode.KInt {
			return bytecode.Float(float64(v.I)), true
		}
	case bytecode.F2I:
		if v.Kind == bytecode.KFloat {
			return bytecode.Int(int64(v.F)), true
		}
	}
	return bytecode.Value{}, false
}

// foldBinary evaluates a side-effect-free binary opcode on constants.
// Division and modulo by zero are left to runtime.
func foldBinary(op bytecode.Op, a, b bytecode.Value) (bytecode.Value, bool) {
	bothInt := a.Kind == bytecode.KInt && b.Kind == bytecode.KInt
	numeric := a.Kind != bytecode.KArr && b.Kind != bytecode.KArr
	switch op {
	case bytecode.IADD:
		if bothInt {
			return bytecode.Int(a.I + b.I), true
		}
	case bytecode.ISUB:
		if bothInt {
			return bytecode.Int(a.I - b.I), true
		}
	case bytecode.IMUL:
		if bothInt {
			return bytecode.Int(a.I * b.I), true
		}
	case bytecode.IDIV:
		if bothInt && b.I != 0 {
			return bytecode.Int(a.I / b.I), true
		}
	case bytecode.IMOD:
		if bothInt && b.I != 0 {
			return bytecode.Int(a.I % b.I), true
		}
	case bytecode.IAND:
		if bothInt {
			return bytecode.Int(a.I & b.I), true
		}
	case bytecode.IOR:
		if bothInt {
			return bytecode.Int(a.I | b.I), true
		}
	case bytecode.IXOR:
		if bothInt {
			return bytecode.Int(a.I ^ b.I), true
		}
	case bytecode.ISHL:
		if bothInt {
			return bytecode.Int(a.I << (uint64(b.I) & 63)), true
		}
	case bytecode.ISHR:
		if bothInt {
			return bytecode.Int(a.I >> (uint64(b.I) & 63)), true
		}
	case bytecode.FADD:
		if numeric {
			return bytecode.Float(a.AsFloat() + b.AsFloat()), true
		}
	case bytecode.FSUB:
		if numeric {
			return bytecode.Float(a.AsFloat() - b.AsFloat()), true
		}
	case bytecode.FMUL:
		if numeric {
			return bytecode.Float(a.AsFloat() * b.AsFloat()), true
		}
	case bytecode.FDIV:
		if numeric {
			return bytecode.Float(a.AsFloat() / b.AsFloat()), true
		}
	case bytecode.IEQ:
		if bothInt {
			return bytecode.Bool(a.I == b.I), true
		}
	case bytecode.INE:
		if bothInt {
			return bytecode.Bool(a.I != b.I), true
		}
	case bytecode.ILT:
		if bothInt {
			return bytecode.Bool(a.I < b.I), true
		}
	case bytecode.ILE:
		if bothInt {
			return bytecode.Bool(a.I <= b.I), true
		}
	case bytecode.IGT:
		if bothInt {
			return bytecode.Bool(a.I > b.I), true
		}
	case bytecode.IGE:
		if bothInt {
			return bytecode.Bool(a.I >= b.I), true
		}
	case bytecode.FEQ:
		if numeric {
			return bytecode.Bool(a.AsFloat() == b.AsFloat()), true
		}
	case bytecode.FNE:
		if numeric {
			return bytecode.Bool(a.AsFloat() != b.AsFloat()), true
		}
	case bytecode.FLT:
		if numeric {
			return bytecode.Bool(a.AsFloat() < b.AsFloat()), true
		}
	case bytecode.FLE:
		if numeric {
			return bytecode.Bool(a.AsFloat() <= b.AsFloat()), true
		}
	case bytecode.FGT:
		if numeric {
			return bytecode.Bool(a.AsFloat() > b.AsFloat()), true
		}
	case bytecode.FGE:
		if numeric {
			return bytecode.Bool(a.AsFloat() >= b.AsFloat()), true
		}
	}
	return bytecode.Value{}, false
}
