package opt

// Test-only bridge: the tests live in package opt_test (they exercise the
// interpreter, which now imports this package, so an in-package test would
// create an import cycle in the test binary). Re-export the few unexported
// hooks they assert on.
var Inlinable = inlinable
