package opt

import "evolvevm/internal/bytecode"

// Inlining limits.
const (
	// InlineMaxCallee is the largest callee body (instructions) eligible
	// for inlining.
	InlineMaxCallee = 24
	// InlineMaxCaller caps caller growth: no inlining once the caller
	// reaches this many instructions.
	InlineMaxCaller = 800
)

// Inline expands calls to small functions into the caller. A callee is
// eligible when it is at most InlineMaxCallee instructions, contains no
// HALT, and leaves exactly one value on the stack at every RET (so
// splicing preserves stack discipline). Non-leaf callees are allowed —
// their calls are spliced verbatim and may themselves be inlined on a
// later iteration — but a site whose callee is the caller itself is
// skipped, and the growth cap bounds the cascade.
// inlinePerCalleeCap bounds how many times one callee may be expanded
// into a single caller, so mutually recursive cliques cannot ping-pong
// the cascade up to the caller growth cap.
const inlinePerCalleeCap = 4

func Inline(p *bytecode.Program, f *bytecode.Function) bool {
	changed := false
	counts := map[string]int{}
	for len(f.Code) < InlineMaxCaller {
		site := -1
		var callee *bytecode.Function
		for pc, in := range f.Code {
			if in.Op != bytecode.CALL {
				continue
			}
			c := p.Funcs[in.A]
			if c != f && counts[c.Name] < inlinePerCalleeCap && inlinable(p, c) {
				site, callee = pc, c
				break
			}
		}
		if site < 0 {
			break
		}
		inlineAt(f, site, callee)
		counts[callee.Name]++
		changed = true
	}
	return changed
}

func inlinable(p *bytecode.Program, c *bytecode.Function) bool {
	if len(c.Code) > InlineMaxCallee {
		return false
	}
	for _, in := range c.Code {
		if in.Op == bytecode.HALT {
			return false
		}
		// Directly self-recursive callees would re-expose an eligible
		// call to themselves forever; leave them be.
		if in.Op == bytecode.CALL && p.Funcs[in.A] == c {
			return false
		}
	}
	depth, ok := stackDepths(c)
	if !ok {
		return false
	}
	for pc, in := range c.Code {
		if in.Op == bytecode.RET && depth[pc] != 1 {
			return false
		}
	}
	return true
}

// stackDepths computes the operand-stack depth *after* each instruction,
// mirroring the verifier's dataflow. ok is false when depths are
// inconsistent or any instruction is unreachable (conservatively refuse).
func stackDepths(f *bytecode.Function) ([]int, bool) {
	const unseen = -1
	before := make([]int, len(f.Code))
	for i := range before {
		before[i] = unseen
	}
	before[0] = 0
	work := []int{0}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := f.Code[pc]
		pops, fixed := in.Op.Pops()
		if !fixed {
			pops = int(in.B)
		}
		d := before[pc] - pops + in.Op.Pushes()
		if d < 0 {
			return nil, false
		}
		flow := func(t int) bool {
			if t < 0 || t >= len(f.Code) {
				return false
			}
			if before[t] == unseen {
				before[t] = d
				work = append(work, t)
				return true
			}
			return before[t] == d
		}
		switch {
		case in.Op == bytecode.RET || in.Op == bytecode.HALT:
		case in.Op == bytecode.JMP:
			if !flow(int(in.A)) {
				return nil, false
			}
		case in.Op.IsConditionalJump():
			if !flow(int(in.A)) || !flow(pc+1) {
				return nil, false
			}
		default:
			if !flow(pc + 1) {
				return nil, false
			}
		}
	}
	after := make([]int, len(f.Code))
	for pc, in := range f.Code {
		if before[pc] == unseen {
			return nil, false // unreachable code: refuse
		}
		pops, fixed := in.Op.Pops()
		if !fixed {
			pops = int(in.B)
		}
		after[pc] = before[pc] - pops + in.Op.Pushes()
	}
	// after[pc] for RET is before-1+0... adjust: RET pops 1 pushes 0, so
	// the depth we want to check (value count at return) is before[pc].
	for pc, in := range f.Code {
		if in.Op == bytecode.RET {
			after[pc] = before[pc]
		}
	}
	return after, true
}

// inlineAt splices callee's body in place of the CALL at site.
func inlineAt(f *bytecode.Function, site int, callee *bytecode.Function) {
	localBase := int32(f.NLocals)
	f.NLocals += callee.NLocals
	for i := 0; i < callee.NLocals; i++ {
		name := "$" + callee.Name
		if i < len(callee.LocalNames) {
			name += "." + callee.LocalNames[i]
		}
		f.LocalNames = append(f.LocalNames, name)
	}

	// Prologue: pop the arguments (pushed left-to-right) into the callee's
	// argument slots, right-to-left.
	var body []bytecode.Instr
	var isRetJump, isBodyJump []bool
	emit := func(in bytecode.Instr, retJump, bodyJump bool) {
		body = append(body, in)
		isRetJump = append(isRetJump, retJump)
		isBodyJump = append(isBodyJump, bodyJump)
	}
	for a := callee.NArgs - 1; a >= 0; a-- {
		emit(bytecode.Instr{Op: bytecode.STORE, A: localBase + int32(a)}, false, false)
	}
	// Callee locals start zeroed on every invocation; the inlined body
	// may execute repeatedly (e.g. inside a caller loop), so its
	// non-argument locals must be re-zeroed each time. Dead-store
	// elimination removes the stores for locals the body never reads.
	for l := callee.NArgs; l < callee.NLocals; l++ {
		emit(bytecode.Instr{Op: bytecode.IPUSH, A: 0}, false, false)
		emit(bytecode.Instr{Op: bytecode.STORE, A: localBase + int32(l)}, false, false)
	}
	bodyStart := len(body)
	for _, in := range callee.Code {
		out := in
		retJump, bodyJump := false, false
		switch in.Op {
		case bytecode.LOAD, bytecode.STORE, bytecode.IINC:
			out.A += localBase
		case bytecode.CONST:
			out.A = f.AddConst(callee.Consts[in.A])
		case bytecode.JMP, bytecode.JZ, bytecode.JNZ:
			out.A = int32(bodyStart) + in.A // body-relative; absolutized below
			bodyJump = true
		case bytecode.RET:
			out = bytecode.Instr{Op: bytecode.JMP} // target = end, patched below
			retJump = true
		}
		emit(out, retJump, bodyJump)
	}
	insertLen := len(body)
	delta := insertLen - 1 // CALL (1 instr) replaced by insertLen instrs
	endIdx := int32(site + insertLen)
	for i := range body {
		switch {
		case isRetJump[i]:
			body[i].A = endIdx
		case isBodyJump[i]:
			body[i].A += int32(site)
		}
	}

	// Rebuild caller code and shift jump targets beyond the site.
	newCode := make([]bytecode.Instr, 0, len(f.Code)+delta)
	newCode = append(newCode, f.Code[:site]...)
	newCode = append(newCode, body...)
	newCode = append(newCode, f.Code[site+1:]...)
	for i := range newCode {
		if i >= site && i < site+insertLen {
			continue // body already in final coordinates
		}
		in := &newCode[i]
		if in.Op.IsJump() && int(in.A) > site {
			in.A += int32(delta)
		}
	}
	f.Code = newCode
}
