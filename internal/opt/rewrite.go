// Package opt implements the optimization passes behind the VM's compiled
// tiers. Each pass rewrites a function's bytecode in place (on a clone made
// by the pipeline) and reports whether it changed anything. Levels 0–2
// stack progressively more passes; see Pipeline.
//
// All passes preserve verifiability: the pipeline re-verifies the rewritten
// function and the test suite checks behavioural equivalence on executions.
package opt

import "evolvevm/internal/bytecode"

// compact removes NOP instructions from f and remaps jump targets. A jump
// that pointed at a removed NOP is redirected to the next surviving
// instruction. Returns whether anything was removed.
func compact(f *bytecode.Function) bool {
	hasNop := false
	for _, in := range f.Code {
		if in.Op == bytecode.NOP {
			hasNop = true
			break
		}
	}
	if !hasNop {
		return false
	}
	// newIdx[i] = index of instruction i in the compacted code, or the
	// index of the next surviving instruction when i is removed.
	newIdx := make([]int32, len(f.Code)+1)
	out := f.Code[:0]
	kept := int32(0)
	for i, in := range f.Code {
		newIdx[i] = kept
		if in.Op == bytecode.NOP {
			continue
		}
		out = append(out, in)
		kept++
	}
	newIdx[len(f.Code)] = kept
	f.Code = out
	for i := range f.Code {
		if f.Code[i].Op.IsJump() {
			f.Code[i].A = newIdx[f.Code[i].A]
		}
	}
	return true
}

// leaders returns a bool per pc marking basic-block leaders: instruction 0,
// every jump target, and every instruction following a jump or terminator.
func leaders(f *bytecode.Function) []bool {
	lead := make([]bool, len(f.Code))
	if len(lead) > 0 {
		lead[0] = true
	}
	for pc, in := range f.Code {
		if in.Op.IsJump() {
			lead[in.A] = true
		}
		if (in.Op.IsJump() || in.Op.IsTerminator()) && pc+1 < len(f.Code) {
			lead[pc+1] = true
		}
	}
	return lead
}

// reachable computes which instructions can execute, starting from pc 0.
func reachable(f *bytecode.Function) []bool {
	seen := make([]bool, len(f.Code))
	work := []int{0}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		for pc >= 0 && pc < len(f.Code) && !seen[pc] {
			seen[pc] = true
			in := f.Code[pc]
			if in.Op.IsJump() {
				if !seen[in.A] {
					work = append(work, int(in.A))
				}
			}
			if in.Op.IsTerminator() {
				break
			}
			pc++
		}
	}
	return seen
}

// isPush reports whether the instruction pushes exactly one statically
// known constant and has no other effect.
func isPush(in bytecode.Instr) bool {
	return in.Op == bytecode.IPUSH || in.Op == bytecode.CONST
}

// pushedValue returns the constant pushed by an IPUSH/CONST instruction.
func pushedValue(f *bytecode.Function, in bytecode.Instr) bytecode.Value {
	if in.Op == bytecode.IPUSH {
		return bytecode.Int(int64(in.A))
	}
	return f.Consts[in.A]
}

// emitPush returns an instruction pushing v, preferring IPUSH for small
// integers and interning everything else in f's pool.
func emitPush(f *bytecode.Function, v bytecode.Value) bytecode.Instr {
	if v.Kind == bytecode.KInt && v.I >= -1<<31 && v.I < 1<<31 {
		return bytecode.Instr{Op: bytecode.IPUSH, A: int32(v.I)}
	}
	return bytecode.Instr{Op: bytecode.CONST, A: f.AddConst(v)}
}

// resultKind classifies the runtime kind of the value an instruction
// leaves on top of the operand stack. The machine is dynamically typed —
// integer opcodes read the I field of whatever operand they meet, and
// IINC preserves a local's kind while mutating I — so rewrites that drop
// or synthesize such opcodes are only sound when the operand kind is
// statically known.
func resultKind(f *bytecode.Function, in bytecode.Instr) (bytecode.Kind, bool) {
	switch in.Op {
	case bytecode.IPUSH,
		bytecode.IADD, bytecode.ISUB, bytecode.IMUL, bytecode.IDIV,
		bytecode.IMOD, bytecode.IAND, bytecode.IOR, bytecode.IXOR,
		bytecode.ISHL, bytecode.ISHR, bytecode.INEG, bytecode.INOT,
		bytecode.F2I, bytecode.ALEN,
		bytecode.IEQ, bytecode.INE, bytecode.ILT, bytecode.ILE,
		bytecode.IGT, bytecode.IGE, bytecode.FEQ, bytecode.FNE,
		bytecode.FLT, bytecode.FLE, bytecode.FGT, bytecode.FGE:
		return bytecode.KInt, true
	case bytecode.FADD, bytecode.FSUB, bytecode.FMUL, bytecode.FDIV,
		bytecode.FNEG, bytecode.FSQRT, bytecode.FABS, bytecode.I2F:
		return bytecode.KFloat, true
	case bytecode.CONST:
		if int(in.A) < len(f.Consts) {
			if k := f.Consts[in.A].Kind; k == bytecode.KInt || k == bytecode.KFloat {
				return k, true
			}
		}
	}
	return 0, false
}

// topKindBefore returns the statically known kind of the value on top of
// the stack on entry to pc: known only when pc's sole predecessor is the
// fallthrough from pc-1 (pc is not a jump target) and pc-1 has a known
// result kind.
func topKindBefore(f *bytecode.Function, targets map[int32]bool, pc int) (bytecode.Kind, bool) {
	if pc == 0 || targets[int32(pc)] {
		return 0, false
	}
	return resultKind(f, f.Code[pc-1])
}

// intOnlyLocals marks the local slots guaranteed to hold integers for the
// whole function: non-argument slots (zero-initialized to integer 0)
// whose every STORE provably stores an integer. IINC keeps an integer
// local integer, and nothing else writes locals.
func intOnlyLocals(f *bytecode.Function, targets map[int32]bool) []bool {
	ok := make([]bool, f.NLocals)
	for i := f.NArgs; i < f.NLocals; i++ {
		ok[i] = true
	}
	for pc, in := range f.Code {
		if in.Op != bytecode.STORE {
			continue
		}
		if k, known := topKindBefore(f, targets, pc); !known || k != bytecode.KInt {
			ok[in.A] = false
		}
	}
	return ok
}

// jumpTargets returns the set of pcs that are targets of any jump.
func jumpTargets(f *bytecode.Function) map[int32]bool {
	t := make(map[int32]bool)
	for _, in := range f.Code {
		if in.Op.IsJump() {
			t[in.A] = true
		}
	}
	return t
}
