package opt

import "evolvevm/internal/bytecode"

// Unrolling limits.
const (
	// UnrollMaxBody is the largest loop body (instructions) eligible for
	// unrolling.
	UnrollMaxBody = 64
	// UnrollMaxFunc caps function growth: no unrolling once the function
	// reaches this many instructions.
	UnrollMaxFunc = 1200
)

// Unroll duplicates the body of innermost single-entry loops once
// (factor-2 unrolling), eliminating one back-edge jump per two iterations.
// The loop's exit condition is re-evaluated in the copy, so the
// transformation is trip-count independent and exactly preserves
// semantics.
//
// The eligible shape is a region [h, e] where instruction e is an
// unconditional backward JMP to h and no jump from outside the region
// targets its interior. The rewrite replaces the back edge with a copy of
// the body [h, e) followed by a JMP h; jumps inside the copy that targeted
// the body are redirected into the copy, while exits keep their targets.
func Unroll(_ *bytecode.Program, f *bytecode.Function) bool {
	if len(f.Code) >= UnrollMaxFunc {
		return false
	}
	changed := false
	for iter := 0; iter < 4 && len(f.Code) < UnrollMaxFunc; iter++ {
		if !unrollOnce(f) {
			break
		}
		changed = true
	}
	return changed
}

func unrollOnce(f *bytecode.Function) bool {
	for _, lp := range Loops(f.Code) {
		h, e := lp.Head, lp.End
		if f.Code[e].Op != bytecode.JMP { // need an unconditional back edge
			continue
		}
		body := e - h // body length, excluding the back edge
		if body <= 0 || body > UnrollMaxBody {
			continue
		}
		// Contains a nested backward jump? Then this is not innermost —
		// unroll the inner one first (it appears earlier in findLoops
		// order only if its back edge is earlier; just skip outer here).
		nested := false
		for pc := h; pc < e; pc++ {
			in := f.Code[pc]
			if in.Op.IsJump() && int(in.A) <= pc && int(in.A) >= h {
				nested = true
				break
			}
		}
		if nested {
			continue
		}
		applyUnroll(f, h, e)
		return true
	}
	return false
}

func applyUnroll(f *bytecode.Function, h, e int) {
	body := e - h
	// New layout:
	//   [0,h)            unchanged
	//   [h,e)            original body
	//   [e, e+body)      copy of body (replacing the back edge)
	//   e+body           JMP h
	//   rest             shifted by +body
	copyStart := e
	delta := body // 1 back edge replaced by body+1 instructions

	newCode := make([]bytecode.Instr, 0, len(f.Code)+delta)
	newCode = append(newCode, f.Code[:e]...)
	newCode = append(newCode, f.Code[h:e]...) // the copy
	newCode = append(newCode, bytecode.Instr{Op: bytecode.JMP, A: int32(h)})
	newCode = append(newCode, f.Code[e+1:]...)

	// remap converts an original-coordinate target to the new layout: the
	// removed back edge at e behaves like a jump to h; later code shifts.
	remap := func(t int) int32 {
		switch {
		case t == e:
			return int32(h)
		case t > e:
			return int32(t + delta)
		default:
			return int32(t)
		}
	}
	for i := range newCode {
		in := &newCode[i]
		if !in.Op.IsJump() || i == copyStart+body {
			continue // the new back edge is already correct
		}
		t := int(in.A)
		if i >= copyStart && i < copyStart+body && t > h && t < e {
			// Body-internal target inside the copy: redirect into the
			// copy. (A jump to the header itself — a "continue" — must
			// re-run the exit check, so it keeps targeting h via remap.)
			in.A = int32(copyStart + (t - h))
			continue
		}
		in.A = remap(t)
	}
	f.Code = newCode
}
